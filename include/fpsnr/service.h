// fpsnr public API — the fpsnrd compression service.
//
// fpsnrd is the library's long-lived, in-situ shape: simulations emit
// snapshot streams continuously, so compression runs as a resident daemon
// beside them instead of one-shot batch invocations. A Server wraps a
// persistent fpsnr::Session pool behind a length-framed request/response
// protocol on a unix-domain socket (loopback TCP optional), with admission
// control, per-request priority + deadline scheduling, live metrics, and
// graceful drain on shutdown. A Client is the matching blocking connection.
//
// Wire protocol (all integers little-endian):
//
//   frame  := magic:u32 ('FPSD') | type:u16 | flags:u16 (0) | length:u64
//             | payload[length]
//
// Request payloads for Compress/CompressSeries/Decompress/Inspect start
// with the scheduling prefix `priority:u8 | deadline_ms:u32` (deadline 0 = none,
// measured from server receipt). Strings are `len:u32 | bytes`. Every
// request is answered by exactly one Reply or Error frame; an Error
// payload is `code:u16 | message:string`. Archives returned by Compress
// are byte-identical to in-process Session::compress output for the same
// options.
//
// Self-contained: installed under <prefix>/include/fpsnr and includes only
// the C++ standard library. The service is POSIX-only; on other platforms
// the entry points throw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fpsnr/session.h"

namespace fpsnr::service {

/// First four payload-frame bytes on the wire: "FPSD".
inline constexpr std::uint32_t kFrameMagic = 0x44535046u;

/// Frame header size in bytes (magic + type + flags + length).
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Frame types. Requests are client->server; Reply/Error are the two
/// server->client answers (Reply's payload layout depends on the request
/// it answers).
enum class FrameType : std::uint16_t {
  Ping = 1,        ///< liveness probe; empty payload both ways
  Compress = 2,    ///< field in, archive + report out
  Decompress = 3,  ///< archive in, field out
  Inspect = 4,     ///< archive in, rendered metadata out
  Stats = 5,       ///< metrics snapshot as `key: value` lines
  Shutdown = 6,    ///< begin graceful drain; replies before draining
  CompressSeries = 7,  ///< next snapshot of a named series in, v4 frame out
  Reply = 0x80,
  Error = 0x81,
};

/// Typed error codes carried by Error frames. Protocol-level codes
/// (BadMagic/BadFrame/Oversized) also close the connection — the stream
/// can no longer be trusted to be frame-aligned.
enum class ErrorCode : std::uint16_t {
  BadMagic = 1,         ///< frame did not start with kFrameMagic
  BadFrame = 2,         ///< unknown type / malformed or truncated payload
  Oversized = 3,        ///< frame length above the server's max_frame_bytes
  BadRequest = 4,       ///< well-formed frame, invalid job (engine, dims, ...)
  Overloaded = 5,       ///< admission control: in-flight byte cap reached
  DeadlineExpired = 6,  ///< queued past its deadline; job never ran
  ShuttingDown = 7,     ///< server is draining and takes no new work
  Internal = 8,         ///< unexpected server-side failure
};

/// Stable name of an error code ("bad-magic", "overloaded", ...).
std::string_view error_code_name(ErrorCode code);

/// Thrown by Client when the server answers with an Error frame (code()
/// is the typed cause) or the connection itself fails (code() ==
/// ErrorCode::Internal).
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Where a server listens / a client connects. Exactly one of socket_path
/// (unix-domain) or tcp_port (loopback 127.0.0.1) must be set.
struct Endpoint {
  std::string socket_path;
  std::uint16_t tcp_port = 0;
};

struct ServerOptions {
  Endpoint endpoint;
  /// Worker cap for the compression queue (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Hard per-frame payload cap; longer frames are rejected with Oversized
  /// and the connection is closed.
  std::size_t max_frame_bytes = std::size_t{1} << 30;
  /// Admission control: total request-payload bytes admitted (queued or
  /// running) at once. A request that would exceed it is rejected with
  /// Overloaded; smaller bursts simply queue.
  std::size_t max_in_flight_bytes = std::size_t{256} << 20;
};

/// The daemon. The constructor binds and listens (throws on failure — a
/// returned Server is ready to accept), run() serves until shutdown
/// completes. request_shutdown()/request_stats_dump() are async-signal-safe
/// (they write one byte to an internal pipe), so signal handlers may call
/// them directly; on shutdown the server stops accepting, answers every
/// admitted request, flushes, and run() returns 0.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve until a shutdown request drains the server. Returns the process
  /// exit code (0 = graceful).
  int run();

  void request_shutdown();
  void request_stats_dump();  ///< render metrics to stderr (SIGUSR1 hook)

  /// Rendered metrics snapshot (`key: value` lines, same as a Stats reply).
  std::string stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Per-request scheduling attributes (the wire prefix of job requests).
struct RequestOptions {
  bool priority = false;      ///< jump the server's FIFO lane
  std::uint32_t deadline_ms = 0;  ///< reject if not started in time; 0 = none
};

/// Compression job parameters, mirroring SessionOptions + Target by value
/// (the server resolves them against its Session pool).
struct CompressSpec {
  std::string engine = "sz-lorenzo";
  std::string budget = "uniform";
  std::string mode = "fixed-psnr";  ///< target_name() spelling or CLI alias
  double value = 80.0;
  /// Pipeline tile geometry (TileShape::extents semantics: empty = auto
  /// near-cubic, {r} = legacy axis-0 slab). On the wire: rank:u8 followed
  /// by that many u64 extents.
  std::vector<std::size_t> tile;
  std::vector<std::size_t> dims;  ///< C order; must multiply to the count
};

struct CompressResult {
  std::vector<std::uint8_t> archive;
  std::uint64_t value_count = 0;
  std::uint64_t compressed_bytes = 0;
  double achieved_psnr_db = 0.0;
  double bit_rate = 0.0;
  std::uint64_t block_count = 0;
  /// Per-axis tile extents of the emitted container (rank:u8 + u64 each on
  /// the wire).
  std::vector<std::size_t> tile;
};

/// Temporal-compression job parameters. The server keeps one persistent
/// TimeSeriesSession (see fpsnr/timeseries.h) per series name; every
/// CompressSeries request appends the next snapshot to that chain, and the
/// non-name parameters must match the request that opened the series
/// exactly (a mismatch is BadRequest — silently re-tiling mid-chain would
/// desynchronize every downstream decoder). Requests for ONE series are
/// serialized server-side; distinct series compress concurrently.
struct SeriesSpec {
  std::string series = "series";
  /// Spatial keyframe cadence (TimeSeriesOptions::keyframe_interval).
  std::uint32_t keyframe_interval = 8;
  std::string engine = "sz-lorenzo";
  std::string budget = "uniform";
  std::string mode = "fixed-psnr";  ///< target_name() spelling or CLI alias
  double value = 80.0;
  std::vector<std::size_t> tile;  ///< TileShape::extents semantics
  std::vector<std::size_t> dims;  ///< C order; fixed for the whole series
};

/// One frame's outcome: the CompressResult fields plus the frame's chain
/// position. `archive` is the FPBK v4 frame — decode chains of them with a
/// TimeSeriesDecoder.
struct SeriesResult {
  std::vector<std::uint8_t> archive;
  std::uint64_t value_count = 0;
  std::uint64_t compressed_bytes = 0;
  double achieved_psnr_db = 0.0;  ///< measured against the ORIGINAL snapshot
  double bit_rate = 0.0;
  std::uint64_t block_count = 0;
  std::vector<std::size_t> tile;
  std::uint64_t timestep = 0;
  bool keyframe = false;
  std::uint64_t temporal_blocks = 0;  ///< blocks that chose delta mode
};

/// A blocking client connection. Not thread-safe — one in-flight request
/// per Client; open one Client per concurrent stream.
class Client {
 public:
  explicit Client(Endpoint endpoint);  ///< connects; throws on failure
  ~Client();

  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;

  void ping();
  CompressResult compress(std::span<const float> values,
                          const CompressSpec& spec,
                          const RequestOptions& options = {});
  CompressResult compress(std::span<const double> values,
                          const CompressSpec& spec,
                          const RequestOptions& options = {});
  /// Push the next snapshot of spec.series; the server's persistent
  /// per-series session codes it against the previous frame's
  /// reconstruction. Frames come back in push order — feed them to a
  /// TimeSeriesDecoder as a chain.
  SeriesResult compress_series(std::span<const float> values,
                               const SeriesSpec& spec,
                               const RequestOptions& options = {});
  SeriesResult compress_series(std::span<const double> values,
                               const SeriesSpec& spec,
                               const RequestOptions& options = {});
  Field decompress(std::span<const std::uint8_t> archive,
                   const RequestOptions& options = {});
  std::string inspect(std::span<const std::uint8_t> archive,
                      const RequestOptions& options = {});
  std::string stats();
  void shutdown_server();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fpsnr::service
