// fpsnr public API — per-engine codec tuning.
//
// Engine-specific knobs (prediction scheme, transform depth, DCT block
// edge, quantizer resolution, lossless backend) never appear as Session
// fields: they live in a CodecTuning store keyed by engine name, validated
// against a per-engine key schema. Adding a codec therefore never widens
// the facade — it registers its knobs here and its name in the codec
// registry, and every caller keeps compiling.
//
// Self-contained: installed under <prefix>/include/fpsnr and includes only
// the C++ standard library.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fpsnr {

namespace detail {
struct Access;
}

/// One knob of one engine: its key, a one-line doc, and the default the
/// session applies when the knob is not set.
struct TuningKey {
  std::string key;
  std::string doc;
  std::string default_value;
};

/// The knobs `engine` understands (registry name or alias; every engine
/// also accepts the generic "quantization-bins" and "lossless" keys).
/// Throws std::out_of_range for an unknown engine, listing the registry.
std::vector<TuningKey> tuning_keys(std::string_view engine);

/// A set of per-engine knob overrides. Keys are validated lazily — at
/// set() time against nothing (so a tuning block can be built before the
/// engine is chosen), and strictly when a Session job resolves them, where
/// an unknown engine/key pair throws std::invalid_argument naming the
/// valid keys.
class CodecTuning {
 public:
  CodecTuning& set(std::string_view engine, std::string_view key,
                   std::string_view value) {
    values_[std::string(engine)][std::string(key)] = std::string(value);
    return *this;
  }

  CodecTuning& set(std::string_view engine, std::string_view key,
                   double value) {
    return set(engine, key, std::to_string(value));
  }

  /// The override stored for (engine, key), or empty when unset.
  std::string get(std::string_view engine, std::string_view key) const {
    const auto e = values_.find(engine);
    if (e == values_.end()) return {};
    const auto k = e->second.find(key);
    return k == e->second.end() ? std::string{} : k->second;
  }

  bool empty() const { return values_.empty(); }

 private:
  friend struct detail::Access;

  std::map<std::string, std::map<std::string, std::string, std::less<>>,
           std::less<>>
      values_;
};

}  // namespace fpsnr
