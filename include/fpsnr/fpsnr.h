// fpsnr — fixed-PSNR error-controlled lossy compression for scientific
// data. Umbrella header: the whole public API in one include.
//
//   #include <fpsnr/fpsnr.h>
//
//   fpsnr::Session session;
//   auto r = session.compress(fpsnr::Source::memory(values, {512, 512}),
//                             fpsnr::FixedPsnr{80.0},
//                             fpsnr::Sink::memory());
//
// Everything under include/fpsnr is the supported surface; headers under
// src/ are internal and not installed.
#pragma once

#include "fpsnr/service.h"
#include "fpsnr/session.h"
#include "fpsnr/stream.h"
#include "fpsnr/target.h"
#include "fpsnr/timeseries.h"
#include "fpsnr/tuning.h"
#include "fpsnr/version.h"
