// fpsnr public API — the Session facade.
//
// One stable, installable surface for everything the library does:
//
//   fpsnr::Session session({.threads = 8, .engine = "sz-lorenzo"});
//   auto report = session.compress(
//       fpsnr::Source::memory(values, {512, 512}),
//       fpsnr::FixedPsnr{80.0},
//       fpsnr::Sink::memory());
//   auto field = session.decompress(fpsnr::Source::memory(report.archive));
//
// A Session is a reusable handle that owns its concurrency budget (jobs it
// issues run on at most `threads` workers of the process-wide pool), the
// engine selection, and the per-engine tuning. compress/decompress/inspect
// accept any Source/Sink combination — in-memory, whole-file, raw-file,
// streaming spill, memory-mapped decode — through one signature, and the
// Target sum type covers every control mode including fixed-rate.
//
// The Session facade is the ONLY public entry point — the legacy core::
// free-function shims have been removed. Archive bytes depend only on the
// data, the target, and the session's engine/budget/tile options, never on
// the thread count.
//
// Self-contained: installed under <prefix>/include/fpsnr and includes only
// the C++ standard library and sibling fpsnr/ headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fpsnr/stream.h"
#include "fpsnr/target.h"
#include "fpsnr/tuning.h"

namespace fpsnr {

/// Per-axis tile extents (C order) of the pipeline's block grid — the
/// geometry every field is sharded into before its tiles run the
/// quantize -> Huffman -> lossless pipeline independently.
///
///   {}           auto: a deterministic compact near-cubic tile clamped to
///                the field's dims (the default, best for 2-D/3-D fields);
///   {64, 64}     64x64 tiles (trailing tiles on an axis may be short);
///   {r}          an axis-0 slab of r rows spanning the other axes — the
///                only geometry the pre-v3 container had;
///   a 0 entry — or a missing trailing axis — spans the field on that axis.
///
/// Entries beyond the field's rank are rejected at compress time.
struct TileShape {
  std::vector<std::size_t> extents;

  TileShape() = default;
  TileShape(std::initializer_list<std::size_t> e) : extents(e) {}
  explicit TileShape(std::vector<std::size_t> e) : extents(std::move(e)) {}

  /// The legacy axis-0 slab geometry: `rows` rows per block (0 = auto).
  static TileShape slab(std::size_t rows) { return TileShape{rows}; }

  bool is_auto() const { return extents.empty(); }
};

/// Session-wide configuration, fixed at construction.
struct SessionOptions {
  /// Worker cap for this session's jobs (the calling thread plus up to
  /// threads-1 process-pool workers). 0 = hardware concurrency. Output
  /// bytes never depend on this value.
  std::size_t threads = 0;
  /// Codec, by registry name or alias ("sz-lorenzo"/"sz", "transform-haar"/
  /// "haar", "transform-dct"/"dct", "interp", "zfpr", "store", plus any
  /// codec registered at startup). Unknown names throw from the
  /// constructor, listing the live registry.
  std::string engine = "sz-lorenzo";
  /// Per-block error-budget split: "uniform" (the paper's Eq. 6/7 setting)
  /// or "adaptive" (donor/receiver reallocation at the same global PSNR).
  std::string budget = "uniform";
  /// Tile geometry of the pipeline's block grid; default = auto near-cubic
  /// tiles. TileShape::slab(r) reproduces the legacy block_rows = r plan.
  TileShape tile;
  /// Engine-specific knob overrides (see fpsnr/tuning.h).
  CodecTuning tuning;
};

/// Outcome of one compression job.
struct CompressReport {
  /// The archive bytes — filled for Sink::memory() only.
  std::vector<std::uint8_t> archive;
  /// Where the archive landed — file/stream sinks only.
  std::string archive_path;

  std::size_t value_count = 0;
  std::size_t compressed_bytes = 0;
  double compression_ratio = 0.0;
  double bit_rate = 0.0;  ///< compressed bits per value

  /// Analytical PSNR prediction (Eq. 6/7); NaN where the model does not
  /// apply (pointwise-rel, fixed-rate).
  double predicted_psnr_db = 0.0;
  /// Measured PSNR of the emitted archive, exact from the per-block SSE
  /// recorded at compress time; +inf for lossless output, NaN only for the
  /// pointwise-rel serial path.
  double achieved_psnr_db = 0.0;
  /// Value-range relative bound the job resolved to (0 in rate mode).
  double rel_bound_used = 0.0;
  std::size_t outlier_count = 0;

  /// Block layout of the emitted FPBK container (0 / empty for the
  /// pointwise-rel flat stream).
  std::uint64_t block_count = 0;
  std::vector<std::size_t> tile;  ///< per-axis tile extents, C order
  /// Streaming-sink reorder-buffer high-water marks (0 otherwise).
  std::size_t peak_buffered_bytes = 0;
  std::size_t peak_buffered_blocks = 0;
};

/// A decompressed field. Exactly one of f32/f64 is populated, matching the
/// archive's recorded scalar type.
struct Field {
  std::vector<std::size_t> dims;  ///< C order
  std::vector<float> f32;
  std::vector<double> f64;

  std::size_t size() const { return f32.empty() ? f64.size() : f32.size(); }
  bool is_double() const { return f32.empty() && !f64.empty(); }
};

/// Parsed archive metadata (no payload decode).
struct Inspection {
  bool block_container = false;  ///< FPBK container vs legacy flat stream
  std::uint8_t version = 0;      ///< container version (FPBK only)
  std::string codec;             ///< registry name; "unknown" if unregistered
  std::string target;            ///< target_name() of the recorded control
  double target_value = 0.0;
  std::string budget;            ///< "uniform" | "adaptive"
  std::vector<std::size_t> dims;
  std::uint64_t block_count = 0;
  /// Per-axis tile extents (pre-v3 archives surface their slab geometry as
  /// {block_rows, dims[1], ...}); empty for flat streams.
  std::vector<std::size_t> tile;
  double eb_abs = 0.0;           ///< base absolute bound (0 in rate mode)
  double value_range = 0.0;
  /// Measured PSNR from the v2 per-block SSE column; NaN when the archive
  /// does not record it (v1 containers, flat streams).
  double achieved_psnr_db = 0.0;
  std::size_t archive_bytes = 0;
  /// v4 temporal-chain metadata (see fpsnr/timeseries.h); all zero / false
  /// for plain spatial archives (v1..v3) and flat streams.
  bool temporal = false;  ///< archive is a time-series frame (FPBK v4)
  bool delta = false;     ///< frame codes deltas against its predecessor
  std::uint64_t series_id = 0;   ///< FNV-1a of the series name
  std::uint64_t timestep = 0;    ///< 0-based position in the series
  std::uint64_t ref_hash = 0;    ///< identity of the required reference
  std::size_t temporal_blocks = 0;  ///< blocks coded in temporal-delta mode
};

/// One field of a batch job: a name (the archive's file stem in streaming
/// mode) plus a field Source.
struct BatchEntry {
  std::string name;
  Source source;
};

/// A multi-field compression job: every field lands on the same target,
/// with all fields' blocks interleaved on one global work queue.
struct BatchJob {
  std::vector<BatchEntry> fields;
  Target target = FixedPsnr{80.0};
  /// true: decode each archive and measure PSNR/max-error independently.
  /// false: trust the exact compress-time SSE column (identical by
  /// construction; max_abs_error reported as 0).
  bool verify = true;
  /// Non-empty: stream every archive to <stream_dir>/<name>.fpbk as its
  /// blocks finish; empty: archives are kept in memory.
  std::string stream_dir;
  /// Keep in-memory archives in BatchFieldReport::archive.
  bool keep_archives = false;
};

struct BatchFieldReport {
  std::string name;
  double target_psnr_db = 0.0;
  double predicted_psnr_db = 0.0;
  double actual_psnr_db = 0.0;
  double rel_bound_used = 0.0;
  double compression_ratio = 0.0;
  double bit_rate = 0.0;
  double max_abs_error = 0.0;
  std::size_t outlier_count = 0;
  std::size_t value_count = 0;
  std::size_t compressed_bytes = 0;
  bool met_target = false;
  std::vector<std::uint8_t> archive;  ///< BatchJob::keep_archives only
  std::string archive_path;           ///< streaming mode only
};

struct BatchReport {
  double target_psnr_db = 0.0;
  std::vector<BatchFieldReport> fields;
  double mean_psnr_db = 0.0;
  double stdev_psnr_db = 0.0;
  double met_fraction = 0.0;
};

/// The facade. Construct once, reuse for any number of jobs; the handle is
/// movable, and all job methods are const (safe to share across threads —
/// jobs coordinate through the process-wide pool).
class Session {
 public:
  Session();
  explicit Session(SessionOptions options);
  ~Session();

  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;

  const SessionOptions& options() const;

  /// The resolved worker cap this session runs jobs at (options().threads,
  /// or hardware concurrency when that was 0).
  std::size_t threads() const;

  /// Compress a field Source to an archive Sink under `target`. Throws
  /// std::invalid_argument for combinations the engine cannot honour
  /// (e.g. pointwise targets on transform codecs) and io errors as
  /// std::runtime_error subclasses.
  CompressReport compress(const Source& input, const Target& target,
                          const Sink& output) const;

  /// Decompress a whole archive (any stream the library ever wrote; FPBK
  /// containers decode block-parallel, file sources are memory-mapped).
  Field decompress(const Source& archive) const;

  /// Random-access decode of one pipeline block: only the header, two
  /// index entries, and that block's extent are ever read.
  Field decompress_block(const Source& archive, std::size_t block_index) const;

  /// Archive metadata without touching the payload.
  Inspection inspect(const Source& archive) const;

  /// Compress every field of `job` to the same target, interleaving all
  /// fields' blocks on one global work queue. Per-field archives are
  /// byte-identical to single-field compress() runs at any thread count.
  /// Only FixedPsnr targets are supported today.
  BatchReport compress_batch(const BatchJob& job) const;

  /// Names of every registered codec, in wire-id order.
  static std::vector<std::string> engines();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fpsnr
