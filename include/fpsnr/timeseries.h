// fpsnr public API — temporal compression of snapshot time series.
//
// Simulation outputs are sequences of slowly evolving snapshots; coding
// each one from scratch ignores that. A TimeSeriesSession owns the
// previous timestep's *reconstruction* — the decoder-visible state, so the
// encoder and every decoder stay bit-synchronized — and compresses each
// pushed snapshot as a per-tile choice between the temporal delta against
// that reference and plain spatial coding (motion or turbulence can make
// the delta worse; the planner probes both and records a 1-bit mode per
// block). The composite runs through the same engine stack as Session
// compress, so the requested pointwise/PSNR target holds for every
// snapshot measured against the ORIGINAL data, not the residual.
//
//   fpsnr::TimeSeriesSession series(fpsnr::FixedPsnr{70.0},
//                                   {.series = "vx", .keyframe_interval = 8});
//   for (const auto& snap : snapshots) {
//     auto rec = series.push(snap);             // rec.report.archive = FPBK v4
//   }
//   auto fields = series.decode_range(3, 7);    // snapshots 3..6
//
// Frames are FPBK v4 containers carrying a chain header (series id,
// timestep, reference hash): a delta frame refuses to decode against the
// wrong reference, out of order, or from a foreign series — feed them in
// order to a TimeSeriesDecoder, starting at any keyframe. Periodic
// keyframes (`keyframe_interval`) bound the decode-chain length for random
// access; they are NOT needed to bound error drift — every frame's error
// budget is anchored to its own original, so errors never accumulate
// across timesteps. Plain spatial archives (v1–v3) are unaffected.
//
// Self-contained: installed under <prefix>/include/fpsnr and includes only
// the C++ standard library and sibling fpsnr/ headers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fpsnr/session.h"
#include "fpsnr/target.h"

namespace fpsnr {

struct TimeSeriesOptions {
  /// Engine/budget/tile/threads/tuning for every frame, exactly as a
  /// Session would resolve them.
  SessionOptions session;
  /// Series name; its FNV-1a hash is the chain identity stamped into every
  /// frame's v4 header.
  std::string series = "series";
  /// A spatial keyframe every N snapshots (t = 0, N, 2N, ...). 0 = only
  /// the first snapshot is a keyframe. 1 = every snapshot (temporal
  /// prediction effectively off).
  std::size_t keyframe_interval = 8;
  /// Keep every frame's archive inside the session so archive(t) and
  /// decode_range() work. Disable for long-running in-situ use where the
  /// caller ships each frame elsewhere (the daemon's session pool does).
  bool keep_archives = true;
};

/// Outcome of one push().
struct SnapshotRecord {
  std::size_t timestep = 0;
  bool keyframe = false;
  /// Blocks that chose temporal-delta mode (0 for keyframes).
  std::size_t temporal_blocks = 0;
  std::size_t block_count = 0;
  /// The usual per-job report; `archive` holds the FPBK v4 frame. PSNR
  /// figures are measured against the original snapshot.
  CompressReport report;
};

/// Stateful encoder for one snapshot series. Movable, not copyable; not
/// thread-safe (frames are inherently ordered — guard externally to share).
class TimeSeriesSession {
 public:
  explicit TimeSeriesSession(Target target, TimeSeriesOptions options = {});
  ~TimeSeriesSession();

  TimeSeriesSession(TimeSeriesSession&&) noexcept;
  TimeSeriesSession& operator=(TimeSeriesSession&&) noexcept;

  const TimeSeriesOptions& options() const;

  /// Compress the next snapshot (timestep = number of prior pushes).
  /// Exactly one of f32/f64 must be filled; dims and scalar type must match
  /// the first pushed snapshot, else std::invalid_argument.
  SnapshotRecord push(const Field& snapshot);

  /// Snapshots pushed so far.
  std::size_t snapshots() const;

  /// Archive bytes of frame `t` (requires keep_archives; throws
  /// std::logic_error otherwise, std::out_of_range on a bad index).
  const std::vector<std::uint8_t>& archive(std::size_t t) const;

  /// Decode snapshots [t0, t1) — half-open, so decode_range(0, snapshots())
  /// is the whole series. Internally replays the chain from the nearest
  /// keyframe at or before t0. Requires keep_archives.
  std::vector<Field> decode_range(std::size_t t0, std::size_t t1) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Stateful decoder for a frame chain: feed archives in series order,
/// starting at any keyframe. Every chain violation — first frame not a
/// keyframe, foreign series id, a timestep gap, or a delta frame whose
/// reference hash does not match the reconstruction this decoder holds —
/// throws a std::runtime_error subclass and leaves the decoder state
/// unchanged, so a corrupted or misordered frame can never silently decode
/// against the wrong reference.
class TimeSeriesDecoder {
 public:
  /// `threads` caps the per-frame block decode (0 = hardware concurrency).
  explicit TimeSeriesDecoder(std::size_t threads = 0);
  ~TimeSeriesDecoder();

  TimeSeriesDecoder(TimeSeriesDecoder&&) noexcept;
  TimeSeriesDecoder& operator=(TimeSeriesDecoder&&) noexcept;

  /// Decode the next frame of the chain and return its reconstruction.
  Field feed(std::span<const std::uint8_t> archive);

  /// Frames successfully decoded so far.
  std::size_t frames() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fpsnr
