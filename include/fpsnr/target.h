// fpsnr public API — the Target sum type.
//
// One knob controls distortion (or rate) for every codec substrate: a
// compression job names WHAT it wants — a PSNR, an NRMSE, a pointwise
// bound, or a bit budget — and the session resolves it against the engine
// in use. This is the paper's unified error-controlled interface with the
// ZFP-style fixed-rate mode added as a first-class member rather than an
// external search loop.
//
// Self-contained: installed under <prefix>/include/fpsnr and includes only
// the C++ standard library.
#pragma once

#include <stdexcept>
#include <string_view>
#include <variant>

namespace fpsnr {

/// Target the measured PSNR of the archive (dB). The paper's headline
/// mode: the bound is derived analytically (Eq. 8), one compression pass.
struct FixedPsnr {
  double db = 80.0;
};

/// Target a normalized RMS error (PSNR in linear form).
struct FixedNrmse {
  double nrmse = 1e-4;
};

/// Bound every point's absolute error: |x_i - x~_i| <= bound.
struct PointwiseAbs {
  double bound = 1e-3;
};

/// Bound every point's relative error: |x_i - x~_i| <= fraction * |x_i|.
struct PointwiseRel {
  double fraction = 1e-3;
};

/// Bound every point's error as a fraction of the global value range.
struct ValueRangeRel {
  double fraction = 1e-4;
};

/// Target the compressed size: bits per value. Each pipeline block bisects
/// its own error bound until its compressed output lands on the budget
/// (seeded by a closed-form per-group bit-width census), so the archive
/// size is known up front regardless of content.
struct FixedRate {
  double bits_per_value = 8.0;
};

/// What a compression job is asked to achieve. Exactly one alternative is
/// engaged; the session resolves it against the selected engine.
using Target = std::variant<FixedPsnr, FixedNrmse, PointwiseAbs, PointwiseRel,
                            ValueRangeRel, FixedRate>;

/// Stable name of the engaged alternative ("fixed-psnr", "fixed-nrmse",
/// "pointwise-abs", "pointwise-rel", "value-range-rel", "fixed-rate") —
/// what inspect() reports and the CLI accepts as --mode.
inline std::string_view target_name(const Target& target) {
  struct Namer {
    std::string_view operator()(const FixedPsnr&) const { return "fixed-psnr"; }
    std::string_view operator()(const FixedNrmse&) const { return "fixed-nrmse"; }
    std::string_view operator()(const PointwiseAbs&) const { return "pointwise-abs"; }
    std::string_view operator()(const PointwiseRel&) const { return "pointwise-rel"; }
    std::string_view operator()(const ValueRangeRel&) const { return "value-range-rel"; }
    std::string_view operator()(const FixedRate&) const { return "fixed-rate"; }
  };
  return std::visit(Namer{}, target);
}

/// The target's scalar value (dB, bound, fraction, or bits/value).
inline double target_value(const Target& target) {
  struct Valuer {
    double operator()(const FixedPsnr& t) const { return t.db; }
    double operator()(const FixedNrmse& t) const { return t.nrmse; }
    double operator()(const PointwiseAbs& t) const { return t.bound; }
    double operator()(const PointwiseRel& t) const { return t.fraction; }
    double operator()(const ValueRangeRel& t) const { return t.fraction; }
    double operator()(const FixedRate& t) const { return t.bits_per_value; }
  };
  return std::visit(Valuer{}, target);
}

/// Parse a target from its stable name + value (the CLI's -m/-v pair).
/// Throws std::invalid_argument for an unknown name.
inline Target make_target(std::string_view name, double value) {
  if (name == "fixed-psnr" || name == "psnr") return FixedPsnr{value};
  if (name == "fixed-nrmse" || name == "nrmse") return FixedNrmse{value};
  if (name == "pointwise-abs" || name == "abs") return PointwiseAbs{value};
  if (name == "pointwise-rel" || name == "pwrel") return PointwiseRel{value};
  if (name == "value-range-rel" || name == "rel") return ValueRangeRel{value};
  if (name == "fixed-rate" || name == "rate") return FixedRate{value};
  throw std::invalid_argument(
      "unknown target '" + std::string(name) +
      "' (want psnr|abs|rel|pwrel|nrmse|rate or their long forms)");
}

}  // namespace fpsnr
