// fpsnr public API — Source and Sink value types.
//
// One signature covers every I/O shape the library supports: in-memory
// spans, raw value files, whole-archive files (memory-mapped on decode),
// and the streaming writer that spills blocks to disk as workers finish.
// A Source names where a job's input comes from; a Sink names where a
// compression job's archive goes. Both are cheap value types — a Source
// over memory BORROWS the span (the caller keeps it alive for the call),
// file variants carry only the path.
//
// Self-contained: installed under <prefix>/include/fpsnr and includes only
// the C++ standard library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace fpsnr {

namespace detail {
struct Access;  // session.cpp's window into Source/Sink internals
}

/// Input of a session job.
///
/// Field sources (for compress): memory(values, dims) over float or double
/// spans, or raw_file(path, dims) for a little-endian float32 value file.
/// Archive sources (for decompress / inspect): memory(bytes) over an
/// archive already in memory, or file(path) — decompress memory-maps FPBK
/// archives, so single-block reads touch only that block's extent.
class Source {
 public:
  /// In-memory float32 field; `dims` is C-order (last extent fastest).
  static Source memory(std::span<const float> values,
                       std::vector<std::size_t> dims) {
    Source s(Kind::FieldF32);
    s.data_ = values.data();
    s.count_ = values.size();
    s.dims_ = std::move(dims);
    return s;
  }

  /// In-memory float64 field.
  static Source memory(std::span<const double> values,
                       std::vector<std::size_t> dims) {
    Source s(Kind::FieldF64);
    s.data_ = values.data();
    s.count_ = values.size();
    s.dims_ = std::move(dims);
    return s;
  }

  /// In-memory archive bytes (any stream the library ever wrote).
  static Source memory(std::span<const std::uint8_t> archive) {
    Source s(Kind::ArchiveMemory);
    s.data_ = archive.data();
    s.count_ = archive.size();
    return s;
  }

  /// Archive on disk. decompress() memory-maps FPBK containers.
  static Source file(std::string path) {
    Source s(Kind::ArchiveFile);
    s.path_ = std::move(path);
    return s;
  }

  /// Raw little-endian float32 values on disk (the CLI's input format).
  static Source raw_file(std::string path, std::vector<std::size_t> dims) {
    Source s(Kind::RawFileF32);
    s.path_ = std::move(path);
    s.dims_ = std::move(dims);
    return s;
  }

  /// True when this source describes field values (compress input) rather
  /// than an existing archive.
  bool is_field() const {
    return kind_ == Kind::FieldF32 || kind_ == Kind::FieldF64 ||
           kind_ == Kind::RawFileF32;
  }

 private:
  enum class Kind : std::uint8_t {
    FieldF32,
    FieldF64,
    ArchiveMemory,
    ArchiveFile,
    RawFileF32,
  };

  explicit Source(Kind kind) : kind_(kind) {}

  friend struct detail::Access;

  Kind kind_;
  const void* data_ = nullptr;  ///< borrowed; memory variants only
  std::size_t count_ = 0;
  std::vector<std::size_t> dims_;
  std::string path_;
};

/// Output of a compression job.
///
/// memory(): the archive bytes come back in CompressReport::archive.
/// file(path): the archive is built in memory and written whole.
/// stream(path): blocks spill to `path` as workers finish — peak memory is
/// the in-flight reorder buffer, and the resulting file is byte-identical
/// to the other two sinks for the same job.
class Sink {
 public:
  static Sink memory() { return Sink(Kind::Memory); }

  static Sink file(std::string path) {
    Sink s(Kind::File);
    s.path_ = std::move(path);
    return s;
  }

  static Sink stream(std::string path) {
    Sink s(Kind::Stream);
    s.path_ = std::move(path);
    return s;
  }

 private:
  enum class Kind : std::uint8_t { Memory, File, Stream };

  explicit Sink(Kind kind) : kind_(kind) {}

  friend struct detail::Access;

  Kind kind_;
  std::string path_;
};

}  // namespace fpsnr
