#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Merges one or more Google Benchmark JSON outputs into a single
``BENCH_pr.json``, compares every benchmark against the checked-in
baseline with a tolerance factor, and (on machines with enough cores)
enforces the global-work-queue speedup claim:

    time(BM_BatchSequentialPerField/8) / time(BM_BatchGlobalQueue/8) >= 1.3

and the full-rank tiling claim from bench_tiling (pancake-shaped field,
where axis-0 slabs cap the block count at the short leading extent):

    time(BM_TilingSlabCompress/8) / time(BM_TilingFullRankCompress/8) >= 1.3

and the temporal-compression claim from bench_temporal (slowly evolving
series, equal fixed-PSNR target, compression *ratios* from the benches'
``ratio`` counters — archive bytes are deterministic, so this gate never
depends on the runner's speed):

    ratio(BM_TemporalSeriesCompress/60) /
        ratio(BM_TemporalSpatialOnlyCompress/60) >= 1.4

The absolute comparison is deliberately loose (default: fail only when a
benchmark runs ``--tolerance`` times slower than the baseline): the
baseline and the CI runner are different machines, so the gate exists to
catch order-of-magnitude regressions (accidental O(n^2), lost parallelism,
debug code left in), not 10% noise. The speedup gate, by contrast, is an
*intra-run* ratio — machine-independent — and is the PR's actual claim; it
is skipped when the runner has fewer than ``--min-cpus`` cores, where no
scheduling win is physically possible.

A second intra-run gate covers the SIMD kernel layer: bench_simd_kernels
runs every vectorized kernel as a scalar/dispatch arm pair and exports the
dispatched backend through the ``fpsnr_simd_backend`` context key. When
that key is present and not ``scalar``, at least ``--simd-min-kernels``
kernels must show a scalar/dispatch speedup of ``--simd-gate`` or better
(the huffman pack arm is serial by design and is reported but not expected
to pass). With a scalar backend — FPSNR_SIMD=scalar legs, or hosts with no
vector ISA — the pairs measure parity and the gate is skipped.

Usage:
  bench_compare.py --baseline bench/BENCH_baseline.json \
      --pr out1.json out2.json --out BENCH_pr.json \
      [--tolerance 2.0] [--speedup-gate 1.3] [--min-cpus 4] \
      [--simd-gate 1.5] [--simd-min-kernels 2] \
      [--summary "$GITHUB_STEP_SUMMARY"]

Exit codes: 0 pass, 1 regression / missing benchmark, 2 bad input.
"""
from __future__ import annotations

import argparse
import json
import sys


SEQ8 = "BM_BatchSequentialPerField/8/real_time"
QUEUE8 = "BM_BatchGlobalQueue/8/real_time"
SLAB8 = "BM_TilingSlabCompress/8/real_time"
FULLRANK8 = "BM_TilingFullRankCompress/8/real_time"

# bench_temporal arms: same series, same PSNR target, spatial-only vs the
# v4 delta chain. The gate reads their `ratio` counters (compression
# ratios — deterministic bytes, so machine-independent). Gated at 60 dB,
# the slow-evolution claim; the 80 dB pair is reported alongside.
TEMPORAL_PAIRS = [
    (60, "BM_TemporalSpatialOnlyCompress/60/real_time",
     "BM_TemporalSeriesCompress/60/real_time", True),
    (80, "BM_TemporalSpatialOnlyCompress/80/real_time",
     "BM_TemporalSeriesCompress/80/real_time", False),
]

# scalar/dispatch arm pairs emitted by bench_simd_kernels.cpp.
SIMD_KERNELS = [
    ("haar", "BM_SimdHaarFwd/scalar", "BM_SimdHaarFwd/dispatch"),
    ("dct", "BM_SimdDct2/scalar", "BM_SimdDct2/dispatch"),
    ("zfpr", "BM_SimdZfprQuant/scalar", "BM_SimdZfprQuant/dispatch"),
    ("lorenzo", "BM_SimdLorenzo2/scalar", "BM_SimdLorenzo2/dispatch"),
    ("huffman", "BM_SimdHuffmanPack/scalar", "BM_SimdHuffmanPack/dispatch"),
    ("sse", "BM_SimdSse/scalar", "BM_SimdSse/dispatch"),
]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def times_by_name(doc):
    """name -> real_time in ns, keyed by the canonical benchmark name.

    When a run used --benchmark_repetitions, the median aggregate is
    preferred over individual iterations: shared CI runners are noisy, and
    the gate should compare typical times, not one unlucky sample. Runs
    without repetitions fall back to the single iteration entry, so old
    baselines and new PR runs stay comparable.
    """
    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    raw, medians = {}, {}
    for b in doc.get("benchmarks", []):
        ns = float(b["real_time"]) * unit_ns.get(b.get("time_unit", "ns"), 1.0)
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b.get("run_name", b["name"])] = ns
            continue
        # repeated runs share one run_name; keep the first sample as the
        # fallback when no median aggregate is present
        raw.setdefault(b.get("run_name", b["name"]), ns)
    return {**raw, **medians}


def counters_by_name(doc, counter):
    """name -> value of a user counter, preferring median aggregates."""
    raw, medians = {}, {}
    for b in doc.get("benchmarks", []):
        if counter not in b:
            continue
        value = float(b[counter])
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b.get("run_name", b["name"])] = value
            continue
        raw.setdefault(b.get("run_name", b["name"]), value)
    return {**raw, **medians}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--pr", nargs="+", required=True,
                    help="benchmark JSON output file(s) from this run")
    ap.add_argument("--out", default="BENCH_pr.json",
                    help="merged PR benchmark JSON to write")
    ap.add_argument("--tolerance", type=float, default=2.0,
                    help="fail when pr_time > tolerance * baseline_time")
    ap.add_argument("--speedup-gate", type=float, default=1.3,
                    help="required sequential/queue speedup at 8 workers")
    ap.add_argument("--tiling-gate", type=float, default=1.3,
                    help="required slab/full-rank tiling speedup at 8 workers")
    ap.add_argument("--min-cpus", type=int, default=4,
                    help="skip the speedup gate below this core count")
    ap.add_argument("--temporal-gate", type=float, default=1.4,
                    help="required temporal/spatial compression-ratio win "
                         "at the gated PSNR target")
    ap.add_argument("--simd-gate", type=float, default=1.5,
                    help="required per-kernel scalar/dispatch speedup")
    ap.add_argument("--simd-min-kernels", type=int, default=2,
                    help="kernels that must meet --simd-gate when a vector "
                         "backend is dispatched")
    ap.add_argument("--summary", default=None,
                    help="append a markdown report here (GITHUB_STEP_SUMMARY)")
    args = ap.parse_args()

    prs = [load(p) for p in args.pr]
    merged = {"context": prs[0].get("context", {}), "benchmarks": []}
    for doc in prs:
        merged["benchmarks"].extend(doc.get("benchmarks", []))
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=1)
    print(f"wrote {args.out} ({len(merged['benchmarks'])} benchmark entries)")

    base = times_by_name(load(args.baseline))
    pr = times_by_name(merged)

    failures = []
    rows = []
    for name in sorted(base):
        if name not in pr:
            failures.append(f"baseline benchmark `{name}` missing from this run")
            rows.append((name, base[name], None, None, "MISSING"))
            continue
        ratio = pr[name] / base[name] if base[name] > 0 else float("inf")
        verdict = "ok" if ratio <= args.tolerance else "REGRESSED"
        if verdict != "ok":
            failures.append(
                f"`{name}`: {pr[name] / 1e6:.2f} ms vs baseline "
                f"{base[name] / 1e6:.2f} ms ({ratio:.2f}x > {args.tolerance}x)")
        rows.append((name, base[name], pr[name], ratio, verdict))
    for name in sorted(set(pr) - set(base)):
        rows.append((name, None, pr[name], None, "new"))

    cpus = int(merged["context"].get("num_cpus", 0) or 0)
    base_cpus = int(load(args.baseline).get("context", {}).get("num_cpus", 0) or 0)
    baseline_note = ""
    if base_cpus and base_cpus < args.min_cpus:
        baseline_note = (
            f"warning: baseline was recorded on {base_cpus} cpu(s) — its "
            f"parallel-arm times are serial times, so the {args.tolerance}x "
            f"tolerance cannot catch lost parallelism; refresh "
            f"BENCH_baseline.json from a multi-core run's BENCH_pr.json")
    speedup_note = ""
    if SEQ8 in pr and QUEUE8 in pr:
        speedup = pr[SEQ8] / pr[QUEUE8]
        if cpus >= args.min_cpus:
            gate = "ok" if speedup >= args.speedup_gate else "FAILED"
            speedup_note = (f"global-queue speedup at 8 workers: "
                            f"{speedup:.2f}x (gate >= {args.speedup_gate}x, "
                            f"{cpus} cpus) — {gate}")
            if gate != "ok":
                failures.append(speedup_note)
        else:
            speedup_note = (f"global-queue speedup at 8 workers: {speedup:.2f}x "
                            f"(gate skipped: only {cpus} cpus, need "
                            f">= {args.min_cpus})")
    else:
        failures.append(
            f"speedup gate benchmarks missing (`{SEQ8}`, `{QUEUE8}`)")

    # Full-rank tiling gate: on a pancake field the slab decomposition can
    # never keep 8 workers busy (block count == leading extent), so the
    # full-rank arm must win by the gate factor. Intra-run ratio, same
    # machine-independence argument as the queue gate.
    tiling_note = ""
    if SLAB8 in pr and FULLRANK8 in pr:
        speedup = pr[SLAB8] / pr[FULLRANK8]
        if cpus >= args.min_cpus:
            gate = "ok" if speedup >= args.tiling_gate else "FAILED"
            tiling_note = (f"full-rank tiling speedup at 8 workers: "
                           f"{speedup:.2f}x (gate >= {args.tiling_gate}x, "
                           f"{cpus} cpus) — {gate}")
            if gate != "ok":
                failures.append(tiling_note)
        else:
            tiling_note = (f"full-rank tiling speedup at 8 workers: "
                           f"{speedup:.2f}x (gate skipped: only {cpus} cpus, "
                           f"need >= {args.min_cpus})")
    else:
        failures.append(
            f"tiling gate benchmarks missing (`{SLAB8}`, `{FULLRANK8}`)")

    # Temporal compression gate: intra-run *compression-ratio* ratio from
    # bench_temporal's `ratio` counters. Unlike the timing gates this one
    # never depends on core count or machine load — the archives' bytes are
    # deterministic — so it is always armed when the bench ran.
    temporal_notes = []
    ratio_counters = counters_by_name(merged, "ratio")
    temporal_seen = False
    for db, spatial, temporal, gated in TEMPORAL_PAIRS:
        if spatial not in ratio_counters or temporal not in ratio_counters:
            continue
        temporal_seen = True
        win = (ratio_counters[temporal] / ratio_counters[spatial]
               if ratio_counters[spatial] > 0 else float("inf"))
        if gated:
            gate = "ok" if win >= args.temporal_gate else "FAILED"
            note = (f"- {db} dB: temporal ratio {ratio_counters[temporal]:.2f} "
                    f"vs spatial {ratio_counters[spatial]:.2f} = {win:.2f}x "
                    f"(gate >= {args.temporal_gate}x) — {gate}")
            if gate != "ok":
                failures.append(
                    f"temporal compression gate at {db} dB: {win:.2f}x < "
                    f"{args.temporal_gate}x")
        else:
            note = (f"- {db} dB: temporal ratio {ratio_counters[temporal]:.2f} "
                    f"vs spatial {ratio_counters[spatial]:.2f} = {win:.2f}x "
                    f"(reported, not gated)")
        temporal_notes.append(note)
    if temporal_seen:
        temporal_notes.insert(0, "temporal vs spatial-only compression:")
    else:
        failures.append(
            "temporal gate benchmarks missing (bench_temporal `ratio` "
            "counters not found)")

    # SIMD vectorization gate: intra-run scalar/dispatch arm ratios from
    # bench_simd_kernels. Armed only when that bench ran AND it dispatched
    # a vector backend; scalar runs report parity and skip the gate.
    simd_notes = []
    simd_backend = next((doc.get("context", {}).get("fpsnr_simd_backend")
                         for doc in prs
                         if doc.get("context", {}).get("fpsnr_simd_backend")),
                        None)
    simd_pairs = [(k, s, d) for k, s, d in SIMD_KERNELS
                  if s in pr and d in pr]
    if simd_pairs:
        passing = 0
        for kernel, s, d in simd_pairs:
            speedup = pr[s] / pr[d] if pr[d] > 0 else float("inf")
            gate_met = speedup >= args.simd_gate
            passing += gate_met
            simd_notes.append(f"- {kernel}: {speedup:.2f}x "
                              f"({'ok' if gate_met else 'below gate'})")
        if simd_backend and simd_backend != "scalar":
            verdict = "ok" if passing >= args.simd_min_kernels else "FAILED"
            header = (f"SIMD vectorization gate (backend `{simd_backend}`): "
                      f"{passing}/{len(simd_pairs)} kernels at >= "
                      f"{args.simd_gate}x, need {args.simd_min_kernels} — "
                      f"{verdict}")
            if verdict != "ok":
                failures.append(header)
        else:
            header = (f"SIMD kernel arms (backend "
                      f"`{simd_backend or 'unknown'}`): vectorization gate "
                      f"skipped — scalar backend measures parity, not speedup")
        simd_notes.insert(0, header)

    lines = ["| benchmark | baseline (ms) | this run (ms) | ratio | verdict |",
             "|---|---|---|---|---|"]
    for name, b, p, ratio, verdict in rows:
        lines.append("| `{}` | {} | {} | {} | {} |".format(
            name,
            f"{b / 1e6:.2f}" if b is not None else "—",
            f"{p / 1e6:.2f}" if p is not None else "—",
            f"{ratio:.2f}x" if ratio is not None else "—",
            verdict))
    report = ["### Benchmark regression check", "",
              f"tolerance {args.tolerance}x vs checked-in baseline "
              f"(cross-machine guard), {cpus} cpus on this runner", "",
              *lines, ""]
    if speedup_note:
        report += [speedup_note, ""]
    if tiling_note:
        report += [tiling_note, ""]
    if temporal_notes:
        report += [*temporal_notes, ""]
    if simd_notes:
        report += [*simd_notes, ""]
    if baseline_note:
        report += [baseline_note, ""]
    report += ["**" + (f"{len(failures)} failure(s)" if failures else "PASS") + "**"]
    text = "\n".join(report)
    print(text)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(text + "\n")

    if failures:
        print("\nfailures:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
