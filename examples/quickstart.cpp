// Quickstart: the 10-line Session workflow against the public API only.
//
//   $ ./quickstart
//
// This file deliberately includes nothing but <fpsnr/fpsnr.h> and the
// standard library — CI builds it a second time as a standalone downstream
// project against the *installed* package (cmake --install + find_package)
// to prove the public surface is self-contained.
#include <fpsnr/fpsnr.h>

#include <cmath>
#include <cstdio>
#include <vector>

int main() {
  // 1. Some scientific-looking data: a smooth 2-D field, 256 x 384.
  const std::vector<std::size_t> dims{256, 384};
  std::vector<float> field(256 * 384);
  for (std::size_t r = 0; r < 256; ++r)
    for (std::size_t c = 0; c < 384; ++c)
      field[r * 384 + c] = static_cast<float>(
          270.0 + 40.0 * std::sin(r / 17.0) * std::cos(c / 23.0) +
          3.0 * std::sin(r * c / 997.0));  // a temperature-like range

  // 2. One Session, one Target, one call: compress at a fixed 80 dB PSNR.
  const fpsnr::Session session;
  const fpsnr::CompressReport report = session.compress(
      fpsnr::Source::memory(std::span<const float>(field), dims),
      fpsnr::FixedPsnr{80.0}, fpsnr::Sink::memory());

  // 3. Round-trip and report.
  const fpsnr::Field restored = session.decompress(
      fpsnr::Source::memory(std::span<const std::uint8_t>(report.archive)));

  double sse = 0.0, lo = field[0], hi = field[0];
  for (std::size_t i = 0; i < field.size(); ++i) {
    const double e = field[i] - restored.f32[i];
    sse += e * e;
    lo = std::min<double>(lo, field[i]);
    hi = std::max<double>(hi, field[i]);
  }
  const double psnr =
      20.0 * std::log10((hi - lo) / std::sqrt(sse / field.size()));

  std::printf("target PSNR      : 80.0 dB\n");
  std::printf("achieved PSNR    : %.2f dB (recomputed %.2f dB)\n",
              report.achieved_psnr_db, psnr);
  std::printf("rel. error bound : %.3e  (= sqrt(3) * 10^(-PSNR/20), Eq. 8)\n",
              report.rel_bound_used);
  std::printf("compressed size  : %zu bytes (%.1fx smaller, %.2f bits/value)\n",
              report.archive.size(), report.compression_ratio,
              report.bit_rate);

  // 4. Other targets share the same call — including fixed rate:
  const auto rate = session.compress(
      fpsnr::Source::memory(std::span<const float>(field), dims),
      fpsnr::FixedRate{8.0}, fpsnr::Sink::memory());
  std::printf("\nfixed-rate 8 b/v : achieved %.2f bits/value at %.2f dB\n",
              rate.bit_rate, rate.achieved_psnr_db);
  return restored.f32.size() == field.size() ? 0 : 1;
}
