// Quickstart: compress a 2-D field to an exact PSNR target in one call.
//
//   $ ./quickstart
//
// Demonstrates the library's headline feature (the paper's contribution):
// you name the PSNR, the compressor analytically derives the error bound
// (Eq. 8) and runs a single pass — no trial-and-error tuning.
#include <cstdio>

#include "core/compressor.h"
#include "data/synth.h"

int main() {
  using namespace fpsnr;

  // 1. Some scientific-looking data: a smooth 2-D field, 256 x 384.
  const data::Dims dims{256, 384};
  std::vector<float> field = data::smoothed_noise(dims, /*seed=*/7, /*radius=*/4);
  data::rescale(field, 230.0f, 310.0f);  // a temperature-like range

  // 2. Compress with a fixed PSNR of 80 dB.
  const double target_db = 80.0;
  const core::CompressResult result =
      core::compress_fixed_psnr<float>(field, dims, target_db);

  // 3. Decompress and check what we actually got.
  const metrics::ErrorReport report = core::verify<float>(field, result.stream);

  std::printf("target PSNR      : %.1f dB\n", target_db);
  std::printf("achieved PSNR    : %.2f dB\n", report.psnr_db);
  std::printf("rel. error bound : %.3e  (= sqrt(3) * 10^(-PSNR/20), Eq. 8)\n",
              result.rel_bound_used);
  std::printf("max point error  : %.3e  (bounded by eb_rel * value range)\n",
              report.max_abs_error);
  std::printf("compressed size  : %zu bytes (%.1fx smaller, %.2f bits/value)\n",
              result.stream.size(), result.info.compression_ratio,
              result.info.bit_rate);

  // 4. Other control modes share the same entry point:
  const auto abs_run =
      core::compress<float>(field, dims, core::ControlRequest::absolute(0.05));
  const auto rel_run =
      core::compress<float>(field, dims, core::ControlRequest::relative(1e-4));
  std::printf("\nabs-bound run    : %.2f dB predicted by Eq. 7\n",
              abs_run.predicted_psnr_db);
  std::printf("rel-bound run    : %.2f dB predicted by Eq. 7\n",
              rel_run.predicted_psnr_db);
  return 0;
}
