// Climate batch workflow: the CESM-ATM scenario from the paper's intro.
//
// A climate run dumps ~80 variables per snapshot. Before fixed-PSNR
// compression, hitting a quality target meant hand-tuning the error bound
// per variable (each one has a different range and roughness). With it,
// one PSNR number covers the whole batch: every field is compressed in a
// single pass to the same quality.
//
//   $ ./climate_batch [target_db]
#include <cstdio>
#include <cstdlib>

#include "core/batch.h"
#include "data/dataset.h"
#include "parallel/shared_pool.h"

int main(int argc, char** argv) {
  using namespace fpsnr;

  const double target_db = argc > 1 ? std::atof(argv[1]) : 80.0;

  // 79 synthetic CESM-ATM-like 2-D fields (Table I structure).
  const data::Dataset atm = data::make_atm({});
  std::printf("ATM stand-in: %zu fields, %.1f MB raw, target %.0f dB\n\n",
              atm.field_count(), atm.total_bytes() / (1024.0 * 1024.0),
              target_db);

  // Fan the fields out over the process-wide shared pool — per-field codec
  // runs stay sequential, so results are identical to a serial run.
  core::BatchOptions options;
  options.threads = parallel::shared_pool().thread_count();
  const core::BatchResult batch =
      core::run_fixed_psnr_batch(atm, target_db, options);

  std::printf("%-10s %10s %10s %8s %9s\n", "field", "PSNR(dB)", "ratio",
              "bits/val", "outliers");
  for (const auto& f : batch.fields)
    std::printf("%-10s %10.2f %10.2f %8.2f %9zu\n", f.field_name.c_str(),
                f.actual_psnr_db, f.compression_ratio, f.bit_rate,
                f.outlier_count);

  const auto stats = batch.psnr_stats();
  std::printf("\nacross %zu fields: AVG %.2f dB, STDEV %.2f dB, "
              "met-target %.1f%%, mean |deviation| %.2f dB\n",
              batch.fields.size(), stats.mean(), stats.stdev(),
              100.0 * batch.met_fraction(), batch.mean_abs_deviation_db());

  double total_ratio = 0.0;
  for (const auto& f : batch.fields) total_ratio += f.compression_ratio;
  std::printf("mean compression ratio: %.1fx  (one pass per field — no "
              "per-field bound tuning)\n",
              total_ratio / static_cast<double>(batch.fields.size()));
  return 0;
}
