// Climate batch workflow through the Session facade: the CESM-ATM scenario
// from the paper's intro.
//
// A climate run dumps ~80 variables per snapshot. Before fixed-PSNR
// compression, hitting a quality target meant hand-tuning the error bound
// per variable (each one has a different range and roughness). With it,
// one PSNR number covers the whole batch: every field is compressed in a
// single pass to the same quality, all fields' blocks interleaved on one
// global work queue.
//
//   $ ./climate_batch [target_db]
#include <cstdio>
#include <cstdlib>

#include "fpsnr/fpsnr.h"

#include "data/dataset.h"

int main(int argc, char** argv) {
  using namespace fpsnr;

  const double target_db = argc > 1 ? std::atof(argv[1]) : 80.0;

  // 79 synthetic CESM-ATM-like 2-D fields (Table I structure).
  const data::Dataset atm = data::make_atm({});
  std::printf("ATM stand-in: %zu fields, %.1f MB raw, target %.0f dB\n\n",
              atm.field_count(), atm.total_bytes() / (1024.0 * 1024.0),
              target_db);

  const Session session;  // threads = hardware concurrency
  BatchJob job;
  job.target = FixedPsnr{target_db};
  for (const auto& f : atm.fields)
    job.fields.push_back({f.name, Source::memory(f.span(), f.dims.extents)});
  const BatchReport batch = session.compress_batch(job);

  std::printf("%-10s %10s %10s %8s %9s\n", "field", "PSNR(dB)", "ratio",
              "bits/val", "outliers");
  for (const auto& f : batch.fields)
    std::printf("%-10s %10.2f %10.2f %8.2f %9zu\n", f.name.c_str(),
                f.actual_psnr_db, f.compression_ratio, f.bit_rate,
                f.outlier_count);

  std::printf("\nacross %zu fields: AVG %.2f dB, STDEV %.2f dB, "
              "met-target %.1f%%\n",
              batch.fields.size(), batch.mean_psnr_db, batch.stdev_psnr_db,
              100.0 * batch.met_fraction);

  double total_ratio = 0.0;
  for (const auto& f : batch.fields) total_ratio += f.compression_ratio;
  std::printf("mean compression ratio: %.1fx  (one pass per field — no "
              "per-field bound tuning)\n",
              total_ratio / static_cast<double>(batch.fields.size()));
  return 0;
}
