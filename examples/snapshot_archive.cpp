// Snapshot-series archival: everything in one pipeline, via the facade.
//
// A small campaign writes a time series of snapshots. Each snapshot is
// compressed to a fixed PSNR through one reusable Session (block-parallel
// over the shared pool), and all snapshots land in one self-describing
// archive — the workflow a simulation's I/O layer would actually run.
// Reading back, we verify every snapshot meets the quality target and show
// per-snapshot whiteness of the compression error (errors stay
// uncorrelated, so downstream spectra remain trustworthy).
//
//   $ ./snapshot_archive [target_db]
#include <cstdio>
#include <cstdlib>

#include "fpsnr/fpsnr.h"

#include "data/timeseries.h"
#include "io/archive.h"
#include "metrics/autocorrelation.h"
#include "metrics/metrics.h"

int main(int argc, char** argv) {
  using namespace fpsnr;

  const double target_db = argc > 1 ? std::atof(argv[1]) : 70.0;

  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{128, 128};
  cfg.snapshots = 12;
  const auto series = data::make_advected_series(cfg);
  std::printf("campaign: %zu snapshots of %zux%zu, target %.0f dB\n\n",
              series.size(), cfg.dims[0], cfg.dims[1], target_db);

  const Session session({.threads = 4});

  // Write phase: fixed-PSNR, one archive entry per snapshot.
  std::vector<io::ArchiveEntry> entries;
  std::size_t raw_bytes = 0;
  for (const auto& snap : series) {
    io::ArchiveEntry e;
    e.name = snap.name;
    e.bytes = session
                  .compress(Source::memory(snap.span(), snap.dims.extents),
                            FixedPsnr{target_db}, Sink::memory())
                  .archive;
    raw_bytes += snap.bytes();
    entries.push_back(std::move(e));
  }
  const auto archive = io::write_archive(entries);
  std::printf("archive: %zu -> %zu bytes (%.1fx)\n\n", raw_bytes,
              archive.size(),
              static_cast<double>(raw_bytes) / archive.size());

  // Read phase: verify quality and error whiteness per snapshot.
  std::printf("%-6s %10s %8s %12s\n", "snap", "PSNR(dB)", "met", "err-acf max");
  std::size_t met = 0;
  for (const auto& snap : series) {
    const auto stream = io::archive_entry(archive, snap.name);
    const auto out = session.decompress(
        Source::memory(std::span<const std::uint8_t>(stream)));
    const auto rep = metrics::compare<float>(snap.span(), out.f32);
    const double white =
        metrics::error_whiteness<float>(snap.span(), out.f32, 8);
    if (rep.psnr_db >= target_db) ++met;
    std::printf("%-6s %10.2f %8s %12.3f\n", snap.name.c_str(), rep.psnr_db,
                rep.psnr_db >= target_db ? "yes" : "no", white);
  }
  std::printf("\n%zu/%zu snapshots met the %.0f dB target; error "
              "autocorrelation stays low (quantization noise is nearly "
              "white).\n", met, series.size(), target_db);
  return 0;
}
