// Tour of every error-control mode on one Hurricane field, including the
// search-based fixed-rate extension and the transform-codec engines.
//
//   $ ./error_mode_tour
#include <cstdio>

#include "core/compressor.h"
#include "core/search_baseline.h"
#include "data/dataset.h"
#include "metrics/metrics.h"

namespace {

void report(const char* label, const fpsnr::core::CompressResult& r,
            const fpsnr::metrics::ErrorReport& rep) {
  std::printf("%-24s PSNR %8.2f dB  max|err| %9.3e  pw-rel %9.3e  "
              "ratio %7.2f\n",
              label, rep.psnr_db, rep.max_abs_error, rep.max_pw_rel_error,
              r.info.compression_ratio);
}

}  // namespace

int main() {
  using namespace fpsnr;

  const data::Dataset hurricane = data::make_hurricane({});
  const data::Field& f = hurricane.field("U");  // signed wind component
  const double vr = metrics::value_range<float>(f.span());
  std::printf("field %s: %zu values, range %.2f\n\n", f.name.c_str(), f.size(), vr);

  {  // absolute bound: every point within 0.5 m/s
    const auto r =
        core::compress<float>(f.span(), f.dims, core::ControlRequest::absolute(0.5));
    report("abs (eb = 0.5)", r, core::verify<float>(f.span(), r.stream));
  }
  {  // value-range relative: every point within 1e-3 * range
    const auto r =
        core::compress<float>(f.span(), f.dims, core::ControlRequest::relative(1e-3));
    report("vr-rel (eb = 1e-3)", r, core::verify<float>(f.span(), r.stream));
  }
  {  // pointwise relative: every point within 1% of itself
    const auto r =
        core::compress<float>(f.span(), f.dims, core::ControlRequest::pointwise(0.01));
    report("pw-rel (eb = 1%)", r, core::verify<float>(f.span(), r.stream));
  }
  {  // fixed PSNR: the paper's mode
    const auto r = core::compress_fixed_psnr<float>(f.span(), f.dims, 85.0);
    report("fixed-PSNR (85 dB)", r, core::verify<float>(f.span(), r.stream));
  }
  {  // fixed rate: future-work extension, bisection on the bound
    const auto rr = core::search_fixed_rate<float>(f.span(), f.dims, 6.0);
    report("fixed-rate (6 bits/val)", rr.result,
           core::verify<float>(f.span(), rr.result.stream));
    std::printf("%-24s   (%zu probe passes, achieved %.2f bits/value)\n", "",
                rr.compression_passes, rr.achieved_bits_per_value);
  }
  std::printf("\ntransform engines (Theorem 2 — PSNR-only control):\n");
  {
    core::CompressOptions opts;
    opts.engine = core::Engine::TransformHaar;
    const auto r = core::compress_fixed_psnr<float>(f.span(), f.dims, 85.0, opts);
    report("Haar DWT (85 dB)", r, core::verify<float>(f.span(), r.stream));
    opts.engine = core::Engine::TransformDct;
    const auto r2 = core::compress_fixed_psnr<float>(f.span(), f.dims, 85.0, opts);
    report("block DCT (85 dB)", r2, core::verify<float>(f.span(), r2.stream));
  }
  std::printf("\nnote: prediction-based SZ bounds every *point*; the "
              "transform engines bound only the aggregate PSNR.\n");
  return 0;
}
