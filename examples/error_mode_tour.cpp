// Tour of every Target on one Hurricane field through the Session facade,
// including the first-class fixed-rate mode (per-block rate bisection — no
// external search loop) and the transform-codec engines.
//
//   $ ./error_mode_tour
#include <cstdio>

#include "fpsnr/fpsnr.h"

#include "data/dataset.h"
#include "metrics/metrics.h"

namespace {

using namespace fpsnr;

void run(const Session& session, const char* label,
         std::span<const float> values, const std::vector<std::size_t>& dims,
         const Target& target) {
  const auto r =
      session.compress(Source::memory(values, dims), target, Sink::memory());
  const auto d =
      session.decompress(Source::memory(std::span<const std::uint8_t>(r.archive)));
  const auto rep = metrics::compare<float>(values, d.f32);
  std::printf("%-24s PSNR %8.2f dB  max|err| %9.3e  pw-rel %9.3e  "
              "ratio %7.2f\n",
              label, rep.psnr_db, rep.max_abs_error, rep.max_pw_rel_error,
              r.compression_ratio);
}

}  // namespace

int main() {
  const data::Dataset hurricane = data::make_hurricane({});
  const data::Field& f = hurricane.field("U");  // signed wind component
  const double vr = metrics::value_range<float>(f.span());
  std::printf("field %s: %zu values, range %.2f\n\n", f.name.c_str(), f.size(),
              vr);

  const Session session;
  const auto& dims = f.dims.extents;
  run(session, "abs (eb = 0.5)", f.span(), dims, PointwiseAbs{0.5});
  run(session, "vr-rel (eb = 1e-3)", f.span(), dims, ValueRangeRel{1e-3});
  run(session, "pw-rel (eb = 1%)", f.span(), dims, PointwiseRel{0.01});
  run(session, "fixed-PSNR (85 dB)", f.span(), dims, FixedPsnr{85.0});
  // Fixed rate is a Target like any other now: each pipeline block bisects
  // its own bound toward the bit budget in one compress() call.
  const auto rate = session.compress(Source::memory(f.span(), dims),
                                     FixedRate{6.0}, Sink::memory());
  std::printf("%-24s achieved %.2f bits/value, PSNR %8.2f dB, ratio %7.2f\n",
              "fixed-rate (6 bits/val)", rate.bit_rate, rate.achieved_psnr_db,
              rate.compression_ratio);

  std::printf("\ntransform engines (Theorem 2 — PSNR-only control):\n");
  const Session haar({.engine = "haar"});
  run(haar, "Haar DWT (85 dB)", f.span(), dims, FixedPsnr{85.0});
  const Session dct({.engine = "dct"});
  run(dct, "block DCT (85 dB)", f.span(), dims, FixedPsnr{85.0});

  std::printf("\nnote: prediction-based SZ bounds every *point*; the "
              "transform engines bound only the aggregate PSNR.\n");
  return 0;
}
