// Cosmology storage-budget pipeline through the Session facade: the
// HACC/NYX scenario from the paper's introduction.
//
// The intro's motivating problem: a cosmology code wants to keep every
// snapshot, but raw dumps exceed the file system budget, so researchers
// resort to temporal decimation (keep every k-th snapshot, lose the rest).
// Fixed-PSNR compression offers the alternative: keep *all* snapshots at a
// uniform, guaranteed quality, and pick the PSNR from the storage budget.
//
//   $ ./cosmology_pipeline [budget_fraction]
//
// budget_fraction = compressed/original target, default 0.10 (10%).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fpsnr/fpsnr.h"

#include "data/dataset.h"

namespace {

fpsnr::BatchJob nyx_job(const fpsnr::data::Dataset& nyx, double target_db) {
  fpsnr::BatchJob job;
  job.target = fpsnr::FixedPsnr{target_db};
  for (const auto& f : nyx.fields)
    job.fields.push_back(
        {f.name, fpsnr::Source::memory(f.span(), f.dims.extents)});
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpsnr;

  const double budget = argc > 1 ? std::atof(argv[1]) : 0.10;
  const data::Dataset nyx = data::make_nyx({});
  const double raw_mb = nyx.total_bytes() / (1024.0 * 1024.0);
  std::printf("NYX stand-in snapshot: %zu fields, %.1f MB raw\n",
              nyx.field_count(), raw_mb);
  std::printf("storage budget: %.0f%% of raw (%.1f MB per snapshot)\n\n",
              100.0 * budget, raw_mb * budget);

  // Strategy A (status quo): temporal decimation. Keeping every k-th
  // snapshot meets the budget trivially but destroys time resolution.
  const int k = static_cast<int>(1.0 / budget + 0.5);
  std::printf("strategy A - decimation: keep 1 snapshot in %d, lose %d/%d of "
              "the time axis entirely\n\n", k, k - 1, k);

  // Strategy B (this library): sweep PSNR targets, find the highest quality
  // that fits the budget, keep every snapshot.
  const Session session;
  std::printf("strategy B - fixed-PSNR compression of every snapshot:\n");
  std::printf("%8s %12s %12s %14s\n", "PSNR", "ratio", "size(MB)", "fits budget?");
  double chosen_psnr = 0.0;
  for (double target = 120.0; target >= 30.0; target -= 10.0) {
    const auto batch = session.compress_batch(nyx_job(nyx, target));
    std::size_t bytes = 0;
    for (const auto& f : batch.fields) bytes += f.compressed_bytes;
    const double frac = static_cast<double>(bytes) / nyx.total_bytes();
    const bool fits = frac <= budget;
    std::printf("%8.0f %12.1f %12.2f %14s\n", target,
                nyx.total_bytes() / static_cast<double>(bytes),
                bytes / (1024.0 * 1024.0), fits ? "yes" : "no");
    if (fits && chosen_psnr == 0.0) chosen_psnr = target;
  }

  if (chosen_psnr > 0.0) {
    std::printf("\n=> every snapshot kept at %.0f dB; the %d-snapshot gap of "
                "strategy A is gone.\n", chosen_psnr, k);
    // And the per-field guarantee costs one pass per field:
    const auto batch = session.compress_batch(nyx_job(nyx, chosen_psnr));
    std::printf("   achieved: AVG %.2f dB, STDEV %.2f dB across %zu fields\n",
                batch.mean_psnr_db, batch.stdev_psnr_db, batch.fields.size());
  } else {
    std::printf("\n=> budget below what 30 dB buys; relax the budget or "
                "decimate.\n");
  }
  return 0;
}
