// Block-parallel pipeline tour: fixed-PSNR compression fanned out over a
// thread pool, with byte-deterministic output and random-access decode.
//
// The block layout depends only on the dims and the requested block size,
// never on the thread count — so the archive you write on a 96-core
// ingest node is bit-for-bit the archive a laptop writes, and any single
// block can be decoded later without touching the rest of the stream.
#include <cstdio>

#include "core/pipeline.h"
#include "data/synth.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;

int main() {
  const data::Dims dims{512, 256};
  auto values = data::smoothed_noise(dims, 20180713, 3, 2);
  data::rescale(values, -40.0f, 55.0f);

  const double target_db = 80.0;
  std::printf("field %zux%zu, target PSNR %.0f dB\n\n", dims[0], dims[1],
              target_db);

  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;

  std::vector<std::uint8_t> reference;
  for (std::size_t threads : {1ul, 2ul, 4ul, 8ul}) {
    opts.parallel.threads = threads;
    const auto result =
        core::compress_fixed_psnr<float>(values, dims, target_db, opts);
    const auto report = core::verify<float>(values, result.stream);
    if (threads == 1) reference = result.stream;
    std::printf("threads %zu: %7zu bytes, ratio %6.2f, actual %6.2f dB, %s\n",
                threads, result.stream.size(), result.info.compression_ratio,
                report.psnr_db,
                result.stream == reference ? "bytes == threads-1"
                                           : "BYTES DIFFER (bug!)");
  }

  const auto info = core::inspect_block_stream(reference);
  std::printf("\ncontainer: %zu block(s) x %zu row(s), codec %.*s\n",
              info.block_count, info.block_rows,
              static_cast<int>(info.codec_name.size()), info.codec_name.data());

  // Random access: pull one block out of the middle without a full decode.
  const std::size_t pick = info.block_count / 2;
  const auto block = core::decompress_block<float>(reference, pick);
  std::printf("random-access block %zu: %zu values (%zu row(s))\n", pick,
              block.values.size(), block.dims[0]);
  return 0;
}
