// Block-parallel pipeline tour through the Session facade: fixed-PSNR
// compression fanned out over a thread pool, with byte-deterministic
// output and random-access decode.
//
// The block layout depends only on the dims and the requested tile shape,
// never on the thread count — so the archive you write on a 96-core
// ingest node is bit-for-bit the archive a laptop writes, and any single
// block can be decoded later without touching the rest of the stream.
#include <cstdio>

#include "fpsnr/fpsnr.h"

#include "data/synth.h"

int main() {
  namespace data = fpsnr::data;

  const data::Dims dims{512, 256};
  auto values = data::smoothed_noise(dims, 20180713, 3, 2);
  data::rescale(values, -40.0f, 55.0f);

  const fpsnr::Target target = fpsnr::FixedPsnr{80.0};
  std::printf("field %zux%zu, target PSNR 80 dB\n\n", dims[0], dims[1]);

  std::vector<std::uint8_t> reference;
  for (std::size_t threads : {1ul, 2ul, 4ul, 8ul}) {
    const fpsnr::Session session({.threads = threads});
    const auto report = session.compress(
        fpsnr::Source::memory(std::span<const float>(values), dims.extents),
        target, fpsnr::Sink::memory());
    if (threads == 1) reference = report.archive;
    std::printf("threads %zu: %7zu bytes, ratio %6.2f, actual %6.2f dB, %s\n",
                threads, report.archive.size(), report.compression_ratio,
                report.achieved_psnr_db,
                report.archive == reference ? "bytes == threads-1"
                                            : "BYTES DIFFER (bug!)");
  }

  const fpsnr::Session session;
  const auto info = session.inspect(
      fpsnr::Source::memory(std::span<const std::uint8_t>(reference)));
  std::printf("\ncontainer: %llu block(s), tile %zu x %zu, codec %s\n",
              static_cast<unsigned long long>(info.block_count),
              info.tile[0], info.tile[1], info.codec.c_str());

  // Random access: pull one block out of the middle without a full decode.
  const std::size_t pick = info.block_count / 2;
  const auto block = session.decompress_block(
      fpsnr::Source::memory(std::span<const std::uint8_t>(reference)), pick);
  std::printf("random-access block %zu: %zu values (%zu row(s))\n", pick,
              block.size(), block.dims[0]);
  return 0;
}
