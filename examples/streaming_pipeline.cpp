// Streaming I/O walkthrough: compress a field straight to disk as blocks
// finish, then read it back through a memory map — including pulling one
// block out of the middle of the archive without touching the rest.
//
// The point to notice in the output: the reorder buffer's high-water mark
// (the only payload bytes ever held in RAM on the write side) is a small
// fraction of the container, and it is the SAME archive byte-for-byte that
// the in-memory path would have produced.
//
//   $ ./example_streaming_pipeline [target_db]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/pipeline.h"
#include "data/synth.h"
#include "io/streaming_archive.h"
#include "metrics/metrics.h"

int main(int argc, char** argv) {
  using namespace fpsnr;

  const double target_db = argc > 1 ? std::atof(argv[1]) : 70.0;
  const data::Dims dims{512, 256};
  auto values = data::smoothed_noise(dims, 20180713, 3, 2);
  data::rescale(values, -40.0f, 55.0f);

  const auto path =
      (std::filesystem::temp_directory_path() / "streaming_demo.fpbk").string();

  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  opts.parallel.threads = 8;
  opts.parallel.block_rows = 32;  // 16 blocks

  // Write side: blocks spill to disk the moment their worker finishes.
  io::StreamingStats stats;
  const auto result = core::compress_to_file<float>(
      std::span<const float>(values), dims,
      core::ControlRequest::fixed_psnr(target_db), opts, path, &stats);
  std::printf("streamed %zu values -> %llu bytes on disk (ratio %.2f)\n",
              values.size(), static_cast<unsigned long long>(stats.total_bytes),
              result.info.compression_ratio);
  std::printf("peak reorder buffer: %zu bytes in %zu block(s)  (%.1f%% of the "
              "container)\n",
              stats.peak_buffered_bytes, stats.peak_buffered_blocks,
              100.0 * static_cast<double>(stats.peak_buffered_bytes) /
                  static_cast<double>(stats.total_bytes));

  // Read side: map the archive; only pages we touch are faulted in.
  const io::MmapArchiveReader reader(path);
  std::printf("archive: %zu block(s) x %llu row(s), eb_abs %.3e\n",
              reader.block_count(),
              static_cast<unsigned long long>(reader.header().block_rows),
              reader.header().eb_abs);

  // Random access: decode one mid-archive block; I/O is bounded by that
  // block's extent (header + two index entries + the block bytes).
  const std::size_t mid = reader.block_count() / 2;
  const auto block = core::decompress_file_block<float>(path, mid);
  std::printf("block %zu alone: %zu values (%zu row(s)), %zu compressed "
              "bytes read\n",
              mid, block.values.size(), block.dims[0],
              reader.block(mid).size());

  // Full decode for the quality report.
  const auto full = core::decompress_file<float>(path, 8);
  const auto report = metrics::compare<float>(values, full.values);
  std::printf("full decode: PSNR %.2f dB (target %.1f) over %zu values\n",
              report.psnr_db, target_db, full.values.size());

  std::filesystem::remove(path);
  return report.psnr_db >= target_db - 0.5 ? 0 : 1;
}
