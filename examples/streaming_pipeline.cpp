// Streaming I/O walkthrough through the Session facade: compress a field
// straight to disk as blocks finish (Sink::stream), then read it back from
// the file — including pulling one block out of the middle of the archive
// without touching the rest (file sources are memory-mapped).
//
// The point to notice in the output: the reorder buffer's high-water mark
// (the only payload bytes ever held in RAM on the write side) is a small
// fraction of the container, and it is the SAME archive byte-for-byte that
// Sink::memory()/Sink::file() would have produced.
//
//   $ ./example_streaming_pipeline [target_db]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "fpsnr/fpsnr.h"

#include "data/synth.h"
#include "metrics/metrics.h"

int main(int argc, char** argv) {
  namespace data = fpsnr::data;
  namespace metrics = fpsnr::metrics;

  const double target_db = argc > 1 ? std::atof(argv[1]) : 70.0;
  const data::Dims dims{512, 256};
  auto values = data::smoothed_noise(dims, 20180713, 3, 2);
  data::rescale(values, -40.0f, 55.0f);

  const auto path =
      (std::filesystem::temp_directory_path() / "streaming_demo.fpbk").string();

  // A 32-row slab tile -> 16 blocks (TileShape::slab keeps the legacy
  // axis-0 geometry; the default would pick a near-cubic tile instead).
  const fpsnr::Session session(
      {.threads = 8, .tile = fpsnr::TileShape::slab(32)});

  // Write side: blocks spill to disk the moment their worker finishes.
  const auto report = session.compress(
      fpsnr::Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::FixedPsnr{target_db}, fpsnr::Sink::stream(path));
  std::printf("streamed %zu values -> %zu bytes on disk (ratio %.2f)\n",
              values.size(), report.compressed_bytes,
              report.compression_ratio);
  std::printf("peak reorder buffer: %zu bytes in %zu block(s)  (%.1f%% of the "
              "container)\n",
              report.peak_buffered_bytes, report.peak_buffered_blocks,
              100.0 * static_cast<double>(report.peak_buffered_bytes) /
                  static_cast<double>(report.compressed_bytes));

  // Read side: inspect + random access off the file; only the header, two
  // index entries, and the picked block's extent are ever read.
  const auto info = session.inspect(fpsnr::Source::file(path));
  std::printf("archive: %llu block(s), tile %zu x %zu, eb_abs %.3e\n",
              static_cast<unsigned long long>(info.block_count),
              info.tile[0], info.tile[1], info.eb_abs);

  const std::size_t mid = info.block_count / 2;
  const auto block = session.decompress_block(fpsnr::Source::file(path), mid);
  std::printf("block %zu alone: %zu values (%zu row(s))\n", mid, block.size(),
              block.dims[0]);

  // Full decode (memory-mapped) for the quality report.
  const auto full = session.decompress(fpsnr::Source::file(path));
  const auto quality = metrics::compare<float>(values, full.f32);
  std::printf("full decode: PSNR %.2f dB (target %.1f) over %zu values\n",
              quality.psnr_db, target_db, full.size());

  std::filesystem::remove(path);
  return quality.psnr_db >= target_db - 0.5 ? 0 : 1;
}
