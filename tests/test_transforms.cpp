// Tests for the orthonormal Haar and block-DCT transforms: invertibility,
// orthogonality (norm preservation), and energy compaction.
#include "transform/dct.h"
#include "transform/haar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "data/synth.h"

namespace transform = fpsnr::transform;
namespace data = fpsnr::data;

namespace {

double l2_norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

std::vector<double> random_vec(const data::Dims& dims, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(dims.count());
  for (auto& x : v) x = dist(rng);
  return v;
}

}  // namespace

class TransformInvertibility
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(TransformInvertibility, HaarForwardInverseIsIdentity) {
  const data::Dims dims(GetParam());
  const auto original = random_vec(dims, 1);
  for (unsigned levels : {1u, 2u, transform::max_haar_levels(dims)}) {
    auto v = original;
    transform::haar_forward(v, dims, levels);
    transform::haar_inverse(v, dims, levels);
    for (std::size_t i = 0; i < v.size(); ++i)
      ASSERT_NEAR(v[i], original[i], 1e-10) << "levels=" << levels;
  }
}

TEST_P(TransformInvertibility, HaarPreservesL2Norm) {
  const data::Dims dims(GetParam());
  auto v = random_vec(dims, 2);
  const double before = l2_norm(v);
  transform::haar_forward(v, dims, transform::max_haar_levels(dims));
  EXPECT_NEAR(l2_norm(v), before, before * 1e-12);
}

TEST_P(TransformInvertibility, DctForwardInverseIsIdentity) {
  const data::Dims dims(GetParam());
  const auto original = random_vec(dims, 3);
  for (std::size_t block : {4ul, 8ul, 16ul}) {
    auto v = original;
    transform::dct_forward(v, dims, block);
    transform::dct_inverse(v, dims, block);
    for (std::size_t i = 0; i < v.size(); ++i)
      ASSERT_NEAR(v[i], original[i], 1e-9) << "block=" << block;
  }
}

TEST_P(TransformInvertibility, DctPreservesL2Norm) {
  const data::Dims dims(GetParam());
  auto v = random_vec(dims, 4);
  const double before = l2_norm(v);
  transform::dct_forward(v, dims, 8);
  EXPECT_NEAR(l2_norm(v), before, before * 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransformInvertibility,
    ::testing::Values(std::vector<std::size_t>{64},           // 1D even
                      std::vector<std::size_t>{63},           // 1D odd
                      std::vector<std::size_t>{16, 16},       // 2D square
                      std::vector<std::size_t>{15, 22},       // 2D odd mix
                      std::vector<std::size_t>{8, 8, 8},      // 3D cube
                      std::vector<std::size_t>{5, 9, 11}));   // 3D odd

TEST(Haar, ConstantSignalCompactsToDC) {
  const data::Dims dims{16};
  std::vector<double> v(16, 3.0);
  transform::haar_forward(v, dims, transform::max_haar_levels(dims));
  // All energy in coefficient 0: 3*sqrt(16) = 12.
  EXPECT_NEAR(v[0], 12.0, 1e-12);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_NEAR(v[i], 0.0, 1e-12);
}

TEST(Haar, SingleLevelPairMath) {
  const data::Dims dims{4};
  std::vector<double> v = {1.0, 3.0, 5.0, 9.0};
  transform::haar_forward(v, dims, 1);
  const double s = std::sqrt(2.0);
  EXPECT_NEAR(v[0], 4.0 / s * 1.0, 1e-12);    // (1+3)/sqrt2
  EXPECT_NEAR(v[1], 14.0 / s * 1.0, 1e-12);   // (5+9)/sqrt2
  EXPECT_NEAR(v[2], -2.0 / s * 1.0, 1e-12);   // (1-3)/sqrt2
  EXPECT_NEAR(v[3], -4.0 / s * 1.0, 1e-12);   // (5-9)/sqrt2
}

TEST(Haar, MaxLevelsComputation) {
  EXPECT_EQ(transform::max_haar_levels(data::Dims{1}), 0u);
  EXPECT_EQ(transform::max_haar_levels(data::Dims{2}), 1u);
  EXPECT_EQ(transform::max_haar_levels(data::Dims{16}), 4u);
  EXPECT_GE(transform::max_haar_levels(data::Dims{16, 3}), 4u);
}

TEST(Haar, SmoothFieldEnergyCompaction) {
  const data::Dims dims{64, 64};
  auto f = data::smoothed_noise(dims, 6, 4, 2);
  std::vector<double> v(f.begin(), f.end());
  const double total = l2_norm(v);
  transform::haar_forward(v, dims, 4);
  // Top 10% largest coefficients must hold almost all the energy.
  std::vector<double> mags(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) mags[i] = std::abs(v[i]);
  std::sort(mags.begin(), mags.end(), std::greater<>());
  double top = 0.0;
  for (std::size_t i = 0; i < mags.size() / 10; ++i) top += mags[i] * mags[i];
  EXPECT_GT(std::sqrt(top), 0.98 * total);
}

TEST(Dct, ConstantBlockCompactsToDC) {
  const data::Dims dims{8};
  std::vector<double> v(8, 2.0);
  transform::dct_forward(v, dims, 8);
  EXPECT_NEAR(v[0], 2.0 * std::sqrt(8.0), 1e-12);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_NEAR(v[i], 0.0, 1e-12);
}

TEST(Dct, PartialTailBlockHandled) {
  // 10 = one full block of 8 plus a tail block of 2.
  const data::Dims dims{10};
  const auto original = random_vec(dims, 8);
  auto v = original;
  transform::dct_forward(v, dims, 8);
  transform::dct_inverse(v, dims, 8);
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_NEAR(v[i], original[i], 1e-10);
}

TEST(Transforms, SizeMismatchThrows) {
  std::vector<double> v(10);
  EXPECT_THROW(transform::haar_forward(v, data::Dims{11}, 1), std::invalid_argument);
  EXPECT_THROW(transform::dct_forward(v, data::Dims{11}), std::invalid_argument);
  EXPECT_THROW(transform::dct_forward(v, data::Dims{10}, 1), std::invalid_argument);
}
