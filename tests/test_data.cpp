// Unit tests for the synthesis toolkit and the dataset stand-ins.
#include "data/dataset.h"
#include "data/synth.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace data = fpsnr::data;

// ---- Dims / Field ----------------------------------------------------------

TEST(Dims, BasicProperties) {
  const data::Dims d{4, 5, 6};
  EXPECT_EQ(d.rank(), 3u);
  EXPECT_EQ(d.count(), 120u);
  EXPECT_EQ(d[1], 5u);
}

TEST(Dims, InvalidThrows) {
  EXPECT_THROW(data::Dims(std::vector<std::size_t>{}), std::invalid_argument);
  EXPECT_THROW((data::Dims{1, 2, 3, 4}), std::invalid_argument);
  EXPECT_THROW((data::Dims{4, 0}), std::invalid_argument);
}

TEST(Field, ConstructionChecksSize) {
  data::Field f("x", data::Dims{2, 3});
  EXPECT_EQ(f.size(), 6u);
  EXPECT_EQ(f.bytes(), 24u);
  EXPECT_THROW(data::Field("y", data::Dims{2, 3}, std::vector<float>(5)),
               std::invalid_argument);
}

// ---- synthesis primitives ---------------------------------------------------

TEST(Synth, WhiteNoiseDeterministicAndBounded) {
  const auto a = data::white_noise(1000, 42);
  const auto b = data::white_noise(1000, 42);
  const auto c = data::white_noise(1000, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (float x : a) {
    EXPECT_GE(x, -1.0f);
    EXPECT_LE(x, 1.0f);
  }
}

TEST(Synth, SmoothedNoiseIsSmoother) {
  const data::Dims dims{64, 64};
  const auto rough = data::smoothed_noise(dims, 1, 0, 0);
  const auto smooth = data::smoothed_noise(dims, 1, 4, 2);
  // Mean absolute first difference must drop substantially after blurring.
  auto roughness = [&](const std::vector<float>& v) {
    double acc = 0.0;
    for (std::size_t i = 1; i < v.size(); ++i)
      acc += std::abs(static_cast<double>(v[i]) - v[i - 1]);
    return acc / static_cast<double>(v.size());
  };
  EXPECT_LT(roughness(smooth), roughness(rough) / 4.0);
}

TEST(Synth, SmoothedNoiseNormalized) {
  const auto v = data::smoothed_noise(data::Dims{32, 32, 8}, 5, 2, 2);
  float peak = 0.0f;
  for (float x : v) peak = std::max(peak, std::abs(x));
  EXPECT_NEAR(peak, 1.0f, 1e-5f);
}

TEST(Synth, CosineMixtureRanks) {
  for (auto dims : {data::Dims{128}, data::Dims{32, 16}, data::Dims{8, 8, 8}}) {
    const auto v = data::cosine_mixture(dims, 9, 8, 1.0);
    EXPECT_EQ(v.size(), dims.count());
    float peak = 0.0f;
    for (float x : v) peak = std::max(peak, std::abs(x));
    EXPECT_NEAR(peak, 1.0f, 1e-5f);
  }
  EXPECT_THROW(data::cosine_mixture(data::Dims{8}, 1, 0), std::invalid_argument);
}

TEST(Synth, RescaleMapsToRange) {
  std::vector<float> v = {-5.0f, 0.0f, 5.0f};
  data::rescale(v, 2.0f, 4.0f);
  EXPECT_FLOAT_EQ(v[0], 2.0f);
  EXPECT_FLOAT_EQ(v[1], 3.0f);
  EXPECT_FLOAT_EQ(v[2], 4.0f);
}

TEST(Synth, RescaleConstantField) {
  std::vector<float> v(10, 7.0f);
  data::rescale(v, 1.0f, 2.0f);
  for (float x : v) EXPECT_FLOAT_EQ(x, 1.0f);
}

TEST(Synth, PointwiseTransforms) {
  std::vector<float> v = {-1.0f, 0.0f, 1.0f};
  data::exponentialize(v, 1.0f);
  EXPECT_NEAR(v[0], std::exp(-1.0f), 1e-6);
  EXPECT_NEAR(v[2], std::exp(1.0f), 1e-6);

  std::vector<float> w = {-2.0f, 0.5f, 3.0f};
  data::clamp(w, 0.0f, 1.0f);
  EXPECT_EQ(w, (std::vector<float>{0.0f, 0.5f, 1.0f}));

  std::vector<float> s = {0.1f, 0.5f, 0.9f};
  data::sparsify_below(s, 0.4f);
  EXPECT_EQ(s[0], 0.0f);
  EXPECT_EQ(s[1], 0.5f);

  std::vector<float> a = {1.0f, 2.0f};
  data::add_scaled(a, {10.0f, 20.0f}, 0.5f);
  EXPECT_EQ(a, (std::vector<float>{6.0f, 12.0f}));
  data::modulate(a, {2.0f, 0.0f});
  EXPECT_EQ(a, (std::vector<float>{12.0f, 0.0f}));
  EXPECT_THROW(data::add_scaled(a, {1.0f}, 1.0f), std::invalid_argument);
  EXPECT_THROW(data::modulate(a, {1.0f}), std::invalid_argument);
}

// ---- dataset stand-ins (Table I structure) ----------------------------------

TEST(Datasets, TableOneStructure) {
  const data::DatasetConfig cfg{0.5, 7};
  const auto nyx = data::make_nyx(cfg);
  EXPECT_EQ(nyx.name, "NYX");
  EXPECT_EQ(nyx.field_count(), 6u);  // Table I: 6 fields, 3D
  for (const auto& f : nyx.fields) EXPECT_EQ(f.dims.rank(), 3u);

  const auto atm = data::make_atm(cfg);
  EXPECT_EQ(atm.name, "ATM");
  EXPECT_EQ(atm.field_count(), 79u);  // Table I: 79 fields, 2D
  for (const auto& f : atm.fields) EXPECT_EQ(f.dims.rank(), 2u);

  const auto hur = data::make_hurricane(cfg);
  EXPECT_EQ(hur.name, "Hurricane");
  EXPECT_EQ(hur.field_count(), 13u);  // Table I: 13 fields, 3D
  for (const auto& f : hur.fields) EXPECT_EQ(f.dims.rank(), 3u);
}

TEST(Datasets, FieldNamesUniqueAndNonEmpty) {
  for (const auto& ds : data::make_all_datasets({0.5, 3})) {
    std::set<std::string> names;
    for (const auto& f : ds.fields) {
      EXPECT_FALSE(f.name.empty());
      EXPECT_TRUE(names.insert(f.name).second) << "duplicate " << f.name;
    }
  }
}

TEST(Datasets, DeterministicBySeed) {
  const data::DatasetConfig a{0.5, 123}, b{0.5, 123}, c{0.5, 124};
  const auto d1 = data::make_hurricane(a);
  const auto d2 = data::make_hurricane(b);
  const auto d3 = data::make_hurricane(c);
  EXPECT_EQ(d1.fields[0].values, d2.fields[0].values);
  EXPECT_NE(d1.fields[0].values, d3.fields[0].values);
}

TEST(Datasets, AllValuesFinite) {
  for (const auto& ds : data::make_all_datasets({0.5, 99})) {
    for (const auto& f : ds.fields)
      for (float x : f.values)
        ASSERT_TRUE(std::isfinite(x)) << ds.name << "/" << f.name;
  }
}

TEST(Datasets, ExpectedFieldCharacter) {
  const auto atm = data::make_atm({0.5, 5});
  // Cloud fractions live in [0,1].
  const auto& cld = atm.field("CLDHGH");
  const auto [lo, hi] = std::minmax_element(cld.values.begin(), cld.values.end());
  EXPECT_GE(*lo, 0.0f);
  EXPECT_LE(*hi, 1.0f);
  // Precipitation-like fields are nonnegative and mostly near zero.
  const auto& prec = atm.field("PRECT");
  std::size_t near_zero = 0;
  float peak = 0.0f;
  for (float x : prec.values) {
    EXPECT_GE(x, 0.0f);
    peak = std::max(peak, x);
    if (x < 0.01f * 2.5e-7f) ++near_zero;
  }
  EXPECT_GT(peak, 0.0f);
  EXPECT_GT(near_zero, prec.values.size() / 4);

  const auto nyx = data::make_nyx({0.5, 5});
  // Densities are strictly positive with large dynamic range.
  const auto& rho = nyx.field("baryon_density");
  const auto [rlo, rhi] = std::minmax_element(rho.values.begin(), rho.values.end());
  EXPECT_GT(*rlo, 0.0f);
  EXPECT_GT(*rhi / *rlo, 1e4f);
}

TEST(Datasets, ScaleChangesExtents) {
  const auto small = data::make_hurricane({0.5, 1});
  const auto big = data::make_hurricane({1.0, 1});
  EXPECT_LT(small.total_values(), big.total_values());
  EXPECT_EQ(data::scaled_extent(100, 0.25), 25u);
  EXPECT_EQ(data::scaled_extent(10, 0.1), 8u);  // floor at 8
  EXPECT_THROW(data::scaled_extent(10, 0.0), std::invalid_argument);
}

TEST(Datasets, FieldLookup) {
  const auto hur = data::make_hurricane({0.5, 1});
  EXPECT_EQ(hur.field("QVAPOR").name, "QVAPOR");
  EXPECT_THROW(hur.field("NOPE"), std::out_of_range);
  EXPECT_EQ(hur.total_bytes(), hur.total_values() * sizeof(float));
}
