// Tests for the high-level compression facade (core::compress).
#include "core/compressor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "data/synth.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;

namespace {

std::vector<float> sample_field(const data::Dims& dims, std::uint64_t seed) {
  auto v = data::smoothed_noise(dims, seed, 3, 2);
  data::rescale(v, 200.0f, 320.0f);
  return v;
}

core::CompressResult compress_fixed_psnr(std::span<const float> values,
                                         const data::Dims& dims, double target,
                                         const core::CompressOptions& opts = {}) {
  return core::compress<float>(values, dims,
                               core::ControlRequest::fixed_psnr(target), opts);
}

metrics::ErrorReport verify_stream(std::span<const float> values,
                                   std::span<const std::uint8_t> stream) {
  const auto decoded = core::decompress<float>(stream);
  return metrics::compare<float>(values, decoded.values);
}

}  // namespace

TEST(Compressor, FixedPsnrMeetsTargetWithinTolerance) {
  const data::Dims dims{64, 96};
  const auto values = sample_field(dims, 1);
  for (double target : {40.0, 60.0, 80.0, 100.0}) {
    const auto r = compress_fixed_psnr(values, dims, target);
    const auto rep = verify_stream(values, r.stream);
    // Accuracy claim of the paper: deviation within a few dB, tight at
    // moderate/high targets.
    EXPECT_NEAR(rep.psnr_db, target, 3.0) << "target " << target;
    EXPECT_NEAR(r.predicted_psnr_db, target, 1e-9);
  }
}

TEST(Compressor, HigherTargetCostsMoreBits) {
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims, 2);
  double prev_rate = 0.0;
  for (double target : {30.0, 60.0, 90.0, 120.0}) {
    const auto r = compress_fixed_psnr(values, dims, target);
    EXPECT_GT(r.info.bit_rate, prev_rate) << "target " << target;
    prev_rate = r.info.bit_rate;
  }
}

TEST(Compressor, AbsoluteModePredictionCompletedFromData) {
  const data::Dims dims{48, 48};
  const auto values = sample_field(dims, 3);
  const auto r =
      core::compress<float>(values, dims, core::ControlRequest::absolute(0.01));
  EXPECT_FALSE(std::isnan(r.predicted_psnr_db));
  const auto rep = verify_stream(values, r.stream);
  EXPECT_LE(rep.max_abs_error, 0.01 * (1.0 + 1e-9));
  // Eq. (7) prediction should be within a couple of dB of reality here.
  EXPECT_NEAR(rep.psnr_db, r.predicted_psnr_db, 2.5);
}

TEST(Compressor, PointwiseModeThroughFacade) {
  const data::Dims dims{32, 32};
  auto values = sample_field(dims, 4);
  const auto r =
      core::compress<float>(values, dims, core::ControlRequest::pointwise(0.02));
  const auto out = core::decompress<float>(r.stream);
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(out.values[i] - values[i]),
              0.02 * std::abs(values[i]) * (1.0 + 1e-6));
}

TEST(Compressor, TransformEnginesHitPsnrTargets) {
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims, 5);
  for (auto engine : {core::Engine::TransformHaar, core::Engine::TransformDct}) {
    core::CompressOptions opts;
    opts.engine = engine;
    const auto r = compress_fixed_psnr(values, dims, 70.0, opts);
    const auto rep = verify_stream(values, r.stream);
    // Theorem 2: aggregate distortion control holds; actual may exceed target.
    EXPECT_GT(rep.psnr_db, 69.0);
  }
}

TEST(Compressor, SelfDescribingDecompressDispatch) {
  const data::Dims dims{32, 32};
  const auto values = sample_field(dims, 6);
  core::CompressOptions sz_opts;  // default engine
  core::CompressOptions tc_opts;
  tc_opts.engine = core::Engine::TransformHaar;
  const auto a = compress_fixed_psnr(values, dims, 60.0, sz_opts);
  const auto b = compress_fixed_psnr(values, dims, 60.0, tc_opts);
  // Same entry point decompresses both container formats.
  EXPECT_EQ(core::decompress<float>(a.stream).values.size(), values.size());
  EXPECT_EQ(core::decompress<float>(b.stream).values.size(), values.size());
}

TEST(Compressor, TransformEngineRejectsPointwise) {
  const data::Dims dims{16, 16};
  const auto values = sample_field(dims, 7);
  core::CompressOptions opts;
  opts.engine = core::Engine::TransformDct;
  EXPECT_THROW(
      core::compress<float>(values, dims, core::ControlRequest::pointwise(0.01), opts),
      std::invalid_argument);
}

TEST(Compressor, FixedRateRoutesThroughBlockPipeline) {
  // FixedRate used to be rejected here; it is now a first-class mode that
  // always routes through the block pipeline's per-block rate bisection
  // (there is no serial flat-stream form of a rate-searched field).
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims, 8);
  const auto r =
      core::compress<float>(values, dims, core::ControlRequest::fixed_rate(8.0));
  EXPECT_TRUE(core::is_block_stream(r.stream));
  EXPECT_TRUE(std::isnan(r.predicted_psnr_db));  // no closed-form prediction
  const auto d = core::decompress<float>(r.stream);
  EXPECT_EQ(d.values.size(), values.size());
  // Invalid budgets are still rejected.
  EXPECT_THROW(
      core::compress<float>(values, dims, core::ControlRequest::fixed_rate(0.0)),
      std::invalid_argument);
  EXPECT_THROW(
      core::compress<float>(values, dims, core::ControlRequest::fixed_rate(-4.0)),
      std::invalid_argument);
}

TEST(Compressor, ReportedInfoConsistent) {
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims, 9);
  const auto r = compress_fixed_psnr(values, dims, 80.0);
  EXPECT_EQ(r.info.value_count, values.size());
  EXPECT_EQ(r.info.compressed_bytes, r.stream.size());
  EXPECT_NEAR(r.info.compression_ratio,
              static_cast<double>(values.size() * 4) / r.stream.size(), 1e-9);
  EXPECT_NEAR(r.info.bit_rate, 8.0 * r.stream.size() / values.size(), 1e-9);
  EXPECT_NEAR(r.rel_bound_used, std::sqrt(3.0) * 1e-4, 1e-12);
}
