// Direct verification of the paper's three theorems.
//
// Theorem 1: for prediction-based lossy compression, the L2 distortion of
//   the reconstructed data equals the L2 distortion the quantizer applied
//   to the prediction errors (consequence of Eq. 1, X - X~ = Xpe - X~pe).
// Theorem 2: the same holds for orthogonal-transform coders with the
//   coefficient-domain distortion.
// Theorem 3: with uniform quantization the resulting PSNR depends only on
//   the bin width and value range, regardless of the data distribution.
#include <gtest/gtest.h>

#include <cmath>

#include "core/distortion_model.h"
#include "data/dataset.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "sz/codec.h"
#include "transform/transform_codec.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;
namespace sz = fpsnr::sz;
namespace transform = fpsnr::transform;

namespace {

double l2_of_difference(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

class TheoremOne : public ::testing::TestWithParam<int> {};

TEST_P(TheoremOne, DataDistortionEqualsPredictionErrorDistortion) {
  // Build varied fields; verify ||X - X~||_2 == ||Xpe - X~pe||_2 to FP
  // accuracy across bounds spanning five orders of magnitude.
  const int seed = GetParam();
  const data::Dims dims{40, 56};
  auto values = data::smoothed_noise(dims, static_cast<std::uint64_t>(seed), 2, 2);
  data::rescale(values, -7.0f, 13.0f);

  for (double eb : {1e-1, 1e-3, 1e-5}) {
    const auto trace = sz::prediction_trace<float>(values, dims, eb);
    const double pe_l2 = l2_of_difference(trace.pe, trace.pe_recon);

    sz::Params params;
    params.mode = sz::ErrorBoundMode::Absolute;
    params.bound = eb;
    const auto stream = sz::compress<float>(values, dims, params);
    const auto out = sz::decompress<float>(stream);
    const auto rep = metrics::compare<float>(values, out.values);

    // Equality up to float32 rounding: the stored reconstruction is float,
    // so each point carries ~eps*|x| extra noise on top of the quantizer
    // error; at tight bounds that is a few permille of the L2 norm.
    const double scale = std::max(1e-12, pe_l2);
    EXPECT_NEAR(rep.l2_error, pe_l2, scale * 5e-3 + 1e-9)
        << "eb=" << eb << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremOne, ::testing::Range(0, 6));

TEST(TheoremOne, HoldsOnRealisticDatasets) {
  const auto ds = data::make_hurricane({0.5, 21});
  for (const auto& f : {ds.field("U"), ds.field("QRAIN")}) {
    const double vr = metrics::value_range<float>(f.span());
    const double eb = 1e-4 * vr;
    const auto trace = sz::prediction_trace<float>(f.span(), f.dims, eb);
    const double pe_l2 = l2_of_difference(trace.pe, trace.pe_recon);

    sz::Params params;
    params.mode = sz::ErrorBoundMode::Absolute;
    params.bound = eb;
    const auto out = sz::decompress<float>(sz::compress<float>(f.span(), f.dims, params));
    const auto rep = metrics::compare<float>(f.span(), out.values);
    EXPECT_NEAR(rep.l2_error, pe_l2, std::max(pe_l2, 1e-12) * 1e-3) << f.name;
  }
}

class TheoremTwo : public ::testing::TestWithParam<transform::Kind> {};

TEST_P(TheoremTwo, DataDistortionEqualsCoefficientDistortion) {
  const data::Dims dims{32, 32};
  auto values = data::smoothed_noise(dims, 77, 3, 2);
  data::rescale(values, 0.0f, 50.0f);

  transform::Params params;
  params.kind = GetParam();
  params.bin_width = 0.05;

  const auto trace = transform::coefficient_trace<float>(values, dims, params);
  const double coeff_l2 = l2_of_difference(trace.coeffs, trace.coeffs_quantized);

  const auto stream = transform::compress<float>(values, dims, params);
  const auto out = transform::decompress<float>(stream);
  const auto rep = metrics::compare<float>(values, out.values);

  // Orthogonality: same L2 distortion in both domains (up to float32 I/O).
  EXPECT_NEAR(rep.l2_error, coeff_l2, std::max(coeff_l2, 1e-12) * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Kinds, TheoremTwo,
                         ::testing::Values(transform::Kind::HaarMultiLevel,
                                           transform::Kind::BlockDct));

TEST(TheoremThree, PsnrIndependentOfDistribution) {
  // Same bin width, wildly different data distributions: as long as the
  // prediction errors are wide relative to the bin, the achieved PSNR
  // tracks Eq. (6) regardless of shape (Theorem 3's "distribution-free").
  const data::Dims dims{64, 64};
  const double target = 55.0;

  struct Case {
    const char* name;
    std::vector<float> values;
  };
  std::vector<Case> cases;
  {
    auto v = data::white_noise(dims.count(), 1);
    cases.push_back({"white", std::move(v)});
  }
  {
    auto v = data::smoothed_noise(dims, 2, 1, 1);
    cases.push_back({"pink-ish", std::move(v)});
  }
  {
    auto v = data::smoothed_noise(dims, 3, 1, 1);
    data::exponentialize(v, 2.0f);  // skewed, heavy tailed
    cases.push_back({"lognormal", std::move(v)});
  }

  for (auto& c : cases) {
    data::rescale(c.values, -1.0f, 1.0f);
    sz::Params params;
    params.mode = sz::ErrorBoundMode::ValueRangeRelative;
    params.bound = core::rel_bound_for_psnr(target);
    const auto out =
        sz::decompress<float>(sz::compress<float>(c.values, dims, params));
    const auto rep = metrics::compare<float>(c.values, out.values);
    EXPECT_NEAR(rep.psnr_db, target, 1.5) << c.name;
  }
}

TEST(TheoremThree, Eq7MatchesMeasurementAcrossBounds) {
  // Sweep eb over decades on one field; measured PSNR must track Eq. (7)
  // with ~1 dB accuracy while bins stay narrow relative to error spread.
  const data::Dims dims{80, 80};
  auto values = data::white_noise(dims.count(), 5);

  for (double eb_rel : {1e-2, 1e-3, 1e-4, 1e-5}) {
    sz::Params params;
    params.mode = sz::ErrorBoundMode::ValueRangeRelative;
    params.bound = eb_rel;
    const auto out =
        sz::decompress<float>(sz::compress<float>(values, dims, params));
    const auto rep = metrics::compare<float>(values, out.values);
    const double predicted = core::psnr_for_rel_bound(eb_rel);
    // At very tight bounds a few prediction errors overflow the quantizer
    // range and are stored exactly (zero error), nudging the actual PSNR
    // above the prediction — same mechanism the paper reports.
    EXPECT_NEAR(rep.psnr_db, predicted, 2.0) << "eb_rel=" << eb_rel;
  }
}
