// Exit-code contract of the CLI's output paths: an unwritable -o must fail
// with exit 1 (an I/O error, not a usage error and never a silent success)
// on BOTH the in-memory and the streaming compress paths. Drives the real
// fpsnr_cli binary as a subprocess (FPSNR_CLI_BIN is injected by CMake).
#include <gtest/gtest.h>

// The whole suite shells out through a POSIX /bin/sh (redirections, exit
// status decoding, /dev paths); it has no Windows port, so it compiles to
// an empty (passing) test binary there rather than pretending.
#if !defined(_WIN32)

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

namespace fs = std::filesystem;

/// Run a shell command, returning the process exit code (-1 if it died
/// without exiting normally).
int run(const std::string& command) {
  const int status = std::system((command + " >/dev/null 2>&1").c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Like run(), but also captures combined stdout+stderr into *output.
int run_capture(const std::string& command, std::string* output) {
  const std::string path =
      (fs::temp_directory_path() / "fpsnr_cli_io_capture.txt").string();
  const int status =
      std::system((command + " >" + path + " 2>&1").c_str());
  std::ifstream in(path);
  output->assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string cli() { return std::string(FPSNR_CLI_BIN); }

class CliIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "fpsnr_cli_io";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    input_ = (dir_ / "in.f32").string();
    std::ofstream out(input_, std::ios::binary);
    std::vector<float> values(1024);
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] = static_cast<float>(i % 97) * 0.25f;
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(float)));
    ASSERT_TRUE(out.good());
    // A path *under a regular file* can never be created — portable way to
    // make -o unwritable without relying on permissions (root ignores 0555).
    unwritable_ = input_ + "/out.fpbk";
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string compress_cmd() const {
    return cli() + " compress -i " + input_ + " -d 32x32 -m psnr -v 70";
  }

  fs::path dir_;
  std::string input_;
  std::string unwritable_;
};

}  // namespace

TEST_F(CliIoTest, WritableOutputSucceeds) {
  const std::string out = (dir_ / "ok.fpbk").string();
  EXPECT_EQ(run(compress_cmd() + " -o " + out), 0);
  EXPECT_TRUE(fs::exists(out));
}

TEST_F(CliIoTest, InMemoryUnwritableOutputExitsOne) {
  EXPECT_EQ(run(compress_cmd() + " -o " + unwritable_), 1);
  EXPECT_FALSE(fs::exists(unwritable_));
}

TEST_F(CliIoTest, StreamingUnwritableOutputExitsOne) {
  EXPECT_EQ(run(compress_cmd() + " --stream --threads 2 -o " + unwritable_), 1);
  EXPECT_FALSE(fs::exists(unwritable_));
}

TEST_F(CliIoTest, DecompressUnwritableOutputExitsOne) {
  const std::string archive = (dir_ / "a.fpbk").string();
  ASSERT_EQ(run(compress_cmd() + " -o " + archive), 0);
  EXPECT_EQ(run(cli() + " decompress -i " + archive + " -o " + unwritable_), 1);
}

#if defined(__linux__)
TEST_F(CliIoTest, FullDeviceIsDetectedAtFlushTime) {
  // /dev/full accepts the open but fails every write with ENOSPC — exactly
  // the failure mode the old in-memory path swallowed (open succeeded, the
  // write error was never checked, exit was 0 with no output).
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "/dev/full unavailable";
  EXPECT_EQ(run(compress_cmd() + " -o /dev/full"), 1);
}
#endif

TEST_F(CliIoTest, CompressBatchRoundTrip) {
  // Manifest smoke: two fields -> two archives, exit 0; a manifest entry
  // with an unwritable OUTDIR fails with 1.
  const std::string manifest = (dir_ / "m.txt").string();
  {
    std::ofstream m(manifest);
    m << "# two views of the same raw file\n"
      << "a in.f32 32x32\n"
      << "b in.f32 1024\n";
  }
  const std::string outdir = (dir_ / "batch").string();
  EXPECT_EQ(run(cli() + " compress-batch -i " + manifest + " -o " + outdir +
                " --psnr 70 --threads 2"),
            0);
  EXPECT_TRUE(fs::exists(outdir + "/a.fpbk"));
  EXPECT_TRUE(fs::exists(outdir + "/b.fpbk"));
  EXPECT_EQ(run(cli() + " compress-batch -i " + manifest + " -o " +
                input_ + "/batch --psnr 70"),
            1);
}

TEST_F(CliIoTest, CompressBatchRejectsHostileManifestNames) {
  // A field name with a path separator would write OUTDIR/../...fpbk —
  // outside the output directory; a duplicate name would hand two archive
  // writers the same file. Both must be manifest validation errors.
  const std::string traversal = (dir_ / "traversal.txt").string();
  std::ofstream(traversal) << "../evil in.f32 32x32\n";
  const std::string outdir = (dir_ / "hostile").string();
  EXPECT_EQ(run(cli() + " compress-batch -i " + traversal + " -o " + outdir +
                " --psnr 70"),
            2);
  EXPECT_FALSE(fs::exists(dir_ / "evil.fpbk"));

  const std::string dup = (dir_ / "dup.txt").string();
  std::ofstream(dup) << "x in.f32 32x32\nx in.f32 1024\n";
  EXPECT_EQ(run(cli() + " compress-batch -i " + dup + " -o " + outdir +
                " --psnr 70 --stream"),
            2);

  // 'X' and 'x' are one archive file on case-insensitive filesystems.
  const std::string cased = (dir_ / "cased.txt").string();
  std::ofstream(cased) << "X in.f32 32x32\nx in.f32 1024\n";
  EXPECT_EQ(run(cli() + " compress-batch -i " + cased + " -o " + outdir +
                " --psnr 70 --stream"),
            2);
}

TEST_F(CliIoTest, MalformedIntegerFlagsExitTwoWithUsage) {
  // Every integer flag routes through one strict checked parser: trailing
  // junk, sign characters, empty values, and out-of-range magnitudes are
  // all usage errors with exit 2 and the usage text — never a silent
  // std::stoull truncation ('8abc' -> 8), a 2^64 wraparound ('-1'), or an
  // uncaught out_of_range that would abort with a core dump.
  const std::vector<std::string> bad = {
      "'8abc'", "'-1'", "''", "'99999999999999999999999'", "'abc'", "'+4'"};
  const std::vector<std::string> flags = {"--threads", "--block-size",
                                          "--block"};
  for (const auto& flag : flags) {
    for (const auto& value : bad) {
      std::string output;
      EXPECT_EQ(run_capture(compress_cmd() + " -o " +
                                (dir_ / "junk.fpbk").string() + " " + flag +
                                " " + value,
                            &output),
                2)
          << flag << " " << value;
      EXPECT_NE(output.find("fpsnr_cli"), std::string::npos)
          << "no usage text for " << flag << " " << value;
    }
  }
}

TEST_F(CliIoTest, MalformedValueFlagExitsTwoWithUsage) {
  // -v/--value/--psnr parse as a checked double: the whole token must
  // parse and be finite. '80abc' (stod stops at the junk), '', 'nan',
  // 'inf', and overflowing exponents are usage errors with exit 2.
  const std::vector<std::string> bad = {"'80abc'", "''", "'nan'", "'inf'",
                                        "'1e999999'", "'abc'"};
  for (const auto& flag : {"-v", "--value", "--psnr"}) {
    for (const auto& value : bad) {
      std::string output;
      EXPECT_EQ(run_capture(cli() + " compress -i " + input_ +
                                " -d 32x32 -m psnr -o " +
                                (dir_ / "junk.fpbk").string() + " " +
                                std::string(flag) + " " + value,
                            &output),
                2)
          << flag << " " << value;
      EXPECT_NE(output.find("fpsnr_cli"), std::string::npos)
          << "no usage text for " << flag << " " << value;
    }
  }
}

TEST_F(CliIoTest, WellFormedNumericFlagsStillWork) {
  // The strict parsers must not reject anything the loose ones accepted.
  const std::string out = (dir_ / "strict-ok.fpbk").string();
  EXPECT_EQ(run(compress_cmd() + " --threads 2 --block-size 16 -o " + out), 0);
  EXPECT_TRUE(fs::exists(out));
  const std::string dec = (dir_ / "strict-ok.f32").string();
  EXPECT_EQ(run(cli() + " decompress -i " + out + " --block 0 -o " + dec), 0);
}

TEST_F(CliIoTest, CompressBatchRejectsNonPsnrModes) {
  // The batch engine is fixed-PSNR only; `-m abs -v 1e-3` must not be
  // silently reinterpreted as a 0.001 dB PSNR target.
  const std::string manifest = (dir_ / "m2.txt").string();
  std::ofstream(manifest) << "a in.f32 32x32\n";
  EXPECT_EQ(run(cli() + " compress-batch -i " + manifest + " -o " +
                (dir_ / "modes").string() + " -m abs -v 0.001"),
            2);
}

#endif  // !defined(_WIN32)
