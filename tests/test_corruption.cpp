// Corruption-robustness tests for the FPBK archive readers: every malformed
// input — truncation at any byte, bad magic, index entries past EOF,
// overlapping block extents, crafted headers — must surface as a clean
// io::StreamError (or std::out_of_range for bad indices), never a crash or
// out-of-bounds read. The whole file is meant to run under ASan/UBSan.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "core/pipeline.h"
#include "data/synth.h"
#include "fpsnr/timeseries.h"
#include "io/archive.h"
#include "io/bitstream.h"
#include "io/bytebuffer.h"
#include "io/streaming_archive.h"
#include "sz/interp.h"
#include "transform/fixed_rate.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace io = fpsnr::io;

namespace {

namespace fs = std::filesystem;

/// A small, valid 4-block container to mutate.
std::vector<std::uint8_t> valid_container() {
  const data::Dims dims{32, 12};
  auto values = data::smoothed_noise(dims, 29, 2, 2);
  data::rescale(values, -1.0f, 5.0f);
  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  opts.parallel.tile = {8};
  return core::compress_blocked<float>(std::span<const float>(values), dims,
                                       core::ControlRequest::fixed_psnr(60.0),
                                       opts)
      .stream;
}

io::BlockContainerHeader tiny_header(std::uint64_t rows,
                                     std::uint64_t slab_rows) {
  io::BlockContainerHeader h;
  h.codec = 0;
  h.scalar = 0;
  h.extents = {rows};
  h.tile = {slab_rows};
  h.block_count = (rows + slab_rows - 1) / slab_rows;
  h.eb_abs = 1e-3;
  h.value_range = 1.0;
  return h;
}

/// Header + hand-written index + payload, for crafting inconsistent files.
/// write_block_header emits the current (v3) version, so the index carries
/// the per-block SSE column after the size column.
std::vector<std::uint8_t> craft(const io::BlockContainerHeader& h,
                                std::span<const std::uint64_t> offsets,
                                std::span<const std::uint64_t> sizes,
                                std::size_t payload_bytes) {
  io::ByteWriter w;
  io::write_block_header(h, w);
  for (std::uint64_t o : offsets) w.put<std::uint64_t>(o);
  for (std::uint64_t s : sizes) w.put<std::uint64_t>(s);
  for (std::size_t i = 0; i < sizes.size(); ++i) w.put<double>(0.0);
  for (std::size_t i = 0; i < payload_bytes; ++i)
    w.put<std::uint8_t>(static_cast<std::uint8_t>(i));
  return w.take();
}

void expect_all_readers_reject(std::span<const std::uint8_t> stream) {
  EXPECT_THROW(io::open_block_container(stream), io::StreamError);
  EXPECT_THROW(io::block_container_entry(stream, 0), io::StreamError);
  EXPECT_THROW(core::decompress_blocked<float>(stream), io::StreamError);
}

}  // namespace

// --- truncation -------------------------------------------------------------

TEST(Corruption, EveryTruncationFailsCleanly) {
  // No proper prefix of a valid container may parse: the index must cover
  // the payload exactly, so any missing tail is detected. Sweep every
  // prefix length — under ASan this also proves no read strays past the
  // truncated span.
  const auto whole = valid_container();
  ASSERT_GT(whole.size(), 100u);
  const std::span<const std::uint8_t> all(whole);
  for (std::size_t len = 0; len < whole.size(); ++len) {
    const auto prefix = all.first(len);
    EXPECT_THROW(io::open_block_container(prefix), io::StreamError)
        << "prefix length " << len;
  }
}

TEST(Corruption, TruncatedFileRejectedThroughMmapReader) {
  const auto whole = valid_container();
  const auto path = fs::temp_directory_path() / "fpsnr-test-trunc.fpbk";
  std::ofstream(path, std::ios::binary)
      .write(reinterpret_cast<const char*>(whole.data()),
             static_cast<std::streamsize>(whole.size() / 3));
  // Whether the cut lands in the header (reader construction fails) or the
  // payload (index coverage check fails), the error is a clean StreamError.
  EXPECT_THROW(core::decompress_file<float>(path.string()), io::StreamError);
  fs::remove(path);
}

// --- magic / version / header fields ----------------------------------------

TEST(Corruption, BadMagicAndVersionRejected) {
  auto stream = valid_container();
  stream[0] = 'X';
  EXPECT_FALSE(io::is_block_container(stream));
  expect_all_readers_reject(stream);

  stream = valid_container();
  stream[4] = 99;  // version byte
  expect_all_readers_reject(stream);
}

TEST(Corruption, CraftedHeaderFieldsRejected) {
  {  // rank 0
    io::ByteWriter w;
    const std::uint8_t magic[4] = {'F', 'P', 'B', 'K'};
    w.put_bytes(std::span<const std::uint8_t>(magic, 4));
    w.put<std::uint8_t>(1);
    w.put<std::uint8_t>(0);
    w.put<std::uint8_t>(0);
    w.put<std::uint8_t>(0);  // rank
    const auto s = w.take();
    EXPECT_THROW(io::block_container_header(s), io::StreamError);
  }
  {  // zero extent
    auto h = tiny_header(4, 2);
    h.extents = {0};
    io::ByteWriter w;
    io::write_block_header(h, w);
    const auto s = w.take();
    EXPECT_THROW(io::block_container_header(s), io::StreamError);
  }
  {  // block layout does not tile the field
    auto h = tiny_header(8, 2);
    h.block_count = 2;  // should be 4
    io::ByteWriter w;
    io::write_block_header(h, w);
    const auto s = w.take();
    EXPECT_THROW(io::block_container_header(s), io::StreamError);
  }
}

TEST(Corruption, MalformedTileGeometryRejected) {
  {  // zero tile extent (v3 carries per-axis tile extents)
    auto h = tiny_header(4, 2);
    h.tile = {0};
    io::ByteWriter w;
    io::write_block_header(h, w);
    const auto s = w.take();
    EXPECT_THROW(io::block_container_header(s), io::StreamError);
  }
  {  // tile larger than the field on its axis
    auto h = tiny_header(4, 2);
    h.tile = {16};
    io::ByteWriter w;
    io::write_block_header(h, w);
    const auto s = w.take();
    EXPECT_THROW(io::block_container_header(s), io::StreamError);
  }
  {  // tile grid whose block product would overflow u64
    io::BlockContainerHeader h;
    h.codec = 0;
    h.scalar = 0;
    h.extents = {std::uint64_t{1} << 40, std::uint64_t{1} << 40, 2};
    h.tile = {1, 1, 2};
    h.block_count = 1;  // irrelevant: the grid product wraps first
    h.eb_abs = 1e-3;
    h.value_range = 1.0;
    io::ByteWriter w;
    io::write_block_header(h, w);
    const auto s = w.take();
    EXPECT_THROW(io::block_container_header(s), io::StreamError);
  }
  {  // full-rank geometry disagreeing with the dims
    io::BlockContainerHeader h;
    h.codec = 0;
    h.scalar = 0;
    h.extents = {8, 6};
    h.tile = {4, 3};    // grid 2x2 = 4 blocks
    h.block_count = 6;  // claims 6
    h.eb_abs = 1e-3;
    h.value_range = 1.0;
    io::ByteWriter w;
    io::write_block_header(h, w);
    const auto s = w.take();
    EXPECT_THROW(io::block_container_header(s), io::StreamError);
  }
  {  // tile rank disagreeing with the field rank is a writer-side error
    auto h = tiny_header(4, 2);
    h.tile = {2, 2};
    io::ByteWriter w;
    EXPECT_THROW(io::write_block_header(h, w), std::invalid_argument);
  }
}

// --- index pathologies ------------------------------------------------------

TEST(Corruption, IndexOffsetPastEofRejected) {
  const auto h = tiny_header(4, 2);  // 2 blocks
  // Offsets/sizes reach far beyond the 8 payload bytes actually present.
  const std::uint64_t offsets[] = {0, 1 << 20};
  const std::uint64_t sizes[] = {1 << 20, 16};
  const auto s = craft(h, offsets, sizes, 8);
  expect_all_readers_reject(s);
}

TEST(Corruption, OverlappingBlockExtentsRejected) {
  const auto h = tiny_header(4, 2);  // 2 blocks
  // Both entries claim bytes [0, 6): overlapping extents can never appear
  // in a writer-produced index (offsets are the running sum of sizes), so
  // the reader treats them as corruption.
  const std::uint64_t offsets[] = {0, 0};
  const std::uint64_t sizes[] = {6, 6};
  const auto s = craft(h, offsets, sizes, 6);
  EXPECT_THROW(io::open_block_container(s), io::StreamError);
  EXPECT_THROW(core::decompress_blocked<float>(s), io::StreamError);
  // Entry-level access stays within the payload for each entry on its own,
  // so it is memory-safe by construction; the container-level open is what
  // rejects the overlap.
  EXPECT_NO_THROW((void)io::block_container_entry(s, 0));
}

TEST(Corruption, IndexGapRejected) {
  const auto h = tiny_header(4, 2);
  // Payload byte 4 belongs to no block — the index must be contiguous.
  const std::uint64_t offsets[] = {0, 5};
  const std::uint64_t sizes[] = {4, 3};
  const auto s = craft(h, offsets, sizes, 8);
  EXPECT_THROW(io::open_block_container(s), io::StreamError);
}

TEST(Corruption, OffsetSizeOverflowRejected) {
  const auto h = tiny_header(4, 2);
  // offset + size wraps past 2^64; the bounds check must not be fooled.
  const std::uint64_t offsets[] = {0, ~std::uint64_t{0} - 2};
  const std::uint64_t sizes[] = {4, 8};
  const auto s = craft(h, offsets, sizes, 4);
  EXPECT_THROW(io::open_block_container(s), io::StreamError);
  EXPECT_THROW(io::block_container_entry(s, 1), io::StreamError);
}

TEST(Corruption, InvalidSseColumnRejected) {
  // The v2 per-block SSE column must be finite and non-negative; a NaN or
  // negative entry is corruption, not data.
  const auto whole = valid_container();
  const auto view = io::open_block_container(whole);
  ASSERT_TRUE(view.header.has_block_sse());
  std::size_t payload = 0;
  for (const auto& b : view.blocks) payload += b.size();
  // The SSE column is the last block_count doubles before the payload.
  const std::size_t sse_start = whole.size() - payload -
                                view.header.block_count * sizeof(double);
  auto bad = whole;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bad.data() + sse_start, &nan, sizeof(nan));
  EXPECT_THROW(io::open_block_container(bad), io::StreamError);
  EXPECT_THROW(core::decompress_blocked<float>(bad), io::StreamError);

  bad = whole;
  const double negative = -1.0;
  std::memcpy(bad.data() + sse_start, &negative, sizeof(negative));
  EXPECT_THROW(io::open_block_container(bad), io::StreamError);
}

// --- hostile codec-block headers ---------------------------------------------

TEST(Corruption, InterpBlockWithHugeDeclaredSizesRejectedBeforeAllocating) {
  // An FPIN block whose header declares ~2^60 values over a tiny payload
  // must throw a clean StreamError, never attempt the allocation.
  io::ByteWriter w;
  const std::uint8_t magic[4] = {'F', 'P', 'I', 'N'};
  w.put_bytes(std::span<const std::uint8_t>(magic, 4));
  w.put<std::uint8_t>(1);                  // version
  w.put<std::uint8_t>(0);                  // scalar = float32
  w.put<std::uint8_t>(3);                  // rank
  for (int d = 0; d < 3; ++d) w.put_varint(std::uint64_t{1} << 20);
  w.put<double>(1e-3);                     // eb_abs
  w.put_varint(65536);                     // quant bins
  {
    // Inner stream (Store backend): outlier count claims 2^59 entries.
    io::ByteWriter inner;
    inner.put_varint(std::uint64_t{1} << 59);
    io::ByteWriter blob;
    blob.put<std::uint8_t>(0);  // lossless::Method::Store tag
    blob.put_bytes(inner.buffer());
    w.put_blob(blob.buffer());
  }
  const auto s = w.take();
  EXPECT_THROW((void)fpsnr::sz::interp_decompress<float>(s), io::StreamError);
}

TEST(Corruption, FixedRateBlockWithHugeDeclaredSizesRejectedBeforeAllocating) {
  // Same for FPZR: the declared value count must be bounded by the
  // payload (one width byte per group) before coeffs are allocated.
  io::ByteWriter w;
  const std::uint8_t magic[4] = {'F', 'P', 'Z', 'R'};
  w.put_bytes(std::span<const std::uint8_t>(magic, 4));
  w.put<std::uint8_t>(1);                  // version
  w.put<std::uint8_t>(0);                  // scalar = float32
  w.put<std::uint8_t>(3);                  // rank
  for (int d = 0; d < 3; ++d) w.put_varint(std::uint64_t{1} << 20);
  w.put<double>(1e-3);                     // eb_abs
  w.put_varint(8);                         // dct block
  w.put_varint(64);                        // group size
  const std::uint8_t tiny_payload[2] = {0, 0};
  w.put_blob(std::span<const std::uint8_t>(tiny_payload, 2));
  const auto s = w.take();
  EXPECT_THROW((void)fpsnr::transform::fixed_rate_decompress<float>(s),
               io::StreamError);
}

// --- payload corruption -----------------------------------------------------

TEST(Corruption, FlippedPayloadFailsCleanlyOrDecodes) {
  // Bytes inside a compressed block are opaque to the container layer; a
  // flip must either decode (the codec tolerated it) or throw StreamError —
  // never crash. Flip a byte in the middle of the payload region.
  const auto whole = valid_container();
  auto bad = whole;
  bad[bad.size() - bad.size() / 4] ^= 0xFF;
  try {
    const auto out = core::decompress_blocked<float>(bad);
    EXPECT_FALSE(out.values.empty());
  } catch (const io::StreamError&) {
  } catch (const std::out_of_range&) {
  }
}

// --- v4 temporal chain header ------------------------------------------------

namespace {

/// A valid two-frame v4 chain (keyframe then one delta frame) to mutate.
struct SeriesFrames {
  std::vector<std::uint8_t> keyframe;
  std::vector<std::uint8_t> delta;
};

SeriesFrames valid_series_frames() {
  const data::Dims dims{32, 12};
  auto t0 = data::smoothed_noise(dims, 29, 2, 2);
  data::rescale(t0, -1.0f, 5.0f);
  auto t1 = t0;
  for (std::size_t i = 0; i < t1.size(); ++i)
    t1[i] += 0.05f * static_cast<float>(i % 7);  // gentle evolution

  fpsnr::TimeSeriesOptions topts;
  topts.session.tile = fpsnr::TileShape{8};
  topts.series = "corruption-suite";
  topts.keyframe_interval = 0;  // only t=0 is a keyframe
  fpsnr::TimeSeriesSession session(fpsnr::FixedPsnr{60.0}, std::move(topts));

  fpsnr::Field snap;
  snap.dims = {dims[0], dims[1]};
  snap.f32 = t0;
  session.push(snap);
  snap.f32 = t1;
  session.push(snap);

  SeriesFrames frames;
  frames.keyframe = session.archive(0);
  frames.delta = session.archive(1);
  return frames;
}

/// Byte offsets of the v4 chain-header fields inside a frame. Located by
/// re-serializing the parsed header: write_block_header round-trips the
/// exact byte layout, so the header length (and with it the fixed-width
/// temporal tail) is recoverable without hardcoding varint widths.
struct V4Offsets {
  std::size_t flags, series_id, timestep, ref_hash, bitmap;
};

V4Offsets v4_offsets(std::span<const std::uint8_t> frame) {
  const io::BlockContainerHeader h = io::block_container_header(frame);
  EXPECT_TRUE(h.has_temporal_chain());
  io::ByteWriter w;
  io::write_block_header(h, w);
  const std::size_t header_len = w.take().size();
  V4Offsets o;
  o.bitmap = header_len - h.block_modes.size();
  o.ref_hash = o.bitmap - sizeof(std::uint64_t);
  o.timestep = o.ref_hash - sizeof(std::uint64_t);
  o.series_id = o.timestep - sizeof(std::uint64_t);
  o.flags = o.series_id - 1;
  return o;
}

}  // namespace

TEST(Corruption, TemporalFlagTamperingRejectedByEveryReader) {
  const auto frames = valid_series_frames();
  const auto ko = v4_offsets(frames.keyframe);
  const auto dofs = v4_offsets(frames.delta);

  {  // stray bits beyond the two defined flags
    auto t = frames.delta;
    t[dofs.flags] |= 0x04;
    expect_all_readers_reject(t);
  }
  {  // a v4 frame must always carry the series flag
    auto t = frames.delta;
    t[dofs.flags] = io::kTemporalFlagDelta;
    expect_all_readers_reject(t);
  }
  {  // clearing the delta bit leaves a "keyframe" that still carries a
     // reference hash — the inconsistency is caught at header parse
    auto t = frames.delta;
    t[dofs.flags] = io::kTemporalFlagSeries;
    expect_all_readers_reject(t);
  }
  {  // ...and setting it on the real keyframe leaves a delta frame with no
     // reference hash
    auto t = frames.keyframe;
    t[ko.flags] = io::kTemporalFlagSeries | io::kTemporalFlagDelta;
    expect_all_readers_reject(t);
  }
}

TEST(Corruption, TemporalModeBitmapTamperingRejected) {
  const auto frames = valid_series_frames();
  // dims {32,12} with tile {8} gives 4 blocks, so the single bitmap byte
  // has 4 meaningless trailing bits; they must be zero.
  {
    auto t = frames.delta;
    t[v4_offsets(t).bitmap] |= 0x80;
    expect_all_readers_reject(t);
  }
  {  // a keyframe must not mark any block temporal
    auto t = frames.keyframe;
    t[v4_offsets(t).bitmap] |= 0x01;
    expect_all_readers_reject(t);
  }
}

TEST(Corruption, TamperedChainFieldsRejectedByTheDecoder) {
  // These mutations leave the container self-consistent — only the chain
  // decoder, which holds the previous reconstruction, can detect them.
  const auto frames = valid_series_frames();

  {  // wrong reference hash: the frame claims a reference this decoder
     // does not hold
    auto t = frames.delta;
    t[v4_offsets(t).ref_hash] ^= 0xff;
    fpsnr::TimeSeriesDecoder dec;
    dec.feed(frames.keyframe);
    EXPECT_THROW((void)dec.feed(t), io::StreamError);
    // The failed feed left the decoder untouched: the genuine frame still
    // continues the chain.
    EXPECT_NO_THROW((void)dec.feed(frames.delta));
  }
  {  // timestep gap (frame claims t=7 after t=0)
    auto t = frames.delta;
    t[v4_offsets(t).timestep] = 7;
    fpsnr::TimeSeriesDecoder dec;
    dec.feed(frames.keyframe);
    EXPECT_THROW((void)dec.feed(t), io::StreamError);
  }
  {  // foreign series id
    auto t = frames.delta;
    t[v4_offsets(t).series_id] ^= 0xff;
    fpsnr::TimeSeriesDecoder dec;
    dec.feed(frames.keyframe);
    EXPECT_THROW((void)dec.feed(t), io::StreamError);
  }
}

TEST(Corruption, EveryTemporalFrameTruncationFailsCleanly) {
  // The v3 sweep above covers the common header; this one proves a cut
  // anywhere in the v4 chain metadata (flags byte, series id, timestep,
  // reference hash, mode bitmap) also dies cleanly.
  const auto frames = valid_series_frames();
  ASSERT_GT(frames.delta.size(), 100u);
  const std::span<const std::uint8_t> all(frames.delta);
  for (std::size_t len = 0; len < frames.delta.size(); ++len) {
    EXPECT_THROW(io::open_block_container(all.first(len)), io::StreamError)
        << "prefix length " << len;
  }
}
