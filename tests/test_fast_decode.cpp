// Tests pinning down the BitReader peek/skip primitives and the Huffman
// fast-table decode path (including its fallback for codes longer than the
// table width).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "huffman/huffman.h"
#include "io/bitstream.h"

namespace huffman = fpsnr::huffman;
namespace io = fpsnr::io;

TEST(BitReaderPeek, PeekDoesNotConsume) {
  io::BitWriter w;
  w.write_bits(0b1011010, 7);
  const auto bytes = w.take();
  io::BitReader r(bytes);
  EXPECT_EQ(r.peek_bits(4), 0b1010u);
  EXPECT_EQ(r.bit_position(), 0u);
  EXPECT_EQ(r.read_bits(4), 0b1010u);
  EXPECT_EQ(r.peek_bits(3), 0b101u);
}

TEST(BitReaderPeek, PeekPastEndZeroPads) {
  io::BitWriter w;
  w.write_bits(0b11, 2);
  const auto bytes = w.take();  // one byte: 0b00000011
  io::BitReader r(bytes);
  r.skip_bits(6);
  // Only 2 real bits remain (zero padding), peek 8 must not throw.
  EXPECT_EQ(r.peek_bits(8), 0u);
  EXPECT_EQ(r.bits_remaining(), 2u);
}

TEST(BitReaderPeek, SkipBoundsChecked) {
  io::BitWriter w;
  w.write_bits(0xFF, 8);
  const auto bytes = w.take();
  io::BitReader r(bytes);
  r.skip_bits(8);
  EXPECT_THROW(r.skip_bits(1), io::StreamError);
}

TEST(BitReaderPeek, PeekMatchesReadForRandomStreams) {
  std::mt19937_64 rng(44);
  io::BitWriter w;
  for (int i = 0; i < 200; ++i) w.write_bits(rng(), 1 + rng() % 64);
  const auto bytes = w.take();
  io::BitReader peeker(bytes);
  io::BitReader reader(bytes);
  while (reader.bits_remaining() > 0) {
    const unsigned n = static_cast<unsigned>(
        1 + rng() % std::min<std::size_t>(24, reader.bits_remaining()));
    ASSERT_EQ(peeker.peek_bits(n), reader.read_bits(n));
    peeker.skip_bits(n);
  }
}

TEST(HuffmanFastDecode, LongCodesFallBackCorrectly) {
  // Fibonacci frequencies with a 20-bit cap produce codes well beyond the
  // 12-bit fast table, forcing the canonical fallback for rare symbols
  // while the frequent ones use the table.
  std::vector<std::uint64_t> freq(40);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freq) {
    f = a;
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  const auto enc = huffman::Encoder::from_frequencies(freq, 20);
  unsigned longest = 0;
  for (std::uint32_t s = 0; s < freq.size(); ++s)
    longest = std::max(longest, enc.code_length(s));
  ASSERT_GT(longest, 12u) << "test needs codes beyond the fast-table width";

  // Stream that covers every symbol several times, rare ones included.
  std::mt19937_64 rng(7);
  std::vector<std::uint32_t> symbols;
  for (std::uint32_t s = 0; s < freq.size(); ++s)
    for (int rep = 0; rep < 5; ++rep) symbols.push_back(s);
  std::shuffle(symbols.begin(), symbols.end(), rng);

  io::BitWriter bits;
  enc.encode(symbols, bits);
  const auto payload = bits.take();
  const auto dec = huffman::Decoder::from_lengths(enc.lengths());
  io::BitReader br(payload);
  EXPECT_EQ(dec.decode(br, symbols.size()), symbols);
}

TEST(HuffmanFastDecode, FinalSymbolAtExactStreamEnd) {
  // The fast path peeks past the end (zero padded); the last code must
  // still decode without over-consuming.
  const std::vector<std::uint32_t> symbols = {0, 1, 2, 1, 0, 2, 2};
  const auto enc = huffman::Encoder::from_symbols(symbols, 3);
  io::BitWriter bits;
  enc.encode(symbols, bits);
  const auto payload = bits.take();
  const auto dec = huffman::Decoder::from_lengths(enc.lengths());
  io::BitReader br(payload);
  EXPECT_EQ(dec.decode(br, symbols.size()), symbols);
  // Whatever remains is byte padding only.
  EXPECT_LT(br.bits_remaining(), 8u);
}

TEST(HuffmanFastDecode, EquivalentAcrossAlphabetSizes) {
  std::mt19937_64 rng(99);
  for (std::uint32_t alphabet : {2u, 17u, 300u, 5000u}) {
    std::vector<std::uint32_t> symbols(4000);
    for (auto& s : symbols) {
      const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
      s = static_cast<std::uint32_t>(alphabet * u * u) % alphabet;
    }
    const auto enc = huffman::Encoder::from_symbols(symbols, alphabet);
    io::BitWriter bits;
    enc.encode(symbols, bits);
    const auto payload = bits.take();
    const auto dec = huffman::Decoder::from_lengths(enc.lengths());
    io::BitReader br(payload);
    ASSERT_EQ(dec.decode(br, symbols.size()), symbols) << alphabet;
  }
}
