// End-to-end integration tests: generate -> compress -> decompress ->
// measure across all three dataset stand-ins, all error modes, and both
// codec families, mirroring the paper's full evaluation loop at small scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/batch.h"
#include "core/compressor.h"
#include "core/distortion_model.h"
#include "core/search_baseline.h"
#include "data/dataset.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;

namespace {

const data::DatasetConfig kSmall{0.4, 2026};

core::CompressResult compress_fixed_psnr(std::span<const float> values,
                                         const data::Dims& dims, double target) {
  return core::compress<float>(values, dims,
                               core::ControlRequest::fixed_psnr(target));
}

metrics::ErrorReport verify_stream(std::span<const float> values,
                                   std::span<const std::uint8_t> stream) {
  const auto decoded = core::decompress<float>(stream);
  return metrics::compare<float>(values, decoded.values);
}

}  // namespace

TEST(Integration, AllDatasetsAllModesRoundTrip) {
  for (const auto& ds : data::make_all_datasets(kSmall)) {
    // One representative field per dataset keeps runtime in check.
    const auto& f = ds.fields.front();
    const double vr = metrics::value_range<float>(f.span());

    struct ModeCase {
      core::ControlRequest request;
      const char* name;
    };
    const ModeCase cases[] = {
        {core::ControlRequest::absolute(vr * 1e-3), "abs"},
        {core::ControlRequest::relative(1e-3), "rel"},
        {core::ControlRequest::fixed_psnr(70.0), "psnr"},
    };
    for (const auto& c : cases) {
      const auto r = core::compress<float>(f.span(), f.dims, c.request);
      const auto rep = verify_stream(f.span(), r.stream);
      EXPECT_LE(rep.max_abs_error, vr * 1e-3 * (1 + 1e-9))
          << ds.name << "/" << f.name << " mode " << c.name
          << " (all three cases bound by ~1e-3 vr)";
    }
  }
}

TEST(Integration, Table2ShapeAtModerateScale) {
  // Miniature Table II: for every dataset, AVG tracks the target and the
  // 80 dB row is much tighter than the 20 dB row (paper Section V).
  for (const auto& ds : data::make_all_datasets(kSmall)) {
    const auto r20 = core::run_fixed_psnr_batch(ds, 20.0);
    const auto r80 = core::run_fixed_psnr_batch(ds, 80.0);
    const auto s20 = r20.psnr_stats();
    const auto s80 = r80.psnr_stats();
    EXPECT_GE(s20.mean(), 19.0) << ds.name;          // never undershoots far
    EXPECT_NEAR(s80.mean(), 80.0, 1.5) << ds.name;   // tight at 80 dB
    EXPECT_LT(std::abs(s80.mean() - 80.0), std::abs(s20.mean() - 20.0) + 1.0)
        << ds.name;
  }
}

TEST(Integration, FixedPsnrSinglePassVsSearchManyPasses) {
  const auto ds = data::make_hurricane(kSmall);
  const auto& f = ds.field("U");
  // Fixed-PSNR: exactly one compression pass by construction.
  const auto fixed = compress_fixed_psnr(f.span(), f.dims, 75.0);
  const auto fixed_rep = verify_stream(f.span(), fixed.stream);
  // Search baseline from a bad starting point.
  core::SearchOptions opts;
  opts.tolerance_db = 0.5;
  opts.initial_rel_bound = 1e-7;
  const auto searched = core::search_fixed_psnr<float>(f.span(), f.dims, 75.0, opts);
  EXPECT_GT(searched.compression_passes, 1u);
  // Both land near the target; fixed-PSNR did it with 1/k of the work.
  EXPECT_NEAR(fixed_rep.psnr_db, 75.0, 1.5);
  EXPECT_NEAR(searched.achieved_psnr_db, 75.0, 1.0);
}

TEST(Integration, CompressionRatioOrderingAcrossTargets) {
  // Rate-distortion sanity on a full dataset: lower PSNR demand must give
  // strictly better average compression.
  const auto ds = data::make_nyx(kSmall);
  double prev_ratio = 0.0;
  for (double target : {120.0, 80.0, 40.0}) {
    const auto batch = core::run_fixed_psnr_batch(ds, target);
    double mean_ratio = 0.0;
    for (const auto& f : batch.fields) mean_ratio += f.compression_ratio;
    mean_ratio /= static_cast<double>(batch.fields.size());
    EXPECT_GT(mean_ratio, prev_ratio) << target;
    prev_ratio = mean_ratio;
  }
}

TEST(Integration, PredictedVsActualPsnrAcrossSweep) {
  // The analytical prediction (Eq. 7) should sit within a few dB of the
  // measured PSNR for moderate-to-high targets on every dataset.
  for (const auto& ds : data::make_all_datasets(kSmall)) {
    for (double target : {60.0, 90.0}) {
      const auto batch = core::run_fixed_psnr_batch(ds, target);
      for (const auto& f : batch.fields) {
        EXPECT_NEAR(f.predicted_psnr_db, target, 1e-9);
        // One-sided check: undershoot is bounded tightly; overshoot can be
        // large on sparse fields (their prediction errors concentrate far
        // inside the central bin — the paper's low-PSNR mechanism).
        EXPECT_GT(f.actual_psnr_db, target - 3.0)
            << ds.name << "/" << f.field_name << " @" << target;
        EXPECT_LT(f.actual_psnr_db, target + 30.0)
            << ds.name << "/" << f.field_name << " @" << target;
      }
    }
  }
}

TEST(Integration, StreamsAreSelfContained) {
  // Compress all hurricane fields, shuffle the streams, decompress from
  // bytes alone (no side data), verify each against its original by dims.
  const auto ds = data::make_hurricane(kSmall);
  std::vector<std::vector<std::uint8_t>> streams;
  for (const auto& f : ds.fields)
    streams.push_back(
        compress_fixed_psnr(f.span(), f.dims, 65.0).stream);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const auto out = core::decompress<float>(streams[i]);
    EXPECT_EQ(out.dims, ds.fields[i].dims);
    const auto rep = metrics::compare<float>(ds.fields[i].span(), out.values);
    EXPECT_GT(rep.psnr_db, 60.0);
  }
}
