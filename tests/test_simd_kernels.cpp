// The SIMD kernel layer: dispatch plumbing and the bit-exactness contract.
//
// Every vector backend promises BIT-IDENTICAL output to the scalar
// reference for every kernel in the table (kernels.h documents why that is
// achievable: lanes only span independent outputs, no reassociation, no
// FMA contraction, proven rounding emulations). These tests enforce the
// contract three ways:
//
//   1. golden vectors — tiny hand-checkable cases with exact expected
//      outputs (ties, escapes, zero widths), pinned per kernel;
//   2. scalar-vs-backend parity — every supported backend replays random,
//      constant, tie-dense, and NaN/Inf-poisoned blocks across awkward
//      sizes, compared bit for bit (memcmp, not EXPECT_DOUBLE_EQ);
//   3. whole-archive identity — forcing each backend end-to-end through
//      every registered engine must reproduce the scalar archive bytes.
//
// The suite runs on whatever host executes it: on x86-64 with AVX2 it
// exercises scalar+avx2, on aarch64 scalar+neon, elsewhere scalar only
// (the loops below just see a one-element backend list).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>
#include <random>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "core/pipeline.h"
#include "data/synth.h"
#include "huffman/huffman.h"
#include "io/bitstream.h"
#include "simd/aligned.h"
#include "simd/dispatch.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace io = fpsnr::io;
namespace simd = fpsnr::simd;

namespace {

/// memcmp-backed equality: NaN payloads and signed zeros must survive too.
template <typename T>
::testing::AssertionResult bits_equal(const std::vector<T>& a,
                                      const std::vector<T>& b,
                                      const char* what) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << what << ": size " << a.size() << " vs " << b.size();
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i)
      if (std::memcmp(&a[i], &b[i], sizeof(T)) != 0)
        return ::testing::AssertionFailure()
               << what << ": first mismatch at [" << i << "]: " << a[i]
               << " vs " << b[i];
  }
  return ::testing::AssertionSuccess();
}

template <typename T>
::testing::AssertionResult bits_equal(const simd::aligned_vector<T>& a,
                                      const simd::aligned_vector<T>& b,
                                      const char* what) {
  return bits_equal(std::vector<T>(a.begin(), a.end()),
                    std::vector<T>(b.begin(), b.end()), what);
}

/// Deterministic double blocks for the parity sweeps.
simd::aligned_vector<double> random_block(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-6.0, 6.0);
  simd::aligned_vector<double> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

/// Every scaled value a multiple of 0.5 — maximum density of round()
/// half-way ties, where the AVX2 magic-number emulation has its fixups.
simd::aligned_vector<double> tie_block(std::size_t n) {
  simd::aligned_vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 0.25 * static_cast<double>(static_cast<int>(i % 23) - 11);
  return v;
}

simd::aligned_vector<double> poisoned_block(std::size_t n,
                                            std::uint64_t seed) {
  auto v = random_block(n, seed);
  if (n > 0) v[0] = std::numeric_limits<double>::quiet_NaN();
  if (n > 2) v[2] = std::numeric_limits<double>::infinity();
  if (n > 5) v[5] = -std::numeric_limits<double>::infinity();
  return v;
}

const std::vector<std::size_t> kSizes = {0, 1, 2, 3, 4, 5, 7, 8,
                                         15, 16, 17, 33, 64, 257};

/// RAII pin so a failing assertion can't leak a forced backend into the
/// next test.
struct BackendPin {
  explicit BackendPin(simd::Backend b) { EXPECT_TRUE(simd::force_backend(b)); }
  ~BackendPin() { simd::reset_backend(); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ParseBackendContract) {
  std::optional<simd::Backend> out;
  EXPECT_TRUE(simd::parse_backend("auto", &out));
  EXPECT_FALSE(out.has_value());  // auto = "no pin, use detection"
  EXPECT_TRUE(simd::parse_backend("scalar", &out));
  EXPECT_EQ(out, simd::Backend::Scalar);
  EXPECT_TRUE(simd::parse_backend("avx2", &out));
  EXPECT_EQ(out, simd::Backend::Avx2);
  EXPECT_TRUE(simd::parse_backend("neon", &out));
  EXPECT_EQ(out, simd::Backend::Neon);
  // Unknown and wrong-case names fail without touching *out.
  out = simd::Backend::Neon;
  EXPECT_FALSE(simd::parse_backend("AVX2", &out));
  EXPECT_FALSE(simd::parse_backend("sse2", &out));
  EXPECT_FALSE(simd::parse_backend("", &out));
  EXPECT_EQ(out, simd::Backend::Neon);
}

TEST(SimdDispatch, ScalarIsAlwaysSupportedAndFirst) {
  const auto backends = simd::supported_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), simd::Backend::Scalar);
  EXPECT_TRUE(simd::backend_supported(simd::Backend::Scalar));
  EXPECT_STREQ(simd::kernels_for(simd::Backend::Scalar).name, "scalar");
  // Table names agree with backend_name for every supported backend.
  for (const simd::Backend b : backends)
    EXPECT_STREQ(simd::kernels_for(b).name, simd::backend_name(b));
}

TEST(SimdDispatch, UnsupportedBackendIsLoudNotLethal) {
  for (const simd::Backend b : {simd::Backend::Avx2, simd::Backend::Neon}) {
    if (simd::backend_supported(b)) continue;
    const simd::Backend before = simd::active_backend();
    EXPECT_FALSE(simd::force_backend(b));
    EXPECT_EQ(simd::active_backend(), before);  // pin state unchanged
    EXPECT_THROW(simd::kernels_for(b), std::logic_error);
  }
}

TEST(SimdDispatch, ForceBackendPinsKernelTable) {
  for (const simd::Backend b : simd::supported_backends()) {
    BackendPin pin(b);
    EXPECT_EQ(simd::active_backend(), b);
    EXPECT_STREQ(simd::kernels().name, simd::backend_name(b));
  }
  // After the pins are dropped the active backend is supported here.
  EXPECT_TRUE(simd::backend_supported(simd::active_backend()));
}

// ---------------------------------------------------------------------------
// Per-kernel golden vectors + scalar-vs-backend bitwise parity
// ---------------------------------------------------------------------------

class SimdKernelParity : public ::testing::TestWithParam<simd::Backend> {
 protected:
  const simd::KernelTable& ref() const {
    return simd::kernels_for(simd::Backend::Scalar);
  }
  const simd::KernelTable& kt() const { return simd::kernels_for(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, SimdKernelParity,
    ::testing::ValuesIn(simd::supported_backends()),
    [](const ::testing::TestParamInfo<simd::Backend>& info) {
      return std::string(simd::backend_name(info.param));
    });

TEST_P(SimdKernelParity, HaarButterflies) {
  const double c = 1.0 / std::numbers::sqrt2;
  for (const std::size_t pairs : kSizes) {
    SCOPED_TRACE("pairs=" + std::to_string(pairs));
    for (int block = 0; block < 3; ++block) {
      const auto line = block == 0   ? random_block(2 * pairs, 11 + pairs)
                        : block == 1 ? tie_block(2 * pairs)
                                     : poisoned_block(2 * pairs, 13 + pairs);
      simd::aligned_vector<double> a_ref(pairs), d_ref(pairs);
      simd::aligned_vector<double> a_kt(pairs), d_kt(pairs);
      ref().haar_fwd_pairs(line.data(), a_ref.data(), d_ref.data(), pairs, c);
      kt().haar_fwd_pairs(line.data(), a_kt.data(), d_kt.data(), pairs, c);
      EXPECT_TRUE(bits_equal(a_ref, a_kt, "haar fwd approx"));
      EXPECT_TRUE(bits_equal(d_ref, d_kt, "haar fwd detail"));

      simd::aligned_vector<double> l_ref(2 * pairs), l_kt(2 * pairs);
      ref().haar_inv_pairs(a_ref.data(), d_ref.data(), l_ref.data(), pairs, c);
      kt().haar_inv_pairs(a_ref.data(), d_ref.data(), l_kt.data(), pairs, c);
      EXPECT_TRUE(bits_equal(l_ref, l_kt, "haar inv line"));
    }
  }
}

TEST_P(SimdKernelParity, HaarGoldenVector) {
  // (a,b) -> ((a+b)c, (a-b)c) with c = 1/sqrt(2): for a=3, b=1 the exact
  // doubles are 4c and 2c (both products are exact powers-of-two scalings).
  const double c = 1.0 / std::numbers::sqrt2;
  const simd::aligned_vector<double> line = {3.0, 1.0, -5.0, -5.0};
  simd::aligned_vector<double> approx(2), detail(2);
  kt().haar_fwd_pairs(line.data(), approx.data(), detail.data(), 2, c);
  EXPECT_EQ(approx[0], 4.0 * c);
  EXPECT_EQ(detail[0], 2.0 * c);
  EXPECT_EQ(approx[1], -10.0 * c);
  EXPECT_EQ(detail[1], 0.0);
}

namespace {

/// The exact table layout dct.cpp caches (same formula, both layouts).
struct TestDctTables {
  simd::aligned_vector<double> jk, kj;
  explicit TestDctTables(std::size_t m) : jk(m * m), kj(m * m) {
    for (std::size_t j = 0; j < m; ++j)
      for (std::size_t k = 0; k < m; ++k) {
        const double c =
            std::cos(std::numbers::pi * (static_cast<double>(j) + 0.5) *
                     static_cast<double>(k) / static_cast<double>(m));
        jk[j * m + k] = c;
        kj[k * m + j] = c;
      }
  }
};

}  // namespace

TEST_P(SimdKernelParity, DctLines) {
  for (const std::size_t m : {std::size_t{2}, std::size_t{3}, std::size_t{5},
                              std::size_t{8}, std::size_t{16},
                              std::size_t{31}, std::size_t{64},
                              std::size_t{256}}) {
    SCOPED_TRACE("m=" + std::to_string(m));
    const TestDctTables tabs(m);
    const double s0 = std::sqrt(1.0 / static_cast<double>(m));
    const double sk = std::sqrt(2.0 / static_cast<double>(m));
    for (int block = 0; block < 3; ++block) {
      const auto x = block == 0   ? random_block(m, 29 + m)
                     : block == 1 ? tie_block(m)
                                  : poisoned_block(m, 31 + m);
      simd::aligned_vector<double> y_ref(m), y_kt(m);
      ref().dct2_line(x.data(), y_ref.data(), m, tabs.jk.data(),
                      tabs.kj.data(), s0, sk);
      kt().dct2_line(x.data(), y_kt.data(), m, tabs.jk.data(), tabs.kj.data(),
                     s0, sk);
      EXPECT_TRUE(bits_equal(y_ref, y_kt, "dct2 line"));

      simd::aligned_vector<double> x_ref(m), x_kt(m);
      ref().dct3_line(y_ref.data(), x_ref.data(), m, tabs.jk.data(),
                      tabs.kj.data(), s0, sk);
      kt().dct3_line(y_ref.data(), x_kt.data(), m, tabs.jk.data(),
                     tabs.kj.data(), s0, sk);
      EXPECT_TRUE(bits_equal(x_ref, x_kt, "dct3 line"));
    }
  }
}

TEST_P(SimdKernelParity, DctGoldenVector) {
  // A constant line has only a DC coefficient: y[0] = s0 * m * v exactly
  // (every k=0 cosine is exactly 1.0), and the k>0 sums cancel pairwise to
  // the same tiny residues the scalar loop produces — pin y[0] exactly.
  const std::size_t m = 8;
  const TestDctTables tabs(m);
  const double s0 = std::sqrt(1.0 / 8.0), sk = std::sqrt(2.0 / 8.0);
  simd::aligned_vector<double> x(m, 2.5), y(m);
  kt().dct2_line(x.data(), y.data(), m, tabs.jk.data(), tabs.kj.data(), s0,
                 sk);
  // 2.5 summed 8 times is exactly 20.0.
  EXPECT_EQ(y[0], s0 * 20.0);
}

TEST_P(SimdKernelParity, ZfprGroups) {
  const double bin = 0.125;
  for (const std::size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    for (int block = 0; block < 4; ++block) {
      auto c = block == 0   ? random_block(n, 41 + n)
               : block == 1 ? tie_block(n)
               : block == 2 ? simd::aligned_vector<double>(n, 0.0)
                            : poisoned_block(n, 43 + n);
      if (block == 1)
        // Multiples of bin/2: every quotient is a half-integer tie.
        for (auto& v : c) v *= 0.25;
      simd::aligned_vector<std::uint64_t> zz_ref(n), zz_kt(n);
      simd::aligned_vector<double> rec_ref(n), rec_kt(n);
      const unsigned w_ref =
          ref().zfpr_quant_group(c.data(), n, bin, zz_ref.data(),
                                 rec_ref.data());
      const unsigned w_kt =
          kt().zfpr_quant_group(c.data(), n, bin, zz_kt.data(),
                                rec_kt.data());
      EXPECT_EQ(w_ref, w_kt);
      if (w_ref != simd::kZfprEscape) {
        // zz/recon are unspecified on escape; otherwise exact.
        EXPECT_TRUE(bits_equal(zz_ref, zz_kt, "zfpr zigzag"));
        EXPECT_TRUE(bits_equal(rec_ref, rec_kt, "zfpr recon"));
      }
      EXPECT_EQ(kt().zfpr_census_group(c.data(), n, bin), w_ref);
    }
  }
}

TEST_P(SimdKernelParity, ZfprGoldenVectors) {
  simd::aligned_vector<std::uint64_t> zz(4);
  simd::aligned_vector<double> rec(4);
  // Ties away from zero: 2.5 -> 3, -2.5 -> -3 (zigzag 6 and 5), plus the
  // zigzag of +1 / -1. max zz = 6 -> width 3.
  const simd::aligned_vector<double> ties = {2.5, -2.5, 1.0, -1.0};
  EXPECT_EQ(kt().zfpr_quant_group(ties.data(), 4, 1.0, zz.data(), rec.data()),
            3u);
  EXPECT_EQ(zz[0], 6u);
  EXPECT_EQ(zz[1], 5u);
  EXPECT_EQ(zz[2], 2u);
  EXPECT_EQ(zz[3], 1u);
  EXPECT_EQ(rec[0], 3.0);
  EXPECT_EQ(rec[1], -3.0);
  // All zeros: width 0, nothing to store.
  const simd::aligned_vector<double> zeros = {0.0, -0.0, 0.0, 0.0};
  EXPECT_EQ(kt().zfpr_quant_group(zeros.data(), 4, 1.0, zz.data(),
                                  rec.data()),
            0u);
  // One index past the escape threshold poisons the whole group.
  const simd::aligned_vector<double> huge = {1.0, 5.0e18, 2.0, 3.0};
  EXPECT_EQ(kt().zfpr_quant_group(huge.data(), 4, 1.0, zz.data(), rec.data()),
            simd::kZfprEscape);
  const simd::aligned_vector<double> nan = {
      1.0, std::numeric_limits<double>::quiet_NaN(), 2.0, 3.0};
  EXPECT_EQ(kt().zfpr_census_group(nan.data(), 4, 1.0), simd::kZfprEscape);
}

TEST_P(SimdKernelParity, HuffmanPackMatchesPerSymbolWrites) {
  // Hand-built canonical table: lengths {1,2,3,3} give MSB-first codes
  // {0, 10, 110, 111}; the pack entries hold them bit-reversed.
  const std::vector<std::uint64_t> entries = {
      0 | (std::uint64_t{1} << 32), 1 | (std::uint64_t{2} << 32),
      3 | (std::uint64_t{3} << 32), 7 | (std::uint64_t{3} << 32)};
  std::mt19937_64 rng(59);
  for (const std::size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<std::uint32_t> syms(n);
    for (auto& s : syms) s = static_cast<std::uint32_t>(rng() % 4);

    // Reference stream: one write_bits call per symbol, after a 3-bit
    // preamble so the pack also proves itself at a non-zero bit offset.
    io::BitWriter ref_bits;
    ref_bits.write_bits(0x5, 3);
    for (const std::uint32_t s : syms)
      ref_bits.write_bits(entries[s] & 0xFFFFFFFFu,
                          static_cast<unsigned>(entries[s] >> 32));
    const auto ref_bytes = ref_bits.take();

    // Kernel stream, split into two calls to exercise the carry handoff.
    io::BitWriter out;
    out.write_bits(0x5, 3);
    std::vector<std::uint64_t> words((n * 3 + 63) / 64 + 1);
    std::uint64_t carry = 0;
    unsigned carry_bits = 0;
    const std::size_t half = n / 2;
    for (const auto [off, len] :
         {std::pair<std::size_t, std::size_t>{0, half},
          std::pair<std::size_t, std::size_t>{half, n - half}}) {
      std::size_t bad = simd::kNoBadSymbol;
      const std::size_t nw =
          kt().huffman_pack(syms.data() + off, len, entries.data(),
                            entries.size(), words.data(), &carry,
                            &carry_bits, &bad);
      EXPECT_EQ(bad, simd::kNoBadSymbol);
      for (std::size_t w = 0; w < nw; ++w) out.write_bits(words[w], 64);
    }
    if (carry_bits > 0) out.write_bits(carry, carry_bits);
    EXPECT_EQ(out.take(), ref_bytes);
  }
}

TEST_P(SimdKernelParity, HuffmanPackReportsBadSymbols) {
  const std::vector<std::uint64_t> entries = {
      0 | (std::uint64_t{1} << 32), 1 | (std::uint64_t{2} << 32),
      0,  // symbol 2: no code assigned
      7 | (std::uint64_t{3} << 32)};
  const std::vector<std::uint32_t> no_code = {0, 1, 2, 0};
  const std::vector<std::uint32_t> out_of_alphabet = {0, 1, 9};
  for (const auto& syms : {no_code, out_of_alphabet}) {
    std::vector<std::uint64_t> words(8);
    std::uint64_t carry = 0;
    unsigned carry_bits = 0;
    std::size_t bad = simd::kNoBadSymbol;
    kt().huffman_pack(syms.data(), syms.size(), entries.data(),
                      entries.size(), words.data(), &carry, &carry_bits,
                      &bad);
    EXPECT_EQ(bad, 2u);  // both streams break at index 2
  }
}

namespace {

template <typename T>
struct LorenzoRun {
  simd::aligned_vector<std::uint32_t> codes;
  simd::aligned_vector<T> recon;
  simd::aligned_vector<T> outliers;
};

template <typename T>
LorenzoRun<T> run_lorenzo(const simd::KernelTable& kt,
                          const simd::aligned_vector<T>& values,
                          std::size_t n0, std::size_t n1, double eb,
                          std::uint32_t bins) {
  LorenzoRun<T> r;
  r.codes.resize(values.size());
  r.recon.resize(values.size());
  r.outliers.resize(values.size());
  std::size_t n_out;
  if constexpr (std::is_same_v<T, float>)
    n_out = kt.lorenzo2_quant_f32(values.data(), n0, n1, eb, bins,
                                  r.codes.data(), r.recon.data(),
                                  r.outliers.data());
  else
    n_out = kt.lorenzo2_quant_f64(values.data(), n0, n1, eb, bins,
                                  r.codes.data(), r.recon.data(),
                                  r.outliers.data());
  r.outliers.resize(n_out);
  return r;
}

template <typename T>
void lorenzo_parity_sweep(const simd::KernelTable& ref,
                          const simd::KernelTable& kt) {
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {1, 1},  {1, 64}, {64, 1}, {2, 9},  {3, 8},   {4, 8},
      {5, 5},  {7, 31}, {8, 8},  {13, 4}, {16, 33}, {40, 40}};
  for (const auto& [n0, n1] : shapes) {
    SCOPED_TRACE(std::to_string(n0) + "x" + std::to_string(n1));
    const std::size_t n = n0 * n1;
    for (int block = 0; block < 4; ++block) {
      const auto src = block == 0   ? random_block(n, 71 + n)
                       : block == 1 ? tie_block(n)
                       : block == 2 ? simd::aligned_vector<double>(n, 1.5)
                                    : poisoned_block(n, 73 + n);
      simd::aligned_vector<T> values(src.begin(), src.end());
      // eb = 0.25 against the tie block's multiples of 0.25 puts every
      // prediction residual on a half-integer quantization tie.
      for (const double eb : {0.25, 1e-3}) {
        for (const std::uint32_t bins : {16u, 65536u}) {
          const auto a = run_lorenzo<T>(ref, values, n0, n1, eb, bins);
          const auto b = run_lorenzo<T>(kt, values, n0, n1, eb, bins);
          EXPECT_TRUE(bits_equal(a.codes, b.codes, "lorenzo codes"));
          EXPECT_TRUE(bits_equal(a.recon, b.recon, "lorenzo recon"));
          EXPECT_TRUE(bits_equal(a.outliers, b.outliers, "lorenzo outliers"));
        }
      }
    }
  }
}

}  // namespace

TEST_P(SimdKernelParity, Lorenzo2dFloat) {
  lorenzo_parity_sweep<float>(ref(), kt());
}

TEST_P(SimdKernelParity, Lorenzo2dDouble) {
  lorenzo_parity_sweep<double>(ref(), kt());
}

TEST_P(SimdKernelParity, Lorenzo2dGoldenVector) {
  // eb = 0.25, first point of a row: pred = 0, scaled = 0.75/0.5 = 1.5 —
  // a tie that must round away from zero to 2 (code = radius + 2).
  const simd::aligned_vector<float> values = {0.75f, 0.75f, 10.0f, 10.25f};
  const auto r = run_lorenzo<float>(kt(), values, 1, 4, 0.25, 16);
  EXPECT_EQ(r.codes[0], 8u + 2u);
  // Second point: pred = recon[0] = 1.0, scaled = -0.5 -> -1 (tie away).
  EXPECT_EQ(r.codes[1], 8u - 1u);
  // 10.0 jumps out of the 16-bin radius: exact outlier, code 0.
  EXPECT_EQ(r.codes[2], 0u);
  ASSERT_EQ(r.outliers.size(), 1u);
  EXPECT_EQ(r.outliers[0], 10.0f);
  EXPECT_EQ(r.recon[2], 10.0f);
}

TEST_P(SimdKernelParity, SseAccumulators) {
  for (const std::size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const auto a64 = random_block(n, 83 + n);
    const auto b64 = random_block(n, 89 + n);
    const simd::aligned_vector<float> a32(a64.begin(), a64.end());
    const simd::aligned_vector<float> b32(b64.begin(), b64.end());

    const double f32_ref = ref().sse_f32(a32.data(), b32.data(), n);
    const double f32_kt = kt().sse_f32(a32.data(), b32.data(), n);
    EXPECT_EQ(std::memcmp(&f32_ref, &f32_kt, sizeof(double)), 0)
        << f32_ref << " vs " << f32_kt;

    const double f64_ref = ref().sse_f64(a64.data(), b64.data(), n);
    const double f64_kt = kt().sse_f64(a64.data(), b64.data(), n);
    EXPECT_EQ(std::memcmp(&f64_ref, &f64_kt, sizeof(double)), 0)
        << f64_ref << " vs " << f64_kt;

    const double c_ref = ref().sse_cast_f32(a32.data(), b64.data(), n);
    const double c_kt = kt().sse_cast_f32(a32.data(), b64.data(), n);
    EXPECT_EQ(std::memcmp(&c_ref, &c_kt, sizeof(double)), 0)
        << c_ref << " vs " << c_kt;
  }
}

TEST_P(SimdKernelParity, SseGoldenVector) {
  // Errors of 1,2,3,4,5 -> SSE 55 exactly in double.
  const simd::aligned_vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const simd::aligned_vector<double> b(5, 0.0);
  EXPECT_EQ(kt().sse_f64(a.data(), b.data(), 5), 55.0);
  EXPECT_EQ(kt().sse_f64(a.data(), b.data(), 0), 0.0);
}

// ---------------------------------------------------------------------------
// Whole-archive identity across forced backends
// ---------------------------------------------------------------------------

TEST(SimdArchiveIdentity, EveryEngineEveryBackendSameBytes) {
  const data::Dims dims{48, 40};
  auto values = data::smoothed_noise(dims, 17, 2, 2);
  data::rescale(values, -3.0f, 6.0f);
  const std::span<const float> span(values);

  const auto engines = {core::Engine::SzLorenzo, core::Engine::TransformHaar,
                        core::Engine::TransformDct, core::Engine::Interp,
                        core::Engine::ZfpRate, core::Engine::Store};
  for (const core::Engine engine : engines) {
    SCOPED_TRACE("engine " + std::to_string(static_cast<int>(engine)));
    for (const auto& request : {core::ControlRequest::fixed_psnr(65.0),
                                core::ControlRequest::fixed_rate(7.0)}) {
      SCOPED_TRACE(request.mode == core::ControlMode::FixedRate ? "rate"
                                                                : "psnr");
      core::CompressOptions opts;
      opts.engine = engine;
      opts.parallel.block_pipeline = true;
      opts.parallel.threads = 2;
      std::vector<std::uint8_t> reference;
      for (const simd::Backend b : simd::supported_backends()) {
        BackendPin pin(b);
        const auto r = core::compress_blocked<float>(span, dims, request,
                                                     opts);
        if (reference.empty()) {
          reference = r.stream;  // scalar comes first in the list
          const auto out = core::decompress_blocked<float>(r.stream, 2);
          EXPECT_EQ(out.values.size(), values.size());
        } else {
          EXPECT_EQ(r.stream, reference)
              << "backend " << simd::backend_name(b)
              << " diverged from scalar bytes";
        }
      }
    }
  }
}
