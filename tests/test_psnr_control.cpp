// Tests for the unified error-control front end.
#include "core/psnr_control.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/distortion_model.h"

namespace core = fpsnr::core;
namespace sz = fpsnr::sz;

TEST(PsnrControl, FixedPsnrResolvesToEq8Bound) {
  const auto r = core::resolve_control(core::ControlRequest::fixed_psnr(80.0));
  EXPECT_EQ(r.sz_mode, sz::ErrorBoundMode::ValueRangeRelative);
  EXPECT_NEAR(r.sz_bound, std::sqrt(3.0) * 1e-4, 1e-15);
  EXPECT_NEAR(r.predicted_psnr_db, 80.0, 1e-9);
}

TEST(PsnrControl, FixedPsnrPredictionIsSelfConsistent) {
  for (double target : {20.0, 40.0, 60.0, 80.0, 100.0, 120.0}) {
    const auto r = core::resolve_control(core::ControlRequest::fixed_psnr(target));
    EXPECT_NEAR(r.predicted_psnr_db, target, 1e-9) << target;
    EXPECT_GT(r.sz_bound, 0.0);
  }
}

TEST(PsnrControl, MonotoneBoundVsTarget) {
  // Higher PSNR demand => tighter bound.
  double prev = 1e9;
  for (double target = 10.0; target <= 130.0; target += 5.0) {
    const auto r = core::resolve_control(core::ControlRequest::fixed_psnr(target));
    EXPECT_LT(r.sz_bound, prev);
    prev = r.sz_bound;
  }
}

TEST(PsnrControl, AbsoluteMode) {
  const auto r = core::resolve_control(core::ControlRequest::absolute(0.25));
  EXPECT_EQ(r.sz_mode, sz::ErrorBoundMode::Absolute);
  EXPECT_DOUBLE_EQ(r.sz_bound, 0.25);
  EXPECT_TRUE(std::isnan(r.predicted_psnr_db));  // needs value range
}

TEST(PsnrControl, RelativeMode) {
  const auto r = core::resolve_control(core::ControlRequest::relative(1e-3));
  EXPECT_EQ(r.sz_mode, sz::ErrorBoundMode::ValueRangeRelative);
  EXPECT_NEAR(r.predicted_psnr_db, core::psnr_for_rel_bound(1e-3), 1e-12);
}

TEST(PsnrControl, PointwiseMode) {
  const auto r = core::resolve_control(core::ControlRequest::pointwise(1e-2));
  EXPECT_EQ(r.sz_mode, sz::ErrorBoundMode::PointwiseRelative);
  EXPECT_TRUE(std::isnan(r.predicted_psnr_db));
}

TEST(PsnrControl, FixedRateRejectedHere) {
  EXPECT_THROW(core::resolve_control(core::ControlRequest::fixed_rate(4.0)),
               std::invalid_argument);
}

TEST(PsnrControl, InvalidBoundsThrow) {
  EXPECT_THROW(core::resolve_control(core::ControlRequest::absolute(0.0)),
               std::invalid_argument);
  EXPECT_THROW(core::resolve_control(core::ControlRequest::relative(-1.0)),
               std::invalid_argument);
  EXPECT_THROW(core::resolve_control(
                   core::ControlRequest::fixed_psnr(
                       std::numeric_limits<double>::infinity())),
               std::invalid_argument);
}

TEST(PsnrControl, ModeNames) {
  EXPECT_EQ(core::control_mode_name(core::ControlMode::FixedPsnr), "fixed-psnr");
  EXPECT_EQ(core::control_mode_name(core::ControlMode::FixedRate), "fixed-rate");
  EXPECT_EQ(core::control_mode_name(core::ControlMode::Absolute), "abs");
}
