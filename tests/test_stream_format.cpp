// Container-format and corruption-robustness tests.
#include "sz/stream_format.h"

#include <gtest/gtest.h>

#include <random>

#include "data/synth.h"
#include "sz/codec.h"

namespace sz = fpsnr::sz;
namespace data = fpsnr::data;
namespace io = fpsnr::io;

namespace {

std::vector<std::uint8_t> sample_stream(sz::CompressionInfo* info = nullptr) {
  const data::Dims dims{32, 32};
  const auto values = data::smoothed_noise(dims, 4, 2, 2);
  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-4;
  return sz::compress<float>(values, dims, params, info);
}

}  // namespace

TEST(StreamFormat, HeaderRoundTrip) {
  sz::StreamHeader h;
  h.scalar = sz::ScalarType::Float64;
  h.mode = sz::ErrorBoundMode::PointwiseRelative;
  h.dims = data::Dims{10, 20, 30};
  h.eb_abs = 1.5e-7;
  h.user_bound = 1e-3;
  h.value_range = 42.0;
  h.quant_bins = 4096;
  h.pwrel_zero_floor = 1e-20;

  io::ByteWriter w;
  sz::write_header(h, w);
  const auto buf = w.take();
  io::ByteReader r(buf);
  const auto back = sz::read_header(r);
  EXPECT_EQ(back.scalar, h.scalar);
  EXPECT_EQ(back.mode, h.mode);
  EXPECT_EQ(back.dims, h.dims);
  EXPECT_DOUBLE_EQ(back.eb_abs, h.eb_abs);
  EXPECT_DOUBLE_EQ(back.user_bound, h.user_bound);
  EXPECT_DOUBLE_EQ(back.value_range, h.value_range);
  EXPECT_EQ(back.quant_bins, h.quant_bins);
  EXPECT_DOUBLE_EQ(back.pwrel_zero_floor, h.pwrel_zero_floor);
}

TEST(StreamFormat, InspectRealStream) {
  const auto stream = sample_stream();
  const auto h = sz::inspect(stream);
  EXPECT_EQ(h.scalar, sz::ScalarType::Float32);
  EXPECT_EQ(h.mode, sz::ErrorBoundMode::ValueRangeRelative);
  EXPECT_EQ(h.dims, (data::Dims{32, 32}));
  EXPECT_DOUBLE_EQ(h.user_bound, 1e-4);
  EXPECT_GT(h.eb_abs, 0.0);
}

TEST(StreamFormat, BadMagicRejected) {
  auto stream = sample_stream();
  stream[0] = 'X';
  EXPECT_THROW(sz::inspect(stream), io::StreamError);
  EXPECT_THROW(sz::decompress<float>(stream), io::StreamError);
}

TEST(StreamFormat, BadVersionRejected) {
  auto stream = sample_stream();
  stream[4] = 99;
  EXPECT_THROW(sz::inspect(stream), io::StreamError);
}

TEST(StreamFormat, TruncationsNeverCrash) {
  const auto stream = sample_stream();
  // Every truncation point must throw StreamError, never crash or hang.
  for (std::size_t keep = 0; keep < stream.size();
       keep += std::max<std::size_t>(1, stream.size() / 97)) {
    std::vector<std::uint8_t> cut(stream.begin(),
                                  stream.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(sz::decompress<float>(cut), io::StreamError) << "keep=" << keep;
  }
}

TEST(StreamFormat, RandomByteFlipsEitherDecodeOrThrow) {
  // Bit flips may legitimately decode to different data (payload bits), but
  // must never produce UB / crash / infinite loop.
  const auto stream = sample_stream();
  std::mt19937_64 rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = stream;
    const std::size_t pos = rng() % corrupted.size();
    corrupted[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    try {
      const auto out = sz::decompress<float>(corrupted);
      EXPECT_EQ(out.values.size(), 32u * 32u);
    } catch (const io::StreamError&) {
      // acceptable
    } catch (const std::invalid_argument&) {
      // acceptable (e.g. corrupted quantizer parameters)
    }
  }
}

TEST(StreamFormat, ZeroExtentRejected) {
  io::ByteWriter w;
  w.put_bytes(std::span<const std::uint8_t>(sz::kMagic, 4));
  w.put<std::uint8_t>(sz::kFormatVersion);
  w.put<std::uint8_t>(0);  // float32
  w.put<std::uint8_t>(0);  // abs
  w.put<std::uint8_t>(2);  // rank 2
  w.put_varint(4);
  w.put_varint(0);  // zero extent!
  const auto buf = w.take();
  io::ByteReader r(buf);
  EXPECT_THROW(sz::read_header(r), io::StreamError);
}

TEST(StreamFormat, ModeNames) {
  EXPECT_EQ(sz::mode_name(sz::ErrorBoundMode::Absolute), "abs");
  EXPECT_EQ(sz::mode_name(sz::ErrorBoundMode::ValueRangeRelative), "vr-rel");
  EXPECT_EQ(sz::mode_name(sz::ErrorBoundMode::PointwiseRelative), "pw-rel");
}
