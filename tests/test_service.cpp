// Tests for fpsnrd (fpsnr::service) — the long-lived compression daemon.
//
// Covers the wire contract end to end: byte-identity of socket archives
// against in-process Session output for every engine x target mode,
// protocol corruption (truncated frames, oversized lengths, bad magic,
// mid-request disconnects -> typed errors, never a crash or a hang),
// admission control, deadline expiry, and the graceful-drain guarantee
// (every admitted request answered; run() returns 0).
#include "fpsnr/service.h"

// The daemon is POSIX-sockets only; on Windows this compiles to an empty
// (passing) binary rather than pretending.
#if !defined(_WIN32)

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fpsnr/session.h"
#include "fpsnr/timeseries.h"
#include "service/wire.h"

namespace {

using namespace fpsnr;
namespace fs = std::filesystem;

std::string unique_socket_path(const std::string& tag) {
  // Keep it short: sun_path caps out around 108 bytes.
  return (fs::temp_directory_path() /
          ("fpsnrd_" + tag + "_" + std::to_string(::getpid()) + ".sock"))
      .string();
}

/// A Server running on its own thread, torn down via graceful drain.
struct TestServer {
  std::optional<service::Server> server;
  std::thread runner;
  int exit_code = -1;
  std::string path;

  void start(const std::string& tag, service::ServerOptions opts = {}) {
    path = unique_socket_path(tag);
    ::unlink(path.c_str());
    opts.endpoint.socket_path = path;
    server.emplace(std::move(opts));  // binds + listens in the ctor
    runner = std::thread([this] { exit_code = server->run(); });
  }

  void stop() {
    if (server && runner.joinable()) {
      server->request_shutdown();
      runner.join();
    }
  }

  ~TestServer() {
    stop();
    ::unlink(path.c_str());
  }
};

/// Raw client socket for protocol-corruption tests (bypasses Client).
struct RawConn {
  int fd = -1;

  explicit RawConn(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      throw std::runtime_error(std::string("connect() failed: ") +
                               std::strerror(errno));
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    service::wire::write_all(fd, bytes.data(), bytes.size());
  }

  /// Read one frame; nullopt on clean close.
  std::optional<std::pair<service::wire::FrameHeader,
                          std::vector<std::uint8_t>>>
  read_frame() {
    service::wire::FrameHeader header;
    if (!service::wire::read_frame_header(fd, &header)) return std::nullopt;
    std::vector<std::uint8_t> body(static_cast<std::size_t>(header.length));
    if (!body.empty() &&
        !service::wire::read_exact(fd, body.data(), body.size()))
      return std::nullopt;
    return std::make_pair(header, std::move(body));
  }
};

std::vector<std::uint8_t> frame_header(std::uint32_t magic, std::uint16_t type,
                                       std::uint64_t length) {
  service::wire::Writer w;
  w.u32(magic);
  w.u16(type);
  w.u16(0);
  w.u64(length);
  return w.take();
}

/// Deterministic test field.
std::vector<float> make_values(std::size_t n) {
  std::vector<float> values(n);
  for (std::size_t i = 0; i < n; ++i)
    values[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.013) *
                                   50.0 +
                                   static_cast<double>(i % 31));
  return values;
}

service::ErrorCode code_of(const std::vector<std::uint8_t>& body) {
  service::wire::Reader r(body);
  return static_cast<service::ErrorCode>(r.u16());
}

}  // namespace

TEST(Service, PingStatsAndGracefulShutdown) {
  TestServer ts;
  ts.start("ping");
  {
    service::Client client({ts.path});
    client.ping();
    const std::string stats = client.stats();
    EXPECT_NE(stats.find("requests_total:"), std::string::npos);
    EXPECT_NE(stats.find("queue_depth:"), std::string::npos);
    EXPECT_NE(ts.server->stats().find("requests_ping: 1"), std::string::npos);
  }
  ts.stop();
  EXPECT_EQ(ts.exit_code, 0);
}

TEST(Service, ArchivesAreByteIdenticalToInProcessForEveryEngineAndMode) {
  // The tentpole acceptance bar: for every engine x target mode, the
  // archive a client gets over the socket is byte-for-byte what an
  // in-process Session produces. Combos the Session itself rejects must
  // surface remotely as a typed BadRequest, not a crash or a hang.
  TestServer ts;
  ts.start("matrix");
  service::Client client({ts.path});

  const std::vector<std::size_t> dims = {48, 32};
  const std::vector<float> values = make_values(48 * 32);
  const std::vector<std::string> engines = {
      "sz-lorenzo", "transform-haar", "transform-dct",
      "interp",     "zfpr",           "store"};
  const std::vector<std::pair<std::string, double>> modes = {
      {"psnr", 70.0}, {"abs", 0.05},    {"rel", 1e-3},
      {"pwrel", 1e-2}, {"nrmse", 1e-3}, {"rate", 8.0}};

  for (const auto& engine : engines) {
    for (const auto& [mode, value] : modes) {
      SCOPED_TRACE(engine + " / " + mode);
      std::vector<std::uint8_t> expected;
      bool rejected = false;
      try {
        SessionOptions so;
        so.engine = engine;
        so.threads = 2;
        const Session session{std::move(so)};
        expected = session
                       .compress(Source::memory(std::span<const float>(values),
                                                dims),
                                 make_target(mode, value), Sink::memory())
                       .archive;
      } catch (const std::invalid_argument&) {
        rejected = true;  // the combo is invalid in-process too
      }

      service::CompressSpec spec;
      spec.engine = engine;
      spec.mode = mode;
      spec.value = value;
      spec.dims = dims;
      if (rejected) {
        try {
          client.compress(std::span<const float>(values), spec);
          FAIL() << "server accepted a combo the Session rejects";
        } catch (const service::ServiceError& e) {
          EXPECT_EQ(e.code(), service::ErrorCode::BadRequest);
        }
        continue;
      }
      const service::CompressResult r =
          client.compress(std::span<const float>(values), spec);
      EXPECT_EQ(r.archive, expected);
      EXPECT_EQ(r.value_count, values.size());
    }
  }
}

TEST(Service, ExplicitTileShapeCrossesTheWire) {
  // A non-slab full-rank tile requested by the client must drive the
  // server's plan (byte-identity with an in-process Session using the
  // same TileShape) and echo back in the result's tile geometry.
  TestServer ts;
  ts.start("tile");
  service::Client client({ts.path});

  const std::vector<std::size_t> dims = {48, 32};
  const std::vector<float> values = make_values(48 * 32);
  const std::vector<std::size_t> tile = {10, 12};

  SessionOptions so;
  so.threads = 2;
  so.tile = TileShape(tile);
  const Session session{std::move(so)};
  const auto expected =
      session
          .compress(Source::memory(std::span<const float>(values), dims),
                    FixedPsnr{70.0}, Sink::memory())
          .archive;

  service::CompressSpec spec;
  spec.mode = "psnr";
  spec.value = 70.0;
  spec.dims = dims;
  spec.tile = tile;
  const service::CompressResult r =
      client.compress(std::span<const float>(values), spec);
  EXPECT_EQ(r.archive, expected);
  EXPECT_EQ(r.tile, tile);
  EXPECT_EQ(r.block_count, 5u * 3u);  // ceil(48/10) x ceil(32/12)
}

TEST(Service, RemoteDecompressMatchesInProcess) {
  TestServer ts;
  ts.start("roundtrip");
  service::Client client({ts.path});

  const std::vector<std::size_t> dims = {32, 32};
  const std::vector<float> values = make_values(32 * 32);
  service::CompressSpec spec;
  spec.mode = "psnr";
  spec.value = 75.0;
  spec.dims = dims;
  const auto r = client.compress(std::span<const float>(values), spec);

  const Field remote =
      client.decompress(std::span<const std::uint8_t>(r.archive));
  const Session session;
  const Field local = session.decompress(
      Source::memory(std::span<const std::uint8_t>(r.archive)));
  ASSERT_EQ(remote.f32.size(), local.f32.size());
  EXPECT_EQ(std::memcmp(remote.f32.data(), local.f32.data(),
                        local.f32.size() * sizeof(float)),
            0);
  EXPECT_EQ(remote.dims, local.dims);

  const std::string info =
      client.inspect(std::span<const std::uint8_t>(r.archive));
  EXPECT_NE(info.find("codec: sz-lorenzo"), std::string::npos);
}

TEST(Service, DoublePrecisionRoundTrip) {
  TestServer ts;
  ts.start("f64");
  service::Client client({ts.path});

  std::vector<double> values(64 * 16);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = std::cos(static_cast<double>(i) * 0.01) * 1e3;
  service::CompressSpec spec;
  spec.mode = "psnr";
  spec.value = 80.0;
  spec.dims = {64, 16};
  const auto r = client.compress(std::span<const double>(values), spec);

  const Field remote =
      client.decompress(std::span<const std::uint8_t>(r.archive));
  const Session session;
  const Field local = session.decompress(
      Source::memory(std::span<const std::uint8_t>(r.archive)));
  ASSERT_TRUE(remote.is_double());
  ASSERT_EQ(remote.f64.size(), local.f64.size());
  EXPECT_EQ(std::memcmp(remote.f64.data(), local.f64.data(),
                        local.f64.size() * sizeof(double)),
            0);
}

TEST(Service, CompressSeriesChainIsByteIdenticalToInProcess) {
  // The daemon keeps one TimeSeriesSession per series name; each frame a
  // client pushes must come back byte-for-byte what an in-process session
  // with the same options would emit, and the resulting archives must
  // decode as one chain.
  TestServer ts;
  ts.start("series");
  service::Client client({ts.path});

  const std::vector<std::size_t> dims = {32, 24};
  std::vector<float> values = make_values(32 * 24);

  TimeSeriesOptions topts;
  topts.series = "wire-series";
  topts.keyframe_interval = 2;
  TimeSeriesSession local(FixedPsnr{70.0}, std::move(topts));

  service::SeriesSpec spec;
  spec.series = "wire-series";
  spec.keyframe_interval = 2;
  spec.mode = "psnr";
  spec.value = 70.0;
  spec.dims = dims;

  TimeSeriesDecoder dec;
  for (std::size_t t = 0; t < 4; ++t) {
    SCOPED_TRACE("frame " + std::to_string(t));
    Field snap;
    snap.dims = dims;
    snap.f32 = values;
    const SnapshotRecord expected = local.push(snap);

    const service::SeriesResult r =
        client.compress_series(std::span<const float>(values), spec);
    EXPECT_EQ(r.archive, expected.report.archive);
    EXPECT_EQ(r.timestep, t);
    EXPECT_EQ(r.keyframe, t % 2 == 0);
    EXPECT_EQ(r.temporal_blocks, expected.temporal_blocks);
    EXPECT_EQ(r.value_count, values.size());

    // The wire archives form a decodable chain.
    const Field frame = dec.feed(std::span<const std::uint8_t>(r.archive));
    EXPECT_EQ(frame.f32.size(), values.size());

    // Evolve gently so delta frames have something to predict.
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] += 0.02f * std::sin(static_cast<float>(i) * 0.05f);
  }
  EXPECT_EQ(dec.frames(), 4u);
}

TEST(Service, SeriesSpecIsLockedForItsLifetime) {
  // A series' parameters are fixed at first push; a later request for the
  // same name with a different target (or scalar type) is a BadRequest,
  // and the original chain keeps working afterwards.
  TestServer ts;
  ts.start("serieslock");
  service::Client client({ts.path});

  const std::vector<std::size_t> dims = {24, 16};
  const std::vector<float> values = make_values(24 * 16);
  service::SeriesSpec spec;
  spec.series = "locked";
  spec.mode = "psnr";
  spec.value = 70.0;
  spec.dims = dims;
  const auto first = client.compress_series(std::span<const float>(values), spec);
  EXPECT_EQ(first.timestep, 0u);
  EXPECT_TRUE(first.keyframe);

  auto changed = spec;
  changed.value = 75.0;
  try {
    client.compress_series(std::span<const float>(values), changed);
    FAIL() << "server accepted a target change mid-series";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), service::ErrorCode::BadRequest);
  }

  std::vector<double> dvalues(values.begin(), values.end());
  try {
    client.compress_series(std::span<const double>(dvalues), spec);
    FAIL() << "server accepted a scalar-type change mid-series";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), service::ErrorCode::BadRequest);
  }

  // The rejections did not corrupt the chain: the next matching push is t=1.
  const auto second = client.compress_series(std::span<const float>(values), spec);
  EXPECT_EQ(second.timestep, 1u);
  EXPECT_FALSE(second.keyframe);

  // A different series name is an independent chain.
  auto other = spec;
  other.series = "locked-2";
  other.value = 75.0;
  const auto fresh = client.compress_series(std::span<const float>(values), other);
  EXPECT_EQ(fresh.timestep, 0u);
}

TEST(Service, DoublePrecisionSeriesRoundTrip) {
  TestServer ts;
  ts.start("seriesf64");
  service::Client client({ts.path});

  const std::vector<std::size_t> dims = {16, 16};
  std::vector<double> values(16 * 16);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = std::cos(static_cast<double>(i) * 0.03) * 40.0;

  service::SeriesSpec spec;
  spec.series = "f64-series";
  spec.mode = "psnr";
  spec.value = 80.0;
  spec.dims = dims;

  TimeSeriesDecoder dec;
  for (std::size_t t = 0; t < 2; ++t) {
    const auto r = client.compress_series(std::span<const double>(values), spec);
    EXPECT_EQ(r.timestep, t);
    const Field frame = dec.feed(std::span<const std::uint8_t>(r.archive));
    ASSERT_TRUE(frame.is_double());
    EXPECT_EQ(frame.f64.size(), values.size());
    for (auto& v : values) v *= 1.001;
  }
}

TEST(Service, BadMagicGetsTypedErrorAndClose) {
  TestServer ts;
  ts.start("magic");
  {
    RawConn conn(ts.path);
    conn.send_bytes(frame_header(0xDEADBEEFu, 1, 0));
    const auto reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->first.type, service::FrameType::Error);
    EXPECT_EQ(code_of(reply->second), service::ErrorCode::BadMagic);
    // Stream alignment is lost, so the server closes the connection.
    EXPECT_FALSE(conn.read_frame().has_value());
  }
  // The daemon itself survives a garbage peer.
  service::Client client({ts.path});
  client.ping();
}

TEST(Service, OversizedFrameGetsTypedErrorAndClose) {
  TestServer ts;
  service::ServerOptions opts;
  opts.max_frame_bytes = 1024;
  ts.start("oversized", std::move(opts));
  {
    RawConn conn(ts.path);
    conn.send_bytes(frame_header(
        service::kFrameMagic,
        static_cast<std::uint16_t>(service::FrameType::Compress), 1u << 20));
    const auto reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(code_of(reply->second), service::ErrorCode::Oversized);
    EXPECT_FALSE(conn.read_frame().has_value());
  }
  service::Client client({ts.path});
  client.ping();
}

TEST(Service, UnknownFrameTypeGetsTypedError) {
  TestServer ts;
  ts.start("unknown");
  RawConn conn(ts.path);
  conn.send_bytes(frame_header(service::kFrameMagic, 99, 0));
  const auto reply = conn.read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(code_of(reply->second), service::ErrorCode::BadFrame);
}

TEST(Service, TruncatedHeaderThenDisconnectDoesNotKillTheServer) {
  TestServer ts;
  ts.start("trunc");
  {
    RawConn conn(ts.path);
    conn.send_bytes({0x46, 0x50, 0x53});  // 3 of 16 header bytes, then close
  }
  service::Client client({ts.path});
  client.ping();
  EXPECT_NE(ts.server->stats().find("disconnects_mid_request: 1"),
            std::string::npos);
}

TEST(Service, MidPayloadDisconnectDoesNotKillTheServer) {
  TestServer ts;
  ts.start("midreq");
  {
    RawConn conn(ts.path);
    conn.send_bytes(frame_header(
        service::kFrameMagic,
        static_cast<std::uint16_t>(service::FrameType::Compress), 4096));
    conn.send_bytes(std::vector<std::uint8_t>(64, 0x7f));  // 64 of 4096
  }
  service::Client client({ts.path});
  client.ping();
  EXPECT_NE(ts.server->stats().find("disconnects_mid_request: 1"),
            std::string::npos);
}

TEST(Service, MalformedJobPayloadGetsTypedErrorNotACrash) {
  // A complete frame whose payload lies about its own layout (truncated
  // fields, bogus blob lengths) must come back as a typed error with the
  // connection still usable — every Reader access is bounds-checked.
  TestServer ts;
  ts.start("payload");
  RawConn conn(ts.path);
  const std::vector<std::uint8_t> junk(32, 0xff);
  conn.send_bytes(frame_header(
      service::kFrameMagic,
      static_cast<std::uint16_t>(service::FrameType::Compress), junk.size()));
  conn.send_bytes(junk);
  const auto reply = conn.read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->first.type, service::FrameType::Error);
  const auto code = code_of(reply->second);
  EXPECT_TRUE(code == service::ErrorCode::BadFrame ||
              code == service::ErrorCode::BadRequest);
  // Same connection, next request: still frame-aligned.
  conn.send_bytes(frame_header(
      service::kFrameMagic,
      static_cast<std::uint16_t>(service::FrameType::Ping), 0));
  const auto pong = conn.read_frame();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->first.type, service::FrameType::Reply);
}

TEST(Service, OverloadedRequestsAreRejectedAndTheConnectionSurvives) {
  TestServer ts;
  service::ServerOptions opts;
  opts.max_in_flight_bytes = 64;  // any real compress payload exceeds this
  ts.start("overload", std::move(opts));
  service::Client client({ts.path});

  const std::vector<float> values = make_values(1024);
  service::CompressSpec spec;
  spec.mode = "psnr";
  spec.value = 70.0;
  spec.dims = {32, 32};
  try {
    client.compress(std::span<const float>(values), spec);
    FAIL() << "a 4KiB payload passed a 64-byte admission budget";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), service::ErrorCode::Overloaded);
  }
  // The rejected payload was skipped, not half-read: the same connection
  // still serves the next request.
  client.ping();
  EXPECT_NE(ts.server->stats().find("rejected_overloaded: 1"),
            std::string::npos);
}

TEST(Service, DeadlineExpiredWhileQueuedBehindASlowJob) {
  // threads=1 serializes the queue: a long job holds the lane while a
  // second request with a 1ms deadline waits. By the time the scheduler
  // pops the second job its deadline has passed, so its on_expired path
  // answers with the typed DeadlineExpired error instead of compressing.
  TestServer ts;
  service::ServerOptions opts;
  opts.threads = 1;
  ts.start("deadline", std::move(opts));

  const std::vector<float> big = make_values(4096 * 512);  // a slow compress
  std::thread slow([&] {
    service::Client client({ts.path});
    service::CompressSpec spec;
    spec.mode = "psnr";
    spec.value = 90.0;
    spec.dims = {4096, 512};
    client.compress(std::span<const float>(big), spec);
  });
  // Wait until the server has fully received the slow request (the counter
  // is bumped only after its payload is read), so it is guaranteed to sit
  // ahead of ours in the FIFO. A fixed sleep is not enough: under TSan the
  // 8 MiB upload itself can take longer than any reasonable constant.
  for (int i = 0; i < 2000; ++i) {
    if (ts.server->stats().find("requests_compress: 1") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  service::Client client({ts.path});
  const std::vector<float> small = make_values(1024);
  service::CompressSpec spec;
  spec.mode = "psnr";
  spec.value = 70.0;
  spec.dims = {32, 32};
  service::RequestOptions ropts;
  ropts.deadline_ms = 1;
  try {
    client.compress(std::span<const float>(small), spec, ropts);
    ADD_FAILURE() << "the queued job beat a 1ms deadline behind a "
                     "multi-hundred-ms compress";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), service::ErrorCode::DeadlineExpired);
  }
  slow.join();
}

TEST(Service, PriorityRequestsJumpTheQueue) {
  // Smoke only (ordering is timing-dependent at the service level; the
  // deterministic lane test lives in test_work_queue): a priority request
  // must complete correctly alongside normal traffic.
  TestServer ts;
  ts.start("priority");
  service::Client client({ts.path});
  const std::vector<float> values = make_values(1024);
  service::CompressSpec spec;
  spec.mode = "psnr";
  spec.value = 70.0;
  spec.dims = {32, 32};
  service::RequestOptions high;
  high.priority = true;
  const auto r = client.compress(std::span<const float>(values), spec, high);
  EXPECT_GT(r.compressed_bytes, 0u);
}

TEST(Service, GracefulDrainUnderConcurrentLoadAnswersEveryAdmittedRequest) {
  // The drain contract: after request_shutdown() mid-load, every client
  // sees, per request, either a complete correct response or a clean
  // close — never a partial frame, never a hang — and run() returns 0.
  TestServer ts;
  ts.start("drain");

  const std::vector<std::size_t> dims = {64, 64};
  const std::vector<float> values = make_values(64 * 64);
  std::vector<std::uint8_t> expected;
  {
    SessionOptions so;
    so.threads = 2;
    const Session session{std::move(so)};
    expected = session
                   .compress(Source::memory(std::span<const float>(values),
                                            dims),
                             FixedPsnr{70.0}, Sink::memory())
                   .archive;
  }

  std::atomic<int> completed{0}, clean_closes{0}, corrupt{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&] {
      try {
        service::Client client({ts.path});
        for (int i = 0; i < 4; ++i) {
          service::CompressSpec spec;
          spec.mode = "psnr";
          spec.value = 70.0;
          spec.dims = dims;
          const auto r =
              client.compress(std::span<const float>(values), spec);
          if (r.archive == expected)
            completed.fetch_add(1);
          else
            corrupt.fetch_add(1);
        }
      } catch (const service::ServiceError&) {
        // Clean close (or connect refused after the drain began): the
        // request was never admitted, which the contract allows.
        clean_closes.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ts.server->request_shutdown();
  for (auto& t : clients) t.join();
  ts.stop();

  EXPECT_EQ(ts.exit_code, 0);
  EXPECT_EQ(corrupt.load(), 0) << "a drained response was corrupt";
  EXPECT_GT(completed.load(), 0) << "the server answered nothing before drain";
}

TEST(Service, ShutdownFrameDrainsTheServer) {
  TestServer ts;
  ts.start("shutfr");
  {
    service::Client client({ts.path});
    client.shutdown_server();
  }
  ts.runner.join();
  EXPECT_EQ(ts.exit_code, 0);
}

TEST(Service, StaleSocketFileIsReclaimed) {
  // A socket file left by a crashed daemon (bound, never unlinked, no
  // listener behind it) must not brick the path: the new server probes it,
  // reclaims it, and serves.
  const std::string path = unique_socket_path("stale");
  ::unlink(path.c_str());
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ::close(fd);  // the file stays behind with nothing listening
  }
  TestServer ts;
  service::ServerOptions opts;
  opts.endpoint.socket_path = path;
  ts.path = path;
  ts.server.emplace(std::move(opts));
  ts.runner = std::thread([&] { ts.exit_code = ts.server->run(); });
  service::Client client({path});
  client.ping();
}

#endif  // !defined(_WIN32)
