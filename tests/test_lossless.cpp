// Unit and property tests for the lossless substrates: LZ77, DEFLATE-like
// coder, RLE, and the self-describing backend.
#include "io/bitstream.h"
#include "lossless/backend.h"
#include "lossless/deflate.h"
#include "lossless/lz77.h"
#include "lossless/rle.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <string>

namespace lossless = fpsnr::lossless;
namespace io = fpsnr::io;

namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

std::vector<std::uint8_t> repetitive_bytes(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> v;
  const std::string words[] = {"compression", "scientific", "data", "lossy",
                               "PSNR", " fixed ", "0000000000"};
  while (v.size() < n) {
    const auto& w = words[rng() % std::size(words)];
    v.insert(v.end(), w.begin(), w.end());
  }
  v.resize(n);
  return v;
}

}  // namespace

// ---- LZ77 ----------------------------------------------------------------

TEST(Lz77, LiteralOnlyInput) {
  const auto input = bytes_of("abcdefg");
  const auto tokens = lossless::tokenize(input);
  EXPECT_EQ(tokens.size(), input.size());
  for (const auto& t : tokens) EXPECT_EQ(t.kind, lossless::Token::Kind::Literal);
  EXPECT_EQ(lossless::detokenize(tokens), input);
}

TEST(Lz77, FindsRepeats) {
  const auto input = bytes_of("abcabcabcabcabcabc");
  const auto tokens = lossless::tokenize(input);
  bool has_match = false;
  for (const auto& t : tokens)
    if (t.kind == lossless::Token::Kind::Match) has_match = true;
  EXPECT_TRUE(has_match);
  EXPECT_LT(tokens.size(), input.size());
  EXPECT_EQ(lossless::detokenize(tokens), input);
}

TEST(Lz77, OverlappingMatchRunLengthStyle) {
  // "aaaa..." compresses to a literal + one overlapping match (dist 1).
  const std::vector<std::uint8_t> input(300, 'a');
  const auto tokens = lossless::tokenize(input);
  EXPECT_LE(tokens.size(), 4u);
  EXPECT_EQ(lossless::detokenize(tokens), input);
}

TEST(Lz77, EmptyInput) {
  const auto tokens = lossless::tokenize({});
  EXPECT_TRUE(tokens.empty());
  EXPECT_TRUE(lossless::detokenize(tokens).empty());
}

TEST(Lz77, MatchLengthBounds) {
  const std::vector<std::uint8_t> input(5000, 'x');
  for (const auto& t : lossless::tokenize(input)) {
    if (t.kind == lossless::Token::Kind::Match) {
      EXPECT_GE(t.length, lossless::kMinMatch);
      EXPECT_LE(t.length, lossless::kMaxMatch);
      EXPECT_GE(t.distance, 1u);
    }
  }
}

TEST(Lz77, BadDistanceThrows) {
  std::vector<lossless::Token> tokens = {
      lossless::Token::make_literal('a'),
      lossless::Token::make_match(5, 10),  // distance 10 > output size 1
  };
  EXPECT_THROW(lossless::detokenize(tokens), io::StreamError);
}

TEST(Lz77, BadLengthThrows) {
  std::vector<lossless::Token> tokens = {
      lossless::Token::make_literal('a'),
      lossless::Token::make_match(2, 1),  // below kMinMatch
  };
  EXPECT_THROW(lossless::detokenize(tokens), io::StreamError);
}

TEST(Lz77, LazyMatchingNotWorseThanGreedy) {
  const auto input = repetitive_bytes(20000, 5);
  lossless::MatcherConfig lazy;
  lazy.lazy_matching = true;
  lossless::MatcherConfig greedy;
  greedy.lazy_matching = false;
  const auto t_lazy = lossless::tokenize(input, lazy);
  const auto t_greedy = lossless::tokenize(input, greedy);
  EXPECT_EQ(lossless::detokenize(t_lazy), input);
  EXPECT_EQ(lossless::detokenize(t_greedy), input);
  EXPECT_LE(t_lazy.size(), t_greedy.size() + t_greedy.size() / 10);
}

// ---- DEFLATE symbol tables -------------------------------------------------

TEST(Deflate, LengthSymbolMappingInvertible) {
  for (unsigned len = lossless::kMinMatch; len <= lossless::kMaxMatch; ++len) {
    const auto s = lossless::length_to_symbol(len);
    EXPECT_GE(s.symbol, 257u);
    EXPECT_LE(s.symbol, 285u);
    const auto info = lossless::length_symbol_info(s.symbol);
    EXPECT_EQ(info.base + s.extra_value, len);
    EXPECT_LT(s.extra_value, 1u << info.extra_bits | 1u);
  }
}

TEST(Deflate, Length258HasDedicatedSymbol) {
  const auto s = lossless::length_to_symbol(258);
  EXPECT_EQ(s.symbol, 285u);
  EXPECT_EQ(s.extra_bits, 0u);
}

TEST(Deflate, DistanceSymbolMappingInvertible) {
  for (unsigned d = 1; d <= lossless::kWindowSize; d = d * 2 + 1) {
    const auto s = lossless::distance_to_symbol(d);
    EXPECT_LT(s.symbol, lossless::kDistAlphabet);
    const auto info = lossless::distance_symbol_info(s.symbol);
    EXPECT_EQ(info.base + s.extra_value, d);
  }
}

TEST(Deflate, OutOfRangeMappingThrows) {
  EXPECT_THROW(lossless::length_to_symbol(2), std::invalid_argument);
  EXPECT_THROW(lossless::length_to_symbol(259), std::invalid_argument);
  EXPECT_THROW(lossless::distance_to_symbol(0), std::invalid_argument);
  EXPECT_THROW(lossless::distance_to_symbol(40000), std::invalid_argument);
  EXPECT_THROW(lossless::length_symbol_info(100), std::invalid_argument);
  EXPECT_THROW(lossless::distance_symbol_info(30), std::invalid_argument);
}

// ---- DEFLATE round trips ---------------------------------------------------

TEST(Deflate, EmptyInput) {
  const auto c = lossless::deflate_compress({});
  EXPECT_TRUE(lossless::deflate_decompress(c).empty());
}

TEST(Deflate, ShortStrings) {
  for (const char* s : {"a", "ab", "abc", "hello world", "aaaa"}) {
    const auto input = bytes_of(s);
    EXPECT_EQ(lossless::deflate_decompress(lossless::deflate_compress(input)),
              input) << s;
  }
}

TEST(Deflate, RepetitiveTextCompressesWell) {
  const auto input = repetitive_bytes(100000, 1);
  const auto c = lossless::deflate_compress(input);
  EXPECT_LT(c.size(), input.size() / 3);
  EXPECT_EQ(lossless::deflate_decompress(c), input);
}

TEST(Deflate, RandomBytesRoundTripEvenIfIncompressible) {
  const auto input = random_bytes(50000, 2);
  const auto c = lossless::deflate_compress(input);
  EXPECT_EQ(lossless::deflate_decompress(c), input);
}

TEST(Deflate, TruncatedStreamThrows) {
  const auto input = repetitive_bytes(1000, 3);
  auto c = lossless::deflate_compress(input);
  c.resize(c.size() / 2);
  EXPECT_THROW(lossless::deflate_decompress(c), io::StreamError);
}

TEST(Deflate, SizeMismatchDetected) {
  const auto input = bytes_of("some sample data here");
  auto c = lossless::deflate_compress(input);
  // Corrupt the declared size varint (first byte, small value).
  c[0] = static_cast<std::uint8_t>(c[0] ^ 0x01);
  EXPECT_THROW(lossless::deflate_decompress(c), io::StreamError);
}

class DeflatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DeflatePropertyTest, RandomStructuredRoundTrip) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  // Mix of runs, repeated blocks, and noise.
  std::vector<std::uint8_t> input;
  const std::size_t target = 1000 + rng() % 30000;
  while (input.size() < target) {
    switch (rng() % 3) {
      case 0:
        input.insert(input.end(), 10 + rng() % 100,
                     static_cast<std::uint8_t>(rng()));
        break;
      case 1: {
        const std::size_t start = input.empty() ? 0 : rng() % input.size();
        const std::size_t len = std::min<std::size_t>(
            input.size() - start, 5 + rng() % 200);
        // self-copy (creates cross-references)
        for (std::size_t i = 0; i < len; ++i) input.push_back(input[start + i]);
        break;
      }
      default:
        for (int i = 0; i < 50; ++i)
          input.push_back(static_cast<std::uint8_t>(rng()));
    }
  }
  EXPECT_EQ(lossless::deflate_decompress(lossless::deflate_compress(input)), input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeflatePropertyTest, ::testing::Range(0, 10));

// ---- RLE -------------------------------------------------------------------

TEST(Rle, RoundTripBasic) {
  for (const char* s : {"", "a", "aaaaaaa", "abababab", "aaabbbcccd"}) {
    const auto input = bytes_of(s);
    EXPECT_EQ(lossless::rle_decompress(lossless::rle_compress(input)), input) << s;
  }
}

TEST(Rle, LongRunsCompress) {
  const std::vector<std::uint8_t> input(100000, 0);
  const auto c = lossless::rle_compress(input);
  EXPECT_LT(c.size(), 2000u);
  EXPECT_EQ(lossless::rle_decompress(c), input);
}

TEST(Rle, RandomRoundTrip) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto input = random_bytes(10000 + seed * 997, seed);
    EXPECT_EQ(lossless::rle_decompress(lossless::rle_compress(input)), input);
  }
}

TEST(Rle, LiteralRunBoundary129Plus) {
  // Exercise max literal run splitting (128) and long repeats (129 cap).
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 400; ++i) input.push_back(static_cast<std::uint8_t>(i));
  input.insert(input.end(), 400, 7);
  EXPECT_EQ(lossless::rle_decompress(lossless::rle_compress(input)), input);
}

TEST(Rle, TruncatedStreamThrows) {
  std::vector<std::uint8_t> bad = {0x05};  // literal run of 6, no payload
  EXPECT_THROW(lossless::rle_decompress(bad), io::StreamError);
  bad = {0x80 + 10};  // repeat run, missing payload byte
  EXPECT_THROW(lossless::rle_decompress(bad), io::StreamError);
}

// ---- backend ---------------------------------------------------------------

TEST(Backend, AllMethodsRoundTrip) {
  const auto input = repetitive_bytes(5000, 9);
  for (auto m : {lossless::Method::Store, lossless::Method::Rle,
                 lossless::Method::Deflate, lossless::Method::Auto}) {
    const auto c = lossless::backend_compress(input, m);
    EXPECT_EQ(lossless::backend_decompress(c), input)
        << lossless::method_name(m);
  }
}

TEST(Backend, SelfDescribingTag) {
  const auto input = bytes_of("data");
  const auto c = lossless::backend_compress(input, lossless::Method::Rle);
  EXPECT_EQ(lossless::backend_method(c), lossless::Method::Rle);
}

TEST(Backend, AutoPicksSmallest) {
  // Incompressible data: auto must fall back to Store (size + 1 tag byte).
  const auto noise = random_bytes(4096, 10);
  const auto c = lossless::backend_compress(noise, lossless::Method::Auto);
  EXPECT_EQ(lossless::backend_method(c), lossless::Method::Store);
  EXPECT_EQ(c.size(), noise.size() + 1);

  // Highly repetitive data: auto must do (much) better than store.
  const std::vector<std::uint8_t> runs(100000, 42);
  const auto c2 = lossless::backend_compress(runs, lossless::Method::Auto);
  EXPECT_LT(c2.size(), runs.size() / 10);
  EXPECT_EQ(lossless::backend_decompress(c2), runs);
}

TEST(Backend, EmptyAndUnknownTagThrow) {
  EXPECT_THROW(lossless::backend_decompress({}), io::StreamError);
  const std::vector<std::uint8_t> bad = {99, 1, 2, 3};
  EXPECT_THROW(lossless::backend_decompress(bad), io::StreamError);
}

TEST(Backend, MethodNames) {
  EXPECT_EQ(lossless::method_name(lossless::Method::Store), "store");
  EXPECT_EQ(lossless::method_name(lossless::Method::Deflate), "deflate");
}
