// Unit tests for metrics::RunningStats and helpers.
#include "metrics/stats.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace metrics = fpsnr::metrics;

TEST(RunningStats, Empty) {
  metrics::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stdev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  metrics::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance_population(), 4.0, 1e-12);
  EXPECT_NEAR(s.stdev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  metrics::RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.stdev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  std::mt19937_64 rng(11);
  std::normal_distribution<double> dist(5.0, 2.0);
  metrics::RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.stdev(), whole.stdev(), 1e-10);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  metrics::RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(RunningStats, NumericallyStableLargeOffset) {
  // Classic catastrophic-cancellation case: large mean, small variance.
  metrics::RunningStats s;
  const double base = 1e9;
  for (double x : {base + 4.0, base + 7.0, base + 13.0, base + 16.0}) s.add(x);
  EXPECT_NEAR(s.mean(), base + 10.0, 1e-3);
  EXPECT_NEAR(s.stdev(), std::sqrt(30.0), 1e-6);
}

TEST(Stats, Summarize) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const auto s = metrics::summarize(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Stats, Percentile) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(metrics::percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(metrics::percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(metrics::percentile(v, 100.0), 5.0);
  EXPECT_THROW(metrics::percentile(v, 101.0), std::invalid_argument);
  EXPECT_THROW(metrics::percentile({}, 50.0), std::invalid_argument);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(metrics::pearson_correlation(x, y), 1.0, 1e-12);
  for (double& v : y) v = -v;
  EXPECT_NEAR(metrics::pearson_correlation(x, y), -1.0, 1e-12);
  const std::vector<double> c = {5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(metrics::pearson_correlation(x, c), 0.0);
}
