// Tests for the named-blob archive container.
#include "io/archive.h"

#include <gtest/gtest.h>

#include "core/compressor.h"
#include "data/dataset.h"
#include "metrics/metrics.h"

namespace io = fpsnr::io;
namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;

TEST(Archive, EmptyArchive) {
  const auto bytes = io::write_archive({});
  EXPECT_TRUE(io::read_archive(bytes).empty());
  EXPECT_TRUE(io::list_archive(bytes).empty());
}

TEST(Archive, RoundTripEntries) {
  const std::vector<io::ArchiveEntry> entries = {
      {"alpha", {1, 2, 3}},
      {"beta", {}},
      {"gamma/with/slash", std::vector<std::uint8_t>(1000, 42)},
  };
  const auto bytes = io::write_archive(entries);
  const auto back = io::read_archive(bytes);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back[i].name, entries[i].name);
    EXPECT_EQ(back[i].bytes, entries[i].bytes);
  }
  EXPECT_EQ(io::list_archive(bytes),
            (std::vector<std::string>{"alpha", "beta", "gamma/with/slash"}));
}

TEST(Archive, SingleEntryLookup) {
  const std::vector<io::ArchiveEntry> entries = {
      {"x", {9}}, {"y", {8, 8}}, {"x", {7, 7, 7}}};  // duplicate name
  const auto bytes = io::write_archive(entries);
  EXPECT_EQ(io::archive_entry(bytes, "y"), (std::vector<std::uint8_t>{8, 8}));
  // Last duplicate wins.
  EXPECT_EQ(io::archive_entry(bytes, "x"), (std::vector<std::uint8_t>{7, 7, 7}));
  EXPECT_THROW(io::archive_entry(bytes, "nope"), std::out_of_range);
}

TEST(Archive, CorruptionRejected) {
  const std::vector<io::ArchiveEntry> entries = {{"a", {1, 2, 3, 4}}};
  auto bytes = io::write_archive(entries);
  auto bad = bytes;
  bad[0] = 'Z';
  EXPECT_THROW(io::read_archive(bad), io::StreamError);
  bad = bytes;
  bad.resize(bad.size() - 2);
  EXPECT_THROW(io::read_archive(bad), io::StreamError);
  bad = bytes;
  bad.push_back(0);  // trailing junk
  EXPECT_THROW(io::read_archive(bad), io::StreamError);
}

TEST(Archive, OversizedNameRejected) {
  io::ArchiveEntry e;
  e.name = std::string(5000, 'n');
  EXPECT_THROW(io::write_archive({{e}}), std::invalid_argument);
}

TEST(Archive, WholeDatasetRoundTrip) {
  // The intended use: one archive per snapshot, one compressed stream per
  // field, self-describing end to end.
  const auto ds = data::make_hurricane({0.4, 99});
  std::vector<io::ArchiveEntry> entries;
  for (const auto& f : ds.fields) {
    io::ArchiveEntry e;
    e.name = f.name;
    e.bytes = core::compress<float>(f.span(), f.dims,
                                    core::ControlRequest::fixed_psnr(70.0))
                  .stream;
    entries.push_back(std::move(e));
  }
  const auto archive = io::write_archive(entries);

  const auto names = io::list_archive(archive);
  ASSERT_EQ(names.size(), ds.field_count());
  for (const auto& f : ds.fields) {
    const auto stream = io::archive_entry(archive, f.name);
    const auto out = core::decompress<float>(stream);
    EXPECT_EQ(out.dims, f.dims);
    const auto rep = metrics::compare<float>(f.span(), out.values);
    EXPECT_GT(rep.psnr_db, 65.0) << f.name;
  }
}

// --- block-indexed container (FPBK) -----------------------------------------

TEST(BlockContainer, HeaderRoundTrip) {
  io::BlockContainerHeader h;
  h.codec = 2;
  h.scalar = 1;
  h.extents = {10, 20, 30};
  h.tile = {4, 20, 30};
  h.block_count = 3;  // ceil(10/4)
  h.eb_abs = 1.5e-3;
  h.value_range = 42.0;
  h.control_mode = 3;
  h.control_value = 80.0;

  io::BlockContainerWriter writer(h);
  writer.add_block(1, {4, 5}, 0.0);
  writer.add_block(0, {1, 2, 3}, 0.0);
  writer.add_block(2, {}, 0.0);  // empty blocks are legal
  const auto stream = writer.finish();
  ASSERT_TRUE(io::is_block_container(stream));

  const auto header = io::block_container_header(stream);
  EXPECT_EQ(header.codec, 2);
  EXPECT_EQ(header.scalar, 1);
  EXPECT_EQ(header.extents, (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_EQ(header.tile, (std::vector<std::uint64_t>{4, 20, 30}));
  EXPECT_EQ(header.block_count, 3u);
  EXPECT_DOUBLE_EQ(header.eb_abs, 1.5e-3);
  EXPECT_DOUBLE_EQ(header.value_range, 42.0);
  EXPECT_EQ(header.control_mode, 3);
  EXPECT_DOUBLE_EQ(header.control_value, 80.0);

  const auto view = io::open_block_container(stream);
  ASSERT_EQ(view.blocks.size(), 3u);
  EXPECT_EQ(view.blocks[0].size(), 3u);
  EXPECT_EQ(view.blocks[1].size(), 2u);
  EXPECT_EQ(view.blocks[2].size(), 0u);
  const auto b0 = io::block_container_entry(stream, 0);
  EXPECT_EQ(std::vector<std::uint8_t>(b0.begin(), b0.end()),
            (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(BlockContainer, MalformedStreamsRejected) {
  io::BlockContainerHeader h;
  h.extents = {8};
  h.tile = {4};
  h.block_count = 2;
  io::BlockContainerWriter writer(h);
  writer.add_block(0, {1, 2, 3}, 0.0);
  writer.add_block(1, {4}, 0.0);
  const auto stream = writer.finish();

  auto bad = stream;
  bad[0] = 'Z';
  EXPECT_THROW(io::open_block_container(bad), io::StreamError);
  bad = stream;
  bad.resize(bad.size() - 2);  // truncated payload
  EXPECT_THROW(io::open_block_container(bad), io::StreamError);
  bad.resize(10);  // truncated header
  EXPECT_THROW(io::open_block_container(bad), io::StreamError);
  EXPECT_THROW(io::block_container_entry(stream, 2), std::out_of_range);
}

TEST(BlockContainer, LayoutMustTileTheField) {
  // block_count inconsistent with the tile grid must be rejected at
  // construction time (the writer validates through the same header path as
  // the reader on finish()).
  io::BlockContainerHeader h;
  h.extents = {8};
  h.tile = {4};
  h.block_count = 3;  // should be 2
  io::BlockContainerWriter writer(h);
  writer.add_block(0, {1}, 0.0);
  writer.add_block(1, {2}, 0.0);
  writer.add_block(2, {3}, 0.0);
  const auto stream = writer.finish();
  EXPECT_THROW(io::open_block_container(stream), io::StreamError);
}
