// Tests for the global MPMC work queue (parallel/work_queue.h).
#include "parallel/work_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/shared_pool.h"

namespace parallel = fpsnr::parallel;

TEST(WorkQueue, RunsEveryTask) {
  parallel::WorkQueue queue;
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i)
    queue.push([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(queue.pending(), 1000u);
  queue.drain(8);
  EXPECT_EQ(ran.load(), 1000);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(WorkQueue, InlineDrainStaysOnCaller) {
  parallel::WorkQueue queue;
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  for (int i = 0; i < 64; ++i)
    queue.push([&] {
      if (std::this_thread::get_id() != caller) ++off_thread;
    });
  queue.drain(1);  // <= 1 worker: everything runs inline
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(WorkQueue, TasksMayPushFollowUpTasks) {
  parallel::WorkQueue queue;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i)
    queue.push([&queue, &ran] {
      ran.fetch_add(1);
      // Two generations of follow-up work, pushed mid-drain.
      queue.push([&queue, &ran] {
        ran.fetch_add(1);
        queue.push([&ran] { ran.fetch_add(1); });
      });
    });
  queue.drain(4);
  EXPECT_EQ(ran.load(), 30);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(WorkQueue, ExceptionRethrownAfterAllTasksRan) {
  parallel::WorkQueue queue;
  std::atomic<int> ran{0};
  queue.push([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 100; ++i)
    queue.push([&] { ran.fetch_add(1); });
  EXPECT_THROW(queue.drain(4), std::runtime_error);
  // The failing task never cancels the rest: producers with per-task
  // cleanup must see every task either executed or still queued.
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(WorkQueue, ReusableAcrossDrains) {
  parallel::WorkQueue queue;
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i)
      queue.push([&] { ran.fetch_add(1); });
    queue.drain(4);
    EXPECT_EQ(ran.load(), 50 * (round + 1));
  }
}

TEST(WorkQueue, ConcurrentProducers) {
  parallel::WorkQueue queue;
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < 250; ++i)
        queue.push([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  for (auto& t : producers) t.join();
  queue.drain(8);
  EXPECT_EQ(ran.load(), 1000);
}

TEST(WorkQueue, NestedDrainInsidePoolWorkerDoesNotDeadlock) {
  // A drain issued from inside a shared-pool worker must complete even
  // when every pool worker is busy: the caller always participates.
  parallel::WorkQueue outer;
  std::atomic<int> ran{0};
  const std::size_t lanes = parallel::shared_pool().thread_count() + 2;
  for (std::size_t i = 0; i < lanes; ++i)
    outer.push([&ran] {
      parallel::WorkQueue inner;
      for (int j = 0; j < 20; ++j)
        inner.push([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      inner.drain(4);
    });
  outer.drain(lanes);
  EXPECT_EQ(ran.load(), static_cast<int>(lanes) * 20);
}

TEST(WorkQueue, StaleHelpersCannotJoinALaterInlineDrain) {
  // drain(8)'s best-effort helpers may still sit in the shared pool's
  // queue after the drain returns. Pin the pool with blockers so that is
  // guaranteed, then release the blockers DURING a later drain(1): the
  // stale helpers wake mid-drain and must bow out (epoch check) instead
  // of running tasks — drain(1) promises strictly-inline execution.
  std::atomic<bool> release{false};
  std::vector<std::future<void>> blockers;
  const std::size_t pool_size = parallel::shared_pool().thread_count();
  for (std::size_t i = 0; i < pool_size; ++i)
    blockers.push_back(parallel::shared_pool().submit([&release] {
      while (!release.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }));

  parallel::WorkQueue queue;
  queue.push([] {});
  queue.drain(8);  // helpers enqueue behind the blockers and go stale

  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  for (int i = 0; i < 500; ++i)
    queue.push([&off_thread, caller] {
      if (std::this_thread::get_id() != caller)
        off_thread.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    });
  release.store(true);  // stale helpers wake while drain(1) is running
  queue.drain(1);
  for (auto& b : blockers) b.get();
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(WorkQueue, EmptyDrainReturnsImmediately) {
  parallel::WorkQueue queue;
  queue.drain(8);
  queue.drain(0);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(WorkQueue, OverlappingDrainFromInsideATaskThrows) {
  // drain() documents "one drain at a time" — and now enforces it in every
  // build. Re-draining the SAME queue from inside one of its own running
  // tasks must be a loud std::logic_error, not a deadlock or a silent
  // double-execution. (Draining a DIFFERENT queue from inside a task stays
  // legal — NestedDrainInsidePoolWorkerDoesNotDeadlock above covers it.)
  parallel::WorkQueue queue;
  std::atomic<bool> threw{false};
  queue.push([&] {
    try {
      queue.drain(1);
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  queue.drain(1);
  EXPECT_TRUE(threw.load());
  // The queue stays usable after the rejected re-entry.
  std::atomic<int> ran{0};
  queue.push([&] { ran.fetch_add(1); });
  queue.drain(1);
  EXPECT_EQ(ran.load(), 1);
}

TEST(WorkQueue, OverlappingDrainFromAnotherThreadThrows) {
  parallel::WorkQueue queue;
  std::atomic<bool> in_task{false}, release{false};
  queue.push([&] {
    in_task.store(true);
    while (!release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  std::thread drainer([&] { queue.drain(1); });
  while (!in_task.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_THROW(queue.drain(1), std::logic_error);
  release.store(true);
  drainer.join();
  // The guard resets once the first drain finishes.
  queue.push([] {});
  queue.drain(1);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(WorkQueue, PriorityLaneRunsBeforeQueuedFifoTasks) {
  parallel::WorkQueue queue;
  std::vector<int> order;  // drain(1) is strictly inline: no races
  parallel::WorkQueue::TaskOptions high;
  high.priority = true;
  queue.push([&] { order.push_back(1); });
  queue.push([&] { order.push_back(2); });
  queue.push([&] { order.push_back(-1); }, high);
  queue.push([&] { order.push_back(-2); }, high);
  EXPECT_EQ(queue.pending(), 4u);  // pending() spans both lanes
  queue.drain(1);
  EXPECT_EQ(order, (std::vector<int>{-1, -2, 1, 2}));
}

TEST(WorkQueue, ExpiredDeadlineRunsOnExpiredInsteadOfTask) {
  parallel::WorkQueue queue;
  std::atomic<bool> task_ran{false}, expired_ran{false};
  parallel::WorkQueue::TaskOptions expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);  // already past at pop
  expired.on_expired = [&] { expired_ran.store(true); };
  queue.push([&] { task_ran.store(true); }, expired);
  queue.drain(1);
  EXPECT_FALSE(task_ran.load());
  EXPECT_TRUE(expired_ran.load());
}

TEST(WorkQueue, FutureDeadlineRunsTheTaskNormally) {
  parallel::WorkQueue queue;
  std::atomic<bool> task_ran{false}, expired_ran{false};
  parallel::WorkQueue::TaskOptions opts;
  opts.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  opts.on_expired = [&] { expired_ran.store(true); };
  queue.push([&] { task_ran.store(true); }, opts);
  queue.drain(1);
  EXPECT_TRUE(task_ran.load());
  EXPECT_FALSE(expired_ran.load());
}

// --- locality-aware placement ------------------------------------------------

TEST(WorkQueue, LocalityDisabledOnSingleWorkerDrainKeepsFifoOrder) {
  // drain(1) never enables locality placement: tagged or not, tasks run in
  // push order (this is what keeps byte-determinism trivially provable for
  // serial runs).
  parallel::WorkQueue queue;
  std::vector<int> order;
  parallel::WorkQueue::TaskOptions tag_a, tag_b;
  tag_a.locality = 7;
  tag_b.locality = 9;
  queue.push([&] { order.push_back(1); }, tag_a);
  queue.push([&] { order.push_back(2); }, tag_b);
  queue.push([&] { order.push_back(3); }, tag_a);
  queue.push([&] { order.push_back(4); });
  queue.drain(1);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(WorkQueue, LocalityNeverDropsOrDuplicatesTasks) {
  // Placement is a pop-order hint, nothing more: every tagged task runs
  // exactly once regardless of key distribution or worker count.
  parallel::WorkQueue queue;
  std::atomic<int> ran{0};
  for (int i = 0; i < 500; ++i) {
    parallel::WorkQueue::TaskOptions opts;
    opts.locality = static_cast<std::uint64_t>(1 + i % 7);
    queue.push([&] { ran.fetch_add(1, std::memory_order_relaxed); }, opts);
  }
  queue.drain(8);
  EXPECT_EQ(ran.load(), 500);
  EXPECT_EQ(queue.pending(), 0u);

  // The per-drain executor map is cleared between drains, so a second
  // drain with fresh keys behaves identically.
  for (int i = 0; i < 100; ++i) {
    parallel::WorkQueue::TaskOptions opts;
    opts.locality = static_cast<std::uint64_t>(1 + i % 3);
    queue.push([&] { ran.fetch_add(1, std::memory_order_relaxed); }, opts);
  }
  queue.drain(4);
  EXPECT_EQ(ran.load(), 600);
}

TEST(WorkQueue, PriorityLaneStaysStrictlyFifoUnderLocalityTags) {
  // Locality placement applies to the FIFO lane only; priority tasks keep
  // their strict submission order even when tagged.
  parallel::WorkQueue queue;
  std::vector<int> order;
  parallel::WorkQueue::TaskOptions high_a, high_b;
  high_a.priority = true;
  high_a.locality = 42;
  high_b.priority = true;
  high_b.locality = 43;
  queue.push([&] { order.push_back(1); });
  queue.push([&] { order.push_back(-1); }, high_a);
  queue.push([&] { order.push_back(-2); }, high_b);
  queue.push([&] { order.push_back(-3); }, high_a);
  queue.drain(1);
  EXPECT_EQ(order, (std::vector<int>{-1, -2, -3, 1}));
}
