// Adaptive per-block budget allocation: the size win, the preserved
// fixed-PSNR guarantee, the exact-PSNR reporting chain, and the store
// auto-fallback for incompressible blocks.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/pipeline.h"
#include "data/synth.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;

namespace {

core::CompressOptions opts_with(core::Engine engine, core::BudgetMode budget,
                                std::size_t slab_rows) {
  core::CompressOptions opts;
  opts.engine = engine;
  opts.budget = budget;
  opts.parallel.block_pipeline = true;
  opts.parallel.tile = {slab_rows};
  return opts;
}

/// Smooth synthetic field with heterogeneous information content: most of
/// the domain is flat (a masked/ocean region, the donor blocks) and the
/// rest carries correlated texture (the receiver blocks). This is the
/// CESM-like shape the adaptive planner is built for.
std::vector<float> donor_receiver_field(const data::Dims& dims,
                                        std::size_t flat_rows) {
  const std::size_t row = dims.count() / dims[0];
  std::vector<float> v(dims.count(), 1.5f);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<float> u(-1.0f, 1.0f);
  float prev = 0.0f;
  for (std::size_t r = flat_rows; r < dims[0]; ++r)
    for (std::size_t c = 0; c < row; ++c) {
      prev = 0.9f * prev + 0.4f * u(rng);
      v[r * row + c] = 2.0f * prev;
    }
  return v;
}

}  // namespace

TEST(AdaptiveBudget, NeverLargerThanUniformAndStrictlySmallerWithDonors) {
  // The acceptance contract: adaptive <= uniform at the same target, and
  // strictly smaller when the field has budget to reclaim.
  const data::Dims dims{128, 128};
  const auto values = donor_receiver_field(dims, 96);
  const std::span<const float> span(values);
  const auto request = core::ControlRequest::fixed_psnr(60.0);

  const auto uni = core::compress_blocked<float>(
      span, dims, request, opts_with(core::Engine::SzLorenzo,
                                     core::BudgetMode::Uniform, 16));
  const auto ada = core::compress_blocked<float>(
      span, dims, request, opts_with(core::Engine::SzLorenzo,
                                     core::BudgetMode::Adaptive, 16));

  EXPECT_LT(ada.stream.size(), uni.stream.size())
      << "adaptive budgets must strictly beat uniform when donor blocks "
         "exist";

  // Both must still honour the fixed-PSNR target.
  const auto out_u = core::decompress_blocked<float>(uni.stream);
  const auto out_a = core::decompress_blocked<float>(ada.stream);
  const auto rep_u = metrics::compare<float>(values, out_u.values);
  const auto rep_a = metrics::compare<float>(values, out_a.values);
  EXPECT_GE(rep_u.psnr_db, 57.5);
  EXPECT_GE(rep_a.psnr_db, 57.5);

  // The adaptive container says so on the wire.
  const auto info = core::inspect_block_stream(ada.stream);
  EXPECT_EQ(info.budget_mode, core::BudgetMode::Adaptive);
  EXPECT_EQ(core::inspect_block_stream(uni.stream).budget_mode,
            core::BudgetMode::Uniform);
}

TEST(AdaptiveBudget, DegeneratesToUniformBytesOnHomogeneousField) {
  // A field with no donor blocks must produce a container byte-identical
  // to the uniform plan — adaptive mode never costs anything.
  const data::Dims dims{96, 64};
  auto values = data::white_noise(dims.count(), 5);
  data::rescale(values, -1.0f, 1.0f);
  const std::span<const float> span(values);
  const auto request = core::ControlRequest::fixed_psnr(80.0);

  const auto uni = core::compress_blocked<float>(
      span, dims, request, opts_with(core::Engine::SzLorenzo,
                                     core::BudgetMode::Uniform, 16));
  const auto ada = core::compress_blocked<float>(
      span, dims, request, opts_with(core::Engine::SzLorenzo,
                                     core::BudgetMode::Adaptive, 16));
  EXPECT_EQ(ada.stream, uni.stream);
}

TEST(AdaptiveBudget, PointwiseBoundModesAlwaysCompressUniform) {
  // Absolute / value-range-relative requests promise |err| <= bound for
  // every point; adaptive reallocation would widen receiver blocks past
  // it, so those modes must silently keep the uniform plan — bytes
  // identical, bound intact.
  const data::Dims dims{128, 64};
  const auto values = donor_receiver_field(dims, 80);
  const std::span<const float> span(values);

  for (const auto request : {core::ControlRequest::absolute(0.01),
                             core::ControlRequest::relative(1e-3)}) {
    const auto uni = core::compress_blocked<float>(
        span, dims, request, opts_with(core::Engine::SzLorenzo,
                                       core::BudgetMode::Uniform, 16));
    const auto ada = core::compress_blocked<float>(
        span, dims, request, opts_with(core::Engine::SzLorenzo,
                                       core::BudgetMode::Adaptive, 16));
    EXPECT_EQ(ada.stream, uni.stream)
        << "mode " << static_cast<int>(request.mode);
    const auto out = core::decompress_blocked<float>(ada.stream);
    const auto rep = metrics::compare<float>(values, out.values);
    const auto info = core::inspect_block_stream(ada.stream);
    EXPECT_EQ(info.budget_mode, core::BudgetMode::Uniform);
    EXPECT_LE(rep.max_abs_error, info.eb_abs * (1.0 + 1e-12))
        << "mode " << static_cast<int>(request.mode);
  }
}

TEST(AdaptiveBudget, PointwiseBoundStaysWithinWidenedAllowance) {
  // Receiver blocks may widen their bound to at most 4x the base; the
  // worst pointwise error must respect that for the predictor codecs.
  const data::Dims dims{128, 64};
  const auto values = donor_receiver_field(dims, 80);
  const std::span<const float> span(values);
  const auto request = core::ControlRequest::fixed_psnr(60.0);

  for (const core::Engine e : {core::Engine::SzLorenzo, core::Engine::Interp}) {
    const auto ada = core::compress_blocked<float>(
        span, dims, request, opts_with(e, core::BudgetMode::Adaptive, 16));
    const auto out = core::decompress_blocked<float>(ada.stream);
    const auto rep = metrics::compare<float>(values, out.values);
    const auto info = core::inspect_block_stream(ada.stream);
    EXPECT_LE(rep.max_abs_error, 4.0 * info.eb_abs * (1.0 + 1e-12))
        << "engine " << static_cast<int>(e);
  }
}

TEST(AdaptiveBudget, IsolatedSpikesInFlatBlocksNeverGrowTheArchive) {
  // A flat block with an isolated spike has a tiny RMS first difference
  // but a large peak one; the donor bound's spike floor must keep every
  // residual quantizable, so adaptive never expands such fields past the
  // uniform plan.
  const data::Dims dims{128, 64};
  std::vector<float> values(dims.count(), 0.25f);
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<float> mag(-5.0f, 5.0f);
  const std::size_t row = dims.count() / dims[0];
  for (std::size_t i = 0; i < dims.count(); i += 531) values[i] = mag(rng);
  for (std::size_t r = 96; r < dims[0]; ++r)  // one noisy receiver band
    for (std::size_t c = 0; c < row; ++c)
      values[r * row + c] = mag(rng) * 0.2f;
  const std::span<const float> span(values);

  for (const double target : {80.0, 120.0}) {
    const auto request = core::ControlRequest::fixed_psnr(target);
    const auto uni = core::compress_blocked<float>(
        span, dims, request, opts_with(core::Engine::SzLorenzo,
                                       core::BudgetMode::Uniform, 16));
    const auto ada = core::compress_blocked<float>(
        span, dims, request, opts_with(core::Engine::SzLorenzo,
                                       core::BudgetMode::Adaptive, 16));
    EXPECT_LE(ada.stream.size(), uni.stream.size()) << "target " << target;
    const auto out = core::decompress_blocked<float>(ada.stream);
    const auto rep = metrics::compare<float>(values, out.values);
    EXPECT_GE(rep.psnr_db, target - 2.0) << "target " << target;
  }
}

TEST(AdaptiveBudget, ReportedPsnrMatchesRecomputationExactly) {
  // The exact-PSNR chain: per-block achieved SSE recorded in the v2 index
  // must reproduce an independent PSNR recomputation to 1e-6 dB — through
  // the result object AND through a cold container re-open.
  const data::Dims dims{128, 128};
  const auto values = donor_receiver_field(dims, 96);
  const std::span<const float> span(values);
  const auto request = core::ControlRequest::fixed_psnr(60.0);

  for (const core::Engine e :
       {core::Engine::SzLorenzo, core::Engine::TransformHaar,
        core::Engine::TransformDct, core::Engine::Interp,
        core::Engine::ZfpRate}) {
    const auto ada = core::compress_blocked<float>(
        span, dims, request, opts_with(e, core::BudgetMode::Adaptive, 16));
    const auto out = core::decompress_blocked<float>(ada.stream);
    const auto rep = metrics::compare<float>(values, out.values);
    const auto info = core::inspect_block_stream(ada.stream);
    ASSERT_TRUE(std::isfinite(rep.psnr_db));
    EXPECT_NEAR(ada.achieved_psnr_db, rep.psnr_db, 1e-6)
        << "engine " << static_cast<int>(e);
    EXPECT_NEAR(info.achieved_psnr_db, rep.psnr_db, 1e-6)
        << "engine " << static_cast<int>(e);
    EXPECT_NEAR(info.achieved_sse, rep.mse * static_cast<double>(rep.count),
                rep.mse * rep.count * 1e-9)
        << "engine " << static_cast<int>(e);
  }
}

TEST(AdaptiveBudget, StoreFallbackBoundsIncompressibleOutput) {
  // Pure noise at an extreme 180 dB target is incompressible for every
  // lossy codec (each point becomes an exactly-stored outlier); the
  // per-block store fallback must cap the container at raw size plus the
  // fixed header/index overhead, and those blocks decode exactly.
  const data::Dims dims{64, 64};
  auto values = data::white_noise(dims.count(), 77);
  data::rescale(values, -1.0f, 1.0f);
  const std::span<const float> span(values);
  const auto request = core::ControlRequest::fixed_psnr(180.0);

  for (const core::Engine e : {core::Engine::SzLorenzo, core::Engine::Interp,
                               core::Engine::TransformDct}) {
    const auto r = core::compress_blocked<float>(
        span, dims, request, opts_with(e, core::BudgetMode::Uniform, 16));
    const std::size_t raw = values.size() * sizeof(float);
    const auto info = core::inspect_block_stream(r.stream);
    // Header + (offset,size,sse) index row + store header per block.
    const std::size_t slack = 128 + info.block_count * (24 + 16);
    EXPECT_LE(r.stream.size(), raw + slack) << "engine " << static_cast<int>(e);

    const auto out = core::decompress_blocked<float>(r.stream);
    EXPECT_EQ(out.values, values)
        << "store-fallback blocks must decode exactly";
    EXPECT_TRUE(std::isinf(info.achieved_psnr_db));
  }
}

TEST(AdaptiveBudget, RandomAccessDecodesAdaptiveBlocks) {
  // Single-block random access must work when blocks carry different
  // bounds and some are store-demoted.
  const data::Dims dims{128, 32};
  const auto values = donor_receiver_field(dims, 64);
  const std::span<const float> span(values);
  const auto ada = core::compress_blocked<float>(
      span, dims, core::ControlRequest::fixed_psnr(60.0),
      opts_with(core::Engine::SzLorenzo, core::BudgetMode::Adaptive, 16));
  const auto full = core::decompress_blocked<float>(ada.stream);
  const auto info = core::inspect_block_stream(ada.stream);
  const std::size_t row = dims.count() / dims[0];
  for (std::size_t b = 0; b < info.block_count; ++b) {
    const auto block = core::decompress_block<float>(ada.stream, b);
    for (std::size_t i = 0; i < block.values.size(); ++i)
      ASSERT_EQ(block.values[i],
                full.values[b * info.tile[0] * row + i])
          << "block " << b << " value " << i;
  }
}
