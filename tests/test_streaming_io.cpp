// Tests for the streaming FPBK I/O subsystem (io/streaming_archive.h) and
// its pipeline entry points: byte-identity with the in-memory path at every
// thread count, reorder-buffer spilling, mmap decode, and the I/O-locality
// guarantee of single-block random access.
#include "io/streaming_archive.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/pipeline.h"
#include "data/synth.h"
#include "io/bitstream.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace io = fpsnr::io;

namespace {

namespace fs = std::filesystem;

std::vector<float> sample_field(const data::Dims& dims, std::uint64_t seed) {
  auto v = data::smoothed_noise(dims, seed, 3, 2);
  data::rescale(v, -2.0f, 11.0f);
  return v;
}

core::CompressOptions pipeline_options(std::size_t threads,
                                       std::size_t slab_rows = 0) {
  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  opts.parallel.threads = threads;
  if (slab_rows) opts.parallel.tile = {slab_rows};
  return opts;
}

/// Unique temp path, removed when the fixture object dies.
struct TempFile {
  fs::path path;
  explicit TempFile(const std::string& stem)
      : path(fs::temp_directory_path() / ("fpsnr-test-" + stem + ".fpbk")) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::vector<std::uint8_t> slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

// --- byte-identity with the in-memory path ----------------------------------

TEST(StreamingIo, FileMatchesInMemoryBytesAtEveryThreadCount) {
  const data::Dims dims{61, 40};  // not divisible by the block size
  const auto values = sample_field(dims, 3);
  const auto request = core::ControlRequest::fixed_psnr(70.0);

  const auto mem =
      core::compress_blocked<float>(values, dims, request, pipeline_options(1, 8));
  for (std::size_t threads : {1u, 2u, 8u}) {
    TempFile tmp("stream-identity-" + std::to_string(threads));
    io::StreamingStats stats;
    const auto result = core::compress_to_file<float>(
        values, dims, request, pipeline_options(threads, 8), tmp.str(), &stats);
    EXPECT_TRUE(result.stream.empty());
    EXPECT_EQ(result.info.compressed_bytes, mem.stream.size());
    EXPECT_EQ(stats.total_bytes, mem.stream.size());
    ASSERT_EQ(slurp(tmp.path), mem.stream) << "threads=" << threads;
    // The reorder buffer must never hold anything close to the container:
    // streaming is pointless if everything is buffered before the spill.
    EXPECT_LT(stats.peak_buffered_bytes, mem.stream.size());
  }
}

TEST(StreamingIo, AccountingMatchesInMemoryPath) {
  const data::Dims dims{48, 32};
  const auto values = sample_field(dims, 5);
  const auto request = core::ControlRequest::relative(1e-4);

  const auto mem =
      core::compress_blocked<float>(values, dims, request, pipeline_options(2, 6));
  TempFile tmp("stream-accounting");
  const auto str = core::compress_to_file<float>(values, dims, request,
                                                 pipeline_options(2, 6),
                                                 tmp.str());
  EXPECT_DOUBLE_EQ(str.predicted_psnr_db, mem.predicted_psnr_db);
  EXPECT_DOUBLE_EQ(str.rel_bound_used, mem.rel_bound_used);
  EXPECT_DOUBLE_EQ(str.info.eb_abs_used, mem.info.eb_abs_used);
  EXPECT_EQ(str.info.value_count, mem.info.value_count);
  EXPECT_EQ(str.info.compressed_bytes, mem.info.compressed_bytes);
  EXPECT_DOUBLE_EQ(str.info.compression_ratio, mem.info.compression_ratio);
}

// --- writer semantics -------------------------------------------------------

TEST(StreamingIo, WriterSpillsOutOfOrderBlocksInIndexOrder) {
  io::BlockContainerHeader h;
  h.codec = 0;
  h.scalar = 0;
  h.extents = {9};
  h.tile = {3};
  h.block_count = 3;

  // Reference bytes from the in-memory writer.
  io::BlockContainerWriter mem(h);
  mem.add_block(0, {1, 2}, 0.0);
  mem.add_block(1, {3, 4, 5, 6}, 0.0);
  mem.add_block(2, {7, 8, 9}, 0.0);
  const auto expect = mem.finish();

  TempFile tmp("stream-reorder");
  io::StreamingArchiveWriter writer(tmp.str(), h);
  writer.add_block(2, {7, 8, 9}, 0.0);  // two blocks arrive before block 0
  writer.add_block(1, {3, 4, 5, 6}, 0.0);
  writer.add_block(0, {1, 2}, 0.0);     // prefix complete -> everything spills
  const auto total = writer.finish();

  EXPECT_EQ(total, expect.size());
  EXPECT_EQ(slurp(tmp.path), expect);
  // Blocks 1 and 2 (7 bytes) had to wait for block 0; block 0 never did.
  EXPECT_EQ(writer.stats().peak_buffered_blocks, 2u);
  EXPECT_EQ(writer.stats().peak_buffered_bytes, 7u);
}

TEST(StreamingIo, WriterRejectsMisuse) {
  io::BlockContainerHeader h;
  h.extents = {4};
  h.tile = {2};
  h.block_count = 2;

  TempFile tmp("stream-misuse");
  io::StreamingArchiveWriter writer(tmp.str(), h);
  writer.add_block(0, {1}, 0.0);
  EXPECT_THROW(writer.add_block(0, {2}, 0.0), std::logic_error);   // duplicate
  EXPECT_THROW(writer.add_block(5, {2}, 0.0), std::out_of_range);  // bad index
  EXPECT_THROW(writer.finish(), std::logic_error);            // block 1 missing
  writer.add_block(1, {2}, 0.0);
  writer.finish();
  EXPECT_THROW(writer.finish(), std::logic_error);            // finish twice
  EXPECT_THROW(writer.add_block(0, {9}, 0.0), std::logic_error);   // add after finish
}

TEST(StreamingIo, AbortedWriteLeavesPreExistingArchiveUntouched) {
  // All-or-nothing: the writer works in path + ".partial" and renames only
  // on finish(), so a failure partway neither destroys what was at `path`
  // nor leaves a truncated container behind.
  io::BlockContainerHeader h;
  h.extents = {4};
  h.tile = {2};
  h.block_count = 2;

  TempFile tmp("stream-abort");
  const std::vector<std::uint8_t> precious{0xCA, 0xFE};
  std::ofstream(tmp.path, std::ios::binary)
      .write(reinterpret_cast<const char*>(precious.data()), 2);
  {
    io::StreamingArchiveWriter writer(tmp.str(), h);
    writer.add_block(0, {1, 2, 3}, 0.0);
    // Destroyed unfinished, as if a codec threw mid-compress.
  }
  EXPECT_EQ(slurp(tmp.path), precious);
  EXPECT_FALSE(fs::exists(tmp.path.string() + ".partial"));

  // And a finished writer does replace the old bytes.
  {
    io::StreamingArchiveWriter writer(tmp.str(), h);
    writer.add_block(0, {1, 2, 3}, 0.0);
    writer.add_block(1, {4}, 0.0);
    writer.finish();
  }
  EXPECT_NE(slurp(tmp.path), precious);
  EXPECT_FALSE(fs::exists(tmp.path.string() + ".partial"));
  EXPECT_NO_THROW((void)io::open_block_container(slurp(tmp.path)));
}

TEST(StreamingIo, WriterRejectsUnwritablePath) {
  io::BlockContainerHeader h;
  h.extents = {2};
  h.tile = {2};
  h.block_count = 1;
  EXPECT_THROW(
      io::StreamingArchiveWriter("/nonexistent-dir/no/such/file.fpbk", h),
      io::StreamError);
}

// --- mmap reader ------------------------------------------------------------

TEST(StreamingIo, MmapReaderDecodesFullArchiveAndSingleBlocks) {
  const data::Dims dims{50, 30};
  const auto values = sample_field(dims, 13);
  const auto request = core::ControlRequest::fixed_psnr(65.0);

  TempFile tmp("mmap-decode");
  core::compress_to_file<float>(values, dims, request, pipeline_options(2, 8),
                                tmp.str());

  io::MmapArchiveReader reader(tmp.str());
  ASSERT_EQ(reader.header().tile, (std::vector<std::uint64_t>{8, 30}));
  EXPECT_EQ(reader.block_count(), (50 + 7) / 8u);

  const auto full = core::decompress_file<float>(tmp.str(), 2);
  EXPECT_EQ(full.dims, dims);
  const auto mem = core::compress_blocked<float>(values, dims, request,
                                                 pipeline_options(1, 8));
  const auto ref = core::decompress_blocked<float>(mem.stream);
  EXPECT_EQ(full.values, ref.values);

  const std::size_t row_stride = dims.count() / dims[0];
  for (std::size_t b = 0; b < reader.block_count(); ++b) {
    const auto block = core::decompress_file_block<float>(tmp.str(), b);
    const std::size_t first = b * reader.header().tile[0];
    ASSERT_EQ(block.dims[0], std::min<std::size_t>(8, dims[0] - first));
    for (std::size_t i = 0; i < block.values.size(); ++i)
      ASSERT_EQ(block.values[i], ref.values[first * row_stride + i])
          << "block " << b << " value " << i;
  }
  EXPECT_THROW(core::decompress_file_block<float>(tmp.str(),
                                                  reader.block_count()),
               std::out_of_range);
}

TEST(StreamingIo, SingleBlockDecodeNeedsOnlyThatBlocksExtent) {
  // The I/O-locality guarantee: decoding block b must touch nothing past
  // b's extent. Proof by truncation — cut the file right after block 1's
  // payload; blocks 0 and 1 still decode bit-exactly, later blocks fail
  // cleanly. (If the decoder read any byte beyond the block's extent, the
  // truncated archive could not reproduce the block.)
  const data::Dims dims{40, 25};
  const auto values = sample_field(dims, 17);
  const auto request = core::ControlRequest::fixed_psnr(60.0);

  TempFile tmp("mmap-truncate");
  core::compress_to_file<float>(values, dims, request, pipeline_options(2, 8),
                                tmp.str());
  const auto whole = slurp(tmp.path);
  ASSERT_GE(io::block_container_header(whole).block_count, 4u);

  // End of block 1's payload, relative to the file start.
  const auto block1 = io::block_container_entry(whole, 1);
  const std::size_t cut =
      static_cast<std::size_t>(block1.data() + block1.size() - whole.data());
  ASSERT_LT(cut, whole.size());

  const auto ref0 = core::decompress_block<float>(whole, 0);
  const auto ref1 = core::decompress_block<float>(whole, 1);
  fs::resize_file(tmp.path, cut);

  const auto got0 = core::decompress_file_block<float>(tmp.str(), 0);
  const auto got1 = core::decompress_file_block<float>(tmp.str(), 1);
  EXPECT_EQ(got0.values, ref0.values);
  EXPECT_EQ(got1.values, ref1.values);
  EXPECT_THROW(core::decompress_file_block<float>(tmp.str(), 2),
               io::StreamError);
}

TEST(StreamingIo, MmapReaderRejectsBadFiles) {
  EXPECT_THROW(io::MmapArchiveReader("/no/such/archive.fpbk"), io::StreamError);

  TempFile empty("mmap-empty");
  std::ofstream(empty.path, std::ios::binary).close();
  EXPECT_THROW(io::MmapArchiveReader(empty.str()), io::StreamError);

  TempFile junk("mmap-junk");
  std::ofstream(junk.path, std::ios::binary) << "this is not an archive";
  EXPECT_THROW(io::MmapArchiveReader(junk.str()), io::StreamError);
}

// --- double scalar through the file path ------------------------------------

TEST(StreamingIo, DoubleScalarRoundTripsThroughFile) {
  const data::Dims dims{24, 16};
  const auto f = sample_field(dims, 23);
  std::vector<double> values(f.begin(), f.end());

  TempFile tmp("stream-double");
  core::compress_to_file<double>(values, dims,
                                 core::ControlRequest::fixed_psnr(90.0),
                                 pipeline_options(2, 7), tmp.str());
  const auto out = core::decompress_file<double>(tmp.str());
  ASSERT_EQ(out.values.size(), values.size());
  EXPECT_THROW(core::decompress_file<float>(tmp.str()), io::StreamError);
}
