// Unit tests for metrics::Histogram.
#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>
#include <vector>

namespace metrics = fpsnr::metrics;

TEST(Histogram, BinAssignment) {
  metrics::Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.5);
  h.add(9.999);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  metrics::Histogram h(-1.0, 1.0, 4);
  h.add(-2.0);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, BinGeometry) {
  metrics::Histogram h(-2.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_mid(1), -0.5);
}

TEST(Histogram, FractionAndDensity) {
  metrics::Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 3; ++i) h.add(0.5);
  h.add(1.5);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
  // density = fraction / width; width = 1
  EXPECT_DOUBLE_EQ(h.density(0), 0.75);
  // Densities integrate to 1 over the in-range support.
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b)
    integral += h.density(b) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, AddAllSpan) {
  metrics::Histogram h(0.0, 1.0, 2);
  const std::vector<float> xs = {0.1f, 0.2f, 0.8f};
  h.add_all<float>(xs);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 2u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(metrics::Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(metrics::Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(metrics::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, NanSampleThrows) {
  metrics::Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.add(std::nan("")), std::invalid_argument);
}

TEST(Histogram, AsciiRenderContainsEveryBin) {
  metrics::Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.render_ascii(20);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
  EXPECT_NE(art.find('#'), std::string::npos);
}
