// Tests for the block-parallel pipeline engine (core/pipeline.h), the
// codec registry behind it, and the FPBK block-indexed container.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/codec_registry.h"
#include "data/synth.h"
#include "io/archive.h"
#include "io/bitstream.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace io = fpsnr::io;
namespace metrics = fpsnr::metrics;
namespace sz = fpsnr::sz;

namespace {

std::vector<float> sample_field(const data::Dims& dims, std::uint64_t seed) {
  auto v = data::smoothed_noise(dims, seed, 3, 2);
  data::rescale(v, -2.0f, 11.0f);
  return v;
}

core::CompressOptions pipeline_options(std::size_t threads,
                                       std::size_t slab_rows = 0) {
  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  opts.parallel.threads = threads;
  if (slab_rows) opts.parallel.tile = {slab_rows};
  return opts;
}

/// Decode `stream` and report the error metrics against `values` (the old
/// core::verify shim, inlined now that Session is the public entry point).
template <typename T>
metrics::ErrorReport verify_stream(std::span<const T> values,
                                   std::span<const std::uint8_t> stream) {
  const auto decoded = core::decompress<T>(stream);
  return metrics::compare<T>(values, decoded.values);
}

}  // namespace

// --- determinism across thread counts --------------------------------------

TEST(ParallelPipeline, StreamBytesIndependentOfThreadCount) {
  const data::Dims dims{61, 40};  // not divisible by the block size
  const auto values = sample_field(dims, 3);
  const auto request = core::ControlRequest::fixed_psnr(70.0);

  const auto serial =
      core::compress<float>(values, dims, request, pipeline_options(1, 8));
  for (std::size_t threads : {2u, 4u, 8u}) {
    const auto parallel = core::compress<float>(values, dims, request,
                                                pipeline_options(threads, 8));
    ASSERT_EQ(serial.stream, parallel.stream) << "threads=" << threads;
  }
}

TEST(ParallelPipeline, RoundTripIdenticalSerialVsParallel) {
  const data::Dims dims{48, 32};
  const auto values = sample_field(dims, 5);
  const auto request = core::ControlRequest::relative(1e-4);

  const auto a = core::compress<float>(values, dims, request,
                                       pipeline_options(1, 6));
  const auto b = core::compress<float>(values, dims, request,
                                       pipeline_options(4, 6));
  const auto da = core::decompress<float>(a.stream);
  const auto db = core::decompress_blocked<float>(b.stream, 4);
  EXPECT_EQ(da.values, db.values);
  EXPECT_EQ(da.dims, dims);
}

// --- fixed-PSNR adherence per thread count ---------------------------------

TEST(ParallelPipeline, PsnrTargetMetForEveryThreadCount) {
  const data::Dims dims{80, 50};
  const auto values = sample_field(dims, 7);
  const double target_db = 70.0;

  // The model is analytical (Eq. 6/7): achieved PSNR tracks the target to
  // within the same tolerance the serial facade tests use, and it must be
  // IDENTICAL across thread counts (the streams are byte-equal).
  double first_psnr = 0.0;
  for (std::size_t threads : {1u, 2u, 4u}) {
    const auto result =
        core::compress<float>(values, dims,
                              core::ControlRequest::fixed_psnr(target_db),
                              pipeline_options(threads, 10));
    const auto report = verify_stream<float>(values, result.stream);
    EXPECT_NEAR(report.psnr_db, target_db, 3.0)
        << "threads=" << threads << " strayed from the PSNR target";
    EXPECT_NEAR(result.predicted_psnr_db, target_db, 1e-9);
    if (threads == 1)
      first_psnr = report.psnr_db;
    else
      EXPECT_DOUBLE_EQ(report.psnr_db, first_psnr) << "threads=" << threads;
  }
}

TEST(ParallelPipeline, PointwiseBoundHoldsAcrossBlockBoundaries) {
  const data::Dims dims{37, 19};
  const auto values = sample_field(dims, 9);
  const double vr = metrics::value_range<float>(values);
  const auto request = core::ControlRequest::relative(1e-4);

  const auto result =
      core::compress<float>(values, dims, request, pipeline_options(4, 5));
  const auto out = core::decompress<float>(result.stream);
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(values[i]) - out.values[i]),
              1e-4 * vr * (1 + 1e-9))
        << "point " << i;
}

TEST(ParallelPipeline, TransformEngineMeetsPsnrThroughPipeline) {
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims, 11);
  core::CompressOptions opts = pipeline_options(2, 16);
  opts.engine = core::Engine::TransformHaar;
  const auto result = core::compress<float>(
      values, dims, core::ControlRequest::fixed_psnr(60.0), opts);
  const auto report = verify_stream<float>(values, result.stream);
  EXPECT_GE(report.psnr_db, 60.0);
}

// --- random-access single-block decode -------------------------------------

TEST(ParallelPipeline, RandomAccessBlockMatchesFullDecode) {
  const data::Dims dims{50, 30};
  const auto values = sample_field(dims, 13);
  const auto result = core::compress<float>(
      values, dims, core::ControlRequest::fixed_psnr(65.0),
      pipeline_options(2, 8));

  const auto full = core::decompress<float>(result.stream);
  const auto info = core::inspect_block_stream(result.stream);
  ASSERT_EQ(info.block_count, (50 + 7) / 8u);
  ASSERT_EQ(info.tile, (std::vector<std::size_t>{8, 30}));

  const std::size_t row_stride = dims.count() / dims[0];
  for (std::size_t b = 0; b < info.block_count; ++b) {
    const auto block = core::decompress_block<float>(result.stream, b);
    const std::size_t first = b * info.tile[0];
    ASSERT_EQ(block.dims[0], std::min<std::size_t>(8, dims[0] - first));
    for (std::size_t i = 0; i < block.values.size(); ++i)
      ASSERT_EQ(block.values[i], full.values[first * row_stride + i])
          << "block " << b << " value " << i;
  }
  EXPECT_THROW(core::decompress_block<float>(result.stream, info.block_count),
               std::out_of_range);
}

TEST(ParallelPipeline, InspectReportsTheRequest) {
  const data::Dims dims{24, 24};
  const auto values = sample_field(dims, 15);
  const auto result = core::compress<float>(
      values, dims, core::ControlRequest::fixed_psnr(72.0),
      pipeline_options(1, 6));
  ASSERT_TRUE(core::is_block_stream(result.stream));
  const auto info = core::inspect_block_stream(result.stream);
  EXPECT_EQ(info.control_mode, core::ControlMode::FixedPsnr);
  EXPECT_DOUBLE_EQ(info.control_value, 72.0);
  EXPECT_EQ(info.codec, core::kCodecSzLorenzo);
  EXPECT_EQ(info.codec_name, "sz-lorenzo");
  EXPECT_EQ(info.dims, dims);
  EXPECT_GT(info.eb_abs, 0.0);
}

// --- container semantics ----------------------------------------------------

TEST(ParallelPipeline, WriterAcceptsOutOfOrderCompletion) {
  io::BlockContainerHeader h;
  h.codec = 0;
  h.scalar = 0;
  h.extents = {9};
  h.tile = {3};
  h.block_count = 3;
  io::BlockContainerWriter writer(h);
  writer.add_block(2, {7, 8, 9}, 0.0);
  writer.add_block(0, {1, 2}, 0.0);
  writer.add_block(1, {3, 4, 5, 6}, 0.0);
  const auto stream = writer.finish();

  const auto view = io::open_block_container(stream);
  ASSERT_EQ(view.blocks.size(), 3u);
  EXPECT_EQ(std::vector<std::uint8_t>(view.blocks[0].begin(),
                                      view.blocks[0].end()),
            (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(std::vector<std::uint8_t>(view.blocks[1].begin(),
                                      view.blocks[1].end()),
            (std::vector<std::uint8_t>{3, 4, 5, 6}));
  EXPECT_EQ(std::vector<std::uint8_t>(view.blocks[2].begin(),
                                      view.blocks[2].end()),
            (std::vector<std::uint8_t>{7, 8, 9}));

  const auto one = io::block_container_entry(stream, 1);
  EXPECT_EQ(std::vector<std::uint8_t>(one.begin(), one.end()),
            (std::vector<std::uint8_t>{3, 4, 5, 6}));
}

TEST(ParallelPipeline, WriterRejectsMissingAndDuplicateBlocks) {
  io::BlockContainerHeader h;
  h.extents = {4};
  h.tile = {2};
  h.block_count = 2;
  io::BlockContainerWriter writer(h);
  writer.add_block(0, {1}, 0.0);
  EXPECT_THROW(writer.add_block(0, {2}, 0.0), std::logic_error);
  EXPECT_THROW(writer.add_block(5, {2}, 0.0), std::out_of_range);
  EXPECT_THROW(writer.finish(), std::logic_error);  // block 1 missing
}

TEST(ParallelPipeline, CorruptionRejected) {
  const data::Dims dims{16, 16};
  const auto values = sample_field(dims, 17);
  const auto result = core::compress<float>(
      values, dims, core::ControlRequest::relative(1e-3),
      pipeline_options(1, 4));

  auto bad = result.stream;
  bad[0] = 'X';
  EXPECT_THROW(core::decompress<float>(bad), io::StreamError);
  bad = result.stream;
  bad.resize(bad.size() / 2);
  EXPECT_THROW(core::decompress_blocked<float>(bad), io::StreamError);
  EXPECT_THROW(core::decompress_blocked<double>(result.stream),
               io::StreamError);  // scalar mismatch
}

// --- engine policy -----------------------------------------------------------

TEST(ParallelPipeline, UnsupportedModesThrow) {
  const data::Dims dims{8, 8};
  const auto values = sample_field(dims, 19);
  EXPECT_THROW(core::compress<float>(values, dims,
                                     core::ControlRequest::pointwise(0.01),
                                     pipeline_options(2)),
               std::invalid_argument);
}

TEST(ParallelPipeline, FixedRateSearchesPerBlockAndStaysDeterministic) {
  // Fixed-rate is pipeline-native now: each block bisects its own bound to
  // the byte budget, the header records the fixed-rate control byte, and
  // the archive bytes stay thread-count independent like every other mode.
  const data::Dims dims{96, 40};
  const auto values = sample_field(dims, 21);
  const double bits = 7.0;
  auto opts = pipeline_options(1);
  opts.parallel.tile = {16};
  const auto one = core::compress<float>(
      values, dims, core::ControlRequest::fixed_rate(bits), opts);
  opts.parallel.threads = 4;
  const auto four = core::compress<float>(
      values, dims, core::ControlRequest::fixed_rate(bits), opts);
  EXPECT_EQ(one.stream, four.stream);

  const auto info = core::inspect_block_stream(one.stream);
  EXPECT_EQ(info.control_mode, core::ControlMode::FixedRate);
  EXPECT_DOUBLE_EQ(info.control_value, bits);
  EXPECT_EQ(info.eb_abs, 0.0);

  // The rate lands near the budget (the search targets payload bytes
  // within ±5%; header + index add ~0.6 bits/value on this small field).
  EXPECT_NEAR(one.info.bit_rate, bits, 0.05 * bits + 0.7);
  const auto d = core::decompress_blocked<float>(one.stream, 2);
  EXPECT_EQ(d.values.size(), values.size());
  // Random access works off the self-describing per-block streams even
  // though the header's eb_abs is 0 in rate mode.
  const auto block = core::decompress_block<float>(one.stream, 1);
  EXPECT_EQ(block.dims[0], 16u);
}

TEST(ParallelPipeline, InvalidRequestsRejectedLikeSerialPath) {
  // The pipeline must validate requests exactly as the serial facade does
  // (it routes through resolve_control), not clamp them to a tiny budget.
  const data::Dims dims{8, 8};
  const auto values = sample_field(dims, 25);
  EXPECT_THROW(core::compress<float>(values, dims,
                                     core::ControlRequest::absolute(-1.0),
                                     pipeline_options(2)),
               std::invalid_argument);
  EXPECT_THROW(
      core::compress<float>(
          values, dims,
          core::ControlRequest::fixed_psnr(std::nan("")), pipeline_options(2)),
      std::invalid_argument);
}

TEST(ParallelPipeline, ConstantFieldCompressesExactly) {
  // vr == 0 must not throw (the serial fixed-PSNR path handles it); the
  // fallback budget keeps every point exact.
  const data::Dims dims{12, 12};
  const std::vector<float> values(dims.count(), 4.25f);
  const auto result =
      core::compress<float>(values, dims, core::ControlRequest::fixed_psnr(80.0),
                            pipeline_options(2, 4));
  const auto out = core::decompress<float>(result.stream);
  EXPECT_EQ(out.values, values);
}

TEST(ParallelPipeline, HugeBlockCountHeaderRejectedNotCrash) {
  // A crafted header whose block_count would overflow the index-size
  // computation must fail with StreamError, not read out of bounds.
  io::ByteWriter w;
  const std::uint8_t magic[4] = {'F', 'P', 'B', 'K'};
  w.put_bytes(std::span<const std::uint8_t>(magic, 4));
  w.put<std::uint8_t>(1);               // version
  w.put<std::uint8_t>(0);               // codec
  w.put<std::uint8_t>(0);               // scalar = float32
  w.put<std::uint8_t>(1);               // rank
  w.put_varint(std::uint64_t{1} << 60); // extents[0]
  w.put_varint(1);                      // block_rows
  w.put_varint(std::uint64_t{1} << 60); // block_count (consistent tiling)
  w.put<double>(1e-3);                  // eb_abs
  w.put<double>(1.0);                   // value_range
  w.put<std::uint8_t>(0);               // control_mode
  w.put<double>(0.0);                   // control_value
  w.put<std::uint64_t>(0);              // a stub of "index" bytes
  const auto stream = w.take();
  EXPECT_THROW(io::open_block_container(stream), io::StreamError);
  EXPECT_THROW(io::block_container_entry(stream, 0), io::StreamError);
  EXPECT_THROW(core::decompress_block<float>(stream, 0), io::StreamError);
}

TEST(ParallelPipeline, AutoTileIsDeterministic) {
  // Default tiling must not depend on thread count, or streams would
  // differ between --threads 1 and --threads 8.
  const data::Dims dims{4096, 64};
  const auto tile = core::auto_tile(dims);
  ASSERT_EQ(tile.size(), dims.rank());
  std::size_t volume = 1;
  for (std::size_t a = 0; a < tile.size(); ++a) {
    EXPECT_GE(tile[a], 1u);
    EXPECT_LE(tile[a], dims[a]);
    volume *= tile[a];
  }
  EXPECT_LE(volume, core::kAutoBlockValues);
  // Short axes clamp to their extent and donate volume to the rest: the
  // 64-wide axis caps below the rank-2 edge (181), so axis 0 absorbs the
  // full remaining budget (32768 / 64 = 512) instead of staying at 181.
  EXPECT_EQ(tile[0], 512u);
  EXPECT_EQ(tile[1], 64u);  // clamped to the field extent
  // Unclamped fields keep the plain near-cubic edge.
  EXPECT_EQ(core::auto_tile(data::Dims{500, 500}),
            (std::vector<std::size_t>{181, 181}));
  EXPECT_EQ(core::auto_tile(data::Dims{4, 512, 512}),
            (std::vector<std::size_t>{4, 90, 90}));  // pancake redistribution

  const auto values = sample_field({97, 33}, 21);
  const auto a = core::compress<float>(values, data::Dims{97, 33},
                                       core::ControlRequest::fixed_psnr(60.0),
                                       pipeline_options(1));
  const auto b = core::compress<float>(values, data::Dims{97, 33},
                                       core::ControlRequest::fixed_psnr(60.0),
                                       pipeline_options(8));
  EXPECT_EQ(a.stream, b.stream);
}

TEST(ParallelPipeline, RegistryKnowsBuiltinsAndRejectsUnknown) {
  auto& reg = core::CodecRegistry::instance();
  EXPECT_EQ(reg.at(core::kCodecSzLorenzo).name(), "sz-lorenzo");
  EXPECT_TRUE(reg.at(core::kCodecSzLorenzo).pointwise_bounded());
  EXPECT_EQ(reg.at(core::kCodecTransformHaar).name(), "transform-haar");
  EXPECT_FALSE(reg.at(core::kCodecTransformHaar).pointwise_bounded());
  EXPECT_EQ(reg.at(core::kCodecTransformDct).name(), "transform-dct");
  EXPECT_EQ(reg.find(250), nullptr);
  EXPECT_THROW(reg.at(250), std::out_of_range);
  const auto ids = reg.ids();
  EXPECT_GE(ids.size(), 3u);
}

TEST(ParallelPipeline, DoubleScalarRoundTrip) {
  const data::Dims dims{40, 16};
  const auto f = sample_field(dims, 23);
  std::vector<double> values(f.begin(), f.end());
  const auto result = core::compress<double>(
      values, dims, core::ControlRequest::fixed_psnr(90.0),
      pipeline_options(2, 7));
  const auto report = verify_stream<double>(values, result.stream);
  EXPECT_NEAR(report.psnr_db, 90.0, 3.0);
}
