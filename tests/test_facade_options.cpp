// Facade-level option plumbing: predictor choice, bin counts, and backend
// selection must reach the codec through core::CompressOptions, and all
// combinations must honour the requested control.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/compressor.h"
#include "core/pipeline.h"
#include "data/synth.h"
#include "sz/stream_format.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace sz = fpsnr::sz;

namespace {

std::vector<float> sample_field(const data::Dims& dims) {
  auto v = data::smoothed_noise(dims, 31, 3, 2);
  data::rescale(v, -2.0f, 5.0f);
  return v;
}

}  // namespace

TEST(FacadeOptions, PredictorReachesStreamHeader) {
  const data::Dims dims{48, 48};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.sz_predictor = sz::Predictor::HybridRegression;
  const auto r = core::compress_fixed_psnr<float>(values, dims, 70.0, opts);
  EXPECT_EQ(sz::inspect(r.stream).predictor, sz::Predictor::HybridRegression);
  const auto rep = core::verify<float>(values, r.stream);
  EXPECT_NEAR(rep.psnr_db, 70.0, 2.0);
}

TEST(FacadeOptions, QuantizationBinsReachStream) {
  const data::Dims dims{32, 32};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.quantization_bins = 1024;
  const auto r = core::compress_fixed_psnr<float>(values, dims, 60.0, opts);
  EXPECT_EQ(sz::inspect(r.stream).quant_bins, 1024u);
}

TEST(FacadeOptions, BackendChoicesAllDecodeIdentically) {
  const data::Dims dims{40, 40};
  const auto values = sample_field(dims);
  std::vector<float> reference;
  for (auto backend :
       {fpsnr::lossless::Method::Store, fpsnr::lossless::Method::Deflate,
        fpsnr::lossless::Method::Auto}) {
    core::CompressOptions opts;
    opts.backend = backend;
    const auto r = core::compress_fixed_psnr<float>(values, dims, 75.0, opts);
    const auto out = core::decompress<float>(r.stream);
    if (reference.empty())
      reference = out.values;
    else
      EXPECT_EQ(out.values, reference);
  }
}

class FacadeMatrix
    : public ::testing::TestWithParam<std::tuple<core::Engine, double>> {};

TEST_P(FacadeMatrix, EveryEngineHitsEveryTarget) {
  const auto [engine, target] = GetParam();
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.engine = engine;
  const auto r = core::compress_fixed_psnr<float>(values, dims, target, opts);
  const auto rep = core::verify<float>(values, r.stream);
  // Fixed-PSNR contract: never undershoot by more than ~1 dB.
  EXPECT_GT(rep.psnr_db, target - 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FacadeMatrix,
    ::testing::Combine(::testing::Values(core::Engine::SzLorenzo,
                                         core::Engine::TransformHaar,
                                         core::Engine::TransformDct),
                       ::testing::Values(50.0, 80.0, 110.0)));

TEST(FacadeOptions, RegistryOnlyEnginesRouteThroughBlockPipeline) {
  // Interp / ZfpRate / Store have no serial flat-stream path; the facade
  // must emit an FPBK container for them even with no parallel knobs set,
  // and decompress() must dispatch it transparently.
  const data::Dims dims{48, 32};
  const auto values = sample_field(dims);
  for (const core::Engine e :
       {core::Engine::Interp, core::Engine::ZfpRate, core::Engine::Store}) {
    core::CompressOptions opts;
    opts.engine = e;
    const auto r = core::compress_fixed_psnr<float>(values, dims, 60.0, opts);
    EXPECT_TRUE(core::is_block_stream(r.stream))
        << "engine " << static_cast<int>(e);
    const auto rep = core::verify<float>(values, r.stream);
    EXPECT_GT(rep.psnr_db, 59.0) << "engine " << static_cast<int>(e);
  }
}

TEST(FacadeOptions, RegistryNameLookupListsRegisteredCodecs) {
  // The CLI resolves --engine through these lookups; an unknown name must
  // fail with a message naming every registered codec.
  auto& registry = core::CodecRegistry::instance();
  EXPECT_EQ(registry.id_of("sz-lorenzo"), core::kCodecSzLorenzo);
  EXPECT_EQ(registry.id_of("transform-haar"), core::kCodecTransformHaar);
  EXPECT_EQ(registry.id_of("transform-dct"), core::kCodecTransformDct);
  EXPECT_EQ(registry.id_of("interp"), core::kCodecInterp);
  EXPECT_EQ(registry.id_of("zfpr"), core::kCodecZfpRate);
  EXPECT_EQ(registry.id_of("store"), core::kCodecStore);
  EXPECT_EQ(registry.find("interp"), &registry.at(core::kCodecInterp));
  EXPECT_EQ(registry.find("no-such-codec"), nullptr);

  const auto names = registry.names();
  ASSERT_GE(names.size(), 6u);
  try {
    registry.id_of("no-such-codec");
    FAIL() << "unknown codec name must throw";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    for (std::string_view n : names)
      EXPECT_NE(what.find(n), std::string::npos)
          << "error message must list '" << n << "'";
  }
}

TEST(FacadeOptions, AdaptiveBudgetRoutesThroughBlockPipeline) {
  const data::Dims dims{48, 32};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.budget = core::BudgetMode::Adaptive;
  const auto r = core::compress_fixed_psnr<float>(values, dims, 60.0, opts);
  EXPECT_TRUE(core::is_block_stream(r.stream));
  EXPECT_GT(core::verify<float>(values, r.stream).psnr_db, 59.0);
}

TEST(FacadeOptions, HybridPredictorIgnoredByTransformEngines) {
  // Transform engines have no Lorenzo/regression stage; the option must be
  // harmless, not an error.
  const data::Dims dims{32, 32};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.engine = core::Engine::TransformHaar;
  opts.sz_predictor = sz::Predictor::HybridRegression;
  EXPECT_NO_THROW({
    const auto r = core::compress_fixed_psnr<float>(values, dims, 70.0, opts);
    (void)core::decompress<float>(r.stream);
  });
}
