// Tests for the chunked (slab-parallel) codec.
#include "sz/chunked.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synth.h"
#include "io/bitstream.h"
#include "metrics/metrics.h"

namespace sz = fpsnr::sz;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;
namespace parallel = fpsnr::parallel;
namespace io = fpsnr::io;

namespace {

std::vector<float> sample_field(const data::Dims& dims, std::uint64_t seed) {
  auto v = data::smoothed_noise(dims, seed, 3, 2);
  data::rescale(v, -4.0f, 9.0f);
  return v;
}

sz::Params rel_params(double bound) {
  sz::Params p;
  p.mode = sz::ErrorBoundMode::ValueRangeRelative;
  p.bound = bound;
  return p;
}

}  // namespace

class ChunkedRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkedRoundTrip, BoundHoldsForEveryChunkCount) {
  const std::size_t chunks = GetParam();
  const data::Dims dims{37, 40};  // deliberately not divisible by chunks
  const auto values = sample_field(dims, 3);
  const double vr = metrics::value_range<float>(values);
  const auto params = rel_params(1e-4);

  const auto stream = sz::chunked_compress<float>(values, dims, params, chunks);
  const auto out = sz::chunked_decompress<float>(stream);
  ASSERT_EQ(out.dims, dims);
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(values[i]) - out.values[i]),
              1e-4 * vr * (1 + 1e-9))
        << "chunks=" << chunks << " point " << i;
}

INSTANTIATE_TEST_SUITE_P(Counts, ChunkedRoundTrip,
                         ::testing::Values(1, 2, 3, 7, 37, 100));

TEST(Chunked, ParallelEqualsSerial) {
  const data::Dims dims{24, 24, 24};
  const auto values = sample_field(dims, 5);
  const auto params = rel_params(1e-3);
  const auto serial = sz::chunked_compress<float>(values, dims, params, 6);
  parallel::ThreadPool pool(4);
  const auto parallel_stream =
      sz::chunked_compress<float>(values, dims, params, 6, &pool);
  EXPECT_EQ(serial, parallel_stream);  // byte-identical output

  const auto a = sz::chunked_decompress<float>(serial);
  const auto b = sz::chunked_decompress<float>(parallel_stream, &pool);
  EXPECT_EQ(a.values, b.values);
}

TEST(Chunked, MatchesUnchunkedBoundSemantics) {
  // One chunk reproduces the plain codec's reconstruction exactly: same
  // absolute bound, same scan, same arithmetic.
  const data::Dims dims{32, 48};
  const auto values = sample_field(dims, 7);
  const double vr = metrics::value_range<float>(values);
  const auto params = rel_params(1e-4);

  const auto chunked = sz::chunked_decompress<float>(
      sz::chunked_compress<float>(values, dims, params, 1));

  sz::Params abs_params;
  abs_params.mode = sz::ErrorBoundMode::Absolute;
  abs_params.bound = 1e-4 * vr;
  const auto plain =
      sz::decompress<float>(sz::compress<float>(values, dims, abs_params));
  EXPECT_EQ(chunked.values, plain.values);
}

TEST(Chunked, RatioDegradesGently) {
  // Slabs must stay large enough to amortize per-slab headers; with
  // 16-row slabs of a 128x128 field the ratio cost is bounded.
  const data::Dims dims{128, 128};
  const auto values = sample_field(dims, 9);
  const auto params = rel_params(1e-4);
  sz::ChunkedInfo one, many;
  (void)sz::chunked_compress<float>(values, dims, params, 1, nullptr, &one);
  (void)sz::chunked_compress<float>(values, dims, params, 8, nullptr, &many);
  EXPECT_GT(many.chunk_count, 1u);
  EXPECT_GT(many.compression_ratio, 0.5 * one.compression_ratio);
}

TEST(Chunked, PointwiseRelativeModePassesThrough) {
  const data::Dims dims{30, 30};
  auto values = sample_field(dims, 11);
  for (float& v : values) v = std::abs(v) + 0.5f;  // strictly positive
  sz::Params params;
  params.mode = sz::ErrorBoundMode::PointwiseRelative;
  params.bound = 0.02;
  const auto out = sz::chunked_decompress<float>(
      sz::chunked_compress<float>(values, dims, params, 5));
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(out.values[i] - values[i]),
              0.02 * std::abs(values[i]) * (1 + 1e-6));
}

TEST(Chunked, StreamDetection) {
  const data::Dims dims{16, 16};
  const auto values = sample_field(dims, 13);
  const auto chunked =
      sz::chunked_compress<float>(values, dims, rel_params(1e-3), 2);
  EXPECT_TRUE(sz::is_chunked_stream(chunked));
  const auto plain = sz::compress<float>(values, dims, rel_params(1e-3));
  EXPECT_FALSE(sz::is_chunked_stream(plain));
}

TEST(Chunked, CorruptionRejected) {
  const data::Dims dims{16, 16};
  const auto values = sample_field(dims, 15);
  auto stream = sz::chunked_compress<float>(values, dims, rel_params(1e-3), 4);
  auto bad = stream;
  bad[0] = 'X';
  EXPECT_THROW(sz::chunked_decompress<float>(bad), io::StreamError);
  bad = stream;
  bad.resize(bad.size() / 2);
  EXPECT_THROW(sz::chunked_decompress<float>(bad), io::StreamError);
  EXPECT_THROW(sz::chunked_decompress<double>(stream), io::StreamError);
}

TEST(Chunked, ChunkCountClampedToRows) {
  const data::Dims dims{3, 64};  // only 3 rows
  const auto values = sample_field(dims, 17);
  sz::ChunkedInfo info;
  (void)sz::chunked_compress<float>(values, dims, rel_params(1e-3), 100,
                                    nullptr, &info);
  EXPECT_LE(info.chunk_count, 3u);
}

TEST(Chunked, MismatchedDimsThrow) {
  const std::vector<float> values(10);
  EXPECT_THROW(
      sz::chunked_compress<float>(values, data::Dims{11}, rel_params(1e-3)),
      std::invalid_argument);
}
