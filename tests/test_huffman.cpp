// Unit and property tests for the canonical Huffman coder.
#include "huffman/huffman.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <random>

namespace huffman = fpsnr::huffman;
namespace io = fpsnr::io;

namespace {

std::vector<std::uint32_t> round_trip(std::span<const std::uint32_t> symbols,
                                      std::uint32_t alphabet) {
  const auto enc = huffman::Encoder::from_symbols(symbols, alphabet);
  io::ByteWriter table;
  enc.write_table(table);
  io::BitWriter bits;
  enc.encode(symbols, bits);
  const auto table_bytes = table.take();
  const auto payload = bits.take();

  io::ByteReader table_reader(table_bytes);
  const auto dec = huffman::Decoder::read_table(table_reader);
  io::BitReader bit_reader(payload);
  return dec.decode(bit_reader, symbols.size());
}

}  // namespace

TEST(Huffman, KraftEqualityForOptimalCodes) {
  const std::vector<std::uint64_t> freq = {5, 9, 12, 13, 16, 45};
  const auto lengths = huffman::build_code_lengths(freq);
  double kraft = 0.0;
  for (std::uint8_t L : lengths)
    if (L > 0) kraft += std::pow(2.0, -static_cast<double>(L));
  EXPECT_NEAR(kraft, 1.0, 1e-12);
}

TEST(Huffman, ClassicTextbookLengths) {
  // Frequencies 5,9,12,13,16,45 give the canonical Huffman example:
  // symbol with f=45 gets 1 bit, the rest 3-4 bits.
  const std::vector<std::uint64_t> freq = {5, 9, 12, 13, 16, 45};
  const auto lengths = huffman::build_code_lengths(freq);
  EXPECT_EQ(lengths[5], 1);
  EXPECT_EQ(lengths[0], 4);
  EXPECT_EQ(lengths[1], 4);
  // Total weighted length is the known optimum (224).
  std::uint64_t cost = 0;
  for (std::size_t i = 0; i < freq.size(); ++i) cost += freq[i] * lengths[i];
  EXPECT_EQ(cost, 224u);
}

TEST(Huffman, CanonicalCodesArePrefixFree) {
  const std::vector<std::uint64_t> freq = {1, 1, 2, 3, 5, 8, 13, 21};
  const auto lengths = huffman::build_code_lengths(freq);
  const auto codes = huffman::canonical_codes(lengths);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    for (std::size_t j = 0; j < codes.size(); ++j) {
      if (i == j || lengths[i] == 0 || lengths[j] == 0) continue;
      if (lengths[i] <= lengths[j]) {
        // code_i must not be a prefix of code_j
        const std::uint32_t prefix = codes[j] >> (lengths[j] - lengths[i]);
        EXPECT_FALSE(prefix == codes[i] && i != j && lengths[i] < lengths[j])
            << "code " << i << " is a prefix of code " << j;
      }
    }
  }
}

TEST(Huffman, SingleSymbolAlphabet) {
  const std::vector<std::uint32_t> symbols(100, 7);
  const auto back = round_trip(symbols, 16);
  EXPECT_EQ(back, symbols);
}

TEST(Huffman, EmptyStream) {
  const std::vector<std::uint32_t> symbols;
  const auto enc = huffman::Encoder::from_symbols(symbols, 8);
  io::BitWriter bits;
  enc.encode(symbols, bits);
  EXPECT_EQ(bits.bit_count(), 0u);
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 50; ++i) symbols.push_back(i % 2);
  EXPECT_EQ(round_trip(symbols, 2), symbols);
}

TEST(Huffman, SkewedDistributionCompresses) {
  std::mt19937_64 rng(3);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 10000; ++i)
    symbols.push_back(rng() % 100 < 90 ? 0 : 1 + rng() % 255);
  const auto enc = huffman::Encoder::from_symbols(symbols, 256);
  // ~90% of symbols should use a 1-bit code => ~0.9*1 + 0.1*~9 bits avg.
  const double bits_per_symbol =
      static_cast<double>(enc.encoded_bits(symbols)) / symbols.size();
  EXPECT_LT(bits_per_symbol, 2.5);
  EXPECT_EQ(round_trip(symbols, 256), symbols);
}

TEST(Huffman, LengthLimitRespected) {
  // Fibonacci-like frequencies force very skewed optimal lengths; cap at 8.
  std::vector<std::uint64_t> freq(30);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freq) {
    f = a;
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  const auto lengths = huffman::build_code_lengths(freq, 8);
  double kraft = 0.0;
  for (std::uint8_t L : lengths) {
    EXPECT_LE(L, 8);
    EXPECT_GE(L, 1);  // all symbols had nonzero frequency
    kraft += std::pow(2.0, -static_cast<double>(L));
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(Huffman, LengthLimitedStillDecodes) {
  std::vector<std::uint64_t> freq(64);
  std::uint64_t f = 1;
  for (auto& x : freq) {
    x = f;
    f = f * 3 / 2 + 1;
  }
  std::mt19937_64 rng(17);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 5000; ++i)
    symbols.push_back(static_cast<std::uint32_t>(rng() % 64));
  const auto enc = huffman::Encoder::from_frequencies(freq, 10);
  io::ByteWriter table;
  enc.write_table(table);
  io::BitWriter bits;
  enc.encode(symbols, bits);
  const auto tb = table.take();
  io::ByteReader tr(tb);
  const auto dec = huffman::Decoder::read_table(tr);
  const auto payload = bits.take();
  io::BitReader br(payload);
  EXPECT_EQ(dec.decode(br, symbols.size()), symbols);
}

TEST(Huffman, LargeAlphabetRoundTrip) {
  // SZ uses 65536 quantization codes; exercise a large, sparse alphabet.
  std::mt19937_64 rng(23);
  std::normal_distribution<double> gauss(32768.0, 40.0);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::clamp(gauss(rng), 0.0, 65535.0);
    symbols.push_back(static_cast<std::uint32_t>(x));
  }
  EXPECT_EQ(round_trip(symbols, 65536), symbols);
}

TEST(Huffman, EncodeUnknownSymbolThrows) {
  const std::vector<std::uint32_t> symbols = {0, 1, 0};
  const auto enc = huffman::Encoder::from_symbols(symbols, 4);
  io::BitWriter bits;
  EXPECT_THROW(enc.encode_symbol(3, bits), std::invalid_argument);  // freq 0
  EXPECT_THROW(enc.encode_symbol(99, bits), std::invalid_argument);
}

TEST(Huffman, SymbolOutOfAlphabetThrows) {
  const std::vector<std::uint32_t> symbols = {0, 9};
  EXPECT_THROW(huffman::Encoder::from_symbols(symbols, 4), std::invalid_argument);
}

TEST(Huffman, TableSerializationIsCompact) {
  // A dense run of equal lengths should RLE well: alphabet 65536 with two
  // used symbols must serialize to a handful of bytes, not 65 KB.
  std::vector<std::uint64_t> freq(65536, 0);
  freq[100] = 10;
  freq[200] = 20;
  const auto enc = huffman::Encoder::from_frequencies(freq);
  io::ByteWriter table;
  enc.write_table(table);
  EXPECT_LT(table.size(), 64u);
}

TEST(Huffman, CorruptTableRejected) {
  io::ByteWriter w;
  w.put_varint(10);        // alphabet 10
  w.put_varint(20);        // run longer than alphabet
  w.put<std::uint8_t>(3);
  const auto buf = w.take();
  io::ByteReader r(buf);
  EXPECT_THROW(huffman::Decoder::read_table(r), io::StreamError);
}

TEST(Huffman, OverlongCodeLengthRejected) {
  io::ByteWriter w;
  w.put_varint(2);
  w.put_varint(2);
  w.put<std::uint8_t>(60);  // > kMaxCodeLength
  const auto buf = w.take();
  io::ByteReader r(buf);
  EXPECT_THROW(huffman::Decoder::read_table(r), io::StreamError);
}

TEST(Huffman, KraftViolationRejected) {
  // Three codes of length 1 cannot coexist.
  const std::vector<std::uint8_t> bad_lengths = {1, 1, 1};
  EXPECT_THROW(huffman::Decoder::from_lengths(bad_lengths), io::StreamError);
}

TEST(Huffman, GarbageBitstreamThrows) {
  const std::vector<std::uint8_t> lengths = {2, 2, 2};  // incomplete code set
  const auto dec = huffman::Decoder::from_lengths(lengths);
  const std::vector<std::uint8_t> garbage = {0xFF, 0xFF};
  io::BitReader br(garbage);
  // 0b11 is not an assigned code (only 00,01,10 exist).
  EXPECT_THROW({ for (int i = 0; i < 8; ++i) dec.decode_symbol(br); },
               io::StreamError);
}

// Property sweep: random alphabets and streams always round-trip.
class HuffmanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanPropertyTest, RandomRoundTrip) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const std::uint32_t alphabet = 2 + static_cast<std::uint32_t>(rng() % 1000);
  const std::size_t n = 1 + rng() % 5000;
  std::vector<std::uint32_t> symbols(n);
  // Zipf-ish skew to exercise varied code lengths.
  for (auto& s : symbols) {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    s = static_cast<std::uint32_t>(alphabet * u * u * u) % alphabet;
  }
  EXPECT_EQ(round_trip(symbols, alphabet), symbols);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanPropertyTest, ::testing::Range(0, 12));
