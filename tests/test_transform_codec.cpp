// Tests for the orthogonal-transform codec (ZFP/SSEM-style baseline).
#include "transform/transform_codec.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synth.h"
#include "io/bitstream.h"
#include "metrics/metrics.h"

namespace transform = fpsnr::transform;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;
namespace io = fpsnr::io;

namespace {

std::vector<float> sample_field(const data::Dims& dims, std::uint64_t seed) {
  auto v = data::smoothed_noise(dims, seed, 3, 2);
  data::rescale(v, -10.0f, 30.0f);
  return v;
}

}  // namespace

class TransformCodecRoundTrip
    : public ::testing::TestWithParam<transform::Kind> {};

TEST_P(TransformCodecRoundTrip, ReconstructionCloseToOriginal) {
  const data::Dims dims{32, 48};
  const auto values = sample_field(dims, 5);
  transform::Params params;
  params.kind = GetParam();
  params.bin_width = 1e-3;
  transform::Info info;
  const auto stream = transform::compress<float>(values, dims, params, &info);
  const auto out = transform::decompress<float>(stream);
  ASSERT_EQ(out.dims, dims);
  const auto rep = metrics::compare<float>(values, out.values);
  // Quantizing coefficients with bin width delta gives RMSE <= delta/2
  // in the coefficient domain == data domain (orthogonality).
  EXPECT_LE(rep.rmse, params.bin_width);
  EXPECT_GT(info.compression_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, TransformCodecRoundTrip,
                         ::testing::Values(transform::Kind::HaarMultiLevel,
                                           transform::Kind::BlockDct));

TEST(TransformCodec, PsnrTracksBinWidthFormula) {
  // Paper Eq. (6) applied to the transform coder: PSNR should be close to
  // 20 log10(vr/delta) + 10 log10(12). Smooth data concentrates many
  // coefficients near zero (inside the central bin), so the actual PSNR
  // may exceed the estimate — never fall far below it.
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims, 9);
  const double vr = metrics::value_range<float>(values);
  transform::Params params;
  params.bin_width = vr * 1e-4;
  const auto stream = transform::compress<float>(values, dims, params);
  const auto out = transform::decompress<float>(stream);
  const auto rep = metrics::compare<float>(values, out.values);
  const double predicted =
      20.0 * std::log10(vr / params.bin_width) + 10.0 * std::log10(12.0);
  EXPECT_GT(rep.psnr_db, predicted - 1.0);
}

TEST(TransformCodec, DoubleRoundTrip) {
  const data::Dims dims{16, 16, 16};
  std::vector<double> values(dims.count());
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = std::sin(static_cast<double>(i) * 0.01);
  transform::Params params;
  params.bin_width = 1e-6;
  const auto out =
      transform::decompress<double>(transform::compress<double>(values, dims, params));
  const auto rep = metrics::compare<double>(values, out.values);
  EXPECT_LE(rep.rmse, 1e-6);
}

TEST(TransformCodec, HaarLevelsClamped) {
  const data::Dims dims{8};
  const std::vector<float> values = {1, 2, 3, 4, 5, 6, 7, 8};
  transform::Params params;
  params.haar_levels = 100;  // clamped internally
  params.bin_width = 1e-4;
  EXPECT_NO_THROW({
    const auto out =
        transform::decompress<float>(transform::compress<float>(values, dims, params));
    EXPECT_EQ(out.values.size(), 8u);
  });
}

TEST(TransformCodec, ScalarMismatchThrows) {
  const data::Dims dims{16};
  const std::vector<float> values(16, 1.0f);
  transform::Params params;
  params.bin_width = 1e-3;
  const auto stream = transform::compress<float>(values, dims, params);
  EXPECT_THROW(transform::decompress<double>(stream), io::StreamError);
}

TEST(TransformCodec, CorruptStreamThrows) {
  const data::Dims dims{16};
  const std::vector<float> values(16, 1.0f);
  transform::Params params;
  params.bin_width = 1e-3;
  auto stream = transform::compress<float>(values, dims, params);
  stream[0] = 'Z';
  EXPECT_THROW(transform::decompress<float>(stream), io::StreamError);
  stream = transform::compress<float>(values, dims, params);
  stream.resize(stream.size() / 3);
  EXPECT_THROW(transform::decompress<float>(stream), io::StreamError);
}

TEST(TransformCodec, BadParamsThrow) {
  const std::vector<float> values(16, 1.0f);
  transform::Params params;
  params.bin_width = 0.0;
  EXPECT_THROW(transform::compress<float>(values, data::Dims{16}, params),
               std::invalid_argument);
  params.bin_width = 1.0;
  EXPECT_THROW(transform::compress<float>(values, data::Dims{15}, params),
               std::invalid_argument);
}

TEST(TransformCodec, CoefficientTraceQuantizationBounded) {
  const data::Dims dims{32, 32};
  const auto values = sample_field(dims, 3);
  transform::Params params;
  params.bin_width = 1e-2;
  const auto trace = transform::coefficient_trace<float>(values, dims, params);
  ASSERT_EQ(trace.coeffs.size(), values.size());
  for (std::size_t i = 0; i < trace.coeffs.size(); ++i)
    ASSERT_LE(std::abs(trace.coeffs[i] - trace.coeffs_quantized[i]),
              params.bin_width / 2.0 * (1.0 + 1e-9));
}
