// The global-work-queue batch engine vs. the single-field pipeline:
// for every field of a mixed-shape dataset (1-D/2-D/3-D, tiny to huge,
// smooth to incompressible), the batch archive must be byte-identical to a
// sequential single-field compress at ANY thread count — under uniform and
// adaptive budgets, through the in-memory and the streaming writers, on
// the queue and on the sequential fallback path.
#include "core/batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/pipeline.h"
#include "data/synth.h"
#include "fpsnr/fpsnr.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

/// Mixed field shapes: the CESM-style scenario the queue exists for —
/// tiny slices that underfill the pool next to volumes with many blocks.
data::Dataset mixed_dataset() {
  data::Dataset ds;
  ds.name = "mixed";
  {
    data::Dims d{257};  // 1-D tiny: a single block
    ds.fields.emplace_back("line", d, data::smoothed_noise(d, 11, 3));
  }
  {
    data::Dims d{48, 32};  // 2-D small
    ds.fields.emplace_back("slice", d, data::cosine_mixture(d, 12, 5));
  }
  {
    data::Dims d{4, 4096};  // pancake: few rows, long stride
    ds.fields.emplace_back("pancake", d, data::smoothed_noise(d, 13, 2));
  }
  {
    data::Dims d{24, 40, 40};  // 3-D mid
    ds.fields.emplace_back("brick", d, data::cosine_mixture(d, 14, 4));
  }
  {
    data::Dims d{48, 64, 64};  // the "huge" one: dozens of blocks
    auto v = data::smoothed_noise(d, 15, 2);
    data::add_scaled(v, data::cosine_mixture(d, 16, 3), 0.5f);
    ds.fields.emplace_back("volume", d, std::move(v));
  }
  {
    data::Dims d{64, 64};  // constant: vr == 0 edge case
    ds.fields.emplace_back("flat", d,
                           std::vector<float>(d.count(), 3.25f));
  }
  {
    data::Dims d{32, 128};  // pure noise: exercises store demotion
    ds.fields.emplace_back("noise", d, data::white_noise(d.count(), 17));
  }
  return ds;
}

/// The reference bytes: a single-field run through the pipeline facade.
std::vector<std::uint8_t> single_field_bytes(const data::Field& field,
                                             double target_db,
                                             const core::CompressOptions& base) {
  core::CompressOptions opts = base;
  opts.parallel.block_pipeline = true;
  opts.parallel.threads = 1;
  return core::compress_blocked<float>(field.span(), field.dims,
                                       core::ControlRequest::fixed_psnr(target_db),
                                       opts)
      .stream;
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(std::filesystem::temp_directory_path() /
              (std::string("fpsnr_batchq_") + tag)) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace

TEST(BatchQueue, ByteIdenticalToSingleFieldAtAnyThreadCount) {
  const auto ds = mixed_dataset();
  const double target = 72.0;
  std::vector<std::vector<std::uint8_t>> reference;
  for (const auto& f : ds.fields)
    reference.push_back(single_field_bytes(f, target, {}));

  for (std::size_t threads : {1u, 2u, 8u}) {
    core::BatchOptions opts;
    opts.threads = threads;
    opts.keep_streams = true;
    const auto batch = core::run_fixed_psnr_batch(ds, target, opts);
    ASSERT_EQ(batch.fields.size(), ds.fields.size());
    for (std::size_t i = 0; i < ds.fields.size(); ++i) {
      EXPECT_EQ(batch.fields[i].field_name, ds.fields[i].name);
      EXPECT_EQ(batch.fields[i].stream, reference[i])
          << ds.fields[i].name << " @ " << threads << " threads";
      EXPECT_TRUE(batch.fields[i].actual_psnr_db > 0.0);
    }
  }
}

TEST(BatchQueue, AdaptiveBudgetsStayByteIdentical) {
  const auto ds = mixed_dataset();
  const double target = 66.0;
  core::CompressOptions base;
  base.budget = core::BudgetMode::Adaptive;
  std::vector<std::vector<std::uint8_t>> reference;
  for (const auto& f : ds.fields)
    reference.push_back(single_field_bytes(f, target, base));

  for (std::size_t threads : {2u, 8u}) {
    core::BatchOptions opts;
    opts.compress.budget = core::BudgetMode::Adaptive;
    opts.threads = threads;
    opts.keep_streams = true;
    const auto batch = core::run_fixed_psnr_batch(ds, target, opts);
    for (std::size_t i = 0; i < ds.fields.size(); ++i)
      EXPECT_EQ(batch.fields[i].stream, reference[i])
          << ds.fields[i].name << " @ " << threads << " threads (adaptive)";
  }
}

TEST(BatchQueue, StreamingWritersMatchInMemoryBytes) {
  const auto ds = mixed_dataset();
  const double target = 70.0;
  const TempDir dir("stream");

  core::BatchOptions opts;
  opts.threads = 8;
  opts.stream_dir = dir.str();
  const auto batch = core::run_fixed_psnr_batch(ds, target, opts);

  for (std::size_t i = 0; i < ds.fields.size(); ++i) {
    const auto& out = batch.fields[i];
    ASSERT_FALSE(out.archive_path.empty());
    EXPECT_TRUE(out.stream.empty());  // streaming keeps nothing in memory
    EXPECT_EQ(read_all(out.archive_path),
              single_field_bytes(ds.fields[i], target, {}))
        << ds.fields[i].name;
  }
}

TEST(BatchQueue, SequentialFallbackMatchesQueue) {
  const auto ds = mixed_dataset();
  const double target = 75.0;

  core::BatchOptions queue_opts;
  queue_opts.threads = 4;
  queue_opts.keep_streams = true;
  const auto with_queue = core::run_fixed_psnr_batch(ds, target, queue_opts);

  core::BatchOptions seq_opts = queue_opts;
  seq_opts.global_queue = false;
  const auto sequential = core::run_fixed_psnr_batch(ds, target, seq_opts);

  ASSERT_EQ(with_queue.fields.size(), sequential.fields.size());
  for (std::size_t i = 0; i < with_queue.fields.size(); ++i) {
    EXPECT_EQ(with_queue.fields[i].stream, sequential.fields[i].stream);
    EXPECT_DOUBLE_EQ(with_queue.fields[i].actual_psnr_db,
                     sequential.fields[i].actual_psnr_db);
    EXPECT_DOUBLE_EQ(with_queue.fields[i].compression_ratio,
                     sequential.fields[i].compression_ratio);
  }
}

TEST(BatchQueue, VerifyOffReportsTheExactRecordedPsnr) {
  const auto ds = mixed_dataset();
  const double target = 68.0;

  core::BatchOptions verified;
  verified.threads = 4;
  const auto measured = core::run_fixed_psnr_batch(ds, target, verified);

  core::BatchOptions trusted = verified;
  trusted.verify = false;
  const auto recorded = core::run_fixed_psnr_batch(ds, target, trusted);

  for (std::size_t i = 0; i < ds.fields.size(); ++i) {
    // The FPBK v2 per-block SSE column is exact, so the compress-time PSNR
    // and the decode-and-measure PSNR are the same number (1e-6 dB is the
    // PR-3 exactness contract; the flat field is +inf on both sides).
    const double a = measured.fields[i].actual_psnr_db;
    const double b = recorded.fields[i].actual_psnr_db;
    if (std::isinf(a) || std::isinf(b))
      EXPECT_EQ(a, b) << ds.fields[i].name;
    else
      EXPECT_NEAR(a, b, 1e-6) << ds.fields[i].name;
    EXPECT_EQ(measured.fields[i].met_target, recorded.fields[i].met_target);
  }
}

TEST(BatchQueue, ExplicitTileAndEnginePassThrough) {
  const auto ds = mixed_dataset();
  const double target = 64.0;
  core::CompressOptions base;
  base.engine = core::Engine::Interp;
  base.parallel.tile = {7};  // deliberately awkward slab tile

  core::BatchOptions opts;
  opts.compress = base;
  opts.threads = 8;
  opts.keep_streams = true;
  const auto batch = core::run_fixed_psnr_batch(ds, target, opts);
  for (std::size_t i = 0; i < ds.fields.size(); ++i)
    EXPECT_EQ(batch.fields[i].stream,
              single_field_bytes(ds.fields[i], target, base))
        << ds.fields[i].name << " (interp, tile {7})";
}

TEST(BatchQueue, CollidingStreamPathsAreRejected) {
  // Name flattening maps "u/v" and "u_v" to the same archive file; two
  // writers on one path would corrupt it, so the batch must refuse.
  data::Dataset ds;
  ds.name = "collide";
  data::Dims d{32, 32};
  ds.fields.emplace_back("u/v", d, data::smoothed_noise(d, 21, 2));
  ds.fields.emplace_back("u_v", d, data::smoothed_noise(d, 22, 2));
  const TempDir dir("collide");
  core::BatchOptions opts;
  opts.stream_dir = dir.str();
  EXPECT_THROW(core::run_fixed_psnr_batch(ds, 70.0, opts),
               std::invalid_argument);

  // Case-only differences are one file on default macOS/Windows volumes;
  // the guard must reject them everywhere, not just where they collide.
  data::Dataset cased;
  cased.name = "cased";
  cased.fields.emplace_back("U", d, data::smoothed_noise(d, 23, 2));
  cased.fields.emplace_back("u", d, data::smoothed_noise(d, 24, 2));
  EXPECT_THROW(core::run_fixed_psnr_batch(cased, 70.0, opts),
               std::invalid_argument);

  // Non-ASCII names fold per-volume ("Ä" vs "ä" on APFS) — outside what
  // the ASCII collision guard can cover, so streaming refuses them.
  data::Dataset unicode;
  unicode.name = "unicode";
  unicode.fields.emplace_back("\xC3\x84", d, data::smoothed_noise(d, 25, 2));
  EXPECT_THROW(core::run_fixed_psnr_batch(unicode, 70.0, opts),
               std::invalid_argument);

  // In-memory runs have no shared file, so the same datasets are fine.
  opts.stream_dir.clear();
  EXPECT_NO_THROW(core::run_fixed_psnr_batch(ds, 70.0, opts));
  EXPECT_NO_THROW(core::run_fixed_psnr_batch(cased, 70.0, opts));
}

TEST(BatchQueue, StreamWaveCapKeepsArchivesByteIdentical) {
  // Streaming holds an open fd per in-flight field, so large manifests
  // are processed in waves of max_open_streams; waves are a scheduling
  // boundary only — the per-field bytes must not move.
  const auto ds = mixed_dataset();
  const double target = 71.0;
  const TempDir dir("wave");

  core::BatchOptions opts;
  opts.threads = 8;
  opts.stream_dir = dir.str();
  opts.max_open_streams = 2;  // 7 fields -> 4 waves
  const auto batch = core::run_fixed_psnr_batch(ds, target, opts);

  ASSERT_EQ(batch.fields.size(), ds.fields.size());
  for (std::size_t i = 0; i < ds.fields.size(); ++i)
    EXPECT_EQ(read_all(batch.fields[i].archive_path),
              single_field_bytes(ds.fields[i], target, {}))
        << ds.fields[i].name << " (wave cap 2)";
}

TEST(BatchQueue, ArchivesDecodeThroughTheRegularReaders) {
  const auto ds = mixed_dataset();
  core::BatchOptions opts;
  opts.threads = 8;
  opts.keep_streams = true;
  const auto batch = core::run_fixed_psnr_batch(ds, 70.0, opts);
  for (std::size_t i = 0; i < ds.fields.size(); ++i) {
    const auto decoded =
        core::decompress_blocked<float>(batch.fields[i].stream, 2);
    ASSERT_EQ(decoded.values.size(), ds.fields[i].size());
    EXPECT_EQ(decoded.dims, ds.fields[i].dims);
  }
}

TEST(BatchQueue, SessionFacadeBatchMatchesEngineBytes) {
  // The public Session::compress_batch wraps this engine; its per-field
  // archives must be the byte-exact single-field references, through both
  // the in-memory and the streaming paths.
  const auto ds = mixed_dataset();
  const double target = 72.0;

  fpsnr::SessionOptions sopts;
  sopts.threads = 4;
  const fpsnr::Session session(sopts);

  fpsnr::BatchJob job;
  job.target = fpsnr::FixedPsnr{target};
  job.keep_archives = true;
  for (const auto& f : ds.fields)
    job.fields.push_back(
        {f.name, fpsnr::Source::memory(f.span(), f.dims.extents)});
  const auto batch = session.compress_batch(job);
  ASSERT_EQ(batch.fields.size(), ds.fields.size());
  for (std::size_t i = 0; i < ds.fields.size(); ++i)
    EXPECT_EQ(batch.fields[i].archive,
              single_field_bytes(ds.fields[i], target, {}))
        << ds.fields[i].name;

  TempDir dir("facade_stream");
  fpsnr::BatchJob stream_job = job;
  stream_job.keep_archives = false;
  stream_job.stream_dir = dir.str();
  const auto streamed = session.compress_batch(stream_job);
  for (std::size_t i = 0; i < ds.fields.size(); ++i)
    EXPECT_EQ(read_all(streamed.fields[i].archive_path),
              single_field_bytes(ds.fields[i], target, {}))
        << ds.fields[i].name;
}
