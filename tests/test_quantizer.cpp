// Unit tests for the linear-scaling quantizer and the Lorenzo predictor.
#include "sz/lorenzo.h"
#include "sz/quantizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

namespace sz = fpsnr::sz;

TEST(Quantizer, MidpointReconstructionWithinBound) {
  const double eb = 0.01;
  const sz::LinearQuantizer q(eb, 1024);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  for (int i = 0; i < 10000; ++i) {
    const double d = dist(rng);
    const auto code = q.quantize(d);
    if (code != 0) {
      EXPECT_LE(std::abs(q.dequantize(code) - d), eb * (1 + 1e-12));
    }
  }
}

TEST(Quantizer, ZeroErrorMapsToCenterCode) {
  const sz::LinearQuantizer q(0.5, 256);
  EXPECT_EQ(q.quantize(0.0), q.radius());
  EXPECT_DOUBLE_EQ(q.dequantize(q.radius()), 0.0);
}

TEST(Quantizer, BinWidthIsTwiceBound) {
  const sz::LinearQuantizer q(0.25, 64);
  EXPECT_DOUBLE_EQ(q.bin_width(), 0.5);
  // Neighbouring codes reconstruct bin_width apart.
  EXPECT_DOUBLE_EQ(q.dequantize(q.radius() + 1) - q.dequantize(q.radius()), 0.5);
}

TEST(Quantizer, OutOfRangeIsUnpredictable) {
  const sz::LinearQuantizer q(1.0, 8);  // radius 4, codes 1..7
  EXPECT_EQ(q.quantize(1000.0), 0u);
  EXPECT_EQ(q.quantize(-1000.0), 0u);
  // Just inside the representable range.
  EXPECT_NE(q.quantize(3.0 * 2.0), 0u);   // index +3 -> code 7
  EXPECT_EQ(q.quantize(4.0 * 2.0), 0u);   // index +4 -> overflow
  EXPECT_NE(q.quantize(-3.0 * 2.0), 0u);  // index -3 -> code 1
  EXPECT_EQ(q.quantize(-4.0 * 2.0), 0u);  // index -4 would be code 0
}

TEST(Quantizer, NonFiniteUnpredictable) {
  const sz::LinearQuantizer q(1.0, 64);
  EXPECT_EQ(q.quantize(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(q.quantize(std::numeric_limits<double>::infinity()), 0u);
}

TEST(Quantizer, InvalidConstructionThrows) {
  EXPECT_THROW(sz::LinearQuantizer(0.0, 64), std::invalid_argument);
  EXPECT_THROW(sz::LinearQuantizer(-1.0, 64), std::invalid_argument);
  EXPECT_THROW(sz::LinearQuantizer(1.0, 2), std::invalid_argument);
  EXPECT_THROW(sz::LinearQuantizer(1.0, 65), std::invalid_argument);
}

TEST(Quantizer, BadDequantizeThrows) {
  const sz::LinearQuantizer q(1.0, 64);
  EXPECT_THROW(q.dequantize(0), std::invalid_argument);
  EXPECT_THROW(q.dequantize(64), std::invalid_argument);
}

// ---- Lorenzo ----------------------------------------------------------------

TEST(Lorenzo, FirstPointPredictsZero) {
  const std::vector<float> recon(8, 0.0f);
  const sz::LorenzoPredictor<float> p(recon.data(), 8);
  EXPECT_DOUBLE_EQ(p.predict(0, 0, 0, 0), 0.0);
}

TEST(Lorenzo, OneDimensionalUsesPrevious) {
  const std::vector<float> recon = {3.0f, 5.0f, 0.0f};
  const sz::LorenzoPredictor<float> p(recon.data(), 3);
  EXPECT_DOUBLE_EQ(p.predict(1, 1, 0, 0), 3.0);
  EXPECT_DOUBLE_EQ(p.predict(2, 2, 0, 0), 5.0);
}

TEST(Lorenzo, TwoDimensionalInclusionExclusion) {
  // 2x2 grid [a b; c ?]: prediction for ? is b + c - a.
  const std::vector<float> recon = {1.0f, 4.0f, 2.0f, 0.0f};
  const sz::LorenzoPredictor<float> p(recon.data(), 2, 2, 1, 2);
  EXPECT_DOUBLE_EQ(p.predict(3, 1, 1, 0), 4.0 + 2.0 - 1.0);
  // First row degrades to 1-D (west only).
  EXPECT_DOUBLE_EQ(p.predict(1, 0, 1, 0), 1.0);
  // First column uses north only.
  EXPECT_DOUBLE_EQ(p.predict(2, 1, 0, 0), 1.0);
}

TEST(Lorenzo, ExactForPlanarData2D) {
  // Order-1 Lorenzo reproduces affine fields exactly (away from borders).
  const std::size_t n0 = 8, n1 = 9;
  std::vector<double> recon(n0 * n1);
  for (std::size_t i = 0; i < n0; ++i)
    for (std::size_t j = 0; j < n1; ++j)
      recon[i * n1 + j] = 3.0 + 2.0 * static_cast<double>(i) - 1.5 * static_cast<double>(j);
  const sz::LorenzoPredictor<double> p(recon.data(), n0, n1, 1, 2);
  for (std::size_t i = 1; i < n0; ++i)
    for (std::size_t j = 1; j < n1; ++j)
      EXPECT_NEAR(p.predict(i * n1 + j, i, j, 0), recon[i * n1 + j], 1e-12);
}

TEST(Lorenzo, ExactForTrilinearData3D) {
  const std::size_t n0 = 5, n1 = 6, n2 = 7;
  std::vector<double> recon(n0 * n1 * n2);
  auto f = [](double x, double y, double z) {
    return 1.0 + 2.0 * x - 3.0 * y + 0.5 * z + 0.25 * x * y - 0.75 * y * z +
           1.5 * x * z;  // trilinear terms are reproduced exactly
  };
  for (std::size_t i = 0; i < n0; ++i)
    for (std::size_t j = 0; j < n1; ++j)
      for (std::size_t k = 0; k < n2; ++k)
        recon[(i * n1 + j) * n2 + k] = f(static_cast<double>(i),
                                         static_cast<double>(j),
                                         static_cast<double>(k));
  const sz::LorenzoPredictor<double> p(recon.data(), n0, n1, n2, 3);
  for (std::size_t i = 1; i < n0; ++i)
    for (std::size_t j = 1; j < n1; ++j)
      for (std::size_t k = 1; k < n2; ++k) {
        const std::size_t idx = (i * n1 + j) * n2 + k;
        // Note: x*y*z term would break exactness; f has none.
        EXPECT_NEAR(p.predict(idx, i, j, k), recon[idx], 1e-9);
      }
}

TEST(Lorenzo, BoundaryFacesDegradeGracefully3D) {
  const std::size_t n = 4;
  std::vector<float> recon(n * n * n, 2.0f);
  const sz::LorenzoPredictor<float> p(recon.data(), n, n, n, 3);
  // Interior of a constant field predicts the constant.
  EXPECT_DOUBLE_EQ(p.predict((1 * n + 1) * n + 1, 1, 1, 1), 2.0);
  // Origin predicts 0 (no neighbours).
  EXPECT_DOUBLE_EQ(p.predict(0, 0, 0, 0), 0.0);
  // Edge point (0,0,k) behaves like 1-D.
  EXPECT_DOUBLE_EQ(p.predict(1, 0, 0, 1), 2.0);
}
