// Unit tests for io::BitWriter / io::BitReader.
#include "io/bitstream.h"

#include <gtest/gtest.h>

#include <random>

namespace io = fpsnr::io;

TEST(BitStream, SingleBitsRoundTrip) {
  io::BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true, false, true};
  for (bool b : pattern) w.write_bit(b);
  const auto bytes = w.take();
  io::BitReader r(bytes);
  for (bool b : pattern) EXPECT_EQ(r.read_bit(), b);
}

TEST(BitStream, MultiBitValuesRoundTrip) {
  io::BitWriter w;
  w.write_bits(0b101, 3);
  w.write_bits(0xFFFF, 16);
  w.write_bits(0, 7);
  w.write_bits(0x123456789ABCDEFull, 60);
  const auto bytes = w.take();
  io::BitReader r(bytes);
  EXPECT_EQ(r.read_bits(3), 0b101u);
  EXPECT_EQ(r.read_bits(16), 0xFFFFu);
  EXPECT_EQ(r.read_bits(7), 0u);
  EXPECT_EQ(r.read_bits(60), 0x123456789ABCDEFull);
}

TEST(BitStream, ZeroBitWriteIsNoop) {
  io::BitWriter w;
  w.write_bits(0xFF, 0);
  EXPECT_EQ(w.bit_count(), 0u);
  w.write_bits(1, 1);
  EXPECT_EQ(w.bit_count(), 1u);
}

TEST(BitStream, ValueMaskedToWidth) {
  io::BitWriter w;
  w.write_bits(0xFF, 4);  // only low 4 bits kept
  const auto bytes = w.take();
  io::BitReader r(bytes);
  EXPECT_EQ(r.read_bits(4), 0xFu);
  EXPECT_EQ(r.read_bits(4), 0u);  // padding
}

TEST(BitStream, SixtyFourBitValue) {
  io::BitWriter w;
  w.write_bits(~0ull, 64);
  w.write_bits(0x8000000000000001ull, 64);
  const auto bytes = w.take();
  io::BitReader r(bytes);
  EXPECT_EQ(r.read_bits(64), ~0ull);
  EXPECT_EQ(r.read_bits(64), 0x8000000000000001ull);
}

TEST(BitStream, AlignToByte) {
  io::BitWriter w;
  w.write_bits(1, 1);
  w.align_to_byte();
  EXPECT_EQ(w.bit_count(), 8u);
  w.write_bits(0xAB, 8);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[1], 0xAB);
}

TEST(BitStream, WriteBytesRequiresAlignment) {
  io::BitWriter w;
  w.write_bit(true);
  const std::uint8_t raw[] = {1, 2, 3};
  EXPECT_THROW(w.write_bytes(raw), io::StreamError);
  w.align_to_byte();
  EXPECT_NO_THROW(w.write_bytes(raw));
}

TEST(BitStream, ReadPastEndThrows) {
  io::BitWriter w;
  w.write_bits(0x7, 3);
  const auto bytes = w.take();  // 1 byte after padding
  io::BitReader r(bytes);
  EXPECT_NO_THROW(r.read_bits(8));
  EXPECT_THROW(r.read_bits(1), io::StreamError);
}

TEST(BitStream, ReadBytesRoundTrip) {
  io::BitWriter w;
  const std::uint8_t raw[] = {9, 8, 7, 6};
  w.write_bytes(raw);
  const auto bytes = w.take();
  io::BitReader r(bytes);
  const auto back = r.read_bytes(4);
  EXPECT_EQ(back, std::vector<std::uint8_t>({9, 8, 7, 6}));
  EXPECT_THROW(r.read_bytes(1), io::StreamError);
}

TEST(BitStream, BitPositionTracking) {
  io::BitWriter w;
  w.write_bits(0xFFFF, 13);
  const auto bytes = w.take();
  io::BitReader r(bytes);
  EXPECT_EQ(r.bit_size(), 16u);  // padded to 2 bytes
  r.read_bits(5);
  EXPECT_EQ(r.bit_position(), 5u);
  EXPECT_EQ(r.bits_remaining(), 11u);
}

TEST(BitStream, RandomizedRoundTrip) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<std::uint64_t, unsigned>> writes;
    io::BitWriter w;
    for (int i = 0; i < 500; ++i) {
      const unsigned nbits = static_cast<unsigned>(rng() % 64) + 1;
      const std::uint64_t value =
          nbits == 64 ? rng() : rng() & ((1ull << nbits) - 1);
      writes.emplace_back(value, nbits);
      w.write_bits(value, nbits);
    }
    const auto bytes = w.take();
    io::BitReader r(bytes);
    for (const auto& [value, nbits] : writes)
      ASSERT_EQ(r.read_bits(nbits), value);
  }
}

TEST(BitStream, TooWideWriteThrows) {
  io::BitWriter w;
  EXPECT_THROW(w.write_bits(0, 65), io::StreamError);
  io::BitReader r({});
  EXPECT_THROW(r.read_bits(65), io::StreamError);
}
