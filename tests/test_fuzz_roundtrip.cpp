// Property-based round-trip fuzzer for the block pipeline.
//
// A seeded (fully deterministic) sweep draws random shapes — including
// pancake fields with 1-element dims — random content classes, every
// registered codec, both budget modes, and random block sizes, then checks
// the properties the engine contracts promise:
//
//   P1  byte-determinism: compress() emits identical bytes at 1/2/8 threads
//   P2  streaming identity: compress_to_file() writes those same bytes
//   P3  round-trip: decompress returns the original shape, and the values
//       respect the quality contract (exact for store/constant fields;
//       pointwise |err| <= bound for the predictor codecs; PSNR adherence
//       for fixed-PSNR requests)
//   P4  exact PSNR reporting: the container-recorded per-block SSE implies
//       the same PSNR as an independent recomputation from the raw data,
//       to 1e-6 dB
//   P5  random access: any single decoded block equals the corresponding
//       slab of the full decode
//
// The fixed seed makes failures reproducible: every case logs its
// parameters through SCOPED_TRACE.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "fpsnr/fpsnr.h"

#include "core/pipeline.h"
#include "data/synth.h"
#include "io/streaming_archive.h"
#include "metrics/metrics.h"
#include "simd/dispatch.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace io = fpsnr::io;
namespace metrics = fpsnr::metrics;
namespace simd = fpsnr::simd;

namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 20260731;  // fixed: failures must reproduce
constexpr int kIterations = 48;

enum class Content { Smooth, Noise, Constant, Sparse };

std::vector<float> make_content(Content kind, const data::Dims& dims,
                                std::uint64_t seed) {
  switch (kind) {
    case Content::Smooth: {
      auto v = data::smoothed_noise(dims, seed, 2, 2);
      data::rescale(v, -4.0f, 7.0f);
      return v;
    }
    case Content::Noise: {
      auto v = data::white_noise(dims.count(), seed);
      data::rescale(v, -2.0f, 2.0f);
      return v;
    }
    case Content::Constant:
      return std::vector<float>(dims.count(), -3.75f);
    case Content::Sparse: {
      // Mostly flat with occasional spikes — the donor/receiver pattern
      // adaptive budgets exploit, and a stress case for outlier handling.
      auto v = std::vector<float>(dims.count(), 0.0f);
      std::mt19937_64 rng(seed);
      std::uniform_real_distribution<float> mag(-5.0f, 5.0f);
      const std::size_t spikes = 1 + dims.count() / 17;
      for (std::size_t s = 0; s < spikes; ++s)
        v[rng() % dims.count()] = mag(rng);
      return v;
    }
  }
  return {};
}

data::Dims random_dims(std::mt19937_64& rng) {
  // Hand-picked awkward shapes (pancakes, single values, primes) mixed
  // with uniformly random ones.
  static const std::vector<data::Dims> kAwkward = {
      data::Dims{1},         data::Dims{2},        data::Dims{613},
      data::Dims{1, 97},     data::Dims{97, 1},    data::Dims{1, 1, 89},
      data::Dims{89, 1, 1},  data::Dims{1, 53, 1}, data::Dims{2, 2, 2},
      data::Dims{3, 1, 127},
  };
  if (rng() % 3 == 0) return kAwkward[rng() % kAwkward.size()];
  const std::size_t rank = 1 + rng() % 3;
  std::vector<std::size_t> e(rank);
  std::size_t budget = 20000;
  for (std::size_t d = 0; d < rank; ++d) {
    e[d] = 1 + rng() % 40;
    budget = std::max<std::size_t>(1, budget / e[d]);
  }
  // Keep fields small enough for the sanitizer jobs.
  e[0] = std::min<std::size_t>(e[0], std::max<std::size_t>(1, budget));
  return data::Dims(std::move(e));
}

struct FuzzCase {
  data::Dims dims{1};
  Content content = Content::Smooth;
  core::Engine engine = core::Engine::SzLorenzo;
  core::BudgetMode budget = core::BudgetMode::Uniform;
  double target_db = 60.0;
  std::vector<std::size_t> tile;  ///< empty = auto near-cubic tile
  std::uint64_t content_seed = 0;

  std::string describe() const {
    std::ostringstream os;
    os << "dims=";
    for (std::size_t d = 0; d < dims.rank(); ++d)
      os << (d ? "x" : "") << dims[d];
    os << " content=" << static_cast<int>(content)
       << " engine=" << static_cast<int>(engine)
       << " budget=" << (budget == core::BudgetMode::Adaptive ? "adaptive"
                                                              : "uniform")
       << " target=" << target_db << " tile=";
    if (tile.empty()) os << "auto";
    for (std::size_t d = 0; d < tile.size(); ++d)
      os << (d ? "x" : "") << tile[d];
    os << " seed=" << content_seed;
    return os.str();
  }
};

FuzzCase draw_case(std::mt19937_64& rng, int iteration) {
  FuzzCase c;
  c.dims = random_dims(rng);
  c.content = static_cast<Content>(rng() % 4);
  // Round-robin over every registered codec so all of them see every
  // content class across the sweep.
  const core::Engine engines[] = {core::Engine::SzLorenzo,
                                  core::Engine::TransformHaar,
                                  core::Engine::TransformDct,
                                  core::Engine::Interp,
                                  core::Engine::ZfpRate,
                                  core::Engine::Store};
  c.engine = engines[iteration % 6];
  c.budget = rng() % 2 ? core::BudgetMode::Adaptive : core::BudgetMode::Uniform;
  const double targets[] = {40.0, 60.0, 80.0};
  c.target_db = targets[rng() % 3];
  // Half the cases use the auto tile; the rest draw a random full-rank
  // tile (slabs fall out whenever the trailing extents hit the dims).
  if (rng() % 2)
    for (std::size_t d = 0; d < c.dims.rank(); ++d)
      c.tile.push_back(1 + rng() % c.dims[d]);
  c.content_seed = rng();
  return c;
}

core::CompressOptions options_for(const FuzzCase& c, std::size_t threads) {
  core::CompressOptions opts;
  opts.engine = c.engine;
  opts.budget = c.budget;
  opts.parallel.block_pipeline = true;
  opts.parallel.threads = threads;
  opts.parallel.tile = c.tile;
  return opts;
}

bool pointwise_engine(core::Engine e) {
  return e == core::Engine::SzLorenzo || e == core::Engine::Interp ||
         e == core::Engine::Store;
}

/// The same case expressed through the public Session facade.
fpsnr::Session session_for(const FuzzCase& c, std::size_t threads) {
  fpsnr::SessionOptions opts;
  opts.engine = std::string(core::CodecRegistry::instance()
                                .at(static_cast<core::CodecId>(c.engine))
                                .name());
  opts.budget =
      c.budget == core::BudgetMode::Adaptive ? "adaptive" : "uniform";
  opts.threads = threads;
  opts.tile = fpsnr::TileShape(c.tile);
  return fpsnr::Session(std::move(opts));
}

}  // namespace

TEST(FuzzRoundTrip, SeededSweepHoldsAllPipelineProperties) {
  std::mt19937_64 rng(kSeed);
  const auto tmp = fs::temp_directory_path() / "fpsnr-fuzz-roundtrip.fpbk";

  for (int it = 0; it < kIterations; ++it) {
    const FuzzCase c = draw_case(rng, it);
    SCOPED_TRACE("iteration " + std::to_string(it) + ": " + c.describe());
    const auto values = make_content(c.content, c.dims, c.content_seed);
    const auto request = core::ControlRequest::fixed_psnr(c.target_db);
    const std::span<const float> span(values);

    // P1: thread-count byte-determinism.
    const auto r1 = core::compress_blocked<float>(span, c.dims, request,
                                                  options_for(c, 1));
    const auto r2 = core::compress_blocked<float>(span, c.dims, request,
                                                  options_for(c, 2));
    const auto r8 = core::compress_blocked<float>(span, c.dims, request,
                                                  options_for(c, 8));
    ASSERT_EQ(r1.stream, r2.stream);
    ASSERT_EQ(r1.stream, r8.stream);

    // P7: SIMD-backend byte-identity — the archive must not depend on
    // which ISA encoded it. Rotate the forced backend across iterations so
    // every codec/content/shape cell eventually runs on every backend this
    // host supports (scalar-only hosts just re-prove determinism).
    {
      const auto backends = simd::supported_backends();
      const simd::Backend forced = backends[it % backends.size()];
      ASSERT_TRUE(simd::force_backend(forced));
      const auto rb = core::compress_blocked<float>(span, c.dims, request,
                                                    options_for(c, 2));
      simd::reset_backend();
      ASSERT_EQ(rb.stream, r1.stream)
          << "backend " << simd::backend_name(forced)
          << " produced different archive bytes";
    }

    // P2: streaming writer emits the identical container.
    core::compress_to_file<float>(span, c.dims, request, options_for(c, 4),
                                  tmp.string());
    std::ifstream in(tmp, std::ios::binary);
    const std::vector<std::uint8_t> file_bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    ASSERT_EQ(file_bytes, r1.stream);
    fs::remove(tmp);

    // P6: the public Session facade emits the identical archive (it runs
    // the same engine; this property pins the equivalence for every drawn
    // shape/codec/budget combination).
    const auto facade = session_for(c, 2).compress(
        fpsnr::Source::memory(span, c.dims.extents),
        fpsnr::FixedPsnr{c.target_db}, fpsnr::Sink::memory());
    ASSERT_EQ(facade.archive, r1.stream);

    // P3: round-trip and the quality contract.
    const auto out = core::decompress_blocked<float>(r1.stream, 2);
    ASSERT_EQ(out.dims, c.dims);
    ASSERT_EQ(out.values.size(), values.size());
    const auto info = core::inspect_block_stream(r1.stream);
    const auto report = metrics::compare<float>(values, out.values);
    if (c.engine == core::Engine::Store || c.content == Content::Constant) {
      EXPECT_EQ(out.values, values);
    } else {
      if (pointwise_engine(c.engine)) {
        // Adaptive budgets widen a block's bound to at most 4x the base.
        const double bound =
            info.eb_abs *
            (c.budget == core::BudgetMode::Adaptive ? 4.0 : 1.0);
        EXPECT_LE(report.max_abs_error, bound * (1.0 + 1e-12));
      }
      // The Eq. 6 model is an average-case equality, so measured PSNR may
      // sit under the target by a content-dependent fraction of a dB; 2 dB
      // covers every codec/content pairing while still catching real
      // budget-accounting bugs (which miss by far more).
      EXPECT_GE(report.psnr_db, c.target_db - 2.0);
    }

    // P4: container-recorded PSNR is exact.
    ASSERT_EQ(info.version, 3);
    if (std::isinf(report.psnr_db))
      EXPECT_TRUE(std::isinf(info.achieved_psnr_db));
    else
      EXPECT_NEAR(info.achieved_psnr_db, report.psnr_db, 1e-6);

    // P5: random access agrees with the full decode — for ANY tile shape.
    // Recompute block b's region from the header geometry (C-order grid,
    // last axis fastest) and walk it with an odometer.
    const std::size_t b = rng() % info.block_count;
    const auto block = core::decompress_block<float>(r1.stream, b);
    const std::size_t rank = c.dims.rank();
    ASSERT_EQ(info.tile.size(), rank);
    std::vector<std::size_t> grid(rank), start(rank), ext(rank),
        stride(rank, 1);
    for (std::size_t a = 0; a < rank; ++a)
      grid[a] = (c.dims[a] + info.tile[a] - 1) / info.tile[a];
    for (std::size_t a = rank - 1; a-- > 0;)
      stride[a] = stride[a + 1] * c.dims[a + 1];
    std::size_t rem = b;
    for (std::size_t a = rank; a-- > 0;) {
      start[a] = (rem % grid[a]) * info.tile[a];
      rem /= grid[a];
      ext[a] = std::min(info.tile[a], c.dims[a] - start[a]);
    }
    std::size_t count = 1;
    for (std::size_t a = 0; a < rank; ++a) count *= ext[a];
    ASSERT_EQ(block.values.size(), count);
    std::vector<std::size_t> idx(rank, 0);
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t off = 0;
      for (std::size_t a = 0; a < rank; ++a)
        off += (start[a] + idx[a]) * stride[a];
      ASSERT_EQ(block.values[i], out.values[off])
          << "block " << b << " value " << i;
      for (std::size_t a = rank; a-- > 0;) {
        if (++idx[a] < ext[a]) break;
        idx[a] = 0;
      }
    }
  }
}

TEST(FuzzRoundTrip, DoubleScalarSweep) {
  // A smaller double-precision pass over the same properties.
  std::mt19937_64 rng(kSeed ^ 0xD0B1E);
  for (int it = 0; it < 6; ++it) {
    FuzzCase c = draw_case(rng, it);
    SCOPED_TRACE("double iteration " + std::to_string(it) + ": " +
                 c.describe());
    const auto fvalues = make_content(c.content, c.dims, c.content_seed);
    const std::vector<double> values(fvalues.begin(), fvalues.end());
    const auto request = core::ControlRequest::fixed_psnr(c.target_db);
    const std::span<const double> span(values);

    const auto r1 = core::compress_blocked<double>(span, c.dims, request,
                                                   options_for(c, 1));
    const auto r8 = core::compress_blocked<double>(span, c.dims, request,
                                                   options_for(c, 8));
    ASSERT_EQ(r1.stream, r8.stream);

    const auto out = core::decompress_blocked<double>(r1.stream, 2);
    ASSERT_EQ(out.dims, c.dims);
    const auto report = metrics::compare<double>(values, out.values);
    const auto info = core::inspect_block_stream(r1.stream);
    if (c.engine == core::Engine::Store || c.content == Content::Constant)
      EXPECT_EQ(out.values, values);
    else
      EXPECT_GE(report.psnr_db, c.target_db - 2.0);
    if (std::isinf(report.psnr_db))
      EXPECT_TRUE(std::isinf(info.achieved_psnr_db));
    else
      EXPECT_NEAR(info.achieved_psnr_db, report.psnr_db, 1e-6);
  }
}

TEST(FuzzRoundTrip, FixedRateSweep) {
  // The per-block rate search is data-driven iteration — the property most
  // worth fuzzing is that it stays deterministic across thread counts and
  // emits decodable archives for awkward shapes and content classes.
  std::mt19937_64 rng(kSeed ^ 0xF1CED);
  for (int it = 0; it < 10; ++it) {
    FuzzCase c = draw_case(rng, it);
    if (c.engine == core::Engine::Store) c.engine = core::Engine::SzLorenzo;
    const double bits = 4.0 + static_cast<double>(rng() % 9);
    SCOPED_TRACE("rate iteration " + std::to_string(it) + " bits=" +
                 std::to_string(bits) + ": " + c.describe());
    const auto values = make_content(c.content, c.dims, c.content_seed);
    const std::span<const float> span(values);
    const auto request = core::ControlRequest::fixed_rate(bits);

    const auto r1 = core::compress_blocked<float>(span, c.dims, request,
                                                  options_for(c, 1));
    const auto r8 = core::compress_blocked<float>(span, c.dims, request,
                                                  options_for(c, 8));
    ASSERT_EQ(r1.stream, r8.stream);

    const auto facade = session_for(c, 2).compress(
        fpsnr::Source::memory(span, c.dims.extents), fpsnr::FixedRate{bits},
        fpsnr::Sink::memory());
    ASSERT_EQ(facade.archive, r1.stream);

    const auto out = core::decompress_blocked<float>(r1.stream, 2);
    ASSERT_EQ(out.dims, c.dims);
    const auto info = core::inspect_block_stream(r1.stream);
    EXPECT_EQ(info.control_mode, core::ControlMode::FixedRate);
    // The recorded PSNR stays exact in rate mode too.
    const auto report = metrics::compare<float>(values, out.values);
    if (std::isinf(report.psnr_db))
      EXPECT_TRUE(std::isinf(info.achieved_psnr_db));
    else
      EXPECT_NEAR(info.achieved_psnr_db, report.psnr_db, 1e-6);
  }
}
