// Tests for the block linear-regression predictor and the hybrid
// (SZ 2.x-style) codec mode built on it.
#include "sz/regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "data/synth.h"
#include "metrics/metrics.h"
#include "sz/codec.h"

namespace sz = fpsnr::sz;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;

TEST(Regression, ExactOnLinearBlock2D) {
  // f = 2 + 3*i - 0.5*j is recovered exactly by the least-squares fit.
  const data::Dims dims{6, 6};
  std::vector<double> v(36);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      v[i * 6 + j] = 2.0 + 3.0 * static_cast<double>(i) - 0.5 * static_cast<double>(j);
  const auto c = sz::fit_block<double>(v, dims, {0, 0, 0}, {6, 6, 1});
  EXPECT_NEAR(c.b[0], 2.0, 1e-12);
  EXPECT_NEAR(c.b[1], 3.0, 1e-12);
  EXPECT_NEAR(c.b[2], -0.5, 1e-12);
  EXPECT_NEAR(c.b[3], 0.0, 1e-12);
  EXPECT_NEAR(sz::block_abs_error<double>(v, dims, {0, 0, 0}, {6, 6, 1}, c), 0.0,
              1e-12);
}

TEST(Regression, ExactOnLinearBlock3D) {
  const data::Dims dims{6, 6, 6};
  std::vector<double> v(216);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      for (std::size_t k = 0; k < 6; ++k)
        v[idx++] = -1.0 + 0.25 * static_cast<double>(i) + 1.5 * static_cast<double>(j) -
                   2.0 * static_cast<double>(k);
  const auto c = sz::fit_block<double>(v, dims, {0, 0, 0}, {6, 6, 6});
  EXPECT_NEAR(c.b[1], 0.25, 1e-12);
  EXPECT_NEAR(c.b[2], 1.5, 1e-12);
  EXPECT_NEAR(c.b[3], -2.0, 1e-12);
}

TEST(Regression, InteriorBlockOffsetsHandled) {
  // The fit is relative to the block origin; an interior block of a global
  // linear field has the same slopes but a shifted intercept.
  const data::Dims dims{12, 12};
  std::vector<float> v(144);
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j)
      v[i * 12 + j] = static_cast<float>(10.0 + 1.0 * i + 2.0 * j);
  const auto c = sz::fit_block<float>(v, dims, {6, 6, 0}, {6, 6, 1});
  EXPECT_NEAR(c.b[0], 10.0 + 6.0 + 12.0, 1e-4);
  EXPECT_NEAR(c.b[1], 1.0, 1e-5);
  EXPECT_NEAR(c.b[2], 2.0, 1e-5);
}

TEST(Regression, PartialEdgeBlock) {
  const data::Dims dims{8};
  std::vector<double> v(8);
  for (std::size_t i = 0; i < 8; ++i) v[i] = 1.0 + 4.0 * static_cast<double>(i);
  // Tail block of 2 elements starting at 6.
  const auto c = sz::fit_block<double>(v, dims, {6, 0, 0}, {2, 1, 1});
  EXPECT_NEAR(c.b[0], 25.0, 1e-12);
  EXPECT_NEAR(c.b[1], 4.0, 1e-12);
}

TEST(Regression, DegenerateSingleLineAxis) {
  // Extent-1 axes get zero slope, not NaN.
  const data::Dims dims{1, 6};
  std::vector<double> v = {0, 1, 2, 3, 4, 5};
  const auto c = sz::fit_block<double>(v, dims, {0, 0, 0}, {1, 6, 1});
  EXPECT_EQ(c.b[1], 0.0);
  EXPECT_NEAR(c.b[2], 1.0, 1e-12);
}

TEST(Regression, QuantizeCoeffsSnapsToLattice) {
  sz::RegressionCoeffs c;
  c.b = {1.26, -0.13, 0.0, 7.49};
  const auto q = sz::quantize_coeffs(c, 0.5);
  EXPECT_DOUBLE_EQ(q.b[0], 1.5);
  EXPECT_DOUBLE_EQ(q.b[1], 0.0);
  EXPECT_DOUBLE_EQ(q.b[3], 7.5);
  EXPECT_THROW(sz::quantize_coeffs(c, 0.0), std::invalid_argument);
}

TEST(Regression, BlockOutsideGridThrows) {
  const data::Dims dims{6, 6};
  std::vector<float> v(36, 0.0f);
  EXPECT_THROW(sz::fit_block<float>(v, dims, {3, 0, 0}, {6, 6, 1}),
               std::invalid_argument);
  EXPECT_THROW(sz::fit_block<float>(v, dims, {0, 0, 0}, {0, 6, 1}),
               std::invalid_argument);
}

// ---- hybrid codec mode -------------------------------------------------

namespace {

sz::Params hybrid_params(double bound) {
  sz::Params p;
  p.mode = sz::ErrorBoundMode::ValueRangeRelative;
  p.bound = bound;
  p.predictor = sz::Predictor::HybridRegression;
  return p;
}

}  // namespace

class HybridCodec : public ::testing::TestWithParam<int> {};

TEST_P(HybridCodec, BoundHolds) {
  const int rank = GetParam();
  const data::Dims dims = rank == 1   ? data::Dims{997}
                          : rank == 2 ? data::Dims{41, 53}
                                      : data::Dims{13, 14, 15};
  auto values = data::smoothed_noise(dims, 77 + rank, 2, 2);
  data::rescale(values, -3.0f, 8.0f);
  const double vr = metrics::value_range<float>(values);

  const auto stream = sz::compress<float>(values, dims, hybrid_params(1e-4));
  const auto out = sz::decompress<float>(stream);
  ASSERT_EQ(out.dims, dims);
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(values[i]) - out.values[i]),
              1e-4 * vr * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Ranks, HybridCodec, ::testing::Values(1, 2, 3));

TEST(HybridCodecExtra, HeaderRecordsPredictor) {
  const data::Dims dims{24, 24};
  const auto values = data::smoothed_noise(dims, 5, 2, 2);
  const auto stream = sz::compress<float>(values, dims, hybrid_params(1e-3));
  EXPECT_EQ(sz::inspect(stream).predictor, sz::Predictor::HybridRegression);
  sz::Params lorenzo;
  lorenzo.mode = sz::ErrorBoundMode::ValueRangeRelative;
  lorenzo.bound = 1e-3;
  const auto plain = sz::compress<float>(values, dims, lorenzo);
  EXPECT_EQ(sz::inspect(plain).predictor, sz::Predictor::Lorenzo);
}

TEST(HybridCodecExtra, WinsOnNoisyLinearDataAtCoarseBound) {
  // Regression's win case (why SZ 2.x added it): a linear trend buried in
  // point noise. Lorenzo's stencil *sums* several noisy neighbours, so its
  // prediction error is ~2x the noise; the block fit averages the noise
  // away. At a coarse bound the rate difference is visible.
  const data::Dims dims{128, 128};
  const auto noise = data::white_noise(dims.count(), 3);
  std::vector<float> values(dims.count());
  for (std::size_t i = 0; i < 128; ++i)
    for (std::size_t j = 0; j < 128; ++j)
      values[i * 128 + j] = 0.5f * static_cast<float>(i) +
                            0.25f * static_cast<float>(j) +
                            2.0f * noise[i * 128 + j];

  sz::Params lorenzo;
  lorenzo.mode = sz::ErrorBoundMode::ValueRangeRelative;
  lorenzo.bound = 1e-2;
  sz::CompressionInfo li, hi_info;
  (void)sz::compress<float>(values, dims, lorenzo, &li);
  (void)sz::compress<float>(values, dims, hybrid_params(1e-2), &hi_info);
  EXPECT_LT(hi_info.compressed_bytes, li.compressed_bytes);
}

TEST(HybridCodecExtra, PointwiseRelativeComposesWithHybrid) {
  const data::Dims dims{30, 30};
  auto values = data::smoothed_noise(dims, 9, 3, 2);
  data::rescale(values, 1.0f, 50.0f);
  sz::Params p;
  p.mode = sz::ErrorBoundMode::PointwiseRelative;
  p.bound = 0.02;
  p.predictor = sz::Predictor::HybridRegression;
  const auto out = sz::decompress<float>(sz::compress<float>(values, dims, p));
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(out.values[i] - values[i]),
              0.02 * std::abs(values[i]) * (1 + 1e-6));
}

TEST(HybridCodecExtra, DeterministicStream) {
  const data::Dims dims{40, 40};
  const auto values = data::smoothed_noise(dims, 12, 2, 2);
  EXPECT_EQ(sz::compress<float>(values, dims, hybrid_params(1e-4)),
            sz::compress<float>(values, dims, hybrid_params(1e-4)));
}

TEST(HybridCodecExtra, CorruptPlanRejected) {
  const data::Dims dims{24, 24};
  const auto values = data::smoothed_noise(dims, 15, 2, 2);
  auto stream = sz::compress<float>(values, dims, hybrid_params(1e-3));
  // Truncating anywhere must throw, not crash.
  for (std::size_t keep : {stream.size() / 4, stream.size() / 2}) {
    std::vector<std::uint8_t> cut(stream.begin(),
                                  stream.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(sz::decompress<float>(cut), fpsnr::io::StreamError);
  }
}
