// Tests for the autocorrelation / error-whiteness analysis.
#include "metrics/autocorrelation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "core/compressor.h"
#include "data/synth.h"

namespace metrics = fpsnr::metrics;
namespace core = fpsnr::core;
namespace data = fpsnr::data;

TEST(Autocorrelation, LagZeroIsOne) {
  const std::vector<double> s = {1.0, -2.0, 3.0, 0.5};
  const auto acf = metrics::autocorrelation(s, 2);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(Autocorrelation, ConstantSeriesZeroPastLagZero) {
  const std::vector<double> s(50, 3.0);
  const auto acf = metrics::autocorrelation(s, 5);
  for (std::size_t k = 1; k <= 5; ++k) EXPECT_EQ(acf[k], 0.0);
}

TEST(Autocorrelation, WhiteNoiseIsWhite) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> s(20000);
  for (auto& x : s) x = g(rng);
  const auto acf = metrics::autocorrelation(s, 10);
  for (std::size_t k = 1; k <= 10; ++k)
    EXPECT_LT(std::abs(acf[k]), 0.03) << "lag " << k;
}

TEST(Autocorrelation, PeriodicSignalShowsPeriod) {
  std::vector<double> s(1024);
  for (std::size_t i = 0; i < s.size(); ++i)
    s[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 16.0);
  const auto acf = metrics::autocorrelation(s, 20);
  EXPECT_GT(acf[16], 0.9);   // one full period
  EXPECT_LT(acf[8], -0.9);   // half period anti-correlates
}

TEST(Autocorrelation, AlternatingSeries) {
  std::vector<double> s(100);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = (i % 2) ? 1.0 : -1.0;
  const auto acf = metrics::autocorrelation(s, 2);
  EXPECT_NEAR(acf[1], -1.0, 0.05);
  EXPECT_NEAR(acf[2], 1.0, 0.05);
}

TEST(Autocorrelation, ValidationThrows) {
  const std::vector<double> s = {1.0, 2.0};
  EXPECT_THROW(metrics::autocorrelation(s, 2), std::invalid_argument);
  EXPECT_THROW(metrics::autocorrelation({}, 0), std::invalid_argument);
}

TEST(Autocorrelation, ErrorSeriesBasic) {
  const std::vector<float> a = {1.0f, 2.0f};
  const std::vector<float> b = {0.5f, 2.5f};
  const auto err = metrics::error_series<float>(a, b);
  EXPECT_DOUBLE_EQ(err[0], 0.5);
  EXPECT_DOUBLE_EQ(err[1], -0.5);
  const std::vector<float> c(3, 0.0f);
  EXPECT_THROW(metrics::error_series<float>(a, c), std::invalid_argument);
}

TEST(Autocorrelation, CompressionErrorsAreNearlyWhite) {
  // The quality property behind using PSNR as the control target: midpoint
  // uniform quantization decorrelates the error field. The compression
  // error of a smooth field must be far whiter than the field itself.
  const data::Dims dims{96, 96};
  auto values = data::smoothed_noise(dims, 21, 4, 2);
  data::rescale(values, 0.0f, 100.0f);

  const auto r = core::compress<float>(values, dims,
                                       core::ControlRequest::fixed_psnr(60.0));
  const auto out = core::decompress<float>(r.stream);

  const double err_white =
      metrics::error_whiteness<float>(values, out.values, 16);
  // The signal itself is strongly autocorrelated...
  std::vector<double> signal(values.begin(), values.end());
  const auto signal_acf = metrics::autocorrelation(signal, 1);
  EXPECT_GT(signal_acf[1], 0.9);
  // ...while the compression error shows far weaker structure.
  EXPECT_LT(err_white, 0.5);
  EXPECT_LT(err_white, signal_acf[1]);
}
