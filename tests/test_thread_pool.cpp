// Unit tests for parallel::ThreadPool / parallel_for and the process-wide
// shared pool (parallel/shared_pool.h).
#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "parallel/shared_pool.h"

namespace parallel = fpsnr::parallel;

TEST(ThreadPool, ExecutesSubmittedTasks) {
  parallel::ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  parallel::ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ManyTasksAllRun) {
  parallel::ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i)
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  parallel::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  parallel::ThreadPool pool(4);
  std::vector<int> hits(500, 0);
  parallel::parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 500);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  parallel::ThreadPool pool(2);
  EXPECT_NO_THROW(parallel::parallel_for(pool, 0, [](std::size_t) {
    FAIL() << "must not be called";
  }));
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  parallel::ThreadPool pool(2);
  EXPECT_THROW(parallel::parallel_for(pool, 10,
                                      [](std::size_t i) {
                                        if (i == 3) throw std::logic_error("x");
                                      }),
               std::logic_error);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> done{0};
  {
    parallel::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&done] { done.fetch_add(1); });
    // Futures intentionally dropped; destructor must still join workers.
  }
  EXPECT_LE(done.load(), 50);
}

// --- process-wide shared pool ------------------------------------------------

TEST(SharedPool, IsOneProcessWideInstance) {
  parallel::ThreadPool& a = parallel::shared_pool();
  parallel::ThreadPool& b = parallel::shared_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

TEST(SharedPool, ParallelForSharedCoversAllIndices) {
  std::vector<int> hits(500, 0);
  parallel::parallel_for_shared(hits.size(), 4,
                                [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(SharedPool, SerialWhenSingleWorkerRequested) {
  // max_workers <= 1 must run inline on the caller — the deterministic
  // serial path the pipeline uses for threads 0/1.
  const auto caller = std::this_thread::get_id();
  parallel::parallel_for_shared(16, 1, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  parallel::parallel_for_shared(0, 8,
                                [](std::size_t) { FAIL() << "count == 0"; });
}

TEST(SharedPool, RethrowsFirstTaskError) {
  EXPECT_THROW(parallel::parallel_for_shared(
                   32, 4,
                   [](std::size_t i) {
                     if (i % 7 == 0) throw std::logic_error("x");
                   }),
               std::logic_error);
}

TEST(SharedPool, NestedLoopsDoNotDeadlock) {
  // Batch fans fields out on the shared pool and every field's pipeline
  // fans blocks out on the same pool; the caller-participates design must
  // survive that nesting even when workers are all busy.
  std::atomic<int> leaves{0};
  parallel::parallel_for_shared(8, 8, [&](std::size_t) {
    parallel::parallel_for_shared(8, 8,
                                  [&](std::size_t) { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(SharedPool, ConcurrencyStaysWithinRequestedCap) {
  std::atomic<int> active{0}, peak{0};
  parallel::parallel_for_shared(64, 3, [&](std::size_t) {
    const int now = active.fetch_add(1) + 1;
    int seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    active.fetch_sub(1);
  });
  EXPECT_LE(peak.load(), 3);
  EXPECT_GE(peak.load(), 1);
}
