// Unit tests for parallel::ThreadPool and parallel_for.
#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace parallel = fpsnr::parallel;

TEST(ThreadPool, ExecutesSubmittedTasks) {
  parallel::ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  parallel::ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ManyTasksAllRun) {
  parallel::ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i)
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  parallel::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  parallel::ThreadPool pool(4);
  std::vector<int> hits(500, 0);
  parallel::parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 500);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  parallel::ThreadPool pool(2);
  EXPECT_NO_THROW(parallel::parallel_for(pool, 0, [](std::size_t) {
    FAIL() << "must not be called";
  }));
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  parallel::ThreadPool pool(2);
  EXPECT_THROW(parallel::parallel_for(pool, 10,
                                      [](std::size_t i) {
                                        if (i == 3) throw std::logic_error("x");
                                      }),
               std::logic_error);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> done{0};
  {
    parallel::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&done] { done.fetch_add(1); });
    // Futures intentionally dropped; destructor must still join workers.
  }
  EXPECT_LE(done.load(), 50);
}
