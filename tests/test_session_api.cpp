// The public fpsnr::Session facade, and the legacy option plumbing it
// wraps.
//
// Facade contract under test here:
//   * every Target × {memory, file, stream} Sink produces archives
//     byte-identical to the legacy core:: entry points (same engine runs
//     underneath), and every Source shape decodes them back;
//   * Target::FixedRate lands within ±5% of the requested bits/value
//     (payload bytes — the quantity the per-block search controls) across
//     the conformance engine matrix;
//   * CodecTuning keys are validated per engine and reach the codec;
//   * the CodecRegistry's names/aliases are the single source of truth for
//     engine selection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>

#include "fpsnr/fpsnr.h"

#include "core/batch.h"
#include "core/compressor.h"
#include "core/pipeline.h"
#include "data/synth.h"
#include "io/archive.h"
#include "metrics/metrics.h"
#include "sz/stream_format.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace sz = fpsnr::sz;
namespace io = fpsnr::io;
namespace fs = std::filesystem;

namespace {

std::vector<float> sample_field(const data::Dims& dims) {
  auto v = data::smoothed_noise(dims, 31, 3, 2);
  data::rescale(v, -2.0f, 5.0f);
  return v;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

fs::path temp_file(const std::string& stem) {
  return fs::temp_directory_path() / ("fpsnr-session-" + stem);
}

core::CompressResult compress_fixed_psnr(std::span<const float> values,
                                         const data::Dims& dims, double target,
                                         const core::CompressOptions& opts = {}) {
  return core::compress<float>(values, dims,
                               core::ControlRequest::fixed_psnr(target), opts);
}

fpsnr::metrics::ErrorReport verify_stream(std::span<const float> values,
                                          std::span<const std::uint8_t> stream) {
  const auto decoded = core::decompress<float>(stream);
  return fpsnr::metrics::compare<float>(values, decoded.values);
}

}  // namespace

TEST(FacadeOptions, PredictorReachesStreamHeader) {
  const data::Dims dims{48, 48};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.sz_predictor = sz::Predictor::HybridRegression;
  const auto r = compress_fixed_psnr(values, dims, 70.0, opts);
  EXPECT_EQ(sz::inspect(r.stream).predictor, sz::Predictor::HybridRegression);
  const auto rep = verify_stream(values, r.stream);
  EXPECT_NEAR(rep.psnr_db, 70.0, 2.0);
}

TEST(FacadeOptions, QuantizationBinsReachStream) {
  const data::Dims dims{32, 32};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.quantization_bins = 1024;
  const auto r = compress_fixed_psnr(values, dims, 60.0, opts);
  EXPECT_EQ(sz::inspect(r.stream).quant_bins, 1024u);
}

TEST(FacadeOptions, BackendChoicesAllDecodeIdentically) {
  const data::Dims dims{40, 40};
  const auto values = sample_field(dims);
  std::vector<float> reference;
  for (auto backend :
       {fpsnr::lossless::Method::Store, fpsnr::lossless::Method::Deflate,
        fpsnr::lossless::Method::Auto}) {
    core::CompressOptions opts;
    opts.backend = backend;
    const auto r = compress_fixed_psnr(values, dims, 75.0, opts);
    const auto out = core::decompress<float>(r.stream);
    if (reference.empty())
      reference = out.values;
    else
      EXPECT_EQ(out.values, reference);
  }
}

class FacadeMatrix
    : public ::testing::TestWithParam<std::tuple<core::Engine, double>> {};

TEST_P(FacadeMatrix, EveryEngineHitsEveryTarget) {
  const auto [engine, target] = GetParam();
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.engine = engine;
  const auto r = compress_fixed_psnr(values, dims, target, opts);
  const auto rep = verify_stream(values, r.stream);
  // Fixed-PSNR contract: never undershoot by more than ~1 dB.
  EXPECT_GT(rep.psnr_db, target - 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FacadeMatrix,
    ::testing::Combine(::testing::Values(core::Engine::SzLorenzo,
                                         core::Engine::TransformHaar,
                                         core::Engine::TransformDct),
                       ::testing::Values(50.0, 80.0, 110.0)));

TEST(FacadeOptions, RegistryOnlyEnginesRouteThroughBlockPipeline) {
  // Interp / ZfpRate / Store have no serial flat-stream path; the facade
  // must emit an FPBK container for them even with no parallel knobs set,
  // and decompress() must dispatch it transparently.
  const data::Dims dims{48, 32};
  const auto values = sample_field(dims);
  for (const core::Engine e :
       {core::Engine::Interp, core::Engine::ZfpRate, core::Engine::Store}) {
    core::CompressOptions opts;
    opts.engine = e;
    const auto r = compress_fixed_psnr(values, dims, 60.0, opts);
    EXPECT_TRUE(core::is_block_stream(r.stream))
        << "engine " << static_cast<int>(e);
    const auto rep = verify_stream(values, r.stream);
    EXPECT_GT(rep.psnr_db, 59.0) << "engine " << static_cast<int>(e);
  }
}

TEST(FacadeOptions, RegistryNameLookupListsRegisteredCodecs) {
  // The CLI resolves --engine through these lookups; an unknown name must
  // fail with a message naming every registered codec.
  auto& registry = core::CodecRegistry::instance();
  EXPECT_EQ(registry.id_of("sz-lorenzo"), core::kCodecSzLorenzo);
  EXPECT_EQ(registry.id_of("transform-haar"), core::kCodecTransformHaar);
  EXPECT_EQ(registry.id_of("transform-dct"), core::kCodecTransformDct);
  EXPECT_EQ(registry.id_of("interp"), core::kCodecInterp);
  EXPECT_EQ(registry.id_of("zfpr"), core::kCodecZfpRate);
  EXPECT_EQ(registry.id_of("store"), core::kCodecStore);
  EXPECT_EQ(registry.find("interp"), &registry.at(core::kCodecInterp));
  EXPECT_EQ(registry.find("no-such-codec"), nullptr);

  const auto names = registry.names();
  ASSERT_GE(names.size(), 6u);
  try {
    registry.id_of("no-such-codec");
    FAIL() << "unknown codec name must throw";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    for (std::string_view n : names)
      EXPECT_NE(what.find(n), std::string::npos)
          << "error message must list '" << n << "'";
  }
}

TEST(FacadeOptions, AdaptiveBudgetRoutesThroughBlockPipeline) {
  const data::Dims dims{48, 32};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.budget = core::BudgetMode::Adaptive;
  const auto r = compress_fixed_psnr(values, dims, 60.0, opts);
  EXPECT_TRUE(core::is_block_stream(r.stream));
  EXPECT_GT(verify_stream(values, r.stream).psnr_db, 59.0);
}

TEST(FacadeOptions, HybridPredictorIgnoredByTransformEngines) {
  // Transform engines have no Lorenzo/regression stage; the option must be
  // harmless, not an error.
  const data::Dims dims{32, 32};
  const auto values = sample_field(dims);
  core::CompressOptions opts;
  opts.engine = core::Engine::TransformHaar;
  opts.sz_predictor = sz::Predictor::HybridRegression;
  EXPECT_NO_THROW({
    const auto r = compress_fixed_psnr(values, dims, 70.0, opts);
    (void)core::decompress<float>(r.stream);
  });
}

// ---------------------------------------------------------------------------
// Session facade
// ---------------------------------------------------------------------------

namespace {

using fpsnr::BatchJob;
using fpsnr::CompressReport;
using fpsnr::Session;
using fpsnr::SessionOptions;
using fpsnr::Sink;
using fpsnr::Source;
using fpsnr::Target;

/// The Targets the byte-identity sweep covers, with their legacy
/// ControlRequest twins.
struct TargetCase {
  const char* name;
  Target target;
  core::ControlRequest request;
};

std::vector<TargetCase> block_pipeline_targets() {
  return {
      {"fixed_psnr", fpsnr::FixedPsnr{70.0},
       core::ControlRequest::fixed_psnr(70.0)},
      {"fixed_nrmse", fpsnr::FixedNrmse{1e-3},
       core::ControlRequest::fixed_nrmse(1e-3)},
      {"pointwise_abs", fpsnr::PointwiseAbs{0.01},
       core::ControlRequest::absolute(0.01)},
      {"value_range_rel", fpsnr::ValueRangeRel{1e-4},
       core::ControlRequest::relative(1e-4)},
      {"fixed_rate", fpsnr::FixedRate{8.0},
       core::ControlRequest::fixed_rate(8.0)},
  };
}

}  // namespace

TEST(SessionApi, EveryTargetAndEverySinkMatchesLegacyBytes) {
  // The acceptance bar of the facade: for every Target, the memory, file,
  // and stream sinks all emit the byte-exact archive the legacy
  // compress_blocked / compress_to_file free functions emit, and both
  // Source shapes decode it back to the legacy decompress output.
  const data::Dims dims{72, 48};
  const auto values = sample_field(dims);

  SessionOptions sopts;
  sopts.threads = 2;
  sopts.tile = fpsnr::TileShape::slab(16);
  const Session session(sopts);

  core::CompressOptions lopts;
  lopts.parallel.block_pipeline = true;
  lopts.parallel.threads = 2;
  lopts.parallel.tile = {16};

  for (const TargetCase& tc : block_pipeline_targets()) {
    SCOPED_TRACE(tc.name);
    const auto legacy = core::compress_blocked<float>(
        std::span<const float>(values), dims, tc.request, lopts);

    // memory sink
    const auto mem = session.compress(
        Source::memory(std::span<const float>(values), dims.extents),
        tc.target, Sink::memory());
    EXPECT_EQ(mem.archive, legacy.stream);

    // file sink
    const auto file_path = temp_file(std::string(tc.name) + ".fpbk");
    session.compress(
        Source::memory(std::span<const float>(values), dims.extents),
        tc.target, Sink::file(file_path.string()));
    EXPECT_EQ(slurp(file_path.string()), legacy.stream);

    // stream sink (spill-as-they-finish writer)
    const auto stream_path = temp_file(std::string(tc.name) + "-s.fpbk");
    session.compress(
        Source::memory(std::span<const float>(values), dims.extents),
        tc.target, Sink::stream(stream_path.string()));
    EXPECT_EQ(slurp(stream_path.string()), legacy.stream);

    // decode: memory source, file source (mmap), and legacy all agree
    const auto legacy_out = core::decompress_blocked<float>(legacy.stream, 2);
    const auto from_mem = session.decompress(
        Source::memory(std::span<const std::uint8_t>(legacy.stream)));
    EXPECT_EQ(from_mem.f32, legacy_out.values);
    const auto from_file =
        session.decompress(Source::file(stream_path.string()));
    EXPECT_EQ(from_file.f32, legacy_out.values);

    // random-access block decode
    const auto legacy_block = core::decompress_block<float>(legacy.stream, 1);
    const auto block = session.decompress_block(
        Source::file(stream_path.string()), 1);
    EXPECT_EQ(block.f32, legacy_block.values);
    EXPECT_EQ(block.dims[0], legacy_block.dims[0]);

    fs::remove(file_path);
    fs::remove(stream_path);
  }
}

TEST(SessionApi, PointwiseRelMatchesLegacySerialBytes) {
  // Pointwise-relative is the one Target with no block container: the
  // facade runs the serial codec and must emit the legacy flat stream.
  const data::Dims dims{40, 40};
  const auto values = sample_field(dims);
  const Session session;
  const auto legacy = core::compress<float>(
      std::span<const float>(values), dims, core::ControlRequest::pointwise(0.01));
  const auto mem = session.compress(
      Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::PointwiseRel{0.01}, Sink::memory());
  EXPECT_EQ(mem.archive, legacy.stream);
  EXPECT_FALSE(core::is_block_stream(mem.archive));
  const auto out = session.decompress(
      Source::memory(std::span<const std::uint8_t>(mem.archive)));
  EXPECT_EQ(out.f32, core::decompress<float>(legacy.stream).values);
}

TEST(SessionApi, RawFileSourceMatchesMemorySource) {
  const data::Dims dims{32, 32};
  const auto values = sample_field(dims);
  const auto raw_path = temp_file("raw-in.f32");
  {
    std::ofstream out(raw_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(float)));
  }
  const Session session;
  const auto from_mem = session.compress(
      Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::FixedPsnr{70.0}, Sink::memory());
  const auto from_raw =
      session.compress(Source::raw_file(raw_path.string(), dims.extents),
                       fpsnr::FixedPsnr{70.0}, Sink::memory());
  EXPECT_EQ(from_raw.archive, from_mem.archive);
  // Bad geometry is an invalid_argument, like the legacy loaders.
  EXPECT_THROW(session.compress(Source::raw_file(raw_path.string(), {999}),
                                fpsnr::FixedPsnr{70.0}, Sink::memory()),
               std::invalid_argument);
  fs::remove(raw_path);
}

TEST(SessionApi, DoubleFieldsRoundTrip) {
  const data::Dims dims{48, 24};
  const auto f32 = sample_field(dims);
  std::vector<double> values(f32.begin(), f32.end());
  const Session session;
  const auto r = session.compress(
      Source::memory(std::span<const double>(values), dims.extents),
      fpsnr::FixedPsnr{90.0}, Sink::memory());
  const auto out = session.decompress(
      Source::memory(std::span<const std::uint8_t>(r.archive)));
  ASSERT_TRUE(out.is_double());
  ASSERT_EQ(out.f64.size(), values.size());
  const auto legacy = core::decompress<double>(r.archive);
  EXPECT_EQ(out.f64, legacy.values);
}

TEST(SessionApi, FixedRateHitsBudgetAcrossEngineMatrix) {
  // The FixedRate acceptance bar: payload bits/value (the quantity the
  // per-block bisection controls — container header/index overhead is
  // constant per archive, not rate-dependent) lands within ±5% of the
  // request across the conformance engines and two budgets.
  const data::Dims dims{80, 60};
  auto values = data::smoothed_noise(dims, 97, 1, 1);  // mildly compressible
  data::rescale(values, -3.0f, 9.0f);

  for (const char* engine :
       {"sz-lorenzo", "transform-haar", "transform-dct", "interp", "zfpr"}) {
    for (const double bits : {6.0, 10.0}) {
      SCOPED_TRACE(std::string(engine) + " @ " + std::to_string(bits));
      SessionOptions sopts;
      sopts.engine = engine;
      sopts.tile = fpsnr::TileShape::slab(20);
      const Session session(sopts);
      const auto r = session.compress(
          Source::memory(std::span<const float>(values), dims.extents),
          fpsnr::FixedRate{bits}, Sink::memory());

      const auto view = io::open_block_container(r.archive);
      std::size_t payload = 0;
      for (const auto& b : view.blocks) payload += b.size();
      const double payload_rate =
          8.0 * static_cast<double>(payload) / values.size();
      EXPECT_NEAR(payload_rate, bits, 0.05 * bits)
          << "payload " << payload << " bytes";

      // Rate archives decode like any other (per-block streams are
      // self-describing; header eb_abs is 0 by design).
      const auto out = session.decompress(
          Source::memory(std::span<const std::uint8_t>(r.archive)));
      EXPECT_EQ(out.f32.size(), values.size());
      const auto info = session.inspect(
          Source::memory(std::span<const std::uint8_t>(r.archive)));
      EXPECT_EQ(info.target, "fixed-rate");
      EXPECT_DOUBLE_EQ(info.target_value, bits);
      EXPECT_EQ(info.eb_abs, 0.0);
    }
  }
}

TEST(SessionApi, FixedRateSurvivesNonFiniteSamples) {
  // Regression: a single NaN/Inf sample used to make the fixed-rate search
  // throw. value_range goes non-finite, so the search's bisection window
  // (vr * 1e-12 .. vr * 4) and its census reference bound (vr * 1e-4) were
  // all Inf — and fixed_rate_bits_estimate rejects a non-finite error
  // bound with std::invalid_argument before a single block is coded. The
  // search now re-derives its scale from the largest finite |value| in the
  // block and the codecs store the poisoned samples as exact outliers.
  const data::Dims dims{40, 32};
  auto values = sample_field(dims);
  values[7] = std::numeric_limits<float>::quiet_NaN();
  values[513] = std::numeric_limits<float>::infinity();
  values[1000] = -std::numeric_limits<float>::infinity();

  for (const char* engine : {"sz-lorenzo", "zfpr"}) {
    SCOPED_TRACE(engine);
    SessionOptions sopts;
    sopts.engine = engine;
    const Session session(sopts);
    CompressReport r;
    ASSERT_NO_THROW(r = session.compress(
                        Source::memory(std::span<const float>(values),
                                       dims.extents),
                        fpsnr::FixedRate{8.0}, Sink::memory()));
    const auto out = session.decompress(
        Source::memory(std::span<const std::uint8_t>(r.archive)));
    ASSERT_EQ(out.f32.size(), values.size());
    // The Lorenzo path quantizes pointwise, so the non-finite samples come
    // back bit-exact from the outlier store. The transform paths legally
    // smear non-finites across their block (Inf - Inf = NaN in the DCT),
    // so for zfpr only non-finiteness at the poisoned sites is promised.
    if (std::string(engine) == "sz-lorenzo") {
      EXPECT_TRUE(std::isnan(out.f32[7]));
      EXPECT_EQ(out.f32[513], std::numeric_limits<float>::infinity());
      EXPECT_EQ(out.f32[1000], -std::numeric_limits<float>::infinity());
    } else {
      EXPECT_FALSE(std::isfinite(out.f32[7]));
      EXPECT_FALSE(std::isfinite(out.f32[513]));
      EXPECT_FALSE(std::isfinite(out.f32[1000]));
    }
  }
}

TEST(SessionApi, InspectReportsFacadeNames) {
  const data::Dims dims{48, 32};
  const auto values = sample_field(dims);
  const Session session;
  const auto r = session.compress(
      Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::FixedPsnr{75.0}, Sink::memory());
  const auto info = session.inspect(
      Source::memory(std::span<const std::uint8_t>(r.archive)));
  EXPECT_TRUE(info.block_container);
  EXPECT_EQ(info.version, 3);
  EXPECT_EQ(info.codec, "sz-lorenzo");
  EXPECT_EQ(info.target, "fixed-psnr");
  EXPECT_DOUBLE_EQ(info.target_value, 75.0);
  EXPECT_EQ(info.budget, "uniform");
  EXPECT_EQ(info.dims, (std::vector<std::size_t>{48, 32}));
  EXPECT_NEAR(info.achieved_psnr_db, r.achieved_psnr_db, 1e-9);
  EXPECT_EQ(info.archive_bytes, r.archive.size());
}

TEST(SessionApi, TuningKeysAreValidatedPerEngine) {
  // Schema queries come from the same table the session validates against.
  const auto haar = fpsnr::tuning_keys("haar");  // alias resolves too
  bool has_levels = false;
  for (const auto& k : haar) has_levels |= k.key == "levels";
  EXPECT_TRUE(has_levels);
  EXPECT_THROW(fpsnr::tuning_keys("no-such-engine"), std::out_of_range);

  // Unknown key for a known engine: construction-time error.
  SessionOptions bad;
  bad.engine = "transform-haar";
  bad.tuning.set("transform-haar", "dct-block", 16.0);  // a DCT knob
  EXPECT_THROW(Session{bad}, std::invalid_argument);

  // Unknown engine inside the tuning block: also a construction error.
  SessionOptions bad2;
  bad2.tuning.set("no-such-engine", "levels", 2.0);
  EXPECT_THROW(Session{bad2}, std::out_of_range);

  // Unknown engine name itself.
  SessionOptions bad3;
  bad3.engine = "no-such-engine";
  EXPECT_THROW(Session{bad3}, std::out_of_range);

  // Bad budget spelling.
  SessionOptions bad4;
  bad4.budget = "greedy";
  EXPECT_THROW(Session{bad4}, std::invalid_argument);
}

TEST(SessionApi, TuningReachesTheCodec) {
  const data::Dims dims{48, 48};
  const auto values = sample_field(dims);

  // predictor: hybrid-regression flips the per-block sz stream header.
  SessionOptions hybrid;
  hybrid.tuning.set("sz-lorenzo", "predictor", "hybrid");
  const auto h = Session(hybrid).compress(
      Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::FixedPsnr{70.0}, Sink::memory());
  const auto l = Session().compress(
      Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::FixedPsnr{70.0}, Sink::memory());
  EXPECT_NE(h.archive, l.archive);
  // The facade bytes equal the legacy bytes built with the same knob.
  core::CompressOptions lopts;
  lopts.parallel.block_pipeline = true;
  lopts.sz_predictor = sz::Predictor::HybridRegression;
  const auto legacy = core::compress_blocked<float>(
      std::span<const float>(values), dims,
      core::ControlRequest::fixed_psnr(70.0), lopts);
  EXPECT_EQ(h.archive, legacy.stream);

  // quantization-bins reaches the block codec the same way.
  SessionOptions bins;
  bins.tuning.set("sz-lorenzo", "quantization-bins", 1024.0);
  const auto b = Session(bins).compress(
      Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::FixedPsnr{70.0}, Sink::memory());
  core::CompressOptions bopts;
  bopts.parallel.block_pipeline = true;
  bopts.quantization_bins = 1024;
  const auto blegacy = core::compress_blocked<float>(
      std::span<const float>(values), dims,
      core::ControlRequest::fixed_psnr(70.0), bopts);
  EXPECT_EQ(b.archive, blegacy.stream);
}

TEST(SessionApi, EnginesComeFromTheLiveRegistry) {
  const auto engines = Session::engines();
  ASSERT_GE(engines.size(), 6u);
  const auto names = core::CodecRegistry::instance().names();
  ASSERT_EQ(engines.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(engines[i], std::string(names[i]));
  // Aliases select the same codec as primary names.
  SessionOptions alias;
  alias.engine = "dct";
  EXPECT_EQ(Session(alias).options().engine, "dct");
  const data::Dims dims{24, 24};
  const auto values = sample_field(dims);
  const auto via_alias = Session(alias).compress(
      Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::FixedPsnr{60.0}, Sink::memory());
  SessionOptions primary;
  primary.engine = "transform-dct";
  const auto via_primary = Session(primary).compress(
      Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::FixedPsnr{60.0}, Sink::memory());
  EXPECT_EQ(via_alias.archive, via_primary.archive);
}

TEST(SessionApi, BatchMatchesSingleFieldBytes) {
  // The batch workflow through the facade: per-field archives are the
  // byte-exact single-field compress() outputs, in-memory and streamed.
  const data::Dims big{64, 48};
  const data::Dims small{30, 20};
  const auto a = sample_field(big);
  auto b = data::smoothed_noise(small, 77, 2, 2);
  data::rescale(b, 100.0f, 180.0f);

  SessionOptions sopts;
  sopts.threads = 4;
  const Session session(sopts);

  BatchJob job;
  job.target = fpsnr::FixedPsnr{72.0};
  job.keep_archives = true;
  job.fields.push_back({"a", Source::memory(std::span<const float>(a),
                                            big.extents)});
  job.fields.push_back({"b", Source::memory(std::span<const float>(b),
                                            small.extents)});
  const auto batch = session.compress_batch(job);
  ASSERT_EQ(batch.fields.size(), 2u);

  const auto single_a = session.compress(
      Source::memory(std::span<const float>(a), big.extents),
      fpsnr::FixedPsnr{72.0}, Sink::memory());
  const auto single_b = session.compress(
      Source::memory(std::span<const float>(b), small.extents),
      fpsnr::FixedPsnr{72.0}, Sink::memory());
  EXPECT_EQ(batch.fields[0].archive, single_a.archive);
  EXPECT_EQ(batch.fields[1].archive, single_b.archive);
  // The model's MSE prediction is an average-case equality, so measured
  // PSNR may sit a fraction of a dB under the target; never more.
  EXPECT_GT(batch.fields[0].actual_psnr_db, 71.5);
  EXPECT_EQ(batch.fields[0].value_count, a.size());

  // Streaming batch: same bytes on disk.
  const auto dir = temp_file("batch-dir");
  fs::create_directories(dir);
  BatchJob stream_job = job;
  stream_job.keep_archives = false;
  stream_job.stream_dir = dir.string();
  const auto streamed = session.compress_batch(stream_job);
  EXPECT_EQ(slurp(streamed.fields[0].archive_path), single_a.archive);
  EXPECT_EQ(slurp(streamed.fields[1].archive_path), single_b.archive);
  fs::remove_all(dir);

  // Hostile names and non-PSNR targets are rejected.
  BatchJob hostile = job;
  hostile.fields[0].name = "../evil";
  EXPECT_THROW(session.compress_batch(hostile), std::invalid_argument);
  BatchJob wrong_target = job;
  wrong_target.target = fpsnr::FixedRate{8.0};
  EXPECT_THROW(session.compress_batch(wrong_target), std::invalid_argument);
}

TEST(SessionApi, SourceAndSinkMisuseThrows) {
  const data::Dims dims{16, 16};
  const auto values = sample_field(dims);
  const Session session;
  const auto r = session.compress(
      Source::memory(std::span<const float>(values), dims.extents),
      fpsnr::FixedPsnr{60.0}, Sink::memory());
  // An archive source is not a field source, and vice versa.
  EXPECT_THROW(session.compress(
                   Source::memory(std::span<const std::uint8_t>(r.archive)),
                   fpsnr::FixedPsnr{60.0}, Sink::memory()),
               std::invalid_argument);
  EXPECT_THROW(session.decompress(Source::memory(
                   std::span<const float>(values), dims.extents)),
               std::invalid_argument);
  // Unwritable sinks surface as runtime errors, not silent truncation.
  EXPECT_THROW(session.compress(
                   Source::memory(std::span<const float>(values), dims.extents),
                   fpsnr::FixedPsnr{60.0},
                   Sink::file("/no/such/dir/out.fpbk")),
               std::runtime_error);
}
