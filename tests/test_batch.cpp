// Tests for dataset-level batch evaluation (the Fig. 2 / Table II harness).
#include "core/batch.h"

#include <gtest/gtest.h>

#include <cmath>

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

data::Dataset small_hurricane() { return data::make_hurricane({0.5, 42}); }

}  // namespace

TEST(Batch, CoversEveryField) {
  const auto ds = small_hurricane();
  const auto r = core::run_fixed_psnr_batch(ds, 60.0);
  EXPECT_EQ(r.dataset_name, "Hurricane");
  EXPECT_EQ(r.fields.size(), ds.field_count());
  for (const auto& f : r.fields) {
    EXPECT_EQ(f.target_psnr_db, 60.0);
    EXPECT_GT(f.actual_psnr_db, 0.0);
    EXPECT_GT(f.compression_ratio, 1.0);
  }
}

TEST(Batch, AccuracyMatchesPaperShapeAt80dB) {
  // Table II row "80": AVG within ~0.5 dB of target, small STDEV.
  const auto r = core::run_fixed_psnr_batch(small_hurricane(), 80.0);
  const auto stats = r.psnr_stats();
  EXPECT_NEAR(stats.mean(), 80.0, 1.0);
  EXPECT_LT(stats.stdev(), 2.0);
  EXPECT_LT(r.mean_abs_deviation_db(), 1.0);
}

TEST(Batch, LowTargetDeviatesMore) {
  // The paper's key qualitative result: accuracy improves with the target.
  const auto ds = small_hurricane();
  const auto low = core::run_fixed_psnr_batch(ds, 20.0);
  const auto high = core::run_fixed_psnr_batch(ds, 100.0);
  EXPECT_GT(low.mean_abs_deviation_db(), high.mean_abs_deviation_db());
  // Low-target misses are mostly overshoots; undershoot stays within a few
  // dB (paper Table II shows ATM at 21.9 for a 20 dB request, i.e. the
  // same small two-sided jitter).
  for (const auto& f : low.fields)
    EXPECT_GT(f.actual_psnr_db, f.target_psnr_db - 4.0) << f.field_name;
}

TEST(Batch, ParallelMatchesSequential) {
  const auto ds = small_hurricane();
  const auto seq = core::run_fixed_psnr_batch(ds, 70.0);
  core::BatchOptions opts;
  opts.threads = 4;
  const auto par = core::run_fixed_psnr_batch(ds, 70.0, opts);
  ASSERT_EQ(par.fields.size(), seq.fields.size());
  for (std::size_t i = 0; i < seq.fields.size(); ++i) {
    EXPECT_EQ(par.fields[i].field_name, seq.fields[i].field_name);
    EXPECT_DOUBLE_EQ(par.fields[i].actual_psnr_db, seq.fields[i].actual_psnr_db);
    EXPECT_DOUBLE_EQ(par.fields[i].compression_ratio,
                     seq.fields[i].compression_ratio);
  }
}

TEST(Batch, SweepProducesOneResultPerTarget) {
  const auto ds = small_hurricane();
  const std::vector<double> targets = {40.0, 80.0};
  const auto sweep = core::run_fixed_psnr_sweep(ds, targets);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_EQ(sweep[0].target_psnr_db, 40.0);
  EXPECT_EQ(sweep[1].target_psnr_db, 80.0);
}

TEST(Batch, MetFractionAndDeviationComputed) {
  core::BatchResult r;
  r.target_psnr_db = 50.0;
  core::FieldOutcome a;
  a.target_psnr_db = 50.0;
  a.actual_psnr_db = 51.0;
  a.met_target = true;
  core::FieldOutcome b = a;
  b.actual_psnr_db = 49.5;
  b.met_target = false;
  r.fields = {a, b};
  EXPECT_DOUBLE_EQ(r.met_fraction(), 0.5);
  EXPECT_NEAR(r.mean_abs_deviation_db(), 0.75, 1e-12);
  EXPECT_NEAR(r.psnr_stats().mean(), 50.25, 1e-12);
}

TEST(Batch, EmptyResultSafe) {
  core::BatchResult r;
  EXPECT_EQ(r.met_fraction(), 0.0);
  EXPECT_EQ(r.mean_abs_deviation_db(), 0.0);
  EXPECT_EQ(r.psnr_stats().count(), 0u);
}
