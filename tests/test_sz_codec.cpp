// Round-trip and error-bound property tests for the SZ-style codec.
#include "sz/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>

#include "data/synth.h"
#include "metrics/metrics.h"

namespace sz = fpsnr::sz;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;
namespace io = fpsnr::io;

namespace {

std::vector<float> make_test_field(const data::Dims& dims, int pattern,
                                   std::uint64_t seed) {
  switch (pattern) {
    case 0:  // smooth correlated
      return data::smoothed_noise(dims, seed, 3, 2);
    case 1: {  // rough
      auto v = data::white_noise(dims.count(), seed);
      return v;
    }
    case 2: {  // large offset + small variation (tests precision handling)
      auto v = data::smoothed_noise(dims, seed, 2, 2);
      for (float& x : v) x = 1.0e6f + x;
      return v;
    }
    default: {  // sparse nonnegative
      auto v = data::smoothed_noise(dims, seed, 1, 2);
      data::rescale(v, -1.0f, 1.0f);
      data::sparsify_below(v, 0.4f);
      return v;
    }
  }
}

}  // namespace

// Parameter space: (rank, pattern, abs bound exponent)
class SzRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SzRoundTrip, AbsoluteBoundHonoured) {
  const auto [rank, pattern, eb_exp] = GetParam();
  const data::Dims dims = rank == 1   ? data::Dims{4096}
                          : rank == 2 ? data::Dims{48, 64}
                                      : data::Dims{12, 16, 20};
  const auto values = make_test_field(dims, pattern, 1000 + pattern);
  const double eb = std::pow(10.0, eb_exp);

  sz::Params params;
  params.mode = sz::ErrorBoundMode::Absolute;
  params.bound = eb;
  sz::CompressionInfo info;
  const auto stream = sz::compress<float>(values, dims, params, &info);
  const auto out = sz::decompress<float>(stream);

  ASSERT_EQ(out.dims, dims);
  ASSERT_EQ(out.values.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(values[i]) - out.values[i]),
              eb * (1.0 + 1e-9))
        << "point " << i;
  EXPECT_EQ(info.value_count, values.size());
  EXPECT_GT(info.compressed_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SzRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(-1, -3, -5)));

TEST(SzCodec, ValueRangeRelativeBound) {
  const data::Dims dims{64, 64};
  const auto values = make_test_field(dims, 0, 7);
  const double vr = metrics::value_range<float>(values);

  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-3;
  const auto stream = sz::compress<float>(values, dims, params);
  const auto out = sz::decompress<float>(stream);
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(values[i]) - out.values[i]),
              1e-3 * vr * (1.0 + 1e-9));
}

TEST(SzCodec, PointwiseRelativeBound) {
  const data::Dims dims{32, 48};
  auto values = data::smoothed_noise(dims, 21, 3, 2);
  data::rescale(values, 0.5f, 100.0f);  // strictly positive
  // Mix in negatives and exact zeros to exercise signs and exceptions.
  for (std::size_t i = 0; i < values.size(); i += 7) values[i] = -values[i];
  for (std::size_t i = 0; i < values.size(); i += 97) values[i] = 0.0f;

  const double eb = 1e-2;
  sz::Params params;
  params.mode = sz::ErrorBoundMode::PointwiseRelative;
  params.bound = eb;
  const auto stream = sz::compress<float>(values, dims, params);
  const auto out = sz::decompress<float>(stream);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double o = values[i];
    const double r = out.values[i];
    if (o == 0.0) {
      ASSERT_EQ(r, 0.0) << "zeros must be restored exactly";
    } else {
      ASSERT_LE(std::abs(r - o), eb * std::abs(o) * (1.0 + 1e-6))
          << "point " << i << " orig " << o << " recon " << r;
    }
  }
}

TEST(SzCodec, PointwiseRelativePreservesSigns) {
  const data::Dims dims{512};
  std::vector<float> values(512);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> mag(0.1f, 10.0f);
  for (auto& v : values) v = (rng() % 2 ? 1.0f : -1.0f) * mag(rng);
  sz::Params params;
  params.mode = sz::ErrorBoundMode::PointwiseRelative;
  params.bound = 0.05;
  const auto out = sz::decompress<float>(sz::compress<float>(values, dims, params));
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_GT(values[i] * out.values[i], 0.0f) << "sign flipped at " << i;
}

TEST(SzCodec, DoublePrecisionRoundTrip) {
  const data::Dims dims{24, 24};
  std::vector<double> values(dims.count());
  std::mt19937_64 rng(9);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (auto& v : values) v = dist(rng);
  sz::Params params;
  params.mode = sz::ErrorBoundMode::Absolute;
  params.bound = 1e-8;
  const auto out = sz::decompress<double>(sz::compress<double>(values, dims, params));
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(values[i] - out.values[i]), 1e-8 * (1.0 + 1e-12));
}

TEST(SzCodec, ConstantFieldIsTiny) {
  const data::Dims dims{64, 64};
  const std::vector<float> values(dims.count(), 3.25f);
  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-4;
  sz::CompressionInfo info;
  const auto stream = sz::compress<float>(values, dims, params, &info);
  const auto out = sz::decompress<float>(stream);
  EXPECT_EQ(out.values, values);  // reproduced exactly
  EXPECT_GT(info.compression_ratio, 50.0);
}

TEST(SzCodec, NonFiniteValuesStoredExactly) {
  const data::Dims dims{64};
  std::vector<float> values(64, 1.0f);
  values[10] = std::numeric_limits<float>::quiet_NaN();
  values[20] = std::numeric_limits<float>::infinity();
  values[30] = -std::numeric_limits<float>::infinity();
  sz::Params params;
  params.mode = sz::ErrorBoundMode::Absolute;
  params.bound = 0.1;
  // NaN breaks value_range? No: range uses minmax which ignores NaN order...
  // The codec contract: non-finite points become exact outliers.
  const auto out = sz::decompress<float>(sz::compress<float>(values, dims, params));
  EXPECT_TRUE(std::isnan(out.values[10]));
  EXPECT_TRUE(std::isinf(out.values[20]));
  EXPECT_TRUE(std::isinf(out.values[30]) && out.values[30] < 0);
}

TEST(SzCodec, SmallQuantizerStillBounded) {
  // Tiny bin count forces many outliers; bound must still hold.
  const data::Dims dims{48, 48};
  const auto values = make_test_field(dims, 1, 31);
  sz::Params params;
  params.mode = sz::ErrorBoundMode::Absolute;
  params.bound = 1e-4;
  params.quantization_bins = 4;
  sz::CompressionInfo info;
  const auto out =
      sz::decompress<float>(sz::compress<float>(values, dims, params, &info));
  EXPECT_GT(info.outlier_count, 0u);
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_LE(std::abs(static_cast<double>(values[i]) - out.values[i]),
              1e-4 * (1.0 + 1e-9));
}

TEST(SzCodec, BackendVariantsProduceIdenticalData) {
  const data::Dims dims{32, 32};
  const auto values = make_test_field(dims, 0, 77);
  sz::Params params;
  params.mode = sz::ErrorBoundMode::Absolute;
  params.bound = 1e-3;
  std::vector<float> reference;
  for (auto backend : {fpsnr::lossless::Method::Store, fpsnr::lossless::Method::Rle,
                       fpsnr::lossless::Method::Deflate,
                       fpsnr::lossless::Method::Auto}) {
    params.backend = backend;
    const auto out =
        sz::decompress<float>(sz::compress<float>(values, dims, params));
    if (reference.empty())
      reference = out.values;
    else
      EXPECT_EQ(out.values, reference);  // lossless stage cannot change data
  }
}

TEST(SzCodec, DeterministicStream) {
  const data::Dims dims{40, 40};
  const auto values = make_test_field(dims, 0, 11);
  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-4;
  EXPECT_EQ(sz::compress<float>(values, dims, params),
            sz::compress<float>(values, dims, params));
}

TEST(SzCodec, MismatchedDimsThrow) {
  const std::vector<float> values(10);
  sz::Params params;
  EXPECT_THROW(sz::compress<float>(values, data::Dims{11}, params),
               std::invalid_argument);
  EXPECT_THROW(sz::prediction_trace<float>(values, data::Dims{9}, 0.1),
               std::invalid_argument);
}

TEST(SzCodec, BadParamsThrow) {
  const std::vector<float> values(16, 1.0f);
  sz::Params params;
  params.bound = -1.0;
  EXPECT_THROW(sz::compress<float>(values, data::Dims{16}, params),
               std::invalid_argument);
  params.bound = 1e-3;
  params.quantization_bins = 7;  // odd
  EXPECT_THROW(sz::compress<float>(values, data::Dims{16}, params),
               std::invalid_argument);
}

TEST(SzCodec, ScalarTypeMismatchThrows) {
  const data::Dims dims{16};
  const std::vector<float> values(16, 1.0f);
  sz::Params params;
  params.mode = sz::ErrorBoundMode::Absolute;
  params.bound = 0.5;
  const auto stream = sz::compress<float>(values, dims, params);
  EXPECT_THROW(sz::decompress<double>(stream), io::StreamError);
}

TEST(SzCodec, ResolveAbsoluteBound) {
  EXPECT_DOUBLE_EQ(
      sz::resolve_absolute_bound(sz::ErrorBoundMode::Absolute, 0.5, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(sz::resolve_absolute_bound(sz::ErrorBoundMode::ValueRangeRelative,
                                              1e-3, 100.0),
                   0.1);
  EXPECT_NEAR(sz::resolve_absolute_bound(sz::ErrorBoundMode::PointwiseRelative,
                                         1.0, 0.0),
              1.0, 1e-12);  // log2(1+1) == 1
  EXPECT_GT(sz::resolve_absolute_bound(sz::ErrorBoundMode::ValueRangeRelative,
                                       1e-3, 0.0),
            0.0);  // constant field fallback stays positive
  EXPECT_THROW(sz::resolve_absolute_bound(sz::ErrorBoundMode::Absolute, 0.0, 1.0),
               std::invalid_argument);
}

TEST(SzCodec, PredictionTraceShape) {
  const data::Dims dims{20, 20};
  const auto values = make_test_field(dims, 0, 15);
  const auto trace = sz::prediction_trace<float>(values, dims, 1e-3);
  EXPECT_EQ(trace.pe.size(), values.size());
  EXPECT_EQ(trace.pe_recon.size(), values.size());
  // Quantized reconstruction error never exceeds the bound.
  for (std::size_t i = 0; i < trace.pe.size(); ++i)
    ASSERT_LE(std::abs(trace.pe[i] - trace.pe_recon[i]), 1e-3 * (1.0 + 1e-9));
}
