// Tests for the search-based baseline (status quo the paper replaces) and
// the fixed-rate extension.
#include "core/search_baseline.h"

#include <gtest/gtest.h>

#include "data/synth.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

std::vector<float> sample_field(const data::Dims& dims, std::uint64_t seed) {
  auto v = data::smoothed_noise(dims, seed, 2, 2);
  data::rescale(v, -1.0f, 1.0f);
  return v;
}

}  // namespace

TEST(SearchBaseline, ConvergesToTargetPsnr) {
  const data::Dims dims{48, 48};
  const auto values = sample_field(dims, 1);
  core::SearchOptions opts;
  opts.tolerance_db = 0.5;
  const auto sr = core::search_fixed_psnr<float>(values, dims, 70.0, opts);
  EXPECT_TRUE(sr.converged);
  EXPECT_NEAR(sr.achieved_psnr_db, 70.0, 0.5);
  EXPECT_GE(sr.compression_passes, 1u);
}

TEST(SearchBaseline, NeedsMultiplePassesGenerally) {
  // The whole point of the paper: the search burns several full passes
  // where fixed-PSNR needs exactly one.
  const data::Dims dims{48, 48};
  const auto values = sample_field(dims, 2);
  core::SearchOptions opts;
  opts.tolerance_db = 0.2;
  opts.initial_rel_bound = 1e-6;  // deliberately far from the answer
  const auto sr = core::search_fixed_psnr<float>(values, dims, 45.0, opts);
  EXPECT_TRUE(sr.converged);
  EXPECT_GT(sr.compression_passes, 3u);
}

TEST(SearchBaseline, SearchFromBothDirections) {
  const data::Dims dims{40, 40};
  const auto values = sample_field(dims, 3);
  core::SearchOptions opts;
  opts.tolerance_db = 0.75;
  // Start too tight (high PSNR) -> must loosen.
  opts.initial_rel_bound = 1e-7;
  auto sr = core::search_fixed_psnr<float>(values, dims, 50.0, opts);
  EXPECT_TRUE(sr.converged);
  // Start too loose (low PSNR) -> must tighten.
  opts.initial_rel_bound = 0.3;
  sr = core::search_fixed_psnr<float>(values, dims, 90.0, opts);
  EXPECT_TRUE(sr.converged);
  EXPECT_NEAR(sr.achieved_psnr_db, 90.0, 0.75);
}

TEST(SearchBaseline, PassBudgetRespected) {
  const data::Dims dims{32, 32};
  const auto values = sample_field(dims, 4);
  core::SearchOptions opts;
  opts.tolerance_db = 0.01;  // unreasonably tight
  opts.max_iterations = 5;
  const auto sr = core::search_fixed_psnr<float>(values, dims, 65.0, opts);
  EXPECT_LE(sr.compression_passes, 5u);
}

TEST(FixedRate, HitsRequestedBitRate) {
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims, 5);
  core::RateSearchOptions opts;
  opts.tolerance_bits = 0.5;
  for (double target_rate : {4.0, 8.0}) {
    const auto rr = core::search_fixed_rate<float>(values, dims, target_rate, opts);
    EXPECT_TRUE(rr.converged) << target_rate;
    EXPECT_NEAR(rr.achieved_bits_per_value, target_rate, 0.5) << target_rate;
    EXPECT_NEAR(rr.result.info.bit_rate, rr.achieved_bits_per_value, 1e-9);
  }
}

TEST(FixedRate, RateMonotoneInBound) {
  // Sanity for the bisection premise: looser bound => fewer bits.
  const data::Dims dims{64, 64};
  const auto values = sample_field(dims, 6);
  double prev_rate = 1e9;
  for (double eb : {1e-6, 1e-4, 1e-2}) {
    const auto r =
        core::compress<float>(values, dims, core::ControlRequest::relative(eb));
    EXPECT_LT(r.info.bit_rate, prev_rate);
    prev_rate = r.info.bit_rate;
  }
}
