// Unit tests for metrics::compare and the PSNR/MSE conversions.
#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace metrics = fpsnr::metrics;

TEST(Metrics, IdenticalDataHasInfinitePsnr) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f, 4.0f};
  const auto r = metrics::compare<float>(a, a);
  EXPECT_EQ(r.mse, 0.0);
  EXPECT_TRUE(std::isinf(r.psnr_db));
  EXPECT_EQ(r.max_abs_error, 0.0);
  EXPECT_EQ(r.l2_error, 0.0);
}

TEST(Metrics, KnownMse) {
  const std::vector<double> orig = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> recon = {0.1, 0.9, 2.1, 2.9};
  const auto r = metrics::compare<double>(orig, recon);
  EXPECT_NEAR(r.mse, 0.01, 1e-12);
  EXPECT_NEAR(r.rmse, 0.1, 1e-12);
  EXPECT_NEAR(r.value_range, 3.0, 1e-12);
  EXPECT_NEAR(r.nrmse, 0.1 / 3.0, 1e-12);
  EXPECT_NEAR(r.max_abs_error, 0.1, 1e-12);
  EXPECT_NEAR(r.l2_error, 0.2, 1e-12);
}

TEST(Metrics, PsnrMatchesDefinition) {
  const std::vector<double> orig = {0.0, 10.0};
  const std::vector<double> recon = {1.0, 10.0};
  const auto r = metrics::compare<double>(orig, recon);
  // MSE = 0.5, vr = 10, NRMSE = sqrt(0.5)/10, PSNR = -20 log10(NRMSE).
  EXPECT_NEAR(r.psnr_db, -20.0 * std::log10(std::sqrt(0.5) / 10.0), 1e-9);
}

TEST(Metrics, PsnrMseInverses) {
  for (double psnr : {20.0, 60.0, 100.0}) {
    for (double vr : {1.0, 123.4, 1e6}) {
      const double mse = metrics::mse_from_psnr(psnr, vr);
      EXPECT_NEAR(metrics::psnr_from_mse(mse, vr), psnr, 1e-9);
    }
  }
}

TEST(Metrics, PointwiseRelativeError) {
  const std::vector<double> orig = {2.0, -4.0, 0.0};
  const std::vector<double> recon = {2.2, -4.2, 0.5};
  const auto r = metrics::compare<double>(orig, recon);
  // zero original excluded from pw-rel; max is 0.2/2 = 0.1 vs 0.2/4 = 0.05
  EXPECT_NEAR(r.max_pw_rel_error, 0.1, 1e-12);
}

TEST(Metrics, ConstantFieldHandled) {
  const std::vector<float> orig(16, 5.0f);
  const auto exact = metrics::compare<float>(orig, orig);
  EXPECT_TRUE(std::isinf(exact.psnr_db));
  std::vector<float> off(16, 5.0f);
  off[3] = 5.5f;
  const auto lossy = metrics::compare<float>(orig, off);
  EXPECT_EQ(lossy.value_range, 0.0);
  EXPECT_GT(lossy.mse, 0.0);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<float> a(4, 0.0f), b(5, 0.0f);
  EXPECT_THROW(metrics::compare<float>(a, b), std::invalid_argument);
}

TEST(Metrics, EmptyInputThrows) {
  const std::vector<float> empty;
  EXPECT_THROW(metrics::compare<float>(empty, empty), std::invalid_argument);
  EXPECT_THROW(metrics::value_range<float>(empty), std::invalid_argument);
}

TEST(Metrics, ValueRange) {
  const std::vector<double> v = {-3.0, 7.5, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(metrics::value_range<double>(v), 10.5);
}

TEST(Metrics, CompressionRatioAndBitRate) {
  EXPECT_DOUBLE_EQ(metrics::compression_ratio(1000, 100), 10.0);
  EXPECT_DOUBLE_EQ(metrics::bit_rate(100, 100), 8.0);
  EXPECT_THROW(metrics::compression_ratio(10, 0), std::invalid_argument);
  EXPECT_THROW(metrics::bit_rate(10, 0), std::invalid_argument);
}

TEST(Metrics, BadPsnrArgsThrow) {
  EXPECT_THROW(metrics::psnr_from_mse(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(metrics::psnr_from_mse(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(metrics::mse_from_psnr(40.0, -2.0), std::invalid_argument);
}
