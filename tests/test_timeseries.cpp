// Tests for the temporally coherent snapshot generator and the
// fixed-NRMSE control mode added alongside it.
#include "data/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/compressor.h"
#include "metrics/metrics.h"

namespace data = fpsnr::data;
namespace core = fpsnr::core;
namespace metrics = fpsnr::metrics;

TEST(TimeSeries, ShapeAndNames) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{16, 24};
  cfg.snapshots = 5;
  const auto series = data::make_advected_series(cfg);
  ASSERT_EQ(series.size(), 5u);
  for (std::size_t t = 0; t < series.size(); ++t) {
    EXPECT_EQ(series[t].name, "t" + std::to_string(t));
    EXPECT_EQ(series[t].dims, cfg.dims);
  }
}

TEST(TimeSeries, Deterministic) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{16, 16};
  cfg.snapshots = 3;
  const auto a = data::make_advected_series(cfg);
  const auto b = data::make_advected_series(cfg);
  EXPECT_EQ(a[2].values, b[2].values);
  cfg.seed += 1;
  const auto c = data::make_advected_series(cfg);
  EXPECT_NE(a[2].values, c[2].values);
}

TEST(TimeSeries, TemporalCoherenceDecaysWithDistance) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{32, 32};
  cfg.snapshots = 12;
  const auto series = data::make_advected_series(cfg);
  // Adjacent snapshots must be much closer than distant ones.
  const auto near = metrics::compare<float>(series[0].span(), series[1].span());
  const auto far = metrics::compare<float>(series[0].span(), series[8].span());
  EXPECT_LT(near.rmse, far.rmse);
  EXPECT_GT(near.psnr_db, far.psnr_db + 3.0);
}

TEST(TimeSeries, InterpolationErrorGrowsWithGap) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{32, 32};
  cfg.snapshots = 9;
  const auto series = data::make_advected_series(cfg);
  // Interpolating t=1 from (0,2) beats interpolating t=4 from (0,8).
  const auto tight = data::interpolate_snapshots(series[0], series[2], 0.5);
  const auto wide = data::interpolate_snapshots(series[0], series[8], 0.5);
  const auto rep_tight = metrics::compare<float>(series[1].span(), tight.span());
  const auto rep_wide = metrics::compare<float>(series[4].span(), wide.span());
  EXPECT_GT(rep_tight.psnr_db, rep_wide.psnr_db);
}

TEST(TimeSeries, InterpolationValidation) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{8, 8};
  cfg.snapshots = 2;
  const auto series = data::make_advected_series(cfg);
  EXPECT_THROW(data::interpolate_snapshots(series[0], series[1], 1.5),
               std::invalid_argument);
  data::Field other("x", data::Dims{8, 9});
  EXPECT_THROW(data::interpolate_snapshots(series[0], other, 0.5),
               std::invalid_argument);
}

TEST(TimeSeries, InterpolationShapeErrorsAreTyped) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{8, 8};
  cfg.snapshots = 2;
  const auto series = data::make_advected_series(cfg);

  // Shape problems are the dedicated subtype (still catchable as
  // invalid_argument — InterpolationValidation above proves that).
  data::Field other("x", data::Dims{8, 9});
  EXPECT_THROW(data::interpolate_snapshots(series[0], other, 0.5),
               data::FieldShapeError);

  // A values vector resized out of sync with its dims would index out of
  // bounds; it must be the same typed shape error, not UB.
  data::Field truncated = series[1];
  truncated.values.resize(10);
  EXPECT_THROW(data::interpolate_snapshots(series[0], truncated, 0.5),
               data::FieldShapeError);

  // NaN alpha fails every ordered comparison, so the naive
  // `alpha < 0 || alpha > 1` check would let it through and poison the
  // whole output; it must be rejected like any other out-of-range alpha.
  EXPECT_THROW(
      data::interpolate_snapshots(series[0], series[1],
                                  std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

namespace {

/// FNV-1a 64 over a series' raw value bytes — one order-sensitive digest
/// per generator config for the golden-determinism pins below.
template <typename FieldT>
std::uint64_t series_checksum(const std::vector<FieldT>& series) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& f : series) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(f.values.data());
    const std::size_t n =
        f.values.size() * sizeof(typename decltype(f.values)::value_type);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

}  // namespace

TEST(TimeSeries, F64SeriesSharesTheF32ModeTable) {
  // Same seed -> same mode table: the f64 series is the f32 series without
  // the final float rounding, so casting it down reproduces the f32 values
  // bit for bit. This is what makes the two generators one dataset.
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{16, 16};
  cfg.snapshots = 3;
  const auto f32 = data::make_advected_series(cfg);
  const auto f64 = data::make_advected_series_f64(cfg);
  ASSERT_EQ(f32.size(), f64.size());
  for (std::size_t t = 0; t < f32.size(); ++t) {
    EXPECT_EQ(f64[t].name, f32[t].name);
    ASSERT_EQ(f64[t].values.size(), f32[t].values.size());
    for (std::size_t i = 0; i < f32[t].values.size(); ++i)
      ASSERT_EQ(static_cast<float>(f64[t].values[i]), f32[t].values[i])
          << "t=" << t << " i=" << i;
  }
}

TEST(TimeSeries, SupportsEveryRank) {
  data::TimeSeriesConfig cfg;
  cfg.snapshots = 2;
  cfg.dims = data::Dims{64};
  const auto r1 = data::make_advected_series(cfg);
  EXPECT_EQ(r1[0].values.size(), 64u);
  cfg.dims = data::Dims{8, 8, 8};
  const auto r3 = data::make_advected_series(cfg);
  EXPECT_EQ(r3[0].values.size(), 512u);
  const auto r3d = data::make_advected_series_f64(cfg);
  EXPECT_EQ(r3d[0].values.size(), 512u);
  // A rank-3 field is not constant along the last axis (a regression here
  // would mean the generator ignores the k coordinate).
  EXPECT_NE(r3[0].values[0], r3[0].values[1]);
}

TEST(TimeSeries, GoldenChecksumPerConfig) {
  // One pinned digest per generator config: any change to the mode table,
  // the RNG consumption order, or the evaluation sweep shows up here
  // before it silently invalidates benchmarks pinned to this data.
  data::TimeSeriesConfig r2;
  r2.dims = data::Dims{16, 16};
  r2.snapshots = 3;
  data::TimeSeriesConfig r3;
  r3.dims = data::Dims{8, 8, 8};
  r3.snapshots = 2;
  data::TimeSeriesConfig r1;
  r1.dims = data::Dims{64};
  r1.snapshots = 2;
#if defined(__linux__) && defined(__x86_64__)
  // The generator evaluates std::cos in double precision; the pins are
  // exact on x86-64 Linux (glibc libm). Other platforms' libm may round
  // differently, so they assert run-to-run determinism below instead.
  EXPECT_EQ(series_checksum(data::make_advected_series(r2)),
            0x74c3801bfb9a54d8ull);
  EXPECT_EQ(series_checksum(data::make_advected_series(r3)),
            0xe5d9a38c7444928cull);
  EXPECT_EQ(series_checksum(data::make_advected_series(r1)),
            0x8d436effa60225b9ull);
  EXPECT_EQ(series_checksum(data::make_advected_series_f64(r3)),
            0x6b4bc8745cd4cfdcull);
#endif
  EXPECT_EQ(series_checksum(data::make_advected_series(r2)),
            series_checksum(data::make_advected_series(r2)));
  EXPECT_EQ(series_checksum(data::make_advected_series_f64(r3)),
            series_checksum(data::make_advected_series_f64(r3)));
}

TEST(TimeSeries, ConfigValidation) {
  data::TimeSeriesConfig cfg;
  cfg.snapshots = 0;
  EXPECT_THROW(data::make_advected_series(cfg), std::invalid_argument);
  cfg.snapshots = 1;
  cfg.modes = 0;
  EXPECT_THROW(data::make_advected_series(cfg), std::invalid_argument);
}

TEST(FixedNrmse, EquivalentToPsnrForm) {
  // NRMSE 1e-4 == 80 dB; both requests must resolve identically.
  const auto a = core::resolve_control(core::ControlRequest::fixed_nrmse(1e-4));
  const auto b = core::resolve_control(core::ControlRequest::fixed_psnr(80.0));
  EXPECT_NEAR(a.sz_bound, b.sz_bound, 1e-15);
  EXPECT_NEAR(a.predicted_psnr_db, 80.0, 1e-9);
}

TEST(FixedNrmse, EndToEnd) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{48, 48};
  cfg.snapshots = 1;
  const auto series = data::make_advected_series(cfg);
  const auto& f = series[0];
  const auto r = core::compress<float>(f.span(), f.dims,
                                       core::ControlRequest::fixed_nrmse(1e-3));
  const auto decoded = core::decompress<float>(r.stream);
  const auto rep = metrics::compare<float>(f.span(), decoded.values);
  EXPECT_NEAR(rep.nrmse, 1e-3, 3e-4);
}

TEST(FixedNrmse, Validation) {
  EXPECT_THROW(core::resolve_control(core::ControlRequest::fixed_nrmse(0.0)),
               std::invalid_argument);
  EXPECT_THROW(core::resolve_control(core::ControlRequest::fixed_nrmse(1.5)),
               std::invalid_argument);
}
