// Tests for the temporally coherent snapshot generator and the
// fixed-NRMSE control mode added alongside it.
#include "data/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/compressor.h"
#include "metrics/metrics.h"

namespace data = fpsnr::data;
namespace core = fpsnr::core;
namespace metrics = fpsnr::metrics;

TEST(TimeSeries, ShapeAndNames) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{16, 24};
  cfg.snapshots = 5;
  const auto series = data::make_advected_series(cfg);
  ASSERT_EQ(series.size(), 5u);
  for (std::size_t t = 0; t < series.size(); ++t) {
    EXPECT_EQ(series[t].name, "t" + std::to_string(t));
    EXPECT_EQ(series[t].dims, cfg.dims);
  }
}

TEST(TimeSeries, Deterministic) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{16, 16};
  cfg.snapshots = 3;
  const auto a = data::make_advected_series(cfg);
  const auto b = data::make_advected_series(cfg);
  EXPECT_EQ(a[2].values, b[2].values);
  cfg.seed += 1;
  const auto c = data::make_advected_series(cfg);
  EXPECT_NE(a[2].values, c[2].values);
}

TEST(TimeSeries, TemporalCoherenceDecaysWithDistance) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{32, 32};
  cfg.snapshots = 12;
  const auto series = data::make_advected_series(cfg);
  // Adjacent snapshots must be much closer than distant ones.
  const auto near = metrics::compare<float>(series[0].span(), series[1].span());
  const auto far = metrics::compare<float>(series[0].span(), series[8].span());
  EXPECT_LT(near.rmse, far.rmse);
  EXPECT_GT(near.psnr_db, far.psnr_db + 3.0);
}

TEST(TimeSeries, InterpolationErrorGrowsWithGap) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{32, 32};
  cfg.snapshots = 9;
  const auto series = data::make_advected_series(cfg);
  // Interpolating t=1 from (0,2) beats interpolating t=4 from (0,8).
  const auto tight = data::interpolate_snapshots(series[0], series[2], 0.5);
  const auto wide = data::interpolate_snapshots(series[0], series[8], 0.5);
  const auto rep_tight = metrics::compare<float>(series[1].span(), tight.span());
  const auto rep_wide = metrics::compare<float>(series[4].span(), wide.span());
  EXPECT_GT(rep_tight.psnr_db, rep_wide.psnr_db);
}

TEST(TimeSeries, InterpolationValidation) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{8, 8};
  cfg.snapshots = 2;
  const auto series = data::make_advected_series(cfg);
  EXPECT_THROW(data::interpolate_snapshots(series[0], series[1], 1.5),
               std::invalid_argument);
  data::Field other("x", data::Dims{8, 9});
  EXPECT_THROW(data::interpolate_snapshots(series[0], other, 0.5),
               std::invalid_argument);
}

TEST(TimeSeries, ConfigValidation) {
  data::TimeSeriesConfig cfg;
  cfg.snapshots = 0;
  EXPECT_THROW(data::make_advected_series(cfg), std::invalid_argument);
  cfg.snapshots = 1;
  cfg.modes = 0;
  EXPECT_THROW(data::make_advected_series(cfg), std::invalid_argument);
}

TEST(FixedNrmse, EquivalentToPsnrForm) {
  // NRMSE 1e-4 == 80 dB; both requests must resolve identically.
  const auto a = core::resolve_control(core::ControlRequest::fixed_nrmse(1e-4));
  const auto b = core::resolve_control(core::ControlRequest::fixed_psnr(80.0));
  EXPECT_NEAR(a.sz_bound, b.sz_bound, 1e-15);
  EXPECT_NEAR(a.predicted_psnr_db, 80.0, 1e-9);
}

TEST(FixedNrmse, EndToEnd) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{48, 48};
  cfg.snapshots = 1;
  const auto series = data::make_advected_series(cfg);
  const auto& f = series[0];
  const auto r = core::compress<float>(f.span(), f.dims,
                                       core::ControlRequest::fixed_nrmse(1e-3));
  const auto decoded = core::decompress<float>(r.stream);
  const auto rep = metrics::compare<float>(f.span(), decoded.values);
  EXPECT_NEAR(rep.nrmse, 1e-3, 3e-4);
}

TEST(FixedNrmse, Validation) {
  EXPECT_THROW(core::resolve_control(core::ControlRequest::fixed_nrmse(0.0)),
               std::invalid_argument);
  EXPECT_THROW(core::resolve_control(core::ControlRequest::fixed_nrmse(1.5)),
               std::invalid_argument);
}
