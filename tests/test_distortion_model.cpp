// Tests for the analytical distortion model (paper Eqs. 3-8).
#include "core/distortion_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace core = fpsnr::core;
namespace metrics = fpsnr::metrics;

TEST(DistortionModel, UniformMseFormula) {
  // MSE = delta^2 / 12 (Eq. 3 with uniform bins).
  EXPECT_DOUBLE_EQ(core::mse_uniform_quantization(1.0), 1.0 / 12.0);
  EXPECT_DOUBLE_EQ(core::mse_uniform_quantization(0.2), 0.04 / 12.0);
}

TEST(DistortionModel, Eq6PsnrForBinWidth) {
  // PSNR = 20 log10(vr/delta) + 10 log10 12.
  const double psnr = core::psnr_for_bin_width(1e-4, 1.0);
  EXPECT_NEAR(psnr, 80.0 + 10.0 * std::log10(12.0), 1e-9);
}

TEST(DistortionModel, Eq6Inverse) {
  for (double target : {20.0, 40.0, 60.0, 80.0, 100.0, 120.0}) {
    for (double vr : {1.0, 55.5, 3e8}) {
      const double delta = core::bin_width_for_psnr(target, vr);
      EXPECT_NEAR(core::psnr_for_bin_width(delta, vr), target, 1e-9);
    }
  }
}

TEST(DistortionModel, Eq7AbsBound) {
  // PSNR = 20 log10(vr/eb) + 10 log10 3; with delta = 2 eb both forms agree.
  for (double eb : {1e-2, 1e-5}) {
    for (double vr : {1.0, 777.0}) {
      EXPECT_NEAR(core::psnr_for_abs_bound(eb, vr),
                  core::psnr_for_bin_width(2.0 * eb, vr), 1e-9);
    }
  }
}

TEST(DistortionModel, Eq8RelBoundForPsnr) {
  // eb_rel = sqrt(3) * 10^(-PSNR/20) — the paper's closed form.
  EXPECT_NEAR(core::rel_bound_for_psnr(0.0), std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(core::rel_bound_for_psnr(20.0), std::sqrt(3.0) / 10.0, 1e-12);
  // Round trip with Eq. (7):
  for (double target : {20.0, 60.0, 100.0, 120.0}) {
    EXPECT_NEAR(core::psnr_for_rel_bound(core::rel_bound_for_psnr(target)),
                target, 1e-9);
  }
}

TEST(DistortionModel, AbsBoundForPsnrScalesWithRange) {
  EXPECT_NEAR(core::abs_bound_for_psnr(40.0, 10.0),
              10.0 * core::rel_bound_for_psnr(40.0), 1e-12);
}

TEST(DistortionModel, GeneralEstimatorMatchesUniformCase) {
  // Eq. (3) with equal bins and uniform density must reduce to delta^2/12.
  const double delta = 0.1;
  const std::size_t n = 20;
  std::vector<double> widths(n, delta);
  // Uniform density over [0, n*delta): p = 1/(n*delta) at every midpoint.
  std::vector<double> densities(n, 1.0 / (static_cast<double>(n) * delta));
  const double mse = core::mse_general_quantization(widths, densities);
  EXPECT_NEAR(mse, delta * delta / 12.0, 1e-12);
}

TEST(DistortionModel, GeneralEstimatorNonUniformBins) {
  // Two bins, all mass in the narrow one: MSE ~ narrow_width^2/12.
  const std::vector<double> widths = {0.01, 1.0};
  const std::vector<double> densities = {100.0, 0.0};  // integrates to 1
  const double mse = core::mse_general_quantization(widths, densities);
  EXPECT_NEAR(mse, 0.01 * 0.01 / 12.0, 1e-12);
}

TEST(DistortionModel, GeneralEstimatorValidation) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {0.5, 0.5};
  const std::vector<double> neg_width = {-1.0};
  const std::vector<double> half = {0.5};
  const std::vector<double> neg_density = {-0.5};
  EXPECT_THROW(core::mse_general_quantization(one, two), std::invalid_argument);
  EXPECT_THROW(core::mse_general_quantization(neg_width, half),
               std::invalid_argument);
  EXPECT_THROW(core::mse_general_quantization(one, neg_density),
               std::invalid_argument);
}

TEST(DistortionModel, HistogramEstimatorOnGaussianErrors) {
  // Empirical check of Eq. (3)+(5): for Gaussian "prediction errors" much
  // wider than the bin width, the histogram-driven PSNR estimate must match
  // the uniform-model PSNR closely.
  std::mt19937_64 rng(31);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const double delta = 0.05;  // sigma/delta = 20 bins per sigma
  metrics::Histogram h(-6.0, 6.0, static_cast<std::size_t>(12.0 / delta));
  for (int i = 0; i < 200000; ++i) h.add(gauss(rng));
  const double vr = 100.0;
  const double est = core::psnr_from_histogram(h, vr);
  const double uniform = core::psnr_for_bin_width(delta, vr);
  EXPECT_NEAR(est, uniform, 0.2);
}

TEST(DistortionModel, HistogramEstimatorDegradesWithWideBins) {
  // With bins much wider than the error scale the uniform-within-bin
  // assumption overestimates the MSE: the mass concentrates near the
  // central bin's midpoint (zero), so the true error is far smaller.
  // This is why the paper's fixed-PSNR mode *overshoots* at low targets
  // (Section V). Bins here are center-aligned like the codec's quantizer.
  std::mt19937_64 rng(32);
  std::normal_distribution<double> gauss(0.0, 1.0);
  const double delta = 8.0;  // central bin [-4, 4) swallows the distribution
  metrics::Histogram h(-1.5 * delta, 1.5 * delta, 3);
  std::vector<double> samples(100000);
  for (auto& s : samples) {
    s = gauss(rng);
    h.add(s);
  }
  const double vr = 100.0;
  const double est = core::psnr_from_histogram(h, vr);
  // True MSE of midpoint quantization with centers at multiples of delta.
  double true_mse = 0.0;
  for (double s : samples) {
    const double mid = std::round(s / delta) * delta;
    true_mse += (s - mid) * (s - mid);
  }
  true_mse /= static_cast<double>(samples.size());
  const double true_psnr = -10.0 * std::log10(true_mse / (vr * vr));
  // The estimate must be pessimistic by several dB here.
  EXPECT_LT(est, true_psnr - 3.0);
}

TEST(DistortionModel, InvalidArgsThrow) {
  EXPECT_THROW(core::psnr_for_bin_width(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::psnr_for_bin_width(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(core::bin_width_for_psnr(40.0, -1.0), std::invalid_argument);
  EXPECT_THROW(core::psnr_for_abs_bound(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::psnr_for_rel_bound(0.0), std::invalid_argument);
}
