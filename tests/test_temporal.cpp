// Tests for the temporal-compression subsystem: TimeSeriesSession /
// TimeSeriesDecoder (fpsnr/timeseries.h), the FPBK v4 chain contract, the
// per-tile temporal/spatial planner, and the ratio win over spatial-only
// coding on temporally coherent data.
#include "fpsnr/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "data/timeseries.h"
#include "fpsnr/session.h"
#include "io/bitstream.h"
#include "metrics/metrics.h"

namespace {

using namespace fpsnr;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;

/// A slowly evolving series — consecutive snapshots are close, so the
/// temporal planner should pick delta mode almost everywhere.
std::vector<data::Field> slow_series(std::size_t snapshots,
                                     data::Dims dims = data::Dims{48, 48}) {
  data::TimeSeriesConfig cfg;
  cfg.dims = std::move(dims);
  cfg.snapshots = snapshots;
  cfg.dt = 0.02;
  return data::make_advected_series(cfg);
}

Field to_public(const data::Field& f) {
  Field out;
  out.dims = f.dims.extents;
  out.f32 = f.values;
  return out;
}

double psnr_vs(const std::vector<float>& original, const Field& decoded) {
  return metrics::compare<float>(original, decoded.f32).psnr_db;
}

}  // namespace

TEST(Temporal, ChainDecodesBitExactlyAndMeetsTargetEveryFrame) {
  const auto series = slow_series(9);
  const double target_db = 64.0;

  TimeSeriesOptions opts;
  opts.series = "vx";
  opts.keyframe_interval = 4;
  TimeSeriesSession session(FixedPsnr{target_db}, opts);

  std::vector<SnapshotRecord> records;
  for (const auto& snap : series) records.push_back(session.push(to_public(snap)));

  ASSERT_EQ(session.snapshots(), series.size());
  for (std::size_t t = 0; t < records.size(); ++t) {
    EXPECT_EQ(records[t].timestep, t);
    EXPECT_EQ(records[t].keyframe, t % 4 == 0);
    EXPECT_FALSE(records[t].report.archive.empty());
    if (records[t].keyframe) EXPECT_EQ(records[t].temporal_blocks, 0u);
  }

  // An independent decoder fed the frames in order must agree bit-for-bit
  // with the session's own replay path (decode_range), and every frame
  // must meet the PSNR target measured against its ORIGINAL snapshot —
  // errors anchor per frame, they never accumulate along the chain.
  TimeSeriesDecoder decoder;
  const auto replay = session.decode_range(0, series.size());
  ASSERT_EQ(replay.size(), series.size());
  for (std::size_t t = 0; t < series.size(); ++t) {
    const Field frame = decoder.feed(records[t].report.archive);
    ASSERT_EQ(frame.f32.size(), series[t].values.size());
    EXPECT_EQ(frame.f32, replay[t].f32) << "frame " << t;
    EXPECT_GT(psnr_vs(series[t].values, frame), target_db - 1.0) << "frame " << t;
  }
  EXPECT_EQ(decoder.frames(), series.size());
}

TEST(Temporal, DecodeRangeReplaysFromNearestKeyframe) {
  const auto series = slow_series(8);
  TimeSeriesOptions opts;
  opts.keyframe_interval = 3;  // keyframes at 0, 3, 6
  TimeSeriesSession session(FixedPsnr{60.0}, opts);
  for (const auto& snap : series) session.push(to_public(snap));

  const auto whole = session.decode_range(0, 8);
  const auto tail = session.decode_range(4, 7);  // replays 3..6, returns 4..6
  ASSERT_EQ(tail.size(), 3u);
  for (std::size_t i = 0; i < tail.size(); ++i)
    EXPECT_EQ(tail[i].f32, whole[4 + i].f32) << "offset " << i;

  EXPECT_TRUE(session.decode_range(5, 5).empty());
  EXPECT_THROW(session.decode_range(5, 4), std::invalid_argument);
  EXPECT_THROW(session.decode_range(0, 9), std::out_of_range);
  EXPECT_THROW(session.archive(8), std::out_of_range);
}

TEST(Temporal, PerTileFallbackEngagesOnTurbulentData) {
  // Half the field is static between frames, half is replaced with fresh
  // noise: the static tiles must choose temporal-delta mode, the churned
  // tiles must fall back to spatial coding (their delta has MORE energy
  // than the raw values), so temporal_blocks sits strictly between 0 and
  // block_count.
  const data::Dims dims{64, 64};
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> noise(-1.0f, 1.0f);
  std::vector<float> bottom;  // regenerated when refreshed
  auto make_frame = [&](bool refresh_bottom) {
    std::vector<float> values(dims.count());
    for (std::size_t i = 0; i < 32 * 64; ++i)
      values[i] = std::sin(static_cast<float>(i) * 0.01f);  // static half
    if (bottom.empty() || refresh_bottom) {
      bottom.resize(32 * 64);
      for (auto& v : bottom) v = noise(rng);
    }
    std::copy(bottom.begin(), bottom.end(), values.begin() + 32 * 64);
    return values;
  };

  TimeSeriesOptions opts;
  opts.session.tile = TileShape({32, 32});  // 4 blocks: 2 static, 2 churned
  TimeSeriesSession session(FixedPsnr{60.0}, opts);

  Field f0;
  f0.dims = dims.extents;
  f0.f32 = make_frame(false);
  session.push(f0);

  Field f1;
  f1.dims = dims.extents;
  f1.f32 = make_frame(true);  // bottom half churns, top half unchanged
  const SnapshotRecord rec = session.push(f1);

  EXPECT_FALSE(rec.keyframe);
  EXPECT_EQ(rec.block_count, 4u);
  EXPECT_GT(rec.temporal_blocks, 0u);
  EXPECT_LT(rec.temporal_blocks, rec.block_count);
}

TEST(Temporal, DecoderRejectsEveryChainViolation) {
  const auto series = slow_series(5);
  TimeSeriesOptions opts;
  opts.series = "chain";
  opts.keyframe_interval = 0;  // only frame 0 is a keyframe
  TimeSeriesSession session(FixedPsnr{60.0}, opts);
  for (const auto& snap : series) session.push(to_public(snap));

  // A chain cannot start at a delta frame.
  {
    TimeSeriesDecoder d;
    EXPECT_THROW(d.feed(session.archive(1)), io::StreamError);
    EXPECT_EQ(d.frames(), 0u);
  }
  // A timestep gap is refused, and the failed feed leaves the decoder
  // usable — the correct next frame still decodes.
  {
    TimeSeriesDecoder d;
    d.feed(session.archive(0));
    EXPECT_THROW(d.feed(session.archive(2)), io::StreamError);
    EXPECT_EQ(d.frames(), 1u);
    EXPECT_NO_THROW(d.feed(session.archive(1)));
  }
  // Replaying the same delta frame twice is a reference mismatch (the
  // reconstruction has moved on), not a silent wrong decode.
  {
    TimeSeriesDecoder d;
    d.feed(session.archive(0));
    d.feed(session.archive(1));
    EXPECT_THROW(d.feed(session.archive(1)), io::StreamError);
  }
  // Frames from a different series are refused by identity.
  {
    TimeSeriesOptions other;
    other.series = "other";
    other.keyframe_interval = 0;
    TimeSeriesSession foreign(FixedPsnr{60.0}, other);
    for (std::size_t t = 0; t < 2; ++t) foreign.push(to_public(series[t]));
    TimeSeriesDecoder d;
    d.feed(session.archive(0));
    EXPECT_THROW(d.feed(foreign.archive(1)), io::StreamError);
  }
  // A plain spatial (v3) archive is not a series frame at all.
  {
    Session spatial;
    const auto report =
        spatial.compress(Source::memory(std::span<const float>(series[0].values),
                                        series[0].dims.extents),
                         FixedPsnr{60.0}, Sink::memory());
    TimeSeriesDecoder d;
    EXPECT_THROW(d.feed(report.archive), io::StreamError);
  }
}

TEST(Temporal, SessionValidatesItsInputs) {
  EXPECT_THROW(TimeSeriesSession(PointwiseRel{1e-3}, {}),
               std::invalid_argument);
  TimeSeriesOptions no_name;
  no_name.series = "";
  EXPECT_THROW(TimeSeriesSession(FixedPsnr{60.0}, no_name),
               std::invalid_argument);

  const auto series = slow_series(2, data::Dims{16, 16});
  TimeSeriesSession session(FixedPsnr{60.0}, {});
  Field bad;  // neither f32 nor f64
  bad.dims = {16, 16};
  EXPECT_THROW(session.push(bad), std::invalid_argument);
  session.push(to_public(series[0]));

  Field wrong_dims;
  wrong_dims.dims = {8, 32};
  wrong_dims.f32.assign(8 * 32, 0.0f);
  EXPECT_THROW(session.push(wrong_dims), std::invalid_argument);

  Field wrong_scalar;
  wrong_scalar.dims = {16, 16};
  wrong_scalar.f64.assign(16 * 16, 0.0);
  EXPECT_THROW(session.push(wrong_scalar), std::invalid_argument);

  TimeSeriesOptions transient;
  transient.keep_archives = false;
  TimeSeriesSession ephemeral(FixedPsnr{60.0}, transient);
  const auto rec = ephemeral.push(to_public(series[0]));
  EXPECT_FALSE(rec.report.archive.empty());  // the caller still gets bytes
  EXPECT_THROW(ephemeral.archive(0), std::logic_error);
  EXPECT_THROW(ephemeral.decode_range(0, 1), std::logic_error);
}

TEST(Temporal, DoublePrecisionSeriesRoundTrips) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{32, 32};
  cfg.snapshots = 5;
  cfg.dt = 0.05;
  const auto series = data::make_advected_series_f64(cfg);

  TimeSeriesOptions opts;
  opts.series = "rho64";
  opts.keyframe_interval = 4;
  TimeSeriesSession session(FixedPsnr{80.0}, opts);
  TimeSeriesDecoder decoder;
  for (const auto& snap : series) {
    Field f;
    f.dims = snap.dims.extents;
    f.f64 = snap.values;
    const SnapshotRecord rec = session.push(f);
    const Field out = decoder.feed(rec.report.archive);
    ASSERT_TRUE(out.is_double());
    EXPECT_GT(metrics::compare<double>(snap.values, out.f64).psnr_db, 79.0);
  }
  // Mixed scalars in one chain are a geometry violation for the decoder
  // too: an f32 frame from another series cannot continue an f64 chain.
  const auto f32_series = slow_series(1, data::Dims{32, 32});
  TimeSeriesSession f32_session(FixedPsnr{80.0}, opts);
  f32_session.push(to_public(f32_series[0]));
  EXPECT_THROW(decoder.feed(f32_session.archive(0)), io::StreamError);
}

TEST(Temporal, Rank3SeriesRoundTrips) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{12, 16, 20};
  cfg.snapshots = 4;
  cfg.dt = 0.05;
  const auto series = data::make_advected_series(cfg);

  TimeSeriesSession session(FixedPsnr{62.0}, {});
  for (const auto& snap : series) session.push(to_public(snap));
  const auto decoded = session.decode_range(0, series.size());
  ASSERT_EQ(decoded.size(), series.size());
  for (std::size_t t = 0; t < series.size(); ++t) {
    ASSERT_EQ(decoded[t].dims, cfg.dims.extents);
    EXPECT_GT(psnr_vs(series[t].values, decoded[t]), 61.0) << "frame " << t;
  }
}

TEST(Temporal, BeatsSpatialOnlyOnSlowlyEvolvingData) {
  // The reason this subsystem exists: at the same PSNR target, coding the
  // slow-evolution series as deltas must use substantially fewer bytes
  // than coding every snapshot spatially. The CI bench gate enforces a
  // 1.4x series-ratio win; this in-tree check uses a softer 1.2x floor so
  // a marginal codec tweak fails the bench gate before it fails the tests.
  const auto series = slow_series(12);
  const double target_db = 60.0;

  Session spatial;
  std::size_t spatial_bytes = 0;
  for (const auto& snap : series)
    spatial_bytes +=
        spatial
            .compress(Source::memory(std::span<const float>(snap.values),
                                     snap.dims.extents),
                      FixedPsnr{target_db}, Sink::memory())
            .compressed_bytes;

  TimeSeriesOptions opts;
  opts.keyframe_interval = 12;  // one keyframe, eleven deltas
  TimeSeriesSession temporal(FixedPsnr{target_db}, opts);
  std::size_t temporal_bytes = 0;
  std::size_t delta_blocks = 0;
  for (const auto& snap : series) {
    const SnapshotRecord rec = temporal.push(to_public(snap));
    temporal_bytes += rec.report.compressed_bytes;
    delta_blocks += rec.temporal_blocks;
  }

  EXPECT_GT(delta_blocks, 0u);
  EXPECT_LT(static_cast<double>(temporal_bytes),
            static_cast<double>(spatial_bytes) / 1.2)
      << "temporal " << temporal_bytes << " vs spatial " << spatial_bytes;

  // And the chain still holds the per-frame guarantee.
  const auto decoded = temporal.decode_range(0, series.size());
  for (std::size_t t = 0; t < series.size(); ++t)
    EXPECT_GT(psnr_vs(series[t].values, decoded[t]), target_db - 1.0);
}

TEST(Temporal, InspectReportsTheChain) {
  const auto series = slow_series(3);
  TimeSeriesOptions opts;
  opts.series = "vx";
  TimeSeriesSession session(FixedPsnr{60.0}, opts);
  for (const auto& snap : series) session.push(to_public(snap));

  Session plain;
  const Inspection key = plain.inspect(Source::memory(
      std::span<const std::uint8_t>(session.archive(0))));
  EXPECT_TRUE(key.block_container);
  EXPECT_EQ(key.version, 4);
  EXPECT_TRUE(key.temporal);
  EXPECT_FALSE(key.delta);
  EXPECT_EQ(key.timestep, 0u);
  EXPECT_EQ(key.ref_hash, 0u);
  EXPECT_EQ(key.temporal_blocks, 0u);

  const Inspection delta = plain.inspect(Source::memory(
      std::span<const std::uint8_t>(session.archive(2))));
  EXPECT_TRUE(delta.temporal);
  EXPECT_TRUE(delta.delta);
  EXPECT_EQ(delta.timestep, 2u);
  EXPECT_EQ(delta.series_id, key.series_id);
  EXPECT_NE(delta.ref_hash, 0u);
  EXPECT_GT(delta.temporal_blocks, 0u);

  // Spatial archives keep reporting a zeroed chain.
  const auto spatial_report =
      plain.compress(Source::memory(std::span<const float>(series[0].values),
                                    series[0].dims.extents),
                     FixedPsnr{60.0}, Sink::memory());
  const Inspection spatial = plain.inspect(
      Source::memory(std::span<const std::uint8_t>(spatial_report.archive)));
  EXPECT_FALSE(spatial.temporal);
  EXPECT_EQ(spatial.version, 3);
  EXPECT_EQ(spatial.series_id, 0u);
}
