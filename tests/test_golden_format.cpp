// Golden-file format test: a tiny reference FPBK archive checked in under
// tests/data/ locks the on-disk format. If a change to the container
// layout, the index, the SZ codec bytes, or the Huffman/lossless stages
// breaks compatibility with archives written by earlier builds, this test
// fails — bump the container version and keep the old reader instead of
// silently orphaning every archive in the field.
//
// The fixture was produced by (see tests/data/README.md):
//   fpsnr_cli compress -i golden_v1_input.f32 -d 16x8 -m psnr -v 60
//             --block-size 4 -o golden_v1.fpbk
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "core/pipeline.h"
#include "fpsnr/timeseries.h"
#include "io/streaming_archive.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace io = fpsnr::io;

namespace {

std::string data_path(const std::string& name) {
  return std::string(FPSNR_TEST_DATA_DIR) + "/" + name;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

fpsnr::metrics::ErrorReport verify_stream(std::span<const float> values,
                                          std::span<const std::uint8_t> stream) {
  const auto decoded = core::decompress<float>(stream);
  return fpsnr::metrics::compare<float>(values, decoded.values);
}

std::vector<float> read_f32(const std::string& path) {
  const auto raw = read_bytes(path);
  EXPECT_EQ(raw.size() % sizeof(float), 0u);
  std::vector<float> values(raw.size() / sizeof(float));
  if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
  return values;
}

}  // namespace

TEST(GoldenFormat, HeaderFieldsAreStable) {
  const auto archive = read_bytes(data_path("golden_v1.fpbk"));
  ASSERT_TRUE(core::is_block_stream(archive));
  const auto info = core::inspect_block_stream(archive);
  EXPECT_EQ(info.codec, core::kCodecSzLorenzo);
  EXPECT_EQ(info.codec_name, "sz-lorenzo");
  EXPECT_EQ(info.dims, (fpsnr::data::Dims{16, 8}));
  EXPECT_EQ(info.tile, (std::vector<std::size_t>{4, 8}));
  EXPECT_EQ(info.block_count, 4u);
  EXPECT_EQ(info.control_mode, core::ControlMode::FixedPsnr);
  EXPECT_DOUBLE_EQ(info.control_value, 60.0);
}

TEST(GoldenFormat, DecodesBitExactly) {
  const auto archive = read_bytes(data_path("golden_v1.fpbk"));
  const auto expected = read_f32(data_path("golden_v1_decoded.f32"));
  ASSERT_EQ(expected.size(), 128u);

  const auto full = core::decompress_blocked<float>(archive);
  ASSERT_EQ(full.values.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(full.values[i], expected[i]) << "value " << i;

  // Random access must agree with the full decode, block by block.
  for (std::size_t b = 0; b < 4; ++b) {
    const auto block = core::decompress_block<float>(archive, b);
    for (std::size_t i = 0; i < block.values.size(); ++i)
      ASSERT_EQ(block.values[i], expected[b * 4 * 8 + i])
          << "block " << b << " value " << i;
  }
}

TEST(GoldenFormat, DecodeStaysWithinQualityContract) {
  // The archive promises fixed-PSNR 60 dB over the original input; the
  // checked-in input lets us re-verify the contract, not just the bytes.
  const auto archive = read_bytes(data_path("golden_v1.fpbk"));
  const auto original = read_f32(data_path("golden_v1_input.f32"));
  const auto report = verify_stream(original, archive);
  EXPECT_GE(report.psnr_db, 59.5);
}

TEST(GoldenFormat, MmapReaderAcceptsGoldenArchive) {
  const io::MmapArchiveReader reader(data_path("golden_v1.fpbk"));
  EXPECT_EQ(reader.block_count(), 4u);
  const auto expected = read_f32(data_path("golden_v1_decoded.f32"));
  const auto full = core::decompress_file<float>(data_path("golden_v1.fpbk"));
  EXPECT_EQ(full.values, expected);
}

TEST(GoldenFormat, V1ArchiveReportsNoRecordedPsnr) {
  // v1 has no per-block SSE index column; the reader must say so instead
  // of inventing a number.
  const auto archive = read_bytes(data_path("golden_v1.fpbk"));
  const auto info = core::inspect_block_stream(archive);
  EXPECT_EQ(info.version, 1);
  EXPECT_EQ(info.budget_mode, core::BudgetMode::Uniform);
  EXPECT_TRUE(std::isnan(info.achieved_psnr_db));
  EXPECT_EQ(info.achieved_sse, -1.0);
}

// --- v2 fixtures: new codec bytes + per-block-SSE index column ------------
//
// Produced by (see tests/data/README.md):
//   fpsnr_cli compress -i golden_v2_input.f32 -d 24x8 -m psnr -v 60
//             --engine {interp|zfpr|store} [--budget adaptive] --block-size 6
//             -o golden_v2_{interp|zfpr|store}.fpbk

struct GoldenV2Case {
  const char* archive;
  const char* decoded;  ///< nullptr = decodes to the input bit-exactly
  core::CodecId codec;
  const char* codec_name;
  core::BudgetMode budget;
};

class GoldenV2 : public ::testing::TestWithParam<GoldenV2Case> {};

TEST_P(GoldenV2, HeaderCodecByteAndBudgetModeAreStable) {
  const auto& c = GetParam();
  const auto archive = read_bytes(data_path(c.archive));
  ASSERT_TRUE(core::is_block_stream(archive));
  const auto info = core::inspect_block_stream(archive);
  EXPECT_EQ(info.version, 2);
  EXPECT_EQ(info.codec, c.codec);
  EXPECT_EQ(info.codec_name, c.codec_name);
  EXPECT_EQ(info.budget_mode, c.budget);
  EXPECT_EQ(info.dims, (fpsnr::data::Dims{24, 8}));
  EXPECT_EQ(info.tile, (std::vector<std::size_t>{6, 8}));
  EXPECT_EQ(info.block_count, 4u);
  EXPECT_EQ(info.control_mode, core::ControlMode::FixedPsnr);
  EXPECT_DOUBLE_EQ(info.control_value, 60.0);
}

TEST_P(GoldenV2, DecodesBitExactly) {
  const auto& c = GetParam();
  const auto archive = read_bytes(data_path(c.archive));
  const auto expected =
      read_f32(data_path(c.decoded ? c.decoded : "golden_v2_input.f32"));
  ASSERT_EQ(expected.size(), 192u);
  const auto full = core::decompress_blocked<float>(archive);
  ASSERT_EQ(full.values.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(full.values[i], expected[i]) << "value " << i;

  // Random access must agree, including store-demoted blocks.
  for (std::size_t b = 0; b < 4; ++b) {
    const auto block = core::decompress_block<float>(archive, b);
    for (std::size_t i = 0; i < block.values.size(); ++i)
      ASSERT_EQ(block.values[i], expected[b * 6 * 8 + i])
          << "block " << b << " value " << i;
  }
}

TEST_P(GoldenV2, RecordedSseColumnMatchesDecodeExactly) {
  // The per-block-SSE index field is part of the format contract: the
  // recorded PSNR must reproduce a from-scratch recomputation against the
  // checked-in input to 1e-6 dB.
  const auto& c = GetParam();
  const auto archive = read_bytes(data_path(c.archive));
  const auto original = read_f32(data_path("golden_v2_input.f32"));
  const auto info = core::inspect_block_stream(archive);
  ASSERT_GE(info.achieved_sse, 0.0);
  const auto report = verify_stream(original, archive);
  if (std::isinf(report.psnr_db))
    EXPECT_TRUE(std::isinf(info.achieved_psnr_db));
  else
    EXPECT_NEAR(info.achieved_psnr_db, report.psnr_db, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    NewCodecs, GoldenV2,
    ::testing::Values(
        GoldenV2Case{"golden_v2_interp.fpbk", "golden_v2_interp_decoded.f32",
                     core::kCodecInterp, "interp", core::BudgetMode::Adaptive},
        GoldenV2Case{"golden_v2_zfpr.fpbk", "golden_v2_zfpr_decoded.f32",
                     core::kCodecZfpRate, "zfpr", core::BudgetMode::Uniform},
        GoldenV2Case{"golden_v2_store.fpbk", nullptr, core::kCodecStore,
                     "store", core::BudgetMode::Uniform}),
    [](const ::testing::TestParamInfo<GoldenV2Case>& info) {
      return std::string(info.param.codec_name);
    });

// --- v3 fixture: full-rank tile geometry in the header --------------------
//
// Produced by (see tests/data/README.md):
//   fpsnr_cli compress -i golden_v3_input.f32 -d 40x16 -m psnr -v 60
//             --budget adaptive --tile 10x8 -o golden_v3.fpbk

TEST(GoldenFormat, V3HeaderCarriesTileGeometry) {
  const auto archive = read_bytes(data_path("golden_v3.fpbk"));
  ASSERT_TRUE(core::is_block_stream(archive));
  const auto info = core::inspect_block_stream(archive);
  EXPECT_EQ(info.version, 3);
  EXPECT_EQ(info.codec, core::kCodecSzLorenzo);
  EXPECT_EQ(info.dims, (fpsnr::data::Dims{40, 16}));
  EXPECT_EQ(info.tile, (std::vector<std::size_t>{10, 8}));  // grid 4x2
  EXPECT_EQ(info.block_count, 8u);
  EXPECT_EQ(info.control_mode, core::ControlMode::FixedPsnr);
  EXPECT_DOUBLE_EQ(info.control_value, 60.0);
  EXPECT_EQ(info.budget_mode, core::BudgetMode::Adaptive);
  ASSERT_GE(info.achieved_sse, 0.0);
}

TEST(GoldenFormat, V3DecodesBitExactly) {
  const auto archive = read_bytes(data_path("golden_v3.fpbk"));
  const auto expected = read_f32(data_path("golden_v3_decoded.f32"));
  ASSERT_EQ(expected.size(), 640u);

  const auto full = core::decompress_blocked<float>(archive);
  ASSERT_EQ(full.values.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(full.values[i], expected[i]) << "value " << i;

  // Random access must agree with the full decode through the tile
  // scatter path (tiles are 10x8 over a 16-wide field: never row-contiguous).
  for (std::size_t b = 0; b < 8; ++b) {
    const auto block = core::decompress_block<float>(archive, b);
    ASSERT_EQ(block.dims, (fpsnr::data::Dims{10, 8})) << "block " << b;
    const std::size_t r0 = (b / 2) * 10, c0 = (b % 2) * 8;
    for (std::size_t i = 0; i < block.values.size(); ++i) {
      const std::size_t r = r0 + i / 8, c = c0 + i % 8;
      ASSERT_EQ(block.values[i], expected[r * 16 + c])
          << "block " << b << " value " << i;
    }
  }
}

TEST(GoldenFormat, V3QualityContractAndRecordedPsnr) {
  const auto archive = read_bytes(data_path("golden_v3.fpbk"));
  const auto original = read_f32(data_path("golden_v3_input.f32"));
  const auto report = verify_stream(original, archive);
  EXPECT_GE(report.psnr_db, 60.0);  // fixed-PSNR target of the fixture
  const auto info = core::inspect_block_stream(archive);
  EXPECT_NEAR(info.achieved_psnr_db, report.psnr_db, 1e-6);
}

// --- v4: the temporal chain header ------------------------------------------
//
// golden_v4_key.fpbk / golden_v4.fpbk are a two-frame chain (keyframe at
// t=0, delta frame at t=1) written by fpsnr_cli compress-series; see
// tests/data/README.md for full provenance.

TEST(GoldenFormat, V4HeaderCarriesChainMetadata) {
  const auto key = read_bytes(data_path("golden_v4_key.fpbk"));
  const auto delta = read_bytes(data_path("golden_v4.fpbk"));
  ASSERT_TRUE(core::is_block_stream(key));
  ASSERT_TRUE(core::is_block_stream(delta));

  const auto ki = core::inspect_block_stream(key);
  EXPECT_EQ(ki.version, 4);
  EXPECT_TRUE(ki.temporal);
  EXPECT_FALSE(ki.delta);
  EXPECT_EQ(ki.timestep, 0u);
  EXPECT_EQ(ki.ref_hash, 0u);  // keyframes reference nothing
  EXPECT_EQ(ki.temporal_blocks, 0u);

  const auto di = core::inspect_block_stream(delta);
  EXPECT_EQ(di.version, 4);
  EXPECT_TRUE(di.temporal);
  EXPECT_TRUE(di.delta);
  EXPECT_EQ(di.timestep, 1u);
  EXPECT_EQ(di.series_id, ki.series_id);  // same chain identity
  // The chain identity and reference hash are part of the locked format.
  EXPECT_EQ(di.series_id, 0x1525268c7de1d0e9ull);  // FNV-1a("golden-v4")
  EXPECT_EQ(di.ref_hash, 0x2170c9a1d4ae0addull);
  EXPECT_EQ(di.dims, (fpsnr::data::Dims{24, 16}));
  EXPECT_EQ(di.tile, (std::vector<std::size_t>{8, 16}));
  EXPECT_EQ(di.block_count, 3u);
  EXPECT_EQ(di.temporal_blocks, 3u);  // slow evolution: every block delta
  EXPECT_EQ(di.control_mode, core::ControlMode::FixedPsnr);
  EXPECT_DOUBLE_EQ(di.control_value, 60.0);
}

TEST(GoldenFormat, V4ChainDecodesBitExactly) {
  const auto key = read_bytes(data_path("golden_v4_key.fpbk"));
  const auto delta = read_bytes(data_path("golden_v4.fpbk"));
  const auto expected = read_f32(data_path("golden_v4_decoded.f32"));
  ASSERT_EQ(expected.size(), 384u);

  fpsnr::TimeSeriesDecoder dec;
  dec.feed(key);
  const auto frame = dec.feed(delta);
  ASSERT_EQ(frame.f32.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(frame.f32[i], expected[i]) << "value " << i;

  // The delta frame never decodes standalone: without the keyframe the
  // chain contract is unmet, and a fresh decoder must say so.
  fpsnr::TimeSeriesDecoder fresh;
  EXPECT_THROW((void)fresh.feed(delta), std::runtime_error);
}

TEST(GoldenFormat, V4QualityContractHoldsAgainstTheOriginal) {
  // The fixed-PSNR promise is anchored to the ORIGINAL snapshot, not the
  // previous reconstruction — re-verify it from the checked-in input.
  const auto key = read_bytes(data_path("golden_v4_key.fpbk"));
  const auto delta = read_bytes(data_path("golden_v4.fpbk"));
  const auto original = read_f32(data_path("golden_v4_t1.f32"));

  fpsnr::TimeSeriesDecoder dec;
  dec.feed(key);
  const auto frame = dec.feed(delta);
  const auto report =
      fpsnr::metrics::compare<float>(original, frame.f32);
  EXPECT_GE(report.psnr_db, 59.5);
}
