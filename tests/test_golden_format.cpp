// Golden-file format test: a tiny reference FPBK archive checked in under
// tests/data/ locks the on-disk format. If a change to the container
// layout, the index, the SZ codec bytes, or the Huffman/lossless stages
// breaks compatibility with archives written by earlier builds, this test
// fails — bump the container version and keep the old reader instead of
// silently orphaning every archive in the field.
//
// The fixture was produced by (see tests/data/README.md):
//   fpsnr_cli compress -i golden_v1_input.f32 -d 16x8 -m psnr -v 60
//             --block-size 4 -o golden_v1.fpbk
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "io/streaming_archive.h"

namespace core = fpsnr::core;
namespace io = fpsnr::io;

namespace {

std::string data_path(const std::string& name) {
  return std::string(FPSNR_TEST_DATA_DIR) + "/" + name;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<float> read_f32(const std::string& path) {
  const auto raw = read_bytes(path);
  EXPECT_EQ(raw.size() % sizeof(float), 0u);
  std::vector<float> values(raw.size() / sizeof(float));
  if (!raw.empty()) std::memcpy(values.data(), raw.data(), raw.size());
  return values;
}

}  // namespace

TEST(GoldenFormat, HeaderFieldsAreStable) {
  const auto archive = read_bytes(data_path("golden_v1.fpbk"));
  ASSERT_TRUE(core::is_block_stream(archive));
  const auto info = core::inspect_block_stream(archive);
  EXPECT_EQ(info.codec, core::kCodecSzLorenzo);
  EXPECT_EQ(info.codec_name, "sz-lorenzo");
  EXPECT_EQ(info.dims, (fpsnr::data::Dims{16, 8}));
  EXPECT_EQ(info.block_rows, 4u);
  EXPECT_EQ(info.block_count, 4u);
  EXPECT_EQ(info.control_mode, core::ControlMode::FixedPsnr);
  EXPECT_DOUBLE_EQ(info.control_value, 60.0);
}

TEST(GoldenFormat, DecodesBitExactly) {
  const auto archive = read_bytes(data_path("golden_v1.fpbk"));
  const auto expected = read_f32(data_path("golden_v1_decoded.f32"));
  ASSERT_EQ(expected.size(), 128u);

  const auto full = core::decompress_blocked<float>(archive);
  ASSERT_EQ(full.values.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(full.values[i], expected[i]) << "value " << i;

  // Random access must agree with the full decode, block by block.
  for (std::size_t b = 0; b < 4; ++b) {
    const auto block = core::decompress_block<float>(archive, b);
    for (std::size_t i = 0; i < block.values.size(); ++i)
      ASSERT_EQ(block.values[i], expected[b * 4 * 8 + i])
          << "block " << b << " value " << i;
  }
}

TEST(GoldenFormat, DecodeStaysWithinQualityContract) {
  // The archive promises fixed-PSNR 60 dB over the original input; the
  // checked-in input lets us re-verify the contract, not just the bytes.
  const auto archive = read_bytes(data_path("golden_v1.fpbk"));
  const auto original = read_f32(data_path("golden_v1_input.f32"));
  const auto report = core::verify<float>(original, archive);
  EXPECT_GE(report.psnr_db, 59.5);
}

TEST(GoldenFormat, MmapReaderAcceptsGoldenArchive) {
  const io::MmapArchiveReader reader(data_path("golden_v1.fpbk"));
  EXPECT_EQ(reader.block_count(), 4u);
  const auto expected = read_f32(data_path("golden_v1_decoded.f32"));
  const auto full = core::decompress_file<float>(data_path("golden_v1.fpbk"));
  EXPECT_EQ(full.values, expected);
}
