// Unit tests for io::ByteWriter / io::ByteReader.
#include "io/bytebuffer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

namespace io = fpsnr::io;

TEST(ByteBuffer, ScalarsRoundTrip) {
  io::ByteWriter w;
  w.put<std::uint8_t>(0xAB);
  w.put<std::uint32_t>(0xDEADBEEF);
  w.put<std::uint64_t>(0x0123456789ABCDEFull);
  w.put<double>(3.14159);
  w.put<float>(-2.5f);
  const auto buf = w.take();
  io::ByteReader r(buf);
  EXPECT_EQ(r.get<std::uint8_t>(), 0xAB);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<std::uint64_t>(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_FLOAT_EQ(r.get<float>(), -2.5f);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, LittleEndianLayout) {
  io::ByteWriter w;
  w.put<std::uint32_t>(0x04030201);
  const auto buf = w.buffer();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(ByteBuffer, VarintBoundaries) {
  const std::uint64_t cases[] = {0,   1,    127,        128,
                                 129, 300,  16383,      16384,
                                 ~0ull, 1ull << 63, 0xFFFFFFFFull};
  io::ByteWriter w;
  for (std::uint64_t v : cases) w.put_varint(v);
  const auto buf = w.take();
  io::ByteReader r(buf);
  for (std::uint64_t v : cases) EXPECT_EQ(r.get_varint(), v);
}

TEST(ByteBuffer, VarintSizes) {
  io::ByteWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(128);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(ByteBuffer, BlobRoundTrip) {
  io::ByteWriter w;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  w.put_blob(payload);
  w.put_blob({});  // empty blob is legal
  const auto buf = w.take();
  io::ByteReader r(buf);
  EXPECT_EQ(r.get_blob(), payload);
  EXPECT_TRUE(r.get_blob().empty());
}

TEST(ByteBuffer, BlobViewDoesNotCopy) {
  io::ByteWriter w;
  const std::vector<std::uint8_t> payload = {7, 8, 9};
  w.put_blob(payload);
  const auto buf = w.take();
  io::ByteReader r(buf);
  const auto view = r.get_blob_view();
  EXPECT_EQ(view.size(), 3u);
  EXPECT_GE(view.data(), buf.data());
  EXPECT_LT(view.data(), buf.data() + buf.size());
}

TEST(ByteBuffer, ReadPastEndThrows) {
  io::ByteWriter w;
  w.put<std::uint16_t>(7);
  const auto buf = w.take();
  io::ByteReader r(buf);
  EXPECT_THROW(r.get<std::uint32_t>(), io::StreamError);
}

TEST(ByteBuffer, TruncatedBlobThrows) {
  io::ByteWriter w;
  w.put<std::uint64_t>(100);  // declared length 100, no payload
  const auto buf = w.take();
  io::ByteReader r(buf);
  EXPECT_THROW(r.get_blob(), io::StreamError);
}

TEST(ByteBuffer, TruncatedVarintThrows) {
  const std::uint8_t truncated[] = {0x80};  // continuation bit, no next byte
  io::ByteReader r(truncated);
  EXPECT_THROW(r.get_varint(), io::StreamError);
}

TEST(ByteBuffer, OverlongVarintThrows) {
  // 11 bytes of continuation would encode > 64 bits.
  std::vector<std::uint8_t> bad(11, 0xFF);
  bad.back() = 0x7F;
  io::ByteReader r(bad);
  EXPECT_THROW(r.get_varint(), io::StreamError);
}

TEST(ByteBuffer, PositionAndRemaining) {
  io::ByteWriter w;
  w.put<std::uint32_t>(1);
  w.put<std::uint32_t>(2);
  const auto buf = w.take();
  io::ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  r.get<std::uint32_t>();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.exhausted());
}

TEST(ByteBuffer, RandomizedVarintRoundTrip) {
  std::mt19937_64 rng(7);
  io::ByteWriter w;
  std::vector<std::uint64_t> values(2000);
  for (auto& v : values) {
    const unsigned width = static_cast<unsigned>(rng() % 64) + 1;
    v = rng() & ((width == 64) ? ~0ull : ((1ull << width) - 1));
    w.put_varint(v);
  }
  const auto buf = w.take();
  io::ByteReader r(buf);
  for (std::uint64_t v : values) ASSERT_EQ(r.get_varint(), v);
}
