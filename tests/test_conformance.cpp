// Cross-codec conformance suite, driven through the public fpsnr::Session
// facade: one parameterized fixture sweeping every block codec
// {SZ-Lorenzo, Haar, DCT, Interp, ZfpRate, Store} × PSNR target {40, 60,
// 80 dB} × field shape {1-D, 2-D, 3-D} × tile geometry {axis-0 slab,
// full-rank non-slab} × content {smooth random, constant}, plus an
// adaptive-budget sweep over a non-slab tile. Every combination must (a)
// meet its fixed-PSNR target, (b) round-trip through the facade, and (c)
// produce a byte-identical archive through the streaming sink AND the
// legacy core::compress_blocked entry point — the format contract the
// paper's fixed-PSNR claim rests on, enforced codec-by-codec. Engine names
// come from the live codec registry, never a local table. Slab cases are
// additionally re-serialized in the v1 and v2 container layouts to pin the
// backward-decode guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "fpsnr/fpsnr.h"

#include "core/pipeline.h"
#include "data/synth.h"
#include "io/archive.h"
#include "io/bitstream.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace io = fpsnr::io;
namespace metrics = fpsnr::metrics;

namespace {

namespace fs = std::filesystem;

struct Case {
  core::Engine engine;
  double target_db;
  data::Dims dims;
  std::vector<std::size_t> tile;
  bool constant;
  core::BudgetMode budget = core::BudgetMode::Uniform;
};

/// Registry name of the engine — the same string the CLI and the Session
/// accept, so the test sweep can never drift from the live codec set.
std::string engine_name(core::Engine e) {
  return std::string(core::CodecRegistry::instance()
                         .at(static_cast<core::CodecId>(e))
                         .name());
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = engine_name(c.engine) + "_" +
                     std::to_string(static_cast<int>(c.target_db)) + "db_" +
                     std::to_string(c.dims.rank()) + "d_tile";
  for (std::size_t i = 0; i < c.tile.size(); ++i)
    name += (i ? "x" : "") + std::to_string(c.tile[i]);
  if (c.constant) name += "_const";
  if (c.budget == core::BudgetMode::Adaptive) name += "_adaptive";
  // Gtest parameter names must be alphanumeric/underscore only.
  for (char& ch : name)
    if (ch == '-') ch = '_';
  return name;
}

std::vector<Case> all_cases() {
  const core::Engine engines[] = {core::Engine::SzLorenzo,
                                  core::Engine::TransformHaar,
                                  core::Engine::TransformDct,
                                  core::Engine::Interp,
                                  core::Engine::ZfpRate,
                                  core::Engine::Store};
  const double targets[] = {40.0, 60.0, 80.0};
  // One slab and (for rank >= 2) one full-rank tile per rank; no extent
  // divides its field, so the short trailing tile is exercised on every
  // axis, interior and boundary.
  const std::pair<data::Dims, std::vector<std::size_t>> shapes[] = {
      {data::Dims{1000}, {300}},
      {data::Dims{52, 36}, {15}},          // axis-0 slab
      {data::Dims{52, 36}, {15, 10}},      // full-rank non-slab tile
      {data::Dims{14, 20, 18}, {5}},       // axis-0 slab
      {data::Dims{14, 20, 18}, {5, 7, 6}}, // full-rank non-slab tile
  };
  std::vector<Case> cases;
  for (core::Engine e : engines)
    for (double t : targets)
      for (const auto& [dims, tile] : shapes)
        for (bool constant : {false, true})
          cases.push_back({e, t, dims, tile, constant});
  // Adaptive budgets must honour the same contract; sweep every codec over
  // the 2-D shape at the middle target, on the non-slab tile so the
  // rank-aware residual probe sees gathered tile interiors.
  for (core::Engine e : engines)
    cases.push_back({e, 60.0, data::Dims{52, 36}, {15, 10}, false,
                     core::BudgetMode::Adaptive});
  return cases;
}

class Conformance : public ::testing::TestWithParam<Case> {
 protected:
  /// NaN-free random field (smoothed noise, deterministic seed) or a
  /// constant field, per the parameter.
  std::vector<float> make_field() const {
    const Case& c = GetParam();
    if (c.constant) return std::vector<float>(c.dims.count(), 4.25f);
    auto v = data::smoothed_noise(c.dims, 1234 + c.dims.rank(), 2, 2);
    data::rescale(v, -3.0f, 9.0f);
    return v;
  }

  fpsnr::Session make_session(std::size_t threads) const {
    const Case& c = GetParam();
    fpsnr::SessionOptions opts;
    opts.engine = engine_name(c.engine);
    opts.budget =
        c.budget == core::BudgetMode::Adaptive ? "adaptive" : "uniform";
    opts.threads = threads;
    opts.tile = fpsnr::TileShape(c.tile);
    return fpsnr::Session(std::move(opts));
  }
};

/// Re-serialize a v3 slab archive in the v1 or v2 byte layout, index and
/// payload preserved. This is exactly the byte stream an older build wrote
/// for the same blocks, so decoding it pins the backward-decode contract.
std::vector<std::uint8_t> downgrade(std::span<const std::uint8_t> v3,
                                    std::uint8_t version) {
  const auto view = io::open_block_container(v3);
  const auto& h = view.header;
  io::ByteWriter w;
  const std::uint8_t magic[4] = {'F', 'P', 'B', 'K'};
  w.put_bytes(std::span<const std::uint8_t>(magic, 4));
  w.put<std::uint8_t>(version);
  w.put<std::uint8_t>(h.codec);
  w.put<std::uint8_t>(h.scalar);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(h.extents.size()));
  for (std::uint64_t e : h.extents) w.put_varint(e);
  w.put_varint(h.tile[0]);  // v1/v2 carry only the slab height
  w.put_varint(h.block_count);
  w.put<double>(h.eb_abs);
  w.put<double>(h.value_range);
  w.put<std::uint8_t>(h.control_mode);
  w.put<double>(h.control_value);
  if (version >= 2) w.put<std::uint8_t>(h.budget_mode);
  std::uint64_t offset = 0;
  for (const auto& b : view.blocks) {
    w.put<std::uint64_t>(offset);
    offset += b.size();
  }
  for (const auto& b : view.blocks) w.put<std::uint64_t>(b.size());
  if (version >= 2)
    for (double sse : view.block_sse) w.put<double>(sse);
  for (const auto& b : view.blocks) w.put_bytes(b);
  return w.take();
}

}  // namespace

TEST_P(Conformance, MeetsPsnrTargetAndStreamsByteIdentically) {
  const Case& c = GetParam();
  const auto values = make_field();
  const fpsnr::Target target = fpsnr::FixedPsnr{c.target_db};
  const fpsnr::Source source =
      fpsnr::Source::memory(std::span<const float>(values), c.dims.extents);

  const auto mem =
      make_session(2).compress(source, target, fpsnr::Sink::memory());

  // (a) Quality: the fixed-PSNR guarantee. The per-point budget comes from
  // the uniform-quantization model (Eq. 6), whose MSE prediction eb^2/3 is
  // an average-case equality — measured PSNR therefore tracks the target
  // from above for predictable content but may sit a fraction of a dB
  // under it when residuals fill the bins uniformly. Allow that fraction,
  // nothing more.
  const auto decoded = make_session(2).decompress(
      fpsnr::Source::memory(std::span<const std::uint8_t>(mem.archive)));
  const auto report = metrics::compare<float>(values, decoded.f32);
  if (c.constant || c.engine == core::Engine::Store) {
    EXPECT_EQ(decoded.f32, values)
        << (c.constant ? "constant field" : "store codec")
        << " must stay exact";
  } else {
    EXPECT_GE(report.psnr_db, c.target_db - 0.5)
        << engine_name(c.engine) << " missed " << c.target_db << " dB";
  }

  // The v3 container must report the measured PSNR exactly (the per-block
  // SSE column), matching an independent recomputation from the raw data.
  const auto info = make_session(1).inspect(
      fpsnr::Source::memory(std::span<const std::uint8_t>(mem.archive)));
  ASSERT_EQ(info.version, 3);
  if (std::isinf(report.psnr_db))
    EXPECT_TRUE(std::isinf(info.achieved_psnr_db));
  else
    EXPECT_NEAR(info.achieved_psnr_db, report.psnr_db, 1e-6);

  // (b) Round-trip shape.
  ASSERT_EQ(decoded.dims, c.dims.extents);
  ASSERT_EQ(decoded.f32.size(), values.size());

  // (c) Byte identity: the streaming sink at a different thread count AND
  // the legacy core:: entry point both produce the same archive.
  const auto path = fs::temp_directory_path() /
                    ("fpsnr-conformance-" +
                     case_name({GetParam(), 0}) + ".fpbk");
  make_session(4).compress(source, target, fpsnr::Sink::stream(path.string()));
  std::ifstream in(path, std::ios::binary);
  const std::vector<std::uint8_t> file_bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(file_bytes, mem.archive);
  fs::remove(path);

  core::CompressOptions lopts;
  lopts.engine = c.engine;
  lopts.budget = c.budget;
  lopts.parallel.block_pipeline = true;
  lopts.parallel.threads = 2;
  lopts.parallel.tile = c.tile;
  const auto legacy = core::compress_blocked<float>(
      std::span<const float>(values), c.dims,
      core::ControlRequest::fixed_psnr(c.target_db), lopts);
  EXPECT_EQ(legacy.stream, mem.archive)
      << "facade and legacy entry points must emit identical archives";
}

TEST_P(Conformance, V1AndV2SlabArchivesDecodeBitExactly) {
  // Backward compatibility: pre-v3 containers (axis-0 slabs, scalar
  // block_rows on the wire) must decode to the exact bytes the equivalent
  // v3 archive decodes to, through every codec. Full-rank tiles cannot be
  // expressed pre-v3, so only slab cases apply.
  const Case& c = GetParam();
  if (c.tile.size() > 1) GTEST_SKIP() << "full-rank tile is v3-only";

  const auto values = make_field();
  const auto mem = make_session(1).compress(
      fpsnr::Source::memory(std::span<const float>(values), c.dims.extents),
      fpsnr::FixedPsnr{c.target_db}, fpsnr::Sink::memory());
  const auto v3 = core::decompress_blocked<float>(mem.archive);

  for (const std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
    SCOPED_TRACE("container v" + std::to_string(version));
    const auto old = downgrade(mem.archive, version);
    const auto info = core::inspect_block_stream(old);
    EXPECT_EQ(info.version, version);
    ASSERT_EQ(info.tile.size(), c.dims.rank());
    EXPECT_EQ(info.tile[0], std::min<std::size_t>(c.tile[0], c.dims[0]));

    const auto out = core::decompress_blocked<float>(old, 2);
    EXPECT_EQ(out.values, v3.values) << "pre-v3 decode diverged";
    // Random access through the synthesized slab geometry too.
    const auto block = core::decompress_block<float>(old, info.block_count - 1);
    EXPECT_FALSE(block.values.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, Conformance,
                         ::testing::ValuesIn(all_cases()), case_name);
