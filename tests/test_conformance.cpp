// Cross-codec conformance suite: one parameterized fixture sweeping every
// block codec {SZ-Lorenzo, Haar, DCT, Interp, ZfpRate, Store} × PSNR
// target {40, 60, 80 dB} × field shape {1-D, 2-D, 3-D} × content {smooth
// random, constant}, plus an adaptive-budget sweep. Every combination must
// (a) meet its fixed-PSNR target, (b) round-trip through the block
// pipeline, and (c) produce a byte-identical archive through the streaming
// file path — the format contract the paper's fixed-PSNR claim rests on,
// enforced codec-by-codec.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/pipeline.h"
#include "data/synth.h"
#include "io/streaming_archive.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace io = fpsnr::io;

namespace {

namespace fs = std::filesystem;

struct Case {
  core::Engine engine;
  double target_db;
  data::Dims dims;
  std::size_t block_rows;
  bool constant;
  core::BudgetMode budget = core::BudgetMode::Uniform;
};

std::string engine_name(core::Engine e) {
  switch (e) {
    case core::Engine::SzLorenzo: return "sz";
    case core::Engine::TransformHaar: return "haar";
    case core::Engine::TransformDct: return "dct";
    case core::Engine::Interp: return "interp";
    case core::Engine::ZfpRate: return "zfpr";
    case core::Engine::Store: return "store";
  }
  return "unknown";
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = engine_name(c.engine) + "_" +
                     std::to_string(static_cast<int>(c.target_db)) + "db_" +
                     std::to_string(c.dims.rank()) + "d";
  if (c.constant) name += "_const";
  if (c.budget == core::BudgetMode::Adaptive) name += "_adaptive";
  return name;
}

std::vector<Case> all_cases() {
  const core::Engine engines[] = {core::Engine::SzLorenzo,
                                  core::Engine::TransformHaar,
                                  core::Engine::TransformDct,
                                  core::Engine::Interp,
                                  core::Engine::ZfpRate,
                                  core::Engine::Store};
  const double targets[] = {40.0, 60.0, 80.0};
  // One shape per rank, none divisible by its block_rows, so the short
  // final slab is exercised everywhere.
  const std::pair<data::Dims, std::size_t> shapes[] = {
      {data::Dims{1000}, 300},
      {data::Dims{52, 36}, 15},
      {data::Dims{14, 20, 18}, 5},
  };
  std::vector<Case> cases;
  for (core::Engine e : engines)
    for (double t : targets)
      for (const auto& [dims, rows] : shapes)
        for (bool constant : {false, true})
          cases.push_back({e, t, dims, rows, constant});
  // Adaptive budgets must honour the same contract; sweep every codec over
  // the 2-D shape at the middle target.
  for (core::Engine e : engines)
    cases.push_back({e, 60.0, data::Dims{52, 36}, 15, false,
                     core::BudgetMode::Adaptive});
  return cases;
}

class Conformance : public ::testing::TestWithParam<Case> {
 protected:
  /// NaN-free random field (smoothed noise, deterministic seed) or a
  /// constant field, per the parameter.
  std::vector<float> make_field() const {
    const Case& c = GetParam();
    if (c.constant) return std::vector<float>(c.dims.count(), 4.25f);
    auto v = data::smoothed_noise(c.dims, 1234 + c.dims.rank(), 2, 2);
    data::rescale(v, -3.0f, 9.0f);
    return v;
  }

  core::CompressOptions options(std::size_t threads) const {
    const Case& c = GetParam();
    core::CompressOptions opts;
    opts.engine = c.engine;
    opts.budget = c.budget;
    opts.parallel.block_pipeline = true;
    opts.parallel.threads = threads;
    opts.parallel.block_rows = c.block_rows;
    return opts;
  }
};

}  // namespace

TEST_P(Conformance, MeetsPsnrTargetAndStreamsByteIdentically) {
  const Case& c = GetParam();
  const auto values = make_field();
  const auto request = core::ControlRequest::fixed_psnr(c.target_db);

  const auto mem = core::compress_blocked<float>(std::span<const float>(values),
                                                 c.dims, request, options(2));

  // (a) Quality: the fixed-PSNR guarantee. The per-point budget comes from
  // the uniform-quantization model (Eq. 6), whose MSE prediction eb^2/3 is
  // an average-case equality — measured PSNR therefore tracks the target
  // from above for predictable content but may sit a fraction of a dB
  // under it when residuals fill the bins uniformly. Allow that fraction,
  // nothing more.
  const auto report = core::verify<float>(values, mem.stream);
  if (c.constant || c.engine == core::Engine::Store) {
    const auto out = core::decompress<float>(mem.stream);
    EXPECT_EQ(out.values, values)
        << (c.constant ? "constant field" : "store codec")
        << " must stay exact";
  } else {
    EXPECT_GE(report.psnr_db, c.target_db - 0.5)
        << engine_name(c.engine) << " missed " << c.target_db << " dB";
  }

  // The v2 container must report the measured PSNR exactly (the per-block
  // SSE column), matching an independent recomputation from the raw data.
  const auto info = core::inspect_block_stream(mem.stream);
  ASSERT_EQ(info.version, 2);
  if (std::isinf(report.psnr_db))
    EXPECT_TRUE(std::isinf(info.achieved_psnr_db));
  else
    EXPECT_NEAR(info.achieved_psnr_db, report.psnr_db, 1e-6);

  // (b) Round-trip shape.
  const auto out = core::decompress_blocked<float>(mem.stream, 2);
  ASSERT_EQ(out.dims, c.dims);
  ASSERT_EQ(out.values.size(), values.size());

  // (c) Streaming byte-identity, including at a different thread count.
  const auto path = fs::temp_directory_path() /
                    ("fpsnr-conformance-" +
                     case_name({GetParam(), 0}) + ".fpbk");
  core::compress_to_file<float>(std::span<const float>(values), c.dims,
                                request, options(4), path.string());
  std::ifstream in(path, std::ios::binary);
  const std::vector<std::uint8_t> file_bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(file_bytes, mem.stream);
  fs::remove(path);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, Conformance,
                         ::testing::ValuesIn(all_cases()), case_name);
