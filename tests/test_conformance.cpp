// Cross-codec conformance suite, driven through the public fpsnr::Session
// facade: one parameterized fixture sweeping every block codec
// {SZ-Lorenzo, Haar, DCT, Interp, ZfpRate, Store} × PSNR target {40, 60,
// 80 dB} × field shape {1-D, 2-D, 3-D} × content {smooth random,
// constant}, plus an adaptive-budget sweep. Every combination must (a)
// meet its fixed-PSNR target, (b) round-trip through the facade, and (c)
// produce a byte-identical archive through the streaming sink AND the
// legacy core::compress_blocked entry point — the format contract the
// paper's fixed-PSNR claim rests on, enforced codec-by-codec. Engine names
// come from the live codec registry, never a local table.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "fpsnr/fpsnr.h"

#include "core/pipeline.h"
#include "data/synth.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;

namespace {

namespace fs = std::filesystem;

struct Case {
  core::Engine engine;
  double target_db;
  data::Dims dims;
  std::size_t block_rows;
  bool constant;
  core::BudgetMode budget = core::BudgetMode::Uniform;
};

/// Registry name of the engine — the same string the CLI and the Session
/// accept, so the test sweep can never drift from the live codec set.
std::string engine_name(core::Engine e) {
  return std::string(core::CodecRegistry::instance()
                         .at(static_cast<core::CodecId>(e))
                         .name());
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = engine_name(c.engine) + "_" +
                     std::to_string(static_cast<int>(c.target_db)) + "db_" +
                     std::to_string(c.dims.rank()) + "d";
  if (c.constant) name += "_const";
  if (c.budget == core::BudgetMode::Adaptive) name += "_adaptive";
  // Gtest parameter names must be alphanumeric/underscore only.
  for (char& ch : name)
    if (ch == '-') ch = '_';
  return name;
}

std::vector<Case> all_cases() {
  const core::Engine engines[] = {core::Engine::SzLorenzo,
                                  core::Engine::TransformHaar,
                                  core::Engine::TransformDct,
                                  core::Engine::Interp,
                                  core::Engine::ZfpRate,
                                  core::Engine::Store};
  const double targets[] = {40.0, 60.0, 80.0};
  // One shape per rank, none divisible by its block_rows, so the short
  // final slab is exercised everywhere.
  const std::pair<data::Dims, std::size_t> shapes[] = {
      {data::Dims{1000}, 300},
      {data::Dims{52, 36}, 15},
      {data::Dims{14, 20, 18}, 5},
  };
  std::vector<Case> cases;
  for (core::Engine e : engines)
    for (double t : targets)
      for (const auto& [dims, rows] : shapes)
        for (bool constant : {false, true})
          cases.push_back({e, t, dims, rows, constant});
  // Adaptive budgets must honour the same contract; sweep every codec over
  // the 2-D shape at the middle target.
  for (core::Engine e : engines)
    cases.push_back({e, 60.0, data::Dims{52, 36}, 15, false,
                     core::BudgetMode::Adaptive});
  return cases;
}

class Conformance : public ::testing::TestWithParam<Case> {
 protected:
  /// NaN-free random field (smoothed noise, deterministic seed) or a
  /// constant field, per the parameter.
  std::vector<float> make_field() const {
    const Case& c = GetParam();
    if (c.constant) return std::vector<float>(c.dims.count(), 4.25f);
    auto v = data::smoothed_noise(c.dims, 1234 + c.dims.rank(), 2, 2);
    data::rescale(v, -3.0f, 9.0f);
    return v;
  }

  fpsnr::Session make_session(std::size_t threads) const {
    const Case& c = GetParam();
    fpsnr::SessionOptions opts;
    opts.engine = engine_name(c.engine);
    opts.budget =
        c.budget == core::BudgetMode::Adaptive ? "adaptive" : "uniform";
    opts.threads = threads;
    opts.block_rows = c.block_rows;
    return fpsnr::Session(std::move(opts));
  }
};

}  // namespace

TEST_P(Conformance, MeetsPsnrTargetAndStreamsByteIdentically) {
  const Case& c = GetParam();
  const auto values = make_field();
  const fpsnr::Target target = fpsnr::FixedPsnr{c.target_db};
  const fpsnr::Source source =
      fpsnr::Source::memory(std::span<const float>(values), c.dims.extents);

  const auto mem =
      make_session(2).compress(source, target, fpsnr::Sink::memory());

  // (a) Quality: the fixed-PSNR guarantee. The per-point budget comes from
  // the uniform-quantization model (Eq. 6), whose MSE prediction eb^2/3 is
  // an average-case equality — measured PSNR therefore tracks the target
  // from above for predictable content but may sit a fraction of a dB
  // under it when residuals fill the bins uniformly. Allow that fraction,
  // nothing more.
  const auto decoded = make_session(2).decompress(
      fpsnr::Source::memory(std::span<const std::uint8_t>(mem.archive)));
  const auto report = metrics::compare<float>(values, decoded.f32);
  if (c.constant || c.engine == core::Engine::Store) {
    EXPECT_EQ(decoded.f32, values)
        << (c.constant ? "constant field" : "store codec")
        << " must stay exact";
  } else {
    EXPECT_GE(report.psnr_db, c.target_db - 0.5)
        << engine_name(c.engine) << " missed " << c.target_db << " dB";
  }

  // The v2 container must report the measured PSNR exactly (the per-block
  // SSE column), matching an independent recomputation from the raw data.
  const auto info = make_session(1).inspect(
      fpsnr::Source::memory(std::span<const std::uint8_t>(mem.archive)));
  ASSERT_EQ(info.version, 2);
  if (std::isinf(report.psnr_db))
    EXPECT_TRUE(std::isinf(info.achieved_psnr_db));
  else
    EXPECT_NEAR(info.achieved_psnr_db, report.psnr_db, 1e-6);

  // (b) Round-trip shape.
  ASSERT_EQ(decoded.dims, c.dims.extents);
  ASSERT_EQ(decoded.f32.size(), values.size());

  // (c) Byte identity: the streaming sink at a different thread count AND
  // the legacy core:: entry point both produce the same archive.
  const auto path = fs::temp_directory_path() /
                    ("fpsnr-conformance-" +
                     case_name({GetParam(), 0}) + ".fpbk");
  make_session(4).compress(source, target, fpsnr::Sink::stream(path.string()));
  std::ifstream in(path, std::ios::binary);
  const std::vector<std::uint8_t> file_bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(file_bytes, mem.archive);
  fs::remove(path);

  core::CompressOptions lopts;
  lopts.engine = c.engine;
  lopts.budget = c.budget;
  lopts.parallel.block_pipeline = true;
  lopts.parallel.threads = 2;
  lopts.parallel.block_rows = c.block_rows;
  const auto legacy = core::compress_blocked<float>(
      std::span<const float>(values), c.dims,
      core::ControlRequest::fixed_psnr(c.target_db), lopts);
  EXPECT_EQ(legacy.stream, mem.archive)
      << "facade and legacy entry points must emit identical archives";
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, Conformance,
                         ::testing::ValuesIn(all_cases()), case_name);
