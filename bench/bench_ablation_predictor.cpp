// Ablation — predictor choice: Lorenzo (SZ 1.4, the paper's substrate)
// vs the hybrid Lorenzo+regression predictor (SZ 2.x evolution).
//
// Theorem 1 makes the fixed-PSNR model predictor-agnostic, so the PSNR
// column should be flat; the predictor only moves the *bit rate*. That is
// exactly the separation of concerns the paper's analysis predicts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/compressor.h"
#include "core/distortion_model.h"
#include "data/dataset.h"
#include "metrics/metrics.h"
#include "sz/codec.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;
namespace sz = fpsnr::sz;

namespace {

void print_table() {
  std::printf("\n=== Predictor ablation at fixed 60 dB (per-field bits/value "
              "and achieved PSNR) ===\n");
  std::printf("%-12s %-12s %12s %12s %12s %12s\n", "dataset", "field",
              "lorenzo b/v", "hybrid b/v", "lorenzo dB", "hybrid dB");

  for (const auto& ds : data::make_all_datasets({0.8, 20180713})) {
    for (std::size_t i = 0; i < 2 && i < ds.fields.size(); ++i) {
      const auto& f = ds.fields[i];
      const double eb = core::rel_bound_for_psnr(60.0);
      double rates[2], psnrs[2];
      for (int p = 0; p < 2; ++p) {
        sz::Params params;
        params.mode = sz::ErrorBoundMode::ValueRangeRelative;
        params.bound = eb;
        params.predictor =
            p == 0 ? sz::Predictor::Lorenzo : sz::Predictor::HybridRegression;
        sz::CompressionInfo info;
        const auto stream = sz::compress<float>(f.span(), f.dims, params, &info);
        const auto out = sz::decompress<float>(stream);
        const auto rep = metrics::compare<float>(f.span(), out.values);
        rates[p] = info.bit_rate;
        psnrs[p] = rep.psnr_db;
      }
      std::printf("%-12s %-12s %12.2f %12.2f %12.2f %12.2f\n", ds.name.c_str(),
                  f.name.substr(0, 12).c_str(), rates[0], rates[1], psnrs[0],
                  psnrs[1]);
    }
  }
  std::printf("\n(PSNR columns match — Theorem 1 is predictor-agnostic; "
              "only the rate moves)\n\n");
}

void BM_CompressLorenzo(benchmark::State& state) {
  const auto ds = data::make_hurricane({});
  const auto& f = ds.field("U");
  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-3;
  for (auto _ : state) {
    auto s = sz::compress<float>(f.span(), f.dims, params);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_CompressLorenzo)->Unit(benchmark::kMillisecond);

void BM_CompressHybrid(benchmark::State& state) {
  const auto ds = data::make_hurricane({});
  const auto& f = ds.field("U");
  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-3;
  params.predictor = sz::Predictor::HybridRegression;
  for (auto _ : state) {
    auto s = sz::compress<float>(f.span(), f.dims, params);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_CompressHybrid)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
