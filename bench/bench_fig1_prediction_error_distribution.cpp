// Figure 1 — distribution of the prediction errors produced by the
// SZ-style compressor on one ATM data field, with the uniform quantization
// bins overlaid.
//
// The paper's figure shows a symmetric, strongly peaked distribution whose
// central bins (p1, p2, ...) capture the bulk of the mass — the property
// that makes uniform quantization + Huffman effective. We regenerate it as
// per-bin percentages and an ASCII rendering.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "data/dataset.h"
#include "metrics/histogram.h"
#include "metrics/metrics.h"
#include "sz/codec.h"

namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;
namespace sz = fpsnr::sz;

namespace {

void print_figure() {
  const auto atm = data::make_atm({});
  const auto& field = atm.field("CLDHGH");  // a cloud-fraction field
  const double vr = metrics::value_range<float>(field.span());

  // Pick the bin width the way the paper's figure implies: wide enough
  // that the error mass visibly spreads over ~8 bins per side (central
  // bin ~12-14%). delta ~= 0.3 * stdev(prediction errors) gives that
  // regime; a pilot pass measures the spread first.
  double sigma = 0.0;
  {
    const auto pilot =
        sz::prediction_trace<float>(field.span(), field.dims, 1e-4 * vr);
    double acc = 0.0;
    for (double e : pilot.pe) acc += e * e;
    sigma = std::sqrt(acc / static_cast<double>(pilot.pe.size()));
  }
  const double delta = 0.3 * sigma;
  const double eb = delta / 2.0;
  const double eb_rel = eb / vr;

  const auto trace = sz::prediction_trace<float>(field.span(), field.dims, eb);

  // Quantizer-aligned bins: centres at integer multiples of delta.
  const int half_bins = 8;  // +-8 bins around zero, like the figure's x axis
  metrics::Histogram hist(-(half_bins + 0.5) * delta, (half_bins + 0.5) * delta,
                          2 * half_bins + 1);
  hist.add_all<double>(trace.pe);

  std::printf("\n=== Figure 1: prediction-error distribution on ATM/%s ===\n",
              field.name.c_str());
  std::printf("value range %.4f, eb_rel %.2e, bin width delta = 2eb = %.4e\n",
              vr, eb_rel, delta);
  std::printf("%zu points, %zu in plotted window, %zu beyond (outlier tail)\n\n",
              trace.pe.size(), hist.total(),
              hist.underflow() + hist.overflow());
  std::printf("%6s %12s %8s\n", "bin", "centre", "mass");
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    const int rel = static_cast<int>(b) - half_bins;
    char name[16];
    if (rel == 0)
      std::snprintf(name, sizeof name, "p1/p2");  // paper's central pair
    else
      std::snprintf(name, sizeof name, "P%+d", rel);
    std::printf("%6s %12.4e %7.2f%%\n", name, hist.bin_mid(b),
                100.0 * hist.fraction(b));
  }
  std::printf("\n%s\n", hist.render_ascii(56).c_str());
  std::printf("shape check vs paper: symmetric, unimodal, central bin "
              "dominant (paper peaks at ~12-14%%).\n\n");
}

void BM_PredictionTraceAtmField(benchmark::State& state) {
  const auto atm = data::make_atm({});
  const auto& field = atm.field("CLDHGH");
  const double vr = metrics::value_range<float>(field.span());
  for (auto _ : state) {
    auto trace = sz::prediction_trace<float>(field.span(), field.dims, 1e-2 * vr);
    benchmark::DoNotOptimize(trace.pe.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field.bytes()));
}
BENCHMARK(BM_PredictionTraceAtmField)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
