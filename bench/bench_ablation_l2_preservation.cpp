// Ablation — numerical verification of Theorems 1 and 2 at benchmark scale.
//
// Theorem 1: ||X - X~||_2 (data domain) equals the L2 distortion the
// quantizer introduced on the Lorenzo prediction errors.
// Theorem 2: same for orthogonal-transform coefficients (Haar, DCT).
// The table reports the ratio of the two norms; 1.0 means the theorem
// holds exactly (to float32 reconstruction rounding).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "data/dataset.h"
#include "metrics/metrics.h"
#include "sz/codec.h"
#include "transform/transform_codec.h"

namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;
namespace sz = fpsnr::sz;
namespace transform = fpsnr::transform;

namespace {

double l2_diff(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void print_table() {
  std::printf("\n=== Theorem 1/2 check: data-domain vs quantizer-domain L2 "
              "distortion ===\n");
  std::printf("%-12s %-12s %-10s %14s %14s %10s\n", "dataset", "field",
              "codec", "||X-X~||_2", "stage L2", "ratio");

  for (const auto& ds : data::make_all_datasets({0.6, 20180713})) {
    const auto& f = ds.fields.front();
    const double vr = metrics::value_range<float>(f.span());
    const double eb = 1e-3 * vr;

    {  // Theorem 1 (SZ-style)
      const auto trace = sz::prediction_trace<float>(f.span(), f.dims, eb);
      const double stage = l2_diff(trace.pe, trace.pe_recon);
      sz::Params params;
      params.mode = sz::ErrorBoundMode::Absolute;
      params.bound = eb;
      const auto out =
          sz::decompress<float>(sz::compress<float>(f.span(), f.dims, params));
      const auto rep = metrics::compare<float>(f.span(), out.values);
      std::printf("%-12s %-12s %-10s %14.6e %14.6e %10.6f\n", ds.name.c_str(),
                  f.name.substr(0, 12).c_str(), "sz-lorenzo", rep.l2_error,
                  stage, rep.l2_error / stage);
    }
    for (auto kind : {transform::Kind::HaarMultiLevel, transform::Kind::BlockDct}) {
      transform::Params params;
      params.kind = kind;
      params.bin_width = 2.0 * eb;
      const auto trace = transform::coefficient_trace<float>(f.span(), f.dims, params);
      const double stage = l2_diff(trace.coeffs, trace.coeffs_quantized);
      const auto out = transform::decompress<float>(
          transform::compress<float>(f.span(), f.dims, params));
      const auto rep = metrics::compare<float>(f.span(), out.values);
      std::printf("%-12s %-12s %-10s %14.6e %14.6e %10.6f\n", ds.name.c_str(),
                  f.name.substr(0, 12).c_str(),
                  kind == transform::Kind::HaarMultiLevel ? "haar-dwt" : "block-dct",
                  rep.l2_error, stage, rep.l2_error / stage);
    }
  }
  std::printf("\n(ratios deviate from 1.0 only by float32 reconstruction "
              "rounding — this is paper Eq. 1 / Theorems 1-2 in numbers)\n\n");
}

void BM_TheoremOneCheck(benchmark::State& state) {
  const auto ds = data::make_hurricane({0.5, 20180713});
  const auto& f = ds.field("U");
  const double eb = 1e-3 * metrics::value_range<float>(f.span());
  for (auto _ : state) {
    auto trace = sz::prediction_trace<float>(f.span(), f.dims, eb);
    benchmark::DoNotOptimize(trace.pe.data());
  }
}
BENCHMARK(BM_TheoremOneCheck)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
