// Ablation — rate-distortion behaviour of the fixed-PSNR mode.
//
// Not a paper table (the paper fixes quality, not rate), but the natural
// systems question a user asks next: what does each dB of demanded quality
// cost in bits? We sweep PSNR targets over the three datasets and report
// mean bit rate and compression ratio, plus the SZ-vs-transform-codec
// comparison at matched PSNR.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/batch.h"
#include "core/compressor.h"
#include "data/dataset.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

core::CompressResult compress_fixed_psnr(std::span<const float> values,
                                         const fpsnr::data::Dims& dims,
                                         double target,
                                         const core::CompressOptions& opts = {}) {
  return core::compress<float>(values, dims,
                               core::ControlRequest::fixed_psnr(target), opts);
}


void print_tables() {
  const auto datasets = data::make_all_datasets({});
  std::printf("\n=== Rate-distortion: mean bits/value (compression ratio) "
              "per fixed-PSNR target ===\n%8s", "PSNR");
  for (const auto& ds : datasets) std::printf(" %20s", ds.name.c_str());
  std::printf("\n");
  for (double target : {30.0, 50.0, 70.0, 90.0, 110.0}) {
    std::printf("%8.0f", target);
    for (const auto& ds : datasets) {
      const auto batch = core::run_fixed_psnr_batch(ds, target);
      double rate = 0.0, ratio = 0.0;
      for (const auto& f : batch.fields) {
        rate += f.bit_rate;
        ratio += f.compression_ratio;
      }
      rate /= static_cast<double>(batch.fields.size());
      ratio /= static_cast<double>(batch.fields.size());
      std::printf("      %6.2f (%6.1fx)", rate, ratio);
    }
    std::printf("\n");
  }

  std::printf("\n=== Engine comparison at matched 70 dB (Hurricane fields) "
              "===\n%-10s %14s %14s %14s\n", "field", "sz bits/val",
              "haar bits/val", "dct bits/val");
  const auto hur = data::make_hurricane({});
  for (const auto& f : hur.fields) {
    double rates[3] = {0, 0, 0};
    const core::Engine engines[] = {core::Engine::SzLorenzo,
                                    core::Engine::TransformHaar,
                                    core::Engine::TransformDct};
    for (int e = 0; e < 3; ++e) {
      core::CompressOptions opts;
      opts.engine = engines[e];
      const auto r = compress_fixed_psnr(f.span(), f.dims, 70.0, opts);
      rates[e] = r.info.bit_rate;
    }
    std::printf("%-10s %14.2f %14.2f %14.2f\n", f.name.c_str(), rates[0],
                rates[1], rates[2]);
  }
  std::printf("\n(prediction beats the transform coders on smooth fields — "
              "the reason SZ is the paper's substrate)\n\n");
}

void BM_RateDistortionCell(benchmark::State& state) {
  const auto ds = data::make_nyx({0.5, 20180713});
  const auto target = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto batch = core::run_fixed_psnr_batch(ds, target);
    benchmark::DoNotOptimize(batch.fields.data());
  }
}
BENCHMARK(BM_RateDistortionCell)->Arg(30)->Arg(70)->Arg(110)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
