// Tiling ablation — axis-0 slabs vs full-rank tiles on pancake fields.
//
// The slab decomposition partitions only along axis 0, so a pancake-shaped
// field (short leading axis, wide trailing axes — a handful of climate
// levels over a large horizontal grid) caps the block count at extents[0]
// no matter how many workers are available. Full-rank tiles partition every
// axis, so the same field shatters into dozens of full-volume blocks
// (auto_tile redistributes a clamped short axis's volume to the others)
// and the whole pool stays busy. This bench measures that headroom directly:
// tools/bench_compare.py gates time(slab/8) / time(full-rank/8) >= 1.3x
// on runners with enough cores — an intra-run, machine-independent ratio.
//
// Both arms produce valid fixed-PSNR archives; they differ only in tile
// geometry (and therefore in bytes). Each arm is byte-deterministic across
// thread counts on its own — determinism is pinned by the tests, speedup
// is pinned here.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "data/synth.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

// 4 x 512 x 512: at most 4 slab blocks, but 36 auto full-rank tiles
// ({4, 90, 90} after short-axis volume redistribution).
const data::Dims kPancake{4, 512, 512};

std::vector<float> pancake_field() {
  static const std::vector<float> field = [] {
    auto v = data::smoothed_noise(kPancake, 20180713, 2, 2);
    data::rescale(v, -40.0f, 55.0f);
    return v;
  }();
  return field;
}

core::CompressOptions tiled_options(std::vector<std::size_t> tile,
                                    std::size_t threads) {
  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  opts.parallel.threads = threads;
  opts.parallel.tile = std::move(tile);
  return opts;
}

void run_compress(benchmark::State& state, std::vector<std::size_t> tile) {
  const auto values = pancake_field();
  const auto opts =
      tiled_options(std::move(tile), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = core::compress<float>(std::span<const float>(values), kPancake,
                                   core::ControlRequest::fixed_psnr(80.0), opts);
    benchmark::DoNotOptimize(r.stream.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 4));
}

// Best slab the pre-v3 layout could offer: one row per block, i.e. all
// extents[0] = 4 blocks. Any larger slab height only reduces parallelism.
void BM_TilingSlabCompress(benchmark::State& state) {
  run_compress(state, {1});
}
BENCHMARK(BM_TilingSlabCompress)->Arg(1)->Arg(2)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Full-rank auto tile (near-cubic, volume-capped): the v3 default.
void BM_TilingFullRankCompress(benchmark::State& state) {
  run_compress(state, {});
}
BENCHMARK(BM_TilingFullRankCompress)->Arg(1)->Arg(2)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Decode side of the same ablation: slab blocks scatter contiguous runs,
// full-rank tiles scatter strided rows, but decode also fans out per block.
void run_decompress(benchmark::State& state, std::vector<std::size_t> tile) {
  const auto values = pancake_field();
  const auto stream =
      core::compress<float>(std::span<const float>(values), kPancake,
                            core::ControlRequest::fixed_psnr(80.0),
                            tiled_options(std::move(tile), 1))
          .stream;
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto out = core::decompress_blocked<float>(stream, threads);
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 4));
}

void BM_TilingSlabDecompress(benchmark::State& state) {
  run_decompress(state, {1});
}
BENCHMARK(BM_TilingSlabDecompress)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_TilingFullRankDecompress(benchmark::State& state) {
  run_decompress(state, {});
}
BENCHMARK(BM_TilingFullRankDecompress)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void print_block_layout() {
  const auto values = pancake_field();
  std::printf("\n=== Tiling ablation: pancake field %zux%zux%zu, "
              "fixed-PSNR 80 dB ===\n",
              kPancake[0], kPancake[1], kPancake[2]);
  for (const auto& [label, tile] :
       {std::pair<const char*, std::vector<std::size_t>>{"axis-0 slab", {1}},
        {"full-rank auto", {}}}) {
    const auto r =
        core::compress<float>(std::span<const float>(values), kPancake,
                              core::ControlRequest::fixed_psnr(80.0),
                              tiled_options(tile, 1));
    const auto info = core::inspect_block_stream(r.stream);
    std::printf("%16s: %4llu block(s), tile %zux%zux%zu, ratio %.2f\n", label,
                static_cast<unsigned long long>(info.block_count),
                info.tile[0], info.tile[1], info.tile[2],
                r.info.compression_ratio);
  }
  std::printf("(slab block count is capped at extents[0]=%zu — the pool can "
              "never be more than %zu-busy)\n\n",
              kPancake[0], kPancake[0]);
}

}  // namespace

int main(int argc, char** argv) {
  print_block_layout();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
