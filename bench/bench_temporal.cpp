// Temporal-compression ablation — spatial-only archives vs the v4 delta
// chain on the same snapshot series, at the same fixed-PSNR target.
//
// The paper's pipeline treats every snapshot as an independent field; the
// temporal subsystem (src/temporal/) instead codes each snapshot as a
// per-tile choice between spatial-from-scratch and the delta against the
// previous *reconstruction*. On a slowly evolving series the residual is
// far smaller than the field, so at equal PSNR the chain should compress
// substantially better. Each arm exports its end-to-end compression ratio
// as the `ratio` counter; tools/bench_compare.py gates
//
//     ratio(BM_TemporalSeriesCompress/N) >=
//         1.4 x ratio(BM_TemporalSpatialOnlyCompress/N)
//
// on the slow-evolution config — an intra-run, machine-independent claim
// (the bytes are deterministic, so the gate cannot flake on a busy runner).
// Wall time per arm doubles as the throughput comparison: the temporal arm
// pays one extra closed-loop decode per frame.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "data/timeseries.h"
#include "fpsnr/timeseries.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

// Slow evolution (dt = 0.02): consecutive 64x64 snapshots are close, the
// regime the subsystem exists for. The same config backs the gate tests in
// tests/test_temporal.cpp.
std::vector<data::Field> slow_series() {
  static const std::vector<data::Field> series = [] {
    data::TimeSeriesConfig cfg;
    cfg.dims = data::Dims{64, 64};
    cfg.snapshots = 12;
    cfg.dt = 0.02;
    return data::make_advected_series(cfg);
  }();
  return series;
}

std::size_t raw_bytes(const std::vector<data::Field>& series) {
  std::size_t n = 0;
  for (const auto& f : series) n += f.values.size() * sizeof(float);
  return n;
}

/// One keyframe at t=0, deltas for the rest: the cadence that shows the
/// chain's steady-state ratio rather than averaging in keyframe cost.
fpsnr::TimeSeriesOptions series_options() {
  fpsnr::TimeSeriesOptions topts;
  topts.series = "bench";
  topts.keyframe_interval = 0;
  topts.keep_archives = false;
  topts.session.threads = 1;
  return topts;
}

void BM_TemporalSpatialOnlyCompress(benchmark::State& state) {
  const auto series = slow_series();
  const double target_db = static_cast<double>(state.range(0));
  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  opts.parallel.threads = 1;
  std::size_t compressed = 0;
  for (auto _ : state) {
    compressed = 0;
    for (const auto& f : series) {
      auto r = core::compress<float>(std::span<const float>(f.values), f.dims,
                                     core::ControlRequest::fixed_psnr(target_db),
                                     opts);
      compressed += r.stream.size();
      benchmark::DoNotOptimize(r.stream.data());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw_bytes(series)));
  state.counters["ratio"] = static_cast<double>(raw_bytes(series)) /
                            static_cast<double>(compressed);
  state.counters["compressed_B"] = static_cast<double>(compressed);
}
BENCHMARK(BM_TemporalSpatialOnlyCompress)->Arg(60)->Arg(80)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_TemporalSeriesCompress(benchmark::State& state) {
  const auto series = slow_series();
  const double target_db = static_cast<double>(state.range(0));
  std::size_t compressed = 0;
  for (auto _ : state) {
    fpsnr::TimeSeriesSession session(fpsnr::FixedPsnr{target_db},
                                     series_options());
    compressed = 0;
    for (const auto& f : series) {
      fpsnr::Field snap;
      snap.dims = f.dims.extents;
      snap.f32 = f.values;
      const auto rec = session.push(snap);
      compressed += rec.report.archive.size();
      benchmark::DoNotOptimize(rec.report.archive.data());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw_bytes(series)));
  state.counters["ratio"] = static_cast<double>(raw_bytes(series)) /
                            static_cast<double>(compressed);
  state.counters["compressed_B"] = static_cast<double>(compressed);
}
BENCHMARK(BM_TemporalSeriesCompress)->Arg(60)->Arg(80)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Decode side: replaying the chain from the keyframe vs decoding
// independent spatial archives. Not gated — reported for the throughput
// picture (the chain decode applies one reference add per delta frame).
void BM_TemporalChainDecode(benchmark::State& state) {
  const auto series = slow_series();
  const double target_db = static_cast<double>(state.range(0));
  auto topts = series_options();
  topts.keep_archives = true;
  fpsnr::TimeSeriesSession session(fpsnr::FixedPsnr{target_db}, topts);
  for (const auto& f : series) {
    fpsnr::Field snap;
    snap.dims = f.dims.extents;
    snap.f32 = f.values;
    session.push(snap);
  }
  for (auto _ : state) {
    fpsnr::TimeSeriesDecoder dec(/*threads=*/1);
    for (std::size_t t = 0; t < series.size(); ++t) {
      const auto frame = dec.feed(session.archive(t));
      benchmark::DoNotOptimize(frame.f32.data());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw_bytes(series)));
}
BENCHMARK(BM_TemporalChainDecode)->Arg(60)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
