// Overhead claim (paper Section IV): "the only computational overhead of
// our approach is the time to calculate the value-range-based relative
// error bound ... which is negligible."
//
// We compare three ways to hit a PSNR target on one field:
//   1. fixed-PSNR (this paper): one compression pass + one formula,
//   2. search baseline (status quo): k full compress+decompress probes,
//   3. plain relative-bound compression (floor: what one pass costs).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/compressor.h"
#include "core/distortion_model.h"
#include "core/search_baseline.h"
#include "data/dataset.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

core::CompressResult compress_fixed_psnr(std::span<const float> values,
                                         const fpsnr::data::Dims& dims,
                                         double target,
                                         const core::CompressOptions& opts = {}) {
  return core::compress<float>(values, dims,
                               core::ControlRequest::fixed_psnr(target), opts);
}

fpsnr::metrics::ErrorReport verify_stream(std::span<const float> values,
                                          std::span<const std::uint8_t> stream) {
  const auto decoded = core::decompress<float>(stream);
  return fpsnr::metrics::compare<float>(values, decoded.values);
}

const data::Dataset& hurricane() {
  static const data::Dataset ds = data::make_hurricane({});
  return ds;
}

void print_pass_counts() {
  const auto& f = hurricane().field("U");
  std::printf("\n=== Overhead: fixed-PSNR vs search-based tuning (field "
              "Hurricane/U, target 80 dB) ===\n");
  std::printf("%-28s %14s %16s\n", "method", "codec passes", "achieved dB");

  const auto fixed = compress_fixed_psnr(f.span(), f.dims, 80.0);
  const auto fixed_rep = verify_stream(f.span(), fixed.stream);
  std::printf("%-28s %14d %16.2f\n", "fixed-PSNR (Eq. 8)", 1, fixed_rep.psnr_db);

  for (double start : {1e-2, 1e-5, 1e-8}) {
    core::SearchOptions opts;
    opts.tolerance_db = 0.5;
    opts.initial_rel_bound = start;
    const auto sr = core::search_fixed_psnr<float>(f.span(), f.dims, 80.0, opts);
    char label[64];
    std::snprintf(label, sizeof label, "search (start eb=%.0e)", start);
    std::printf("%-28s %14zu %16.2f\n", label, sr.compression_passes,
                sr.achieved_psnr_db);
  }
  std::printf("\n(the search multiplies cost by its pass count; Eq. 8 costs "
              "one pow() per field)\n\n");
}

void BM_FixedPsnrSinglePass(benchmark::State& state) {
  const auto& f = hurricane().field("U");
  for (auto _ : state) {
    auto r = compress_fixed_psnr(f.span(), f.dims, 80.0);
    benchmark::DoNotOptimize(r.stream.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_FixedPsnrSinglePass)->Unit(benchmark::kMillisecond);

void BM_PlainRelativeBoundPass(benchmark::State& state) {
  // The floor: an ordinary SZ pass at the bound Eq. 8 produces. The delta
  // to BM_FixedPsnrSinglePass *is* the paper's claimed overhead.
  const auto& f = hurricane().field("U");
  const double eb = core::rel_bound_for_psnr(80.0);
  for (auto _ : state) {
    auto r = core::compress<float>(f.span(), f.dims,
                                   core::ControlRequest::relative(eb));
    benchmark::DoNotOptimize(r.stream.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_PlainRelativeBoundPass)->Unit(benchmark::kMillisecond);

void BM_SearchBaseline(benchmark::State& state) {
  const auto& f = hurricane().field("U");
  core::SearchOptions opts;
  opts.tolerance_db = 0.5;
  opts.initial_rel_bound = 1e-5;
  for (auto _ : state) {
    auto sr = core::search_fixed_psnr<float>(f.span(), f.dims, 80.0, opts);
    benchmark::DoNotOptimize(sr.result.stream.data());
  }
}
BENCHMARK(BM_SearchBaseline)->Unit(benchmark::kMillisecond);

void BM_Equation8Only(benchmark::State& state) {
  // The analytical step in isolation: nanoseconds, i.e. "negligible".
  double target = 80.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rel_bound_for_psnr(target));
    target += 1e-9;  // defeat constant folding
  }
}
BENCHMARK(BM_Equation8Only);

}  // namespace

int main(int argc, char** argv) {
  print_pass_counts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
