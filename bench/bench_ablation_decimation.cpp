// Ablation — the introduction's motivating claim, quantified.
//
// HACC-style workflows meet storage budgets by temporal decimation: keep
// every k-th snapshot, reconstruct dropped ones by interpolation. The
// paper argues lossy compression of *every* snapshot is strictly better.
// We measure both on a temporally coherent synthetic series at equal
// storage: per-snapshot PSNR of (a) decimation + linear interpolation vs
// (b) fixed-rate compression of all snapshots.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/compressor.h"
#include "core/search_baseline.h"
#include "data/timeseries.h"
#include "metrics/metrics.h"
#include "metrics/stats.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;

namespace {
fpsnr::metrics::ErrorReport verify_stream(std::span<const float> values,
                                          std::span<const std::uint8_t> stream) {
  const auto decoded = core::decompress<float>(stream);
  return fpsnr::metrics::compare<float>(values, decoded.values);
}

void print_study() {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{96, 96};
  cfg.snapshots = 24;
  const auto series = data::make_advected_series(cfg);
  const double raw_bits = 32.0;

  std::printf("\n=== Decimation vs fixed-rate compression at equal storage "
              "===\n");
  std::printf("(%zu snapshots of %zux%zu; PSNR of the reconstructed series, "
              "worst snapshot in parentheses)\n\n",
              series.size(), cfg.dims[0], cfg.dims[1]);
  std::printf("%8s %26s %30s\n", "budget", "decimation+interp", "compress all");

  for (int k : {2, 4, 8}) {
    const double budget_bits = raw_bits / k;

    // Strategy A: keep snapshots 0, k, 2k, ...; dropped snapshots are
    // interpolated between kept neighbours, or held from the last kept
    // snapshot past the end (exactly what a decimated archive can do).
    const std::size_t kk = static_cast<std::size_t>(k);
    const std::size_t last_kept = ((series.size() - 1) / kk) * kk;
    metrics::RunningStats dec_psnr;
    double dec_worst = 1e9;
    for (std::size_t t = 0; t < series.size(); ++t) {
      if (t % kk == 0) continue;  // kept exactly
      const std::size_t lo = (t / kk) * kk;
      const std::size_t hi = lo + kk;
      const data::Field recon =
          hi <= last_kept
              ? data::interpolate_snapshots(series[lo], series[hi],
                                            static_cast<double>(t - lo) / kk)
              : series[lo];  // hold last kept snapshot
      const auto rep = metrics::compare<float>(series[t].span(), recon.span());
      dec_psnr.add(rep.psnr_db);
      dec_worst = std::min(dec_worst, rep.psnr_db);
    }

    // Strategy B: fixed-rate compress every snapshot to the same budget.
    metrics::RunningStats cmp_psnr;
    double cmp_worst = 1e9;
    for (const auto& snap : series) {
      core::RateSearchOptions opts;
      opts.tolerance_bits = 0.25;
      const auto rr =
          core::search_fixed_rate<float>(snap.span(), snap.dims, budget_bits, opts);
      const auto rep = verify_stream(snap.span(), rr.result.stream);
      cmp_psnr.add(rep.psnr_db);
      cmp_worst = std::min(cmp_worst, rep.psnr_db);
    }

    std::printf("%7.1f%% %16.1f (%6.1f) dB %20.1f (%6.1f) dB\n",
                100.0 / k, dec_psnr.mean(), dec_worst, cmp_psnr.mean(),
                cmp_worst);
  }
  std::printf("\n(compression wins by tens of dB at every budget AND keeps "
              "every snapshot's timestamp exact;\ndecimation's interpolated "
              "snapshots degrade with temporal distance — the intro's "
              "'losing important\ninformation unexpectedly')\n\n");
}

void BM_InterpolateSnapshot(benchmark::State& state) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{96, 96};
  cfg.snapshots = 2;
  const auto series = data::make_advected_series(cfg);
  for (auto _ : state) {
    auto f = data::interpolate_snapshots(series[0], series[1], 0.5);
    benchmark::DoNotOptimize(f.values.data());
  }
}
BENCHMARK(BM_InterpolateSnapshot)->Unit(benchmark::kMicrosecond);

void BM_FixedRateSnapshot(benchmark::State& state) {
  data::TimeSeriesConfig cfg;
  cfg.dims = data::Dims{96, 96};
  cfg.snapshots = 1;
  const auto series = data::make_advected_series(cfg);
  for (auto _ : state) {
    auto rr = core::search_fixed_rate<float>(series[0].span(), series[0].dims, 8.0);
    benchmark::DoNotOptimize(rr.result.stream.data());
  }
}
BENCHMARK(BM_FixedRateSnapshot)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
