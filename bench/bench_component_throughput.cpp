// Component throughput — per-stage cost of the pipeline: Lorenzo+quantize,
// Huffman encode/decode, LZ77+Huffman (deflate) compress/decompress, RLE,
// and the end-to-end codec in both directions.
#include <benchmark/benchmark.h>

#include <random>

#include "data/dataset.h"
#include "huffman/huffman.h"
#include "io/bitstream.h"
#include "io/bytebuffer.h"
#include "lossless/deflate.h"
#include "lossless/rle.h"
#include "metrics/metrics.h"
#include "sz/codec.h"
#include "sz/quantizer.h"

namespace data = fpsnr::data;
namespace huffman = fpsnr::huffman;
namespace io = fpsnr::io;
namespace lossless = fpsnr::lossless;
namespace metrics = fpsnr::metrics;
namespace sz = fpsnr::sz;

namespace {

const data::Field& test_field() {
  static const data::Dataset ds = data::make_hurricane({});
  return ds.field("U");
}

std::vector<std::uint32_t> quant_codes() {
  // Realistic quantization-code stream from an actual pass.
  const auto& f = test_field();
  const double eb = 1e-4 * metrics::value_range<float>(f.span());
  const auto trace = sz::prediction_trace<float>(f.span(), f.dims, eb);
  sz::LinearQuantizer q(eb, 65536);
  std::vector<std::uint32_t> codes(trace.pe.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const auto c = q.quantize(trace.pe[i]);
    codes[i] = c;
  }
  return codes;
}

std::vector<std::uint8_t> byte_workload() {
  const auto& f = test_field();
  return {reinterpret_cast<const std::uint8_t*>(f.values.data()),
          reinterpret_cast<const std::uint8_t*>(f.values.data()) + f.bytes()};
}

void BM_LorenzoQuantizePass(benchmark::State& state) {
  const auto& f = test_field();
  const double eb = 1e-4 * metrics::value_range<float>(f.span());
  for (auto _ : state) {
    auto t = sz::prediction_trace<float>(f.span(), f.dims, eb);
    benchmark::DoNotOptimize(t.pe.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_LorenzoQuantizePass)->Unit(benchmark::kMillisecond);

void BM_HuffmanEncode(benchmark::State& state) {
  const auto codes = quant_codes();
  const auto enc = huffman::Encoder::from_symbols(codes, 65536);
  for (auto _ : state) {
    io::BitWriter bits;
    enc.encode(codes, bits);
    benchmark::DoNotOptimize(bits.buffer().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size()));
}
BENCHMARK(BM_HuffmanEncode)->Unit(benchmark::kMillisecond);

void BM_HuffmanDecode(benchmark::State& state) {
  const auto codes = quant_codes();
  const auto enc = huffman::Encoder::from_symbols(codes, 65536);
  io::BitWriter bits;
  enc.encode(codes, bits);
  const auto payload = bits.take();  // flushes the bit accumulator
  const auto dec = huffman::Decoder::from_lengths(enc.lengths());
  for (auto _ : state) {
    io::BitReader br(payload);
    auto out = dec.decode(br, codes.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codes.size()));
}
BENCHMARK(BM_HuffmanDecode)->Unit(benchmark::kMillisecond);

void BM_DeflateCompress(benchmark::State& state) {
  const auto input = byte_workload();
  for (auto _ : state) {
    auto c = lossless::deflate_compress(input);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_DeflateCompress)->Unit(benchmark::kMillisecond);

void BM_DeflateDecompress(benchmark::State& state) {
  const auto input = byte_workload();
  const auto compressed = lossless::deflate_compress(input);
  for (auto _ : state) {
    auto out = lossless::deflate_decompress(compressed);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_DeflateDecompress)->Unit(benchmark::kMillisecond);

void BM_RleCompress(benchmark::State& state) {
  const auto input = byte_workload();
  for (auto _ : state) {
    auto c = lossless::rle_compress(input);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_RleCompress)->Unit(benchmark::kMillisecond);

void BM_FullCompress(benchmark::State& state) {
  const auto& f = test_field();
  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-4;
  for (auto _ : state) {
    auto stream = sz::compress<float>(f.span(), f.dims, params);
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_FullCompress)->Unit(benchmark::kMillisecond);

void BM_FullDecompress(benchmark::State& state) {
  const auto& f = test_field();
  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-4;
  const auto stream = sz::compress<float>(f.span(), f.dims, params);
  for (auto _ : state) {
    auto out = sz::decompress<float>(stream);
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_FullDecompress)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
