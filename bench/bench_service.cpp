// bench_service — what does the fpsnrd socket hop cost relative to calling
// fpsnr::Session in-process?
//
//   BM_ServicePing             pure protocol round-trip (frame + wakeup)
//   BM_ServiceCompress/N       compress N*1024 floats through the daemon
//   BM_InProcessCompress/N     the same job via Session::compress directly
//
// The archives are byte-identical by contract (test_service proves it), so
// time(Service)/time(InProcess) at matching N is the pure service overhead:
// two frame copies, one scheduler handoff, and the unix-socket hop. The
// expectation to sanity-check here is that the overhead is O(bytes) and
// amortizes to noise for real snapshot-sized fields.
#include <benchmark/benchmark.h>

#if !defined(_WIN32)

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fpsnr/service.h"
#include "fpsnr/session.h"

namespace {

using namespace fpsnr;

/// One daemon shared by every benchmark, started on first use and drained
/// at exit.
class BenchServer {
 public:
  static BenchServer& instance() {
    static BenchServer server;
    return server;
  }

  const std::string& path() const { return path_; }

 private:
  BenchServer() {
    path_ = (std::filesystem::temp_directory_path() /
             ("fpsnrd_bench_" + std::to_string(::getpid()) + ".sock"))
                .string();
    ::unlink(path_.c_str());
    service::ServerOptions opts;
    opts.endpoint.socket_path = path_;
    server_.emplace(std::move(opts));
    runner_ = std::thread([this] { server_->run(); });
  }

  ~BenchServer() {
    server_->request_shutdown();
    runner_.join();
    ::unlink(path_.c_str());
  }

  std::string path_;
  std::optional<service::Server> server_;
  std::thread runner_;
};

std::vector<float> make_values(std::size_t n) {
  std::vector<float> values(n);
  for (std::size_t i = 0; i < n; ++i)
    values[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.013) *
                                   50.0 +
                                   static_cast<double>(i % 31));
  return values;
}

void BM_ServicePing(benchmark::State& state) {
  service::Client client({BenchServer::instance().path()});
  for (auto _ : state) client.ping();
}
BENCHMARK(BM_ServicePing);

void BM_ServiceCompress(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::vector<float> values = make_values(rows * 1024);
  service::Client client({BenchServer::instance().path()});
  service::CompressSpec spec;
  spec.mode = "psnr";
  spec.value = 75.0;
  spec.dims = {rows, 1024};
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto r = client.compress(std::span<const float>(values), spec);
    bytes = r.compressed_bytes;
    benchmark::DoNotOptimize(r.archive.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() *
                                                    sizeof(float)));
  state.counters["compressed_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ServiceCompress)->Arg(16)->Arg(128)->Arg(1024);

void BM_InProcessCompress(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::vector<float> values = make_values(rows * 1024);
  const std::vector<std::size_t> dims = {rows, 1024};
  const Session session;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto report =
        session.compress(Source::memory(std::span<const float>(values), dims),
                         FixedPsnr{75.0}, Sink::memory());
    bytes = report.compressed_bytes;
    benchmark::DoNotOptimize(report.archive.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() *
                                                    sizeof(float)));
  state.counters["compressed_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_InProcessCompress)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();

#else

int main() { return 0; }

#endif  // !defined(_WIN32)
