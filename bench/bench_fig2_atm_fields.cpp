// Figure 2 — fixed-PSNR evaluation on all data fields in ATM at user-set
// PSNR 40 / 80 / 120 dB (the paper's low / medium / high quality points).
//
// The paper plots per-field actual PSNR against the red target line and
// reports that 90+% of fields meet (>=) the demand. We print the three
// per-field series and the summary statistics.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/batch.h"
#include "data/dataset.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

void print_figure() {
  const auto atm = data::make_atm({});
  std::printf("\n=== Figure 2: fixed-PSNR on all %zu ATM fields ===\n",
              atm.field_count());

  for (double target : {40.0, 80.0, 120.0}) {
    const auto batch = core::run_fixed_psnr_batch(atm, target);
    std::printf("\n--- user-set PSNR = %.0f dB ---\n", target);
    std::printf("%-10s %9s   %-10s %9s   %-10s %9s\n", "field", "dB", "field",
                "dB", "field", "dB");
    for (std::size_t i = 0; i < batch.fields.size(); i += 3) {
      for (std::size_t j = i; j < std::min(i + 3, batch.fields.size()); ++j)
        std::printf("%-10s %9.2f   ", batch.fields[j].field_name.c_str(),
                    batch.fields[j].actual_psnr_db);
      std::printf("\n");
    }
    const auto stats = batch.psnr_stats();
    std::printf("summary: AVG %.2f  STDEV %.2f  min %.2f  max %.2f  "
                "met-target %.1f%%  (paper: >90%% meet, AVG slightly above "
                "the line)\n",
                stats.mean(), stats.stdev(), stats.min(), stats.max(),
                100.0 * batch.met_fraction());
  }
  std::printf("\n");
}

void BM_AtmBatchAt80dB(benchmark::State& state) {
  const auto atm = data::make_atm({0.5, 20180713});
  for (auto _ : state) {
    auto batch = core::run_fixed_psnr_batch(atm, 80.0);
    benchmark::DoNotOptimize(batch.fields.data());
  }
}
BENCHMARK(BM_AtmBatchAt80dB)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
