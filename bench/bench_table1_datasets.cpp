// Table I — data sets used in the experimental evaluation.
//
// Prints the stand-in inventory next to the paper's production inventory
// (dims / #fields / size), then times dataset generation so regressions in
// the generators are visible.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "data/dataset.h"

namespace data = fpsnr::data;

namespace {

void print_table() {
  std::printf("\n=== Table I: data sets used in experimental evaluation ===\n");
  std::printf("%-10s | %-22s | %8s | %10s || %-22s %8s\n", "dataset",
              "stand-in dims", "#fields", "size(MB)", "paper dims",
              "paper sz");
  std::printf("%s\n", std::string(100, '-').c_str());

  struct PaperRow {
    const char* dims;
    const char* size;
  };
  const PaperRow paper[] = {{"2048x2048x2048", "206 GB"},
                            {"1800x3600", "1.5 TB"},
                            {"100x500x500", "62.4 GB"}};

  const auto all = data::make_all_datasets({});
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& ds = all[i];
    char dims_buf[64] = {0};
    const auto& d = ds.fields.front().dims;
    if (d.rank() == 2)
      std::snprintf(dims_buf, sizeof dims_buf, "%zux%zu", d[0], d[1]);
    else
      std::snprintf(dims_buf, sizeof dims_buf, "%zux%zux%zu", d[0], d[1], d[2]);
    std::printf("%-10s | %-22s | %8zu | %10.1f || %-22s %8s\n",
                ds.name.c_str(), dims_buf, ds.field_count(),
                ds.total_bytes() / (1024.0 * 1024.0), paper[i].dims,
                paper[i].size);
  }
  std::printf("\nexample fields: NYX baryon_density/temperature; "
              "ATM CLDHGH/CLDLOW; Hurricane QICE/PRECIP/U/V/W\n"
              "(grid extents scaled for single-node runs; rank, field count "
              "and per-field character preserved — DESIGN.md §4)\n\n");
}

void BM_GenerateNyx(benchmark::State& state) {
  for (auto _ : state) {
    auto ds = data::make_nyx({});
    benchmark::DoNotOptimize(ds.fields.front().values.data());
  }
}
BENCHMARK(BM_GenerateNyx)->Unit(benchmark::kMillisecond);

void BM_GenerateAtm(benchmark::State& state) {
  for (auto _ : state) {
    auto ds = data::make_atm({});
    benchmark::DoNotOptimize(ds.fields.front().values.data());
  }
}
BENCHMARK(BM_GenerateAtm)->Unit(benchmark::kMillisecond);

void BM_GenerateHurricane(benchmark::State& state) {
  for (auto _ : state) {
    auto ds = data::make_hurricane({});
    benchmark::DoNotOptimize(ds.fields.front().values.data());
  }
}
BENCHMARK(BM_GenerateHurricane)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
