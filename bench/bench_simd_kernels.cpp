// Per-kernel SIMD throughput: every vectorized hot kernel runs as an arm
// pair — "/scalar" pinned to the reference table, "/dispatch" through the
// runtime dispatcher — so time(scalar)/time(dispatch) measured INSIDE one
// run is the vectorization speedup, independent of the machine. The
// bench-regression CI job feeds both arms to tools/bench_compare.py, which
// gates on >= 1.5x for at least two kernels whenever the dispatched
// backend is not scalar (the active backend is exported through the
// "fpsnr_simd_backend" context key below; FPSNR_SIMD=scalar turns the
// gate off and the pairs simply measure parity).
//
// huffman_pack is expected to sit near 1.0x: the bit-packing merge is
// inherently serial, and its win comes from batching BitWriter calls, not
// lanes — it is benchmarked for regression tracking, not for the gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <random>
#include <vector>

#include "huffman/huffman.h"
#include "simd/aligned.h"
#include "simd/dispatch.h"

namespace huffman = fpsnr::huffman;
namespace simd = fpsnr::simd;

namespace {

constexpr std::size_t kN = std::size_t{1} << 16;  // doubles per workload

simd::aligned_vector<double> smooth_field(std::size_t n, std::uint64_t seed) {
  // Smooth-plus-noise content: representative magnitudes for the
  // quantizers (mostly small codes, occasional spikes), deterministic.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  simd::aligned_vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 3.0 * std::sin(static_cast<double>(i) * 0.013) + noise(rng);
  return v;
}

void bm_haar_fwd(benchmark::State& state, const simd::KernelTable& kt) {
  const auto line = smooth_field(kN, 11);
  const std::size_t pairs = kN / 2;
  simd::aligned_vector<double> approx(pairs), detail(pairs);
  const double c = 1.0 / std::numbers::sqrt2;
  for (auto _ : state) {
    kt.haar_fwd_pairs(line.data(), approx.data(), detail.data(), pairs, c);
    benchmark::DoNotOptimize(approx.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN * sizeof(double)));
}

struct DctTables {
  simd::aligned_vector<double> jk, kj;
};

DctTables dct_tables(std::size_t m) {
  DctTables t{simd::aligned_vector<double>(m * m),
              simd::aligned_vector<double>(m * m)};
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t k = 0; k < m; ++k) {
      const double c =
          std::cos(std::numbers::pi * (static_cast<double>(j) + 0.5) *
                   static_cast<double>(k) / static_cast<double>(m));
      t.jk[j * m + k] = c;
      t.kj[k * m + j] = c;
    }
  return t;
}

void bm_dct2_lines(benchmark::State& state, const simd::KernelTable& kt) {
  constexpr std::size_t m = 64;
  const auto x = smooth_field(kN, 13);
  const DctTables tabs = dct_tables(m);
  const double s0 = std::sqrt(1.0 / static_cast<double>(m));
  const double sk = std::sqrt(2.0 / static_cast<double>(m));
  simd::aligned_vector<double> y(kN);
  for (auto _ : state) {
    for (std::size_t off = 0; off < kN; off += m)
      kt.dct2_line(x.data() + off, y.data() + off, m, tabs.jk.data(),
                   tabs.kj.data(), s0, sk);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN * sizeof(double)));
}

void bm_zfpr_quant(benchmark::State& state, const simd::KernelTable& kt) {
  constexpr std::size_t group = 256;
  const auto coeffs = smooth_field(kN, 17);
  const double bin = 2.0 * 1e-4;
  simd::aligned_vector<std::uint64_t> zz(group);
  simd::aligned_vector<double> recon(kN);
  for (auto _ : state) {
    unsigned total = 0;
    for (std::size_t g0 = 0; g0 < kN; g0 += group)
      total += kt.zfpr_quant_group(coeffs.data() + g0, group, bin, zz.data(),
                                   recon.data() + g0);
    benchmark::DoNotOptimize(total);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN * sizeof(double)));
}

void bm_lorenzo2(benchmark::State& state, const simd::KernelTable& kt) {
  constexpr std::size_t n0 = 512, n1 = 512;
  const auto f64 = smooth_field(n0 * n1, 19);
  const simd::aligned_vector<float> values(f64.begin(), f64.end());
  simd::aligned_vector<std::uint32_t> codes(n0 * n1);
  simd::aligned_vector<float> recon(n0 * n1), outliers(n0 * n1);
  for (auto _ : state) {
    const std::size_t n_out =
        kt.lorenzo2_quant_f32(values.data(), n0, n1, 1e-3, 65536,
                              codes.data(), recon.data(), outliers.data());
    benchmark::DoNotOptimize(n_out);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n0 * n1 * sizeof(float)));
}

void bm_huffman_pack(benchmark::State& state, const simd::KernelTable& kt) {
  // Realistic post-quantization symbol skew: geometric around the zero
  // code, canonical table built by the production coder.
  constexpr std::size_t alphabet = 1024;
  std::mt19937_64 rng(23);
  std::geometric_distribution<std::uint32_t> spread(0.2);
  std::vector<std::uint32_t> syms(kN);
  std::vector<std::uint64_t> freq(alphabet, 0);
  for (auto& s : syms) {
    const auto off = static_cast<std::int64_t>(spread(rng));
    const std::int64_t centered = 512 + (rng() % 2 ? off : -off);
    s = static_cast<std::uint32_t>(std::clamp<std::int64_t>(
        centered, 0, static_cast<std::int64_t>(alphabet) - 1));
    ++freq[s];
  }
  const auto lengths = huffman::build_code_lengths(freq);
  const auto codes = huffman::canonical_codes(lengths);
  std::vector<std::uint64_t> entries(alphabet, 0);
  for (std::size_t s = 0; s < alphabet; ++s) {
    if (lengths[s] == 0) continue;
    std::uint32_t rev = 0;
    for (unsigned b = 0; b < lengths[s]; ++b)
      rev |= ((codes[s] >> b) & 1u) << (lengths[s] - 1 - b);
    entries[s] = rev | (std::uint64_t{lengths[s]} << 32);
  }
  std::vector<std::uint64_t> words((kN * huffman::kMaxCodeLength + 63) / 64 +
                                   1);
  for (auto _ : state) {
    std::uint64_t carry = 0;
    unsigned carry_bits = 0;
    std::size_t bad = simd::kNoBadSymbol;
    const std::size_t nw =
        kt.huffman_pack(syms.data(), syms.size(), entries.data(), alphabet,
                        words.data(), &carry, &carry_bits, &bad);
    benchmark::DoNotOptimize(nw);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN));
}

void bm_sse_f64(benchmark::State& state, const simd::KernelTable& kt) {
  const auto a = smooth_field(kN, 29);
  const auto b = smooth_field(kN, 31);
  for (auto _ : state) {
    const double sse = kt.sse_f64(a.data(), b.data(), kN);
    benchmark::DoNotOptimize(sse);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN * sizeof(double)));
}

void register_arm_pairs() {
  const simd::KernelTable& scalar =
      simd::kernels_for(simd::Backend::Scalar);
  const simd::KernelTable& dispatch = simd::kernels();
  struct Kernel {
    const char* name;
    void (*fn)(benchmark::State&, const simd::KernelTable&);
  };
  const Kernel kernels[] = {
      {"BM_SimdHaarFwd", bm_haar_fwd},     {"BM_SimdDct2", bm_dct2_lines},
      {"BM_SimdZfprQuant", bm_zfpr_quant}, {"BM_SimdLorenzo2", bm_lorenzo2},
      {"BM_SimdHuffmanPack", bm_huffman_pack}, {"BM_SimdSse", bm_sse_f64},
  };
  for (const Kernel& k : kernels) {
    benchmark::RegisterBenchmark(
        (std::string(k.name) + "/scalar").c_str(),
        [fn = k.fn, &scalar](benchmark::State& s) { fn(s, scalar); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        (std::string(k.name) + "/dispatch").c_str(),
        [fn = k.fn, &dispatch](benchmark::State& s) { fn(s, dispatch); })
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // bench_compare.py keys its vectorization gate off this: "scalar" (or
  // absent) disables it, anything else demands the speedup.
  benchmark::AddCustomContext("fpsnr_simd_backend", simd::kernels().name);
  register_arm_pairs();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
