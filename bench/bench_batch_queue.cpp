// The global work queue's headline claim: on a dataset that mixes many
// tiny fields with a few huge ones (the CESM-ATM shape), interleaving all
// fields' blocks on one queue beats sequential per-field compression,
// because a 1-block field can never keep an 8-worker pool busy and every
// per-field run ends with a barrier.
//
//   BM_BatchSequentialPerField/N   fields one at a time, N workers each
//   BM_BatchGlobalQueue/N          all blocks on one queue, N workers
//
// Both paths produce byte-identical archives (test_batch_queue proves it);
// only the schedule differs, so time(sequential)/time(queue) at matching N
// is the pure scheduling win. The CI benchmark-regression gate checks this
// ratio at 8 workers (>= 1.3x on multi-core machines, tools/bench_compare.py).
//
// Verification is off in both arms: the FPBK v2 SSE column already gives
// the exact PSNR, and we want to time compression scheduling, not decode.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/batch.h"
#include "data/dataset.h"
#include "data/synth.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

/// The field-size mix is chosen so roughly half the WORK sits in fields
/// with fewer blocks than workers — exactly where sequential per-field
/// scheduling strands cores: 80 one-block fields + 12 two-block fields
/// next to 2 volumes of ~16 blocks each. Built once; every benchmark
/// shares it.
const data::Dataset& mixed_dataset() {
  static const data::Dataset ds = [] {
    data::Dataset d;
    d.name = "mixed-tiny-huge";
    for (int i = 0; i < 60; ++i) {
      data::Dims dims{64, 64};  // 1 block
      d.fields.emplace_back("tiny" + std::to_string(i),
                            dims,
                            data::smoothed_noise(dims, 100 + i, 2));
    }
    for (int i = 0; i < 20; ++i) {
      data::Dims dims{8, 32, 32};  // 1 block (rank-3 tiny)
      d.fields.emplace_back("cube" + std::to_string(i),
                            dims,
                            data::cosine_mixture(dims, 400 + i, 4));
    }
    for (int i = 0; i < 12; ++i) {
      data::Dims dims{512, 96};  // 2 blocks
      d.fields.emplace_back("mid" + std::to_string(i),
                            dims,
                            data::smoothed_noise(dims, 500 + i, 3));
    }
    for (int i = 0; i < 2; ++i) {
      data::Dims dims{64, 96, 96};  // ~16 blocks
      auto v = data::smoothed_noise(dims, 200 + i, 2);
      data::add_scaled(v, data::cosine_mixture(dims, 300 + i, 4), 0.5f);
      d.fields.emplace_back("huge" + std::to_string(i), dims, std::move(v));
    }
    return d;
  }();
  return ds;
}

core::BatchOptions batch_options(std::size_t threads, bool global_queue) {
  core::BatchOptions opts;
  opts.threads = threads;
  opts.global_queue = global_queue;
  opts.verify = false;  // time the compression schedule, not the decoder
  return opts;
}

void run_batch(benchmark::State& state, bool global_queue) {
  const auto& ds = mixed_dataset();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto batch =
        core::run_fixed_psnr_batch(ds, 80.0, batch_options(threads, global_queue));
    benchmark::DoNotOptimize(batch.fields.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ds.total_bytes()));
  state.counters["fields"] =
      benchmark::Counter(static_cast<double>(ds.field_count()));
}

void BM_BatchSequentialPerField(benchmark::State& state) {
  run_batch(state, /*global_queue=*/false);
}
BENCHMARK(BM_BatchSequentialPerField)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BatchGlobalQueue(benchmark::State& state) {
  run_batch(state, /*global_queue=*/true);
}
BENCHMARK(BM_BatchGlobalQueue)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  const auto& ds = mixed_dataset();
  std::printf("mixed fixture: %zu fields, %.1f MB raw (80 one-block fields "
              "+ 12 two-block fields + 2 multi-block volumes)\n",
              ds.field_count(), ds.total_bytes() / (1024.0 * 1024.0));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
