// Ablation — parallel decomposition cost and scaling.
//
// Three axes of parallelism: across fields (core/batch), within a field via
// the legacy slab decomposition (sz/chunked), and within a field via the
// block-parallel pipeline engine (core/pipeline) — the production path,
// whose FPBK container also gives random-access decode. Blocking restarts
// prediction at slab boundaries, so we also report the compression-ratio
// cost of each slab count — the classic HPC trade of parallelism vs. ratio.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/batch.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "metrics/metrics.h"
#include "sz/chunked.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace metrics = fpsnr::metrics;
namespace parallel = fpsnr::parallel;
namespace sz = fpsnr::sz;

namespace {

core::CompressResult compress_fixed_psnr(std::span<const float> values,
                                         const fpsnr::data::Dims& dims,
                                         double target,
                                         const core::CompressOptions& opts = {}) {
  return core::compress<float>(values, dims,
                               core::ControlRequest::fixed_psnr(target), opts);
}


void print_ratio_cost() {
  const auto ds = data::make_hurricane({});
  const auto& f = ds.field("U");
  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-4;

  std::printf("\n=== Chunked codec: ratio cost of slab decomposition "
              "(Hurricane/U, eb_rel 1e-4) ===\n");
  std::printf("%8s %14s %14s %14s\n", "slabs", "ratio", "bits/value",
              "max|err|<=eb");
  const double vr = metrics::value_range<float>(f.span());
  for (std::size_t chunks : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    sz::ChunkedInfo info;
    const auto stream =
        sz::chunked_compress<float>(f.span(), f.dims, params, chunks, nullptr, &info);
    const auto out = sz::chunked_decompress<float>(stream);
    const auto rep = metrics::compare<float>(f.span(), out.values);
    std::printf("%8zu %14.2f %14.2f %14s\n", info.chunk_count,
                info.compression_ratio, info.bit_rate,
                rep.max_abs_error <= 1e-4 * vr * (1 + 1e-9) ? "yes" : "NO");
  }
  std::printf("(prediction restarts per slab: ratio decays gently with slab "
              "count; the error bound never moves)\n\n");
}

void BM_ChunkedCompress(benchmark::State& state) {
  const auto ds = data::make_hurricane({});
  const auto& f = ds.field("U");
  sz::Params params;
  params.mode = sz::ErrorBoundMode::ValueRangeRelative;
  params.bound = 1e-4;
  const auto chunks = static_cast<std::size_t>(state.range(0));
  parallel::ThreadPool pool;
  for (auto _ : state) {
    auto stream =
        sz::chunked_compress<float>(f.span(), f.dims, params, chunks, &pool);
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_ChunkedCompress)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The headline scaling curve: the block-parallel pipeline engine at 1..N
// worker threads. Block layout is fixed (auto), so every thread count
// produces byte-identical output and the timing difference is pure
// execution parallelism.
void BM_PipelineCompress(benchmark::State& state) {
  const auto ds = data::make_hurricane({});
  const auto& f = ds.field("U");
  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  opts.parallel.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = compress_fixed_psnr(f.span(), f.dims, 80.0, opts);
    benchmark::DoNotOptimize(result.stream.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_PipelineCompress)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineDecompress(benchmark::State& state) {
  const auto ds = data::make_hurricane({});
  const auto& f = ds.field("U");
  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  const auto stream =
      compress_fixed_psnr(f.span(), f.dims, 80.0, opts).stream;
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto out = core::decompress_blocked<float>(stream, threads);
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes()));
}
BENCHMARK(BM_PipelineDecompress)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineRandomAccessBlock(benchmark::State& state) {
  const auto ds = data::make_hurricane({});
  const auto& f = ds.field("U");
  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  const auto stream =
      compress_fixed_psnr(f.span(), f.dims, 80.0, opts).stream;
  const auto info = core::inspect_block_stream(stream);
  std::size_t b = 0;
  for (auto _ : state) {
    auto out = core::decompress_block<float>(stream, b);
    benchmark::DoNotOptimize(out.values.data());
    b = (b + 1) % info.block_count;
  }
}
BENCHMARK(BM_PipelineRandomAccessBlock)->Unit(benchmark::kMillisecond);

void BM_BatchAcrossFields(benchmark::State& state) {
  const auto ds = data::make_hurricane({0.5, 20180713});
  const auto threads = static_cast<std::size_t>(state.range(0));
  core::BatchOptions opts;
  opts.threads = threads;
  for (auto _ : state) {
    auto batch = core::run_fixed_psnr_batch(ds, 80.0, opts);
    benchmark::DoNotOptimize(batch.fields.data());
  }
}
BENCHMARK(BM_BatchAcrossFields)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ratio_cost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
