// Streaming I/O scaling — the write and read sides of the FPBK file path.
//
// BM_InMemoryCompress vs BM_StreamingCompress at 1/2/4/8 threads shows that
// spilling blocks as they finish costs no wall-clock (the file write rides
// the compute) while dropping peak payload memory from O(container) to the
// reorder buffer. BM_MmapFullDecode vs BM_MmapBlockDecode shows random
// access: one block out of a 16-block archive decodes for ~1/16 of the
// full-decode work regardless of archive size.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "core/pipeline.h"
#include "data/synth.h"
#include "io/streaming_archive.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;
namespace io = fpsnr::io;

namespace {

namespace fs = std::filesystem;

const data::Dims kDims{512, 512};
constexpr std::size_t kBlockRows = 32;  // 16 blocks

std::vector<float> make_field() {
  auto v = data::smoothed_noise(kDims, 77, 3, 2);
  data::rescale(v, -10.0f, 35.0f);
  return v;
}

core::CompressOptions options(std::size_t threads) {
  core::CompressOptions opts;
  opts.parallel.block_pipeline = true;
  opts.parallel.threads = threads;
  opts.parallel.tile = {kBlockRows};
  return opts;
}

std::string bench_path() {
  return (fs::temp_directory_path() / "bench_streaming.fpbk").string();
}

void BM_InMemoryCompress(benchmark::State& state) {
  const auto values = make_field();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = core::compress_blocked<float>(
        std::span<const float>(values), kDims,
        core::ControlRequest::fixed_psnr(70.0), options(threads));
    benchmark::DoNotOptimize(r.stream.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 4));
}
BENCHMARK(BM_InMemoryCompress)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StreamingCompress(benchmark::State& state) {
  const auto values = make_field();
  const auto threads = static_cast<std::size_t>(state.range(0));
  io::StreamingStats stats;
  for (auto _ : state) {
    auto r = core::compress_to_file<float>(
        std::span<const float>(values), kDims,
        core::ControlRequest::fixed_psnr(70.0), options(threads),
        bench_path(), &stats);
    benchmark::DoNotOptimize(r.info.compressed_bytes);
  }
  state.counters["peak_buffer_B"] =
      static_cast<double>(stats.peak_buffered_bytes);
  state.counters["container_B"] = static_cast<double>(stats.total_bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 4));
  fs::remove(bench_path());
}
BENCHMARK(BM_StreamingCompress)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MmapFullDecode(benchmark::State& state) {
  const auto values = make_field();
  core::compress_to_file<float>(std::span<const float>(values), kDims,
                                core::ControlRequest::fixed_psnr(70.0),
                                options(4), bench_path());
  for (auto _ : state) {
    auto d = core::decompress_file<float>(bench_path(), 4);
    benchmark::DoNotOptimize(d.values.data());
  }
  fs::remove(bench_path());
}
BENCHMARK(BM_MmapFullDecode)->Unit(benchmark::kMillisecond);

void BM_MmapBlockDecode(benchmark::State& state) {
  const auto values = make_field();
  core::compress_to_file<float>(std::span<const float>(values), kDims,
                                core::ControlRequest::fixed_psnr(70.0),
                                options(4), bench_path());
  std::size_t block = 0;
  const std::size_t blocks = (kDims[0] + kBlockRows - 1) / kBlockRows;
  for (auto _ : state) {
    auto d = core::decompress_file_block<float>(bench_path(),
                                                block++ % blocks);
    benchmark::DoNotOptimize(d.values.data());
  }
  fs::remove(bench_path());
}
BENCHMARK(BM_MmapBlockDecode)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
