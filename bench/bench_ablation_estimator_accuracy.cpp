// Ablation — where does the Eq. (3) midpoint approximation break?
//
// The paper observes (Section V) that fixed-PSNR accuracy degrades as the
// quantization bins widen (low PSNR targets). We sweep the target from
// 10 to 130 dB on one field of each dataset and report predicted vs
// actual deviation, plus the effect of the quantization-bin *count*
// (which governs how many points fall out of the quantizer's range).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/batch.h"
#include "core/compressor.h"
#include "data/dataset.h"
#include "metrics/metrics.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

core::CompressResult compress_fixed_psnr(std::span<const float> values,
                                         const fpsnr::data::Dims& dims,
                                         double target,
                                         const core::CompressOptions& opts = {}) {
  return core::compress<float>(values, dims,
                               core::ControlRequest::fixed_psnr(target), opts);
}

fpsnr::metrics::ErrorReport verify_stream(std::span<const float> values,
                                          std::span<const std::uint8_t> stream) {
  const auto decoded = core::decompress<float>(stream);
  return fpsnr::metrics::compare<float>(values, decoded.values);
}

void print_sweep() {
  const auto datasets = data::make_all_datasets({});
  std::printf("\n=== Ablation: estimator deviation vs target PSNR ===\n");
  std::printf("(one representative field per dataset; deviation = actual - "
              "target, dB)\n\n%8s", "target");
  for (const auto& ds : datasets)
    std::printf(" %14s", ds.fields.front().name.substr(0, 14).c_str());
  std::printf("\n");
  for (double target = 10.0; target <= 130.0; target += 10.0) {
    std::printf("%8.0f", target);
    for (const auto& ds : datasets) {
      const auto& f = ds.fields.front();
      const auto r = compress_fixed_psnr(f.span(), f.dims, target);
      const auto rep = verify_stream(f.span(), r.stream);
      std::printf(" %+14.2f", rep.psnr_db - target);
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: large positive deviation at 10-30 dB "
              "(midpoint model conservative for peaked error\n"
              "distributions), near zero from ~60 dB, slight positive drift "
              "again at 120+ dB (outliers stored exactly).\n");

  std::printf("\n=== Ablation: quantization bin count at 80 dB "
              "(Hurricane/U) ===\n");
  std::printf("%10s %12s %12s %12s\n", "bins", "actual dB", "outliers",
              "bits/value");
  const auto hur = data::make_hurricane({});
  const auto& f = hur.field("U");
  for (std::uint32_t bins : {16u, 256u, 4096u, 65536u}) {
    core::CompressOptions opts;
    opts.quantization_bins = bins;
    const auto r = compress_fixed_psnr(f.span(), f.dims, 80.0, opts);
    const auto rep = verify_stream(f.span(), r.stream);
    std::printf("%10u %12.2f %12zu %12.2f\n", bins, rep.psnr_db,
                r.info.outlier_count, r.info.bit_rate);
  }
  std::printf("(fewer bins -> more exact outliers -> same-or-higher PSNR at "
              "a bit-rate cost; accuracy of the PSNR control is unaffected, "
              "matching Theorem 3)\n\n");
}

void BM_FixedPsnrLowTarget(benchmark::State& state) {
  const auto hur = data::make_hurricane({0.5, 20180713});
  const auto& f = hur.field("U");
  const auto target = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto r = compress_fixed_psnr(f.span(), f.dims, target);
    benchmark::DoNotOptimize(r.stream.data());
  }
}
BENCHMARK(BM_FixedPsnrLowTarget)->Arg(20)->Arg(80)->Arg(120)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
