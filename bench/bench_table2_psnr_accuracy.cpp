// Table II — the paper's headline result: AVG / STDEV of the actual PSNRs
// across all fields of NYX, ATM and Hurricane for user-set PSNR
// 20/40/60/80/100/120 dB.
//
// Reproduction target is the *shape*: AVG tracks the target within
// 0.1-5 dB, accuracy improves as the target grows, low targets overshoot
// (actual >= requested), Hurricane is the noisiest dataset at 20 dB.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/batch.h"
#include "data/dataset.h"

namespace core = fpsnr::core;
namespace data = fpsnr::data;

namespace {

struct PaperCell {
  double avg, stdev;
};
// Table II of the paper, for side-by-side comparison.
constexpr PaperCell kPaper[6][3] = {
    {{24.3, 1.82}, {21.9, 3.34}, {25.0, 6.52}},   // 20 dB
    {{41.9, 2.32}, {40.9, 1.80}, {42.0, 3.97}},   // 40 dB
    {{60.7, 0.74}, {60.2, 0.62}, {60.5, 0.74}},   // 60 dB
    {{80.1, 0.05}, {80.1, 0.35}, {80.1, 0.32}},   // 80 dB
    {{100.1, 0.07}, {100.2, 0.17}, {100.1, 0.39}},// 100 dB
    {{120.1, 0.01}, {120.2, 0.19}, {120.3, 0.63}},// 120 dB
};

void print_table() {
  const auto datasets = data::make_all_datasets({});
  const double targets[] = {20.0, 40.0, 60.0, 80.0, 100.0, 120.0};

  std::printf("\n=== Table II: fixed-PSNR accuracy (ours | paper) ===\n");
  std::printf("%8s", "PSNR");
  for (const auto& ds : datasets)
    std::printf(" | %-11s AVG STDEV (paper)", ds.name.c_str());
  std::printf("\n%s\n", std::string(118, '-').c_str());

  for (std::size_t t = 0; t < std::size(targets); ++t) {
    std::printf("%8.0f", targets[t]);
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      const auto batch = core::run_fixed_psnr_batch(datasets[d], targets[t]);
      const auto stats = batch.psnr_stats();
      std::printf(" | %8.1f %6.2f  (%5.1f %5.2f)", stats.mean(), stats.stdev(),
                  kPaper[t][d].avg, kPaper[t][d].stdev);
    }
    std::printf("\n");
  }
  std::printf("\nshape checks: (a) AVG >= target at low PSNR (model is "
              "conservative);\n              (b) deviation shrinks "
              "monotonically as the target grows;\n              (c) 60+ dB "
              "rows land within ~1 dB of the request.\n\n");
}

void BM_Table2SingleCell(benchmark::State& state) {
  // One (dataset, target) cell as the timing unit: Hurricane @ 80 dB.
  const auto ds = data::make_hurricane({0.5, 20180713});
  for (auto _ : state) {
    auto batch = core::run_fixed_psnr_batch(ds, 80.0);
    benchmark::DoNotOptimize(batch.fields.data());
  }
}
BENCHMARK(BM_Table2SingleCell)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
