#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <iomanip>

namespace fpsnr::metrics {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
}

void Histogram::add(double x) {
  if (std::isnan(x)) throw std::invalid_argument("Histogram: NaN sample");
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}
double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + static_cast<double>(bin + 1) * width_;
}
double Histogram::bin_mid(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double Histogram::density(std::size_t bin) const {
  return fraction(bin) / width_;
}

std::string Histogram::render_ascii(std::size_t max_width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double frac = fraction(b);
    std::size_t bar =
        peak ? (counts_[b] * max_width + peak - 1) / peak : 0;
    os << std::setw(12) << std::scientific << std::setprecision(2) << bin_mid(b)
       << " | " << std::string(bar, '#')
       << "  " << std::fixed << std::setprecision(2) << 100.0 * frac << "%\n";
  }
  return os.str();
}

}  // namespace fpsnr::metrics
