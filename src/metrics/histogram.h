// Fixed-bin histogram over a real interval.
//
// Used to (a) reproduce Figure 1 (distribution of Lorenzo prediction errors
// with the uniform quantization bins overlaid) and (b) drive the *general*
// distortion estimator of Eqs. (2)-(5), which needs P(m_i), the empirical
// probability density at each bin midpoint.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fpsnr::metrics {

class Histogram {
 public:
  /// Uniform histogram with `bins` bins over [lo, hi). Values outside the
  /// interval are counted in underflow/overflow tallies.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  template <typename T>
  void add_all(std::span<const T> xs) {
    for (const T& x : xs) add(static_cast<double>(x));
  }

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }       ///< in-range samples
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_mid(std::size_t bin) const;
  double bin_width() const { return width_; }

  /// Fraction of in-range samples in `bin` (0 when empty).
  double fraction(std::size_t bin) const;

  /// Empirical probability *density* at the bin midpoint:
  /// fraction / bin_width — the P(m_i) of Eq. (3).
  double density(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin) for terminal output.
  std::string render_ascii(std::size_t max_width = 60) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

}  // namespace fpsnr::metrics
