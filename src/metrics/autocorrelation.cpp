#include "metrics/autocorrelation.h"

#include <cmath>
#include <stdexcept>

namespace fpsnr::metrics {

std::vector<double> autocorrelation(std::span<const double> series,
                                    std::size_t max_lag) {
  if (series.empty())
    throw std::invalid_argument("autocorrelation: empty series");
  if (max_lag >= series.size())
    throw std::invalid_argument("autocorrelation: max_lag >= series length");

  const auto n = static_cast<double>(series.size());
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= n;

  double var = 0.0;
  for (double x : series) var += (x - mean) * (x - mean);

  std::vector<double> acf(max_lag + 1, 0.0);
  acf[0] = 1.0;
  if (var == 0.0) return acf;  // constant series: zero past lag 0
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i + k < series.size(); ++i)
      acc += (series[i] - mean) * (series[i + k] - mean);
    acf[k] = acc / var;
  }
  return acf;
}

template <typename T>
std::vector<double> error_series(std::span<const T> original,
                                 std::span<const T> reconstructed) {
  if (original.size() != reconstructed.size())
    throw std::invalid_argument("error_series: size mismatch");
  std::vector<double> err(original.size());
  for (std::size_t i = 0; i < err.size(); ++i)
    err[i] = static_cast<double>(original[i]) -
             static_cast<double>(reconstructed[i]);
  return err;
}

template <typename T>
double error_whiteness(std::span<const T> original,
                       std::span<const T> reconstructed, std::size_t max_lag) {
  const auto err = error_series(original, reconstructed);
  const auto acf = autocorrelation(err, max_lag);
  double peak = 0.0;
  for (std::size_t k = 1; k < acf.size(); ++k)
    peak = std::max(peak, std::abs(acf[k]));
  return peak;
}

template std::vector<double> error_series<float>(std::span<const float>,
                                                 std::span<const float>);
template std::vector<double> error_series<double>(std::span<const double>,
                                                  std::span<const double>);
template double error_whiteness<float>(std::span<const float>,
                                       std::span<const float>, std::size_t);
template double error_whiteness<double>(std::span<const double>,
                                        std::span<const double>, std::size_t);

}  // namespace fpsnr::metrics
