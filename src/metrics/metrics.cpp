#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

namespace fpsnr::metrics {

double psnr_from_mse(double mse, double vr) {
  if (mse < 0.0) throw std::invalid_argument("psnr_from_mse: negative MSE");
  if (vr <= 0.0) throw std::invalid_argument("psnr_from_mse: non-positive value range");
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  const double nrmse = std::sqrt(mse) / vr;
  return -20.0 * std::log10(nrmse);
}

double mse_from_psnr(double psnr_db, double vr) {
  if (vr <= 0.0) throw std::invalid_argument("mse_from_psnr: non-positive value range");
  const double nrmse = std::pow(10.0, -psnr_db / 20.0);
  return nrmse * nrmse * vr * vr;
}

double compression_ratio(std::size_t original_bytes, std::size_t compressed_bytes) {
  if (compressed_bytes == 0)
    throw std::invalid_argument("compression_ratio: zero compressed size");
  return static_cast<double>(original_bytes) / static_cast<double>(compressed_bytes);
}

double bit_rate(std::size_t compressed_bytes, std::size_t value_count) {
  if (value_count == 0)
    throw std::invalid_argument("bit_rate: zero value count");
  return 8.0 * static_cast<double>(compressed_bytes) / static_cast<double>(value_count);
}

template <typename T>
double value_range(std::span<const T> data) {
  if (data.empty()) throw std::invalid_argument("value_range: empty input");
  auto [lo, hi] = std::minmax_element(data.begin(), data.end());
  return static_cast<double>(*hi) - static_cast<double>(*lo);
}

template <typename T>
ErrorReport compare(std::span<const T> original, std::span<const T> reconstructed) {
  if (original.size() != reconstructed.size())
    throw std::invalid_argument("compare: size mismatch");
  if (original.empty())
    throw std::invalid_argument("compare: empty input");

  ErrorReport r;
  r.count = original.size();

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double sum_sq = 0.0;
  double max_abs = 0.0;
  double max_pw_rel = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double o = static_cast<double>(original[i]);
    const double d = o - static_cast<double>(reconstructed[i]);
    lo = std::min(lo, o);
    hi = std::max(hi, o);
    sum_sq += d * d;
    const double ad = std::abs(d);
    max_abs = std::max(max_abs, ad);
    if (o != 0.0) max_pw_rel = std::max(max_pw_rel, ad / std::abs(o));
  }
  r.min_value = lo;
  r.max_value = hi;
  r.value_range = hi - lo;
  r.mse = sum_sq / static_cast<double>(r.count);
  r.rmse = std::sqrt(r.mse);
  r.l2_error = std::sqrt(sum_sq);
  r.max_abs_error = max_abs;
  r.max_pw_rel_error = max_pw_rel;
  if (r.value_range > 0.0) {
    r.nrmse = r.rmse / r.value_range;
    r.max_rel_error = max_abs / r.value_range;
    r.psnr_db = (r.mse == 0.0) ? std::numeric_limits<double>::infinity()
                               : psnr_from_mse(r.mse, r.value_range);
  } else {
    // Constant field: NRMSE/PSNR are undefined; report exactness via mse.
    r.nrmse = 0.0;
    r.max_rel_error = 0.0;
    r.psnr_db = (r.mse == 0.0) ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return r;
}

template ErrorReport compare<float>(std::span<const float>, std::span<const float>);
template ErrorReport compare<double>(std::span<const double>, std::span<const double>);
template double value_range<float>(std::span<const float>);
template double value_range<double>(std::span<const double>);

}  // namespace fpsnr::metrics
