#include "metrics/stats.h"

#include <algorithm>
#include <stdexcept>

namespace fpsnr::metrics {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stdev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double RunningStats::variance_population() const {
  if (n_ < 1) return 0.0;
  return m2_ / static_cast<double>(n_);
}

RunningStats summarize(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (p == 0.0) return sorted.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank - 1];
}

double pearson_correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("pearson_correlation: bad input sizes");
  const auto n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace fpsnr::metrics
