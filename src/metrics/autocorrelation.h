// Autocorrelation analysis of compression-error fields.
//
// The SZ line of work evaluates not only the *size* of compression errors
// but also their spatial structure: errors that correlate with the signal
// or with each other bias downstream analyses (spectra, gradients).
// Midpoint uniform quantization produces errors that are close to white —
// lag-k autocorrelation near zero — which is part of why PSNR is a
// faithful quality summary for these codecs. These helpers quantify that.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fpsnr::metrics {

/// Lag-k autocorrelation coefficients (k = 0..max_lag) of a 1-D series.
/// result[0] == 1 by construction; constant series return all zeros past
/// lag 0. Throws std::invalid_argument if max_lag >= series length.
std::vector<double> autocorrelation(std::span<const double> series,
                                    std::size_t max_lag);

/// Pointwise error series original[i] - reconstructed[i] as doubles.
template <typename T>
std::vector<double> error_series(std::span<const T> original,
                                 std::span<const T> reconstructed);

/// Convenience: max |autocorrelation| over lags 1..max_lag of the error
/// series — a single "whiteness" score (0 = perfectly white errors).
template <typename T>
double error_whiteness(std::span<const T> original,
                       std::span<const T> reconstructed,
                       std::size_t max_lag = 16);

extern template std::vector<double> error_series<float>(std::span<const float>,
                                                        std::span<const float>);
extern template std::vector<double> error_series<double>(std::span<const double>,
                                                         std::span<const double>);
extern template double error_whiteness<float>(std::span<const float>,
                                              std::span<const float>, std::size_t);
extern template double error_whiteness<double>(std::span<const double>,
                                               std::span<const double>, std::size_t);

}  // namespace fpsnr::metrics
