// Streaming statistics accumulators.
//
// RunningStats implements Welford's online algorithm for numerically stable
// mean/variance — used to produce the AVG / STDEV columns of Table II.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace fpsnr::metrics {

/// Welford online mean / variance / min / max accumulator.
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator (parallel reduction support).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stdev() const;
  /// Population variance (n denominator); 0 for n < 1.
  double variance_population() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Convenience: stats of a whole span.
RunningStats summarize(std::span<const double> values);

/// Percentile (nearest-rank, p in [0,100]) of a copy-sorted sample.
double percentile(std::span<const double> values, double p);

/// Pearson correlation of two equal-length samples.
double pearson_correlation(std::span<const double> a, std::span<const double> b);

}  // namespace fpsnr::metrics
