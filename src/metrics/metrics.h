// Error metrics between original and reconstructed data.
//
// These are the quantities the paper evaluates: MSE, NRMSE, PSNR (Eqs. 2-5),
// plus maximum pointwise error, pointwise relative error, value range, and
// compression ratio / bit rate. All reductions are performed in double
// precision regardless of the input type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>

namespace fpsnr::metrics {

/// Summary of the distortion between an original and a reconstructed field.
struct ErrorReport {
  std::size_t count = 0;
  double value_range = 0.0;   ///< max(orig) - min(orig)
  double min_value = 0.0;
  double max_value = 0.0;
  double mse = 0.0;           ///< mean squared error
  double rmse = 0.0;          ///< sqrt(MSE)
  double nrmse = 0.0;         ///< RMSE / value_range
  double psnr_db = 0.0;       ///< -20*log10(NRMSE); +inf for exact match
  double max_abs_error = 0.0;
  double max_rel_error = 0.0; ///< max |err| / value_range (value-range relative)
  double max_pw_rel_error = 0.0; ///< max |err| / |orig|, over nonzero originals
  double l2_error = 0.0;      ///< ||orig - recon||_2
};

/// Compute the full error report. Throws std::invalid_argument on size
/// mismatch or empty input.
template <typename T>
ErrorReport compare(std::span<const T> original, std::span<const T> reconstructed);

/// Value range (max - min) of a field; 0 for constant fields.
template <typename T>
double value_range(std::span<const T> data);

/// PSNR in dB given MSE and value range. Returns +inf when mse == 0.
double psnr_from_mse(double mse, double value_range);

/// MSE implied by a PSNR (dB) and value range — inverse of psnr_from_mse.
double mse_from_psnr(double psnr_db, double value_range);

/// Compression ratio = original bytes / compressed bytes.
double compression_ratio(std::size_t original_bytes, std::size_t compressed_bytes);

/// Bit rate = compressed bits per value.
double bit_rate(std::size_t compressed_bytes, std::size_t value_count);

extern template ErrorReport compare<float>(std::span<const float>, std::span<const float>);
extern template ErrorReport compare<double>(std::span<const double>, std::span<const double>);
extern template double value_range<float>(std::span<const float>);
extern template double value_range<double>(std::span<const double>);

}  // namespace fpsnr::metrics
