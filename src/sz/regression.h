// Block-wise linear-regression predictor (the SZ 2.x evolution).
//
// SZ 1.4 (the paper's substrate) predicts every point with the Lorenzo
// stencil. SZ 2.x adds a second candidate: fit a linear model
// f(i0,i1,i2) ~= b0 + b1*i0 + b2*i1 + b3*i2 over each small block of the
// *original* data, pick per block whichever predictor yields the smaller
// quantization error, and ship the (quantized) coefficients with the
// stream. Regression is immune to the error accumulation of
// reconstructed-neighbour prediction at coarse bounds, which is exactly
// where it wins.
//
// Crucially for this paper, regression prediction keeps Theorem 1 intact:
// the predicted values are identical at compression and decompression
// time (coefficients are transmitted quantized, and both sides use the
// quantized values), so X - X~ == Xpe - X~pe still holds and the
// fixed-PSNR formula is unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "data/field.h"

namespace fpsnr::sz {

inline constexpr std::size_t kRegressionBlock = 6;  // SZ 2.x uses 6^d blocks

/// Coefficients of one block's linear model, already quantized so both
/// codec directions use bit-identical values.
struct RegressionCoeffs {
  std::array<double, 4> b = {0, 0, 0, 0};  // intercept, then one slope/axis
};

/// Least-squares fit of a linear model over one block of data laid out in
/// C order within the full grid. On the regular integer lattice the normal
/// equations decouple, so the fit is a few prefix sums (as in SZ 2.x).
/// `block_lo` is the block's origin, `block_dims` its extents (<= 6 each).
template <typename T>
RegressionCoeffs fit_block(std::span<const T> values, const data::Dims& dims,
                           const std::array<std::size_t, 3>& block_lo,
                           const std::array<std::size_t, 3>& block_dims);

/// Quantize coefficients onto a lattice of step `coeff_step` (midpoint
/// rule), making them cheap to encode and identical across codec sides.
RegressionCoeffs quantize_coeffs(const RegressionCoeffs& c, double coeff_step);

/// Predicted value at offset (o0,o1,o2) inside the block.
double predict_regression(const RegressionCoeffs& c, std::size_t o0,
                          std::size_t o1, std::size_t o2);

/// Mean absolute prediction error of the (quantized) model over a block —
/// the per-block selection statistic used against Lorenzo.
template <typename T>
double block_abs_error(std::span<const T> values, const data::Dims& dims,
                       const std::array<std::size_t, 3>& block_lo,
                       const std::array<std::size_t, 3>& block_dims,
                       const RegressionCoeffs& c);

extern template RegressionCoeffs fit_block<float>(
    std::span<const float>, const data::Dims&, const std::array<std::size_t, 3>&,
    const std::array<std::size_t, 3>&);
extern template RegressionCoeffs fit_block<double>(
    std::span<const double>, const data::Dims&, const std::array<std::size_t, 3>&,
    const std::array<std::size_t, 3>&);
extern template double block_abs_error<float>(
    std::span<const float>, const data::Dims&, const std::array<std::size_t, 3>&,
    const std::array<std::size_t, 3>&, const RegressionCoeffs&);
extern template double block_abs_error<double>(
    std::span<const double>, const data::Dims&, const std::array<std::size_t, 3>&,
    const std::array<std::size_t, 3>&, const RegressionCoeffs&);

}  // namespace fpsnr::sz
