// SZ3-style multi-level interpolation predictor codec.
//
// Instead of Lorenzo's causal neighbour stencil, points are visited level
// by level over the C-order scan: index 0 is coded against a zero
// prediction, then for strides s = 2^k, ..., 2, 1 every odd multiple of s
// is predicted by *linear interpolation* of its already-reconstructed
// neighbours at distance s (falling back to the left neighbour at the
// array tail). Predictions always read the reconstruction buffer, so the
// decoder replays them bit for bit and the pointwise guarantee
// |x_i - x~_i| <= eb_abs holds exactly as in the Lorenzo codec — which is
// what lets the block pipeline reuse the same fixed-PSNR budget model
// (Eq. 6) unchanged.
//
// Residuals go through the standard back end: linear-scaling quantization
// (bin width 2*eb), canonical Huffman, lossless backend. Stream magic is
// "FPIN".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/field.h"
#include "lossless/backend.h"
#include "sz/codec.h"

namespace fpsnr::sz {

struct InterpParams {
  double eb_abs = 1e-4;  ///< absolute pointwise error bound (> 0)
  std::uint32_t quantization_bins = 65536;
  lossless::Method backend = lossless::Method::Deflate;
};

struct InterpInfo {
  std::size_t value_count = 0;
  std::size_t outlier_count = 0;  ///< points stored exactly (code 0)
  std::size_t compressed_bytes = 0;
  /// Exact sum of squared reconstruction errors (original vs decode output).
  double achieved_sse = 0.0;
};

template <typename T>
std::vector<std::uint8_t> interp_compress(std::span<const T> values,
                                          const data::Dims& dims,
                                          const InterpParams& params,
                                          InterpInfo* info = nullptr);

template <typename T>
Decompressed<T> interp_decompress(std::span<const std::uint8_t> stream);

/// True if `stream` starts with the interpolation-codec magic "FPIN".
bool is_interp_stream(std::span<const std::uint8_t> stream);

extern template std::vector<std::uint8_t> interp_compress<float>(
    std::span<const float>, const data::Dims&, const InterpParams&, InterpInfo*);
extern template std::vector<std::uint8_t> interp_compress<double>(
    std::span<const double>, const data::Dims&, const InterpParams&, InterpInfo*);
extern template Decompressed<float> interp_decompress<float>(
    std::span<const std::uint8_t>);
extern template Decompressed<double> interp_decompress<double>(
    std::span<const std::uint8_t>);

}  // namespace fpsnr::sz
