#include "sz/stream_format.h"

#include <cmath>

namespace fpsnr::sz {

std::string_view predictor_name(Predictor p) {
  switch (p) {
    case Predictor::Lorenzo: return "lorenzo";
    case Predictor::HybridRegression: return "hybrid-regression";
  }
  return "unknown";
}

std::string_view mode_name(ErrorBoundMode m) {
  switch (m) {
    case ErrorBoundMode::Absolute: return "abs";
    case ErrorBoundMode::ValueRangeRelative: return "vr-rel";
    case ErrorBoundMode::PointwiseRelative: return "pw-rel";
  }
  return "unknown";
}

void write_header(const StreamHeader& h, io::ByteWriter& out) {
  out.put_bytes(std::span<const std::uint8_t>(kMagic, 4));
  out.put<std::uint8_t>(kFormatVersion);
  out.put<std::uint8_t>(static_cast<std::uint8_t>(h.scalar));
  out.put<std::uint8_t>(static_cast<std::uint8_t>(h.mode));
  out.put<std::uint8_t>(static_cast<std::uint8_t>(h.predictor));
  out.put<std::uint8_t>(static_cast<std::uint8_t>(h.dims.rank()));
  for (std::size_t d = 0; d < h.dims.rank(); ++d) out.put_varint(h.dims[d]);
  out.put<double>(h.eb_abs);
  out.put<double>(h.user_bound);
  out.put<double>(h.value_range);
  out.put_varint(h.quant_bins);
  out.put<double>(h.pwrel_zero_floor);
}

StreamHeader read_header(io::ByteReader& in) {
  const auto magic = in.get_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic))
    throw io::StreamError("fpsz: bad magic");
  const auto version = in.get<std::uint8_t>();
  if (version != kFormatVersion)
    throw io::StreamError("fpsz: unsupported format version");

  StreamHeader h;
  const auto scalar = in.get<std::uint8_t>();
  if (scalar > 1) throw io::StreamError("fpsz: unknown scalar type");
  h.scalar = static_cast<ScalarType>(scalar);

  const auto mode = in.get<std::uint8_t>();
  if (mode > 2) throw io::StreamError("fpsz: unknown error mode");
  h.mode = static_cast<ErrorBoundMode>(mode);

  const auto predictor = in.get<std::uint8_t>();
  if (predictor > 1) throw io::StreamError("fpsz: unknown predictor");
  h.predictor = static_cast<Predictor>(predictor);

  const auto rank = in.get<std::uint8_t>();
  if (rank < 1 || rank > 3) throw io::StreamError("fpsz: rank out of 1..3");
  std::vector<std::size_t> extents(rank);
  for (auto& e : extents) {
    e = in.get_varint();
    if (e == 0) throw io::StreamError("fpsz: zero extent");
  }
  h.dims = data::Dims(std::move(extents));

  h.eb_abs = in.get<double>();
  h.user_bound = in.get<double>();
  h.value_range = in.get<double>();
  if (!std::isfinite(h.eb_abs) || h.eb_abs <= 0.0)
    throw io::StreamError("fpsz: invalid error bound in header");
  h.quant_bins = static_cast<std::uint32_t>(in.get_varint());
  if (h.quant_bins < 4 || h.quant_bins % 2 != 0)
    throw io::StreamError("fpsz: invalid quantization bin count");
  h.pwrel_zero_floor = in.get<double>();
  return h;
}

StreamHeader inspect(std::span<const std::uint8_t> stream) {
  io::ByteReader reader(stream);
  return read_header(reader);
}

}  // namespace fpsnr::sz
