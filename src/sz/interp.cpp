#include "sz/interp.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "huffman/huffman.h"
#include "io/bitstream.h"
#include "io/bytebuffer.h"
#include "sz/quantizer.h"

namespace fpsnr::sz {

namespace {

constexpr std::uint8_t kInterpMagic[4] = {'F', 'P', 'I', 'N'};
constexpr std::uint8_t kInterpVersion = 1;
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Visit every index of a length-n array in multi-level interpolation
/// order: fn(idx, left, right) where left/right are the interpolation
/// anchors (kNone when absent). Index 0 goes first with no anchors; then
/// for each stride s (descending powers of two) the odd multiples of s are
/// visited, anchored at distance s on both sides. Every anchor is a
/// multiple of 2s, hence already visited at a coarser level — the order is
/// identical on the compressor and decompressor by construction.
template <typename F>
void for_each_interp_point(std::size_t n, F&& fn) {
  if (n == 0) return;
  fn(std::size_t{0}, kNone, kNone);
  if (n == 1) return;
  std::size_t s_max = 1;
  while (s_max * 2 <= n - 1) s_max *= 2;
  for (std::size_t s = s_max; s >= 1; s /= 2) {
    for (std::size_t i = s; i < n; i += 2 * s)
      fn(i, i - s, i + s < n ? i + s : kNone);
    if (s == 1) break;
  }
}

template <typename T>
double interp_predict(const std::vector<T>& recon, std::size_t left,
                      std::size_t right) {
  if (left == kNone) return 0.0;
  const double l = static_cast<double>(recon[left]);
  if (right == kNone) return l;
  return 0.5 * (l + static_cast<double>(recon[right]));
}

struct Header {
  std::uint8_t scalar = 0;
  data::Dims dims;
  double eb_abs = 0.0;
  std::uint32_t quant_bins = 0;
};

void write_in_header(const Header& h, io::ByteWriter& out) {
  out.put_bytes(std::span<const std::uint8_t>(kInterpMagic, 4));
  out.put<std::uint8_t>(kInterpVersion);
  out.put<std::uint8_t>(h.scalar);
  out.put<std::uint8_t>(static_cast<std::uint8_t>(h.dims.rank()));
  for (std::size_t d = 0; d < h.dims.rank(); ++d) out.put_varint(h.dims[d]);
  out.put<double>(h.eb_abs);
  out.put_varint(h.quant_bins);
}

Header read_in_header(io::ByteReader& in) {
  const auto magic = in.get_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kInterpMagic))
    throw io::StreamError("fpin: bad magic");
  if (in.get<std::uint8_t>() != kInterpVersion)
    throw io::StreamError("fpin: unsupported version");
  Header h;
  h.scalar = in.get<std::uint8_t>();
  if (h.scalar > 1) throw io::StreamError("fpin: unknown scalar type");
  const auto rank = in.get<std::uint8_t>();
  if (rank < 1 || rank > 3) throw io::StreamError("fpin: rank out of 1..3");
  std::vector<std::size_t> extents(rank);
  for (auto& e : extents) {
    e = in.get_varint();
    if (e == 0) throw io::StreamError("fpin: zero extent");
  }
  h.dims = data::Dims(std::move(extents));
  h.eb_abs = in.get<double>();
  if (!(h.eb_abs > 0.0) || !std::isfinite(h.eb_abs))
    throw io::StreamError("fpin: invalid error bound");
  h.quant_bins = static_cast<std::uint32_t>(in.get_varint());
  if (h.quant_bins < 4 || h.quant_bins % 2 != 0)
    throw io::StreamError("fpin: invalid quantization bin count");
  return h;
}

}  // namespace

bool is_interp_stream(std::span<const std::uint8_t> stream) {
  return stream.size() >= 4 &&
         std::equal(kInterpMagic, kInterpMagic + 4, stream.begin());
}

template <typename T>
std::vector<std::uint8_t> interp_compress(std::span<const T> values,
                                          const data::Dims& dims,
                                          const InterpParams& params,
                                          InterpInfo* info) {
  if (values.size() != dims.count())
    throw std::invalid_argument("fpin: value count does not match dims");
  if (!(params.eb_abs > 0.0) || !std::isfinite(params.eb_abs))
    throw std::invalid_argument("fpin: error bound must be positive and finite");
  if (params.quantization_bins < 4 || params.quantization_bins % 2 != 0)
    throw std::invalid_argument("fpin: quantization_bins must be even and >= 4");

  const LinearQuantizer quant(params.eb_abs, params.quantization_bins);
  const std::size_t n = values.size();
  std::vector<std::uint32_t> codes(n);
  std::vector<T> recon(n);
  std::vector<T> outliers;

  for_each_interp_point(n, [&](std::size_t i, std::size_t left,
                               std::size_t right) {
    const double pred = interp_predict(recon, left, right);
    const double orig = static_cast<double>(values[i]);
    std::uint32_t code = quant.quantize(orig - pred);
    if (code != 0) {
      const T rec = static_cast<T>(pred + quant.dequantize(code));
      // Same guard as the Lorenzo codec: if the T-domain cast pushed the
      // stored reconstruction past the bound, demote to an exact outlier.
      if (std::abs(static_cast<double>(rec) - orig) <= params.eb_abs) {
        codes[i] = code;
        recon[i] = rec;
        return;
      }
      code = 0;
    }
    codes[i] = 0;
    outliers.push_back(values[i]);
    recon[i] = values[i];
  });

  Header header;
  header.scalar = std::is_same_v<T, double> ? 1 : 0;
  header.dims = dims;
  header.eb_abs = params.eb_abs;
  header.quant_bins = params.quantization_bins;

  io::ByteWriter inner;
  inner.put_varint(outliers.size());
  inner.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(outliers.data()),
      outliers.size() * sizeof(T)));
  const auto encoder =
      huffman::Encoder::from_symbols(codes, params.quantization_bins);
  encoder.write_table(inner);
  io::BitWriter bits;
  encoder.encode(codes, bits);
  inner.put_blob(bits.take());

  io::ByteWriter out;
  write_in_header(header, out);
  out.put_blob(lossless::backend_compress(inner.buffer(), params.backend));
  auto bytes = out.take();

  if (info) {
    info->value_count = n;
    info->outlier_count = outliers.size();
    info->compressed_bytes = bytes.size();
    double sse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double err =
          static_cast<double>(values[i]) - static_cast<double>(recon[i]);
      sse += err * err;
    }
    info->achieved_sse = sse;
  }
  return bytes;
}

template <typename T>
Decompressed<T> interp_decompress(std::span<const std::uint8_t> stream) {
  io::ByteReader reader(stream);
  const Header header = read_in_header(reader);
  const std::uint8_t expect_scalar = std::is_same_v<T, double> ? 1 : 0;
  if (header.scalar != expect_scalar)
    throw io::StreamError("fpin: scalar type mismatch");
  const std::size_t count = header.dims.count();

  const auto inner = lossless::backend_decompress(reader.get_blob_view());
  io::ByteReader ir(inner);
  const std::uint64_t n_out = ir.get_varint();
  if (n_out > count) throw io::StreamError("fpin: outlier count exceeds values");
  // Bound hostile sizes against the bytes actually present BEFORE any
  // allocation sized by them — a crafted header must fail with a clean
  // StreamError, never an oversized alloc.
  if (n_out > ir.remaining() / sizeof(T))
    throw io::StreamError("fpin: truncated outlier list");
  std::vector<T> outliers(n_out);
  const auto raw = ir.get_bytes(n_out * sizeof(T));
  if (!raw.empty()) std::memcpy(outliers.data(), raw.data(), raw.size());
  const auto decoder = huffman::Decoder::read_table(ir);
  const auto code_bits = ir.get_blob_view();
  // Every Huffman code is at least one bit (src/huffman enforces this even
  // for a single-symbol alphabet), so `count` cannot exceed the bit count.
  if (count > code_bits.size() * 8)
    throw io::StreamError("fpin: truncated code stream");
  io::BitReader bits(code_bits);
  const auto codes = decoder.decode(bits, count);

  const LinearQuantizer quant(header.eb_abs, header.quant_bins);
  std::vector<T> recon(count);
  std::size_t next_outlier = 0;
  for_each_interp_point(count, [&](std::size_t i, std::size_t left,
                                   std::size_t right) {
    const std::uint32_t code = codes[i];
    if (code == 0) {
      if (next_outlier >= outliers.size())
        throw io::StreamError("fpin: outlier list exhausted");
      recon[i] = outliers[next_outlier++];
      return;
    }
    if (code >= header.quant_bins)
      throw io::StreamError("fpin: quantization code out of range");
    const double pred = interp_predict(recon, left, right);
    recon[i] = static_cast<T>(pred + quant.dequantize(code));
  });
  if (next_outlier != outliers.size())
    throw io::StreamError("fpin: trailing outliers in stream");
  return {header.dims, std::move(recon)};
}

template std::vector<std::uint8_t> interp_compress<float>(
    std::span<const float>, const data::Dims&, const InterpParams&, InterpInfo*);
template std::vector<std::uint8_t> interp_compress<double>(
    std::span<const double>, const data::Dims&, const InterpParams&, InterpInfo*);
template Decompressed<float> interp_decompress<float>(
    std::span<const std::uint8_t>);
template Decompressed<double> interp_decompress<double>(
    std::span<const std::uint8_t>);

}  // namespace fpsnr::sz
