#include "sz/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "huffman/huffman.h"
#include "io/bitstream.h"
#include "lossless/backend.h"
#include "metrics/metrics.h"
#include "simd/aligned.h"
#include "simd/dispatch.h"
#include "sz/lorenzo.h"
#include "sz/quantizer.h"
#include "sz/regression.h"

namespace fpsnr::sz {

namespace {

/// Visit every grid point in C scan order: fn(flat_idx, i0, i1, i2).
template <typename F>
void for_each_point(const data::Dims& dims, F&& fn) {
  const std::size_t rank = dims.rank();
  std::size_t idx = 0;
  if (rank == 1) {
    for (std::size_t i0 = 0; i0 < dims[0]; ++i0) fn(idx++, i0, std::size_t{0}, std::size_t{0});
  } else if (rank == 2) {
    for (std::size_t i0 = 0; i0 < dims[0]; ++i0)
      for (std::size_t i1 = 0; i1 < dims[1]; ++i1) fn(idx++, i0, i1, std::size_t{0});
  } else {
    for (std::size_t i0 = 0; i0 < dims[0]; ++i0)
      for (std::size_t i1 = 0; i1 < dims[1]; ++i1)
        for (std::size_t i2 = 0; i2 < dims[2]; ++i2) fn(idx++, i0, i1, i2);
  }
}

template <typename T>
LorenzoPredictor<T> make_predictor(const T* recon, const data::Dims& dims) {
  const std::size_t rank = dims.rank();
  return LorenzoPredictor<T>(recon, dims[0], rank > 1 ? dims[1] : 1,
                             rank > 2 ? dims[2] : 1, rank);
}

// Aligned storage: codes/recon are the hot per-field scratch the SIMD
// kernels stream through.
template <typename T>
struct QuantizeOutput {
  simd::aligned_vector<std::uint32_t> codes;
  simd::aligned_vector<T> recon;
  simd::aligned_vector<T> outliers;
};

// ---- HybridRegression predictor (SZ 2.x style) ----------------------------

struct BlockGrid {
  std::array<std::size_t, 3> ext = {1, 1, 1};      // grid extents, padded
  std::array<std::size_t, 3> nblocks = {1, 1, 1};  // block counts per axis

  explicit BlockGrid(const data::Dims& dims) {
    for (std::size_t d = 0; d < dims.rank(); ++d) {
      ext[d] = dims[d];
      nblocks[d] = (dims[d] + kRegressionBlock - 1) / kRegressionBlock;
    }
  }
  std::size_t total() const { return nblocks[0] * nblocks[1] * nblocks[2]; }
  std::size_t block_of(std::size_t i0, std::size_t i1, std::size_t i2) const {
    return ((i0 / kRegressionBlock) * nblocks[1] + i1 / kRegressionBlock) *
               nblocks[2] +
           i2 / kRegressionBlock;
  }
};

/// Per-stream predictor-selection plan: one bit per 6^d block plus the
/// quantized regression coefficients of the blocks that use regression.
struct HybridPlan {
  double coeff_step = 0.0;
  std::vector<std::uint8_t> use_regression;   // one byte (0/1) per block
  std::vector<std::uint32_t> coeff_index;     // block -> index into coeffs
  std::vector<RegressionCoeffs> coeffs;
};

/// Decide per block between Lorenzo and regression by comparing mean
/// absolute prediction errors on the *original* data (compressor-side
/// heuristic only — the decision itself is shipped in the stream, so the
/// two codec sides never need to agree on the heuristic).
template <typename T>
HybridPlan build_hybrid_plan(std::span<const T> values, const data::Dims& dims,
                             double eb_abs) {
  const BlockGrid grid(dims);
  HybridPlan plan;
  plan.coeff_step = eb_abs / 4.0;
  plan.use_regression.assign(grid.total(), 0);
  plan.coeff_index.assign(grid.total(), 0);

  const std::size_t rank = dims.rank();
  auto lorenzo = make_predictor<T>(values.data(), dims);

  std::size_t b = 0;
  for (std::size_t b0 = 0; b0 < grid.nblocks[0]; ++b0) {
    for (std::size_t b1 = 0; b1 < grid.nblocks[1]; ++b1) {
      for (std::size_t b2 = 0; b2 < grid.nblocks[2]; ++b2, ++b) {
        const std::array<std::size_t, 3> lo = {b0 * kRegressionBlock,
                                               b1 * kRegressionBlock,
                                               b2 * kRegressionBlock};
        std::array<std::size_t, 3> bd;
        for (std::size_t d = 0; d < 3; ++d)
          bd[d] = std::min(kRegressionBlock, grid.ext[d] - lo[d]);

        const RegressionCoeffs fit = fit_block(values, dims, lo, bd);
        const RegressionCoeffs q = quantize_coeffs(fit, plan.coeff_step);
        const double reg_err = block_abs_error(values, dims, lo, bd, q);

        // Lorenzo error on originals over the same block.
        double lor_err = 0.0;
        std::size_t count = 0;
        for (std::size_t o0 = 0; o0 < bd[0]; ++o0)
          for (std::size_t o1 = 0; o1 < bd[1]; ++o1)
            for (std::size_t o2 = 0; o2 < bd[2]; ++o2) {
              const std::size_t i0 = lo[0] + o0, i1 = lo[1] + o1, i2 = lo[2] + o2;
              std::size_t idx = i0;
              if (rank >= 2) idx = idx * dims[1] + i1;
              if (rank >= 3) idx = idx * dims[2] + i2;
              lor_err += std::abs(static_cast<double>(values[idx]) -
                                  lorenzo.predict(idx, i0, i1, i2));
              ++count;
            }
        lor_err /= static_cast<double>(count);

        if (reg_err < lor_err) {
          plan.use_regression[b] = 1;
          plan.coeff_index[b] = static_cast<std::uint32_t>(plan.coeffs.size());
          plan.coeffs.push_back(q);
        }
      }
    }
  }
  return plan;
}

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

std::vector<std::uint8_t> serialize_plan(const HybridPlan& plan) {
  io::ByteWriter out;
  out.put<double>(plan.coeff_step);
  out.put_varint(plan.use_regression.size());
  std::vector<std::uint8_t> bitmap((plan.use_regression.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < plan.use_regression.size(); ++i)
    if (plan.use_regression[i]) bitmap[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
  out.put_bytes(bitmap);
  out.put_varint(plan.coeffs.size());
  for (const RegressionCoeffs& c : plan.coeffs)
    for (double v : c.b)
      out.put_varint(zigzag_encode(
          static_cast<std::int64_t>(std::llround(v / plan.coeff_step))));
  return lossless::backend_compress(out.buffer());
}

HybridPlan deserialize_plan(std::span<const std::uint8_t> blob) {
  const auto raw = lossless::backend_decompress(blob);
  io::ByteReader in(raw);
  HybridPlan plan;
  plan.coeff_step = in.get<double>();
  if (!(plan.coeff_step > 0.0) || !std::isfinite(plan.coeff_step))
    throw io::StreamError("fpsz: invalid regression coefficient step");
  const std::uint64_t nblocks = in.get_varint();
  plan.use_regression.assign(nblocks, 0);
  plan.coeff_index.assign(nblocks, 0);
  const auto bitmap = in.get_bytes((nblocks + 7) / 8);
  std::uint32_t next = 0;
  for (std::uint64_t i = 0; i < nblocks; ++i) {
    if ((bitmap[i >> 3] >> (i & 7)) & 1u) {
      plan.use_regression[i] = 1;
      plan.coeff_index[i] = next++;
    }
  }
  const std::uint64_t ncoeffs = in.get_varint();
  if (ncoeffs != next)
    throw io::StreamError("fpsz: regression plan bitmap/coefficient mismatch");
  plan.coeffs.resize(ncoeffs);
  for (auto& c : plan.coeffs)
    for (double& v : c.b)
      v = static_cast<double>(zigzag_decode(in.get_varint())) * plan.coeff_step;
  return plan;
}

/// Hybrid-predictor quantization pass: identical to quantize_pass except
/// the per-point prediction consults the plan.
template <typename T>
QuantizeOutput<T> quantize_pass_hybrid(std::span<const T> values,
                                       const data::Dims& dims, double eb_abs,
                                       std::uint32_t bins,
                                       const HybridPlan& plan) {
  const BlockGrid grid(dims);
  if (plan.use_regression.size() != grid.total())
    throw io::StreamError("fpsz: regression plan does not match dims");
  LinearQuantizer quant(eb_abs, bins);
  QuantizeOutput<T> out;
  out.codes.resize(values.size());
  out.recon.resize(values.size());
  auto lorenzo = make_predictor<T>(out.recon.data(), dims);
  for_each_point(dims, [&](std::size_t idx, std::size_t i0, std::size_t i1,
                           std::size_t i2) {
    const std::size_t b = grid.block_of(i0, i1, i2);
    const double pred =
        plan.use_regression[b]
            ? predict_regression(plan.coeffs[plan.coeff_index[b]],
                                 i0 % kRegressionBlock, i1 % kRegressionBlock,
                                 i2 % kRegressionBlock)
            : lorenzo.predict(idx, i0, i1, i2);
    const double orig = static_cast<double>(values[idx]);
    std::uint32_t code = quant.quantize(orig - pred);
    if (code != 0) {
      const T rec = static_cast<T>(pred + quant.dequantize(code));
      if (std::abs(static_cast<double>(rec) - orig) <= eb_abs) {
        out.codes[idx] = code;
        out.recon[idx] = rec;
        return;
      }
      code = 0;
    }
    out.codes[idx] = 0;
    out.outliers.push_back(values[idx]);
    out.recon[idx] = values[idx];
  });
  return out;
}

template <typename T>
std::vector<T> reconstruct_pass_hybrid(std::span<const std::uint32_t> codes,
                                       std::span<const T> outliers,
                                       const data::Dims& dims, double eb_abs,
                                       std::uint32_t bins,
                                       const HybridPlan& plan) {
  const BlockGrid grid(dims);
  if (plan.use_regression.size() != grid.total())
    throw io::StreamError("fpsz: regression plan does not match dims");
  LinearQuantizer quant(eb_abs, bins);
  std::vector<T> recon(codes.size());
  auto lorenzo = make_predictor<T>(recon.data(), dims);
  std::size_t next_outlier = 0;
  for_each_point(dims, [&](std::size_t idx, std::size_t i0, std::size_t i1,
                           std::size_t i2) {
    const std::uint32_t code = codes[idx];
    if (code == 0) {
      if (next_outlier >= outliers.size())
        throw io::StreamError("fpsz: outlier list exhausted");
      recon[idx] = outliers[next_outlier++];
      return;
    }
    if (code >= bins) throw io::StreamError("fpsz: quantization code out of range");
    const std::size_t b = grid.block_of(i0, i1, i2);
    const double pred =
        plan.use_regression[b]
            ? predict_regression(plan.coeffs[plan.coeff_index[b]],
                                 i0 % kRegressionBlock, i1 % kRegressionBlock,
                                 i2 % kRegressionBlock)
            : lorenzo.predict(idx, i0, i1, i2);
    recon[idx] = static_cast<T>(pred + quant.dequantize(code));
  });
  if (next_outlier != outliers.size())
    throw io::StreamError("fpsz: trailing outliers in stream");
  return recon;
}

/// Steps 1+2: prediction + quantization. The reconstruction buffer is
/// maintained during compression so predictions match decompression
/// bit-for-bit (paper Eq. 1).
template <typename T>
QuantizeOutput<T> quantize_pass(std::span<const T> values, const data::Dims& dims,
                                double eb_abs, std::uint32_t bins,
                                PredictionTrace* trace) {
  LinearQuantizer quant(eb_abs, bins);
  QuantizeOutput<T> out;
  out.codes.resize(values.size());
  out.recon.resize(values.size());
  if (trace == nullptr && dims.rank() == 2) {
    // Rank-2 fast path: the fused Lorenzo predict+quantize kernel (vector
    // backends pipeline a 4-row wavefront; every backend is bit-identical
    // to the loop below). Tracing keeps the generic loop — it needs the
    // per-point diff/deq stream.
    const simd::KernelTable& kt = simd::kernels();
    out.outliers.resize(values.size());
    std::size_t n_out;
    if constexpr (std::is_same_v<T, float>)
      n_out = kt.lorenzo2_quant_f32(values.data(), dims[0], dims[1], eb_abs,
                                    bins, out.codes.data(), out.recon.data(),
                                    out.outliers.data());
    else
      n_out = kt.lorenzo2_quant_f64(values.data(), dims[0], dims[1], eb_abs,
                                    bins, out.codes.data(), out.recon.data(),
                                    out.outliers.data());
    out.outliers.resize(n_out);
    return out;
  }
  if (trace) {
    trace->pe.reserve(values.size());
    trace->pe_recon.reserve(values.size());
  }
  auto predictor = make_predictor<T>(out.recon.data(), dims);
  for_each_point(dims, [&](std::size_t idx, std::size_t i0, std::size_t i1,
                           std::size_t i2) {
    const double pred = predictor.predict(idx, i0, i1, i2);
    const double orig = static_cast<double>(values[idx]);
    const double diff = orig - pred;
    std::uint32_t code = quant.quantize(diff);
    if (code != 0) {
      const double deq = quant.dequantize(code);
      const T rec = static_cast<T>(pred + deq);
      // Guard against precision loss in the T-domain cast: if the stored
      // reconstruction violates the bound, demote to an exact outlier.
      if (std::abs(static_cast<double>(rec) - orig) <= eb_abs) {
        out.codes[idx] = code;
        out.recon[idx] = rec;
        if (trace) {
          trace->pe.push_back(diff);
          trace->pe_recon.push_back(deq);
        }
        return;
      }
      code = 0;
    }
    out.codes[idx] = 0;
    out.outliers.push_back(values[idx]);
    out.recon[idx] = values[idx];
    if (trace) {
      // Exact storage: zero quantization-stage error for this point.
      trace->pe.push_back(diff);
      trace->pe_recon.push_back(diff);
    }
  });
  return out;
}

/// Inverse of quantize_pass given the codes and outlier list.
template <typename T>
std::vector<T> reconstruct_pass(std::span<const std::uint32_t> codes,
                                std::span<const T> outliers, const data::Dims& dims,
                                double eb_abs, std::uint32_t bins) {
  LinearQuantizer quant(eb_abs, bins);
  std::vector<T> recon(codes.size());
  auto predictor = make_predictor<T>(recon.data(), dims);
  std::size_t next_outlier = 0;
  for_each_point(dims, [&](std::size_t idx, std::size_t i0, std::size_t i1,
                           std::size_t i2) {
    const std::uint32_t code = codes[idx];
    if (code == 0) {
      if (next_outlier >= outliers.size())
        throw io::StreamError("fpsz: outlier list exhausted");
      recon[idx] = outliers[next_outlier++];
      return;
    }
    if (code >= bins) throw io::StreamError("fpsz: quantization code out of range");
    const double pred = predictor.predict(idx, i0, i1, i2);
    recon[idx] = static_cast<T>(pred + quant.dequantize(code));
  });
  if (next_outlier != outliers.size())
    throw io::StreamError("fpsz: trailing outliers in stream");
  return recon;
}

/// Steps 3+4: entropy-code the quantization codes, append outliers, and run
/// the lossless backend over the whole inner stream.
template <typename T>
std::vector<std::uint8_t> encode_inner(const QuantizeOutput<T>& q,
                                       std::uint32_t bins,
                                       const Params& params) {
  io::ByteWriter inner;
  inner.put_varint(q.outliers.size());
  inner.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(q.outliers.data()),
      q.outliers.size() * sizeof(T)));

  const auto encoder = huffman::Encoder::from_symbols(q.codes, bins);
  encoder.write_table(inner);
  io::BitWriter bits;
  encoder.encode(q.codes, bits);
  inner.put_blob(bits.take());

  return lossless::backend_compress(inner.buffer(), params.backend);
}

template <typename T>
struct DecodedInner {
  std::vector<std::uint32_t> codes;
  std::vector<T> outliers;
};

template <typename T>
DecodedInner<T> decode_inner(std::span<const std::uint8_t> payload,
                             std::size_t count) {
  const auto inner = lossless::backend_decompress(payload);
  io::ByteReader reader(inner);
  const std::uint64_t outlier_count = reader.get_varint();
  if (outlier_count > count)
    throw io::StreamError("fpsz: outlier count exceeds value count");
  // Bound against the bytes actually present before allocating: a crafted
  // header must fail with a StreamError, not an oversized alloc.
  if (outlier_count > reader.remaining() / sizeof(T))
    throw io::StreamError("fpsz: truncated outlier list");
  DecodedInner<T> out;
  out.outliers.resize(outlier_count);
  const auto raw = reader.get_bytes(outlier_count * sizeof(T));
  if (!raw.empty()) std::memcpy(out.outliers.data(), raw.data(), raw.size());

  const auto decoder = huffman::Decoder::read_table(reader);
  const auto payload_bits = reader.get_blob_view();
  io::BitReader bits(payload_bits);
  out.codes = decoder.decode(bits, count);
  return out;
}

// ---- PointwiseRelative support: log2-domain transform -------------------
//
// x is split into (sign, y = log2 |x|); y is compressed in Absolute mode
// with bound log2(1 + eb), which bounds the multiplicative reconstruction
// error by (1 + eb) on both sides. Values with |x| below the zero floor
// (including exact zeros) are recorded as exceptions and restored verbatim.

template <typename T>
struct PwrelTransform {
  std::vector<T> logs;                 // y values fed to the abs-mode core
  std::vector<std::uint8_t> sign_bits; // packed, 1 = negative
  std::vector<std::uint64_t> exception_indices;
  std::vector<T> exception_values;
};

template <typename T>
PwrelTransform<T> pwrel_forward(std::span<const T> values, double zero_floor) {
  PwrelTransform<T> t;
  t.logs.resize(values.size());
  t.sign_bits.assign((values.size() + 7) / 8, 0);
  T last_log = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x = static_cast<double>(values[i]);
    if (!std::isfinite(x) || std::abs(x) < zero_floor) {
      t.exception_indices.push_back(i);
      t.exception_values.push_back(values[i]);
      // Feed a locally smooth placeholder to the predictor; it is
      // overwritten from the exception list at decompression.
      t.logs[i] = last_log;
      continue;
    }
    if (x < 0.0) t.sign_bits[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
    const T y = static_cast<T>(std::log2(std::abs(x)));
    t.logs[i] = y;
    last_log = y;
  }
  return t;
}

template <typename T>
void pwrel_inverse(std::vector<T>& values, std::span<const std::uint8_t> sign_bits,
                   std::span<const std::uint64_t> exception_indices,
                   std::span<const T> exception_values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    const bool negative =
        (sign_bits[i >> 3] >> (i & 7)) & 1u;
    const double mag = std::exp2(static_cast<double>(values[i]));
    values[i] = static_cast<T>(negative ? -mag : mag);
  }
  for (std::size_t k = 0; k < exception_indices.size(); ++k) {
    const std::uint64_t idx = exception_indices[k];
    if (idx >= values.size())
      throw io::StreamError("fpsz: pwrel exception index out of range");
    values[idx] = exception_values[k];
  }
}

}  // namespace

double resolve_absolute_bound(ErrorBoundMode mode, double bound, double value_range) {
  if (!(bound > 0.0) || !std::isfinite(bound))
    throw std::invalid_argument("fpsz: error bound must be positive and finite");
  switch (mode) {
    case ErrorBoundMode::Absolute:
      return bound;
    case ErrorBoundMode::ValueRangeRelative: {
      const double eb = bound * value_range;
      // Constant fields have zero range; any positive bound preserves them
      // exactly because every prediction error is zero.
      return eb > 0.0 ? eb : std::numeric_limits<double>::min() * 1e6;
    }
    case ErrorBoundMode::PointwiseRelative:
      return std::log2(1.0 + bound);
  }
  throw std::invalid_argument("fpsz: unknown error mode");
}

template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> values, const data::Dims& dims,
                                   const Params& params, CompressionInfo* info) {
  if (values.size() != dims.count())
    throw std::invalid_argument("fpsz: value count does not match dims");
  if (params.quantization_bins < 4 || params.quantization_bins % 2 != 0)
    throw std::invalid_argument("fpsz: quantization_bins must be even and >= 4");

  const double vr = metrics::value_range(values);
  const double eb_abs = resolve_absolute_bound(params.mode, params.bound, vr);

  StreamHeader header;
  header.scalar = scalar_type_of<T>();
  header.mode = params.mode;
  header.predictor = params.predictor;
  header.dims = dims;
  header.eb_abs = eb_abs;
  header.user_bound = params.bound;
  header.value_range = vr;
  header.quant_bins = params.quantization_bins;
  header.pwrel_zero_floor = params.pwrel_zero_floor;

  io::ByteWriter out;
  write_header(header, out);

  // Quantize with the configured predictor; the hybrid plan (block bitmap
  // + regression coefficients) is written right before the inner stream.
  auto run_quantize = [&](std::span<const T> vals) {
    if (params.predictor == Predictor::HybridRegression) {
      const HybridPlan plan = build_hybrid_plan(vals, dims, eb_abs);
      out.put_blob(serialize_plan(plan));
      return quantize_pass_hybrid(vals, dims, eb_abs, params.quantization_bins,
                                  plan);
    }
    return quantize_pass(vals, dims, eb_abs, params.quantization_bins, nullptr);
  };

  std::size_t outlier_count = 0;
  // Exact achieved distortion: the quantize pass maintains the same T-domain
  // reconstruction decompress will produce, so the SSE measured here equals
  // the decode-side error bit for bit. Not available in PointwiseRelative
  // mode, where the recon buffer lives in the log2 domain.
  double achieved_sse = -1.0;
  if (params.mode == ErrorBoundMode::PointwiseRelative) {
    const auto t = pwrel_forward(values, params.pwrel_zero_floor);
    // Side channel: signs + exceptions, then the abs-mode core over y.
    io::ByteWriter side;
    side.put_blob(t.sign_bits);
    side.put_varint(t.exception_indices.size());
    std::uint64_t prev = 0;
    for (std::size_t k = 0; k < t.exception_indices.size(); ++k) {
      side.put_varint(t.exception_indices[k] - prev);  // delta coding
      prev = t.exception_indices[k];
      side.put<T>(t.exception_values[k]);
    }
    out.put_blob(lossless::backend_compress(side.buffer(), params.backend));

    const auto q = run_quantize(t.logs);
    outlier_count = q.outliers.size() + t.exception_indices.size();
    out.put_blob(encode_inner(q, params.quantization_bins, params));
  } else {
    const auto q = run_quantize(values);
    outlier_count = q.outliers.size();
    if constexpr (std::is_same_v<T, float>)
      achieved_sse =
          simd::kernels().sse_f32(values.data(), q.recon.data(), values.size());
    else
      achieved_sse =
          simd::kernels().sse_f64(values.data(), q.recon.data(), values.size());
    out.put_blob(encode_inner(q, params.quantization_bins, params));
  }

  auto bytes = out.take();
  if (info) {
    info->eb_abs_used = eb_abs;
    info->value_range = vr;
    info->value_count = values.size();
    info->outlier_count = outlier_count;
    info->compressed_bytes = bytes.size();
    info->compression_ratio =
        metrics::compression_ratio(values.size() * sizeof(T), bytes.size());
    info->bit_rate = metrics::bit_rate(bytes.size(), values.size());
    info->achieved_sse = achieved_sse;
  }
  return bytes;
}

template <typename T>
Decompressed<T> decompress(std::span<const std::uint8_t> stream) {
  io::ByteReader reader(stream);
  const StreamHeader header = read_header(reader);
  if (header.scalar != scalar_type_of<T>())
    throw io::StreamError("fpsz: scalar type mismatch");
  const std::size_t count = header.dims.count();

  // Mirrors compress(): [pwrel side blob] [hybrid plan blob] [inner blob].
  auto reconstruct = [&]() {
    if (header.predictor == Predictor::HybridRegression) {
      const HybridPlan plan = deserialize_plan(reader.get_blob_view());
      const auto inner = decode_inner<T>(reader.get_blob_view(), count);
      return reconstruct_pass_hybrid<T>(inner.codes, inner.outliers, header.dims,
                                        header.eb_abs, header.quant_bins, plan);
    }
    const auto inner = decode_inner<T>(reader.get_blob_view(), count);
    return reconstruct_pass<T>(inner.codes, inner.outliers, header.dims,
                               header.eb_abs, header.quant_bins);
  };

  if (header.mode == ErrorBoundMode::PointwiseRelative) {
    const auto side_raw = lossless::backend_decompress(reader.get_blob_view());
    io::ByteReader side(side_raw);
    const auto sign_bits = side.get_blob();
    if (sign_bits.size() != (count + 7) / 8)
      throw io::StreamError("fpsz: sign bitmap size mismatch");
    const std::uint64_t n_exc = side.get_varint();
    if (n_exc > count) throw io::StreamError("fpsz: exception count exceeds values");
    std::vector<std::uint64_t> exc_idx(n_exc);
    std::vector<T> exc_val(n_exc);
    std::uint64_t prev = 0;
    for (std::uint64_t k = 0; k < n_exc; ++k) {
      prev += side.get_varint();
      exc_idx[k] = prev;
      exc_val[k] = side.get<T>();
    }

    auto values = reconstruct();
    pwrel_inverse<T>(values, sign_bits, exc_idx, exc_val);
    return {header.dims, std::move(values)};
  }

  auto values = reconstruct();
  return {header.dims, std::move(values)};
}

template <typename T>
PredictionTrace prediction_trace(std::span<const T> values, const data::Dims& dims,
                                 double eb_abs, std::uint32_t bins) {
  if (values.size() != dims.count())
    throw std::invalid_argument("fpsz: value count does not match dims");
  PredictionTrace trace;
  (void)quantize_pass(values, dims, eb_abs, bins, &trace);
  return trace;
}

template std::vector<std::uint8_t> compress<float>(std::span<const float>,
                                                   const data::Dims&, const Params&,
                                                   CompressionInfo*);
template std::vector<std::uint8_t> compress<double>(std::span<const double>,
                                                    const data::Dims&, const Params&,
                                                    CompressionInfo*);
template Decompressed<float> decompress<float>(std::span<const std::uint8_t>);
template Decompressed<double> decompress<double>(std::span<const std::uint8_t>);
template PredictionTrace prediction_trace<float>(std::span<const float>,
                                                 const data::Dims&, double,
                                                 std::uint32_t);
template PredictionTrace prediction_trace<double>(std::span<const double>,
                                                  const data::Dims&, double,
                                                  std::uint32_t);

}  // namespace fpsnr::sz
