// Error-control modes and compression parameters for the SZ-style codec.
//
// The paper (§II-B) distinguishes: absolute error bound, pointwise relative
// error bound, and value-range-based relative error bound (SZ's three
// traditional modes). The fixed-PSNR mode of the paper — and a fixed-rate
// extension — live one layer up in src/core, which resolves both to a
// value-range relative bound before invoking this codec.
#pragma once

#include <cstdint>
#include <string_view>

#include "lossless/backend.h"

namespace fpsnr::sz {

enum class ErrorBoundMode : std::uint8_t {
  /// |x_i - x~_i| <= bound for every point.
  Absolute = 0,
  /// |x_i - x~_i| <= bound * (max(X) - min(X)).
  ValueRangeRelative = 1,
  /// |x_i - x~_i| <= bound * |x_i| for every point (log-domain transform).
  PointwiseRelative = 2,
};

std::string_view mode_name(ErrorBoundMode m);

/// Prediction scheme for step (1) of the pipeline.
enum class Predictor : std::uint8_t {
  /// Order-1 Lorenzo on reconstructed neighbours (SZ 1.4 — the paper).
  Lorenzo = 0,
  /// Per-block choice between Lorenzo and a transmitted linear-regression
  /// model (SZ 2.x evolution). Same error bound, same fixed-PSNR model
  /// (Theorem 1 holds for any predictor shared by both codec sides).
  HybridRegression = 1,
};

std::string_view predictor_name(Predictor p);

/// Parameters for one compression run.
struct Params {
  ErrorBoundMode mode = ErrorBoundMode::ValueRangeRelative;
  double bound = 1e-4;

  Predictor predictor = Predictor::Lorenzo;

  /// Number of quantization bins (2n in the paper's notation). Bin size is
  /// fixed at 2*eb_abs; more bins means fewer unpredictable points, not a
  /// different bin size. Must be >= 4 and even.
  std::uint32_t quantization_bins = 65536;

  /// Final lossless stage over the entropy-coded stream.
  lossless::Method backend = lossless::Method::Deflate;

  /// Magnitudes below this floor are stored exactly in PointwiseRelative
  /// mode (log2 transform needs |x| > 0 and tiny values would otherwise
  /// dominate the log-domain value range).
  double pwrel_zero_floor = 1e-30;
};

/// Per-run statistics reported back by the codec (see codec.h).
struct CompressionInfo {
  double eb_abs_used = 0.0;       ///< absolute bound applied to the coded data
  double value_range = 0.0;       ///< value range of the original input
  std::size_t value_count = 0;
  std::size_t outlier_count = 0;  ///< points stored exactly (code 0)
  std::size_t compressed_bytes = 0;
  double compression_ratio = 0.0;
  double bit_rate = 0.0;          ///< compressed bits per value
  /// Exact sum of squared reconstruction errors (original vs what
  /// decompress will produce, in the stored scalar type). -1 when the mode
  /// does not track it (PointwiseRelative's log-domain transform).
  double achieved_sse = -1.0;
};

}  // namespace fpsnr::sz
