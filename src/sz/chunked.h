// Chunked (slab-parallel) variant of the SZ-style codec.
//
// The field is split into slabs along axis 0; each slab is compressed as an
// independent stream, optionally in parallel on a thread pool. Prediction
// restarts at every slab boundary, so the compression ratio dips slightly
// (one boundary face per slab loses its north neighbours), but:
//   * the pointwise error bound is untouched, and
//   * the fixed-PSNR model is untouched — Theorem 3 makes PSNR a function
//     of the bin width alone, and all slabs share one bin width derived
//     from the *global* value range.
// Decompression is parallel per slab as well. This is the intra-field
// counterpart of core/batch.h's across-fields parallelism.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parallel/thread_pool.h"
#include "sz/codec.h"

namespace fpsnr::sz {

struct ChunkedInfo {
  std::size_t chunk_count = 0;
  double eb_abs_used = 0.0;
  std::size_t compressed_bytes = 0;
  double compression_ratio = 0.0;
  double bit_rate = 0.0;
  std::size_t outlier_count = 0;
};

/// Compress in `chunks` slabs along axis 0 (clamped to dims[0]; 0 means
/// one slab per pool thread, or 4 without a pool). The error-bound mode is
/// resolved against the global value range, then applied per slab as an
/// absolute bound, so the guarantee matches the unchunked codec exactly.
/// PointwiseRelative mode is inherently per-point and passes through.
template <typename T>
std::vector<std::uint8_t> chunked_compress(std::span<const T> values,
                                           const data::Dims& dims,
                                           const Params& params,
                                           std::size_t chunks = 0,
                                           parallel::ThreadPool* pool = nullptr,
                                           ChunkedInfo* info = nullptr);

/// Decompress a chunked stream (parallel per slab when a pool is given).
template <typename T>
Decompressed<T> chunked_decompress(std::span<const std::uint8_t> stream,
                                   parallel::ThreadPool* pool = nullptr);

/// True if `stream` starts with the chunked-container magic.
bool is_chunked_stream(std::span<const std::uint8_t> stream);

extern template std::vector<std::uint8_t> chunked_compress<float>(
    std::span<const float>, const data::Dims&, const Params&, std::size_t,
    parallel::ThreadPool*, ChunkedInfo*);
extern template std::vector<std::uint8_t> chunked_compress<double>(
    std::span<const double>, const data::Dims&, const Params&, std::size_t,
    parallel::ThreadPool*, ChunkedInfo*);
extern template Decompressed<float> chunked_decompress<float>(
    std::span<const std::uint8_t>, parallel::ThreadPool*);
extern template Decompressed<double> chunked_decompress<double>(
    std::span<const std::uint8_t>, parallel::ThreadPool*);

}  // namespace fpsnr::sz
