// Lorenzo prediction (Ibarria et al. 2003) on reconstructed neighbours.
//
// The order-1 Lorenzo predictor approximates each point by the inclusion-
// exclusion sum of its already-visited neighbours in the scan order. With
// out-of-bounds neighbours treated as zero the same formula degrades
// gracefully at boundaries: the first row of a 2-D field reduces to 1-D
// prediction, the very first point to zero.
//
// Crucially, predictions are computed from *reconstructed* values both at
// compression and decompression time — this is what makes
//   X - X~  ==  Xpe - X~pe     (paper Eq. 1)
// an exact identity and Theorem 1 hold.
#pragma once

#include <cstddef>

namespace fpsnr::sz {

/// Predictor over a reconstructed buffer laid out in C order.
/// T is the stored scalar (float/double); predictions are returned in
/// double so both codec directions use identical arithmetic.
template <typename T>
class LorenzoPredictor {
 public:
  LorenzoPredictor(const T* recon, std::size_t n0, std::size_t n1 = 1,
                   std::size_t n2 = 1, std::size_t rank = 1)
      : recon_(recon), n0_(n0), n1_(n1), n2_(n2), rank_(rank) {}

  /// Prediction for the point at flat index `idx` with coordinates
  /// (i0, i1, i2); unused trailing coordinates must be 0.
  double predict(std::size_t idx, std::size_t i0, std::size_t i1,
                 std::size_t i2) const {
    switch (rank_) {
      case 1:
        return i0 > 0 ? static_cast<double>(recon_[idx - 1]) : 0.0;
      case 2: {
        const double west = i1 > 0 ? static_cast<double>(recon_[idx - 1]) : 0.0;
        const double north = i0 > 0 ? static_cast<double>(recon_[idx - n1_]) : 0.0;
        const double nw = (i0 > 0 && i1 > 0)
                              ? static_cast<double>(recon_[idx - n1_ - 1])
                              : 0.0;
        return west + north - nw;
      }
      default: {  // rank 3
        const std::size_t sz = n1_ * n2_;  // stride along axis 0
        const std::size_t sy = n2_;        // stride along axis 1
        const bool a = i0 > 0, b = i1 > 0, c = i2 > 0;
        const double f100 = a ? static_cast<double>(recon_[idx - sz]) : 0.0;
        const double f010 = b ? static_cast<double>(recon_[idx - sy]) : 0.0;
        const double f001 = c ? static_cast<double>(recon_[idx - 1]) : 0.0;
        const double f110 = (a && b) ? static_cast<double>(recon_[idx - sz - sy]) : 0.0;
        const double f101 = (a && c) ? static_cast<double>(recon_[idx - sz - 1]) : 0.0;
        const double f011 = (b && c) ? static_cast<double>(recon_[idx - sy - 1]) : 0.0;
        const double f111 =
            (a && b && c) ? static_cast<double>(recon_[idx - sz - sy - 1]) : 0.0;
        return f100 + f010 + f001 - f110 - f101 - f011 + f111;
      }
    }
  }

 private:
  const T* recon_;
  std::size_t n0_, n1_, n2_;
  std::size_t rank_;
};

}  // namespace fpsnr::sz
