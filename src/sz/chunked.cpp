#include "sz/chunked.h"

#include <algorithm>
#include <cmath>

#include "io/bytebuffer.h"
#include "metrics/metrics.h"

namespace fpsnr::sz {

namespace {

constexpr std::uint8_t kChunkMagic[4] = {'F', 'P', 'S', 'C'};
constexpr std::uint8_t kChunkVersion = 1;

data::Dims slab_dims(const data::Dims& dims, std::size_t rows) {
  std::vector<std::size_t> e(dims.extents);
  e[0] = rows;
  return data::Dims(std::move(e));
}

}  // namespace

bool is_chunked_stream(std::span<const std::uint8_t> stream) {
  return stream.size() >= 4 && std::equal(kChunkMagic, kChunkMagic + 4,
                                          stream.begin());
}

template <typename T>
std::vector<std::uint8_t> chunked_compress(std::span<const T> values,
                                           const data::Dims& dims,
                                           const Params& params,
                                           std::size_t chunks,
                                           parallel::ThreadPool* pool,
                                           ChunkedInfo* info) {
  if (values.size() != dims.count())
    throw std::invalid_argument("chunked: value count does not match dims");

  if (chunks == 0) chunks = pool ? pool->thread_count() : 4;
  chunks = std::clamp<std::size_t>(chunks, 1, dims[0]);

  // Resolve the bound once against the *global* range so every slab uses
  // the same bin width (Theorem 3 then gives the same PSNR model as the
  // unchunked codec). Pointwise-relative bounds are per-point already.
  Params slab_params = params;
  if (params.mode != ErrorBoundMode::PointwiseRelative) {
    const double vr = metrics::value_range(values);
    slab_params.mode = ErrorBoundMode::Absolute;
    slab_params.bound = resolve_absolute_bound(params.mode, params.bound, vr);
  }

  const std::size_t row_stride = dims.count() / dims[0];
  const std::size_t base_rows = dims[0] / chunks;
  const std::size_t extra = dims[0] % chunks;

  struct Slab {
    std::size_t first_row, rows;
  };
  std::vector<Slab> slabs(chunks);
  std::size_t row = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t rows = base_rows + (c < extra ? 1 : 0);
    slabs[c] = {row, rows};
    row += rows;
  }

  std::vector<std::vector<std::uint8_t>> pieces(chunks);
  std::vector<CompressionInfo> piece_info(chunks);
  auto work = [&](std::size_t c) {
    const Slab& s = slabs[c];
    const std::span<const T> slice =
        values.subspan(s.first_row * row_stride, s.rows * row_stride);
    pieces[c] = compress<T>(slice, slab_dims(dims, s.rows), slab_params,
                            &piece_info[c]);
  };
  if (pool) {
    parallel::parallel_for(*pool, chunks, work);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) work(c);
  }

  io::ByteWriter out;
  out.put_bytes(std::span<const std::uint8_t>(kChunkMagic, 4));
  out.put<std::uint8_t>(kChunkVersion);
  out.put<std::uint8_t>(static_cast<std::uint8_t>(scalar_type_of<T>()));
  out.put<std::uint8_t>(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t d = 0; d < dims.rank(); ++d) out.put_varint(dims[d]);
  out.put_varint(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    out.put_varint(slabs[c].rows);
    out.put_blob(pieces[c]);
  }
  auto bytes = out.take();

  if (info) {
    info->chunk_count = chunks;
    info->eb_abs_used = piece_info[0].eb_abs_used;
    info->compressed_bytes = bytes.size();
    info->compression_ratio =
        metrics::compression_ratio(values.size() * sizeof(T), bytes.size());
    info->bit_rate = metrics::bit_rate(bytes.size(), values.size());
    for (const auto& pi : piece_info) info->outlier_count += pi.outlier_count;
  }
  return bytes;
}

template <typename T>
Decompressed<T> chunked_decompress(std::span<const std::uint8_t> stream,
                                   parallel::ThreadPool* pool) {
  io::ByteReader reader(stream);
  const auto magic = reader.get_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kChunkMagic))
    throw io::StreamError("chunked: bad magic");
  if (reader.get<std::uint8_t>() != kChunkVersion)
    throw io::StreamError("chunked: unsupported version");
  const auto scalar = reader.get<std::uint8_t>();
  if (scalar != static_cast<std::uint8_t>(scalar_type_of<T>()))
    throw io::StreamError("chunked: scalar type mismatch");
  const auto rank = reader.get<std::uint8_t>();
  if (rank < 1 || rank > 3) throw io::StreamError("chunked: rank out of 1..3");
  std::vector<std::size_t> extents(rank);
  for (auto& e : extents) {
    e = reader.get_varint();
    if (e == 0) throw io::StreamError("chunked: zero extent");
  }
  const data::Dims dims(std::move(extents));
  const std::uint64_t chunks = reader.get_varint();
  if (chunks == 0 || chunks > dims[0])
    throw io::StreamError("chunked: invalid chunk count");

  struct Piece {
    std::size_t first_row, rows;
    std::span<const std::uint8_t> blob;
  };
  std::vector<Piece> pieces(chunks);
  std::size_t row = 0;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t rows = reader.get_varint();
    if (rows == 0) throw io::StreamError("chunked: empty slab");
    pieces[c] = {row, rows, reader.get_blob_view()};
    row += rows;
  }
  if (row != dims[0])
    throw io::StreamError("chunked: slab rows do not cover the field");

  const std::size_t row_stride = dims.count() / dims[0];
  Decompressed<T> out;
  out.dims = dims;
  out.values.resize(dims.count());
  auto work = [&](std::size_t c) {
    const Piece& p = pieces[c];
    auto slab = decompress<T>(p.blob);
    if (slab.values.size() != p.rows * row_stride)
      throw io::StreamError("chunked: slab size mismatch");
    std::copy(slab.values.begin(), slab.values.end(),
              out.values.begin() +
                  static_cast<std::ptrdiff_t>(p.first_row * row_stride));
  };
  if (pool) {
    parallel::parallel_for(*pool, pieces.size(), work);
  } else {
    for (std::size_t c = 0; c < pieces.size(); ++c) work(c);
  }
  return out;
}

template std::vector<std::uint8_t> chunked_compress<float>(
    std::span<const float>, const data::Dims&, const Params&, std::size_t,
    parallel::ThreadPool*, ChunkedInfo*);
template std::vector<std::uint8_t> chunked_compress<double>(
    std::span<const double>, const data::Dims&, const Params&, std::size_t,
    parallel::ThreadPool*, ChunkedInfo*);
template Decompressed<float> chunked_decompress<float>(
    std::span<const std::uint8_t>, parallel::ThreadPool*);
template Decompressed<double> chunked_decompress<double>(
    std::span<const std::uint8_t>, parallel::ThreadPool*);

}  // namespace fpsnr::sz
