// Error-controlled linear-scaling quantization (SZ step 2).
//
// The value axis is split into uniform bins of width 2*eb centred on
// integer multiples of 2*eb. A prediction error d maps to the bin index
// round(d / 2eb); reconstruction uses the bin midpoint, so the introduced
// error is at most eb. Code 0 is reserved for "unpredictable" points whose
// index falls outside the configured radius — those are stored exactly.
//
// This is exactly the uniform-quantization model of paper Eq. (6):
// PSNR depends only on the bin width delta = 2*eb and the value range.
#pragma once

#include <cstdint>
#include <optional>

namespace fpsnr::sz {

class LinearQuantizer {
 public:
  /// bins must be even and >= 4; eb_abs must be > 0.
  LinearQuantizer(double eb_abs, std::uint32_t bins);

  /// Quantize a prediction error. Returns the code in [1, bins-1], or 0 if
  /// the error falls outside the representable range (unpredictable).
  std::uint32_t quantize(double diff) const;

  /// Midpoint reconstruction for a nonzero code.
  /// Throws std::invalid_argument for code 0 or code >= bins.
  double dequantize(std::uint32_t code) const;

  double bound() const { return eb_; }
  double bin_width() const { return 2.0 * eb_; }
  std::uint32_t bins() const { return bins_; }
  std::uint32_t radius() const { return radius_; }

 private:
  double eb_;
  std::uint32_t bins_;
  std::uint32_t radius_;  // bins / 2; code = index + radius
};

}  // namespace fpsnr::sz
