#include "sz/regression.h"

#include <cmath>
#include <stdexcept>

namespace fpsnr::sz {

namespace {

struct Strides {
  std::size_t s[3] = {1, 1, 1};
};

Strides strides_of(const data::Dims& dims) {
  Strides st;
  for (std::size_t i = dims.rank(); i-- > 1;) st.s[i - 1] = st.s[i] * dims[i];
  return st;
}

/// Visit each point of a block: fn(flat_index_in_grid, o0, o1, o2).
template <typename F>
void for_block(const data::Dims& dims, const std::array<std::size_t, 3>& lo,
               const std::array<std::size_t, 3>& bd, F&& fn) {
  const Strides st = strides_of(dims);
  for (std::size_t o0 = 0; o0 < bd[0]; ++o0)
    for (std::size_t o1 = 0; o1 < bd[1]; ++o1)
      for (std::size_t o2 = 0; o2 < bd[2]; ++o2) {
        const std::size_t idx = (lo[0] + o0) * st.s[0] +
                                (lo[1] + o1) * st.s[1] + (lo[2] + o2) * st.s[2];
        fn(idx, o0, o1, o2);
      }
}

void validate_block(const data::Dims& dims, const std::array<std::size_t, 3>& lo,
                    const std::array<std::size_t, 3>& bd) {
  for (std::size_t d = 0; d < 3; ++d) {
    const std::size_t extent = d < dims.rank() ? dims[d] : 1;
    if (bd[d] == 0 || lo[d] + bd[d] > extent)
      throw std::invalid_argument("regression: block outside grid");
  }
}

}  // namespace

template <typename T>
RegressionCoeffs fit_block(std::span<const T> values, const data::Dims& dims,
                           const std::array<std::size_t, 3>& block_lo,
                           const std::array<std::size_t, 3>& block_dims) {
  validate_block(dims, block_lo, block_dims);
  // On a full integer lattice the coordinates are independent, so the
  // least-squares slopes decouple:
  //   b_d = cov(x_d, f) / var(x_d),  b_0 = mean(f) - sum_d b_d * mean(x_d).
  const double n = static_cast<double>(block_dims[0] * block_dims[1] *
                                       block_dims[2]);
  double sum_f = 0.0;
  std::array<double, 3> sum_xf = {0, 0, 0};
  for_block(dims, block_lo, block_dims,
            [&](std::size_t idx, std::size_t o0, std::size_t o1, std::size_t o2) {
              const double f = static_cast<double>(values[idx]);
              sum_f += f;
              sum_xf[0] += static_cast<double>(o0) * f;
              sum_xf[1] += static_cast<double>(o1) * f;
              sum_xf[2] += static_cast<double>(o2) * f;
            });
  const double mean_f = sum_f / n;

  RegressionCoeffs c;
  std::array<double, 3> mean_x;
  for (std::size_t d = 0; d < 3; ++d) {
    const double m = static_cast<double>(block_dims[d]);
    mean_x[d] = (m - 1.0) / 2.0;
    // var of 0..m-1 (population) times n: n * (m^2 - 1) / 12.
    const double sxx = n * (m * m - 1.0) / 12.0;
    if (sxx == 0.0) {
      c.b[d + 1] = 0.0;  // degenerate axis (extent 1)
      continue;
    }
    const double sxf = sum_xf[d] - mean_x[d] * sum_f;
    c.b[d + 1] = sxf / sxx;
  }
  c.b[0] = mean_f - c.b[1] * mean_x[0] - c.b[2] * mean_x[1] - c.b[3] * mean_x[2];
  return c;
}

RegressionCoeffs quantize_coeffs(const RegressionCoeffs& c, double coeff_step) {
  if (!(coeff_step > 0.0))
    throw std::invalid_argument("regression: coeff_step must be positive");
  RegressionCoeffs q;
  for (std::size_t i = 0; i < c.b.size(); ++i)
    q.b[i] = std::round(c.b[i] / coeff_step) * coeff_step;
  return q;
}

double predict_regression(const RegressionCoeffs& c, std::size_t o0,
                          std::size_t o1, std::size_t o2) {
  return c.b[0] + c.b[1] * static_cast<double>(o0) +
         c.b[2] * static_cast<double>(o1) + c.b[3] * static_cast<double>(o2);
}

template <typename T>
double block_abs_error(std::span<const T> values, const data::Dims& dims,
                       const std::array<std::size_t, 3>& block_lo,
                       const std::array<std::size_t, 3>& block_dims,
                       const RegressionCoeffs& c) {
  validate_block(dims, block_lo, block_dims);
  double acc = 0.0;
  std::size_t count = 0;
  for_block(dims, block_lo, block_dims,
            [&](std::size_t idx, std::size_t o0, std::size_t o1, std::size_t o2) {
              acc += std::abs(static_cast<double>(values[idx]) -
                              predict_regression(c, o0, o1, o2));
              ++count;
            });
  return acc / static_cast<double>(count);
}

template RegressionCoeffs fit_block<float>(std::span<const float>,
                                           const data::Dims&,
                                           const std::array<std::size_t, 3>&,
                                           const std::array<std::size_t, 3>&);
template RegressionCoeffs fit_block<double>(std::span<const double>,
                                            const data::Dims&,
                                            const std::array<std::size_t, 3>&,
                                            const std::array<std::size_t, 3>&);
template double block_abs_error<float>(std::span<const float>, const data::Dims&,
                                       const std::array<std::size_t, 3>&,
                                       const std::array<std::size_t, 3>&,
                                       const RegressionCoeffs&);
template double block_abs_error<double>(std::span<const double>, const data::Dims&,
                                        const std::array<std::size_t, 3>&,
                                        const std::array<std::size_t, 3>&,
                                        const RegressionCoeffs&);

}  // namespace fpsnr::sz
