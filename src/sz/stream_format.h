// On-disk / in-memory container format for SZ-style compressed streams.
//
// Layout (little-endian):
//   magic   "FPSZ" (4 bytes)
//   version u8 (currently 1)
//   scalar  u8 (0 = float32, 1 = float64)
//   mode    u8 (ErrorBoundMode)
//   rank    u8 (1..3)
//   extents varint x rank
//   eb_abs  f64   -- absolute bound applied to the *coded* stream
//                    (log2-domain bound in PointwiseRelative mode)
//   user_bound f64 -- the bound the caller passed, for round-trip metadata
//   value_range f64
//   quant_bins varint
//   pwrel_zero_floor f64
//   payload blob  -- backend-compressed inner stream (see codec.cpp)
#pragma once

#include <cstdint>
#include <span>

#include "data/field.h"
#include "io/bytebuffer.h"
#include "sz/error_mode.h"

namespace fpsnr::sz {

inline constexpr std::uint8_t kFormatVersion = 1;
inline constexpr std::uint8_t kMagic[4] = {'F', 'P', 'S', 'Z'};

enum class ScalarType : std::uint8_t { Float32 = 0, Float64 = 1 };

template <typename T>
constexpr ScalarType scalar_type_of();
template <>
constexpr ScalarType scalar_type_of<float>() { return ScalarType::Float32; }
template <>
constexpr ScalarType scalar_type_of<double>() { return ScalarType::Float64; }

struct StreamHeader {
  ScalarType scalar = ScalarType::Float32;
  ErrorBoundMode mode = ErrorBoundMode::Absolute;
  Predictor predictor = Predictor::Lorenzo;
  data::Dims dims;
  double eb_abs = 0.0;
  double user_bound = 0.0;
  double value_range = 0.0;
  std::uint32_t quant_bins = 0;
  double pwrel_zero_floor = 0.0;
};

void write_header(const StreamHeader& h, io::ByteWriter& out);

/// Parses and validates a header. Throws io::StreamError on bad magic,
/// unsupported version/scalar/rank, or nonsensical parameters.
StreamHeader read_header(io::ByteReader& in);

/// Peek at the header of a complete compressed stream.
StreamHeader inspect(std::span<const std::uint8_t> stream);

}  // namespace fpsnr::sz
