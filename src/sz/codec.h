// SZ-style prediction-based error-bounded lossy codec.
//
// Pipeline (compression):
//   1. Lorenzo prediction from *reconstructed* neighbours (src/sz/lorenzo.h)
//   2. error-controlled linear-scaling quantization (src/sz/quantizer.h);
//      unpredictable points stored exactly as IEEE bits ("outliers")
//   3. canonical Huffman coding of the quantization codes (src/huffman)
//   4. DEFLATE-like lossless pass over the entropy-coded bytes (src/lossless)
//
// Guarantees:
//   * Absolute / ValueRangeRelative modes: |x_i - x~_i| <= eb_abs for all i.
//   * PointwiseRelative mode: |x_i - x~_i| <= bound * |x_i| for all i
//     (implemented with a log2-domain transform; see codec.cpp).
//   * Theorem 1: ||X - X~||_2 equals the L2 distortion of the prediction
//     errors — exposed for verification via prediction_trace().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/field.h"
#include "sz/error_mode.h"
#include "sz/stream_format.h"

namespace fpsnr::sz {

/// Compress `values` (C-order grid of `dims`). Optionally reports run
/// statistics through `info`.
template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> values,
                                   const data::Dims& dims, const Params& params,
                                   CompressionInfo* info = nullptr);

template <typename T>
struct Decompressed {
  data::Dims dims;
  std::vector<T> values;
};

/// Decompress a stream produced by compress<T>. Throws io::StreamError on
/// malformed input or scalar-type mismatch.
template <typename T>
Decompressed<T> decompress(std::span<const std::uint8_t> stream);

/// Resolve a (mode, bound) pair to the absolute bound the quantizer will
/// use, given the data's value range. For PointwiseRelative this is the
/// log2-domain bound. Exposed because core/psnr_control reasons about it.
double resolve_absolute_bound(ErrorBoundMode mode, double bound, double value_range);

/// Instrumentation for Theorem 1 and Fig. 1: the per-point prediction
/// errors (pe) of an actual compression pass and their quantized
/// reconstructions (pe_recon). For outlier points pe_recon == pe, i.e.
/// zero quantization-stage error, matching their exact storage.
struct PredictionTrace {
  std::vector<double> pe;
  std::vector<double> pe_recon;
};

/// Run the quantization pass only (no entropy stage) and return the trace.
template <typename T>
PredictionTrace prediction_trace(std::span<const T> values, const data::Dims& dims,
                                 double eb_abs, std::uint32_t bins = 65536);

extern template std::vector<std::uint8_t> compress<float>(
    std::span<const float>, const data::Dims&, const Params&, CompressionInfo*);
extern template std::vector<std::uint8_t> compress<double>(
    std::span<const double>, const data::Dims&, const Params&, CompressionInfo*);
extern template Decompressed<float> decompress<float>(std::span<const std::uint8_t>);
extern template Decompressed<double> decompress<double>(std::span<const std::uint8_t>);
extern template PredictionTrace prediction_trace<float>(
    std::span<const float>, const data::Dims&, double, std::uint32_t);
extern template PredictionTrace prediction_trace<double>(
    std::span<const double>, const data::Dims&, double, std::uint32_t);

}  // namespace fpsnr::sz
