#include "sz/quantizer.h"

#include <cmath>
#include <stdexcept>

namespace fpsnr::sz {

LinearQuantizer::LinearQuantizer(double eb_abs, std::uint32_t bins)
    : eb_(eb_abs), bins_(bins), radius_(bins / 2) {
  if (!(eb_abs > 0.0) || !std::isfinite(eb_abs))
    throw std::invalid_argument("LinearQuantizer: error bound must be positive and finite");
  if (bins < 4 || bins % 2 != 0)
    throw std::invalid_argument("LinearQuantizer: bins must be even and >= 4");
}

std::uint32_t LinearQuantizer::quantize(double diff) const {
  const double scaled = diff / (2.0 * eb_);
  // Out-of-range indices (including non-finite inputs) are unpredictable.
  if (!std::isfinite(scaled)) return 0;
  // std::round is rounding-mode independent (half away from zero), so
  // compressor and decompressor cannot disagree.
  const double rounded = std::round(scaled);
  // Representable indexes: code = index + radius in [1, bins-1].
  if (rounded < 1.0 - static_cast<double>(radius_) ||
      rounded > static_cast<double>(bins_ - 1 - radius_))
    return 0;
  return static_cast<std::uint32_t>(static_cast<std::int64_t>(rounded) +
                                    static_cast<std::int64_t>(radius_));
}

double LinearQuantizer::dequantize(std::uint32_t code) const {
  if (code == 0 || code >= bins_)
    throw std::invalid_argument("LinearQuantizer: bad code");
  return (static_cast<double>(code) - static_cast<double>(radius_)) * 2.0 * eb_;
}

}  // namespace fpsnr::sz
