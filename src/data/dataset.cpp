#include "data/dataset.h"

#include <stdexcept>

namespace fpsnr::data {

std::size_t Dataset::total_values() const {
  std::size_t n = 0;
  for (const Field& f : fields) n += f.size();
  return n;
}

std::size_t Dataset::total_bytes() const {
  std::size_t n = 0;
  for (const Field& f : fields) n += f.bytes();
  return n;
}

const Field& Dataset::field(const std::string& field_name) const {
  for (const Field& f : fields)
    if (f.name == field_name) return f;
  throw std::out_of_range("Dataset: no field named " + field_name);
}

std::size_t scaled_extent(std::size_t base, double scale) {
  if (scale <= 0.0) throw std::invalid_argument("scaled_extent: scale must be positive");
  const auto scaled = static_cast<std::size_t>(static_cast<double>(base) * scale);
  return scaled < 8 ? 8 : scaled;
}

std::vector<Dataset> make_all_datasets(const DatasetConfig& config) {
  std::vector<Dataset> out;
  out.push_back(make_nyx(config));
  out.push_back(make_atm(config));
  out.push_back(make_hurricane(config));
  return out;
}

}  // namespace fpsnr::data
