// NYX cosmology stand-in.
//
// The real NYX snapshots hold 6 fields on a 2048^3 AMR grid: baryon
// density, dark matter density, temperature, and the three velocity
// components. What matters for fixed-PSNR evaluation is their statistical
// character, reproduced here:
//  * densities are strictly positive with a huge dynamic range and a
//    log-normal-like one-point distribution (voids vs. halos) — these are
//    the fields where low PSNR targets deviate most in the paper;
//  * temperature correlates with density (shock-heated gas);
//  * velocities are smooth, signed, roughly symmetric large-scale flows.
#include "data/dataset.h"
#include "data/synth.h"

namespace fpsnr::data {

Dataset make_nyx(const DatasetConfig& config) {
  const std::size_t n = scaled_extent(64, config.scale);
  const Dims dims{n, n, n};
  const std::uint64_t seed = config.seed * 1000003 + 1;

  Dataset ds;
  ds.name = "NYX";

  // Shared large-scale structure: the same smoothed field seeds density and
  // temperature so they correlate like shocked gas does.
  std::vector<float> structure = smoothed_noise(dims, seed + 10, 3, 2);
  std::vector<float> waves = cosine_mixture(dims, seed + 11, 24, 1.2);
  add_scaled(structure, waves, 0.6f);

  {  // baryon density: exp of the structure -> log-normal, ~5 decades
    std::vector<float> v = structure;
    exponentialize(v, 5.5f);
    rescale(v, 1e-3f, 1.2e4f);
    ds.fields.emplace_back("baryon_density", dims, std::move(v));
  }
  {  // dark matter density: same character, different realization + tail
    std::vector<float> v = smoothed_noise(dims, seed + 20, 3, 2);
    add_scaled(v, waves, 0.4f);
    exponentialize(v, 6.0f);
    rescale(v, 1e-3f, 3.0e4f);
    ds.fields.emplace_back("dark_matter_density", dims, std::move(v));
  }
  {  // temperature: correlated with density, positive, narrower range
    std::vector<float> v = structure;
    std::vector<float> jitter = smoothed_noise(dims, seed + 30, 2, 1);
    add_scaled(v, jitter, 0.3f);
    exponentialize(v, 2.5f);
    rescale(v, 1.0e2f, 1.0e7f);
    ds.fields.emplace_back("temperature", dims, std::move(v));
  }
  const char* vel_names[3] = {"velocity_x", "velocity_y", "velocity_z"};
  for (int c = 0; c < 3; ++c) {  // bulk flows: smooth, signed, ~±3e8 cm/s
    std::vector<float> v = smoothed_noise(dims, seed + 40 + static_cast<std::uint64_t>(c), 4, 2);
    std::vector<float> flow = cosine_mixture(dims, seed + 50 + static_cast<std::uint64_t>(c), 16, 1.5);
    add_scaled(v, flow, 1.5f);
    rescale(v, -3.0e8f, 3.0e8f);
    ds.fields.emplace_back(vel_names[c], dims, std::move(v));
  }
  return ds;
}

}  // namespace fpsnr::data
