// Synthetic-field construction toolkit.
//
// The paper evaluates on production NYX / CESM-ATM / Hurricane-ISABEL dumps
// that are not redistributable (206 GB - 1.5 TB). The generators in
// nyx/atm/hurricane.cpp build statistical stand-ins from these primitives:
// spatially correlated noise (smoothed white noise and separable cosine
// mixtures), pointwise transforms (log-normal, clamping, sparsification),
// and deterministic structured features (vortices, gradients). Everything
// is seeded and reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "data/field.h"

namespace fpsnr::data {

/// Uniform white noise in [-1, 1].
std::vector<float> white_noise(std::size_t count, std::uint64_t seed);

/// Spatially correlated noise in roughly [-1, 1]: white noise smoothed by
/// `passes` separable box-blur sweeps of the given radius, then rescaled to
/// unit max-abs. Higher radius/passes => smoother field => better Lorenzo
/// predictability (mimics smooth climate fields); radius 0 => pure noise.
std::vector<float> smoothed_noise(const Dims& dims, std::uint64_t seed,
                                  unsigned radius, unsigned passes = 2);

/// Sum of `modes` separable cosine products with amplitudes ~ 1/k^decay,
/// normalized to unit max-abs. Adds long-range structure that box blurs
/// cannot produce (planetary waves, large-scale gradients).
std::vector<float> cosine_mixture(const Dims& dims, std::uint64_t seed,
                                  unsigned modes, double decay = 1.0);

// --- pointwise transforms (in place) ---

/// Affine map to [lo, hi] based on the current min/max (constant fields map
/// to lo).
void rescale(std::vector<float>& v, float lo, float hi);

/// x -> exp(scale * x): turns symmetric noise into a heavy-tailed,
/// strictly positive field (NYX baryon-density-like dynamic range).
void exponentialize(std::vector<float>& v, float scale);

/// Clamp into [lo, hi].
void clamp(std::vector<float>& v, float lo, float hi);

/// Zero out all values below `threshold` — produces the sparse nonnegative
/// structure of precipitation / hydrometeor fields.
void sparsify_below(std::vector<float>& v, float threshold);

/// v[i] += w * other[i].
void add_scaled(std::vector<float>& v, const std::vector<float>& other, float w);

/// Multiply pointwise by a second field (modulation).
void modulate(std::vector<float>& v, const std::vector<float>& other);

}  // namespace fpsnr::data
