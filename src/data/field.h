// A named scalar field on a 1/2/3-D regular grid — the unit of compression
// throughout the library (one CESM variable, one NYX quantity, ...).
#pragma once

#include <cstddef>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fpsnr::data {

/// Grid extents; rank 1..3. Layout is row-major with the last extent fastest
/// (C order), matching how the SZ-style codec scans.
struct Dims {
  std::vector<std::size_t> extents;

  Dims() = default;
  Dims(std::initializer_list<std::size_t> e) : extents(e) { validate(); }
  explicit Dims(std::vector<std::size_t> e) : extents(std::move(e)) { validate(); }

  std::size_t rank() const { return extents.size(); }
  std::size_t count() const {
    return std::accumulate(extents.begin(), extents.end(), std::size_t{1},
                           std::multiplies<>());
  }
  std::size_t operator[](std::size_t i) const { return extents.at(i); }
  bool operator==(const Dims&) const = default;

  void validate() const {
    if (extents.empty() || extents.size() > 3)
      throw std::invalid_argument("Dims: rank must be 1..3");
    for (std::size_t e : extents)
      if (e == 0) throw std::invalid_argument("Dims: zero extent");
  }
};

/// A non-owning view of a field: name + dims + borrowed values. Batch
/// jobs accept views so callers that already hold the storage (the
/// Session facade, a service's request buffers) never copy a dataset just
/// to compress it.
struct FieldView {
  std::string name;
  Dims dims;
  std::span<const float> values;

  std::size_t size() const { return values.size(); }
  std::span<const float> span() const { return values; }
};

/// One named single-precision field (the paper evaluates on float data).
struct Field {
  std::string name;
  Dims dims;
  std::vector<float> values;

  Field() = default;
  Field(std::string n, Dims d)
      : name(std::move(n)), dims(std::move(d)), values(dims.count(), 0.0f) {}
  Field(std::string n, Dims d, std::vector<float> v)
      : name(std::move(n)), dims(std::move(d)), values(std::move(v)) {
    if (values.size() != dims.count())
      throw std::invalid_argument("Field: value count does not match dims");
  }

  std::size_t size() const { return values.size(); }
  std::size_t bytes() const { return values.size() * sizeof(float); }
  std::span<const float> span() const { return values; }
  std::span<float> span() { return values; }
};

/// One named double-precision field (HACC-style dumps; the engine's f64
/// paths and the temporal subsystem consume these directly).
struct FieldF64 {
  std::string name;
  Dims dims;
  std::vector<double> values;

  FieldF64() = default;
  FieldF64(std::string n, Dims d)
      : name(std::move(n)), dims(std::move(d)), values(dims.count(), 0.0) {}
  FieldF64(std::string n, Dims d, std::vector<double> v)
      : name(std::move(n)), dims(std::move(d)), values(std::move(v)) {
    if (values.size() != dims.count())
      throw std::invalid_argument("FieldF64: value count does not match dims");
  }

  std::size_t size() const { return values.size(); }
  std::size_t bytes() const { return values.size() * sizeof(double); }
  std::span<const double> span() const { return values; }
  std::span<double> span() { return values; }
};

}  // namespace fpsnr::data
