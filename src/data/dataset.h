// Multi-field dataset container and the three paper dataset stand-ins.
//
// Table I of the paper:
//   NYX        3D 2048x2048x2048   6 fields   206 GB
//   ATM        2D 1800x3600       79 fields   1.5 TB (many snapshots)
//   Hurricane  3D 100x500x500     13 fields   62.4 GB
//
// The generators keep each dataset's rank, field count, field names, and
// per-field statistical character, while scaling grid extents down so the
// full evaluation runs in seconds on one node. PSNR control accuracy — the
// quantity under test — is intensive (size-independent), so the scaling
// preserves the experiment; see DESIGN.md §4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/field.h"

namespace fpsnr::data {

struct Dataset {
  std::string name;
  std::vector<Field> fields;

  std::size_t field_count() const { return fields.size(); }
  std::size_t total_values() const;
  std::size_t total_bytes() const;
  /// Throws std::out_of_range if no field has this name.
  const Field& field(const std::string& field_name) const;
};

/// Generation knobs shared by all three stand-ins.
struct DatasetConfig {
  /// Multiplier on the default (already scaled-down) grid extents;
  /// 1.0 keeps defaults, 2.0 doubles every extent. Extents are floored at 8.
  double scale = 1.0;
  std::uint64_t seed = 20180713;  ///< arXiv v3 date of the paper
};

/// NYX cosmology stand-in: 6 fields on a 3D grid (default 64^3).
Dataset make_nyx(const DatasetConfig& config = {});

/// CESM-ATM climate stand-in: 79 2D fields (default 180x360).
Dataset make_atm(const DatasetConfig& config = {});

/// Hurricane-ISABEL stand-in: 13 fields on a 3D grid (default 25x100x100).
Dataset make_hurricane(const DatasetConfig& config = {});

/// All three stand-ins, in the paper's Table I order (NYX, ATM, Hurricane).
std::vector<Dataset> make_all_datasets(const DatasetConfig& config = {});

/// Scale one default extent by config.scale (floor 8).
std::size_t scaled_extent(std::size_t base, double scale);

}  // namespace fpsnr::data
