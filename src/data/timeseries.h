// Temporally coherent snapshot sequences.
//
// The paper's introduction motivates fixed-PSNR compression with the HACC
// workflow: raw snapshot dumps exceed storage, so researchers decimate in
// time (keep every k-th snapshot), "degrading the consecutiveness of
// simulation in time dimension". Quantifying that trade-off needs data
// with *realistic temporal coherence*: a field that evolves smoothly so
// interpolating across dropped snapshots incurs a measurable, growing
// error. make_advected_series builds one: a superposition of travelling
// waves (per-mode dispersion + drift) plus slowly mixing turbulence.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "data/field.h"

namespace fpsnr::data {

/// Two fields fed to one operation do not share a shape (mismatched dims,
/// or a values vector resized out of sync with its dims). Derives from
/// std::invalid_argument so existing catch sites keep working.
struct FieldShapeError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

struct TimeSeriesConfig {
  Dims dims{64, 64};
  std::size_t snapshots = 16;
  /// Time step between snapshots in phase units; larger = faster evolution
  /// = harsher interpolation error when decimating.
  double dt = 0.15;
  unsigned modes = 24;
  std::uint64_t seed = 20180713;
};

/// Snapshot t is named "t<index>"; all snapshots share dims and value range
/// near [-1, 1]. Supports any Dims rank (1/2/3) — a rank-3 config is the
/// temporal benches' simulation stand-in.
std::vector<Field> make_advected_series(const TimeSeriesConfig& config = {});

/// The same series sampled in double precision: identical mode table (same
/// seed -> same waves), so an f64 series is the f32 series without the
/// float rounding — not a different dataset.
std::vector<FieldF64> make_advected_series_f64(
    const TimeSeriesConfig& config = {});

/// Linear interpolation between two kept snapshots at fraction alpha in
/// [0, 1] — the reconstruction a decimating workflow uses for dropped
/// snapshots. Throws FieldShapeError when a and b do not share dims or a
/// values vector disagrees with its dims; std::invalid_argument when alpha
/// is outside [0, 1] or NaN.
Field interpolate_snapshots(const Field& a, const Field& b, double alpha);

}  // namespace fpsnr::data
