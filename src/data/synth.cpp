#include "data/synth.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

namespace fpsnr::data {

namespace {

/// One separable box-blur sweep along axis `axis` (moving average, clamped
/// boundaries) — O(N) via running sums.
void box_blur_axis(std::vector<float>& v, const Dims& dims, std::size_t axis,
                   unsigned radius) {
  if (radius == 0) return;
  const std::size_t rank = dims.rank();
  // Compute strides for C-order layout (last axis fastest).
  std::vector<std::size_t> stride(rank, 1);
  for (std::size_t i = rank; i-- > 1;)
    stride[i - 1] = stride[i] * dims[i];
  const std::size_t n_axis = dims[axis];
  const std::size_t s_axis = stride[axis];
  const std::size_t total = dims.count();
  const std::size_t n_lines = total / n_axis;

  std::vector<float> line(n_axis);
  std::vector<float> out_line(n_axis);
  // Enumerate all 1-D lines along `axis`: iterate over the other axes.
  for (std::size_t li = 0; li < n_lines; ++li) {
    // Decompose li into coordinates of the non-axis dimensions to find the
    // base offset of this line.
    std::size_t rem = li;
    std::size_t base = 0;
    for (std::size_t d = rank; d-- > 0;) {
      if (d == axis) continue;
      const std::size_t coord = rem % dims[d];
      rem /= dims[d];
      base += coord * stride[d];
    }
    for (std::size_t k = 0; k < n_axis; ++k) line[k] = v[base + k * s_axis];
    // Running-sum moving average with clamped (replicated) boundaries.
    const auto r = static_cast<std::ptrdiff_t>(radius);
    const auto n = static_cast<std::ptrdiff_t>(n_axis);
    double sum = 0.0;
    for (std::ptrdiff_t k = -r; k <= r; ++k)
      sum += line[static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(k, 0, n - 1))];
    const double inv = 1.0 / static_cast<double>(2 * r + 1);
    for (std::ptrdiff_t k = 0; k < n; ++k) {
      out_line[static_cast<std::size_t>(k)] = static_cast<float>(sum * inv);
      const std::ptrdiff_t out_idx = std::clamp<std::ptrdiff_t>(k - r, 0, n - 1);
      const std::ptrdiff_t in_idx = std::clamp<std::ptrdiff_t>(k + r + 1, 0, n - 1);
      sum += line[static_cast<std::size_t>(in_idx)] - line[static_cast<std::size_t>(out_idx)];
    }
    for (std::size_t k = 0; k < n_axis; ++k) v[base + k * s_axis] = out_line[k];
  }
}

void normalize_max_abs(std::vector<float>& v) {
  float peak = 0.0f;
  for (float x : v) peak = std::max(peak, std::abs(x));
  if (peak > 0.0f)
    for (float& x : v) x /= peak;
}

}  // namespace

std::vector<float> white_noise(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(count);
  for (float& x : v) x = dist(rng);
  return v;
}

std::vector<float> smoothed_noise(const Dims& dims, std::uint64_t seed,
                                  unsigned radius, unsigned passes) {
  std::vector<float> v = white_noise(dims.count(), seed);
  for (unsigned p = 0; p < passes; ++p)
    for (std::size_t axis = 0; axis < dims.rank(); ++axis)
      box_blur_axis(v, dims, axis, radius);
  normalize_max_abs(v);
  return v;
}

std::vector<float> cosine_mixture(const Dims& dims, std::uint64_t seed,
                                  unsigned modes, double decay) {
  if (modes == 0) throw std::invalid_argument("cosine_mixture: zero modes");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> phase(0.0, 2.0 * std::numbers::pi);
  std::uniform_int_distribution<unsigned> wavenum(1, 8);

  const std::size_t rank = dims.rank();
  std::vector<float> v(dims.count(), 0.0f);
  // Precompute per-axis cosine factors for each mode, then take the
  // separable product — O(modes * (sum extents + count)) instead of
  // O(modes * count * rank) cos() calls.
  std::vector<std::vector<float>> axis_factor(rank);
  for (unsigned m = 0; m < modes; ++m) {
    double k_total = 0.0;
    for (std::size_t d = 0; d < rank; ++d) {
      const unsigned k = wavenum(rng);
      const double ph = phase(rng);
      k_total += k;
      auto& f = axis_factor[d];
      f.resize(dims[d]);
      for (std::size_t i = 0; i < dims[d]; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(dims[d]);
        f[i] = static_cast<float>(
            std::cos(2.0 * std::numbers::pi * k * t + ph));
      }
    }
    const auto amp = static_cast<float>(1.0 / std::pow(k_total, decay));
    // Accumulate the separable product.
    if (rank == 1) {
      for (std::size_t i = 0; i < dims[0]; ++i)
        v[i] += amp * axis_factor[0][i];
    } else if (rank == 2) {
      std::size_t idx = 0;
      for (std::size_t i = 0; i < dims[0]; ++i)
        for (std::size_t j = 0; j < dims[1]; ++j)
          v[idx++] += amp * axis_factor[0][i] * axis_factor[1][j];
    } else {
      std::size_t idx = 0;
      for (std::size_t i = 0; i < dims[0]; ++i)
        for (std::size_t j = 0; j < dims[1]; ++j) {
          const float fij = axis_factor[0][i] * axis_factor[1][j];
          for (std::size_t k2 = 0; k2 < dims[2]; ++k2)
            v[idx++] += amp * fij * axis_factor[2][k2];
        }
    }
  }
  normalize_max_abs(v);
  return v;
}

void rescale(std::vector<float>& v, float lo, float hi) {
  if (v.empty()) return;
  auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  const float range = *mx - *mn;
  if (range == 0.0f) {
    std::fill(v.begin(), v.end(), lo);
    return;
  }
  const float scale = (hi - lo) / range;
  const float base = *mn;
  for (float& x : v) x = lo + (x - base) * scale;
}

void exponentialize(std::vector<float>& v, float scale) {
  for (float& x : v) x = std::exp(scale * x);
}

void clamp(std::vector<float>& v, float lo, float hi) {
  for (float& x : v) x = std::clamp(x, lo, hi);
}

void sparsify_below(std::vector<float>& v, float threshold) {
  for (float& x : v)
    if (x < threshold) x = 0.0f;
}

void add_scaled(std::vector<float>& v, const std::vector<float>& other, float w) {
  if (v.size() != other.size())
    throw std::invalid_argument("add_scaled: size mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) v[i] += w * other[i];
}

void modulate(std::vector<float>& v, const std::vector<float>& other) {
  if (v.size() != other.size())
    throw std::invalid_argument("modulate: size mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) v[i] *= other[i];
}

}  // namespace fpsnr::data
