#include "data/timeseries.h"

#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

namespace fpsnr::data {

namespace {

struct Mode {
  double k[3] = {0, 0, 0};  // angular frequency per axis (cycles scaled)
  double phi = 0.0;
  double omega = 0.0;  // temporal angular frequency
  double amp = 0.0;
};

/// One mode table per (seed, rank, modes) — the f32 and f64 generators
/// share it, so the double series is the float series minus the rounding,
/// never a different dataset.
std::vector<Mode> make_modes(const TimeSeriesConfig& config,
                             std::size_t rank) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> phase(0.0, 2.0 * std::numbers::pi);
  std::uniform_int_distribution<int> wavenum(1, 6);
  std::uniform_real_distribution<double> omega_jitter(0.5, 2.0);

  std::vector<Mode> modes(config.modes);
  for (Mode& m : modes) {
    double k_total = 0.0;
    for (std::size_t d = 0; d < rank; ++d) {
      const int k = wavenum(rng);
      m.k[d] = 2.0 * std::numbers::pi * k;
      k_total += k;
    }
    m.phi = phase(rng);
    // Dispersion: higher wavenumbers travel faster (advected turbulence).
    m.omega = k_total * omega_jitter(rng);
    m.amp = 1.0 / (k_total * k_total);
  }
  return modes;
}

/// Evaluate the superposition over the grid for snapshot `t` into a buffer
/// of FieldT::values' scalar type (float for Field, double for FieldF64).
template <typename FieldT>
std::vector<FieldT> make_series(const TimeSeriesConfig& config) {
  if (config.snapshots == 0)
    throw std::invalid_argument("make_advected_series: zero snapshots");
  if (config.modes == 0)
    throw std::invalid_argument("make_advected_series: zero modes");
  const Dims& dims = config.dims;
  const std::size_t rank = dims.rank();
  using Scalar = typename decltype(FieldT::values)::value_type;

  const std::vector<Mode> modes = make_modes(config, rank);

  std::vector<FieldT> series;
  series.reserve(config.snapshots);
  for (std::size_t t = 0; t < config.snapshots; ++t) {
    FieldT f("t" + std::to_string(t), dims);
    const double time = config.dt * static_cast<double>(t);
    std::size_t idx = 0;
    auto eval = [&](double x0, double x1, double x2) {
      double acc = 0.0;
      for (const Mode& m : modes)
        acc += m.amp * std::cos(m.k[0] * x0 + m.k[1] * x1 + m.k[2] * x2 +
                                m.omega * time + m.phi);
      return static_cast<Scalar>(acc);
    };
    if (rank == 1) {
      for (std::size_t i = 0; i < dims[0]; ++i)
        f.values[idx++] = eval(static_cast<double>(i) / dims[0], 0.0, 0.0);
    } else if (rank == 2) {
      for (std::size_t i = 0; i < dims[0]; ++i)
        for (std::size_t j = 0; j < dims[1]; ++j)
          f.values[idx++] = eval(static_cast<double>(i) / dims[0],
                                 static_cast<double>(j) / dims[1], 0.0);
    } else {
      for (std::size_t i = 0; i < dims[0]; ++i)
        for (std::size_t j = 0; j < dims[1]; ++j)
          for (std::size_t k = 0; k < dims[2]; ++k)
            f.values[idx++] = eval(static_cast<double>(i) / dims[0],
                                   static_cast<double>(j) / dims[1],
                                   static_cast<double>(k) / dims[2]);
    }
    series.push_back(std::move(f));
  }
  return series;
}

}  // namespace

std::vector<Field> make_advected_series(const TimeSeriesConfig& config) {
  return make_series<Field>(config);
}

std::vector<FieldF64> make_advected_series_f64(const TimeSeriesConfig& config) {
  return make_series<FieldF64>(config);
}

Field interpolate_snapshots(const Field& a, const Field& b, double alpha) {
  if (!(a.dims == b.dims))
    throw FieldShapeError("interpolate_snapshots: dims mismatch");
  // A Field's public values vector can be resized out of sync with its
  // dims; indexing by the other field's size would then read out of
  // bounds. Reject the inconsistency instead.
  if (a.values.size() != a.dims.count() || b.values.size() != b.dims.count())
    throw FieldShapeError(
        "interpolate_snapshots: values count does not match dims");
  // Negated form so a NaN alpha (which every < / > comparison calls false)
  // is rejected rather than silently poisoning the whole output.
  if (!(alpha >= 0.0 && alpha <= 1.0))
    throw std::invalid_argument("interpolate_snapshots: alpha out of [0,1]");
  Field out("interp", a.dims);
  const auto w = static_cast<float>(alpha);
  for (std::size_t i = 0; i < out.values.size(); ++i)
    out.values[i] = (1.0f - w) * a.values[i] + w * b.values[i];
  return out;
}

}  // namespace fpsnr::data
