// Hurricane-ISABEL stand-in: the 13 fields of the IEEE Vis'04 contest data
// (100x500x500, here 25x100x100 by default: z is the short axis).
//
// The defining structure is a vortex: wind components U/V follow a
// Rankine-like rotational profile around a slowly precessing eye, W is
// weak updraft bands, pressure has a deep minimum at the eye, and the
// hydrometeor mixing ratios (QCLOUD/QRAIN/QICE/...) are sparse nonnegative
// fields concentrated in spiral bands. This reproduces the mix of smooth
// signed fields and spiky sparse fields behind the paper's Hurricane
// column (the largest low-PSNR deviation of the three datasets).
#include "data/dataset.h"
#include "data/synth.h"

#include <cmath>

namespace fpsnr::data {

namespace {

struct VortexParams {
  double cx, cy;     // eye position in normalized [0,1]^2 coordinates
  double core;       // core radius (normalized)
  double strength;   // peak tangential speed
};

/// Rankine tangential speed profile: linear inside the core, 1/r outside.
double rankine_speed(double r, const VortexParams& p) {
  if (r < 1e-9) return 0.0;
  if (r < p.core) return p.strength * (r / p.core);
  return p.strength * (p.core / r);
}

}  // namespace

Dataset make_hurricane(const DatasetConfig& config) {
  const std::size_t nz = scaled_extent(25, config.scale);
  const std::size_t ny = scaled_extent(100, config.scale);
  const std::size_t nx = scaled_extent(100, config.scale);
  const Dims dims{nz, ny, nx};
  const std::uint64_t seed = config.seed * 1000211 + 17;

  Dataset ds;
  ds.name = "Hurricane";

  const std::size_t count = dims.count();
  std::vector<float> u(count), v(count), w(count), pressure(count), radius(count);

  for (std::size_t z = 0; z < nz; ++z) {
    // The eye tilts/precesses with height.
    const double zt = static_cast<double>(z) / static_cast<double>(nz);
    const VortexParams vp{0.5 + 0.08 * std::sin(2.5 * zt),
                          0.5 + 0.08 * std::cos(2.5 * zt),
                          0.06 + 0.04 * zt,
                          55.0 * (1.0 - 0.5 * zt)};
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t idx = (z * ny + y) * nx + x;
        const double px = static_cast<double>(x) / static_cast<double>(nx) - vp.cx;
        const double py = static_cast<double>(y) / static_cast<double>(ny) - vp.cy;
        const double r = std::sqrt(px * px + py * py);
        const double speed = rankine_speed(r, vp);
        // Tangential flow: rotate (px,py) by 90 degrees.
        const double inv_r = r > 1e-9 ? 1.0 / r : 0.0;
        u[idx] = static_cast<float>(-speed * py * inv_r);
        v[idx] = static_cast<float>(speed * px * inv_r);
        // Updraft strongest in the eyewall annulus.
        const double wall = std::exp(-std::pow((r - vp.core) / (0.35 * vp.core + 1e-9), 2.0));
        w[idx] = static_cast<float>(8.0 * wall * (1.0 - zt));
        // Pressure deficit at the eye, decaying outward.
        pressure[idx] = static_cast<float>(-6000.0 * std::exp(-r / (1.8 * vp.core)));
        radius[idx] = static_cast<float>(r);
      }
    }
  }

  auto turbulent = [&](std::uint64_t s, unsigned smooth_r, float weight) {
    std::vector<float> t = smoothed_noise(dims, s, smooth_r, 2);
    for (float& x : t) x *= weight;
    return t;
  };

  {  // U, V: vortex + turbulence, signed, tens of m/s
    add_scaled(u, turbulent(seed + 1, 2, 1.0f), 6.0f);
    add_scaled(v, turbulent(seed + 2, 2, 1.0f), 6.0f);
    ds.fields.emplace_back("U", dims, u);
    ds.fields.emplace_back("V", dims, v);
  }
  {  // W: weak banded updraft + noise
    add_scaled(w, turbulent(seed + 3, 1, 1.0f), 1.5f);
    ds.fields.emplace_back("W", dims, w);
  }
  {  // Pf: perturbation pressure
    std::vector<float> p = pressure;
    add_scaled(p, turbulent(seed + 4, 3, 1.0f), 150.0f);
    ds.fields.emplace_back("Pf", dims, std::move(p));
  }
  {  // TC: temperature in Celsius, warm core aloft
    std::vector<float> tc(count);
    for (std::size_t i = 0; i < count; ++i)
      tc[i] = 25.0f - 70.0f * (pressure[i] / -6000.0f) * 0.15f;
    std::vector<float> strat = cosine_mixture(dims, seed + 5, 10, 1.5);
    add_scaled(tc, strat, 12.0f);
    ds.fields.emplace_back("TC", dims, std::move(tc));
  }

  // Moisture and hydrometeors: nonnegative, sparse, band-concentrated.
  struct Hydro {
    const char* name;
    float peak;
    float threshold;  // sparsification level: higher => sparser
    unsigned smooth;
  };
  const Hydro hydros[] = {
      {"QVAPOR", 0.025f, -0.8f, 3},  // vapor: dense, smooth
      {"QCLOUD", 2.0e-3f, 0.30f, 2}, {"QRAIN", 1.5e-3f, 0.45f, 1},
      {"QICE", 8.0e-4f, 0.50f, 2},   {"QSNOW", 1.2e-3f, 0.45f, 2},
      {"QGRAUP", 9.0e-4f, 0.55f, 1}, {"CLOUD", 1.0f, 0.10f, 2},
      {"PRECIP", 2.0e-2f, 0.50f, 1},
  };
  std::uint64_t hseed = seed + 100;
  for (const Hydro& h : hydros) {
    std::vector<float> q = smoothed_noise(dims, hseed++, h.smooth, 2);
    rescale(q, -1.0f, 1.0f);
    sparsify_below(q, h.threshold);
    // Concentrate in the eyewall/spiral-band annulus.
    std::vector<float> band(count);
    for (std::size_t i = 0; i < count; ++i) {
      const double r = radius[i];
      band[i] = static_cast<float>(std::exp(-std::pow((r - 0.12) / 0.18, 2.0)) + 0.1);
    }
    modulate(q, band);
    rescale(q, 0.0f, h.peak);
    // Numerical noise floor (see atm.cpp): keeps dry regions off exact
    // zero so Eq. (3)'s midpoint model holds at moderate/high targets.
    std::vector<float> floor_noise = white_noise(count, hseed++);
    for (std::size_t i = 0; i < q.size(); ++i)
      q[i] += h.peak * 5e-4f * std::abs(floor_noise[i]);
    ds.fields.emplace_back(h.name, dims, std::move(q));
  }
  return ds;
}

}  // namespace fpsnr::data
