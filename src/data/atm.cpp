// CESM-ATM climate stand-in: 79 2D fields (default 180x360, i.e. the real
// 1800x3600 grid scaled by 10x per axis).
//
// The paper's Fig. 2 / Table II aggregate PSNR-control accuracy across a
// *heterogeneous* population of variables, so the generator reproduces the
// population structure rather than any single field: bounded cloud
// fractions in [0,1], smooth thermodynamic fields, rougher flux fields,
// sparse nonnegative precipitation/condensate fields, and signed wind
// components. Field names follow CESM CAM history conventions; archetypes
// cycle through per-name parameter variations so all 79 fields differ.
#include "data/dataset.h"
#include "data/synth.h"

#include <array>
#include <cmath>
#include <string>

namespace fpsnr::data {

namespace {

enum class AtmKind {
  CloudFraction,   // [0,1], smooth plus mesoscale detail
  Thermodynamic,   // temperature/pressure-like, very smooth, offset range
  Flux,            // radiative/heat flux, medium roughness, nonnegative
  Sparse,          // precipitation/condensate: mostly zero, spiky
  Wind,            // signed, smooth jets + turbulence
  Humidity,        // nonnegative, smooth with sharp meridional gradient
};

struct AtmSpec {
  const char* name;
  AtmKind kind;
};

// 79 CESM CAM monthly-output variables (the h0 tape of the Large Ensemble).
constexpr std::array<AtmSpec, 79> kAtmFields = {{
    {"CLDHGH", AtmKind::CloudFraction},  {"CLDLOW", AtmKind::CloudFraction},
    {"CLDMED", AtmKind::CloudFraction},  {"CLDTOT", AtmKind::CloudFraction},
    {"CLOUD", AtmKind::CloudFraction},   {"CONCLD", AtmKind::CloudFraction},
    {"FICE", AtmKind::CloudFraction},    {"FREQZM", AtmKind::CloudFraction},
    {"ICEFRAC", AtmKind::CloudFraction}, {"LANDFRAC", AtmKind::CloudFraction},
    {"OCNFRAC", AtmKind::CloudFraction}, {"SNOWHLND", AtmKind::Sparse},
    {"T", AtmKind::Thermodynamic},       {"TS", AtmKind::Thermodynamic},
    {"TSMN", AtmKind::Thermodynamic},    {"TSMX", AtmKind::Thermodynamic},
    {"TREFHT", AtmKind::Thermodynamic},  {"T850", AtmKind::Thermodynamic},
    {"T500", AtmKind::Thermodynamic},    {"T200", AtmKind::Thermodynamic},
    {"PS", AtmKind::Thermodynamic},      {"PSL", AtmKind::Thermodynamic},
    {"PHIS", AtmKind::Thermodynamic},    {"Z3", AtmKind::Thermodynamic},
    {"Z500", AtmKind::Thermodynamic},    {"OMEGA", AtmKind::Wind},
    {"OMEGA500", AtmKind::Wind},         {"U", AtmKind::Wind},
    {"U10", AtmKind::Wind},              {"U850", AtmKind::Wind},
    {"U200", AtmKind::Wind},             {"V", AtmKind::Wind},
    {"V850", AtmKind::Wind},             {"V200", AtmKind::Wind},
    {"VQ", AtmKind::Wind},               {"VT", AtmKind::Wind},
    {"VU", AtmKind::Wind},               {"VV", AtmKind::Wind},
    {"TAUX", AtmKind::Wind},             {"TAUY", AtmKind::Wind},
    {"UU", AtmKind::Flux},               {"WSPDSRFMX", AtmKind::Flux},
    {"FLDS", AtmKind::Flux},             {"FLNS", AtmKind::Flux},
    {"FLNSC", AtmKind::Flux},            {"FLNT", AtmKind::Flux},
    {"FLNTC", AtmKind::Flux},            {"FLUT", AtmKind::Flux},
    {"FLUTC", AtmKind::Flux},            {"FSDS", AtmKind::Flux},
    {"FSDSC", AtmKind::Flux},            {"FSNS", AtmKind::Flux},
    {"FSNSC", AtmKind::Flux},            {"FSNT", AtmKind::Flux},
    {"FSNTC", AtmKind::Flux},            {"FSNTOA", AtmKind::Flux},
    {"FSNTOAC", AtmKind::Flux},          {"LHFLX", AtmKind::Flux},
    {"SHFLX", AtmKind::Flux},            {"QFLX", AtmKind::Flux},
    {"SOLIN", AtmKind::Flux},            {"SRFRAD", AtmKind::Flux},
    {"PRECC", AtmKind::Sparse},          {"PRECL", AtmKind::Sparse},
    {"PRECSC", AtmKind::Sparse},         {"PRECSL", AtmKind::Sparse},
    {"PRECT", AtmKind::Sparse},          {"PRECTMX", AtmKind::Sparse},
    {"ICLDIWP", AtmKind::Sparse},        {"ICLDTWP", AtmKind::Sparse},
    {"TGCLDIWP", AtmKind::Sparse},       {"TGCLDLWP", AtmKind::Sparse},
    {"TMQ", AtmKind::Humidity},          {"Q", AtmKind::Humidity},
    {"Q850", AtmKind::Humidity},         {"QREFHT", AtmKind::Humidity},
    {"RELHUM", AtmKind::Humidity},       {"RHREFHT", AtmKind::Humidity},
    {"PBLH", AtmKind::Flux},
}};

}  // namespace

Dataset make_atm(const DatasetConfig& config) {
  const std::size_t nlat = scaled_extent(180, config.scale);
  const std::size_t nlon = scaled_extent(360, config.scale);
  const Dims dims{nlat, nlon};

  Dataset ds;
  ds.name = "ATM";
  ds.fields.reserve(kAtmFields.size());

  for (std::size_t f = 0; f < kAtmFields.size(); ++f) {
    const AtmSpec& spec = kAtmFields[f];
    const std::uint64_t seed = config.seed * 1000033 + 7919 * (f + 1);
    // Per-field variation so fields of the same archetype still differ in
    // smoothness and range (as real CESM variables do).
    const unsigned variant = static_cast<unsigned>(f % 5);

    std::vector<float> v;
    switch (spec.kind) {
      case AtmKind::CloudFraction: {
        v = smoothed_noise(dims, seed, 4 + variant, 3);
        std::vector<float> detail = smoothed_noise(dims, seed + 1, 2, 2);
        add_scaled(v, detail, 0.35f);
        rescale(v, -0.25f, 1.2f);
        clamp(v, 0.0f, 1.0f);  // realistic saturation at both bounds
        break;
      }
      case AtmKind::Thermodynamic: {
        v = cosine_mixture(dims, seed, 12 + variant * 4, 1.6);
        std::vector<float> local = smoothed_noise(dims, seed + 2, 6, 3);
        add_scaled(v, local, 0.25f);
        // Weather fronts / land-sea contrast: sharp steps whose edge points
        // become codec outliers at tight bounds (stored exactly), the
        // second source of the paper's slight systematic PSNR overshoot.
        std::vector<float> front = smoothed_noise(dims, seed + 7, 5, 2);
        for (std::size_t i = 0; i < v.size(); ++i)
          v[i] += front[i] > 0.0f ? 0.15f : -0.15f;
        const float base = 180.0f + 10.0f * static_cast<float>(variant);
        rescale(v, base, base + 130.0f);  // Kelvin-like offset range
        break;
      }
      case AtmKind::Flux: {
        v = smoothed_noise(dims, seed, 3, 3);
        std::vector<float> rough = smoothed_noise(dims, seed + 3, 1, 1);
        add_scaled(v, rough, 0.15f);
        // Cloud-edge shadowing: step discontinuities (see Thermodynamic).
        std::vector<float> edge = smoothed_noise(dims, seed + 8, 4, 2);
        for (std::size_t i = 0; i < v.size(); ++i)
          v[i] += edge[i] > 0.2f ? 0.25f : 0.0f;
        rescale(v, 0.0f, 300.0f + 150.0f * static_cast<float>(variant));
        break;
      }
      case AtmKind::Sparse: {
        v = smoothed_noise(dims, seed, 1 + variant % 2, 2);
        rescale(v, -1.0f, 1.0f);
        sparsify_below(v, 0.45f);  // ~80% of cells are dry, spiky remainder
        std::vector<float> amp = smoothed_noise(dims, seed + 4, 3, 1);
        rescale(amp, 0.2f, 1.0f);
        modulate(v, amp);
        rescale(v, 0.0f, 2.5e-7f);  // kg/m^2/s-scale precip rates
        // Numerical noise floor: production simulation output is never
        // exactly zero, and exact-zero plateaus would make the midpoint
        // MSE model (Eq. 3) overshoot at every target instead of only at
        // low PSNR (paper Section V).
        std::vector<float> floor_noise = white_noise(dims.count(), seed + 5);
        for (std::size_t i = 0; i < v.size(); ++i)
          v[i] += 2.5e-7f * 5e-4f * std::abs(floor_noise[i]);
        break;
      }
      case AtmKind::Wind: {
        v = cosine_mixture(dims, seed, 10 + variant * 3, 1.3);
        std::vector<float> turb = smoothed_noise(dims, seed + 5, 4, 2);
        add_scaled(v, turb, 0.4f);
        const float peak = 25.0f + 15.0f * static_cast<float>(variant);
        rescale(v, -peak, peak);
        break;
      }
      case AtmKind::Humidity: {
        v = cosine_mixture(dims, seed, 8, 2.0);
        std::vector<float> local = smoothed_noise(dims, seed + 6, 3, 2);
        add_scaled(v, local, 0.5f);
        exponentialize(v, 1.8f);  // sharp wet/dry contrast
        rescale(v, 1.0e-6f, 0.025f);
        break;
      }
    }
    ds.fields.emplace_back(spec.name, dims, std::move(v));
  }
  return ds;
}

}  // namespace fpsnr::data
