#include "io/archive.h"

#include <algorithm>

namespace fpsnr::io {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'P', 'A', 'R'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kMaxNameLength = 4096;

ByteReader open_archive(std::span<const std::uint8_t> archive,
                        std::uint64_t* count) {
  ByteReader reader(archive);
  const auto magic = reader.get_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic))
    throw StreamError("archive: bad magic");
  if (reader.get<std::uint8_t>() != kVersion)
    throw StreamError("archive: unsupported version");
  *count = reader.get_varint();
  return reader;
}

std::string read_name(ByteReader& reader) {
  const std::uint64_t len = reader.get_varint();
  if (len > kMaxNameLength) throw StreamError("archive: entry name too long");
  const auto raw = reader.get_bytes(len);
  return {raw.begin(), raw.end()};
}

}  // namespace

std::vector<std::uint8_t> write_archive(std::span<const ArchiveEntry> entries) {
  ByteWriter out;
  out.put_bytes(std::span<const std::uint8_t>(kMagic, 4));
  out.put<std::uint8_t>(kVersion);
  out.put_varint(entries.size());
  for (const ArchiveEntry& e : entries) {
    if (e.name.size() > kMaxNameLength)
      throw std::invalid_argument("archive: entry name too long");
    out.put_varint(e.name.size());
    out.put_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(e.name.data()), e.name.size()));
    out.put_blob(e.bytes);
  }
  return out.take();
}

std::vector<ArchiveEntry> read_archive(std::span<const std::uint8_t> archive) {
  std::uint64_t count = 0;
  ByteReader reader = open_archive(archive, &count);
  std::vector<ArchiveEntry> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ArchiveEntry e;
    e.name = read_name(reader);
    e.bytes = reader.get_blob();
    entries.push_back(std::move(e));
  }
  if (!reader.exhausted()) throw StreamError("archive: trailing bytes");
  return entries;
}

std::vector<std::string> list_archive(std::span<const std::uint8_t> archive) {
  std::uint64_t count = 0;
  ByteReader reader = open_archive(archive, &count);
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    names.push_back(read_name(reader));
    (void)reader.get_blob_view();  // skip payload without copying
  }
  return names;
}

std::vector<std::uint8_t> archive_entry(std::span<const std::uint8_t> archive,
                                        const std::string& name) {
  std::uint64_t count = 0;
  ByteReader reader = open_archive(archive, &count);
  std::vector<std::uint8_t> found;
  bool have = false;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string entry_name = read_name(reader);
    const auto blob = reader.get_blob_view();
    if (entry_name == name) {
      found.assign(blob.begin(), blob.end());
      have = true;  // keep scanning: last entry with the name wins
    }
  }
  if (!have) throw std::out_of_range("archive: no entry named " + name);
  return found;
}

}  // namespace fpsnr::io
