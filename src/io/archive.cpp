#include "io/archive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fpsnr::io {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'P', 'A', 'R'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kMaxNameLength = 4096;

ByteReader open_archive(std::span<const std::uint8_t> archive,
                        std::uint64_t* count) {
  ByteReader reader(archive);
  const auto magic = reader.get_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic))
    throw StreamError("archive: bad magic");
  if (reader.get<std::uint8_t>() != kVersion)
    throw StreamError("archive: unsupported version");
  *count = reader.get_varint();
  return reader;
}

std::string read_name(ByteReader& reader) {
  const std::uint64_t len = reader.get_varint();
  if (len > kMaxNameLength) throw StreamError("archive: entry name too long");
  const auto raw = reader.get_bytes(len);
  return {raw.begin(), raw.end()};
}

}  // namespace

std::vector<std::uint8_t> write_archive(std::span<const ArchiveEntry> entries) {
  ByteWriter out;
  out.put_bytes(std::span<const std::uint8_t>(kMagic, 4));
  out.put<std::uint8_t>(kVersion);
  out.put_varint(entries.size());
  for (const ArchiveEntry& e : entries) {
    if (e.name.size() > kMaxNameLength)
      throw std::invalid_argument("archive: entry name too long");
    out.put_varint(e.name.size());
    out.put_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(e.name.data()), e.name.size()));
    out.put_blob(e.bytes);
  }
  return out.take();
}

std::vector<ArchiveEntry> read_archive(std::span<const std::uint8_t> archive) {
  std::uint64_t count = 0;
  ByteReader reader = open_archive(archive, &count);
  std::vector<ArchiveEntry> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ArchiveEntry e;
    e.name = read_name(reader);
    e.bytes = reader.get_blob();
    entries.push_back(std::move(e));
  }
  if (!reader.exhausted()) throw StreamError("archive: trailing bytes");
  return entries;
}

std::vector<std::string> list_archive(std::span<const std::uint8_t> archive) {
  std::uint64_t count = 0;
  ByteReader reader = open_archive(archive, &count);
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    names.push_back(read_name(reader));
    (void)reader.get_blob_view();  // skip payload without copying
  }
  return names;
}

std::vector<std::uint8_t> archive_entry(std::span<const std::uint8_t> archive,
                                        const std::string& name) {
  std::uint64_t count = 0;
  ByteReader reader = open_archive(archive, &count);
  std::vector<std::uint8_t> found;
  bool have = false;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string entry_name = read_name(reader);
    const auto blob = reader.get_blob_view();
    if (entry_name == name) {
      found.assign(blob.begin(), blob.end());
      have = true;  // keep scanning: last entry with the name wins
    }
  }
  if (!have) throw std::out_of_range("archive: no entry named " + name);
  return found;
}

// --- Block-indexed container ----------------------------------------------

namespace {

constexpr std::uint8_t kBlockMagic[4] = {'F', 'P', 'B', 'K'};
constexpr std::uint8_t kMaxRank = 3;

}  // namespace

std::size_t block_index_entry_bytes(std::uint8_t version) {
  return version >= 2 ? 3 * sizeof(std::uint64_t) : 2 * sizeof(std::uint64_t);
}

void write_block_header(const BlockContainerHeader& h, ByteWriter& out) {
  if (h.version < kBlockContainerVersion ||
      h.version > kBlockContainerVersionMax)
    throw std::invalid_argument("block container: unwritable version");
  out.put_bytes(std::span<const std::uint8_t>(kBlockMagic, 4));
  out.put<std::uint8_t>(h.version);
  out.put<std::uint8_t>(h.codec);
  out.put<std::uint8_t>(h.scalar);
  out.put<std::uint8_t>(static_cast<std::uint8_t>(h.extents.size()));
  for (std::uint64_t e : h.extents) out.put_varint(e);
  if (h.tile.size() != h.extents.size())
    throw std::invalid_argument("block container: tile rank != extents rank");
  for (std::uint64_t t : h.tile) out.put_varint(t);
  out.put_varint(h.block_count);
  out.put<double>(h.eb_abs);
  out.put<double>(h.value_range);
  out.put<std::uint8_t>(h.control_mode);
  out.put<double>(h.control_value);
  out.put<std::uint8_t>(h.budget_mode);
  if (h.version >= kBlockContainerVersionTemporal) {
    // The chain header must be internally consistent before a byte hits the
    // wire: a v4 frame is by definition a series member, a delta frame must
    // name its reference, and a keyframe must claim neither a reference nor
    // any temporal block.
    if ((h.temporal_flags & ~(kTemporalFlagDelta | kTemporalFlagSeries)) != 0 ||
        (h.temporal_flags & kTemporalFlagSeries) == 0)
      throw std::invalid_argument("block container: bad temporal flags");
    const bool delta = (h.temporal_flags & kTemporalFlagDelta) != 0;
    if (delta != (h.ref_hash != 0))
      throw std::invalid_argument(
          "block container: delta flag inconsistent with reference hash");
    if (h.block_modes.size() != (h.block_count + 7) / 8)
      throw std::invalid_argument("block container: mode bitmap size");
    bool any = false;
    for (std::uint8_t byte : h.block_modes) any = any || byte != 0;
    if (any && !delta)
      throw std::invalid_argument(
          "block container: temporal blocks in a keyframe");
    out.put<std::uint8_t>(h.temporal_flags);
    out.put<std::uint64_t>(h.series_id);
    out.put<std::uint64_t>(h.timestep);
    out.put<std::uint64_t>(h.ref_hash);
    out.put_bytes(h.block_modes);
  }
}

namespace {

/// Reads the header and leaves the reader positioned at the index table.
BlockContainerHeader read_block_header(ByteReader& reader) {
  const auto magic = reader.get_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kBlockMagic))
    throw StreamError("block container: bad magic");
  const std::uint8_t version = reader.get<std::uint8_t>();
  if (version < 1 || version > kBlockContainerVersionMax)
    throw StreamError("block container: unsupported version");
  BlockContainerHeader h;
  h.version = version;
  h.codec = reader.get<std::uint8_t>();
  h.scalar = reader.get<std::uint8_t>();
  const auto rank = reader.get<std::uint8_t>();
  if (rank < 1 || rank > kMaxRank)
    throw StreamError("block container: rank out of 1..3");
  h.extents.resize(rank);
  for (auto& e : h.extents) {
    e = reader.get_varint();
    if (e == 0) throw StreamError("block container: zero extent");
  }
  if (version >= 3) {
    // Full-rank tile geometry: one extent per axis.
    h.tile.resize(rank);
    for (std::size_t a = 0; a < rank; ++a) {
      h.tile[a] = reader.get_varint();
      if (h.tile[a] == 0)
        throw StreamError("block container: zero tile extent");
      if (h.tile[a] > h.extents[a])
        throw StreamError("block container: tile exceeds field extent");
    }
  } else {
    // v1/v2: a single axis-0 slab height; the other axes span the field.
    const std::uint64_t block_rows = reader.get_varint();
    if (block_rows == 0)
      throw StreamError("block container: zero tile extent");
    h.tile.assign(h.extents.begin(), h.extents.end());
    h.tile[0] = std::min(block_rows, h.extents[0]);
  }
  h.block_count = reader.get_varint();
  if (h.block_count == 0)
    throw StreamError("block container: empty block layout");
  // The tile grid must cover the field exactly: block_count is the product
  // of the per-axis tile counts ceil(extent / tile). The product is guarded
  // against wrap so a crafted header cannot alias a huge grid onto a small
  // block_count.
  std::uint64_t expect = 1;
  for (std::size_t a = 0; a < rank; ++a) {
    // Divide-then-round so extents near UINT64_MAX cannot wrap the sum.
    const std::uint64_t g =
        h.extents[a] / h.tile[a] + (h.extents[a] % h.tile[a] != 0 ? 1 : 0);
    if (g != 0 &&
        expect > std::numeric_limits<std::uint64_t>::max() / g)
      throw StreamError("block container: tile grid overflows");
    expect *= g;
  }
  if (h.block_count != expect)
    throw StreamError("block container: tile layout does not tile the field");
  h.eb_abs = reader.get<double>();
  h.value_range = reader.get<double>();
  h.control_mode = reader.get<std::uint8_t>();
  h.control_value = reader.get<double>();
  if (version >= 2) {
    h.budget_mode = reader.get<std::uint8_t>();
    if (h.budget_mode > 1)
      throw StreamError("block container: unknown budget mode");
  }
  if (version >= kBlockContainerVersionTemporal) {
    // v4 chain header. Every consistency rule the writer enforces is
    // re-checked here, so a tampered chain (flipped keyframe flag, zeroed
    // reference hash, stray mode bits) dies as a clean StreamError instead
    // of silently decoding against the wrong reference.
    h.temporal_flags = reader.get<std::uint8_t>();
    if ((h.temporal_flags & ~(kTemporalFlagDelta | kTemporalFlagSeries)) != 0)
      throw StreamError("block container: unknown temporal flags");
    if ((h.temporal_flags & kTemporalFlagSeries) == 0)
      throw StreamError("block container: v4 frame without series flag");
    h.series_id = reader.get<std::uint64_t>();
    h.timestep = reader.get<std::uint64_t>();
    h.ref_hash = reader.get<std::uint64_t>();
    const bool delta = (h.temporal_flags & kTemporalFlagDelta) != 0;
    if (delta && h.ref_hash == 0)
      throw StreamError("block container: delta frame without reference hash");
    if (!delta && h.ref_hash != 0)
      throw StreamError("block container: keyframe carries a reference hash");
    const std::size_t bitmap_bytes =
        static_cast<std::size_t>((h.block_count + 7) / 8);
    const auto bitmap = reader.get_bytes(bitmap_bytes);
    h.block_modes.assign(bitmap.begin(), bitmap.end());
    // Bits past block_count in the trailing byte are meaningless and must
    // be zero; a keyframe must not mark any block temporal.
    if (h.block_count % 8 != 0 && !h.block_modes.empty() &&
        (h.block_modes.back() >> (h.block_count % 8)) != 0)
      throw StreamError("block container: trailing mode bitmap bits set");
    if (!delta) {
      for (std::uint8_t byte : h.block_modes)
        if (byte != 0)
          throw StreamError("block container: temporal blocks in a keyframe");
    }
  }
  return h;
}

struct IndexEntry {
  std::uint64_t offset, size;
};

struct BlockIndex {
  std::vector<IndexEntry> entries;
  std::vector<double> sse;  ///< empty for v1 streams
};

BlockIndex read_block_index(ByteReader& reader, const BlockContainerHeader& h,
                            std::size_t payload_bytes) {
  BlockIndex index;
  index.entries.resize(h.block_count);
  for (auto& e : index.entries) e.offset = reader.get<std::uint64_t>();
  for (auto& e : index.entries) e.size = reader.get<std::uint64_t>();
  if (h.has_block_sse()) {
    index.sse.resize(h.block_count);
    for (auto& s : index.sse) {
      s = reader.get<double>();
      if (!std::isfinite(s) || s < 0.0)
        throw StreamError("block container: invalid per-block SSE");
    }
  }
  std::uint64_t expect = 0;
  for (const auto& e : index.entries) {
    if (e.offset != expect)
      throw StreamError("block container: non-contiguous index");
    expect += e.size;
  }
  if (expect != payload_bytes)
    throw StreamError("block container: index does not cover the payload");
  return index;
}

}  // namespace

BlockContainerWriter::BlockContainerWriter(BlockContainerHeader header)
    : header_(std::move(header)),
      blocks_(header_.block_count),
      sse_(header_.block_count, 0.0),
      present_(header_.block_count, 0),
      missing_(header_.block_count) {
  if (header_.block_count == 0)
    throw std::invalid_argument("block container: zero blocks");
}

void BlockContainerWriter::add_block(std::size_t index,
                                     std::vector<std::uint8_t> bytes,
                                     double achieved_sse) {
  std::lock_guard lock(mutex_);
  if (finished_)
    throw std::logic_error("block container: add_block after finish");
  if (index >= blocks_.size())
    throw std::out_of_range("block container: block index out of range");
  if (present_[index])
    throw std::logic_error("block container: duplicate block");
  if (!std::isfinite(achieved_sse) || achieved_sse < 0.0)
    throw std::invalid_argument("block container: invalid block SSE");
  blocks_[index] = std::move(bytes);
  sse_[index] = achieved_sse;
  present_[index] = 1;
  --missing_;
}

std::vector<std::uint8_t> BlockContainerWriter::finish() {
  std::lock_guard lock(mutex_);
  if (finished_) throw std::logic_error("block container: finish twice");
  if (missing_ != 0)
    throw std::logic_error("block container: " + std::to_string(missing_) +
                           " block(s) never delivered");
  finished_ = true;

  ByteWriter out;
  write_block_header(header_, out);
  std::uint64_t offset = 0;
  for (const auto& b : blocks_) {
    out.put<std::uint64_t>(offset);
    offset += b.size();
  }
  for (const auto& b : blocks_) out.put<std::uint64_t>(b.size());
  for (double s : sse_) out.put<double>(s);
  for (const auto& b : blocks_) out.put_bytes(b);
  return out.take();
}

bool is_block_container(std::span<const std::uint8_t> stream) {
  return stream.size() >= 4 &&
         std::equal(kBlockMagic, kBlockMagic + 4, stream.begin());
}

BlockContainerView open_block_container(std::span<const std::uint8_t> stream) {
  ByteReader reader(stream);
  BlockContainerView view;
  view.header = read_block_header(reader);
  const std::uint64_t count = view.header.block_count;
  const std::size_t entry_bytes = block_index_entry_bytes(view.header.version);
  // Divide instead of multiplying so a crafted block_count cannot wrap the
  // size computation past the truncation check.
  if (count > reader.remaining() / entry_bytes)
    throw StreamError("block container: truncated index");
  const std::size_t index_bytes = count * entry_bytes;
  const std::size_t payload_bytes = reader.remaining() - index_bytes;
  auto index = read_block_index(reader, view.header, payload_bytes);
  const std::size_t payload_start = reader.position();
  view.blocks.reserve(count);
  for (const auto& e : index.entries)
    view.blocks.push_back(stream.subspan(payload_start + e.offset, e.size));
  view.block_sse = std::move(index.sse);
  return view;
}

BlockContainerHeader block_container_header(
    std::span<const std::uint8_t> stream) {
  ByteReader reader(stream);
  return read_block_header(reader);
}

std::span<const std::uint8_t> block_container_entry(
    std::span<const std::uint8_t> stream, std::size_t index) {
  ByteReader reader(stream);
  const BlockContainerHeader h = read_block_header(reader);
  if (index >= h.block_count)
    throw std::out_of_range("block container: block index out of range");
  const std::size_t entry_bytes = block_index_entry_bytes(h.version);
  if (h.block_count > reader.remaining() / entry_bytes)
    throw StreamError("block container: truncated index");
  const std::size_t index_bytes =
      static_cast<std::size_t>(h.block_count) * entry_bytes;
  const std::size_t payload_bytes = reader.remaining() - index_bytes;
  const std::size_t table_start = reader.position();
  ByteReader offsets(stream.subspan(table_start + index * sizeof(std::uint64_t)));
  const auto offset = offsets.get<std::uint64_t>();
  ByteReader sizes(stream.subspan(table_start +
                                  (h.block_count + index) * sizeof(std::uint64_t)));
  const auto size = sizes.get<std::uint64_t>();
  if (offset + size > payload_bytes || offset + size < offset)
    throw StreamError("block container: index entry out of bounds");
  return stream.subspan(table_start + index_bytes + offset, size);
}

}  // namespace fpsnr::io
