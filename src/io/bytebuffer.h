// Byte-granular serialization buffers.
//
// ByteWriter/ByteReader provide little-endian primitive encoding, varints,
// and length-prefixed blobs. They are the container-format substrate for
// the SZ-like codec (src/sz/stream_format) and the transform codec.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "io/bitstream.h"  // for StreamError

namespace fpsnr::io {

/// Growable little-endian byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Append a trivially-copyable scalar in little-endian byte order.
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    unsigned char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    // This library targets little-endian hosts (asserted in bytebuffer.cpp);
    // memcpy order is the wire order.
    buf_.insert(buf_.end(), raw, raw + sizeof(T));
  }

  /// Append raw bytes.
  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Append an unsigned LEB128 varint.
  void put_varint(std::uint64_t v);

  /// Append a u64 length prefix followed by the bytes.
  void put_blob(std::span<const std::uint8_t> bytes);

  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  const std::vector<std::uint8_t>& buffer() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian byte source over a borrowed span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T out;
    std::memcpy(&out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return out;
  }

  /// Read an unsigned LEB128 varint.
  std::uint64_t get_varint();

  /// Read a u64-length-prefixed blob as an owned vector.
  std::vector<std::uint8_t> get_blob();

  /// Borrow a u64-length-prefixed blob without copying.
  std::span<const std::uint8_t> get_blob_view();

  /// Copy n raw bytes.
  std::vector<std::uint8_t> get_bytes(std::size_t n);

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;

  void require(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw StreamError("ByteReader: read past end of buffer");
  }
};

}  // namespace fpsnr::io
