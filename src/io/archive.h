// Minimal named-blob archive: one file for a whole multi-field dataset.
//
// Scientific dumps carry tens of variables per snapshot (CESM: 79+); the
// archive packs one compressed stream per field with a name index so the
// CLI and examples can round-trip entire datasets through a single buffer
// or file. Format (little-endian):
//   magic "FPAR", version u8, varint entry count,
//   per entry: varint name length, name bytes, u64-length-prefixed blob.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "io/bytebuffer.h"

namespace fpsnr::io {

struct ArchiveEntry {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

/// Serialize entries in order. Names may repeat (last one wins on lookup).
std::vector<std::uint8_t> write_archive(std::span<const ArchiveEntry> entries);

/// Parse a full archive. Throws StreamError on malformed input.
std::vector<ArchiveEntry> read_archive(std::span<const std::uint8_t> archive);

/// Entry names only (cheap index scan; blobs are skipped, not copied).
std::vector<std::string> list_archive(std::span<const std::uint8_t> archive);

/// Extract a single entry by name. Throws std::out_of_range if absent.
std::vector<std::uint8_t> archive_entry(std::span<const std::uint8_t> archive,
                                        const std::string& name);

// ---------------------------------------------------------------------------
// Block-indexed container — the on-wire format of the block-parallel
// pipeline engine (core/pipeline.h). One field is stored as `block_count`
// independently compressed full-rank tiles plus a fixed-width offset/size
// index, so workers can emit blocks out of order at compress time and
// readers can decode any single block without touching the rest.
//
// Layout (little-endian):
//   magic "FPBK", version u8 (1..4),
//   codec u8, scalar u8, rank u8, extents varint x rank,
//   tile varint x rank                 (v3+; v1/v2 store block_rows varint),
//   block_count varint,
//   eb_abs f64, value_range f64, control_mode u8, control_value f64,
//   budget_mode u8                     (v2+ only),
//   temporal_flags u8                  (v4 only; bit0 delta, bit1 series),
//   series_id u64, timestep u64, ref_hash u64          (v4 only),
//   mode bitmap, ceil(block_count/8) bytes             (v4 only),
//   offset u64 x block_count (relative to payload start),
//   size   u64 x block_count,
//   sse    f64 x block_count           (v2+ only; achieved per-block SSE),
//   payload bytes (blocks concatenated in index order).
//
// v2 extended v1 with non-uniform budget metadata: a budget-mode byte in the
// header and a third fixed-width index column recording each block's exact
// achieved sum of squared errors, so a reader can report the *measured*
// global PSNR without touching the payload.
//
// v3 replaces the axis-0 slab geometry (a single block_rows varint) with a
// full-rank tile shape: one varint per axis giving the tile's extent along
// that axis. Blocks are the tiles of the C-order tile grid (last axis
// fastest); the trailing tile on each axis may be short. Spatial writers
// always emit v3; readers accept all versions — a v1/v2 block_rows header
// is an axis-0 slab, i.e. the synthesized tile {block_rows, dims[1], ...}.
//
// v4 adds the temporal chain header for time-series frames (the temporal
// subsystem, src/temporal/): a flags byte (bit0 = this frame codes deltas
// against the previous reconstruction; bit1 = member of a series — ALWAYS
// set in v4, other bits must be zero), the series id (FNV-1a of the series
// name), the timestep index, the reference hash (FNV-1a over the raw value
// bytes of the reference reconstruction; nonzero iff delta — it is what
// lets a decoder refuse to apply a delta to the wrong reference), and a
// per-block mode bitmap (bit b = block b codes the temporal delta; all-zero
// and required to be so for keyframes). Only series frames are v4; plain
// spatial archives keep emitting v3, so v1–v3 readers and fixtures are
// byte-for-byte unaffected.
// ---------------------------------------------------------------------------

/// Version written for plain spatial archives (every non-series write).
inline constexpr std::uint8_t kBlockContainerVersion = 3;
/// Version written for temporal-series frames (v4 chain header present).
inline constexpr std::uint8_t kBlockContainerVersionTemporal = 4;
/// Highest version any reader accepts.
inline constexpr std::uint8_t kBlockContainerVersionMax =
    kBlockContainerVersionTemporal;

/// v4 temporal_flags bits.
inline constexpr std::uint8_t kTemporalFlagDelta = 0x01;
inline constexpr std::uint8_t kTemporalFlagSeries = 0x02;

struct BlockContainerHeader {
  std::uint8_t version = kBlockContainerVersion;  ///< set by the readers
  std::uint8_t codec = 0;   ///< core::CodecId of the per-block codec
  std::uint8_t scalar = 0;  ///< sz::ScalarType of the original data
  std::vector<std::uint64_t> extents;  ///< full-field dims, C order
  /// Per-axis tile extents, same rank/order as `extents`; the trailing tile
  /// on each axis may be short. Readers of v1/v2 streams synthesize
  /// {block_rows, extents[1], ...} so every decode path sees one geometry.
  std::vector<std::uint64_t> tile;
  std::uint64_t block_count = 0;
  double eb_abs = 0.0;        ///< base per-block error budget
  double value_range = 0.0;   ///< global range the budget was derived from
  std::uint8_t control_mode = 0;  ///< core::ControlMode of the user request
  double control_value = 0.0;     ///< the request's value (PSNR dB, bound, ...)
  std::uint8_t budget_mode = 0;   ///< core::BudgetMode (v2+; 0 = uniform)

  // v4 temporal chain header (all zero for v1..v3).
  std::uint8_t temporal_flags = 0;  ///< kTemporalFlagDelta | kTemporalFlagSeries
  std::uint64_t series_id = 0;      ///< FNV-1a of the series name
  std::uint64_t timestep = 0;       ///< 0-based position in the series
  std::uint64_t ref_hash = 0;       ///< FNV-1a of the reference recon bytes
  /// Per-block prediction mode, bit b of byte b/8 at position b%8: 1 means
  /// block b stores the temporal delta, 0 means spatial-from-scratch.
  /// ceil(block_count/8) bytes in a v4 stream; empty otherwise.
  std::vector<std::uint8_t> block_modes;

  /// True when the stream carries the per-block achieved-SSE index column.
  bool has_block_sse() const { return version >= 2; }
  /// True when the stream carries the v4 temporal chain header.
  bool has_temporal_chain() const {
    return version >= kBlockContainerVersionTemporal;
  }
  bool is_delta_frame() const {
    return (temporal_flags & kTemporalFlagDelta) != 0;
  }
  /// True when block `b`'s payload is a temporal delta (v4 only).
  bool block_is_temporal(std::size_t b) const {
    return b / 8 < block_modes.size() &&
           (block_modes[b / 8] >> (b % 8)) & 1;
  }
};

/// Serialize `h` (magic byte through budget_mode, plus the v4 chain fields
/// when h.version >= 4) — the byte prefix of every FPBK container. Shared
/// by the in-memory writer below and the streaming writer
/// (io/streaming_archive.h) so the two paths stay byte-identical. Writes
/// h.version; throws std::invalid_argument on an unwritable version or an
/// inconsistent v4 chain (bad flag bits, wrong bitmap size).
void write_block_header(const BlockContainerHeader& h, ByteWriter& out);

/// Width of one per-block index entry for the given container version
/// (offset u64 + size u64, + sse f64 from v2). Single source of truth for
/// the readers and the streaming writer's reserved-region size.
std::size_t block_index_entry_bytes(std::uint8_t version);

/// Collects per-block streams and serializes them with a random-access
/// index. `add_block` is thread-safe and accepts blocks in any completion
/// order — this is what lets pipeline workers finish out of order.
class BlockContainerWriter {
 public:
  explicit BlockContainerWriter(BlockContainerHeader header);

  /// Store block `index`'s bytes (0-based; must be < header.block_count and
  /// not yet filled). `achieved_sse` is the block's exact sum of squared
  /// reconstruction errors, recorded in the v2 index column — deliberately
  /// not defaulted: 0 claims "this block decodes losslessly", which must
  /// be an explicit statement, never an accident. Safe to call
  /// concurrently from pool workers.
  void add_block(std::size_t index, std::vector<std::uint8_t> bytes,
                 double achieved_sse);

  /// Serialize. Throws std::logic_error if any block slot is still empty
  /// or finish() was already called.
  std::vector<std::uint8_t> finish();

 private:
  BlockContainerHeader header_;
  std::vector<std::vector<std::uint8_t>> blocks_;
  std::vector<double> sse_;
  std::vector<char> present_;
  std::size_t missing_ = 0;
  bool finished_ = false;
  std::mutex mutex_;
};

/// True if `stream` starts with the block-container magic "FPBK".
bool is_block_container(std::span<const std::uint8_t> stream);

/// Parsed header plus borrowed views of every block's bytes.
struct BlockContainerView {
  BlockContainerHeader header;
  std::vector<std::span<const std::uint8_t>> blocks;  ///< views into stream
  /// Achieved per-block SSE from the v2 index column; empty for v1 streams.
  std::vector<double> block_sse;
};

/// Parse a complete container. Throws StreamError on malformed input.
BlockContainerView open_block_container(std::span<const std::uint8_t> stream);

/// Parse the header only (no index walk, no payload access).
BlockContainerHeader block_container_header(
    std::span<const std::uint8_t> stream);

/// Random access: bytes of block `index` only (index-table seek; the other
/// blocks' payloads are never touched). Throws std::out_of_range on a bad
/// index, StreamError on malformed input.
std::span<const std::uint8_t> block_container_entry(
    std::span<const std::uint8_t> stream, std::size_t index);

}  // namespace fpsnr::io
