// Minimal named-blob archive: one file for a whole multi-field dataset.
//
// Scientific dumps carry tens of variables per snapshot (CESM: 79+); the
// archive packs one compressed stream per field with a name index so the
// CLI and examples can round-trip entire datasets through a single buffer
// or file. Format (little-endian):
//   magic "FPAR", version u8, varint entry count,
//   per entry: varint name length, name bytes, u64-length-prefixed blob.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "io/bytebuffer.h"

namespace fpsnr::io {

struct ArchiveEntry {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

/// Serialize entries in order. Names may repeat (last one wins on lookup).
std::vector<std::uint8_t> write_archive(std::span<const ArchiveEntry> entries);

/// Parse a full archive. Throws StreamError on malformed input.
std::vector<ArchiveEntry> read_archive(std::span<const std::uint8_t> archive);

/// Entry names only (cheap index scan; blobs are skipped, not copied).
std::vector<std::string> list_archive(std::span<const std::uint8_t> archive);

/// Extract a single entry by name. Throws std::out_of_range if absent.
std::vector<std::uint8_t> archive_entry(std::span<const std::uint8_t> archive,
                                        const std::string& name);

}  // namespace fpsnr::io
