// Streaming FPBK I/O — spill blocks to disk as workers finish, mmap-decode
// without loading the payload.
//
// The in-memory BlockContainerWriter holds every compressed block until
// finish(); for exascale fields that means the whole container lives in RAM
// alongside the field. StreamingArchiveWriter instead writes the header,
// reserves the fixed-width index region up front, and appends each block's
// bytes the moment the payload prefix reaches it — peak memory is the
// reorder buffer of out-of-order in-flight blocks (O(threads) blocks in
// practice), never O(container). finish() seeks back and fills the index.
//
// The file is byte-for-byte identical to BlockContainerWriter::finish() for
// the same header and blocks: the payload must be laid out in index order
// (the FPBK index is required to be contiguous), so a block that finishes
// before its predecessors is buffered until they land, then flushed.
//
// MmapArchiveReader memory-maps an archive read-only. Decoding one block
// through the existing O(1) index touches only the header, two index
// entries, and that block's extent — the OS never faults in the rest of
// the payload, so random access into a TB-scale archive stays cheap.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "io/archive.h"

namespace fpsnr::io {

/// Layout and memory high-water marks observed by a StreamingArchiveWriter;
/// the pipeline reports them so callers can describe the archive and verify
/// streaming stayed O(blocks) without re-reading the file.
struct StreamingStats {
  std::uint64_t total_bytes = 0;          ///< final archive size on disk
  std::vector<std::uint64_t> tile;        ///< per-axis tile extents
  std::uint64_t block_count = 0;
  std::size_t peak_buffered_bytes = 0;    ///< reorder-buffer high-water mark
  std::size_t peak_buffered_blocks = 0;   ///< ... in blocks
};

/// Writes an FPBK container to a file incrementally. `add_block` is
/// thread-safe and accepts any completion order; blocks are spilled to disk
/// in index order as soon as the prefix is complete. finish() is required
/// for a valid archive (it writes the reserved index region).
///
/// All-or-nothing: bytes accumulate in `path + ".partial"` and the file is
/// renamed onto `path` only when finish() succeeds, so a failure partway
/// (codec exception, full disk) never destroys a pre-existing archive and
/// never leaves a truncated container that looks like output; the partial
/// file is removed when an unfinished writer is destroyed.
class StreamingArchiveWriter {
 public:
  /// Creates `path + ".partial"`, writes the header, and reserves the
  /// index region. Throws StreamError if the file cannot be created.
  StreamingArchiveWriter(std::string path, BlockContainerHeader header);
  ~StreamingArchiveWriter();

  StreamingArchiveWriter(const StreamingArchiveWriter&) = delete;
  StreamingArchiveWriter& operator=(const StreamingArchiveWriter&) = delete;

  /// Store block `index`'s bytes (0-based; must be < header.block_count and
  /// not yet filled). `achieved_sse` lands in the v2 per-block SSE index
  /// column at finish() — deliberately not defaulted: 0 claims "this block
  /// decodes losslessly" and must be said explicitly. Safe to call
  /// concurrently from pool workers.
  void add_block(std::size_t index, std::vector<std::uint8_t> bytes,
                 double achieved_sse);

  /// Fill the index region, flush, and rename the partial file onto
  /// `path`. Throws std::logic_error if any block slot is still empty or
  /// finish() was already called, StreamError on write failure. Returns
  /// the final archive size in bytes.
  std::uint64_t finish();

  const StreamingStats& stats() const { return stats_; }

 private:
  std::string path_;
  std::string partial_path_;  ///< path + ".partial" until finish() renames
  BlockContainerHeader header_;
  std::ofstream out_;
  std::uint64_t index_pos_ = 0;    ///< file offset of the reserved index
  std::uint64_t payload_pos_ = 0;  ///< file offset of the payload start
  std::vector<std::uint64_t> sizes_;
  std::vector<double> sse_;
  std::vector<char> present_;
  std::size_t next_to_spill_ = 0;  ///< first block not yet on disk
  std::map<std::size_t, std::vector<std::uint8_t>> reorder_;  ///< early blocks
  std::size_t buffered_bytes_ = 0;
  StreamingStats stats_;
  bool finished_ = false;
  bool spilling_ = false;  ///< one thread is writing outside the lock
  std::mutex mutex_;
  std::condition_variable spill_done_;

  void write_or_throw(const void* data, std::size_t bytes);
};

/// Read-only memory map of an FPBK archive. The header is parsed (and
/// validated) eagerly; block payloads are faulted in only when touched.
class MmapArchiveReader {
 public:
  /// Maps `path`. Throws StreamError if the file cannot be opened/mapped or
  /// does not start with a valid FPBK header.
  explicit MmapArchiveReader(const std::string& path);
  ~MmapArchiveReader();

  MmapArchiveReader(const MmapArchiveReader&) = delete;
  MmapArchiveReader& operator=(const MmapArchiveReader&) = delete;

  /// The whole mapping (header + index + payload). Spans into it are valid
  /// for the reader's lifetime.
  std::span<const std::uint8_t> bytes() const { return {data_, size_}; }

  const BlockContainerHeader& header() const { return header_; }
  std::size_t block_count() const { return header_.block_count; }

  /// Bytes of block `index` via the O(1) index seek — no other block's
  /// payload is touched. Throws like io::block_container_entry.
  std::span<const std::uint8_t> block(std::size_t index) const {
    return block_container_entry(bytes(), index);
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_ = nullptr;               ///< non-null when mmap backed
  std::vector<std::uint8_t> owned_;   ///< fallback when mmap is unavailable
  BlockContainerHeader header_;
};

}  // namespace fpsnr::io
