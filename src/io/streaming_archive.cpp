#include "io/streaming_archive.h"

#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "io/bitstream.h"

#if defined(_WIN32)
#include <iterator>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fpsnr::io {

// --- StreamingArchiveWriter -------------------------------------------------

StreamingArchiveWriter::StreamingArchiveWriter(std::string path,
                                               BlockContainerHeader header)
    : path_(std::move(path)),
      partial_path_(path_ + ".partial"),
      header_(std::move(header)) {
  if (header_.block_count == 0)
    throw std::invalid_argument("streaming archive: zero blocks");
  sizes_.assign(header_.block_count, 0);
  sse_.assign(header_.block_count, 0.0);
  present_.assign(header_.block_count, 0);
  stats_.tile = header_.tile;
  stats_.block_count = header_.block_count;

  out_.open(partial_path_, std::ios::binary | std::ios::trunc);
  if (!out_) throw StreamError("streaming archive: cannot create " + partial_path_);

  try {
    ByteWriter head;
    write_block_header(header_, head);
    index_pos_ = head.size();
    // Reserve the index region (offsets, sizes, then the v2 per-block SSE
    // column) with zeros; finish() seeks back and fills it once every block
    // size is known.
    const std::size_t index_bytes =
        static_cast<std::size_t>(header_.block_count) *
        block_index_entry_bytes(header_.version);
    for (std::size_t i = 0; i < index_bytes; ++i) head.put<std::uint8_t>(0);
    payload_pos_ = head.size();
    write_or_throw(head.buffer().data(), head.buffer().size());
  } catch (...) {
    // The destructor will not run for a throwing constructor; clean up the
    // partial file here so the all-or-nothing contract holds.
    out_.close();
    std::error_code ec;
    std::filesystem::remove(partial_path_, ec);
    throw;
  }
}

StreamingArchiveWriter::~StreamingArchiveWriter() {
  std::unique_lock lock(mutex_);
  spill_done_.wait(lock, [&] { return !spilling_; });
  if (finished_) return;
  // Unfinished (an exception unwound past us): drop the partial file so no
  // truncated, index-less container masquerades as output.
  out_.close();
  std::error_code ec;
  std::filesystem::remove(partial_path_, ec);
}

void StreamingArchiveWriter::write_or_throw(const void* data,
                                            std::size_t bytes) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_)
    throw StreamError("streaming archive: write failed on " + partial_path_);
}

void StreamingArchiveWriter::add_block(std::size_t index,
                                       std::vector<std::uint8_t> bytes,
                                       double achieved_sse) {
  std::unique_lock lock(mutex_);
  if (finished_)
    throw std::logic_error("streaming archive: add_block after finish");
  if (index >= sizes_.size())
    throw std::out_of_range("streaming archive: block index out of range");
  if (present_[index])
    throw std::logic_error("streaming archive: duplicate block");
  if (!std::isfinite(achieved_sse) || achieved_sse < 0.0)
    throw std::invalid_argument("streaming archive: invalid block SSE");
  present_[index] = 1;
  sizes_[index] = bytes.size();
  sse_[index] = achieved_sse;

  if (index != next_to_spill_ || spilling_) {
    // Ahead of the payload prefix — or a spill is in flight and the file
    // cursor is busy: park the bytes; the active spiller (or a later
    // in-order delivery) drains them. Parking is pure memory work, so
    // workers never wait on the disk here.
    buffered_bytes_ += bytes.size();
    reorder_.emplace(index, std::move(bytes));
    stats_.peak_buffered_bytes =
        std::max(stats_.peak_buffered_bytes, buffered_bytes_);
    stats_.peak_buffered_blocks =
        std::max(stats_.peak_buffered_blocks, reorder_.size());
    return;
  }

  // This thread owns the spill until the prefix is no longer extendable.
  // Writes happen OUTSIDE the lock: other workers keep compressing and
  // parking while the disk catches up.
  spilling_ = true;
  std::vector<std::vector<std::uint8_t>> batch;
  batch.push_back(std::move(bytes));
  ++next_to_spill_;
  try {
    for (;;) {
      for (auto it = reorder_.begin();
           it != reorder_.end() && it->first == next_to_spill_;
           it = reorder_.erase(it), ++next_to_spill_) {
        buffered_bytes_ -= it->second.size();
        batch.push_back(std::move(it->second));
      }
      lock.unlock();
      for (const auto& b : batch) write_or_throw(b.data(), b.size());
      batch.clear();
      lock.lock();
      if (reorder_.empty() || reorder_.begin()->first != next_to_spill_)
        break;  // nothing new became contiguous while we were writing
    }
  } catch (...) {
    if (!lock.owns_lock()) lock.lock();
    spilling_ = false;
    spill_done_.notify_all();
    throw;
  }
  spilling_ = false;
  spill_done_.notify_all();
}

std::uint64_t StreamingArchiveWriter::finish() {
  std::unique_lock lock(mutex_);
  spill_done_.wait(lock, [&] { return !spilling_; });
  if (finished_) throw std::logic_error("streaming archive: finish twice");
  if (next_to_spill_ != sizes_.size())
    throw std::logic_error(
        "streaming archive: " +
        std::to_string(sizes_.size() - next_to_spill_ - reorder_.size()) +
        " block(s) never delivered");

  ByteWriter index;
  std::uint64_t offset = 0;
  for (std::uint64_t s : sizes_) {
    index.put<std::uint64_t>(offset);
    offset += s;
  }
  for (std::uint64_t s : sizes_) index.put<std::uint64_t>(s);
  for (double s : sse_) index.put<double>(s);
  out_.seekp(static_cast<std::streamoff>(index_pos_));
  if (!out_)
    throw StreamError("streaming archive: seek failed on " + partial_path_);
  write_or_throw(index.buffer().data(), index.buffer().size());
  out_.flush();
  if (!out_)
    throw StreamError("streaming archive: flush failed on " + partial_path_);
  out_.close();

  // The archive becomes visible at `path` only now, complete: readers can
  // never observe a half-written container.
  std::error_code ec;
  std::filesystem::rename(partial_path_, path_, ec);
  if (ec)
    throw StreamError("streaming archive: cannot move " + partial_path_ +
                      " to " + path_ + ": " + ec.message());
  finished_ = true;

  stats_.total_bytes = payload_pos_ + offset;
  return stats_.total_bytes;
}

// --- MmapArchiveReader ------------------------------------------------------

MmapArchiveReader::MmapArchiveReader(const std::string& path) {
#if defined(_WIN32)
  // Portability fallback: no mmap — read the whole file. Random access
  // still works, it just loses the lazy-fault property.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StreamError("mmap archive: cannot open " + path);
  owned_.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  data_ = owned_.data();
  size_ = owned_.size();
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw StreamError("mmap archive: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw StreamError("mmap archive: cannot stat " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    throw StreamError("mmap archive: empty file " + path);
  }
  map_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    throw StreamError("mmap archive: mmap failed for " + path);
  }
  data_ = static_cast<const std::uint8_t*>(map_);
#endif
  try {
    header_ = block_container_header(bytes());
  } catch (...) {
#if !defined(_WIN32)
    if (map_) ::munmap(map_, size_);
    map_ = nullptr;
#endif
    throw;
  }
}

MmapArchiveReader::~MmapArchiveReader() {
#if !defined(_WIN32)
  if (map_) ::munmap(map_, size_);
#endif
}

}  // namespace fpsnr::io
