// Bit-granular output/input streams.
//
// BitWriter packs bits LSB-first into a growable byte vector; BitReader
// consumes them in the same order. Both are substrates for the canonical
// Huffman coder (src/huffman) and the DEFLATE-like backend (src/lossless).
//
// Conventions:
//  * write_bits(value, n) emits the n low bits of `value`, least-significant
//    bit first (DEFLATE convention).
//  * Reading past the end throws fpsnr::io::StreamError — corrupted inputs
//    must fail loudly, never invoke UB.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fpsnr::io {

/// Thrown on malformed or truncated streams.
class StreamError : public std::runtime_error {
 public:
  explicit StreamError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only bit sink. Bits are packed LSB-first within each byte.
class BitWriter {
 public:
  BitWriter() = default;

  /// Emit the `nbits` low-order bits of `value`, LSB first. nbits in [0,64].
  void write_bits(std::uint64_t value, unsigned nbits);

  /// Emit a single bit.
  void write_bit(bool bit) { write_bits(bit ? 1u : 0u, 1); }

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte();

  /// Append raw bytes (must be byte-aligned; call align_to_byte() first).
  void write_bytes(std::span<const std::uint8_t> bytes);

  /// Number of bits written so far.
  std::size_t bit_count() const { return bit_count_; }

  /// Finish (pads to byte boundary) and move out the underlying buffer.
  std::vector<std::uint8_t> take();

  /// Read-only view of the (possibly unaligned) current contents.
  const std::vector<std::uint8_t>& buffer() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;      // bit accumulator, LSB-first
  unsigned acc_bits_ = 0;      // bits currently held in acc_
  std::size_t bit_count_ = 0;

  void flush_full_bytes();
};

/// Bit source over a borrowed byte span. LSB-first, mirroring BitWriter.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `nbits` bits (LSB-first) as an unsigned value. nbits in [0,64].
  std::uint64_t read_bits(unsigned nbits);

  /// Look at the next `nbits` bits without consuming them. Bits past the
  /// end of the stream read as zero (callers must bounds-check separately
  /// before consuming). nbits in [0,64].
  std::uint64_t peek_bits(unsigned nbits) const;

  /// Advance the cursor by `n` bits. Throws StreamError past the end.
  void skip_bits(std::size_t n);

  /// Read one bit.
  bool read_bit() { return read_bits(1) != 0; }

  /// Skip ahead to the next byte boundary.
  void align_to_byte();

  /// Copy `n` raw bytes (requires byte alignment).
  std::vector<std::uint8_t> read_bytes(std::size_t n);

  /// Bits consumed so far.
  std::size_t bit_position() const { return bit_pos_; }

  /// Total bits available.
  std::size_t bit_size() const { return data_.size() * 8; }

  /// Bits remaining.
  std::size_t bits_remaining() const { return bit_size() - bit_pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t bit_pos_ = 0;
};

}  // namespace fpsnr::io
