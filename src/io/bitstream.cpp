#include "io/bitstream.h"

namespace fpsnr::io {

void BitWriter::flush_full_bytes() {
  while (acc_bits_ >= 8) {
    bytes_.push_back(static_cast<std::uint8_t>(acc_ & 0xFFu));
    acc_ >>= 8;
    acc_bits_ -= 8;
  }
}

void BitWriter::write_bits(std::uint64_t value, unsigned nbits) {
  if (nbits > 64) throw StreamError("BitWriter: nbits > 64");
  if (nbits == 0) return;
  if (nbits < 64) value &= (std::uint64_t{1} << nbits) - 1;
  // The accumulator can hold at most 63 pending bits after flush, so split
  // writes that would overflow the 64-bit accumulator.
  if (acc_bits_ + nbits > 64) {
    unsigned first = 64 - acc_bits_;
    write_bits(value, first);
    write_bits(value >> first, nbits - first);
    return;
  }
  acc_ |= value << acc_bits_;
  acc_bits_ += nbits;
  bit_count_ += nbits;
  flush_full_bytes();
}

void BitWriter::align_to_byte() {
  unsigned rem = bit_count_ % 8;
  if (rem != 0) write_bits(0, 8 - rem);
}

void BitWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  if (bit_count_ % 8 != 0)
    throw StreamError("BitWriter: write_bytes requires byte alignment");
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  bit_count_ += bytes.size() * 8;
}

std::vector<std::uint8_t> BitWriter::take() {
  align_to_byte();
  // align_to_byte flushed everything into bytes_.
  acc_ = 0;
  acc_bits_ = 0;
  std::vector<std::uint8_t> out = std::move(bytes_);
  bytes_.clear();
  bit_count_ = 0;
  return out;
}

std::uint64_t BitReader::read_bits(unsigned nbits) {
  if (nbits > 64) throw StreamError("BitReader: nbits > 64");
  if (nbits == 0) return 0;
  if (bit_pos_ + nbits > bit_size())
    throw StreamError("BitReader: read past end of stream");
  std::uint64_t out = 0;
  unsigned got = 0;
  while (got < nbits) {
    std::size_t byte_idx = bit_pos_ >> 3;
    unsigned bit_off = static_cast<unsigned>(bit_pos_ & 7);
    unsigned avail = 8 - bit_off;
    unsigned take_n = std::min(avail, nbits - got);
    std::uint64_t chunk =
        (static_cast<std::uint64_t>(data_[byte_idx]) >> bit_off) &
        ((std::uint64_t{1} << take_n) - 1);
    out |= chunk << got;
    got += take_n;
    bit_pos_ += take_n;
  }
  return out;
}

std::uint64_t BitReader::peek_bits(unsigned nbits) const {
  if (nbits > 64) throw StreamError("BitReader: nbits > 64");
  std::uint64_t out = 0;
  unsigned got = 0;
  std::size_t pos = bit_pos_;
  const std::size_t end = bit_size();
  while (got < nbits && pos < end) {
    const std::size_t byte_idx = pos >> 3;
    const unsigned bit_off = static_cast<unsigned>(pos & 7);
    const unsigned avail = 8 - bit_off;
    const unsigned take_n = std::min<unsigned>(avail, nbits - got);
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(data_[byte_idx]) >> bit_off) &
        ((std::uint64_t{1} << take_n) - 1);
    out |= chunk << got;
    got += take_n;
    pos += take_n;
  }
  return out;  // bits past the end stay zero
}

void BitReader::skip_bits(std::size_t n) {
  if (bit_pos_ + n > bit_size())
    throw StreamError("BitReader: skip past end of stream");
  bit_pos_ += n;
}

void BitReader::align_to_byte() {
  std::size_t rem = bit_pos_ % 8;
  if (rem != 0) {
    if (bit_pos_ + (8 - rem) > bit_size())
      throw StreamError("BitReader: align past end of stream");
    bit_pos_ += 8 - rem;
  }
}

std::vector<std::uint8_t> BitReader::read_bytes(std::size_t n) {
  if (bit_pos_ % 8 != 0)
    throw StreamError("BitReader: read_bytes requires byte alignment");
  std::size_t byte_idx = bit_pos_ >> 3;
  if (byte_idx + n > data_.size())
    throw StreamError("BitReader: read_bytes past end of stream");
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(byte_idx),
                                data_.begin() + static_cast<std::ptrdiff_t>(byte_idx + n));
  bit_pos_ += n * 8;
  return out;
}

}  // namespace fpsnr::io
