#include "io/bytebuffer.h"

#include <bit>

namespace fpsnr::io {

static_assert(std::endian::native == std::endian::little,
              "fpsnr targets little-endian hosts; the wire format is "
              "little-endian and ByteWriter::put relies on host order");

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_blob(std::span<const std::uint8_t> bytes) {
  put<std::uint64_t>(bytes.size());
  put_bytes(bytes);
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t out = 0;
  unsigned shift = 0;
  for (;;) {
    require(1);
    std::uint8_t b = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (b & 0x7Fu) > 1))
      throw StreamError("ByteReader: varint overflows 64 bits");
    out |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return out;
    shift += 7;
  }
}

std::vector<std::uint8_t> ByteReader::get_blob() {
  auto view = get_blob_view();
  return {view.begin(), view.end()};
}

std::span<const std::uint8_t> ByteReader::get_blob_view() {
  auto len = get<std::uint64_t>();
  require(len);
  std::span<const std::uint8_t> view = data_.subspan(pos_, len);
  pos_ += len;
  return view;
}

std::vector<std::uint8_t> ByteReader::get_bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace fpsnr::io
