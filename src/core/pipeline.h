// Block-parallel fixed-PSNR pipeline engine.
//
// The field is sharded into full-rank tiles ("blocks"): a per-axis tile
// shape — near-cubic by default, so neighborhood prediction stays compact
// in every dimension — induces a C-order tile grid, and each tile runs the
// full quantize -> Huffman -> lossless pipeline independently through a
// BlockCodec (core/codec_registry.h) on a thread pool. The results are
// assembled into the FPBK block-indexed container (io/archive.h), which
// tolerates out-of-order completion and supports random-access decode of
// single blocks. Tiles that span the field on every axis but the first
// (axis-0 slabs — the v1/v2 geometry) are borrowed straight from the field
// buffer; true multi-axis tiles are gathered into a contiguous scratch
// buffer for the codec and scattered back on decode.
//
// Error-budget accounting: the user's control request is resolved ONCE
// against the global value range to an absolute per-point budget eb_abs
// (bin width 2*eb_abs). Under BudgetMode::Uniform every block inherits
// that same budget, so
//   * the SZ path keeps its pointwise |err| <= eb_abs guarantee, and
//   * the global fixed-PSNR model is untouched: each block of n_b values
//     contributes at most n_b * eb_abs^2 / 3 to the total SSE (Eq. 6), and
//     sum_b n_b * eb^2/3 / N = eb^2/3 — exactly the serial model. The
//     engine sums the per-block budgets and cross-checks the identity.
// Under BudgetMode::Adaptive a per-block residual probe reallocates the
// bounds, exploiting Eq. 3's general form: any allocation with
// sum_b n_b * eb_b^2 <= N * eb^2 preserves the fixed-PSNR guarantee.
// Blocks whose residuals sit far below their allowance (already coding at
// the entropy floor) donate the budget they never spend; blocks on the
// rate curve share it as uniformly wider bins, so their bits shrink
// log-linearly at the same global PSNR target. The engine still
// cross-checks the aggregate against the uniform-plan budget.
//
// Every block's exact achieved SSE is measured at compress time and stored
// in the FPBK v2 index column, so readers report the *measured* global
// PSNR of an archive, not just the model bound. Blocks whose compressed
// form would be no smaller than raw are auto-demoted to the `store`
// passthrough codec (self-describing per-block magic).
//
// Determinism: the block layout, budget split, and store fallback depend
// only on the data, dims, and tile shape — never on the thread count — so
// compress() output is byte-identical for any `threads` value.
//
// INTERNAL engine surface: external callers use the fpsnr::Session facade
// (include/fpsnr/session.h), which emits byte-identical archives through
// these same internals.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/codec_registry.h"
#include "core/compressor.h"
#include "core/tile_layout.h"

namespace fpsnr::io {
struct StreamingStats;  // io/streaming_archive.h
}

namespace fpsnr::core {

/// Parsed summary of an FPBK stream (inspect support).
struct BlockStreamInfo {
  std::uint8_t version = 0;  ///< container version (1..4)
  CodecId codec = 0;
  std::string_view codec_name;
  data::Dims dims;
  /// Per-axis tile extents (v1/v2 slabs surface as {block_rows, dims...}).
  std::vector<std::size_t> tile;
  std::size_t block_count = 0;
  double eb_abs = 0.0;
  double value_range = 0.0;
  ControlMode control_mode = ControlMode::FixedPsnr;
  double control_value = 0.0;
  BudgetMode budget_mode = BudgetMode::Uniform;
  /// Total achieved SSE from the v2 per-block index column; -1 for v1
  /// streams (not recorded).
  double achieved_sse = -1.0;
  /// Measured global PSNR implied by achieved_sse (+inf for lossless);
  /// NaN for v1 streams.
  double achieved_psnr_db = 0.0;
  /// v4 temporal-chain metadata (all zero / false for v1..v3 streams).
  bool temporal = false;  ///< stream is a series member (v4)
  bool delta = false;     ///< frame codes deltas against a reference
  std::uint64_t series_id = 0;
  std::uint64_t timestep = 0;
  std::uint64_t ref_hash = 0;  ///< FNV-1a of the reference reconstruction
  std::size_t temporal_blocks = 0;  ///< blocks coded in temporal-delta mode
};

/// True if `stream` is a block-pipeline (FPBK) container.
bool is_block_stream(std::span<const std::uint8_t> stream);

BlockStreamInfo inspect_block_stream(std::span<const std::uint8_t> stream);

/// Resumable per-field compression job — the pipeline decomposed into its
/// three phases so callers can schedule the middle one themselves:
///
///   plan      the constructor resolves the budget, block layout, adaptive
///             split, and container header (all data-dependent only, never
///             thread-dependent), and opens the output writer;
///   enqueue   run_block(b) compresses block b and hands it to the writer —
///             safe to call concurrently for distinct b, in any order, from
///             any thread;
///   finalize  finalize() validates the budget accounting and finishes the
///             archive once every block has run.
///
/// compress_blocked / compress_to_file are thin wrappers that run the
/// blocks on parallel_for_shared; core/batch instead interleaves the
/// blocks of MANY FieldCompressors onto one parallel::WorkQueue and
/// finalizes each field as its last block completes. Because the plan and
/// the per-block bytes depend only on the data and options, the archive is
/// byte-identical however the blocks were scheduled.
template <typename T>
class FieldCompressor {
 public:
  /// In-memory plan: finalize() returns the FPBK stream in
  /// CompressResult::stream. Throws exactly like compress_blocked for
  /// invalid dims / control modes.
  FieldCompressor(std::span<const T> values, const data::Dims& dims,
                  const ControlRequest& request,
                  const CompressOptions& options);
  /// Streaming plan: blocks spill to `path` as their prefix completes
  /// (io::StreamingArchiveWriter); finalize() renames the finished archive
  /// onto `path` and leaves CompressResult::stream empty. The partial file
  /// is removed if the job is destroyed unfinalized.
  FieldCompressor(std::span<const T> values, const data::Dims& dims,
                  const ControlRequest& request,
                  const CompressOptions& options, std::string path);
  ~FieldCompressor();

  FieldCompressor(FieldCompressor&&) noexcept;
  FieldCompressor& operator=(FieldCompressor&&) noexcept;

  std::size_t block_count() const;

  /// Compress block `b` and hand it to the writer. Thread-safe for
  /// distinct indices; running the same index twice throws. Returns true
  /// exactly once — when this call completed the field's LAST outstanding
  /// block — so the completing worker knows to finalize.
  bool run_block(std::size_t b);

  /// Scheduling hint for block `b`: a non-zero key shared by the tiles of
  /// one coarse grid neighborhood (2 tiles per axis), so a locality-aware
  /// queue (parallel::WorkQueue) can keep adjacent tiles — which share
  /// cache lines along their faces — on the worker that last touched the
  /// neighborhood. Purely advisory: archive bytes never depend on it.
  std::uint64_t locality_key(std::size_t b) const;

  /// True once every block has run.
  bool complete() const;

  /// Validate the per-block budget accounting and finish the archive.
  /// Must be called exactly once, after complete(). `stats` reports the
  /// streaming writer's layout/high-water marks (ignored in-memory).
  CompressResult finalize(io::StreamingStats* stats = nullptr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Compress through the block pipeline. Supports every uniform-budget
/// control mode (FixedPsnr / Absolute / ValueRangeRelative / FixedNrmse)
/// plus FixedRate (each block bisects its own bound toward the requested
/// bits/value, seeded by a zfpr-style width census — the searches run
/// per block, so they parallelize like any other block work);
/// PointwiseRelative throws std::invalid_argument.
template <typename T>
CompressResult compress_blocked(std::span<const T> values,
                                const data::Dims& dims,
                                const ControlRequest& request,
                                const CompressOptions& options);

/// Streaming variant: identical block layout, budgets, and bytes as
/// compress_blocked, but each block is spilled to `path` as its worker
/// finishes (io::StreamingArchiveWriter) — peak memory is the in-flight
/// reorder buffer, never the whole container. The returned result carries
/// the usual accounting with an empty `stream`; `stats` (optional) reports
/// the final size and the reorder-buffer high-water mark.
template <typename T>
CompressResult compress_to_file(std::span<const T> values,
                                const data::Dims& dims,
                                const ControlRequest& request,
                                const CompressOptions& options,
                                const std::string& path,
                                io::StreamingStats* stats = nullptr);

/// Decode a whole archive file through a read-only memory map.
template <typename T>
sz::Decompressed<T> decompress_file(const std::string& path,
                                    std::size_t threads = 0);

/// Random-access decode of one block straight from the mapped file: only
/// the header, two index entries, and that block's extent are ever read.
template <typename T>
sz::Decompressed<T> decompress_file_block(const std::string& path,
                                          std::size_t block_index);

/// Decompress a full FPBK stream; blocks are decoded concurrently when
/// threads > 1.
template <typename T>
sz::Decompressed<T> decompress_blocked(std::span<const std::uint8_t> stream,
                                       std::size_t threads = 0);

/// Random-access decode of one block: only that block's payload is parsed.
/// The result's dims are the tile's per-axis extents (trailing tiles on an
/// axis may be short).
template <typename T>
sz::Decompressed<T> decompress_block(std::span<const std::uint8_t> stream,
                                     std::size_t block_index);

extern template class FieldCompressor<float>;
extern template class FieldCompressor<double>;
extern template CompressResult compress_blocked<float>(
    std::span<const float>, const data::Dims&, const ControlRequest&,
    const CompressOptions&);
extern template CompressResult compress_blocked<double>(
    std::span<const double>, const data::Dims&, const ControlRequest&,
    const CompressOptions&);
extern template sz::Decompressed<float> decompress_blocked<float>(
    std::span<const std::uint8_t>, std::size_t);
extern template sz::Decompressed<double> decompress_blocked<double>(
    std::span<const std::uint8_t>, std::size_t);
extern template sz::Decompressed<float> decompress_block<float>(
    std::span<const std::uint8_t>, std::size_t);
extern template sz::Decompressed<double> decompress_block<double>(
    std::span<const std::uint8_t>, std::size_t);
extern template CompressResult compress_to_file<float>(
    std::span<const float>, const data::Dims&, const ControlRequest&,
    const CompressOptions&, const std::string&, io::StreamingStats*);
extern template CompressResult compress_to_file<double>(
    std::span<const double>, const data::Dims&, const ControlRequest&,
    const CompressOptions&, const std::string&, io::StreamingStats*);
extern template sz::Decompressed<float> decompress_file<float>(
    const std::string&, std::size_t);
extern template sz::Decompressed<double> decompress_file<double>(
    const std::string&, std::size_t);
extern template sz::Decompressed<float> decompress_file_block<float>(
    const std::string&, std::size_t);
extern template sz::Decompressed<double> decompress_file_block<double>(
    const std::string&, std::size_t);

}  // namespace fpsnr::core
