#include "core/distortion_model.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace fpsnr::core {

namespace {
void require_positive(double x, const char* what) {
  if (!(x > 0.0) || !std::isfinite(x)) {
    throw std::invalid_argument(std::string(what) +
                                " must be positive and finite");
  }
}
}  // namespace

double mse_uniform_quantization(double bin_width) {
  require_positive(bin_width, "bin width");
  return bin_width * bin_width / 12.0;
}

double psnr_for_bin_width(double bin_width, double value_range) {
  require_positive(bin_width, "bin width");
  require_positive(value_range, "value range");
  return 20.0 * std::log10(value_range / bin_width) + 10.0 * std::log10(12.0);
}

double bin_width_for_psnr(double target_psnr_db, double value_range) {
  require_positive(value_range, "value range");
  return value_range * std::sqrt(12.0) * std::pow(10.0, -target_psnr_db / 20.0);
}

double psnr_for_abs_bound(double eb_abs, double value_range) {
  require_positive(eb_abs, "absolute bound");
  require_positive(value_range, "value range");
  return 20.0 * std::log10(value_range / eb_abs) + 10.0 * std::log10(3.0);
}

double psnr_for_rel_bound(double eb_rel) {
  require_positive(eb_rel, "relative bound");
  return -20.0 * std::log10(eb_rel) + 10.0 * std::log10(3.0);
}

double rel_bound_for_psnr(double target_psnr_db) {
  return std::sqrt(3.0) * std::pow(10.0, -target_psnr_db / 20.0);
}

double abs_bound_for_psnr(double target_psnr_db, double value_range) {
  require_positive(value_range, "value range");
  return rel_bound_for_psnr(target_psnr_db) * value_range;
}

double mse_general_quantization(std::span<const double> bin_widths,
                                std::span<const double> midpoint_densities) {
  if (bin_widths.size() != midpoint_densities.size())
    throw std::invalid_argument("mse_general_quantization: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < bin_widths.size(); ++i) {
    const double d = bin_widths[i];
    require_positive(d, "bin width");
    if (midpoint_densities[i] < 0.0)
      throw std::invalid_argument("mse_general_quantization: negative density");
    acc += d * d * d * midpoint_densities[i];
  }
  // Eq. (3) is written over one side of a symmetric distribution with a
  // factor 2; densities here come from the full (two-sided) histogram, so
  // the factor is already included: MSE = (1/12)*sum over all bins equals
  // (1/6)*sum over half. Using /12 keeps the estimate exact for symmetric
  // and asymmetric distributions alike.
  return acc / 12.0;
}

double psnr_from_histogram(const metrics::Histogram& prediction_errors,
                           double value_range) {
  require_positive(value_range, "value range");
  std::vector<double> widths(prediction_errors.bin_count(),
                             prediction_errors.bin_width());
  std::vector<double> densities(prediction_errors.bin_count());
  for (std::size_t b = 0; b < prediction_errors.bin_count(); ++b)
    densities[b] = prediction_errors.density(b);
  const double mse = mse_general_quantization(widths, densities);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return -20.0 * std::log10(std::sqrt(mse) / value_range);
}

}  // namespace fpsnr::core
