// Engine-level compression entry points (internal).
//
// Wraps the SZ-style codec (and optionally the orthogonal-transform codec)
// behind the unified ControlRequest interface, with fixed-PSNR as the
// headline mode. The public surface is fpsnr::Session
// (include/fpsnr/session.h); these internals are what the facade, the
// batch engine, and the pipeline compose.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "core/psnr_control.h"
#include "data/field.h"
#include "metrics/metrics.h"
#include "sz/codec.h"
#include "transform/transform_codec.h"

namespace fpsnr::core {

/// Which codec family executes the request. Values match the CodecId wire
/// bytes of the block-codec registry (core/codec_registry.h).
enum class Engine : std::uint8_t {
  SzLorenzo = 0,       ///< prediction-based (Theorem 1); pointwise bounds hold
  TransformHaar = 1,   ///< orthogonal Haar DWT (Theorem 2); PSNR-only control
  TransformDct = 2,    ///< orthogonal block DCT (Theorem 2); PSNR-only control
  Interp = 3,          ///< SZ3-style interpolation predictor; pointwise bounds
  ZfpRate = 4,         ///< ZFP-style fixed-rate bit-packed DCT; PSNR-only
  Store = 5,           ///< raw passthrough (lossless; the fallback codec)
};

/// How the global error budget is split across pipeline blocks.
enum class BudgetMode : std::uint8_t {
  /// Every block gets the same absolute bound derived from the global
  /// value range — the paper's Eq. 6/7 setting.
  Uniform = 0,
  /// A per-block residual probe redistributes the budget: blocks that
  /// never spend their allowance donate it, blocks on the rate curve get
  /// wider bins, with the aggregate SSE budget never exceeding the
  /// uniform level so the fixed-PSNR guarantee is unchanged (Eq. 3's
  /// general form). Applies to the aggregate-distortion control modes
  /// (FixedPsnr / FixedNrmse) only; pointwise-bound requests (Absolute /
  /// ValueRangeRelative) always compress with the uniform plan, since
  /// widening any block would break |err| <= bound.
  Adaptive = 1,
};

/// Block-parallel execution knobs (the pipeline engine, core/pipeline.h).
///
/// The stream layout depends only on `tile` — never on `threads` — so the
/// same request produces byte-identical output at any thread count.
struct ParallelOptions {
  /// Route through the block-parallel engine even when threads <= 1
  /// (emits the FPBK block-indexed container instead of a flat stream).
  bool block_pipeline = false;
  /// Worker threads for block execution; 0 or 1 runs the blocks serially.
  std::size_t threads = 0;
  /// Per-axis tile extents of the pipeline's block grid, C order. Empty
  /// picks a deterministic compact near-cubic tile from the dims (see
  /// core::auto_tile). A 0 entry — or a missing trailing axis — spans the
  /// field on that axis, so {r} is the legacy axis-0 slab of r rows.
  std::vector<std::size_t> tile;

  /// The engine is engaged when any knob is set.
  bool enabled() const { return block_pipeline || threads > 1 || !tile.empty(); }
};

/// Chain metadata the temporal subsystem (src/temporal/) threads through
/// the block pipeline into the FPBK v4 header. When `enabled`, the values
/// being compressed are a composite field (per tile: either the raw
/// snapshot or its delta against the previous reconstruction) and the
/// emitted container is stamped v4 with this chain identity plus the
/// per-block mode bitmap, so a decoder can rebuild — and refuse the wrong
/// reference for — each frame. Plain spatial compressions leave it
/// disabled and keep emitting v3 byte-for-byte.
struct TemporalLink {
  bool enabled = false;
  bool delta = false;        ///< false for keyframes (bitmap must be zero)
  std::uint64_t series_id = 0;
  std::uint64_t timestep = 0;
  std::uint64_t ref_hash = 0;  ///< FNV-1a of the reference recon; 0 iff !delta
  /// ceil(block_count/8) bytes; bit b set = block b is a temporal delta.
  std::vector<std::uint8_t> block_modes;
};

struct CompressOptions {
  Engine engine = Engine::SzLorenzo;
  /// Prediction scheme for the SzLorenzo engine (Lorenzo = the paper's
  /// SZ 1.4 substrate; HybridRegression = SZ 2.x-style per-block choice).
  sz::Predictor sz_predictor = sz::Predictor::Lorenzo;
  std::uint32_t quantization_bins = 65536;
  lossless::Method backend = lossless::Method::Deflate;
  unsigned haar_levels = 4;
  std::size_t dct_block = 8;
  /// Per-block error-budget allocation (block pipeline only).
  BudgetMode budget = BudgetMode::Uniform;
  /// Block-parallel pipeline execution; disabled by default (serial codecs).
  /// The registry-only engines (Interp / ZfpRate / Store) always route
  /// through the block pipeline regardless of these knobs.
  ParallelOptions parallel;
  /// When set, range-derived control modes (fixed-PSNR / rel / nrmse)
  /// resolve their absolute budget — and the header's recorded
  /// value_range — from THIS range instead of the range of the values
  /// being compressed. The temporal layer compresses a composite
  /// delta/raw field whose error contract is stated against the ORIGINAL
  /// snapshot; overriding with the original's range keeps the fixed-PSNR
  /// guarantee and the achieved-PSNR ledger anchored to it.
  std::optional<double> value_range_override;
  /// FPBK v4 chain metadata (temporal subsystem only).
  TemporalLink temporal;
};

struct CompressResult {
  std::vector<std::uint8_t> stream;
  ControlRequest request;
  /// Analytical PSNR prediction from the distortion model (Eq. 6/7);
  /// NaN for modes where the model does not apply.
  double predicted_psnr_db = 0.0;
  /// Measured PSNR of the emitted stream, from the exact SSE the codec
  /// tracked at compress time (recorded per block in the FPBK v2 index on
  /// the pipeline path; computed from the recon buffer / decode replay on
  /// the serial paths). NaN only where it is not tracked (serial
  /// PointwiseRelative mode); +inf for a lossless result.
  double achieved_psnr_db = std::numeric_limits<double>::quiet_NaN();
  /// Value-range relative bound actually used (fixed-PSNR / relative modes).
  double rel_bound_used = 0.0;
  /// Block layout of the emitted FPBK container, straight from the plan
  /// (0 / empty on the serial flat-stream paths) — callers never need to
  /// re-parse the archive just to describe it.
  std::uint64_t block_count = 0;
  std::vector<std::size_t> tile;  ///< per-axis tile extents, C order
  sz::CompressionInfo info;
};

/// Compress one field under any control mode. FixedRate routes through the
/// block pipeline's per-block rate bisection (core/pipeline.h); the other
/// modes resolve analytically.
///
/// INTERNAL engine entry point: the public surface is the fpsnr::Session
/// facade (include/fpsnr/session.h), which routes through this function for
/// the one mode without a block container (serial pointwise-relative) and
/// emits byte-identical archives for equivalent options. The former
/// convenience shims (compress_fixed_psnr / verify) have been removed.
template <typename T>
CompressResult compress(std::span<const T> values, const data::Dims& dims,
                        const ControlRequest& request,
                        const CompressOptions& options = {});

/// Decompress a stream produced by compress() with any engine (the stream
/// is self-describing via its magic bytes). Internal, like compress().
template <typename T>
sz::Decompressed<T> decompress(std::span<const std::uint8_t> stream);

extern template CompressResult compress<float>(std::span<const float>,
                                               const data::Dims&,
                                               const ControlRequest&,
                                               const CompressOptions&);
extern template CompressResult compress<double>(std::span<const double>,
                                                const data::Dims&,
                                                const ControlRequest&,
                                                const CompressOptions&);
extern template sz::Decompressed<float> decompress<float>(
    std::span<const std::uint8_t>);
extern template sz::Decompressed<double> decompress<double>(
    std::span<const std::uint8_t>);

}  // namespace fpsnr::core
