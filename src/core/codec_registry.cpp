#include "core/codec_registry.h"

#include <algorithm>
#include <stdexcept>

#include "io/bitstream.h"
#include "sz/codec.h"
#include "transform/transform_codec.h"

namespace fpsnr::core {

namespace {

double sse_budget_for(std::size_t value_count, double eb_abs) {
  // Uniform midpoint quantization with bin width 2*eb: per-value MSE is
  // (2*eb)^2 / 12 = eb^2 / 3 (Eq. 6), so a block of n values owns an SSE
  // budget of n * eb^2 / 3.
  return static_cast<double>(value_count) * eb_abs * eb_abs / 3.0;
}

/// Predictor path: Lorenzo / hybrid-regression SZ codec with an absolute
/// bound. Pointwise |err| <= eb_abs holds in addition to the budget.
class SzBlockCodec final : public BlockCodec {
 public:
  std::string_view name() const override { return "sz-lorenzo"; }
  bool pointwise_bounded() const override { return true; }

  std::vector<std::uint8_t> compress(std::span<const float> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  std::vector<std::uint8_t> compress(std::span<const double> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<float> out) const override {
    decompress_impl(block, out);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<double> out) const override {
    decompress_impl(block, out);
  }

 private:
  template <typename T>
  std::vector<std::uint8_t> compress_impl(std::span<const T> values,
                                          const data::Dims& dims,
                                          const BlockParams& params,
                                          BlockInfo* info) const {
    sz::Params p;
    p.mode = sz::ErrorBoundMode::Absolute;
    p.bound = params.eb_abs;
    p.predictor = params.predictor;
    p.quantization_bins = params.quantization_bins;
    p.backend = params.backend;
    sz::CompressionInfo ci;
    auto bytes = sz::compress<T>(values, dims, p, &ci);
    if (info) {
      info->value_count = values.size();
      info->outlier_count = ci.outlier_count;
      info->compressed_bytes = bytes.size();
      info->sse_budget = sse_budget_for(values.size(), params.eb_abs);
    }
    return bytes;
  }

  template <typename T>
  void decompress_impl(std::span<const std::uint8_t> block,
                       std::span<T> out) const {
    auto d = sz::decompress<T>(block);
    if (d.values.size() != out.size())
      throw io::StreamError("block codec: slab size mismatch");
    std::copy(d.values.begin(), d.values.end(), out.begin());
  }
};

/// Transform path: orthogonal Haar DWT or block DCT with coefficient bin
/// width 2*eb_abs. Only the aggregate (PSNR) budget is guaranteed.
class TransformBlockCodec final : public BlockCodec {
 public:
  explicit TransformBlockCodec(transform::Kind kind) : kind_(kind) {}

  std::string_view name() const override {
    return kind_ == transform::Kind::HaarMultiLevel ? "transform-haar"
                                                    : "transform-dct";
  }
  bool pointwise_bounded() const override { return false; }

  std::vector<std::uint8_t> compress(std::span<const float> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  std::vector<std::uint8_t> compress(std::span<const double> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<float> out) const override {
    decompress_impl(block, out);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<double> out) const override {
    decompress_impl(block, out);
  }

 private:
  template <typename T>
  std::vector<std::uint8_t> compress_impl(std::span<const T> values,
                                          const data::Dims& dims,
                                          const BlockParams& params,
                                          BlockInfo* info) const {
    transform::Params p;
    p.kind = kind_;
    p.bin_width = 2.0 * params.eb_abs;
    p.quantization_bins = params.quantization_bins;
    p.haar_levels = params.haar_levels;
    p.dct_block = params.dct_block;
    p.backend = params.backend;
    transform::Info ti;
    auto bytes = transform::compress<T>(values, dims, p, &ti);
    if (info) {
      info->value_count = values.size();
      info->outlier_count = ti.outlier_count;
      info->compressed_bytes = bytes.size();
      info->sse_budget = sse_budget_for(values.size(), params.eb_abs);
    }
    return bytes;
  }

  template <typename T>
  void decompress_impl(std::span<const std::uint8_t> block,
                       std::span<T> out) const {
    auto d = transform::decompress<T>(block);
    if (d.values.size() != out.size())
      throw io::StreamError("block codec: slab size mismatch");
    std::copy(d.values.begin(), d.values.end(), out.begin());
  }

  transform::Kind kind_;
};

}  // namespace

CodecRegistry::CodecRegistry() {
  add(kCodecSzLorenzo, std::make_unique<SzBlockCodec>());
  add(kCodecTransformHaar,
      std::make_unique<TransformBlockCodec>(transform::Kind::HaarMultiLevel));
  add(kCodecTransformDct,
      std::make_unique<TransformBlockCodec>(transform::Kind::BlockDct));
}

CodecRegistry& CodecRegistry::instance() {
  static CodecRegistry registry;
  return registry;
}

void CodecRegistry::add(CodecId id, std::unique_ptr<BlockCodec> codec) {
  if (!codec) throw std::invalid_argument("CodecRegistry: null codec");
  if (slots_.size() <= id) slots_.resize(static_cast<std::size_t>(id) + 1);
  slots_[id] = std::move(codec);
}

const BlockCodec& CodecRegistry::at(CodecId id) const {
  const BlockCodec* codec = find(id);
  if (!codec)
    throw std::out_of_range("CodecRegistry: unknown codec id " +
                            std::to_string(id));
  return *codec;
}

const BlockCodec* CodecRegistry::find(CodecId id) const {
  if (id >= slots_.size()) return nullptr;
  return slots_[id].get();
}

std::vector<CodecId> CodecRegistry::ids() const {
  std::vector<CodecId> out;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i]) out.push_back(static_cast<CodecId>(i));
  return out;
}

}  // namespace fpsnr::core
