#include "core/codec_registry.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "io/bitstream.h"
#include "io/bytebuffer.h"
#include "sz/codec.h"
#include "sz/interp.h"
#include "transform/fixed_rate.h"
#include "transform/transform_codec.h"

namespace fpsnr::core {

namespace {

double sse_budget_for(std::size_t value_count, double eb_abs) {
  // Uniform midpoint quantization with bin width 2*eb: per-value MSE is
  // (2*eb)^2 / 12 = eb^2 / 3 (Eq. 6), so a block of n values owns an SSE
  // budget of n * eb^2 / 3.
  return static_cast<double>(value_count) * eb_abs * eb_abs / 3.0;
}

/// Predictor path: Lorenzo / hybrid-regression SZ codec with an absolute
/// bound. Pointwise |err| <= eb_abs holds in addition to the budget.
class SzBlockCodec final : public BlockCodec {
 public:
  std::string_view name() const override { return "sz-lorenzo"; }
  bool pointwise_bounded() const override { return true; }

  std::vector<std::uint8_t> compress(std::span<const float> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  std::vector<std::uint8_t> compress(std::span<const double> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<float> out) const override {
    decompress_impl(block, out);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<double> out) const override {
    decompress_impl(block, out);
  }

 private:
  template <typename T>
  std::vector<std::uint8_t> compress_impl(std::span<const T> values,
                                          const data::Dims& dims,
                                          const BlockParams& params,
                                          BlockInfo* info) const {
    sz::Params p;
    p.mode = sz::ErrorBoundMode::Absolute;
    p.bound = params.eb_abs;
    p.predictor = params.predictor;
    p.quantization_bins = params.quantization_bins;
    p.backend = params.backend;
    sz::CompressionInfo ci;
    auto bytes = sz::compress<T>(values, dims, p, &ci);
    if (info) {
      info->value_count = values.size();
      info->outlier_count = ci.outlier_count;
      info->compressed_bytes = bytes.size();
      info->sse_budget = sse_budget_for(values.size(), params.eb_abs);
      info->achieved_sse = ci.achieved_sse;
    }
    return bytes;
  }

  template <typename T>
  void decompress_impl(std::span<const std::uint8_t> block,
                       std::span<T> out) const {
    auto d = sz::decompress<T>(block);
    if (d.values.size() != out.size())
      throw io::StreamError("block codec: slab size mismatch");
    std::copy(d.values.begin(), d.values.end(), out.begin());
  }
};

/// Transform path: orthogonal Haar DWT or block DCT with coefficient bin
/// width 2*eb_abs. Only the aggregate (PSNR) budget is guaranteed.
class TransformBlockCodec final : public BlockCodec {
 public:
  explicit TransformBlockCodec(transform::Kind kind) : kind_(kind) {}

  std::string_view name() const override {
    return kind_ == transform::Kind::HaarMultiLevel ? "transform-haar"
                                                    : "transform-dct";
  }
  bool pointwise_bounded() const override { return false; }

  std::vector<std::uint8_t> compress(std::span<const float> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  std::vector<std::uint8_t> compress(std::span<const double> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<float> out) const override {
    decompress_impl(block, out);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<double> out) const override {
    decompress_impl(block, out);
  }

 private:
  template <typename T>
  std::vector<std::uint8_t> compress_impl(std::span<const T> values,
                                          const data::Dims& dims,
                                          const BlockParams& params,
                                          BlockInfo* info) const {
    transform::Params p;
    p.kind = kind_;
    p.bin_width = 2.0 * params.eb_abs;
    p.quantization_bins = params.quantization_bins;
    p.haar_levels = params.haar_levels;
    p.dct_block = params.dct_block;
    p.backend = params.backend;
    transform::Info ti;
    auto bytes = transform::compress<T>(values, dims, p, &ti);
    if (info) {
      info->value_count = values.size();
      info->outlier_count = ti.outlier_count;
      info->compressed_bytes = bytes.size();
      info->sse_budget = sse_budget_for(values.size(), params.eb_abs);
      info->achieved_sse = ti.achieved_sse;
    }
    return bytes;
  }

  template <typename T>
  void decompress_impl(std::span<const std::uint8_t> block,
                       std::span<T> out) const {
    auto d = transform::decompress<T>(block);
    if (d.values.size() != out.size())
      throw io::StreamError("block codec: slab size mismatch");
    std::copy(d.values.begin(), d.values.end(), out.begin());
  }

  transform::Kind kind_;
};

/// SZ3-style multi-level interpolation predictor (pointwise bounded).
class InterpBlockCodec final : public BlockCodec {
 public:
  std::string_view name() const override { return "interp"; }
  bool pointwise_bounded() const override { return true; }

  std::vector<std::uint8_t> compress(std::span<const float> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  std::vector<std::uint8_t> compress(std::span<const double> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<float> out) const override {
    decompress_impl(block, out);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<double> out) const override {
    decompress_impl(block, out);
  }

 private:
  template <typename T>
  std::vector<std::uint8_t> compress_impl(std::span<const T> values,
                                          const data::Dims& dims,
                                          const BlockParams& params,
                                          BlockInfo* info) const {
    sz::InterpParams p;
    p.eb_abs = params.eb_abs;
    p.quantization_bins = params.quantization_bins;
    p.backend = params.backend;
    sz::InterpInfo ii;
    auto bytes = sz::interp_compress<T>(values, dims, p, &ii);
    if (info) {
      info->value_count = values.size();
      info->outlier_count = ii.outlier_count;
      info->compressed_bytes = bytes.size();
      info->sse_budget = sse_budget_for(values.size(), params.eb_abs);
      info->achieved_sse = ii.achieved_sse;
    }
    return bytes;
  }

  template <typename T>
  void decompress_impl(std::span<const std::uint8_t> block,
                       std::span<T> out) const {
    auto d = sz::interp_decompress<T>(block);
    if (d.values.size() != out.size())
      throw io::StreamError("block codec: slab size mismatch");
    std::copy(d.values.begin(), d.values.end(), out.begin());
  }
};

/// ZFP-style fixed-rate bit-packed DCT (aggregate budget only).
class ZfpRateBlockCodec final : public BlockCodec {
 public:
  std::string_view name() const override { return "zfpr"; }
  bool pointwise_bounded() const override { return false; }

  std::vector<std::uint8_t> compress(std::span<const float> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  std::vector<std::uint8_t> compress(std::span<const double> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<float> out) const override {
    decompress_impl(block, out);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<double> out) const override {
    decompress_impl(block, out);
  }

 private:
  template <typename T>
  std::vector<std::uint8_t> compress_impl(std::span<const T> values,
                                          const data::Dims& dims,
                                          const BlockParams& params,
                                          BlockInfo* info) const {
    transform::FixedRateParams p;
    p.eb_abs = params.eb_abs;
    p.dct_block = params.dct_block;
    transform::FixedRateInfo fi;
    auto bytes = transform::fixed_rate_compress<T>(values, dims, p, &fi);
    if (info) {
      info->value_count = values.size();
      info->outlier_count = fi.escaped_groups;
      info->compressed_bytes = bytes.size();
      info->sse_budget = sse_budget_for(values.size(), params.eb_abs);
      info->achieved_sse = fi.achieved_sse;
    }
    return bytes;
  }

  template <typename T>
  void decompress_impl(std::span<const std::uint8_t> block,
                       std::span<T> out) const {
    auto d = transform::fixed_rate_decompress<T>(block);
    if (d.values.size() != out.size())
      throw io::StreamError("block codec: slab size mismatch");
    std::copy(d.values.begin(), d.values.end(), out.begin());
  }
};

// --- Store passthrough ------------------------------------------------------
//
// Raw IEEE bytes behind a tiny self-describing header. Lossless, so its
// achieved SSE is exactly zero and any error budget is trivially met. The
// engine falls back to it per block when the primary codec's output is not
// smaller than this encoding — white-noise fields therefore never expand
// beyond raw size plus the fixed header overhead.

constexpr std::uint8_t kStoreMagic[4] = {'F', 'P', 'S', 'T'};
constexpr std::uint8_t kStoreVersion = 1;

class StoreBlockCodec final : public BlockCodec {
 public:
  std::string_view name() const override { return "store"; }
  bool pointwise_bounded() const override { return true; }

  std::vector<std::uint8_t> compress(std::span<const float> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  std::vector<std::uint8_t> compress(std::span<const double> values,
                                     const data::Dims& dims,
                                     const BlockParams& params,
                                     BlockInfo* info) const override {
    return compress_impl(values, dims, params, info);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<float> out) const override {
    decompress_impl(block, out);
  }
  void decompress(std::span<const std::uint8_t> block,
                  std::span<double> out) const override {
    decompress_impl(block, out);
  }

 private:
  template <typename T>
  std::vector<std::uint8_t> compress_impl(std::span<const T> values,
                                          const data::Dims& dims,
                                          const BlockParams& params,
                                          BlockInfo* info) const {
    if (values.size() != dims.count())
      throw std::invalid_argument("fpst: value count does not match dims");
    io::ByteWriter out;
    out.put_bytes(std::span<const std::uint8_t>(kStoreMagic, 4));
    out.put<std::uint8_t>(kStoreVersion);
    out.put<std::uint8_t>(std::is_same_v<T, double> ? 1 : 0);
    out.put_varint(values.size());
    out.put_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(values.data()),
        values.size() * sizeof(T)));
    auto bytes = out.take();
    if (info) {
      info->value_count = values.size();
      info->outlier_count = 0;
      info->compressed_bytes = bytes.size();
      info->sse_budget = sse_budget_for(values.size(), params.eb_abs);
      info->achieved_sse = 0.0;
    }
    return bytes;
  }

  template <typename T>
  void decompress_impl(std::span<const std::uint8_t> block,
                       std::span<T> out) const {
    io::ByteReader reader(block);
    const auto magic = reader.get_bytes(4);
    if (!std::equal(magic.begin(), magic.end(), kStoreMagic))
      throw io::StreamError("fpst: bad magic");
    if (reader.get<std::uint8_t>() != kStoreVersion)
      throw io::StreamError("fpst: unsupported version");
    const std::uint8_t scalar = reader.get<std::uint8_t>();
    if (scalar != (std::is_same_v<T, double> ? 1 : 0))
      throw io::StreamError("fpst: scalar type mismatch");
    const std::uint64_t count = reader.get_varint();
    if (count != out.size())
      throw io::StreamError("block codec: slab size mismatch");
    const auto raw = reader.get_bytes(count * sizeof(T));
    if (!reader.exhausted()) throw io::StreamError("fpst: trailing bytes");
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
  }
};

}  // namespace

bool is_store_block_stream(std::span<const std::uint8_t> block) {
  return block.size() >= 4 &&
         std::equal(kStoreMagic, kStoreMagic + 4, block.begin());
}

std::size_t store_encoded_size(std::size_t value_count,
                               std::size_t scalar_bytes) {
  std::size_t varint_len = 1;
  for (std::uint64_t v = value_count; v >= 0x80; v >>= 7) ++varint_len;
  // magic + version + scalar + varint count + raw payload — mirrors
  // StoreBlockCodec::compress_impl above.
  return sizeof(kStoreMagic) + 1 + 1 + varint_len +
         value_count * scalar_bytes;
}

CodecRegistry::CodecRegistry() {
  add(kCodecSzLorenzo, std::make_unique<SzBlockCodec>());
  add(kCodecTransformHaar,
      std::make_unique<TransformBlockCodec>(transform::Kind::HaarMultiLevel));
  add(kCodecTransformDct,
      std::make_unique<TransformBlockCodec>(transform::Kind::BlockDct));
  add(kCodecInterp, std::make_unique<InterpBlockCodec>());
  add(kCodecZfpRate, std::make_unique<ZfpRateBlockCodec>());
  add(kCodecStore, std::make_unique<StoreBlockCodec>());
  // Historical CLI short names; resolved through the same table as the
  // primary names so `--engine sz` and `--engine sz-lorenzo` cannot drift.
  add_alias("sz", kCodecSzLorenzo);
  add_alias("lorenzo", kCodecSzLorenzo);
  add_alias("haar", kCodecTransformHaar);
  add_alias("dct", kCodecTransformDct);
}

CodecRegistry& CodecRegistry::instance() {
  static CodecRegistry registry;
  return registry;
}

void CodecRegistry::add(CodecId id, std::unique_ptr<BlockCodec> codec) {
  if (!codec) throw std::invalid_argument("CodecRegistry: null codec");
  if (slots_.size() <= id) slots_.resize(static_cast<std::size_t>(id) + 1);
  slots_[id] = std::move(codec);
}

void CodecRegistry::add_alias(std::string_view alias, CodecId id) {
  if (!find(id))
    throw std::out_of_range("CodecRegistry: alias '" + std::string(alias) +
                            "' targets unknown codec id " + std::to_string(id));
  for (auto& [name, target] : aliases_)
    if (name == alias) {
      target = id;  // re-registration wins, like add()
      return;
    }
  aliases_.emplace_back(std::string(alias), id);
}

const BlockCodec& CodecRegistry::at(CodecId id) const {
  const BlockCodec* codec = find(id);
  if (!codec)
    throw std::out_of_range("CodecRegistry: unknown codec id " +
                            std::to_string(id));
  return *codec;
}

const BlockCodec* CodecRegistry::find(CodecId id) const {
  if (id >= slots_.size()) return nullptr;
  return slots_[id].get();
}

const BlockCodec* CodecRegistry::find(std::string_view name) const {
  for (const auto& slot : slots_)
    if (slot && slot->name() == name) return slot.get();
  for (const auto& [alias, id] : aliases_)
    if (alias == name) return find(id);
  return nullptr;
}

CodecId CodecRegistry::id_of(std::string_view name) const {
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i] && slots_[i]->name() == name) return static_cast<CodecId>(i);
  for (const auto& [alias, id] : aliases_)
    if (alias == name) return id;
  std::string msg = "CodecRegistry: unknown codec '" + std::string(name) +
                    "' (registered:";
  for (std::string_view n : names()) msg += " " + std::string(n);
  msg += ")";
  throw std::out_of_range(msg);
}

std::vector<CodecId> CodecRegistry::ids() const {
  std::vector<CodecId> out;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i]) out.push_back(static_cast<CodecId>(i));
  return out;
}

std::vector<std::string_view> CodecRegistry::names() const {
  std::vector<std::string_view> out;
  for (const auto& slot : slots_)
    if (slot) out.push_back(slot->name());
  return out;
}

std::vector<std::string_view> CodecRegistry::aliases_of(CodecId id) const {
  std::vector<std::string_view> out;
  for (const auto& [alias, target] : aliases_)
    if (target == id) out.push_back(alias);
  return out;
}

std::string CodecRegistry::listing() const {
  std::string out;
  for (CodecId id : ids()) {
    out += "  " + std::to_string(id) + "  " + std::string(at(id).name());
    const auto aliases = aliases_of(id);
    if (!aliases.empty()) {
      out += " (aliases:";
      for (std::string_view a : aliases) out += " " + std::string(a);
      out += ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace fpsnr::core
