// Dataset-level fixed-PSNR compression — the batch engine behind Fig. 2 /
// Table II and the `compress-batch` CLI.
//
// Every field of a dataset is compressed to the same PSNR target through
// the block-parallel pipeline (core/pipeline.h). The engine plans all
// fields up front, then interleaves the blocks of EVERY field onto one
// global work queue (parallel::WorkQueue): a tiny 2-D slice no longer
// serializes the pool behind a huge 3-D volume's stragglers, and each
// field's FPBK archive is finalized by whichever worker completes its last
// block. Because the per-field plan and per-block bytes depend only on the
// data and options — never on the schedule — every field's archive is
// byte-identical to a single-field compress_blocked/compress_to_file run
// at any thread count, and the per-field fixed-PSNR guarantee is exactly
// the single-field one.
//
// DEPRECATED as public surface: external callers should use
// fpsnr::Session::compress_batch (include/fpsnr/session.h), which wraps
// this engine with byte-identical per-field archives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/compressor.h"
#include "data/dataset.h"
#include "metrics/stats.h"

namespace fpsnr::core {

/// Outcome of one field at one target PSNR.
struct FieldOutcome {
  std::string field_name;
  double target_psnr_db = 0.0;
  double predicted_psnr_db = 0.0;  ///< analytical (Eq. 7)
  double actual_psnr_db = 0.0;     ///< measured (see BatchOptions::verify)
  double rel_bound_used = 0.0;
  double compression_ratio = 0.0;
  double bit_rate = 0.0;
  double max_abs_error = 0.0;  ///< 0 when BatchOptions::verify is off
  std::size_t outlier_count = 0;
  std::size_t compressed_bytes = 0;
  bool met_target = false;  ///< actual >= target (paper's definition of "meet")
  /// The field's FPBK archive, kept only when BatchOptions::keep_streams is
  /// set and the batch ran in-memory (always empty in streaming mode).
  std::vector<std::uint8_t> stream;
  /// Path of the field's streamed archive (BatchOptions::stream_dir mode);
  /// empty for in-memory runs.
  std::string archive_path;
};

/// Aggregate over all fields of a dataset at one target PSNR.
struct BatchResult {
  std::string dataset_name;
  double target_psnr_db = 0.0;
  std::vector<FieldOutcome> fields;

  /// AVG / STDEV of the actual PSNRs — the two columns of Table II.
  metrics::RunningStats psnr_stats() const;
  /// Fraction of fields whose actual PSNR met (>=) the target.
  double met_fraction() const;
  /// Mean |actual - target| deviation in dB.
  double mean_abs_deviation_db() const;
};

struct BatchOptions {
  /// Per-field codec options. The batch engine always routes through the
  /// block pipeline (parallel.block_pipeline is forced on); tile /
  /// engine / budget pass through to every field's plan.
  CompressOptions compress = {};
  /// Concurrent executors draining the global queue (the calling thread
  /// plus up to threads-1 shared-pool workers); <= 1 = fully sequential.
  /// Per-field archives are byte-identical for every value — only
  /// wall-clock changes.
  std::size_t threads = 0;
  /// true (default): interleave all fields' blocks on one global work
  /// queue. false: the pre-queue behavior — fields run to completion one
  /// after another, each fanning its own blocks out with `threads`
  /// workers; kept as the comparison baseline (bench_batch_queue) and for
  /// peak-memory-sensitive streaming runs (one field in flight at a time).
  bool global_queue = true;
  /// true (default): decompress each archive and measure the actual PSNR /
  /// max error independently. false: skip the decode pass and report the
  /// exact achieved PSNR the FPBK v2 per-block SSE column records at
  /// compress time (identical to the decoded measurement by construction;
  /// max_abs_error is left 0).
  bool verify = true;
  /// When non-empty: stream every field's archive to
  /// `<stream_dir>/<field>.fpbk` (io::StreamingArchiveWriter — peak memory
  /// O(in-flight blocks) per field). The directory is created if needed.
  std::string stream_dir;
  /// Keep each field's archive bytes in FieldOutcome::stream (in-memory
  /// runs only; streaming archives live at FieldOutcome::archive_path).
  bool keep_streams = false;
  /// Streaming mode holds one open file descriptor per in-flight field
  /// (every writer's `.partial` opens at plan time), so a huge manifest
  /// could exhaust the process fd limit. Fields are therefore fed to the
  /// queue in waves of at most this many; 0 picks the default (256 —
  /// comfortably under a 1024 ulimit, still far more interleaving than
  /// the pool has workers). In-memory runs ignore it.
  std::size_t max_open_streams = 0;
};

/// Case-folded copy of an archive/field name, the single definition of
/// "these two names collide" shared by the batch engine's stream-path
/// guard and the CLI's manifest validation: 'U' and 'u' are one file on
/// default macOS/Windows volumes, so collision checks must fold case
/// everywhere or accept/reject sets diverge per platform. ASCII-only by
/// design — filesystem case folding is Unicode-wide, so names that reach
/// the filesystem are restricted to ASCII (archive_name_ascii) rather
/// than chasing per-volume Unicode folding rules.
std::string fold_archive_name(std::string_view name);

/// True when `name` contains only printable ASCII — the precondition for
/// fold_archive_name's collision guarantee to cover the filesystem's.
bool archive_name_ascii(std::string_view name);

/// Compress + evaluate every field of `dataset` at `target_psnr_db`.
BatchResult run_fixed_psnr_batch(const data::Dataset& dataset, double target_psnr_db,
                                 const BatchOptions& options = {});

/// Span-backed variant: the fields are borrowed views, so a caller that
/// already owns the storage (the Session facade, a service buffer) runs
/// the batch without duplicating the dataset. The Dataset overload
/// delegates here.
BatchResult run_fixed_psnr_batch(std::span<const data::FieldView> fields,
                                 std::string_view dataset_name,
                                 double target_psnr_db,
                                 const BatchOptions& options = {});

/// Sweep several PSNR targets (one BatchResult per target) — a Table II row
/// block for one dataset.
std::vector<BatchResult> run_fixed_psnr_sweep(const data::Dataset& dataset,
                                              std::span<const double> targets,
                                              const BatchOptions& options = {});

}  // namespace fpsnr::core
