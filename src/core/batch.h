// Dataset-level fixed-PSNR evaluation — the harness behind Fig. 2 and
// Table II.
//
// For every field of a dataset: compress at the target PSNR, decompress,
// measure the achieved PSNR, and aggregate AVG / STDEV / met-target
// statistics across fields. Fields are processed concurrently on a thread
// pool; each field's codec run stays sequential so outputs are
// deterministic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/compressor.h"
#include "data/dataset.h"
#include "metrics/stats.h"

namespace fpsnr::core {

/// Outcome of one field at one target PSNR.
struct FieldOutcome {
  std::string field_name;
  double target_psnr_db = 0.0;
  double predicted_psnr_db = 0.0;  ///< analytical (Eq. 7)
  double actual_psnr_db = 0.0;     ///< measured after decompression
  double rel_bound_used = 0.0;
  double compression_ratio = 0.0;
  double bit_rate = 0.0;
  double max_abs_error = 0.0;
  std::size_t outlier_count = 0;
  bool met_target = false;  ///< actual >= target (paper's definition of "meet")
};

/// Aggregate over all fields of a dataset at one target PSNR.
struct BatchResult {
  std::string dataset_name;
  double target_psnr_db = 0.0;
  std::vector<FieldOutcome> fields;

  /// AVG / STDEV of the actual PSNRs — the two columns of Table II.
  metrics::RunningStats psnr_stats() const;
  /// Fraction of fields whose actual PSNR met (>=) the target.
  double met_fraction() const;
  /// Mean |actual - target| deviation in dB.
  double mean_abs_deviation_db() const;
};

struct BatchOptions {
  CompressOptions compress = {};
  /// Concurrent fields, fanned out on the process-wide shared pool
  /// (parallel/shared_pool.h); <= 1 = sequential. Per-field results are
  /// identical to a serial run — only wall-clock changes.
  std::size_t threads = 0;
};

/// Compress + verify every field of `dataset` at `target_psnr_db`.
BatchResult run_fixed_psnr_batch(const data::Dataset& dataset, double target_psnr_db,
                                 const BatchOptions& options = {});

/// Sweep several PSNR targets (one BatchResult per target) — a Table II row
/// block for one dataset.
std::vector<BatchResult> run_fixed_psnr_sweep(const data::Dataset& dataset,
                                              std::span<const double> targets,
                                              const BatchOptions& options = {});

}  // namespace fpsnr::core
