#include "core/tile_layout.h"

#include <stdexcept>

namespace fpsnr::core {

std::vector<std::size_t> auto_tile(const data::Dims& dims) {
  const std::size_t rank = dims.rank();
  // Near-cubic tile with volume <= kAutoBlockValues. An axis shorter than
  // the cube edge is clamped to its full extent and its unused volume is
  // redistributed to the remaining axes, so a 4x512x512 pancake tiles as
  // {4, 90, 90} (32400 values) rather than an undersized {4, 32, 32} cube
  // whose per-block overhead would dominate. Pure integer search (no
  // floating-point roots), so the default is bit-stable across platforms:
  // unclamped ranks keep edges 32768 / 181 / 32 for ranks 1 / 2 / 3.
  std::vector<std::size_t> tile(rank, 0);
  std::size_t budget = kAutoBlockValues;
  std::size_t open = rank;  // axes not yet clamped
  for (;;) {
    // Largest edge with edge^open <= budget.
    auto fits = [&](std::size_t e) {
      std::size_t v = 1;
      for (std::size_t i = 0; i < open; ++i) {
        if (v > budget / e) return false;
        v *= e;
      }
      return v <= budget;
    };
    std::size_t edge = 1;
    while (fits(edge + 1)) ++edge;
    bool clamped = false;
    for (std::size_t a = 0; a < rank; ++a) {
      if (tile[a] == 0 && dims[a] < edge) {
        tile[a] = dims[a];
        budget /= dims[a];
        --open;
        clamped = true;
      }
    }
    if (!clamped || open == 0) {
      for (std::size_t a = 0; a < rank; ++a)
        if (tile[a] == 0) tile[a] = edge;
      return tile;
    }
  }
}

TileLayout make_layout(const data::Dims& dims,
                       std::span<const std::size_t> requested) {
  const std::size_t rank = dims.rank();
  if (requested.size() > rank)
    throw std::invalid_argument(
        "block pipeline: tile rank exceeds the field rank");
  TileLayout l;
  if (requested.empty()) {
    l.tile = auto_tile(dims);
  } else {
    l.tile.resize(rank);
    for (std::size_t a = 0; a < rank; ++a) {
      // A 0 entry (or a missing trailing axis) spans the field on that
      // axis, so {r} is exactly the legacy axis-0 slab of r rows.
      const std::size_t want = a < requested.size() ? requested[a] : 0;
      l.tile[a] = want == 0 ? dims[a]
                            : std::clamp<std::size_t>(want, 1, dims[a]);
    }
  }
  l.grid.resize(rank);
  l.block_count = 1;
  for (std::size_t a = 0; a < rank; ++a) {
    l.grid[a] = (dims[a] + l.tile[a] - 1) / l.tile[a];
    l.block_count *= l.grid[a];
    if (a > 0 && l.grid[a] != 1) l.slabbed = false;
  }
  l.row_stride = dims.count() / dims[0];
  return l;
}

TileRegion tile_region(const TileLayout& l, const data::Dims& dims,
                       std::size_t b) {
  const std::size_t rank = dims.rank();
  TileRegion r;
  r.count = 1;
  for (std::size_t a = rank; a-- > 0;) {
    const std::size_t c = b % l.grid[a];
    b /= l.grid[a];
    r.start[a] = c * l.tile[a];
    r.ext[a] = std::min(l.tile[a], dims[a] - r.start[a]);
    r.count *= r.ext[a];
  }
  return r;
}

}  // namespace fpsnr::core
