#include "core/psnr_control.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/distortion_model.h"

namespace fpsnr::core {

std::string_view control_mode_name(ControlMode m) {
  switch (m) {
    case ControlMode::Absolute: return "abs";
    case ControlMode::ValueRangeRelative: return "vr-rel";
    case ControlMode::PointwiseRelative: return "pw-rel";
    case ControlMode::FixedPsnr: return "fixed-psnr";
    case ControlMode::FixedRate: return "fixed-rate";
    case ControlMode::FixedNrmse: return "fixed-nrmse";
  }
  return "unknown";
}

ResolvedControl resolve_control(const ControlRequest& request) {
  ResolvedControl out;
  switch (request.mode) {
    case ControlMode::Absolute:
      if (!(request.value > 0.0))
        throw std::invalid_argument("resolve_control: absolute bound must be > 0");
      out.sz_mode = sz::ErrorBoundMode::Absolute;
      out.sz_bound = request.value;
      // PSNR prediction requires the value range, which is data-dependent;
      // psnr_for_abs_bound can be applied by the caller once vr is known.
      out.predicted_psnr_db = std::numeric_limits<double>::quiet_NaN();
      return out;
    case ControlMode::ValueRangeRelative:
      if (!(request.value > 0.0))
        throw std::invalid_argument("resolve_control: relative bound must be > 0");
      out.sz_mode = sz::ErrorBoundMode::ValueRangeRelative;
      out.sz_bound = request.value;
      out.predicted_psnr_db = psnr_for_rel_bound(request.value);
      return out;
    case ControlMode::PointwiseRelative:
      if (!(request.value > 0.0))
        throw std::invalid_argument("resolve_control: pointwise bound must be > 0");
      out.sz_mode = sz::ErrorBoundMode::PointwiseRelative;
      out.sz_bound = request.value;
      out.predicted_psnr_db = std::numeric_limits<double>::quiet_NaN();
      return out;
    case ControlMode::FixedPsnr: {
      if (!std::isfinite(request.value))
        throw std::invalid_argument("resolve_control: target PSNR must be finite");
      out.sz_mode = sz::ErrorBoundMode::ValueRangeRelative;
      out.sz_bound = rel_bound_for_psnr(request.value);  // Eq. (8)
      out.predicted_psnr_db = psnr_for_rel_bound(out.sz_bound);
      return out;
    }
    case ControlMode::FixedNrmse: {
      // NRMSE is PSNR in linear form: PSNR = -20 log10(NRMSE), so the same
      // Eq. (8) machinery applies after a change of variable.
      if (!(request.value > 0.0) || !(request.value < 1.0))
        throw std::invalid_argument("resolve_control: NRMSE must be in (0, 1)");
      const double psnr = -20.0 * std::log10(request.value);
      out.sz_mode = sz::ErrorBoundMode::ValueRangeRelative;
      out.sz_bound = rel_bound_for_psnr(psnr);
      out.predicted_psnr_db = psnr;
      return out;
    }
    case ControlMode::FixedRate:
      throw std::invalid_argument(
          "resolve_control: fixed-rate has no closed form; use "
          "core::search_rate (search_baseline.h)");
  }
  throw std::invalid_argument("resolve_control: unknown mode");
}

}  // namespace fpsnr::core
