// Unified error-control front end: resolves any user-facing control request
// (absolute bound, relative bounds, fixed PSNR, fixed rate) into concrete
// codec parameters.
//
// The fixed-PSNR path is the paper's three-step recipe (Section IV):
//   (1) take the user's target PSNR,
//   (2) convert it to a value-range relative bound via Eq. (8),
//   (3) run the unmodified SZ-style compressor with that bound.
// The only overhead over a normal compression pass is one closed-form
// formula evaluation per field.
#pragma once

#include <cstdint>
#include <string_view>

#include "sz/error_mode.h"

namespace fpsnr::core {

enum class ControlMode : std::uint8_t {
  Absolute = 0,          ///< bound value = absolute error bound
  ValueRangeRelative,    ///< bound value = fraction of the value range
  PointwiseRelative,     ///< bound value = fraction of each point's value
  FixedPsnr,             ///< bound value = target PSNR in dB (the paper)
  FixedRate,             ///< bound value = target bits per value (extension)
  FixedNrmse,            ///< bound value = target NRMSE (PSNR in linear form)
};

std::string_view control_mode_name(ControlMode m);

/// A user-facing error-control request.
struct ControlRequest {
  ControlMode mode = ControlMode::FixedPsnr;
  double value = 80.0;  ///< meaning depends on mode (see ControlMode)

  static ControlRequest absolute(double eb) { return {ControlMode::Absolute, eb}; }
  static ControlRequest relative(double eb) {
    return {ControlMode::ValueRangeRelative, eb};
  }
  static ControlRequest pointwise(double eb) {
    return {ControlMode::PointwiseRelative, eb};
  }
  static ControlRequest fixed_psnr(double db) { return {ControlMode::FixedPsnr, db}; }
  static ControlRequest fixed_rate(double bits_per_value) {
    return {ControlMode::FixedRate, bits_per_value};
  }
  static ControlRequest fixed_nrmse(double nrmse) {
    return {ControlMode::FixedNrmse, nrmse};
  }
};

/// Codec-ready parameters plus the model's PSNR prediction.
struct ResolvedControl {
  sz::ErrorBoundMode sz_mode = sz::ErrorBoundMode::ValueRangeRelative;
  double sz_bound = 0.0;
  /// Eq. (6)/(7) prediction of the resulting PSNR; NaN when the model does
  /// not apply (PointwiseRelative mode has no uniform absolute bin width).
  double predicted_psnr_db = 0.0;
};

/// Resolve a request to SZ codec parameters. FixedRate cannot be resolved
/// analytically and throws std::invalid_argument here — use
/// search_baseline.h's rate search instead.
ResolvedControl resolve_control(const ControlRequest& request);

}  // namespace fpsnr::core
