#include "core/search_baseline.h"

#include <cmath>

namespace fpsnr::core {

namespace {

/// One full probe: compress at `rel_bound`, decompress, measure PSNR.
template <typename T>
double probe_psnr(std::span<const T> values, const data::Dims& dims,
                  double rel_bound, const CompressOptions& options,
                  CompressResult* out) {
  CompressResult r =
      compress(values, dims, ControlRequest::relative(rel_bound), options);
  const auto decoded =
      decompress<T>(std::span<const std::uint8_t>(r.stream));
  const metrics::ErrorReport rep =
      metrics::compare<T>(values, decoded.values);
  if (out) *out = std::move(r);
  return rep.psnr_db;
}

}  // namespace

template <typename T>
SearchResult search_fixed_psnr(std::span<const T> values, const data::Dims& dims,
                               double target_psnr_db, const SearchOptions& options) {
  SearchResult sr;
  // PSNR decreases monotonically (in expectation) as the bound grows, so we
  // first expand a bracket [lo_bound, hi_bound] around the target, then
  // bisect in log space (bounds span many decades).
  double lo = options.initial_rel_bound;  // small bound => high PSNR
  double hi = options.initial_rel_bound;

  CompressResult probe;
  double psnr = probe_psnr(values, dims, lo, options.compress, &probe);
  ++sr.compression_passes;
  if (std::abs(psnr - target_psnr_db) <= options.tolerance_db) {
    sr.result = std::move(probe);
    sr.achieved_psnr_db = psnr;
    sr.converged = true;
    return sr;
  }
  if (psnr < target_psnr_db) {
    // Need a tighter bound: shrink lo until PSNR exceeds the target.
    while (sr.compression_passes < options.max_iterations) {
      hi = lo;
      lo /= 16.0;
      psnr = probe_psnr(values, dims, lo, options.compress, &probe);
      ++sr.compression_passes;
      if (psnr >= target_psnr_db) break;
    }
  } else {
    // Bound can be loosened: grow hi until PSNR drops below the target.
    while (sr.compression_passes < options.max_iterations) {
      lo = hi;
      hi *= 16.0;
      psnr = probe_psnr(values, dims, hi, options.compress, &probe);
      ++sr.compression_passes;
      if (psnr <= target_psnr_db) break;
    }
  }

  // Bisect in log space.
  double best_gap = std::abs(psnr - target_psnr_db);
  sr.result = std::move(probe);
  sr.achieved_psnr_db = psnr;
  while (sr.compression_passes < options.max_iterations &&
         best_gap > options.tolerance_db) {
    const double mid = std::sqrt(lo * hi);
    CompressResult mid_probe;
    const double mid_psnr =
        probe_psnr(values, dims, mid, options.compress, &mid_probe);
    ++sr.compression_passes;
    const double gap = std::abs(mid_psnr - target_psnr_db);
    if (gap < best_gap) {
      best_gap = gap;
      sr.result = std::move(mid_probe);
      sr.achieved_psnr_db = mid_psnr;
    }
    if (mid_psnr > target_psnr_db)
      lo = mid;  // still too accurate; loosen
    else
      hi = mid;
  }
  sr.converged = best_gap <= options.tolerance_db;
  return sr;
}

template <typename T>
RateSearchResult search_fixed_rate(std::span<const T> values, const data::Dims& dims,
                                   double target_bits_per_value,
                                   const RateSearchOptions& options) {
  RateSearchResult rr;
  double lo = 1e-12;  // tight bound => high rate
  double hi = 0.5;    // loose bound => low rate

  auto probe = [&](double rel_bound, CompressResult* out) {
    CompressResult r =
        compress(values, dims, ControlRequest::relative(rel_bound), options.compress);
    const double rate = r.info.bit_rate;
    if (out) *out = std::move(r);
    ++rr.compression_passes;
    return rate;
  };

  CompressResult best;
  double best_rate = probe(hi, &best);
  double best_gap = std::abs(best_rate - target_bits_per_value);
  while (rr.compression_passes < options.max_iterations &&
         best_gap > options.tolerance_bits) {
    const double mid = std::sqrt(lo * hi);
    CompressResult mid_res;
    const double rate = probe(mid, &mid_res);
    const double gap = std::abs(rate - target_bits_per_value);
    if (gap < best_gap) {
      best_gap = gap;
      best_rate = rate;
      best = std::move(mid_res);
    }
    if (rate > target_bits_per_value)
      lo = mid;  // too many bits; loosen the bound
    else
      hi = mid;
  }
  rr.result = std::move(best);
  rr.achieved_bits_per_value = best_rate;
  rr.converged = best_gap <= options.tolerance_bits;
  return rr;
}

template SearchResult search_fixed_psnr<float>(std::span<const float>,
                                               const data::Dims&, double,
                                               const SearchOptions&);
template SearchResult search_fixed_psnr<double>(std::span<const double>,
                                                const data::Dims&, double,
                                                const SearchOptions&);
template RateSearchResult search_fixed_rate<float>(std::span<const float>,
                                                   const data::Dims&, double,
                                                   const RateSearchOptions&);
template RateSearchResult search_fixed_rate<double>(std::span<const double>,
                                                    const data::Dims&, double,
                                                    const RateSearchOptions&);

}  // namespace fpsnr::core
