// Search-based error-bound tuning — the *status quo ante* the paper
// replaces (Section I: "users have to run the lossy compressor multiple
// times each with different error-bound settings").
//
// Implements the tedious workflow as an honest baseline: bisection over
// the value-range relative bound, compressing and decompressing at every
// probe until the measured PSNR lands within a tolerance of the target.
// The overhead benchmark contrasts its k full passes against the
// fixed-PSNR mode's single pass.
//
// Also hosts the original fixed-rate extension (whole-field bisection on
// achieved bit rate). Fixed rate is now a first-class pipeline mode —
// Target::FixedRate / ControlRequest::fixed_rate run a parallel per-block
// bisection seeded by a closed-form width census (core/pipeline.h) — so
// search_fixed_rate remains only as the k-full-passes baseline the
// overhead benchmark contrasts against.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/compressor.h"

namespace fpsnr::core {

struct SearchOptions {
  double tolerance_db = 0.5;     ///< |achieved - target| acceptance window
  std::size_t max_iterations = 40;
  double initial_rel_bound = 1e-2;
  CompressOptions compress = {};
};

struct SearchResult {
  CompressResult result;          ///< the accepted compression
  double achieved_psnr_db = 0.0;
  std::size_t compression_passes = 0;    ///< full compress+decompress probes
  bool converged = false;
};

/// Baseline: find a relative bound whose *measured* PSNR hits the target.
template <typename T>
SearchResult search_fixed_psnr(std::span<const T> values, const data::Dims& dims,
                               double target_psnr_db,
                               const SearchOptions& options = {});

struct RateSearchOptions {
  double tolerance_bits = 0.25;  ///< acceptance window on bits/value
  std::size_t max_iterations = 40;
  CompressOptions compress = {};
};

struct RateSearchResult {
  CompressResult result;
  double achieved_bits_per_value = 0.0;
  std::size_t compression_passes = 0;
  bool converged = false;
};

/// Fixed-rate extension: bisection on the relative bound so the compressed
/// stream hits a target bit rate. Rate decreases monotonically as the
/// bound grows, which makes bisection sound.
template <typename T>
RateSearchResult search_fixed_rate(std::span<const T> values, const data::Dims& dims,
                                   double target_bits_per_value,
                                   const RateSearchOptions& options = {});

extern template SearchResult search_fixed_psnr<float>(std::span<const float>,
                                                      const data::Dims&, double,
                                                      const SearchOptions&);
extern template SearchResult search_fixed_psnr<double>(std::span<const double>,
                                                       const data::Dims&, double,
                                                       const SearchOptions&);
extern template RateSearchResult search_fixed_rate<float>(std::span<const float>,
                                                          const data::Dims&, double,
                                                          const RateSearchOptions&);
extern template RateSearchResult search_fixed_rate<double>(std::span<const double>,
                                                           const data::Dims&, double,
                                                           const RateSearchOptions&);

}  // namespace fpsnr::core
