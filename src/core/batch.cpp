#include "core/batch.h"

#include <cctype>
#include <cmath>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/pipeline.h"
#include "metrics/metrics.h"
#include "parallel/shared_pool.h"
#include "parallel/work_queue.h"

namespace fpsnr::core {

metrics::RunningStats BatchResult::psnr_stats() const {
  metrics::RunningStats s;
  for (const FieldOutcome& f : fields) s.add(f.actual_psnr_db);
  return s;
}

double BatchResult::met_fraction() const {
  if (fields.empty()) return 0.0;
  std::size_t met = 0;
  for (const FieldOutcome& f : fields)
    if (f.met_target) ++met;
  return static_cast<double>(met) / static_cast<double>(fields.size());
}

double BatchResult::mean_abs_deviation_db() const {
  if (fields.empty()) return 0.0;
  double acc = 0.0;
  for (const FieldOutcome& f : fields)
    acc += std::abs(f.actual_psnr_db - f.target_psnr_db);
  return acc / static_cast<double>(fields.size());
}

namespace {

/// Streaming target for one field, or "" for in-memory runs. Separators
/// in a field name would escape the directory (':' makes a Windows
/// drive-relative root-name that discards stream_dir); flatten them.
std::string archive_path_for(const BatchOptions& options,
                             const std::string& field_name) {
  if (options.stream_dir.empty()) return {};
  std::string name = field_name;
  for (char& c : name)
    if (c == '/' || c == '\\' || c == ':') c = '_';
  return (std::filesystem::path(options.stream_dir) / (name + ".fpbk"))
      .string();
}

/// Turn one field's finished CompressResult into its FieldOutcome. Runs on
/// whichever worker finalized the field; writes only this field's slot.
void fill_outcome(FieldOutcome& out, const data::FieldView& field,
                  double target_psnr_db, CompressResult cr,
                  const BatchOptions& options, const std::string& path) {
  out.field_name = field.name;
  out.target_psnr_db = target_psnr_db;
  out.predicted_psnr_db = cr.predicted_psnr_db;
  out.rel_bound_used = cr.rel_bound_used;
  out.compression_ratio = cr.info.compression_ratio;
  out.bit_rate = cr.info.bit_rate;
  out.outlier_count = cr.info.outlier_count;
  out.compressed_bytes = cr.info.compressed_bytes;
  out.archive_path = path;
  if (options.verify) {
    // Independent check: decode the archive and measure. Decoding stays
    // single-threaded here — the batch scheduler owns the parallelism.
    const auto decoded = path.empty()
                             ? decompress_blocked<float>(cr.stream, 1)
                             : decompress_file<float>(path, 1);
    const auto rep = metrics::compare<float>(field.span(), decoded.values);
    out.actual_psnr_db = rep.psnr_db;
    out.max_abs_error = rep.max_abs_error;
  } else {
    // The FPBK v2 index records every block's exact achieved SSE, so the
    // compress-time PSNR IS the decoded measurement — no decode needed.
    out.actual_psnr_db = cr.achieved_psnr_db;
  }
  out.met_target = out.actual_psnr_db >= target_psnr_db;
  if (options.keep_streams) out.stream = std::move(cr.stream);
}

}  // namespace

std::string fold_archive_name(std::string_view name) {
  std::string out(name);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool archive_name_ascii(std::string_view name) {
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20 || u > 0x7E) return false;
  }
  return true;
}

BatchResult run_fixed_psnr_batch(const data::Dataset& dataset, double target_psnr_db,
                                 const BatchOptions& options) {
  std::vector<data::FieldView> views;
  views.reserve(dataset.fields.size());
  for (const data::Field& f : dataset.fields)
    views.push_back({f.name, f.dims, f.span()});
  return run_fixed_psnr_batch(views, dataset.name, target_psnr_db, options);
}

BatchResult run_fixed_psnr_batch(std::span<const data::FieldView> fields,
                                 std::string_view dataset_name,
                                 double target_psnr_db,
                                 const BatchOptions& options) {
  BatchResult result;
  result.dataset_name = std::string(dataset_name);
  result.target_psnr_db = target_psnr_db;
  const std::size_t field_count = fields.size();
  result.fields.resize(field_count);
  if (field_count == 0) return result;

  if (!options.stream_dir.empty())
    std::filesystem::create_directories(options.stream_dir);

  // Resolve every field's streaming target up front and reject collisions:
  // name flattening, duplicate field names, or case-folding on the
  // filesystem (fold_archive_name) mapping two fields to one path would
  // race two archive writers on the same file. Conservative on
  // case-sensitive filesystems, but a portability-dependent writer race
  // is worse than a portable rejection.
  std::vector<std::string> paths(field_count);
  for (std::size_t i = 0; i < field_count; ++i) {
    paths[i] = archive_path_for(options, fields[i].name);
    if (paths[i].empty()) continue;
    // ASCII case folding cannot predict how the volume folds Unicode
    // names ("Ä" vs "ä" is one APFS file); keep filesystem-bound names
    // inside the range the collision guard actually covers.
    if (!archive_name_ascii(fields[i].name))
      throw std::invalid_argument(
          "batch: field '" + fields[i].name +
          "' cannot be streamed: archive names must be printable ASCII");
    for (std::size_t j = 0; j < i; ++j)
      if (fold_archive_name(paths[j]) == fold_archive_name(paths[i]))
        throw std::invalid_argument(
            "batch: fields '" + fields[j].name + "' and '" +
            fields[i].name + "' both stream to " + paths[i] +
            (paths[j] == paths[i]
                 ? " (names map to one archive after separator flattening)"
                 : " (archive names collide case-insensitively)"));
  }

  const ControlRequest request = ControlRequest::fixed_psnr(target_psnr_db);
  CompressOptions copts = options.compress;
  copts.parallel.block_pipeline = true;

  if (!options.global_queue) {
    // Pre-queue baseline: one field at a time, each fanning its blocks out
    // on its own, with a full barrier between fields. Same plans, same
    // bytes — only the schedule (and the idle cores on small fields)
    // differ.
    copts.parallel.threads = options.threads;
    for (std::size_t i = 0; i < field_count; ++i) {
      const data::FieldView& field = fields[i];
      CompressResult cr =
          paths[i].empty()
              ? compress_blocked<float>(field.span(), field.dims, request, copts)
              : compress_to_file<float>(field.span(), field.dims, request,
                                        copts, paths[i]);
      fill_outcome(result.fields[i], field, target_psnr_db, std::move(cr),
                   options, paths[i]);
    }
    return result;
  }

  // Streaming opens every in-flight field's `.partial` at plan time (and
  // the round-robin enqueue runs every field's first block early), so an
  // unbounded wave would hold one fd per field — a multi-thousand-field
  // manifest would hit EMFILE. In-memory runs have no such cap.
  copts.parallel.threads = 0;  // the queue owns all scheduling
  const std::size_t wave_limit =
      options.stream_dir.empty()
          ? field_count
          : (options.max_open_streams ? options.max_open_streams
                                      : std::size_t{256});

  for (std::size_t wave_begin = 0; wave_begin < field_count;
       wave_begin += wave_limit) {
    const std::size_t wave_end =
        std::min(field_count, wave_begin + wave_limit);

    // Phase 1 — plan every field of the wave up front (budgets, layouts,
    // headers, output writers). Plans depend only on data and options, so
    // this is the point after which the bytes are already determined.
    // Planning itself scans every value (range resolution; a second probe
    // pass under adaptive budgets), so the independent per-field plans
    // are fanned out too — otherwise a CESM-scale dataset pays an
    // O(total values) serial prefix before the first block task runs.
    std::vector<std::unique_ptr<FieldCompressor<float>>> jobs(wave_end -
                                                              wave_begin);
    parallel::parallel_for_shared(
        jobs.size(), options.threads, [&](std::size_t w) {
          const std::size_t i = wave_begin + w;
          const data::FieldView& field = fields[i];
          jobs[w] = paths[i].empty()
                        ? std::make_unique<FieldCompressor<float>>(
                              field.span(), field.dims, request, copts)
                        : std::make_unique<FieldCompressor<float>>(
                              field.span(), field.dims, request, copts,
                              paths[i]);
        });
    std::size_t max_blocks = 0;
    for (const auto& job : jobs)
      max_blocks = std::max(max_blocks, job->block_count());

    // Phase 2 — enqueue every block of every field in the wave,
    // round-robin across fields so small fields complete (and finalize,
    // freeing their writers) early instead of queueing behind a huge
    // field's tail.
    parallel::WorkQueue queue;
    for (std::size_t r = 0; r < max_blocks; ++r) {
      for (std::size_t w = 0; w < jobs.size(); ++w) {
        if (r >= jobs[w]->block_count()) continue;
        const std::size_t i = wave_begin + w;
        // Tag each block with its field + coarse tile neighborhood so the
        // queue's locality pass keeps adjacent tiles — which share cache
        // lines along their faces — on the worker that last touched them.
        // The field index is folded in high bits so neighborhoods of
        // different fields never share a key. Advisory only: plans and
        // bytes are fixed by Phase 1 regardless of placement.
        parallel::WorkQueue::TaskOptions topts;
        topts.locality = (static_cast<std::uint64_t>(w) + 1) << 40 ^
                         jobs[w]->locality_key(r);
        queue.push([&queue, &result, &fields, &jobs, &paths, &options,
                    target_psnr_db, i, w, r] {
          // Phase 3 — the worker that completes a field's last block
          // finalizes its archive right here, inside the drain: when the
          // queue runs dry, every archive is done. The verify decode (a
          // full single-threaded pass over the field) goes back on the
          // queue as a follow-up task instead of running inline, so the
          // biggest field's verification overlaps the remaining
          // compression on other workers rather than serializing the
          // tail.
          if (jobs[w]->run_block(r)) {
            auto cr = std::make_shared<CompressResult>(jobs[w]->finalize());
            if (options.verify)
              queue.push([&result, &fields, &paths, &options,
                          target_psnr_db, i, cr] {
                fill_outcome(result.fields[i], fields[i],
                             target_psnr_db, std::move(*cr), options,
                             paths[i]);
              });
            else
              fill_outcome(result.fields[i], fields[i],
                           target_psnr_db, std::move(*cr), options, paths[i]);
          }
        }, topts);
      }
    }
    queue.drain(options.threads);
  }
  return result;
}

std::vector<BatchResult> run_fixed_psnr_sweep(const data::Dataset& dataset,
                                              std::span<const double> targets,
                                              const BatchOptions& options) {
  std::vector<BatchResult> out;
  out.reserve(targets.size());
  for (double t : targets)
    out.push_back(run_fixed_psnr_batch(dataset, t, options));
  return out;
}

}  // namespace fpsnr::core
