#include "core/batch.h"

#include <cmath>

#include "parallel/shared_pool.h"

namespace fpsnr::core {

metrics::RunningStats BatchResult::psnr_stats() const {
  metrics::RunningStats s;
  for (const FieldOutcome& f : fields) s.add(f.actual_psnr_db);
  return s;
}

double BatchResult::met_fraction() const {
  if (fields.empty()) return 0.0;
  std::size_t met = 0;
  for (const FieldOutcome& f : fields)
    if (f.met_target) ++met;
  return static_cast<double>(met) / static_cast<double>(fields.size());
}

double BatchResult::mean_abs_deviation_db() const {
  if (fields.empty()) return 0.0;
  double acc = 0.0;
  for (const FieldOutcome& f : fields)
    acc += std::abs(f.actual_psnr_db - f.target_psnr_db);
  return acc / static_cast<double>(fields.size());
}

namespace {

FieldOutcome run_one_field(const data::Field& field, double target_psnr_db,
                           const CompressOptions& options) {
  FieldOutcome out;
  out.field_name = field.name;
  out.target_psnr_db = target_psnr_db;

  const CompressResult cr =
      compress_fixed_psnr<float>(field.span(), field.dims, target_psnr_db, options);
  const metrics::ErrorReport rep =
      verify<float>(field.span(), std::span<const std::uint8_t>(cr.stream));

  out.predicted_psnr_db = cr.predicted_psnr_db;
  out.actual_psnr_db = rep.psnr_db;
  out.rel_bound_used = cr.rel_bound_used;
  out.compression_ratio = cr.info.compression_ratio;
  out.bit_rate = cr.info.bit_rate;
  out.max_abs_error = rep.max_abs_error;
  out.outlier_count = cr.info.outlier_count;
  out.met_target = rep.psnr_db >= target_psnr_db;
  return out;
}

}  // namespace

BatchResult run_fixed_psnr_batch(const data::Dataset& dataset, double target_psnr_db,
                                 const BatchOptions& options) {
  BatchResult result;
  result.dataset_name = dataset.name;
  result.target_psnr_db = target_psnr_db;
  result.fields.resize(dataset.fields.size());

  parallel::parallel_for_shared(
      dataset.fields.size(), options.threads, [&](std::size_t i) {
        result.fields[i] =
            run_one_field(dataset.fields[i], target_psnr_db, options.compress);
      });
  return result;
}

std::vector<BatchResult> run_fixed_psnr_sweep(const data::Dataset& dataset,
                                              std::span<const double> targets,
                                              const BatchOptions& options) {
  std::vector<BatchResult> out;
  out.reserve(targets.size());
  for (double t : targets)
    out.push_back(run_fixed_psnr_batch(dataset, t, options));
  return out;
}

}  // namespace fpsnr::core
