#include "core/compressor.h"

#include <cmath>
#include <stdexcept>

#include "core/distortion_model.h"
#include "core/pipeline.h"
#include "io/bitstream.h"

namespace fpsnr::core {

namespace {

bool is_transform_engine(Engine e) {
  return e == Engine::TransformHaar || e == Engine::TransformDct;
}

/// Engines that exist only behind the block-codec registry — they have no
/// serial flat-stream path and always emit the FPBK container.
bool is_registry_only_engine(Engine e) {
  return e == Engine::Interp || e == Engine::ZfpRate || e == Engine::Store;
}

template <typename T>
CompressResult compress_transform(std::span<const T> values, const data::Dims& dims,
                                  const ControlRequest& request,
                                  const CompressOptions& options) {
  // Transform engines control only aggregate distortion; the uniform
  // coefficient bin width comes straight from Eq. (6).
  const double vr = metrics::value_range(values);
  double bin_width = 0.0;
  switch (request.mode) {
    case ControlMode::FixedPsnr:
      bin_width = bin_width_for_psnr(request.value, vr);
      break;
    case ControlMode::Absolute:
      bin_width = 2.0 * request.value;
      break;
    case ControlMode::ValueRangeRelative:
      bin_width = 2.0 * request.value * vr;
      break;
    default:
      throw std::invalid_argument(
          "compress: transform engines support FixedPsnr / Absolute / "
          "ValueRangeRelative control only");
  }
  if (!(bin_width > 0.0)) {
    // Constant field: any tiny width keeps it exact.
    bin_width = std::numeric_limits<double>::min() * 1e6;
  }

  transform::Params tp;
  tp.kind = options.engine == Engine::TransformHaar ? transform::Kind::HaarMultiLevel
                                                    : transform::Kind::BlockDct;
  tp.bin_width = bin_width;
  tp.quantization_bins = options.quantization_bins;
  tp.haar_levels = options.haar_levels;
  tp.dct_block = options.dct_block;
  tp.backend = options.backend;

  transform::Info tinfo;
  CompressResult out;
  out.stream = transform::compress(values, dims, tp, &tinfo);
  out.request = request;
  out.predicted_psnr_db =
      vr > 0.0 ? psnr_for_bin_width(bin_width, vr)
               : std::numeric_limits<double>::infinity();
  out.achieved_psnr_db =
      vr > 0.0 && tinfo.value_count > 0
          ? metrics::psnr_from_mse(
                tinfo.achieved_sse / static_cast<double>(tinfo.value_count), vr)
          : std::numeric_limits<double>::infinity();
  out.rel_bound_used = vr > 0.0 ? bin_width / (2.0 * vr) : 0.0;
  out.info.eb_abs_used = bin_width / 2.0;
  out.info.value_range = tinfo.value_range;
  out.info.value_count = tinfo.value_count;
  out.info.achieved_sse = tinfo.achieved_sse;
  out.info.outlier_count = tinfo.outlier_count;
  out.info.compressed_bytes = tinfo.compressed_bytes;
  out.info.compression_ratio = tinfo.compression_ratio;
  out.info.bit_rate = tinfo.bit_rate;
  return out;
}

}  // namespace

template <typename T>
CompressResult compress(std::span<const T> values, const data::Dims& dims,
                        const ControlRequest& request,
                        const CompressOptions& options) {
  // FixedRate exists only behind the block pipeline (the per-block rate
  // search IS the parallel decomposition), like the registry-only engines.
  if (options.parallel.enabled() || is_registry_only_engine(options.engine) ||
      options.budget == BudgetMode::Adaptive ||
      request.mode == ControlMode::FixedRate)
    return compress_blocked(values, dims, request, options);
  if (is_transform_engine(options.engine))
    return compress_transform(values, dims, request, options);

  const ResolvedControl resolved = resolve_control(request);
  sz::Params params;
  params.mode = resolved.sz_mode;
  params.bound = resolved.sz_bound;
  params.predictor = options.sz_predictor;
  params.quantization_bins = options.quantization_bins;
  params.backend = options.backend;

  CompressResult out;
  out.request = request;
  out.stream = sz::compress(values, dims, params, &out.info);
  // The codec measured the exact achieved SSE during quantization (every
  // non-pwrel mode); surface it as the measured PSNR like the block
  // pipeline does.
  if (out.info.achieved_sse >= 0.0 && out.info.value_count > 0) {
    out.achieved_psnr_db =
        out.info.value_range > 0.0
            ? metrics::psnr_from_mse(out.info.achieved_sse /
                                         static_cast<double>(out.info.value_count),
                                     out.info.value_range)
            : std::numeric_limits<double>::infinity();
  }
  out.predicted_psnr_db = resolved.predicted_psnr_db;
  if (request.mode == ControlMode::Absolute && out.info.value_range > 0.0) {
    // Now that the value range is known, complete the Eq. (7) prediction.
    out.predicted_psnr_db =
        psnr_for_abs_bound(out.info.eb_abs_used, out.info.value_range);
  }
  out.rel_bound_used = resolved.sz_mode == sz::ErrorBoundMode::ValueRangeRelative
                           ? resolved.sz_bound
                           : (out.info.value_range > 0.0
                                  ? out.info.eb_abs_used / out.info.value_range
                                  : 0.0);
  return out;
}

template <typename T>
sz::Decompressed<T> decompress(std::span<const std::uint8_t> stream) {
  if (is_block_stream(stream)) return decompress_blocked<T>(stream);
  if (stream.size() >= 4 && stream[0] == 'F' && stream[1] == 'P' &&
      stream[2] == 'T' && stream[3] == 'C') {
    auto d = transform::decompress<T>(stream);
    return {std::move(d.dims), std::move(d.values)};
  }
  return sz::decompress<T>(stream);
}

template CompressResult compress<float>(std::span<const float>, const data::Dims&,
                                        const ControlRequest&, const CompressOptions&);
template CompressResult compress<double>(std::span<const double>, const data::Dims&,
                                         const ControlRequest&, const CompressOptions&);
template sz::Decompressed<float> decompress<float>(std::span<const std::uint8_t>);
template sz::Decompressed<double> decompress<double>(std::span<const std::uint8_t>);

}  // namespace fpsnr::core
