// Shared full-rank tile geometry of the block pipeline.
//
// The pipeline (core/pipeline.cpp), the block decoders, and the temporal
// delta layer (src/temporal/) must all agree — bit for bit — on how a
// field is sharded into tiles: the temporal planner probes per-tile
// residuals and records a per-block mode bit, so its grid has to be the
// very grid the container was written with. Everything here depends only
// on the dims and the requested tile shape, never on the thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "data/field.h"

namespace fpsnr::core {

/// Deterministic default tile volume: the auto tile is the near-cubic shape
/// whose edge is the largest e with e^rank <= kAutoBlockValues; axes shorter
/// than the edge clamp to their extent and donate their volume to the other
/// axes. Independent of thread count by design.
inline constexpr std::size_t kAutoBlockValues = std::size_t{1} << 15;
std::vector<std::size_t> auto_tile(const data::Dims& dims);

/// The full-rank tile grid a field is sharded into. Blocks are the tiles in
/// C order over `grid` (last axis fastest); the trailing tile on each axis
/// may be short. Depends only on dims and the requested tile shape — never
/// on thread count — so the archive layout is schedule-independent.
struct TileLayout {
  std::vector<std::size_t> tile;  ///< per-axis tile extents (clamped to dims)
  std::vector<std::size_t> grid;  ///< per-axis tile counts
  std::size_t block_count = 0;
  /// True when every axis but 0 has a single tile: each block is then a
  /// contiguous axis-0 slab of the field buffer (the v1/v2 geometry) and
  /// codecs borrow it as a subspan instead of gathering a copy.
  bool slabbed = true;
  std::size_t row_stride = 1;  ///< values per axis-0 row
};

/// Resolve the requested tile shape (empty = auto; a 0 entry or missing
/// trailing axis spans the field on that axis) into the concrete grid.
TileLayout make_layout(const data::Dims& dims,
                       std::span<const std::size_t> requested);

/// One tile's position in the field: per-axis start and extents.
struct TileRegion {
  std::size_t start[3] = {0, 0, 0};
  std::size_t ext[3] = {1, 1, 1};
  std::size_t count = 1;  ///< product of ext over the field's rank
};

TileRegion tile_region(const TileLayout& l, const data::Dims& dims,
                       std::size_t b);

inline data::Dims region_dims(const TileRegion& r, std::size_t rank) {
  return data::Dims(std::vector<std::size_t>(r.ext, r.ext + rank));
}

/// C-order strides of the field (stride[rank-1] == 1).
inline void field_strides(const data::Dims& dims, std::size_t* stride) {
  const std::size_t rank = dims.rank();
  stride[rank - 1] = 1;
  for (std::size_t a = rank - 1; a-- > 0;)
    stride[a] = stride[a + 1] * dims[a + 1];
}

/// True when the tile occupies a contiguous run of the field buffer: every
/// axis but 0 spans the whole field.
inline bool region_contiguous(const TileRegion& r, const data::Dims& dims) {
  for (std::size_t a = 1; a < dims.rank(); ++a)
    if (r.ext[a] != dims[a]) return false;
  return true;
}

/// Copy a tile out of the field into a contiguous C-order buffer (gather)
/// or back (scatter). The innermost axis is contiguous in both layouts, so
/// the copy runs one row at a time.
template <typename T, bool kGather>
void copy_tile(std::span<const T> field_in, std::span<T> field_out,
               const data::Dims& dims, const TileRegion& r,
               std::span<const T> tile_in, std::span<T> tile_out) {
  const std::size_t rank = dims.rank();
  std::size_t stride[3];
  field_strides(dims, stride);
  const std::size_t run = r.ext[rank - 1];
  const std::size_t rows = r.count / run;
  std::size_t c[3] = {0, 0, 0};  // odometer over the tile's outer axes
  for (std::size_t row = 0; row < rows; ++row) {
    std::size_t offset = r.start[rank - 1];
    for (std::size_t a = 0; a + 1 < rank; ++a)
      offset += (r.start[a] + c[a]) * stride[a];
    if constexpr (kGather)
      std::copy_n(field_in.data() + offset, run,
                  tile_out.data() + row * run);
    else
      std::copy_n(tile_in.data() + row * run, run,
                  field_out.data() + offset);
    for (std::size_t a = rank - 1; a-- > 0;) {
      if (++c[a] < r.ext[a]) break;
      c[a] = 0;
    }
  }
}

template <typename T>
void gather_tile(std::span<const T> field, const data::Dims& dims,
                 const TileRegion& r, std::span<T> tile) {
  copy_tile<T, true>(field, {}, dims, r, {}, tile);
}

template <typename T>
void scatter_tile(std::span<const T> tile, const data::Dims& dims,
                  const TileRegion& r, std::span<T> field) {
  copy_tile<T, false>({}, field, dims, r, tile, {});
}

}  // namespace fpsnr::core
