// Library version constants — re-exported from the public header so the
// internal and installed spellings can never drift.
#pragma once

#include "fpsnr/version.h"
