// Analytical distortion model for L2-norm-preserving lossy compression —
// the heart of the paper (Section III/IV, Eqs. 2-8).
//
// Theorems 1 and 2 reduce the overall reconstruction MSE to the MSE that
// quantization introduces on the prediction errors / transform
// coefficients. For midpoint quantization over bins of width delta_i with
// empirical density P(m_i) at the midpoints (Eq. 3):
//
//     MSE ~= (1/6) * sum_i delta_i^3 * P(m_i)
//
// and for *uniform* bins this collapses (Eq. 6) to the distribution-free
//
//     MSE = delta^2 / 12,
//     PSNR = 20 log10(vr / delta) + 10 log10(12).
//
// Since the SZ-style codec sets delta = 2 * eb_abs (Eq. 7):
//
//     PSNR = 20 log10(vr / eb_abs) + 10 log10(3)
//     eb_rel = sqrt(3) * 10^(-PSNR/20)                (Eq. 8)
#pragma once

#include <span>

#include "metrics/histogram.h"

namespace fpsnr::core {

/// Eq. (3) with uniform bins: MSE = delta^2 / 12.
double mse_uniform_quantization(double bin_width);

/// Eq. (6): PSNR implied by a uniform quantization bin width and the
/// original data's value range.
double psnr_for_bin_width(double bin_width, double value_range);

/// Inverse of Eq. (6): bin width that achieves a target PSNR.
double bin_width_for_psnr(double target_psnr_db, double value_range);

/// Eq. (7): PSNR implied by SZ's absolute error bound (delta = 2 eb).
double psnr_for_abs_bound(double eb_abs, double value_range);

/// Eq. (7) in relative form: PSNR for a value-range relative bound.
double psnr_for_rel_bound(double eb_rel);

/// Eq. (8): value-range relative error bound for a target PSNR.
/// This is the entire fixed-PSNR mode: one closed-form evaluation.
double rel_bound_for_psnr(double target_psnr_db);

/// Absolute error bound for a target PSNR given the value range.
double abs_bound_for_psnr(double target_psnr_db, double value_range);

/// General estimator, Eq. (3): MSE from per-bin widths and midpoint
/// densities (both spans must have equal length; symmetric one-sided form
/// is already folded in because densities come from the full histogram).
double mse_general_quantization(std::span<const double> bin_widths,
                                std::span<const double> midpoint_densities);

/// Eq. (3)+(5) driven by an empirical histogram of prediction errors with
/// uniform bins of the histogram's width: estimates the MSE a midpoint
/// quantizer with that bin layout would introduce, then converts to PSNR.
/// Used by the estimator-accuracy ablation to show where the midpoint
/// approximation degrades (wide bins / low PSNR).
double psnr_from_histogram(const metrics::Histogram& prediction_errors,
                           double value_range);

}  // namespace fpsnr::core
