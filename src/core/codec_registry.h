// Unified per-block codec interface and the registry that names them.
//
// The block-parallel pipeline (core/pipeline.h) shards a field into
// independent slabs and hands each one to a BlockCodec. Both codec families
// — the SZ-style predictor path (src/sz) and the orthogonal-transform path
// (src/transform) — implement the same interface: compress a slab under a
// shared absolute error budget `eb_abs` (bin width 2*eb_abs), decompress a
// slab into a caller-provided span. Because every block receives the same
// budget derived from the *global* value range, the fixed-PSNR model
// (Eq. 6/7) holds for the whole field exactly as in the serial codecs.
//
// The registry maps a one-byte wire id (stored in the FPBK container) to a
// codec instance, so streams stay self-describing and new codecs can be
// plugged in without touching the engine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "data/field.h"
#include "lossless/backend.h"
#include "sz/error_mode.h"

namespace fpsnr::core {

/// Wire id of a codec in the block container (one byte).
using CodecId = std::uint8_t;

/// Built-in codec ids; values match core::Engine for easy mapping.
inline constexpr CodecId kCodecSzLorenzo = 0;
inline constexpr CodecId kCodecTransformHaar = 1;
inline constexpr CodecId kCodecTransformDct = 2;
/// SZ3-style multi-level interpolation predictor (src/sz/interp.h).
inline constexpr CodecId kCodecInterp = 3;
/// ZFP-style fixed-rate bit-packed DCT (src/transform/fixed_rate.h).
inline constexpr CodecId kCodecZfpRate = 4;
/// Raw passthrough for incompressible blocks; the pipeline auto-selects it
/// per block whenever the primary codec's output is no smaller than raw.
inline constexpr CodecId kCodecStore = 5;

/// Per-block compression parameters. `eb_abs` is the block's error budget:
/// the quantization bin width is 2*eb_abs for every codec, so a block of n
/// values can contribute at most n * eb_abs^2 / 3 to the global SSE under
/// the uniform-quantization model (Eq. 6).
struct BlockParams {
  double eb_abs = 0.0;
  std::uint32_t quantization_bins = 65536;
  lossless::Method backend = lossless::Method::Deflate;
  sz::Predictor predictor = sz::Predictor::Lorenzo;
  unsigned haar_levels = 4;
  std::size_t dct_block = 8;
};

/// Per-block accounting reported back to the engine.
struct BlockInfo {
  std::size_t value_count = 0;
  std::size_t outlier_count = 0;
  std::size_t compressed_bytes = 0;
  /// Worst-case MSE*n this block can add to the field's SSE under the
  /// uniform model: value_count * eb_abs^2 / 3. The engine sums these to
  /// check the global budget is respected.
  double sse_budget = 0.0;
  /// Exact sum of squared reconstruction errors this block's bytes decode
  /// to (measured against the input at compress time). Recorded in the
  /// FPBK v2 index so readers can report the measured global PSNR.
  double achieved_sse = 0.0;
};

/// One codec family behind the block-parallel engine.
class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  virtual std::string_view name() const = 0;

  /// True when |x_i - x~_i| <= eb_abs holds pointwise (the predictor path);
  /// transform codecs control only the aggregate (PSNR) budget.
  virtual bool pointwise_bounded() const = 0;

  virtual std::vector<std::uint8_t> compress(std::span<const float> values,
                                             const data::Dims& dims,
                                             const BlockParams& params,
                                             BlockInfo* info) const = 0;
  virtual std::vector<std::uint8_t> compress(std::span<const double> values,
                                             const data::Dims& dims,
                                             const BlockParams& params,
                                             BlockInfo* info) const = 0;

  /// Decompress one block into `out` (sized by the caller from the
  /// container index). Throws io::StreamError on malformed input or a
  /// size mismatch.
  virtual void decompress(std::span<const std::uint8_t> block,
                          std::span<float> out) const = 0;
  virtual void decompress(std::span<const std::uint8_t> block,
                          std::span<double> out) const = 0;
};

/// Process-wide codec table, pre-seeded with the built-in codecs.
/// Registration is not thread-safe; do it at startup. Lookups after that
/// are read-only and safe from any thread (the engine decodes blocks
/// concurrently).
class CodecRegistry {
 public:
  static CodecRegistry& instance();

  /// Register (or replace) a codec under `id`.
  void add(CodecId id, std::unique_ptr<BlockCodec> codec);

  /// Register a short alias (e.g. "sz") for an already-registered codec.
  /// Aliases resolve through id_of/find exactly like primary names; the
  /// CLI and the Session facade derive their accepted `--engine` spellings
  /// from this table, so there is no second copy of the name list to
  /// drift.
  void add_alias(std::string_view alias, CodecId id);

  /// Lookup; throws std::out_of_range for an unknown id.
  const BlockCodec& at(CodecId id) const;

  /// Lookup; nullptr for an unknown id.
  const BlockCodec* find(CodecId id) const;

  /// Reverse lookup by registered codec name or alias; nullptr when absent.
  const BlockCodec* find(std::string_view name) const;

  /// Id of the codec registered under `name` (primary name or alias);
  /// throws std::out_of_range (with the list of registered names) when
  /// absent.
  CodecId id_of(std::string_view name) const;

  std::vector<CodecId> ids() const;

  /// Names of every registered codec, in id order (for CLI listings).
  std::vector<std::string_view> names() const;

  /// Aliases registered for `id`, in registration order.
  std::vector<std::string_view> aliases_of(CodecId id) const;

  /// Human-readable one-line-per-codec listing — "<id>  <name> (aliases:
  /// ...)" — the single string the CLI prints for --engine help and
  /// unknown-engine errors.
  std::string listing() const;

 private:
  CodecRegistry();

  std::vector<std::unique_ptr<BlockCodec>> slots_;  // indexed by CodecId
  std::vector<std::pair<std::string, CodecId>> aliases_;
};

/// True if `block` is a store-codec (raw passthrough) stream. The engine
/// uses this to dispatch per block: a container whose header names a lossy
/// codec may still hold store-coded blocks where compression did not pay.
bool is_store_block_stream(std::span<const std::uint8_t> block);

/// Exact byte size of the store codec's encoding of an n-value slab of the
/// given scalar width — the demotion threshold the engine compares lossy
/// codec output against. Kept next to the codec so the two can never
/// drift.
std::size_t store_encoded_size(std::size_t value_count,
                               std::size_t scalar_bytes);

}  // namespace fpsnr::core
