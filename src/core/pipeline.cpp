#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/distortion_model.h"
#include "io/archive.h"
#include "metrics/metrics.h"
#include "parallel/thread_pool.h"
#include "sz/stream_format.h"

namespace fpsnr::core {

namespace {

data::Dims slab_dims(const data::Dims& dims, std::size_t rows) {
  std::vector<std::size_t> e(dims.extents);
  e[0] = rows;
  return data::Dims(std::move(e));
}

/// Resolve any uniform-budget control request to the absolute per-point
/// budget every block shares. Throws for modes without one. Validation is
/// delegated to resolve_control so bad requests (non-positive bounds,
/// non-finite PSNR targets, fixed-rate) are rejected exactly as the serial
/// facade rejects them.
template <typename T>
double resolve_budget(const ControlRequest& request, std::span<const T> values,
                      double* value_range_out) {
  const double vr = metrics::value_range(values);
  if (value_range_out) *value_range_out = vr;
  const ResolvedControl rc = resolve_control(request);
  if (rc.sz_mode == sz::ErrorBoundMode::PointwiseRelative)
    throw std::invalid_argument(
        "block pipeline: only uniform-budget control modes are supported "
        "(fixed-psnr / abs / rel / nrmse)");
  double eb = rc.sz_mode == sz::ErrorBoundMode::Absolute ? rc.sz_bound
                                                         : rc.sz_bound * vr;
  if (!(eb > 0.0)) {
    // Constant field (vr == 0): any tiny budget keeps every point exact.
    eb = std::numeric_limits<double>::min() * 1e6;
  }
  return eb;
}

struct BlockLayout {
  std::size_t rows_per_block, block_count, row_stride;
};

BlockLayout make_layout(const data::Dims& dims, std::size_t block_rows) {
  BlockLayout l;
  l.row_stride = dims.count() / dims[0];
  l.rows_per_block = block_rows == 0
                         ? auto_block_rows(dims)
                         : std::clamp<std::size_t>(block_rows, 1, dims[0]);
  l.block_count = (dims[0] + l.rows_per_block - 1) / l.rows_per_block;
  return l;
}

std::size_t block_first_row(const BlockLayout& l, std::size_t b) {
  return b * l.rows_per_block;
}

std::size_t block_rows_of(const BlockLayout& l, const data::Dims& dims,
                          std::size_t b) {
  return std::min(l.rows_per_block, dims[0] - block_first_row(l, b));
}

/// Run fn(b) for every block, on `threads` workers when > 1.
void for_each_block(std::size_t block_count, std::size_t threads,
                    const std::function<void(std::size_t)>& fn) {
  if (threads > 1 && block_count > 1) {
    parallel::ThreadPool pool(std::min(threads, block_count));
    parallel::parallel_for(pool, block_count, fn);
  } else {
    for (std::size_t b = 0; b < block_count; ++b) fn(b);
  }
}

data::Dims dims_from_header(const io::BlockContainerHeader& h) {
  std::vector<std::size_t> extents(h.extents.begin(), h.extents.end());
  return data::Dims(std::move(extents));
}

template <typename T>
void check_scalar(const io::BlockContainerHeader& h) {
  if (h.scalar != static_cast<std::uint8_t>(sz::scalar_type_of<T>()))
    throw io::StreamError("block pipeline: scalar type mismatch");
}

}  // namespace

std::size_t auto_block_rows(const data::Dims& dims) {
  const std::size_t row_stride = dims.count() / dims[0];
  const std::size_t rows = (kAutoBlockValues + row_stride - 1) / row_stride;
  return std::clamp<std::size_t>(rows, 1, dims[0]);
}

bool is_block_stream(std::span<const std::uint8_t> stream) {
  return io::is_block_container(stream);
}

BlockStreamInfo inspect_block_stream(std::span<const std::uint8_t> stream) {
  const auto view = io::open_block_container(stream);
  BlockStreamInfo info;
  info.codec = view.header.codec;
  const BlockCodec* codec = CodecRegistry::instance().find(view.header.codec);
  info.codec_name = codec ? codec->name() : "unknown";
  info.dims = dims_from_header(view.header);
  info.block_rows = view.header.block_rows;
  info.block_count = view.header.block_count;
  info.eb_abs = view.header.eb_abs;
  info.value_range = view.header.value_range;
  info.control_mode = static_cast<ControlMode>(view.header.control_mode);
  info.control_value = view.header.control_value;
  return info;
}

template <typename T>
CompressResult compress_blocked(std::span<const T> values,
                                const data::Dims& dims,
                                const ControlRequest& request,
                                const CompressOptions& options) {
  if (values.size() != dims.count())
    throw std::invalid_argument("block pipeline: value count does not match dims");

  double vr = 0.0;
  const double eb_abs = resolve_budget(request, values, &vr);
  const BlockLayout layout = make_layout(dims, options.parallel.block_rows);

  const CodecId codec_id = static_cast<CodecId>(options.engine);
  const BlockCodec& codec = CodecRegistry::instance().at(codec_id);

  BlockParams bp;
  bp.eb_abs = eb_abs;
  bp.quantization_bins = options.quantization_bins;
  bp.backend = options.backend;
  bp.predictor = options.sz_predictor;
  bp.haar_levels = options.haar_levels;
  bp.dct_block = options.dct_block;

  io::BlockContainerHeader header;
  header.codec = codec_id;
  header.scalar = static_cast<std::uint8_t>(sz::scalar_type_of<T>());
  header.extents.assign(dims.extents.begin(), dims.extents.end());
  header.block_rows = layout.rows_per_block;
  header.block_count = layout.block_count;
  header.eb_abs = eb_abs;
  header.value_range = vr;
  header.control_mode = static_cast<std::uint8_t>(request.mode);
  header.control_value = request.value;

  io::BlockContainerWriter writer(header);
  std::vector<BlockInfo> block_infos(layout.block_count);
  for_each_block(layout.block_count, options.parallel.threads,
                 [&](std::size_t b) {
                   const std::size_t first = block_first_row(layout, b);
                   const std::size_t rows = block_rows_of(layout, dims, b);
                   const auto slice = values.subspan(first * layout.row_stride,
                                                     rows * layout.row_stride);
                   writer.add_block(b, codec.compress(slice,
                                                      slab_dims(dims, rows), bp,
                                                      &block_infos[b]));
                 });
  CompressResult out;
  out.stream = writer.finish();
  out.request = request;

  // Per-block budget accounting: every value must be covered exactly once,
  // and the per-block SSE budgets must sum back to the serial model
  // N * eb^2 / 3 — i.e. blocking spent exactly the global budget, no more.
  std::size_t covered = 0;
  double sse_budget = 0.0;
  for (const BlockInfo& bi : block_infos) {
    covered += bi.value_count;
    sse_budget += bi.sse_budget;
    out.info.outlier_count += bi.outlier_count;
  }
  if (covered != values.size())
    throw std::logic_error("block pipeline: blocks do not cover the field");
  const double global_budget =
      static_cast<double>(values.size()) * eb_abs * eb_abs / 3.0;
  if (sse_budget > global_budget * (1.0 + 1e-9))
    throw std::logic_error("block pipeline: per-block budgets exceed the "
                           "global error budget");

  out.predicted_psnr_db = vr > 0.0
                              ? psnr_for_abs_bound(eb_abs, vr)
                              : std::numeric_limits<double>::infinity();
  out.rel_bound_used = vr > 0.0 ? eb_abs / vr : 0.0;
  out.info.eb_abs_used = eb_abs;
  out.info.value_range = vr;
  out.info.value_count = values.size();
  out.info.compressed_bytes = out.stream.size();
  out.info.compression_ratio = metrics::compression_ratio(
      values.size() * sizeof(T), out.stream.size());
  out.info.bit_rate = metrics::bit_rate(out.stream.size(), values.size());
  return out;
}

template <typename T>
sz::Decompressed<T> decompress_blocked(std::span<const std::uint8_t> stream,
                                       std::size_t threads) {
  const auto view = io::open_block_container(stream);
  check_scalar<T>(view.header);
  const data::Dims dims = dims_from_header(view.header);
  const BlockLayout layout = make_layout(dims, view.header.block_rows);
  if (layout.block_count != view.blocks.size())
    throw io::StreamError("block pipeline: index/block-count mismatch");
  const BlockCodec& codec = CodecRegistry::instance().at(view.header.codec);

  sz::Decompressed<T> out;
  out.dims = dims;
  out.values.resize(dims.count());
  std::span<T> all(out.values);
  for_each_block(layout.block_count, threads, [&](std::size_t b) {
    const std::size_t first = block_first_row(layout, b);
    const std::size_t rows = block_rows_of(layout, dims, b);
    codec.decompress(view.blocks[b], all.subspan(first * layout.row_stride,
                                                 rows * layout.row_stride));
  });
  return out;
}

template <typename T>
sz::Decompressed<T> decompress_block(std::span<const std::uint8_t> stream,
                                     std::size_t block_index) {
  const io::BlockContainerHeader header = io::block_container_header(stream);
  check_scalar<T>(header);
  const auto bytes = io::block_container_entry(stream, block_index);
  const data::Dims dims = dims_from_header(header);
  const BlockLayout layout = make_layout(dims, header.block_rows);
  const std::size_t rows = block_rows_of(layout, dims, block_index);
  const BlockCodec& codec = CodecRegistry::instance().at(header.codec);

  sz::Decompressed<T> out;
  out.dims = slab_dims(dims, rows);
  out.values.resize(out.dims.count());
  codec.decompress(bytes, std::span<T>(out.values));
  return out;
}

template CompressResult compress_blocked<float>(std::span<const float>,
                                                const data::Dims&,
                                                const ControlRequest&,
                                                const CompressOptions&);
template CompressResult compress_blocked<double>(std::span<const double>,
                                                 const data::Dims&,
                                                 const ControlRequest&,
                                                 const CompressOptions&);
template sz::Decompressed<float> decompress_blocked<float>(
    std::span<const std::uint8_t>, std::size_t);
template sz::Decompressed<double> decompress_blocked<double>(
    std::span<const std::uint8_t>, std::size_t);
template sz::Decompressed<float> decompress_block<float>(
    std::span<const std::uint8_t>, std::size_t);
template sz::Decompressed<double> decompress_block<double>(
    std::span<const std::uint8_t>, std::size_t);

}  // namespace fpsnr::core
