#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/distortion_model.h"
#include "core/tile_layout.h"
#include "io/archive.h"
#include "io/streaming_archive.h"
#include "metrics/metrics.h"
#include "parallel/shared_pool.h"
#include "sz/stream_format.h"
#include "transform/fixed_rate.h"

namespace fpsnr::core {

namespace {

/// Resolve any uniform-budget control request to the absolute per-point
/// budget every block shares. Throws for modes without one. Validation is
/// delegated to resolve_control so bad requests (non-positive bounds,
/// non-finite PSNR targets) are rejected exactly as the serial facade
/// rejects them. (FixedRate never reaches here — plan_blocks branches to
/// the per-block rate search first.)
template <typename T>
double resolve_budget(const ControlRequest& request, std::span<const T> values,
                      std::optional<double> vr_override,
                      double* value_range_out) {
  // The temporal layer compresses a delta/raw composite whose error
  // contract is against the ORIGINAL snapshot; it overrides the range so
  // the budget (and the recorded header range) stay anchored to it.
  const double vr = vr_override ? *vr_override : metrics::value_range(values);
  if (value_range_out) *value_range_out = vr;
  const ResolvedControl rc = resolve_control(request);
  if (rc.sz_mode == sz::ErrorBoundMode::PointwiseRelative)
    throw std::invalid_argument(
        "block pipeline: only uniform-budget control modes are supported "
        "(fixed-psnr / abs / rel / nrmse)");
  double eb = rc.sz_mode == sz::ErrorBoundMode::Absolute ? rc.sz_bound
                                                         : rc.sz_bound * vr;
  if (!(eb > 0.0)) {
    // Constant field (vr == 0): any tiny budget keeps every point exact.
    eb = std::numeric_limits<double>::min() * 1e6;
  }
  return eb;
}

/// Run fn(b) for every block, on the process-wide shared pool (the calling
/// thread plus threads-1 shared workers) when threads > 1. No per-call
/// pool spin-up: long-lived streaming jobs and many-small-field batches
/// reuse the same workers.
void for_each_block(std::size_t block_count, std::size_t threads,
                    const std::function<void(std::size_t)>& fn) {
  parallel::parallel_for_shared(block_count, threads, fn);
}

data::Dims dims_from_header(const io::BlockContainerHeader& h) {
  std::vector<std::size_t> extents(h.extents.begin(), h.extents.end());
  return data::Dims(std::move(extents));
}

template <typename T>
void check_scalar(const io::BlockContainerHeader& h) {
  if (h.scalar != static_cast<std::uint8_t>(sz::scalar_type_of<T>()))
    throw io::StreamError("block pipeline: scalar type mismatch");
}

}  // namespace

bool is_block_stream(std::span<const std::uint8_t> stream) {
  return io::is_block_container(stream);
}

BlockStreamInfo inspect_block_stream(std::span<const std::uint8_t> stream) {
  const auto view = io::open_block_container(stream);
  BlockStreamInfo info;
  info.version = view.header.version;
  info.codec = view.header.codec;
  const BlockCodec* codec = CodecRegistry::instance().find(view.header.codec);
  info.codec_name = codec ? codec->name() : "unknown";
  info.dims = dims_from_header(view.header);
  info.tile.assign(view.header.tile.begin(), view.header.tile.end());
  info.block_count = view.header.block_count;
  info.eb_abs = view.header.eb_abs;
  info.value_range = view.header.value_range;
  info.control_mode = static_cast<ControlMode>(view.header.control_mode);
  info.control_value = view.header.control_value;
  info.budget_mode = static_cast<BudgetMode>(view.header.budget_mode);
  if (view.header.has_temporal_chain()) {
    info.temporal = true;
    info.delta = view.header.is_delta_frame();
    info.series_id = view.header.series_id;
    info.timestep = view.header.timestep;
    info.ref_hash = view.header.ref_hash;
    for (std::size_t b = 0; b < view.header.block_count; ++b)
      if (view.header.block_is_temporal(b)) ++info.temporal_blocks;
  }
  if (view.header.has_block_sse()) {
    double total = 0.0;
    for (double s : view.block_sse) total += s;
    info.achieved_sse = total;
    const double mse = total / static_cast<double>(info.dims.count());
    // vr == 0 follows metrics::compare: +inf only for exact reconstruction.
    info.achieved_psnr_db =
        info.value_range > 0.0
            ? metrics::psnr_from_mse(mse, info.value_range)
            : (total == 0.0 ? std::numeric_limits<double>::infinity() : 0.0);
  } else {
    info.achieved_psnr_db = std::numeric_limits<double>::quiet_NaN();
  }
  return info;
}

namespace {

/// Everything the block loop needs, resolved once per call. Both the
/// in-memory and the streaming entry points build the same plan, so layout,
/// budgets, and header bytes cannot drift between the two paths.
struct BlockPlan {
  double vr = 0.0;
  double eb_abs = 0.0;  ///< base (uniform-equivalent) bound; 0 in rate mode
  TileLayout layout;
  CodecId codec_id = 0;
  const BlockCodec* codec = nullptr;
  BlockParams bp;
  /// Per-block absolute bounds; all equal to eb_abs under Uniform budgets.
  std::vector<double> block_eb;
  /// FixedRate mode: each block bisects its own bound toward this many
  /// compressed bits per value (run_block performs the search, so the
  /// searches parallelize like any other block work).
  bool rate_mode = false;
  double target_bits_per_value = 0.0;
  io::BlockContainerHeader header;
};

/// Adaptive per-block bounds (Eq. 3's general form, reverse-water-filling
/// flavour). A cheap rank-aware probe — per-axis RMS first differences
/// inside each tile — estimates each block's residual scale r_b as the
/// MINIMUM across axes: the neighborhood predictors (Lorenzo,
/// interpolation, transform groups) exploit the smoothest direction, so a
/// tile that is flat along any axis codes at the entropy floor even when a
/// 1-D C-order scan (which crosses row seams) would call it rough — this
/// is exactly the donor class the old 1-D probe missed on 2-D/3-D fields.
/// A block with r_b << eb never spends its allowance anyway: its residuals
/// quantize to the zero bin at any nearby bound, its rate sits at the
/// entropy floor, and its actual SSE is ~n*r^2, not n*eb^2/3. Such blocks
/// donate ledger budget (they are re-encoded at a tightened bound of
/// ~4*r_b, floored so no residual — not even an isolated spike on ANY axis
/// (the peak is the max across axes) — leaves the quantizable range,
/// keeping their rate at the entropy floor), and blocks ON the rate curve
/// (r_b >= eb/2) share the donations as one uniformly wider bin (the
/// log-rate model's optimum is equal bounds across coded blocks), so their
/// bits shrink log-linearly. Bounds stay within [eb/4, 4*eb] and the
/// aggregate worst-case SSE never exceeds the uniform plan's
/// N * eb^2 / 3 — the fixed-PSNR guarantee is preserved verbatim. The
/// probe depends only on the data and the layout, never the thread count.
///
/// Returns per-block bounds, or {} when the plan degenerates to uniform
/// (no block is on the rate curve, or there is nothing to donate).
template <typename T>
std::vector<double> adaptive_budgets(std::span<const T> values,
                                     const data::Dims& dims,
                                     const TileLayout& layout, double eb,
                                     std::uint32_t quantization_bins) {
  const std::size_t count = layout.block_count;
  if (count < 2) return {};
  const std::size_t rank = dims.rank();
  std::size_t stride[3];
  field_strides(dims, stride);
  std::vector<double> residual(count, 0.0);
  std::vector<double> peak(count, 0.0);
  std::vector<double> n_of(count, 0.0);
  for (std::size_t b = 0; b < count; ++b) {
    const TileRegion r = tile_region(layout, dims, b);
    double acc[3] = {0.0, 0.0, 0.0};
    std::size_t pairs[3] = {0, 0, 0};
    double max_d = 0.0;
    // One C-order walk over the tile; every point diffs against its
    // predecessor along each axis it has one (so each axis sees exactly
    // (ext_a - 1) * count / ext_a pairs, all interior to the tile — no
    // cross-row seams).
    std::size_t c[3] = {0, 0, 0};
    for (std::size_t i = 0; i < r.count; ++i) {
      std::size_t offset = 0;
      for (std::size_t a = 0; a < rank; ++a)
        offset += (r.start[a] + c[a]) * stride[a];
      const double v = static_cast<double>(values[offset]);
      for (std::size_t a = 0; a < rank; ++a) {
        if (c[a] == 0) continue;
        const double d =
            v - static_cast<double>(values[offset - stride[a]]);
        acc[a] += d * d;
        ++pairs[a];
        max_d = std::max(max_d, std::abs(d));
      }
      for (std::size_t a = rank; a-- > 0;) {
        if (++c[a] < r.ext[a]) break;
        c[a] = 0;
      }
    }
    double best = std::numeric_limits<double>::infinity();
    bool measured = false, have_pairs = false;
    for (std::size_t a = 0; a < rank; ++a) {
      if (pairs[a] == 0) continue;
      have_pairs = true;
      const double rms = std::sqrt(acc[a] / static_cast<double>(pairs[a]));
      if (std::isfinite(rms)) {
        best = std::min(best, rms);
        measured = true;
      }
    }
    // No pairs at all (single-point tile): a definitive flat donor. Pairs
    // that all went non-finite (NaN samples): keep NaN so the block stays
    // neutral below — exactly the old probe's behaviour on poisoned data.
    residual[b] = measured
                      ? best
                      : (have_pairs ? std::numeric_limits<double>::quiet_NaN()
                                    : 0.0);
    peak[b] = max_d;
    n_of[b] = static_cast<double>(r.count);
  }

  // Tightening a donor must never push one of its residuals outside the
  // quantizable range (|d| <= radius * 2 * eb_b), or an isolated spike in
  // an otherwise flat block would demote to an exactly-stored outlier and
  // grow the block. Keep a 4x safety margin over the block's peak
  // first difference relative to that range.
  const double radius = static_cast<double>(quantization_bins / 2);

  std::vector<double> block_eb(count, eb);
  double donated = 0.0;      // ledger budget freed by floor blocks
  double receiver_n = 0.0;   // values in rate-curve blocks
  for (std::size_t b = 0; b < count; ++b) {
    if (residual[b] < eb / 4.0) {
      // Floor block: tighten the recorded bound toward 4x its residual
      // scale (never below eb/4, never below the spike floor above);
      // typical residuals stay deep inside the zero bin, so the coded
      // bytes barely move while the ledger frees budget.
      const double spike_floor = 2.0 * peak[b] / radius;
      block_eb[b] =
          std::min(eb, std::max({4.0 * residual[b], spike_floor, eb / 4.0}));
      donated += n_of[b] * (eb * eb - block_eb[b] * block_eb[b]);
    } else if (residual[b] >= eb / 2.0) {
      receiver_n += n_of[b];
    }
  }
  if (receiver_n == 0.0 || donated <= 0.0) return {};

  const double widened =
      std::min(std::sqrt(eb * eb + donated / receiver_n), 4.0 * eb);
  for (std::size_t b = 0; b < count; ++b)
    if (residual[b] >= eb / 2.0) block_eb[b] = widened;
  return block_eb;
}

template <typename T>
BlockPlan plan_blocks(std::span<const T> values, const data::Dims& dims,
                      const ControlRequest& request,
                      const CompressOptions& options) {
  if (values.size() != dims.count())
    throw std::invalid_argument("block pipeline: value count does not match dims");

  BlockPlan plan;
  if (request.mode == ControlMode::FixedRate) {
    // Rate mode has no global error budget to split: every block bisects
    // its own bound in run_block. eb_abs = 0 in the header says "per-block,
    // see the self-describing block payloads" (each block stream records
    // the bound it was coded at).
    if (!(request.value > 0.0) || !std::isfinite(request.value))
      throw std::invalid_argument(
          "block pipeline: fixed-rate target must be positive and finite "
          "bits per value");
    plan.vr = options.value_range_override
                  ? *options.value_range_override
                  : metrics::value_range(values);
    plan.rate_mode = true;
    plan.target_bits_per_value = request.value;
  } else {
    plan.eb_abs = resolve_budget(request, values, options.value_range_override,
                                 &plan.vr);
  }
  plan.layout = make_layout(dims, options.parallel.tile);

  plan.codec_id = static_cast<CodecId>(options.engine);
  plan.codec = &CodecRegistry::instance().at(plan.codec_id);

  plan.bp.eb_abs = plan.eb_abs;
  plan.bp.quantization_bins = options.quantization_bins;
  plan.bp.backend = options.backend;
  plan.bp.predictor = options.sz_predictor;
  plan.bp.haar_levels = options.haar_levels;
  plan.bp.dct_block = options.dct_block;

  plan.block_eb.assign(plan.layout.block_count, plan.eb_abs);
  BudgetMode budget = options.budget;
  // Adaptive reallocation trades pointwise slack for aggregate rate, so it
  // only applies to the aggregate-distortion control modes (fixed-PSNR /
  // fixed-NRMSE). Absolute and value-range-relative requests are pointwise
  // |err| <= bound contracts — widening any block would break them, so
  // those plans stay uniform no matter what the option says.
  const bool aggregate_mode = request.mode == ControlMode::FixedPsnr ||
                              request.mode == ControlMode::FixedNrmse;
  if (budget == BudgetMode::Adaptive) {
    auto bounds = aggregate_mode && plan.vr > 0.0
                      ? adaptive_budgets(values, dims, plan.layout, plan.eb_abs,
                                         plan.bp.quantization_bins)
                      : std::vector<double>{};
    if (bounds.empty())
      budget = BudgetMode::Uniform;  // degenerate field: nothing to shift
    else
      plan.block_eb = std::move(bounds);
  }

  plan.header.codec = plan.codec_id;
  plan.header.scalar = static_cast<std::uint8_t>(sz::scalar_type_of<T>());
  plan.header.extents.assign(dims.extents.begin(), dims.extents.end());
  plan.header.tile.assign(plan.layout.tile.begin(), plan.layout.tile.end());
  plan.header.block_count = plan.layout.block_count;
  plan.header.eb_abs = plan.eb_abs;
  plan.header.value_range = plan.vr;
  plan.header.control_mode = static_cast<std::uint8_t>(request.mode);
  plan.header.control_value = request.value;
  plan.header.budget_mode = static_cast<std::uint8_t>(budget);
  if (options.temporal.enabled) {
    // Series frame: stamp the container v4 and carry the chain identity.
    // The bitmap must match THIS plan's block layout — the temporal layer
    // computes it from the same make_layout, but a caller handing in a
    // stale bitmap would silently mislabel blocks, so size-check it here.
    const TemporalLink& link = options.temporal;
    if (link.block_modes.size() != (plan.layout.block_count + 7) / 8)
      throw std::invalid_argument(
          "block pipeline: temporal mode bitmap does not match the block "
          "layout");
    plan.header.version = io::kBlockContainerVersionTemporal;
    plan.header.temporal_flags =
        static_cast<std::uint8_t>(io::kTemporalFlagSeries |
                                  (link.delta ? io::kTemporalFlagDelta : 0));
    plan.header.series_id = link.series_id;
    plan.header.timestep = link.timestep;
    plan.header.ref_hash = link.ref_hash;
    plan.header.block_modes = link.block_modes;
  }
  return plan;
}

/// Per-block fixed-rate search: bisect the block's absolute bound until the
/// codec's output lands on `target_bits` compressed bits per value.
///
/// The seed is closed-form, not a blind probe: a zfpr-style width census at
/// a reference bound eb0 (transform::fixed_rate_bits_estimate — one forward
/// DCT plus a per-group max-|index| scan, no encoding) gives rate(eb0), and
/// since every halving of the bound widens each bit-packed group by ~1 bit,
/// rate(eb) ~= rate(eb0) + log2(eb0/eb). Inverting that law lands the seed
/// within a bit or two of the target for any codec (the DCT census is a
/// decorrelation proxy even for the predictor paths), so the geometric
/// bisection that follows converges in a handful of real encodes.
///
/// Deterministic by construction: the search depends only on the block's
/// data and the plan — never on scheduling — so fixed-rate archives are
/// byte-identical at any thread count like every other mode.
template <typename T>
std::vector<std::uint8_t> rate_search_block(const BlockPlan& plan,
                                            std::span<const T> slice,
                                            const data::Dims& tile_dims,
                                            BlockInfo* info) {
  const double n = static_cast<double>(slice.size());
  const double target_bytes = plan.target_bits_per_value * n / 8.0;
  if (plan.vr == 0.0) {
    // Degenerate (constant) field: its rate sits at the entropy floor for
    // any bound, so searching could only trade exactness for nothing —
    // encode once with the same tiny budget the error-bounded modes use
    // and keep the field exact. (A NaN range — NaN samples in a varying
    // field — is NOT degenerate; it falls through to the search, which
    // re-derives its scale from the finite samples below.)
    BlockParams bp = plan.bp;
    bp.eb_abs = std::numeric_limits<double>::min() * 1e6;
    return plan.codec->compress(slice, tile_dims, bp, info);
  }
  // A single NaN/Inf sample makes the plan's value range non-finite, which
  // would poison every derived bound below (eb_min/eb_max = Inf, and the
  // census seed would reject its own Inf error bound). The search only
  // needs a magnitude scale, so fall back to the largest finite |value| in
  // the block (or 1.0 when nothing is finite) — the codecs themselves
  // store non-finite samples as exact outliers at any bound.
  double scale = plan.vr;
  if (!std::isfinite(scale)) {
    double max_abs = 0.0;
    for (const T v : slice) {
      const double d = std::abs(static_cast<double>(v));
      if (std::isfinite(d) && d > max_abs) max_abs = d;
    }
    scale = max_abs > 0.0 ? max_abs : 1.0;
  }
  // Bounds outside this window are degenerate: below eb_min the quantizer
  // is at float-precision resolution; above eb_max the whole range fits in
  // one bin and the rate cannot drop further.
  const double eb_min = scale * 1e-12;
  const double eb_max = scale * 4.0;

  auto encode = [&](double eb, BlockInfo* bi) {
    BlockParams bp = plan.bp;
    bp.eb_abs = eb;
    return plan.codec->compress(slice, tile_dims, bp, bi);
  };

  // Closed-form seed from the per-group width census.
  transform::FixedRateParams census;
  census.eb_abs = scale * 1e-4;
  census.dct_block = plan.bp.dct_block;
  const double est_bits =
      transform::fixed_rate_bits_estimate(slice, tile_dims, census);
  double eb = std::clamp(
      census.eb_abs * std::exp2(est_bits - plan.target_bits_per_value),
      eb_min, eb_max);
  // std::clamp passes NaN through (and a non-finite census on pathological
  // data can produce one); restart the bisection from the window's
  // geometric midpoint instead of feeding NaN to the codec.
  if (!std::isfinite(eb)) eb = std::sqrt(eb_min * eb_max);

  BlockInfo best_info;
  std::vector<std::uint8_t> best_bytes = encode(eb, &best_info);
  double best_gap = std::abs(static_cast<double>(best_bytes.size()) -
                             target_bytes);
  double best_eb = eb;

  // Keep the encode whose size sits closest to the target; ties go to the
  // smaller bound (same bytes, less distortion).
  auto consider = [&](double cand_eb, std::vector<std::uint8_t>&& bytes,
                      const BlockInfo& bi) {
    const double gap =
        std::abs(static_cast<double>(bytes.size()) - target_bytes);
    if (gap < best_gap || (gap == best_gap && cand_eb < best_eb)) {
      best_gap = gap;
      best_eb = cand_eb;
      best_bytes = std::move(bytes);
      best_info = bi;
    }
  };

  // Bracket the target: rate decreases monotonically as the bound grows.
  double lo = eb, hi = eb;  // bytes(lo) >= target >= bytes(hi)
  if (static_cast<double>(best_bytes.size()) > target_bytes) {
    while (hi < eb_max) {
      hi = std::min(hi * 4.0, eb_max);
      BlockInfo bi;
      auto bytes = encode(hi, &bi);
      const bool done = static_cast<double>(bytes.size()) <= target_bytes;
      consider(hi, std::move(bytes), bi);
      if (done) break;
      lo = hi;  // still over target: the bracket floor moves up with it
    }
  } else {
    while (lo > eb_min) {
      lo = std::max(lo / 4.0, eb_min);
      BlockInfo bi;
      auto bytes = encode(lo, &bi);
      const bool done = static_cast<double>(bytes.size()) >= target_bytes;
      consider(lo, std::move(bytes), bi);
      if (done) break;
      hi = lo;  // still under target: the bracket ceiling moves down
    }
  }

  // Geometric bisection inside the bracket; keep the closest encode seen.
  for (int iter = 0; iter < 14 && hi / lo > 1.0 + 1e-3; ++iter) {
    const double mid = std::sqrt(lo * hi);
    BlockInfo bi;
    auto bytes = encode(mid, &bi);
    const bool over = static_cast<double>(bytes.size()) > target_bytes;
    consider(mid, std::move(bytes), bi);
    if (over)
      lo = mid;
    else
      hi = mid;
  }

  if (info) *info = best_info;
  return best_bytes;
}

/// Per-block budget accounting: every value must be covered exactly once,
/// and the per-block SSE budgets must sum back to the serial model
/// N * eb^2 / 3 — i.e. blocking spent exactly the global budget, no more.
/// Both entry points call this BEFORE finalizing their output (serializing
/// / renaming onto the target path), so a validation failure never
/// installs an archive. Size-dependent fields are filled by
/// set_size_info once the container size is known.
template <typename T>
CompressResult account_blocks(const BlockPlan& plan, std::span<const T> values,
                              const ControlRequest& request,
                              const std::vector<BlockInfo>& block_infos) {
  CompressResult out;
  out.request = request;
  out.block_count = plan.layout.block_count;
  out.tile = plan.layout.tile;
  std::size_t covered = 0;
  double sse_budget = 0.0;
  double achieved_sse = 0.0;
  for (const BlockInfo& bi : block_infos) {
    covered += bi.value_count;
    sse_budget += bi.sse_budget;
    achieved_sse += bi.achieved_sse;
    out.info.outlier_count += bi.outlier_count;
  }
  if (covered != values.size())
    throw std::logic_error("block pipeline: blocks do not cover the field");
  if (plan.rate_mode) {
    // Fixed-rate mode has no global error budget to enforce: each block
    // chose its own bound to land on the rate target, so the only honest
    // PSNR is the measured one from the per-block SSE column.
    out.predicted_psnr_db = std::numeric_limits<double>::quiet_NaN();
    // vr == 0 follows metrics::compare's convention: +inf only when the
    // reconstruction is exact.
    out.achieved_psnr_db =
        plan.vr > 0.0
            ? metrics::psnr_from_mse(
                  achieved_sse / static_cast<double>(values.size()), plan.vr)
            : (achieved_sse == 0.0
                   ? std::numeric_limits<double>::infinity()
                   : 0.0);
    out.rel_bound_used = 0.0;
    out.info.eb_abs_used = 0.0;
    out.info.value_range = plan.vr;
    out.info.value_count = values.size();
    out.info.achieved_sse = achieved_sse;
    return out;
  }
  const double global_budget =
      static_cast<double>(values.size()) * plan.eb_abs * plan.eb_abs / 3.0;
  if (sse_budget > global_budget * (1.0 + 1e-9))
    throw std::logic_error("block pipeline: per-block budgets exceed the "
                           "global error budget");

  out.predicted_psnr_db = plan.vr > 0.0
                              ? psnr_for_abs_bound(plan.eb_abs, plan.vr)
                              : std::numeric_limits<double>::infinity();
  out.achieved_psnr_db =
      plan.vr > 0.0
          ? metrics::psnr_from_mse(
                achieved_sse / static_cast<double>(values.size()), plan.vr)
          : std::numeric_limits<double>::infinity();
  out.rel_bound_used = plan.vr > 0.0 ? plan.eb_abs / plan.vr : 0.0;
  out.info.eb_abs_used = plan.eb_abs;
  out.info.value_range = plan.vr;
  out.info.value_count = values.size();
  out.info.achieved_sse = achieved_sse;
  return out;
}

void set_size_info(CompressResult& out, std::size_t raw_bytes,
                   std::size_t compressed_bytes) {
  out.info.compressed_bytes = compressed_bytes;
  out.info.compression_ratio =
      metrics::compression_ratio(raw_bytes, compressed_bytes);
  out.info.bit_rate = metrics::bit_rate(compressed_bytes, out.info.value_count);
}

}  // namespace

/// All job state behind the pimpl. Exactly one of `mem` / `file` is
/// engaged, chosen by which constructor ran. `remaining` is the only
/// cross-thread coordination run_block needs: the writers do their own
/// locking, block_infos slots are per-index, and the plan is immutable
/// after construction.
template <typename T>
struct FieldCompressor<T>::Impl {
  std::span<const T> values;
  data::Dims dims;
  ControlRequest request;
  BlockPlan plan;
  std::vector<BlockInfo> block_infos;
  std::optional<io::BlockContainerWriter> mem;
  std::optional<io::StreamingArchiveWriter> file;
  std::atomic<std::size_t> remaining{0};
  bool finalized = false;

  Impl(std::span<const T> v, const data::Dims& d, const ControlRequest& r,
       const CompressOptions& options)
      : values(v), dims(d), request(r),
        plan(plan_blocks(v, d, r, options)),
        block_infos(plan.layout.block_count),
        remaining(plan.layout.block_count) {}
};

template <typename T>
FieldCompressor<T>::FieldCompressor(std::span<const T> values,
                                    const data::Dims& dims,
                                    const ControlRequest& request,
                                    const CompressOptions& options)
    : impl_(std::make_unique<Impl>(values, dims, request, options)) {
  impl_->mem.emplace(impl_->plan.header);
}

template <typename T>
FieldCompressor<T>::FieldCompressor(std::span<const T> values,
                                    const data::Dims& dims,
                                    const ControlRequest& request,
                                    const CompressOptions& options,
                                    std::string path)
    : impl_(std::make_unique<Impl>(values, dims, request, options)) {
  impl_->file.emplace(std::move(path), impl_->plan.header);
}

template <typename T>
FieldCompressor<T>::~FieldCompressor() = default;

template <typename T>
FieldCompressor<T>::FieldCompressor(FieldCompressor&&) noexcept = default;

template <typename T>
FieldCompressor<T>& FieldCompressor<T>::operator=(FieldCompressor&&) noexcept =
    default;

template <typename T>
std::size_t FieldCompressor<T>::block_count() const {
  return impl_->plan.layout.block_count;
}

template <typename T>
bool FieldCompressor<T>::complete() const {
  return impl_->remaining.load(std::memory_order_acquire) == 0;
}

template <typename T>
bool FieldCompressor<T>::run_block(std::size_t b) {
  Impl& im = *impl_;
  const BlockPlan& plan = im.plan;
  if (b >= plan.layout.block_count)
    throw std::out_of_range("block pipeline: run_block index out of range");
  const TileRegion region = tile_region(plan.layout, im.dims, b);
  const data::Dims tile_dims = region_dims(region, im.dims.rank());
  // Slab-shaped tiles (the only geometry v1/v2 had) are contiguous runs of
  // the field buffer and are borrowed in place; true multi-axis tiles are
  // gathered into a scratch copy the codec sees as a dense C-order field.
  std::vector<T> gathered;
  std::span<const T> slice;
  if (region_contiguous(region, im.dims)) {
    slice = im.values.subspan(region.start[0] * plan.layout.row_stride,
                              region.count);
  } else {
    gathered.resize(region.count);
    gather_tile(im.values, im.dims, region, std::span<T>(gathered));
    slice = gathered;
  }
  std::vector<std::uint8_t> bytes;
  if (plan.rate_mode) {
    bytes = rate_search_block(plan, slice, tile_dims, &im.block_infos[b]);
  } else {
    BlockParams bp = plan.bp;
    bp.eb_abs = plan.block_eb[b];
    bytes = plan.codec->compress(slice, tile_dims, bp, &im.block_infos[b]);
  }
  // A block whose primary encoding is no smaller than the raw passthrough
  // is demoted to the store codec — the decision depends only on the data,
  // so output bytes stay schedule- and thread-count independent.
  if (plan.codec_id != kCodecStore &&
      bytes.size() >= store_encoded_size(slice.size(), sizeof(T))) {
    im.block_infos[b] = BlockInfo{};
    // The store stand-in must account the block's OWN bound (adaptive
    // plans tighten/widen per block; rate mode records 0) or the
    // sse_budget sum drifts from the plan the accounting validates.
    BlockParams store_bp = plan.bp;
    store_bp.eb_abs = plan.block_eb[b];
    bytes = CodecRegistry::instance().at(kCodecStore).compress(
        slice, tile_dims, store_bp, &im.block_infos[b]);
  }
  // Non-finite samples poison the block's SSE (NaN - NaN = NaN even when
  // the sample was stored as an exact outlier), and the container's SSE
  // column is finite by contract. Record 0 for such a block: pointwise
  // codecs really did reproduce the poisoned samples exactly, and any
  // aggregate distortion metric over a non-finite field is meaningless
  // regardless of what we record.
  if (!std::isfinite(im.block_infos[b].achieved_sse))
    im.block_infos[b].achieved_sse = 0.0;
  // The writers reject duplicate indices, so a double-run can never reach
  // the counter and mis-report completion.
  if (im.mem)
    im.mem->add_block(b, std::move(bytes), im.block_infos[b].achieved_sse);
  else
    im.file->add_block(b, std::move(bytes), im.block_infos[b].achieved_sse);
  return im.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1;
}

template <typename T>
std::uint64_t FieldCompressor<T>::locality_key(std::size_t b) const {
  // Coarsen the tile grid by 2 per axis: the 2^rank tiles of one coarse
  // cell share faces (and the rows flanking them share cache lines), so a
  // locality-aware queue keeps them on one worker. +1 keeps the key
  // non-zero — 0 means "no affinity" to the scheduler.
  const TileLayout& l = impl_->plan.layout;
  const std::size_t rank = impl_->dims.rank();
  std::uint64_t key = 0;
  std::size_t rem = b;
  for (std::size_t a = rank; a-- > 0;) {
    const std::size_t c = rem % l.grid[a];
    rem /= l.grid[a];
    const std::uint64_t coarse_count = (l.grid[a] + 1) / 2;
    key = key * coarse_count + (c / 2);
  }
  return key + 1;
}

template <typename T>
CompressResult FieldCompressor<T>::finalize(io::StreamingStats* stats) {
  Impl& im = *impl_;
  if (im.finalized)
    throw std::logic_error("block pipeline: finalize called twice");
  if (!complete())
    throw std::logic_error("block pipeline: finalize before every block ran");
  // Validate the budget accounting BEFORE finishing the writer: if it
  // fails, the streaming writer is destroyed unfinished and the partial
  // file removed — nothing is ever installed at the target path for a run
  // the API reports as failed.
  CompressResult out =
      account_blocks(im.plan, im.values, im.request, im.block_infos);
  if (im.mem) {
    out.stream = im.mem->finish();
    set_size_info(out, im.values.size() * sizeof(T), out.stream.size());
  } else {
    const std::uint64_t total = im.file->finish();
    if (stats) *stats = im.file->stats();
    set_size_info(out, im.values.size() * sizeof(T),
                  static_cast<std::size_t>(total));
  }
  im.finalized = true;
  return out;
}

template <typename T>
CompressResult compress_blocked(std::span<const T> values,
                                const data::Dims& dims,
                                const ControlRequest& request,
                                const CompressOptions& options) {
  FieldCompressor<T> job(values, dims, request, options);
  for_each_block(job.block_count(), options.parallel.threads,
                 [&](std::size_t b) { job.run_block(b); });
  return job.finalize();
}

template <typename T>
CompressResult compress_to_file(std::span<const T> values,
                                const data::Dims& dims,
                                const ControlRequest& request,
                                const CompressOptions& options,
                                const std::string& path,
                                io::StreamingStats* stats) {
  FieldCompressor<T> job(values, dims, request, options, path);
  for_each_block(job.block_count(), options.parallel.threads,
                 [&](std::size_t b) { job.run_block(b); });
  return job.finalize(stats);
}

template <typename T>
sz::Decompressed<T> decompress_blocked(std::span<const std::uint8_t> stream,
                                       std::size_t threads) {
  const auto view = io::open_block_container(stream);
  check_scalar<T>(view.header);
  const data::Dims dims = dims_from_header(view.header);
  const std::vector<std::size_t> tile(view.header.tile.begin(),
                                      view.header.tile.end());
  const TileLayout layout = make_layout(dims, tile);
  if (layout.block_count != view.blocks.size())
    throw io::StreamError("block pipeline: index/block-count mismatch");
  const BlockCodec& codec = CodecRegistry::instance().at(view.header.codec);
  const BlockCodec& store = CodecRegistry::instance().at(kCodecStore);

  sz::Decompressed<T> out;
  out.dims = dims;
  out.values.resize(dims.count());
  std::span<T> all(out.values);
  for_each_block(layout.block_count, threads, [&](std::size_t b) {
    const TileRegion region = tile_region(layout, dims, b);
    // Incompressible blocks are store-demoted at compress time; each
    // block's own magic says which codec wrote it.
    const BlockCodec& c =
        is_store_block_stream(view.blocks[b]) ? store : codec;
    if (region_contiguous(region, dims)) {
      c.decompress(view.blocks[b],
                   all.subspan(region.start[0] * layout.row_stride,
                               region.count));
    } else {
      std::vector<T> scratch(region.count);
      c.decompress(view.blocks[b], std::span<T>(scratch));
      scatter_tile(std::span<const T>(scratch), dims, region, all);
    }
  });
  return out;
}

template <typename T>
sz::Decompressed<T> decompress_block(std::span<const std::uint8_t> stream,
                                     std::size_t block_index) {
  const io::BlockContainerHeader header = io::block_container_header(stream);
  check_scalar<T>(header);
  const auto bytes = io::block_container_entry(stream, block_index);
  const data::Dims dims = dims_from_header(header);
  const std::vector<std::size_t> tile(header.tile.begin(), header.tile.end());
  const TileLayout layout = make_layout(dims, tile);
  const TileRegion region = tile_region(layout, dims, block_index);
  const BlockCodec& codec = CodecRegistry::instance().at(
      is_store_block_stream(bytes) ? kCodecStore : header.codec);

  sz::Decompressed<T> out;
  out.dims = region_dims(region, dims.rank());
  out.values.resize(out.dims.count());
  codec.decompress(bytes, std::span<T>(out.values));
  return out;
}

template <typename T>
sz::Decompressed<T> decompress_file(const std::string& path,
                                    std::size_t threads) {
  const io::MmapArchiveReader reader(path);
  return decompress_blocked<T>(reader.bytes(), threads);
}

template <typename T>
sz::Decompressed<T> decompress_file_block(const std::string& path,
                                          std::size_t block_index) {
  const io::MmapArchiveReader reader(path);
  return decompress_block<T>(reader.bytes(), block_index);
}

template class FieldCompressor<float>;
template class FieldCompressor<double>;
template CompressResult compress_blocked<float>(std::span<const float>,
                                                const data::Dims&,
                                                const ControlRequest&,
                                                const CompressOptions&);
template CompressResult compress_blocked<double>(std::span<const double>,
                                                 const data::Dims&,
                                                 const ControlRequest&,
                                                 const CompressOptions&);
template sz::Decompressed<float> decompress_blocked<float>(
    std::span<const std::uint8_t>, std::size_t);
template sz::Decompressed<double> decompress_blocked<double>(
    std::span<const std::uint8_t>, std::size_t);
template sz::Decompressed<float> decompress_block<float>(
    std::span<const std::uint8_t>, std::size_t);
template sz::Decompressed<double> decompress_block<double>(
    std::span<const std::uint8_t>, std::size_t);
template CompressResult compress_to_file<float>(
    std::span<const float>, const data::Dims&, const ControlRequest&,
    const CompressOptions&, const std::string&, io::StreamingStats*);
template CompressResult compress_to_file<double>(
    std::span<const double>, const data::Dims&, const ControlRequest&,
    const CompressOptions&, const std::string&, io::StreamingStats*);
template sz::Decompressed<float> decompress_file<float>(const std::string&,
                                                        std::size_t);
template sz::Decompressed<double> decompress_file<double>(const std::string&,
                                                          std::size_t);
template sz::Decompressed<float> decompress_file_block<float>(
    const std::string&, std::size_t);
template sz::Decompressed<double> decompress_file_block<double>(
    const std::string&, std::size_t);

}  // namespace fpsnr::core
