#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/distortion_model.h"
#include "io/archive.h"
#include "io/streaming_archive.h"
#include "metrics/metrics.h"
#include "parallel/shared_pool.h"
#include "sz/stream_format.h"

namespace fpsnr::core {

namespace {

data::Dims slab_dims(const data::Dims& dims, std::size_t rows) {
  std::vector<std::size_t> e(dims.extents);
  e[0] = rows;
  return data::Dims(std::move(e));
}

/// Resolve any uniform-budget control request to the absolute per-point
/// budget every block shares. Throws for modes without one. Validation is
/// delegated to resolve_control so bad requests (non-positive bounds,
/// non-finite PSNR targets, fixed-rate) are rejected exactly as the serial
/// facade rejects them.
template <typename T>
double resolve_budget(const ControlRequest& request, std::span<const T> values,
                      double* value_range_out) {
  const double vr = metrics::value_range(values);
  if (value_range_out) *value_range_out = vr;
  const ResolvedControl rc = resolve_control(request);
  if (rc.sz_mode == sz::ErrorBoundMode::PointwiseRelative)
    throw std::invalid_argument(
        "block pipeline: only uniform-budget control modes are supported "
        "(fixed-psnr / abs / rel / nrmse)");
  double eb = rc.sz_mode == sz::ErrorBoundMode::Absolute ? rc.sz_bound
                                                         : rc.sz_bound * vr;
  if (!(eb > 0.0)) {
    // Constant field (vr == 0): any tiny budget keeps every point exact.
    eb = std::numeric_limits<double>::min() * 1e6;
  }
  return eb;
}

struct BlockLayout {
  std::size_t rows_per_block, block_count, row_stride;
};

BlockLayout make_layout(const data::Dims& dims, std::size_t block_rows) {
  BlockLayout l;
  l.row_stride = dims.count() / dims[0];
  l.rows_per_block = block_rows == 0
                         ? auto_block_rows(dims)
                         : std::clamp<std::size_t>(block_rows, 1, dims[0]);
  l.block_count = (dims[0] + l.rows_per_block - 1) / l.rows_per_block;
  return l;
}

std::size_t block_first_row(const BlockLayout& l, std::size_t b) {
  return b * l.rows_per_block;
}

std::size_t block_rows_of(const BlockLayout& l, const data::Dims& dims,
                          std::size_t b) {
  return std::min(l.rows_per_block, dims[0] - block_first_row(l, b));
}

/// Run fn(b) for every block, on the process-wide shared pool (the calling
/// thread plus threads-1 shared workers) when threads > 1. No per-call
/// pool spin-up: long-lived streaming jobs and many-small-field batches
/// reuse the same workers.
void for_each_block(std::size_t block_count, std::size_t threads,
                    const std::function<void(std::size_t)>& fn) {
  parallel::parallel_for_shared(block_count, threads, fn);
}

data::Dims dims_from_header(const io::BlockContainerHeader& h) {
  std::vector<std::size_t> extents(h.extents.begin(), h.extents.end());
  return data::Dims(std::move(extents));
}

template <typename T>
void check_scalar(const io::BlockContainerHeader& h) {
  if (h.scalar != static_cast<std::uint8_t>(sz::scalar_type_of<T>()))
    throw io::StreamError("block pipeline: scalar type mismatch");
}

}  // namespace

std::size_t auto_block_rows(const data::Dims& dims) {
  const std::size_t row_stride = dims.count() / dims[0];
  const std::size_t rows = (kAutoBlockValues + row_stride - 1) / row_stride;
  return std::clamp<std::size_t>(rows, 1, dims[0]);
}

bool is_block_stream(std::span<const std::uint8_t> stream) {
  return io::is_block_container(stream);
}

BlockStreamInfo inspect_block_stream(std::span<const std::uint8_t> stream) {
  const auto view = io::open_block_container(stream);
  BlockStreamInfo info;
  info.codec = view.header.codec;
  const BlockCodec* codec = CodecRegistry::instance().find(view.header.codec);
  info.codec_name = codec ? codec->name() : "unknown";
  info.dims = dims_from_header(view.header);
  info.block_rows = view.header.block_rows;
  info.block_count = view.header.block_count;
  info.eb_abs = view.header.eb_abs;
  info.value_range = view.header.value_range;
  info.control_mode = static_cast<ControlMode>(view.header.control_mode);
  info.control_value = view.header.control_value;
  return info;
}

namespace {

/// Everything the block loop needs, resolved once per call. Both the
/// in-memory and the streaming entry points build the same plan, so layout,
/// budgets, and header bytes cannot drift between the two paths.
struct BlockPlan {
  double vr = 0.0;
  double eb_abs = 0.0;
  BlockLayout layout;
  const BlockCodec* codec = nullptr;
  BlockParams bp;
  io::BlockContainerHeader header;
};

template <typename T>
BlockPlan plan_blocks(std::span<const T> values, const data::Dims& dims,
                      const ControlRequest& request,
                      const CompressOptions& options) {
  if (values.size() != dims.count())
    throw std::invalid_argument("block pipeline: value count does not match dims");

  BlockPlan plan;
  plan.eb_abs = resolve_budget(request, values, &plan.vr);
  plan.layout = make_layout(dims, options.parallel.block_rows);

  const CodecId codec_id = static_cast<CodecId>(options.engine);
  plan.codec = &CodecRegistry::instance().at(codec_id);

  plan.bp.eb_abs = plan.eb_abs;
  plan.bp.quantization_bins = options.quantization_bins;
  plan.bp.backend = options.backend;
  plan.bp.predictor = options.sz_predictor;
  plan.bp.haar_levels = options.haar_levels;
  plan.bp.dct_block = options.dct_block;

  plan.header.codec = codec_id;
  plan.header.scalar = static_cast<std::uint8_t>(sz::scalar_type_of<T>());
  plan.header.extents.assign(dims.extents.begin(), dims.extents.end());
  plan.header.block_rows = plan.layout.rows_per_block;
  plan.header.block_count = plan.layout.block_count;
  plan.header.eb_abs = plan.eb_abs;
  plan.header.value_range = plan.vr;
  plan.header.control_mode = static_cast<std::uint8_t>(request.mode);
  plan.header.control_value = request.value;
  return plan;
}

/// Compress every block on the shared pool, handing each finished block to
/// `sink(b, bytes)` (thread-safe in both writers).
template <typename T>
void run_blocks(const BlockPlan& plan, std::span<const T> values,
                const data::Dims& dims, std::size_t threads,
                std::vector<BlockInfo>& block_infos,
                const std::function<void(std::size_t, std::vector<std::uint8_t>)>&
                    sink) {
  block_infos.assign(plan.layout.block_count, BlockInfo{});
  for_each_block(plan.layout.block_count, threads, [&](std::size_t b) {
    const std::size_t first = block_first_row(plan.layout, b);
    const std::size_t rows = block_rows_of(plan.layout, dims, b);
    const auto slice = values.subspan(first * plan.layout.row_stride,
                                      rows * plan.layout.row_stride);
    sink(b, plan.codec->compress(slice, slab_dims(dims, rows), plan.bp,
                                 &block_infos[b]));
  });
}

/// Per-block budget accounting: every value must be covered exactly once,
/// and the per-block SSE budgets must sum back to the serial model
/// N * eb^2 / 3 — i.e. blocking spent exactly the global budget, no more.
/// Both entry points call this BEFORE finalizing their output (serializing
/// / renaming onto the target path), so a validation failure never
/// installs an archive. Size-dependent fields are filled by
/// set_size_info once the container size is known.
template <typename T>
CompressResult account_blocks(const BlockPlan& plan, std::span<const T> values,
                              const ControlRequest& request,
                              const std::vector<BlockInfo>& block_infos) {
  CompressResult out;
  out.request = request;
  std::size_t covered = 0;
  double sse_budget = 0.0;
  for (const BlockInfo& bi : block_infos) {
    covered += bi.value_count;
    sse_budget += bi.sse_budget;
    out.info.outlier_count += bi.outlier_count;
  }
  if (covered != values.size())
    throw std::logic_error("block pipeline: blocks do not cover the field");
  const double global_budget =
      static_cast<double>(values.size()) * plan.eb_abs * plan.eb_abs / 3.0;
  if (sse_budget > global_budget * (1.0 + 1e-9))
    throw std::logic_error("block pipeline: per-block budgets exceed the "
                           "global error budget");

  out.predicted_psnr_db = plan.vr > 0.0
                              ? psnr_for_abs_bound(plan.eb_abs, plan.vr)
                              : std::numeric_limits<double>::infinity();
  out.rel_bound_used = plan.vr > 0.0 ? plan.eb_abs / plan.vr : 0.0;
  out.info.eb_abs_used = plan.eb_abs;
  out.info.value_range = plan.vr;
  out.info.value_count = values.size();
  return out;
}

void set_size_info(CompressResult& out, std::size_t raw_bytes,
                   std::size_t compressed_bytes) {
  out.info.compressed_bytes = compressed_bytes;
  out.info.compression_ratio =
      metrics::compression_ratio(raw_bytes, compressed_bytes);
  out.info.bit_rate = metrics::bit_rate(compressed_bytes, out.info.value_count);
}

}  // namespace

template <typename T>
CompressResult compress_blocked(std::span<const T> values,
                                const data::Dims& dims,
                                const ControlRequest& request,
                                const CompressOptions& options) {
  const BlockPlan plan = plan_blocks(values, dims, request, options);
  io::BlockContainerWriter writer(plan.header);
  std::vector<BlockInfo> block_infos;
  run_blocks(plan, values, dims, options.parallel.threads, block_infos,
             [&](std::size_t b, std::vector<std::uint8_t> bytes) {
               writer.add_block(b, std::move(bytes));
             });
  CompressResult out = account_blocks(plan, values, request, block_infos);
  out.stream = writer.finish();
  set_size_info(out, values.size() * sizeof(T), out.stream.size());
  return out;
}

template <typename T>
CompressResult compress_to_file(std::span<const T> values,
                                const data::Dims& dims,
                                const ControlRequest& request,
                                const CompressOptions& options,
                                const std::string& path,
                                io::StreamingStats* stats) {
  const BlockPlan plan = plan_blocks(values, dims, request, options);
  io::StreamingArchiveWriter writer(path, plan.header);
  std::vector<BlockInfo> block_infos;
  run_blocks(plan, values, dims, options.parallel.threads, block_infos,
             [&](std::size_t b, std::vector<std::uint8_t> bytes) {
               writer.add_block(b, std::move(bytes));
             });
  // Validate the budget accounting first: if it fails, the unfinished
  // writer is destroyed and the partial file removed — nothing is ever
  // installed at `path` for a run the API reports as failed.
  CompressResult out = account_blocks(plan, values, request, block_infos);
  const std::uint64_t total = writer.finish();
  if (stats) *stats = writer.stats();
  set_size_info(out, values.size() * sizeof(T), static_cast<std::size_t>(total));
  return out;
}

template <typename T>
sz::Decompressed<T> decompress_blocked(std::span<const std::uint8_t> stream,
                                       std::size_t threads) {
  const auto view = io::open_block_container(stream);
  check_scalar<T>(view.header);
  const data::Dims dims = dims_from_header(view.header);
  const BlockLayout layout = make_layout(dims, view.header.block_rows);
  if (layout.block_count != view.blocks.size())
    throw io::StreamError("block pipeline: index/block-count mismatch");
  const BlockCodec& codec = CodecRegistry::instance().at(view.header.codec);

  sz::Decompressed<T> out;
  out.dims = dims;
  out.values.resize(dims.count());
  std::span<T> all(out.values);
  for_each_block(layout.block_count, threads, [&](std::size_t b) {
    const std::size_t first = block_first_row(layout, b);
    const std::size_t rows = block_rows_of(layout, dims, b);
    codec.decompress(view.blocks[b], all.subspan(first * layout.row_stride,
                                                 rows * layout.row_stride));
  });
  return out;
}

template <typename T>
sz::Decompressed<T> decompress_block(std::span<const std::uint8_t> stream,
                                     std::size_t block_index) {
  const io::BlockContainerHeader header = io::block_container_header(stream);
  check_scalar<T>(header);
  const auto bytes = io::block_container_entry(stream, block_index);
  const data::Dims dims = dims_from_header(header);
  const BlockLayout layout = make_layout(dims, header.block_rows);
  const std::size_t rows = block_rows_of(layout, dims, block_index);
  const BlockCodec& codec = CodecRegistry::instance().at(header.codec);

  sz::Decompressed<T> out;
  out.dims = slab_dims(dims, rows);
  out.values.resize(out.dims.count());
  codec.decompress(bytes, std::span<T>(out.values));
  return out;
}

template <typename T>
sz::Decompressed<T> decompress_file(const std::string& path,
                                    std::size_t threads) {
  const io::MmapArchiveReader reader(path);
  return decompress_blocked<T>(reader.bytes(), threads);
}

template <typename T>
sz::Decompressed<T> decompress_file_block(const std::string& path,
                                          std::size_t block_index) {
  const io::MmapArchiveReader reader(path);
  return decompress_block<T>(reader.bytes(), block_index);
}

template CompressResult compress_blocked<float>(std::span<const float>,
                                                const data::Dims&,
                                                const ControlRequest&,
                                                const CompressOptions&);
template CompressResult compress_blocked<double>(std::span<const double>,
                                                 const data::Dims&,
                                                 const ControlRequest&,
                                                 const CompressOptions&);
template sz::Decompressed<float> decompress_blocked<float>(
    std::span<const std::uint8_t>, std::size_t);
template sz::Decompressed<double> decompress_blocked<double>(
    std::span<const std::uint8_t>, std::size_t);
template sz::Decompressed<float> decompress_block<float>(
    std::span<const std::uint8_t>, std::size_t);
template sz::Decompressed<double> decompress_block<double>(
    std::span<const std::uint8_t>, std::size_t);
template CompressResult compress_to_file<float>(
    std::span<const float>, const data::Dims&, const ControlRequest&,
    const CompressOptions&, const std::string&, io::StreamingStats*);
template CompressResult compress_to_file<double>(
    std::span<const double>, const data::Dims&, const ControlRequest&,
    const CompressOptions&, const std::string&, io::StreamingStats*);
template sz::Decompressed<float> decompress_file<float>(const std::string&,
                                                        std::size_t);
template sz::Decompressed<double> decompress_file<double>(const std::string&,
                                                          std::size_t);
template sz::Decompressed<float> decompress_file_block<float>(
    const std::string&, std::size_t);
template sz::Decompressed<double> decompress_file_block<double>(
    const std::string&, std::size_t);

}  // namespace fpsnr::core
