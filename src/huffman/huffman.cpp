#include "huffman/huffman.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "simd/dispatch.h"

namespace fpsnr::huffman {

namespace {

/// Reverse the low `nbits` bits of `code` (for LSB-first emission).
std::uint32_t reverse_bits(std::uint32_t code, unsigned nbits) {
  std::uint32_t out = 0;
  for (unsigned i = 0; i < nbits; ++i) {
    out = (out << 1) | (code & 1u);
    code >>= 1;
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freq,
                                             unsigned max_length) {
  if (max_length == 0 || max_length > kMaxCodeLength)
    throw std::invalid_argument("build_code_lengths: bad max_length");
  const std::size_t n = freq.size();
  std::vector<std::uint8_t> lengths(n, 0);

  std::vector<std::uint32_t> used;
  used.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    if (freq[i] > 0) used.push_back(i);

  if (used.empty()) return lengths;
  if (used.size() == 1) {
    // A single symbol still needs one bit so the decoder can count symbols.
    lengths[used[0]] = 1;
    return lengths;
  }
  if (used.size() > (std::uint64_t{1} << max_length))
    throw std::invalid_argument("build_code_lengths: alphabet too large for max_length");

  // Standard heap-based Huffman tree. Node ids: [0, used.size()) are leaves,
  // internal nodes follow. parent[] lets us recover depths without pointers.
  struct HeapItem {
    std::uint64_t weight;
    std::uint32_t node;
    bool operator>(const HeapItem& o) const {
      // Tie-break on node id for determinism across platforms.
      return weight != o.weight ? weight > o.weight : node > o.node;
    }
  };
  const std::size_t total_nodes = 2 * used.size() - 1;
  std::vector<std::uint32_t> parent(total_nodes, 0);
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::uint32_t i = 0; i < used.size(); ++i)
    heap.push({freq[used[i]], i});
  std::uint32_t next_node = static_cast<std::uint32_t>(used.size());
  while (heap.size() > 1) {
    HeapItem a = heap.top(); heap.pop();
    HeapItem b = heap.top(); heap.pop();
    parent[a.node] = next_node;
    parent[b.node] = next_node;
    heap.push({a.weight + b.weight, next_node});
    ++next_node;
  }
  const std::uint32_t root = next_node - 1;

  // Depth of each leaf = its code length.
  std::vector<std::uint8_t> depth(total_nodes, 0);
  for (std::uint32_t node = root; node-- > 0;) {
    // Parents have larger ids than children, so a reverse sweep sees each
    // parent's depth before its children.
    depth[node] = static_cast<std::uint8_t>(depth[parent[node]] + 1);
  }
  unsigned max_seen = 0;
  std::vector<unsigned> leaf_len(used.size());
  for (std::size_t i = 0; i < used.size(); ++i) {
    leaf_len[i] = (used.size() == 1) ? 1 : depth[i];
    max_seen = std::max(max_seen, leaf_len[i]);
  }

  if (max_seen > max_length) {
    // Length-limit repair: clamp overlong codes, then restore the Kraft
    // inequality exactly by demoting leaves one level at a time. All Kraft
    // accounting is done in integer units of 2^-max_length, so the repair
    // terminates with sum(2^-len) <= 1 guaranteed (the canonical code
    // construction tolerates strict inequality — some codes go unused).
    std::vector<std::uint64_t> bl_count(max_length + 2, 0);
    for (unsigned& L : leaf_len) {
      if (L > max_length) L = max_length;
      ++bl_count[L];
    }
    const std::uint64_t budget = std::uint64_t{1} << max_length;
    std::uint64_t kraft = 0;
    for (unsigned L = 1; L <= max_length; ++L)
      kraft += bl_count[L] << (max_length - L);
    while (kraft > budget) {
      // Demote one leaf from the deepest level that still has headroom.
      unsigned L = max_length - 1;
      while (L > 0 && bl_count[L] == 0) --L;
      if (L == 0) throw std::logic_error("huffman: length repair failed");
      --bl_count[L];
      ++bl_count[L + 1];
      kraft -= std::uint64_t{1} << (max_length - L - 1);
    }
    // Reassign lengths: most frequent symbols get the shortest codes.
    std::vector<std::uint32_t> order(used.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      const std::uint64_t fa = freq[used[a]], fb = freq[used[b]];
      return fa != fb ? fa > fb : used[a] < used[b];
    });
    std::size_t idx = 0;
    for (unsigned L = 1; L <= max_length; ++L)
      for (std::uint64_t k = 0; k < bl_count[L]; ++k) leaf_len[order[idx++]] = L;
  }

  for (std::size_t i = 0; i < used.size(); ++i)
    lengths[used[i]] = static_cast<std::uint8_t>(leaf_len[i]);
  return lengths;
}

std::vector<std::uint32_t> canonical_codes(std::span<const std::uint8_t> lengths) {
  unsigned max_len = 0;
  for (std::uint8_t L : lengths) max_len = std::max<unsigned>(max_len, L);
  std::vector<std::uint32_t> bl_count(max_len + 1, 0);
  for (std::uint8_t L : lengths)
    if (L > 0) ++bl_count[L];
  std::vector<std::uint32_t> next_code(max_len + 2, 0);
  std::uint32_t code = 0;
  for (unsigned L = 1; L <= max_len; ++L) {
    code = (code + bl_count[L - 1]) << 1;
    next_code[L] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t i = 0; i < lengths.size(); ++i)
    if (lengths[i] > 0) codes[i] = next_code[lengths[i]]++;
  return codes;
}

Encoder::Encoder(std::vector<std::uint8_t> lengths,
                 std::vector<std::uint32_t> codes)
    : lengths_(std::move(lengths)), codes_(std::move(codes)) {
  entries_.resize(lengths_.size(), 0);
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    const unsigned len = lengths_[s];
    if (len == 0) continue;
    entries_[s] = static_cast<std::uint64_t>(reverse_bits(codes_[s], len)) |
                  (static_cast<std::uint64_t>(len) << 32);
  }
}

Encoder Encoder::from_frequencies(std::span<const std::uint64_t> freq,
                                  unsigned max_length) {
  auto lengths = build_code_lengths(freq, max_length);
  auto codes = canonical_codes(lengths);
  return Encoder(std::move(lengths), std::move(codes));
}

Encoder Encoder::from_symbols(std::span<const std::uint32_t> symbols,
                              std::uint32_t alphabet_size, unsigned max_length) {
  std::vector<std::uint64_t> freq(alphabet_size, 0);
  for (std::uint32_t s : symbols) {
    if (s >= alphabet_size)
      throw std::invalid_argument("Encoder::from_symbols: symbol out of alphabet");
    ++freq[s];
  }
  return from_frequencies(freq, max_length);
}

void Encoder::encode_symbol(std::uint32_t symbol, io::BitWriter& out) const {
  if (symbol >= lengths_.size() || lengths_[symbol] == 0)
    throw std::invalid_argument("Encoder: symbol has no code");
  const unsigned len = lengths_[symbol];
  out.write_bits(reverse_bits(codes_[symbol], len), len);
}

void Encoder::encode(std::span<const std::uint32_t> symbols, io::BitWriter& out) const {
  // Bulk path: pack whole 64-bit words from the precomputed (reversed
  // code | length) table and hand them to the BitWriter wholesale. The
  // emitted bit sequence is identical to per-symbol encode_symbol calls at
  // any starting bit offset; only the call overhead changes.
  const simd::KernelTable& kt = simd::kernels();
  constexpr std::size_t kChunk = 4096;
  std::vector<std::uint64_t> words(
      (kChunk * kMaxCodeLength + 63) / 64 + 1);
  std::uint64_t carry = 0;
  unsigned carry_bits = 0;
  std::size_t i = 0;
  while (i < symbols.size()) {
    const std::size_t n = std::min(kChunk, symbols.size() - i);
    std::size_t bad = simd::kNoBadSymbol;
    const std::size_t nw =
        kt.huffman_pack(symbols.data() + i, n, entries_.data(),
                        entries_.size(), words.data(), &carry, &carry_bits,
                        &bad);
    for (std::size_t w = 0; w < nw; ++w) out.write_bits(words[w], 64);
    if (bad != simd::kNoBadSymbol)
      throw std::invalid_argument("Encoder: symbol has no code");
    i += n;
  }
  if (carry_bits > 0) out.write_bits(carry, carry_bits);
}

std::uint64_t Encoder::encoded_bits(std::span<const std::uint32_t> symbols) const {
  std::uint64_t bits = 0;
  for (std::uint32_t s : symbols) {
    if (s >= lengths_.size() || lengths_[s] == 0)
      throw std::invalid_argument("Encoder: symbol has no code");
    bits += lengths_[s];
  }
  return bits;
}

void Encoder::write_table(io::ByteWriter& out) const {
  write_lengths_rle(lengths_, out);
}

void write_lengths_rle(std::span<const std::uint8_t> lengths, io::ByteWriter& out) {
  out.put_varint(lengths.size());
  std::size_t i = 0;
  while (i < lengths.size()) {
    std::size_t j = i;
    while (j < lengths.size() && lengths[j] == lengths[i]) ++j;
    out.put_varint(j - i);
    out.put<std::uint8_t>(lengths[i]);
    i = j;
  }
}

std::vector<std::uint8_t> read_lengths_rle(io::ByteReader& in) {
  const std::uint64_t n = in.get_varint();
  std::vector<std::uint8_t> lengths;
  lengths.reserve(n);
  while (lengths.size() < n) {
    const std::uint64_t run = in.get_varint();
    const auto L = in.get<std::uint8_t>();
    if (L > kMaxCodeLength)
      throw io::StreamError("huffman: serialized code length out of range");
    if (lengths.size() + run > n)
      throw io::StreamError("huffman: RLE run overflows declared alphabet");
    lengths.insert(lengths.end(), run, L);
  }
  return lengths;
}

Decoder Decoder::read_table(io::ByteReader& in) {
  auto lengths = read_lengths_rle(in);
  return Decoder(lengths);
}

Decoder Decoder::from_lengths(std::span<const std::uint8_t> lengths) {
  return Decoder(lengths);
}

Decoder::Decoder(std::span<const std::uint8_t> lengths)
    : alphabet_size_(lengths.size()) {
  for (std::uint8_t L : lengths) max_length_ = std::max<unsigned>(max_length_, L);
  if (max_length_ > kMaxCodeLength)
    throw io::StreamError("huffman: code length exceeds limit");
  count_.assign(max_length_ + 1, 0);
  for (std::uint8_t L : lengths)
    if (L > 0) ++count_[L];

  // Validate the Kraft inequality so corrupted tables cannot send
  // decode_symbol into an infinite loop.
  std::uint64_t kraft = 0;
  for (unsigned L = 1; L <= max_length_; ++L)
    kraft += static_cast<std::uint64_t>(count_[L])
             << (kMaxCodeLength + 1 - L);
  if (kraft > (std::uint64_t{1} << (kMaxCodeLength + 1)))
    throw io::StreamError("huffman: code lengths violate Kraft inequality");

  first_code_.assign(max_length_ + 2, 0);
  offset_.assign(max_length_ + 2, 0);
  // Same canonical recurrence as canonical_codes(): count_[0] == 0, so the
  // first length-1 code is 0.
  std::uint32_t code = 0;
  std::uint32_t sym_index = 0;
  for (unsigned L = 1; L <= max_length_; ++L) {
    code = (code + count_[L - 1]) << 1;
    first_code_[L] = code;
    offset_[L] = sym_index;
    sym_index += count_[L];
  }
  sorted_symbols_.resize(sym_index);
  std::vector<std::uint32_t> fill(max_length_ + 1, 0);
  for (std::uint32_t s = 0; s < lengths.size(); ++s) {
    const std::uint8_t L = lengths[s];
    if (L > 0) sorted_symbols_[offset_[L] + fill[L]++] = s;
  }

  // Build the one-peek fast table. Codes are emitted bit-reversed into the
  // LSB-first stream, so a W-bit peek holds reverse(code, L) in its low L
  // bits; every high-bit filler pattern maps to the same symbol.
  if (max_length_ > 0) {
    constexpr unsigned kMaxTableWidth = 12;  // 4096 entries, fits L1
    table_width_ = std::min(max_length_, kMaxTableWidth);
    fast_table_.assign(std::size_t{1} << table_width_, FastEntry{});
    const auto codes = canonical_codes(lengths);
    for (std::uint32_t s = 0; s < lengths.size(); ++s) {
      const unsigned L = lengths[s];
      if (L == 0 || L > table_width_) continue;
      const std::uint32_t rc = reverse_bits(codes[s], L);
      const std::size_t fillers = std::size_t{1} << (table_width_ - L);
      for (std::size_t f = 0; f < fillers; ++f)
        fast_table_[rc | (f << L)] = {s, static_cast<std::uint8_t>(L)};
    }
  }
}

std::uint32_t Decoder::decode_symbol(io::BitReader& in) const {
  if (table_width_ != 0) {
    const std::uint64_t window = in.peek_bits(table_width_);
    const FastEntry e = fast_table_[window];
    if (e.length != 0 && e.length <= in.bits_remaining()) {
      in.skip_bits(e.length);
      return e.symbol;
    }
  }
  return decode_symbol_slow(in);
}

std::uint32_t Decoder::decode_symbol_slow(io::BitReader& in) const {
  std::uint32_t code = 0;
  for (unsigned L = 1; L <= max_length_; ++L) {
    code = (code << 1) | static_cast<std::uint32_t>(in.read_bits(1));
    if (count_[L] != 0 && code >= first_code_[L] &&
        code - first_code_[L] < count_[L]) {
      return sorted_symbols_[offset_[L] + (code - first_code_[L])];
    }
  }
  throw io::StreamError("huffman: invalid code in stream");
}

std::vector<std::uint32_t> Decoder::decode(io::BitReader& in, std::size_t count) const {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(decode_symbol(in));
  return out;
}

}  // namespace fpsnr::huffman
