// Canonical Huffman coding over a dense unsigned-integer alphabet.
//
// This is SZ's step (2) substrate: the quantization-code array (alphabet
// 0..2n, typically 2^16 codes) is entropy-coded with a Huffman code built
// from the empirical symbol frequencies. The same coder doubles as the
// entropy stage of the DEFLATE-like lossless backend (src/lossless).
//
// Properties:
//  * Length-limited codes (default cap 32 bits) via the zlib-style
//    bl_count overflow repair, so the decoder can use fixed-size tables.
//  * Canonical code assignment — only code *lengths* are serialized
//    (run-length encoded), exactly like DEFLATE.
//  * Codes are emitted bit-reversed into the LSB-first BitWriter, so the
//    decoder can consume one bit at a time in stream order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "io/bitstream.h"
#include "io/bytebuffer.h"

namespace fpsnr::huffman {

/// Maximum supported code length (bits).
inline constexpr unsigned kMaxCodeLength = 32;

/// Compute optimal (then length-limited) Huffman code lengths for the given
/// symbol frequencies. freq[i] is the count of symbol i; zero-frequency
/// symbols get length 0 (no code). Guarantees the Kraft inequality holds
/// with equality when >= 2 symbols are present.
std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freq,
                                             unsigned max_length = kMaxCodeLength);

/// Canonical (MSB-first) code values for the given lengths.
std::vector<std::uint32_t> canonical_codes(std::span<const std::uint8_t> lengths);

/// Huffman encoder for a dense alphabet [0, alphabet_size).
class Encoder {
 public:
  /// Build from frequencies (freq.size() == alphabet size).
  static Encoder from_frequencies(std::span<const std::uint64_t> freq,
                                  unsigned max_length = kMaxCodeLength);

  /// Build from an explicit symbol stream (counts frequencies internally).
  static Encoder from_symbols(std::span<const std::uint32_t> symbols,
                              std::uint32_t alphabet_size,
                              unsigned max_length = kMaxCodeLength);

  /// Append the code of one symbol to the bit stream.
  void encode_symbol(std::uint32_t symbol, io::BitWriter& out) const;

  /// Append codes for a whole symbol stream.
  void encode(std::span<const std::uint32_t> symbols, io::BitWriter& out) const;

  /// Serialize the code table (lengths only, RLE) so a Decoder can rebuild it.
  void write_table(io::ByteWriter& out) const;

  /// Code length of `symbol` (0 = symbol has no code).
  unsigned code_length(std::uint32_t symbol) const { return lengths_.at(symbol); }

  std::size_t alphabet_size() const { return lengths_.size(); }

  /// Exact size in bits of encoding `symbols` with this table.
  std::uint64_t encoded_bits(std::span<const std::uint32_t> symbols) const;

  const std::vector<std::uint8_t>& lengths() const { return lengths_; }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;  // canonical, MSB-first
  // Packed encode table for the bulk path: bit-reversed (LSB-first) code in
  // the low word, code length in the high word; 0 for symbols with no code.
  std::vector<std::uint64_t> entries_;

  Encoder(std::vector<std::uint8_t> lengths, std::vector<std::uint32_t> codes);
};

/// Huffman decoder built from serialized or in-memory code lengths.
class Decoder {
 public:
  /// Rebuild from a table serialized by Encoder::write_table.
  static Decoder read_table(io::ByteReader& in);

  /// Build directly from code lengths.
  static Decoder from_lengths(std::span<const std::uint8_t> lengths);

  /// Decode one symbol.
  std::uint32_t decode_symbol(io::BitReader& in) const;

  /// Decode exactly `count` symbols.
  std::vector<std::uint32_t> decode(io::BitReader& in, std::size_t count) const;

  std::size_t alphabet_size() const { return alphabet_size_; }

 private:
  // Canonical decoding state per code length L (1-indexed):
  //   first_code_[L] : canonical code value of the first symbol of length L
  //   offset_[L]     : index into sorted_symbols_ of that first symbol
  //   count_[L]      : number of symbols with length L
  std::size_t alphabet_size_ = 0;
  unsigned max_length_ = 0;
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> offset_;
  std::vector<std::uint32_t> count_;
  std::vector<std::uint32_t> sorted_symbols_;

  // Single-level lookup acceleration: peek `table_width_` stream bits and
  // resolve any code of length <= table_width_ in one step (the common
  // case — long codes fall back to the canonical bit-by-bit walk).
  struct FastEntry {
    std::uint32_t symbol = 0;
    std::uint8_t length = 0;  // 0 = no code of width <= table_width_ here
  };
  unsigned table_width_ = 0;
  std::vector<FastEntry> fast_table_;

  explicit Decoder(std::span<const std::uint8_t> lengths);
  std::uint32_t decode_symbol_slow(io::BitReader& in) const;
};

/// Serialize code lengths with (count, length) run-length pairs.
void write_lengths_rle(std::span<const std::uint8_t> lengths, io::ByteWriter& out);

/// Inverse of write_lengths_rle.
std::vector<std::uint8_t> read_lengths_rle(io::ByteReader& in);

}  // namespace fpsnr::huffman
