// Orthonormal block DCT-II / DCT-III on 1/2/3-D grids.
//
// Each axis is partitioned into chunks of at most `block` samples and each
// chunk is transformed with the orthonormal DCT-II (inverse: DCT-III).
// Both are orthogonal maps, so the separable composition is orthogonal —
// the second transform family used to validate Theorem 2 (ZFP/SSEM use a
// custom orthogonal block transform / DWT; an orthonormal block DCT
// exercises the same property).
#pragma once

#include <cstddef>
#include <span>

#include "data/field.h"

namespace fpsnr::transform {

inline constexpr std::size_t kDefaultDctBlock = 8;

/// In-place forward orthonormal block DCT along every axis. Span-based so
/// callers can keep coefficients in aligned storage without a copy.
void dct_forward(std::span<double> v, const data::Dims& dims,
                 std::size_t block = kDefaultDctBlock);

/// Exact inverse of dct_forward (up to FP rounding).
void dct_inverse(std::span<double> v, const data::Dims& dims,
                 std::size_t block = kDefaultDctBlock);

}  // namespace fpsnr::transform
