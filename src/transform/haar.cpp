#include "transform/haar.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "simd/aligned.h"
#include "simd/dispatch.h"

namespace fpsnr::transform {

namespace {

const double kInvSqrt2 = 1.0 / std::numbers::sqrt2;

/// Forward step on a contiguous scratch line of length m:
/// out = [a_0..a_{ceil(m/2)-1} | d_0..d_{floor(m/2)-1}].
/// The butterflies go through the dispatched SIMD kernel; every backend is
/// bit-identical to the scalar reference, so the transform output does not
/// depend on the host ISA.
void haar_step_line(simd::aligned_vector<double>& line,
                    simd::aligned_vector<double>& scratch, std::size_t m,
                    bool inverse, const simd::KernelTable& kt) {
  const std::size_t pairs = m / 2;
  const std::size_t approx = m - pairs;  // == ceil(m/2)
  if (!inverse) {
    kt.haar_fwd_pairs(line.data(), scratch.data(), scratch.data() + approx,
                      pairs, kInvSqrt2);
    if (m % 2 != 0) scratch[approx - 1] = line[m - 1];
  } else {
    kt.haar_inv_pairs(line.data(), line.data() + approx, scratch.data(),
                      pairs, kInvSqrt2);
    if (m % 2 != 0) scratch[m - 1] = line[approx - 1];
  }
  for (std::size_t k = 0; k < m; ++k) line[k] = scratch[k];
}

struct Strides {
  std::size_t s[3] = {1, 1, 1};
};

Strides strides_of(const data::Dims& dims) {
  Strides st;
  const std::size_t rank = dims.rank();
  for (std::size_t i = rank; i-- > 1;) st.s[i - 1] = st.s[i] * dims[i];
  return st;
}

/// Apply one Haar step along `axis`, restricted to the leading sub-box
/// `sub` (the approximation region of the current level).
void step_axis(std::span<double> v, const data::Dims& dims, std::size_t axis,
               const std::vector<std::size_t>& sub, bool inverse) {
  const std::size_t m = sub[axis];
  if (m < 2) return;
  const Strides st = strides_of(dims);
  const std::size_t rank = dims.rank();
  const simd::KernelTable& kt = simd::kernels();

  simd::aligned_vector<double> line(m), scratch(m);
  // Iterate over the other axes' coordinates within the sub-box.
  std::size_t outer = 1;
  for (std::size_t d = 0; d < rank; ++d)
    if (d != axis) outer *= sub[d];
  for (std::size_t li = 0; li < outer; ++li) {
    std::size_t rem = li;
    std::size_t base = 0;
    for (std::size_t d = rank; d-- > 0;) {
      if (d == axis) continue;
      base += (rem % sub[d]) * st.s[d];
      rem /= sub[d];
    }
    for (std::size_t k = 0; k < m; ++k) line[k] = v[base + k * st.s[axis]];
    haar_step_line(line, scratch, m, inverse, kt);
    for (std::size_t k = 0; k < m; ++k) v[base + k * st.s[axis]] = line[k];
  }
}

std::vector<std::size_t> sub_extents_at_level(const data::Dims& dims, unsigned level) {
  std::vector<std::size_t> sub(dims.rank());
  for (std::size_t d = 0; d < dims.rank(); ++d) {
    std::size_t m = dims[d];
    for (unsigned l = 0; l < level; ++l) m = (m + 1) / 2;
    sub[d] = m;
  }
  return sub;
}

}  // namespace

unsigned max_haar_levels(const data::Dims& dims) {
  unsigned levels = 0;
  bool any = true;
  while (any) {
    const auto sub = sub_extents_at_level(dims, levels);
    any = false;
    for (std::size_t m : sub)
      if (m >= 2) any = true;
    if (any) ++levels;
  }
  return levels;
}

void haar_forward(std::span<double> v, const data::Dims& dims, unsigned levels) {
  if (v.size() != dims.count())
    throw std::invalid_argument("haar_forward: size mismatch");
  const unsigned max_levels = max_haar_levels(dims);
  if (levels > max_levels) levels = max_levels;
  for (unsigned l = 0; l < levels; ++l) {
    const auto sub = sub_extents_at_level(dims, l);
    for (std::size_t axis = 0; axis < dims.rank(); ++axis)
      step_axis(v, dims, axis, sub, /*inverse=*/false);
  }
}

void haar_inverse(std::span<double> v, const data::Dims& dims, unsigned levels) {
  if (v.size() != dims.count())
    throw std::invalid_argument("haar_inverse: size mismatch");
  const unsigned max_levels = max_haar_levels(dims);
  if (levels > max_levels) levels = max_levels;
  for (unsigned l = levels; l-- > 0;) {
    const auto sub = sub_extents_at_level(dims, l);
    for (std::size_t axis = dims.rank(); axis-- > 0;)
      step_axis(v, dims, axis, sub, /*inverse=*/true);
  }
}

}  // namespace fpsnr::transform
