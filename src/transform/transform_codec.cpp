#include "transform/transform_codec.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "huffman/huffman.h"
#include "io/bitstream.h"
#include "io/bytebuffer.h"
#include "metrics/metrics.h"
#include "simd/aligned.h"
#include "simd/dispatch.h"
#include "sz/quantizer.h"
#include "transform/dct.h"
#include "transform/haar.h"

namespace fpsnr::transform {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'P', 'T', 'C'};
constexpr std::uint8_t kVersion = 1;

struct Header {
  std::uint8_t scalar = 0;  // 0 = float, 1 = double
  Kind kind = Kind::HaarMultiLevel;
  data::Dims dims;
  double bin_width = 0.0;
  double value_range = 0.0;
  std::uint32_t quant_bins = 0;
  unsigned haar_levels = 0;
  std::size_t dct_block = 8;
};

void write_tc_header(const Header& h, io::ByteWriter& out) {
  out.put_bytes(std::span<const std::uint8_t>(kMagic, 4));
  out.put<std::uint8_t>(kVersion);
  out.put<std::uint8_t>(h.scalar);
  out.put<std::uint8_t>(static_cast<std::uint8_t>(h.kind));
  out.put<std::uint8_t>(static_cast<std::uint8_t>(h.dims.rank()));
  for (std::size_t d = 0; d < h.dims.rank(); ++d) out.put_varint(h.dims[d]);
  out.put<double>(h.bin_width);
  out.put<double>(h.value_range);
  out.put_varint(h.quant_bins);
  out.put_varint(h.haar_levels);
  out.put_varint(h.dct_block);
}

Header read_tc_header(io::ByteReader& in) {
  const auto magic = in.get_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic))
    throw io::StreamError("fptc: bad magic");
  if (in.get<std::uint8_t>() != kVersion)
    throw io::StreamError("fptc: unsupported version");
  Header h;
  h.scalar = in.get<std::uint8_t>();
  if (h.scalar > 1) throw io::StreamError("fptc: unknown scalar type");
  const auto kind = in.get<std::uint8_t>();
  if (kind > 1) throw io::StreamError("fptc: unknown transform kind");
  h.kind = static_cast<Kind>(kind);
  const auto rank = in.get<std::uint8_t>();
  if (rank < 1 || rank > 3) throw io::StreamError("fptc: rank out of 1..3");
  std::vector<std::size_t> extents(rank);
  for (auto& e : extents) {
    e = in.get_varint();
    if (e == 0) throw io::StreamError("fptc: zero extent");
  }
  h.dims = data::Dims(std::move(extents));
  h.bin_width = in.get<double>();
  if (!(h.bin_width > 0.0) || !std::isfinite(h.bin_width))
    throw io::StreamError("fptc: invalid bin width");
  h.value_range = in.get<double>();
  h.quant_bins = static_cast<std::uint32_t>(in.get_varint());
  if (h.quant_bins < 4 || h.quant_bins % 2 != 0)
    throw io::StreamError("fptc: invalid quantization bin count");
  h.haar_levels = static_cast<unsigned>(in.get_varint());
  h.dct_block = in.get_varint();
  // The upper cap bounds the per-axis scratch the DCT kernel allocates
  // from this attacker-controlled field.
  if (h.dct_block < 2 || h.dct_block > 4096)
    throw io::StreamError("fptc: invalid DCT block");
  return h;
}

void forward_of(std::span<double> coeffs, const data::Dims& dims,
                const Header& h) {
  if (h.kind == Kind::HaarMultiLevel)
    haar_forward(coeffs, dims, h.haar_levels);
  else
    dct_forward(coeffs, dims, h.dct_block);
}

void inverse_of(std::span<double> coeffs, const data::Dims& dims,
                const Header& h) {
  if (h.kind == Kind::HaarMultiLevel)
    haar_inverse(coeffs, dims, h.haar_levels);
  else
    dct_inverse(coeffs, dims, h.dct_block);
}

struct QuantizedCoeffs {
  std::vector<std::uint32_t> codes;
  std::vector<double> outliers;
  std::vector<double> quantized;  // reconstructed coefficient values
};

QuantizedCoeffs quantize_coeffs(std::span<const double> coeffs, double bin_width,
                                std::uint32_t bins) {
  const sz::LinearQuantizer quant(bin_width / 2.0, bins);
  QuantizedCoeffs out;
  out.codes.resize(coeffs.size());
  out.quantized.resize(coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    const std::uint32_t code = quant.quantize(coeffs[i]);
    out.codes[i] = code;
    if (code == 0) {
      out.outliers.push_back(coeffs[i]);
      out.quantized[i] = coeffs[i];  // stored exactly
    } else {
      out.quantized[i] = quant.dequantize(code);
    }
  }
  return out;
}

}  // namespace

template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> values, const data::Dims& dims,
                                   const Params& params, Info* info) {
  if (values.size() != dims.count())
    throw std::invalid_argument("fptc: value count does not match dims");
  if (!(params.bin_width > 0.0) || !std::isfinite(params.bin_width))
    throw std::invalid_argument("fptc: bin width must be positive and finite");

  Header header;
  header.scalar = std::is_same_v<T, double> ? 1 : 0;
  header.kind = params.kind;
  header.dims = dims;
  header.bin_width = params.bin_width;
  header.value_range = metrics::value_range(values);
  header.quant_bins = params.quantization_bins;
  header.haar_levels = params.haar_levels;
  header.dct_block = params.dct_block;

  simd::aligned_vector<double> coeffs(values.begin(), values.end());
  forward_of(coeffs, dims, header);
  const QuantizedCoeffs q = quantize_coeffs(coeffs, params.bin_width,
                                            params.quantization_bins);

  io::ByteWriter inner;
  inner.put_varint(q.outliers.size());
  inner.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(q.outliers.data()),
      q.outliers.size() * sizeof(double)));
  const auto encoder = huffman::Encoder::from_symbols(q.codes, params.quantization_bins);
  encoder.write_table(inner);
  io::BitWriter bits;
  encoder.encode(q.codes, bits);
  inner.put_blob(bits.take());

  io::ByteWriter out;
  write_tc_header(header, out);
  out.put_blob(lossless::backend_compress(inner.buffer(), params.backend));
  auto bytes = out.take();

  if (info) {
    info->bin_width = params.bin_width;
    info->value_range = header.value_range;
    info->value_count = values.size();
    info->outlier_count = q.outliers.size();
    info->compressed_bytes = bytes.size();
    info->compression_ratio =
        metrics::compression_ratio(values.size() * sizeof(T), bytes.size());
    info->bit_rate = metrics::bit_rate(bytes.size(), values.size());
    // Replay the decode side on the quantized coefficients so the reported
    // SSE matches the decompressed values exactly, including the T cast.
    std::vector<double> recon = q.quantized;
    inverse_of(recon, dims, header);
    const simd::KernelTable& kt = simd::kernels();
    if constexpr (std::is_same_v<T, float>)
      info->achieved_sse =
          kt.sse_cast_f32(values.data(), recon.data(), values.size());
    else
      info->achieved_sse =
          kt.sse_f64(values.data(), recon.data(), values.size());
  }
  return bytes;
}

template <typename T>
Decompressed<T> decompress(std::span<const std::uint8_t> stream) {
  io::ByteReader reader(stream);
  const Header header = read_tc_header(reader);
  const std::uint8_t expect_scalar = std::is_same_v<T, double> ? 1 : 0;
  if (header.scalar != expect_scalar)
    throw io::StreamError("fptc: scalar type mismatch");
  const std::size_t count = header.dims.count();

  const auto inner = lossless::backend_decompress(reader.get_blob_view());
  io::ByteReader ir(inner);
  const std::uint64_t n_out = ir.get_varint();
  if (n_out > count) throw io::StreamError("fptc: outlier count exceeds values");
  std::vector<double> outliers(n_out);
  const auto raw = ir.get_bytes(n_out * sizeof(double));
  if (!raw.empty()) std::memcpy(outliers.data(), raw.data(), raw.size());
  const auto decoder = huffman::Decoder::read_table(ir);
  io::BitReader bits(ir.get_blob_view());
  const auto codes = decoder.decode(bits, count);

  const sz::LinearQuantizer quant(header.bin_width / 2.0, header.quant_bins);
  std::vector<double> coeffs(count);
  std::size_t next_outlier = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (codes[i] == 0) {
      if (next_outlier >= outliers.size())
        throw io::StreamError("fptc: outlier list exhausted");
      coeffs[i] = outliers[next_outlier++];
    } else {
      if (codes[i] >= header.quant_bins)
        throw io::StreamError("fptc: code out of range");
      coeffs[i] = quant.dequantize(codes[i]);
    }
  }
  if (next_outlier != outliers.size())
    throw io::StreamError("fptc: trailing outliers in stream");

  inverse_of(coeffs, header.dims, header);
  std::vector<T> values(count);
  for (std::size_t i = 0; i < count; ++i) values[i] = static_cast<T>(coeffs[i]);
  return {header.dims, std::move(values)};
}

template <typename T>
CoefficientTrace coefficient_trace(std::span<const T> values, const data::Dims& dims,
                                   const Params& params) {
  if (values.size() != dims.count())
    throw std::invalid_argument("fptc: value count does not match dims");
  Header header;
  header.kind = params.kind;
  header.haar_levels = params.haar_levels;
  header.dct_block = params.dct_block;
  std::vector<double> coeffs(values.begin(), values.end());
  forward_of(coeffs, dims, header);
  QuantizedCoeffs q = quantize_coeffs(coeffs, params.bin_width,
                                      params.quantization_bins);
  return {std::move(coeffs), std::move(q.quantized)};
}

template std::vector<std::uint8_t> compress<float>(std::span<const float>,
                                                   const data::Dims&, const Params&,
                                                   Info*);
template std::vector<std::uint8_t> compress<double>(std::span<const double>,
                                                    const data::Dims&, const Params&,
                                                    Info*);
template Decompressed<float> decompress<float>(std::span<const std::uint8_t>);
template Decompressed<double> decompress<double>(std::span<const std::uint8_t>);
template CoefficientTrace coefficient_trace<float>(std::span<const float>,
                                                   const data::Dims&, const Params&);
template CoefficientTrace coefficient_trace<double>(std::span<const double>,
                                                    const data::Dims&, const Params&);

}  // namespace fpsnr::transform
