// Orthonormal multi-level Haar wavelet transform on 1/2/3-D grids.
//
// Each elementary step maps a pair (x0, x1) to ((x0+x1)/sqrt2, (x0-x1)/sqrt2)
// — a rotation, hence orthonormal; odd tails pass through unchanged. The
// full separable multi-level transform is therefore orthogonal, which is
// exactly the property Theorem 2 of the paper needs: quantizing the
// coefficients introduces the same L2 distortion in the reconstructed data.
#pragma once

#include <cstddef>
#include <span>

#include "data/field.h"

namespace fpsnr::transform {

/// Maximum useful level count for the given dims (until every axis's
/// approximation length reaches 1).
unsigned max_haar_levels(const data::Dims& dims);

/// In-place forward transform, `levels` levels (clamped to max_haar_levels).
/// Layout per level and axis: [approx | detail] over the leading sub-box.
/// Span-based so callers can keep their coefficients in 64-byte-aligned
/// storage (simd::aligned_vector) without a copy.
void haar_forward(std::span<double> v, const data::Dims& dims, unsigned levels);

/// Exact inverse of haar_forward (up to FP rounding).
void haar_inverse(std::span<double> v, const data::Dims& dims, unsigned levels);

}  // namespace fpsnr::transform
