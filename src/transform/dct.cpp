#include "transform/dct.h"

#include <array>
#include <atomic>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "simd/aligned.h"
#include "simd/dispatch.h"

namespace fpsnr::transform {

namespace {

/// Orthonormal DCT-II of x[0..m): y_k = s_k * sum_j x_j cos(pi (j+1/2) k / m),
/// s_0 = sqrt(1/m), s_k = sqrt(2/m). Naive O(m^2); m <= block size.
/// Legacy on-the-fly path, kept for block sizes above the table cache cap.
void dct2(const double* x, double* y, std::size_t m) {
  const double s0 = std::sqrt(1.0 / static_cast<double>(m));
  const double sk = std::sqrt(2.0 / static_cast<double>(m));
  for (std::size_t k = 0; k < m; ++k) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j)
      acc += x[j] * std::cos(std::numbers::pi *
                             (static_cast<double>(j) + 0.5) *
                             static_cast<double>(k) / static_cast<double>(m));
    y[k] = (k == 0 ? s0 : sk) * acc;
  }
}

/// Orthonormal DCT-III (inverse of dct2).
void dct3(const double* y, double* x, std::size_t m) {
  const double s0 = std::sqrt(1.0 / static_cast<double>(m));
  const double sk = std::sqrt(2.0 / static_cast<double>(m));
  for (std::size_t j = 0; j < m; ++j) {
    double acc = s0 * y[0];
    for (std::size_t k = 1; k < m; ++k)
      acc += sk * y[k] *
             std::cos(std::numbers::pi * (static_cast<double>(j) + 0.5) *
                      static_cast<double>(k) / static_cast<double>(m));
    x[j] = acc;
  }
}

/// Cosine tables are cached for m <= kMaxTableM (covers every practical
/// block size; the container caps dct_block at 4096, and sizes above the
/// cap take the legacy on-the-fly path). Both layouts hold the SAME
/// doubles — tab_jk[j*m+k] == tab_kj[k*m+j] — computed with the exact
/// expression the legacy loops use, so tabled and legacy results match
/// bit for bit. jk streams contiguously for the lane-per-k dct2 kernel,
/// kj for the lane-per-j dct3 kernel.
constexpr std::size_t kMaxTableM = 256;

struct DctTables {
  simd::aligned_vector<double> jk, kj;
};

const DctTables* build_tables(std::size_t m) {
  auto* t = new DctTables;
  t->jk.resize(m * m);
  t->kj.resize(m * m);
  for (std::size_t j = 0; j < m; ++j)
    for (std::size_t k = 0; k < m; ++k) {
      const double c =
          std::cos(std::numbers::pi * (static_cast<double>(j) + 0.5) *
                   static_cast<double>(k) / static_cast<double>(m));
      t->jk[j * m + k] = c;
      t->kj[k * m + j] = c;
    }
  return t;
}

const DctTables& tables_for(std::size_t m) {
  // Lock-free once-per-m cache: losers of the publish race delete their
  // copy. Entries live for the process lifetime (the worker pool touches
  // them until exit).
  static std::array<std::atomic<const DctTables*>, kMaxTableM + 1> slots{};
  std::atomic<const DctTables*>& slot = slots[m];
  const DctTables* t = slot.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  const DctTables* fresh = build_tables(m);
  const DctTables* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire))
    return *fresh;
  delete fresh;
  return *expected;
}

struct Strides {
  std::size_t s[3] = {1, 1, 1};
};

Strides strides_of(const data::Dims& dims) {
  Strides st;
  for (std::size_t i = dims.rank(); i-- > 1;) st.s[i - 1] = st.s[i] * dims[i];
  return st;
}

void transform_axis(std::span<double> v, const data::Dims& dims,
                    std::size_t axis, std::size_t block, bool inverse) {
  const std::size_t n = dims[axis];
  const Strides st = strides_of(dims);
  const std::size_t rank = dims.rank();
  const simd::KernelTable& kt = simd::kernels();
  std::size_t outer = 1;
  for (std::size_t d = 0; d < rank; ++d)
    if (d != axis) outer *= dims[d];

  simd::aligned_vector<double> in(block), out(block);
  for (std::size_t li = 0; li < outer; ++li) {
    std::size_t rem = li;
    std::size_t base = 0;
    for (std::size_t d = rank; d-- > 0;) {
      if (d == axis) continue;
      base += (rem % dims[d]) * st.s[d];
      rem /= dims[d];
    }
    for (std::size_t start = 0; start < n; start += block) {
      const std::size_t m = std::min(block, n - start);
      for (std::size_t k = 0; k < m; ++k)
        in[k] = v[base + (start + k) * st.s[axis]];
      if (m <= kMaxTableM) {
        const DctTables& tabs = tables_for(m);
        const double s0 = std::sqrt(1.0 / static_cast<double>(m));
        const double sk = std::sqrt(2.0 / static_cast<double>(m));
        if (inverse)
          kt.dct3_line(in.data(), out.data(), m, tabs.jk.data(),
                       tabs.kj.data(), s0, sk);
        else
          kt.dct2_line(in.data(), out.data(), m, tabs.jk.data(),
                       tabs.kj.data(), s0, sk);
      } else if (inverse) {
        dct3(in.data(), out.data(), m);
      } else {
        dct2(in.data(), out.data(), m);
      }
      for (std::size_t k = 0; k < m; ++k)
        v[base + (start + k) * st.s[axis]] = out[k];
    }
  }
}

}  // namespace

void dct_forward(std::span<double> v, const data::Dims& dims, std::size_t block) {
  if (v.size() != dims.count()) throw std::invalid_argument("dct_forward: size mismatch");
  if (block < 2) throw std::invalid_argument("dct_forward: block must be >= 2");
  for (std::size_t axis = 0; axis < dims.rank(); ++axis)
    transform_axis(v, dims, axis, block, /*inverse=*/false);
}

void dct_inverse(std::span<double> v, const data::Dims& dims, std::size_t block) {
  if (v.size() != dims.count()) throw std::invalid_argument("dct_inverse: size mismatch");
  if (block < 2) throw std::invalid_argument("dct_inverse: block must be >= 2");
  for (std::size_t axis = dims.rank(); axis-- > 0;)
    transform_axis(v, dims, axis, block, /*inverse=*/true);
}

}  // namespace fpsnr::transform
