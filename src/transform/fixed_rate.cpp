#include "transform/fixed_rate.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "io/bitstream.h"
#include "io/bytebuffer.h"
#include "simd/aligned.h"
#include "simd/dispatch.h"
#include "transform/dct.h"

namespace fpsnr::transform {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'P', 'Z', 'R'};
constexpr std::uint8_t kVersion = 1;
/// Group-width byte announcing a raw-double escape group (the SIMD group
/// kernels return the same sentinel). A group escapes when any quantized
/// index magnitude reaches simd::kZfprMaxIndexMagnitude — beyond that it
/// cannot round-trip through int64, so the raw doubles ship instead.
constexpr unsigned kEscapeWidth = simd::kZfprEscape;
/// Caps on the sizes a stream may declare: bound how far a crafted header
/// can inflate decode allocations relative to the payload (the DCT kernel
/// allocates per-axis scratch of dct_block doubles).
constexpr std::size_t kMaxGroup = 4096;
constexpr std::size_t kMaxDctBlock = 4096;

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

struct Header {
  std::uint8_t scalar = 0;
  data::Dims dims;
  double eb_abs = 0.0;
  std::size_t dct_block = 8;
  std::size_t group = 64;
};

void write_zr_header(const Header& h, io::ByteWriter& out) {
  out.put_bytes(std::span<const std::uint8_t>(kMagic, 4));
  out.put<std::uint8_t>(kVersion);
  out.put<std::uint8_t>(h.scalar);
  out.put<std::uint8_t>(static_cast<std::uint8_t>(h.dims.rank()));
  for (std::size_t d = 0; d < h.dims.rank(); ++d) out.put_varint(h.dims[d]);
  out.put<double>(h.eb_abs);
  out.put_varint(h.dct_block);
  out.put_varint(h.group);
}

Header read_zr_header(io::ByteReader& in) {
  const auto magic = in.get_bytes(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic))
    throw io::StreamError("fpzr: bad magic");
  if (in.get<std::uint8_t>() != kVersion)
    throw io::StreamError("fpzr: unsupported version");
  Header h;
  h.scalar = in.get<std::uint8_t>();
  if (h.scalar > 1) throw io::StreamError("fpzr: unknown scalar type");
  const auto rank = in.get<std::uint8_t>();
  if (rank < 1 || rank > 3) throw io::StreamError("fpzr: rank out of 1..3");
  std::vector<std::size_t> extents(rank);
  for (auto& e : extents) {
    e = in.get_varint();
    if (e == 0) throw io::StreamError("fpzr: zero extent");
  }
  h.dims = data::Dims(std::move(extents));
  h.eb_abs = in.get<double>();
  if (!(h.eb_abs > 0.0) || !std::isfinite(h.eb_abs))
    throw io::StreamError("fpzr: invalid error bound");
  h.dct_block = in.get_varint();
  if (h.dct_block < 2 || h.dct_block > kMaxDctBlock)
    throw io::StreamError("fpzr: invalid DCT block");
  h.group = in.get_varint();
  if (h.group < 1 || h.group > kMaxGroup)
    throw io::StreamError("fpzr: invalid group size");
  return h;
}

}  // namespace

bool is_fixed_rate_stream(std::span<const std::uint8_t> stream) {
  return stream.size() >= 4 && std::equal(kMagic, kMagic + 4, stream.begin());
}

template <typename T>
std::vector<std::uint8_t> fixed_rate_compress(std::span<const T> values,
                                              const data::Dims& dims,
                                              const FixedRateParams& params,
                                              FixedRateInfo* info) {
  if (values.size() != dims.count())
    throw std::invalid_argument("fpzr: value count does not match dims");
  if (!(params.eb_abs > 0.0) || !std::isfinite(params.eb_abs))
    throw std::invalid_argument("fpzr: error bound must be positive and finite");
  if (params.group < 1 || params.group > kMaxGroup)
    throw std::invalid_argument("fpzr: group size out of 1..4096");
  if (params.dct_block < 2 || params.dct_block > kMaxDctBlock)
    throw std::invalid_argument("fpzr: DCT block out of 2..4096");

  Header header;
  header.scalar = std::is_same_v<T, double> ? 1 : 0;
  header.dims = dims;
  header.eb_abs = params.eb_abs;
  header.dct_block = params.dct_block;
  header.group = params.group;

  simd::aligned_vector<double> coeffs(values.begin(), values.end());
  dct_forward(coeffs, dims, params.dct_block);

  const double bin = 2.0 * params.eb_abs;
  const std::size_t n = coeffs.size();
  simd::aligned_vector<double> recon_coeffs(n);
  std::size_t escaped = 0;
  const simd::KernelTable& kt = simd::kernels();

  io::BitWriter bits;
  simd::aligned_vector<std::uint64_t> zz(params.group);
  for (std::size_t g0 = 0; g0 < n; g0 += params.group) {
    const std::size_t gn = std::min(params.group, n - g0);
    // A group is bit-packable only if every quantized index fits int64
    // comfortably (kEscapeWidth return); otherwise ship the raw
    // coefficients (exact, zero error).
    const unsigned width = kt.zfpr_quant_group(coeffs.data() + g0, gn, bin,
                                               zz.data(),
                                               recon_coeffs.data() + g0);
    if (width == kEscapeWidth) {
      ++escaped;
      bits.write_bits(kEscapeWidth, 8);
      for (std::size_t j = 0; j < gn; ++j) {
        bits.write_bits(std::bit_cast<std::uint64_t>(coeffs[g0 + j]), 64);
        recon_coeffs[g0 + j] = coeffs[g0 + j];
      }
      continue;
    }
    bits.write_bits(width, 8);
    for (std::size_t j = 0; j < gn; ++j) bits.write_bits(zz[j], width);
  }

  io::ByteWriter out;
  write_zr_header(header, out);
  out.put_blob(bits.take());
  auto bytes = out.take();

  if (info) {
    info->value_count = values.size();
    info->escaped_groups = escaped;
    info->compressed_bytes = bytes.size();
    info->bit_rate = values.empty()
                         ? 0.0
                         : 8.0 * static_cast<double>(bytes.size()) /
                               static_cast<double>(values.size());
    // Replay the decode side so the reported SSE matches the decompressed
    // values exactly, including the T cast after the inverse transform.
    simd::aligned_vector<double> recon = recon_coeffs;
    dct_inverse(recon, dims, params.dct_block);
    if constexpr (std::is_same_v<T, float>)
      info->achieved_sse =
          kt.sse_cast_f32(values.data(), recon.data(), values.size());
    else
      info->achieved_sse =
          kt.sse_f64(values.data(), recon.data(), values.size());
  }
  return bytes;
}

template <typename T>
Decompressed<T> fixed_rate_decompress(std::span<const std::uint8_t> stream) {
  io::ByteReader reader(stream);
  const Header header = read_zr_header(reader);
  const std::uint8_t expect_scalar = std::is_same_v<T, double> ? 1 : 0;
  if (header.scalar != expect_scalar)
    throw io::StreamError("fpzr: scalar type mismatch");
  const std::size_t n = header.dims.count();

  const double bin = 2.0 * header.eb_abs;
  const auto blob = reader.get_blob_view();
  // Every group costs at least its 8-bit width byte, so the declared value
  // count is bounded by the payload size — check BEFORE allocating
  // anything sized by the hostile header.
  const std::size_t groups = n / header.group + (n % header.group ? 1 : 0);
  if (groups > blob.size())
    throw io::StreamError("fpzr: truncated payload");
  io::BitReader bits(blob);
  std::vector<double> coeffs(n);
  for (std::size_t g0 = 0; g0 < n; g0 += header.group) {
    const std::size_t gn = std::min(header.group, n - g0);
    const auto width = static_cast<unsigned>(bits.read_bits(8));
    if (width == kEscapeWidth) {
      for (std::size_t j = 0; j < gn; ++j) {
        const double c = std::bit_cast<double>(bits.read_bits(64));
        coeffs[g0 + j] = c;
      }
      continue;
    }
    if (width > 64) throw io::StreamError("fpzr: invalid group bit width");
    for (std::size_t j = 0; j < gn; ++j) {
      const std::int64_t k = zigzag_decode(bits.read_bits(width));
      coeffs[g0 + j] = static_cast<double>(k) * bin;
    }
  }

  dct_inverse(coeffs, header.dims, header.dct_block);
  std::vector<T> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<T>(coeffs[i]);
  return {header.dims, std::move(out)};
}

template <typename T>
double fixed_rate_bits_estimate(std::span<const T> values,
                                const data::Dims& dims,
                                const FixedRateParams& params) {
  if (values.size() != dims.count())
    throw std::invalid_argument("fpzr: value count does not match dims");
  if (!(params.eb_abs > 0.0) || !std::isfinite(params.eb_abs))
    throw std::invalid_argument("fpzr: error bound must be positive and finite");
  if (params.group < 1 || params.group > kMaxGroup)
    throw std::invalid_argument("fpzr: group size out of 1..4096");
  if (params.dct_block < 2 || params.dct_block > kMaxDctBlock)
    throw std::invalid_argument("fpzr: DCT block out of 2..4096");
  if (values.empty()) return 0.0;

  simd::aligned_vector<double> coeffs(values.begin(), values.end());
  dct_forward(coeffs, dims, params.dct_block);

  const double bin = 2.0 * params.eb_abs;
  const std::size_t n = coeffs.size();
  const simd::KernelTable& kt = simd::kernels();
  double total_bits = 0.0;
  for (std::size_t g0 = 0; g0 < n; g0 += params.group) {
    const std::size_t gn = std::min(params.group, n - g0);
    const unsigned census = kt.zfpr_census_group(coeffs.data() + g0, gn, bin);
    const unsigned width = census == kEscapeWidth ? 64u : census;
    total_bits += 8.0 + static_cast<double>(width) * static_cast<double>(gn);
  }
  return total_bits / static_cast<double>(n);
}

template std::vector<std::uint8_t> fixed_rate_compress<float>(
    std::span<const float>, const data::Dims&, const FixedRateParams&,
    FixedRateInfo*);
template std::vector<std::uint8_t> fixed_rate_compress<double>(
    std::span<const double>, const data::Dims&, const FixedRateParams&,
    FixedRateInfo*);
template Decompressed<float> fixed_rate_decompress<float>(
    std::span<const std::uint8_t>);
template Decompressed<double> fixed_rate_decompress<double>(
    std::span<const std::uint8_t>);
template double fixed_rate_bits_estimate<float>(std::span<const float>,
                                                const data::Dims&,
                                                const FixedRateParams&);
template double fixed_rate_bits_estimate<double>(std::span<const double>,
                                                 const data::Dims&,
                                                 const FixedRateParams&);

}  // namespace fpsnr::transform
