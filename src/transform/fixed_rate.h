// ZFP-style fixed-rate transform codec.
//
// Like the FPTC codec this decorrelates with the orthonormal block DCT and
// quantizes coefficients on a uniform grid of bin width 2*eb (Theorem 2:
// coefficient-domain L2 error equals data-domain L2 error, so the Eq. 6
// fixed-PSNR model applies unchanged). The entropy stage is different —
// and is the point: instead of a data-dependent Huffman code, quantized
// indices are zigzag-mapped and bit-packed with one shared bit width per
// fixed-size coefficient group (ZFP's "common exponent + fixed precision"
// idea on our uniform grid). The rate of a group is known from one byte,
// decode is branch-free bit unpacking, and a group whose indices would
// overflow is escaped to raw IEEE doubles (exact). Stream magic "FPZR".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/field.h"
#include "transform/transform_codec.h"

namespace fpsnr::transform {

struct FixedRateParams {
  double eb_abs = 1e-4;   ///< per-coefficient absolute bound (bin width 2*eb)
  std::size_t dct_block = 8;
  std::size_t group = 64;  ///< coefficients per fixed-width group (1..4096)
};

struct FixedRateInfo {
  std::size_t value_count = 0;
  std::size_t escaped_groups = 0;  ///< groups stored as raw doubles
  std::size_t compressed_bytes = 0;
  double bit_rate = 0.0;  ///< compressed bits per value
  /// Exact sum of squared reconstruction errors (original vs decode output).
  double achieved_sse = 0.0;
};

template <typename T>
std::vector<std::uint8_t> fixed_rate_compress(std::span<const T> values,
                                              const data::Dims& dims,
                                              const FixedRateParams& params,
                                              FixedRateInfo* info = nullptr);

template <typename T>
Decompressed<T> fixed_rate_decompress(std::span<const std::uint8_t> stream);

/// True if `stream` starts with the fixed-rate-codec magic "FPZR".
bool is_fixed_rate_stream(std::span<const std::uint8_t> stream);

/// Closed-form bits/value estimate at `params.eb_abs` from the per-group
/// width bytes alone: one forward DCT plus a max-|index| scan per group —
/// no bit packing, no entropy stage. Because every halving of eb_abs widens
/// each group by ~1 bit, rate(eb) ~= estimate(eb0) + log2(eb0/eb), which
/// the core pipeline inverts to seed its per-block fixed-rate bisection
/// (for any codec — the DCT width census is a good decorrelation proxy).
template <typename T>
double fixed_rate_bits_estimate(std::span<const T> values,
                                const data::Dims& dims,
                                const FixedRateParams& params);

extern template std::vector<std::uint8_t> fixed_rate_compress<float>(
    std::span<const float>, const data::Dims&, const FixedRateParams&,
    FixedRateInfo*);
extern template std::vector<std::uint8_t> fixed_rate_compress<double>(
    std::span<const double>, const data::Dims&, const FixedRateParams&,
    FixedRateInfo*);
extern template Decompressed<float> fixed_rate_decompress<float>(
    std::span<const std::uint8_t>);
extern template Decompressed<double> fixed_rate_decompress<double>(
    std::span<const std::uint8_t>);
extern template double fixed_rate_bits_estimate<float>(
    std::span<const float>, const data::Dims&, const FixedRateParams&);
extern template double fixed_rate_bits_estimate<double>(
    std::span<const double>, const data::Dims&, const FixedRateParams&);

}  // namespace fpsnr::transform
