// Orthogonal-transform-based lossy codec (the ZFP/SSEM-style baseline).
//
// Pipeline: orthonormal transform (multi-level Haar DWT or block DCT-II)
// -> uniform midpoint quantization of the coefficients with bin width
// delta -> canonical Huffman -> lossless backend. Because the transform is
// orthogonal, the L2 distortion added by coefficient quantization equals
// the L2 distortion of the reconstructed data (paper Theorem 2), so the
// same fixed-PSNR bin-width formula (Eq. 6) applies:
//     PSNR = 20 log10(vr / delta) + 10 log10(12).
//
// Unlike the SZ-style codec this gives no pointwise error bound — only
// the aggregate (PSNR) one, which is precisely the paper's point about
// transform coders.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/field.h"
#include "lossless/backend.h"

namespace fpsnr::transform {

enum class Kind : std::uint8_t {
  HaarMultiLevel = 0,
  BlockDct = 1,
};

struct Params {
  Kind kind = Kind::HaarMultiLevel;
  /// Quantization bin width delta applied to the transform coefficients.
  double bin_width = 1e-3;
  std::uint32_t quantization_bins = 65536;
  unsigned haar_levels = 4;        ///< clamped to max_haar_levels(dims)
  std::size_t dct_block = 8;
  lossless::Method backend = lossless::Method::Deflate;
};

struct Info {
  double bin_width = 0.0;
  double value_range = 0.0;
  std::size_t value_count = 0;
  std::size_t outlier_count = 0;   ///< coefficients stored exactly
  std::size_t compressed_bytes = 0;
  double compression_ratio = 0.0;
  double bit_rate = 0.0;
  /// Exact sum of squared reconstruction errors, measured by inverting the
  /// quantized coefficients and casting to the stored scalar type — i.e.
  /// against the values decompress will actually return, not the Theorem-2
  /// coefficient-domain estimate (which misses the final float cast).
  double achieved_sse = 0.0;
};

template <typename T>
std::vector<std::uint8_t> compress(std::span<const T> values, const data::Dims& dims,
                                   const Params& params, Info* info = nullptr);

template <typename T>
struct Decompressed {
  data::Dims dims;
  std::vector<T> values;
};

template <typename T>
Decompressed<T> decompress(std::span<const std::uint8_t> stream);

/// Theorem-2 instrumentation: forward-transform coefficients and their
/// quantized values from an actual pass (outlier coefficients repeated
/// exactly, i.e. zero coefficient-domain error).
struct CoefficientTrace {
  std::vector<double> coeffs;
  std::vector<double> coeffs_quantized;
};

template <typename T>
CoefficientTrace coefficient_trace(std::span<const T> values, const data::Dims& dims,
                                   const Params& params);

extern template std::vector<std::uint8_t> compress<float>(
    std::span<const float>, const data::Dims&, const Params&, Info*);
extern template std::vector<std::uint8_t> compress<double>(
    std::span<const double>, const data::Dims&, const Params&, Info*);
extern template Decompressed<float> decompress<float>(std::span<const std::uint8_t>);
extern template Decompressed<double> decompress<double>(std::span<const std::uint8_t>);
extern template CoefficientTrace coefficient_trace<float>(
    std::span<const float>, const data::Dims&, const Params&);
extern template CoefficientTrace coefficient_trace<double>(
    std::span<const double>, const data::Dims&, const Params&);

}  // namespace fpsnr::transform
